package gemfi

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The hot-path benchmarks behind BENCH_simcore.json: guest instructions
// per second for each CPU model (engine attached but idle — the
// campaign-realistic configuration) and campaign experiments per second.
// cmd/gemfi-bench measures the same quantities with wall clocks; these
// variants integrate with `go test -bench` tooling (benchstat, -cpuprofile).

func benchmarkModel(b *testing.B, model sim.ModelKind) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var total uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := sim.New(sim.Config{Model: model, EnableFI: true, MaxInsts: 2_000_000_000})
		if err := s.Load(p); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r := s.Run()
		if r.Failed() {
			b.Fatalf("%+v", r)
		}
		total += r.Insts
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/sec")
}

// BenchmarkAtomicModel measures the functional model's hot path: fetch
// (predecode cache), execute, writeback.
func BenchmarkAtomicModel(b *testing.B) { benchmarkModel(b, sim.ModelAtomic) }

// BenchmarkTimingModel adds the cache-hierarchy latency accounting.
func BenchmarkTimingModel(b *testing.B) { benchmarkModel(b, sim.ModelTiming) }

// BenchmarkPipelinedModel measures the cycle-accurate pipeline.
func BenchmarkPipelinedModel(b *testing.B) { benchmarkModel(b, sim.ModelPipelined) }

// benchmarkCampaign measures checkpointed campaign throughput with and
// without the fast-forward prefix.
func benchmarkCampaign(b *testing.B, ff bool) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	cfg := sim.DefaultConfig()
	cfg.FastForward = ff
	r, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	exps := campaign.GenerateUniform(10, campaign.GenConfig{WindowInsts: r.WindowInsts, Seed: 3})
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		for _, e := range exps {
			r.Run(e)
			n++
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "exps/sec")
}

// BenchmarkCampaignCheckpoint is the paper-methodology campaign loop
// (pipelined until resolution, then atomic) from a shared checkpoint.
func BenchmarkCampaignCheckpoint(b *testing.B) { benchmarkCampaign(b, false) }

// BenchmarkCampaignFastForward adds the atomic prefix up to the fault
// window (the paper's checkpoint fast-forwarding taken to its limit).
func BenchmarkCampaignFastForward(b *testing.B) { benchmarkCampaign(b, true) }
