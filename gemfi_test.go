package gemfi

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/now"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow end
// to end through the façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := CompileC(`
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + i; }
    out[0] = s;
    fi_activate(0);
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(SimConfig{Model: ModelAtomic, EnableFI: true, MaxInsts: 1_000_000})
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Failed() {
		t.Fatalf("%+v", r)
	}
	v, err := s.ReadMem64(prog.MustSymbol("out"))
	if err != nil || v != 4950 {
		t.Fatalf("out = %d, %v", v, err)
	}
}

func TestPublicAPIAssembler(t *testing.T) {
	prog, err := Assemble(`
_start:
    li  a0, 7
    li  v0, 1
    callsys
`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(SimConfig{Model: ModelPipelined, EnableFI: false, MaxInsts: 100_000})
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	if r := s.Run(); !r.Exited || r.ExitStatus != 7 {
		t.Fatalf("%+v", r)
	}
}

func TestPublicAPIFaultRoundTrip(t *testing.T) {
	f, err := ParseFault("RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Loc != LocIntReg || f.Bit != 21 {
		t.Fatalf("%+v", f)
	}
	fs, err := ParseFaults(strings.NewReader(f.String() + "\n# comment\n"))
	if err != nil || len(fs) != 1 {
		t.Fatalf("%v %v", fs, err)
	}
}

func TestPublicAPICampaign(t *testing.T) {
	w, err := WorkloadByName("pi", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewCampaignRunner(w, campaign.RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exps := GenerateUniform(5, campaign.GenConfig{WindowInsts: runner.WindowInsts, Seed: 4})
	for _, e := range exps {
		res := runner.Run(e)
		if res.Outcome < OutcomeCrashed || res.Outcome > OutcomeSDC {
			t.Fatalf("unclassified outcome: %+v", res)
		}
	}
}

func TestPublicAPISampleSize(t *testing.T) {
	if n := SampleSize(2950, 0.99, 0.01, 0.5); n < 2400 || n > 2600 {
		t.Fatalf("SampleSize = %d", n)
	}
}

func TestPublicAPINoW(t *testing.T) {
	probe, err := NewNoWMaster("127.0.0.1:0", now.MasterConfig{Workload: "pi", Scale: ScaleTest, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	window := probe.WindowInsts()
	probe.Close()
	exps := GenerateUniform(4, campaign.GenConfig{WindowInsts: window, Seed: 8})
	m, err := NewNoWMaster("127.0.0.1:0", now.MasterConfig{
		Workload: "pi", Scale: ScaleTest, Experiments: exps, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		worker := NewNoWWorker(now.WorkerConfig{Addr: m.Addr(), Slots: 2})
		if _, err := worker.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	if results := m.Wait(); len(results) != len(exps) {
		t.Fatalf("results = %d", len(results))
	}
}

func TestWorkloadsListedInPaperOrder(t *testing.T) {
	ws := Workloads(ScaleTest)
	if len(ws) != 6 {
		t.Fatalf("workloads = %d", len(ws))
	}
	want := []string{"dct", "jacobi", "pi", "knapsack", "deblock", "canneal"}
	for i, w := range ws {
		if w.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Name, want[i])
		}
	}
}
