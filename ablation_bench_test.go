// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - the PCB-pointer cache that replaces per-instruction hash lookups
//     (the optimization Section III.C describes);
//   - the tournament branch predictor (vs. never-taken fetch);
//   - checkpoint capture/restore cost (the currency of Fig. 8);
//   - the decode-stage port computation.
package gemfi

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// BenchmarkAblationThreadLookup compares the engine's cached-pointer fast
// path with the hash lookup it replaces ("monitoring context switches
// allows GemFI to eliminate the overhead of checking ... in the hash
// table on each simulated clock tick").
func BenchmarkAblationThreadLookup(b *testing.B) {
	e := core.NewEngine("cpu", nil)
	// Populate several FI-enabled threads, as a loaded system would.
	for i := 0; i < 8; i++ {
		e.OnActivate(uint64(0xF00000+i*0x400), i)
	}
	pcb := uint64(0xF00000)
	e.OnContextSwitch(pcb)

	b.Run("CachedPointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The per-instruction check as implemented: one nil test.
			if !e.Enabled() {
				b.Fatal("disabled")
			}
		}
	})
	b.Run("HashLookupPerTick", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The naive alternative: resolve the PCB through the map on
			// every instruction.
			e.OnContextSwitch(pcb)
			if !e.Enabled() {
				b.Fatal("disabled")
			}
		}
	})
}

// BenchmarkAblationBranchPredictor measures the pipelined model's cycle
// count on a branchy workload with the tournament predictor versus a
// disabled predictor (always fall-through).
func BenchmarkAblationBranchPredictor(b *testing.B) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, disable bool) (ticks, mispredicts uint64) {
		s := newPipelinedSim(b, p)
		mdl, ok := s.Model.(*cpu.PipelinedModel)
		if !ok {
			b.Fatal("not pipelined")
		}
		mdl.Pred.Disabled = disable
		for mdl.Step() {
		}
		if s.Core.Trap != nil {
			b.Fatal(s.Core.Trap)
		}
		return s.Core.Ticks, mdl.Pred.Mispredicts
	}
	b.Run("Tournament", func(b *testing.B) {
		var ticks, miss uint64
		for i := 0; i < b.N; i++ {
			ticks, miss = run(b, false)
		}
		b.ReportMetric(float64(ticks), "cycles/run")
		b.ReportMetric(float64(miss), "mispredicts/run")
	})
	b.Run("Disabled", func(b *testing.B) {
		var ticks, miss uint64
		for i := 0; i < b.N; i++ {
			ticks, miss = run(b, true)
		}
		b.ReportMetric(float64(ticks), "cycles/run")
		b.ReportMetric(float64(miss), "mispredicts/run")
	})
}

// BenchmarkAblationCheckpoint measures the two halves of the Fig. 8
// currency: capturing a whole-machine checkpoint and restoring it.
func BenchmarkAblationCheckpoint(b *testing.B) {
	r, err := campaign.NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), campaign.RunnerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	st := r.Ckpt
	blob, err := st.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SerializeGob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.Bytes(); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(blob)))
	})
	b.Run("RunnerRestoreAndRun", func(b *testing.B) {
		b.ReportAllocs()
		exp := campaign.Experiment{ID: 0}
		for i := 0; i < b.N; i++ {
			if res := r.Run(exp); res.Outcome != campaign.OutcomeNonPropagated {
				b.Fatalf("%+v", res)
			}
		}
	})
}

// BenchmarkAblationDecodePorts isolates the per-instruction port
// computation the decode-stage faults corrupt.
func BenchmarkAblationDecodePorts(b *testing.B) {
	words := []isa.Word{
		isa.MakeOperate(isa.OpIntArith, isa.FnADDQ, 1, 2, 3),
		isa.MakeFP(isa.FnMULT, 1, 2, 3),
	}
	w, _ := isa.MakeMem(isa.OpSTQ, 1, 30, 8)
	words = append(words, w)
	insts := make([]isa.Inst, len(words))
	for i, wd := range words {
		insts[i] = isa.Decode(wd)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = insts[i%len(insts)].Ports()
	}
}

// newPipelinedSim builds a pipelined simulator for ablations.
func newPipelinedSim(b *testing.B, p *Program) *Simulator {
	b.Helper()
	s := NewSimulator(SimConfig{Model: ModelPipelined, EnableFI: true, MaxInsts: 2_000_000_000})
	if err := s.Load(p); err != nil {
		b.Fatal(err)
	}
	return s
}
