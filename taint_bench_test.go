package gemfi

import (
	"testing"

	"repro/internal/workloads"
)

// taintSim builds a pi simulator on the atomic model, optionally with
// the fault-propagation taint tracker attached. With enable false the
// Core.Taint field stays nil — the one-untaken-branch-per-commit
// disabled path the overhead bound is defined against.
func taintSim(b *testing.B, enable bool) *Simulator {
	b.Helper()
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := NewSimulator(SimConfig{
		Model: ModelAtomic, EnableFI: true, MaxInsts: 2_000_000_000,
		EnableTaint: enable,
	})
	if err := s.Load(p); err != nil {
		b.Fatal(err)
	}
	return s
}

func runTaintCase(b *testing.B, enable bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := taintSim(b, enable)
		b.StartTimer()
		if r := s.Run(); r.Failed() {
			b.Fatalf("%+v", r)
		}
	}
}

// BenchmarkTaintDisabled compares the atomic-model commit loop without a
// tracker (baseline), with the tracker field explicitly nil (the
// disabled path — identical code, the guard branch never taken), and
// with a tracker attached on a fault-free run (the attached-but-idle
// fast path: one counter increment and three emptiness checks per
// commit).
func BenchmarkTaintDisabled(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) { runTaintCase(b, false) })
	b.Run("TaintOff", func(b *testing.B) { runTaintCase(b, false) })
	b.Run("TaintOn", func(b *testing.B) { runTaintCase(b, true) })
}

// TestTaintDisabledOverhead asserts the acceptance bound established by
// the observability PRs: with Core.Taint nil the commit loop must not
// regress measurably (1.5x catches a structural leak, not noise), and
// an attached-but-idle tracker must stay within the same 2.0x envelope
// the enabled-observability bound uses — on a clean run the tracker's
// per-commit work is the zero-taint early return.
func TestTaintDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison in -short mode")
	}
	measure := func(enable bool) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			runTaintCase(b, enable)
		})
		return float64(res.NsPerOp())
	}
	baseline := measure(false)
	disabled := measure(false)
	enabled := measure(true)
	t.Logf("baseline %.0f ns/op, taint-disabled %.0f ns/op, taint-enabled %.0f ns/op",
		baseline, disabled, enabled)
	if disabled > baseline*1.5 {
		t.Errorf("taint-disabled run %.0f ns/op vs baseline %.0f ns/op: nil-tracker path is not free",
			disabled, baseline)
	}
	if enabled > baseline*2.0 {
		t.Errorf("taint-enabled run %.0f ns/op vs baseline %.0f ns/op: idle tracker leaked into the hot loop",
			enabled, baseline)
	}
}
