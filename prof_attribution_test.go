package gemfi

import (
	"testing"

	"repro/internal/workloads"
)

// TestProfilerAttributionOnWorkloads runs every validation workload
// with the profiler attached and requires >=95% of retired instructions
// to be attributed to named guest functions — the symbol table must
// cover the code the workloads actually execute.
func TestProfilerAttributionOnWorkloads(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			s := NewSimulator(SimConfig{
				Model: ModelAtomic, EnableFI: true,
				MaxInsts: 2_000_000_000, EnableProfiler: true,
			})
			if err := s.Load(p); err != nil {
				t.Fatal(err)
			}
			if r := s.Run(); r.Failed() {
				t.Fatalf("run failed: %+v", r)
			}
			snap := s.Profiler().Snapshot()
			named, total := snap.AttributedInsts()
			if total == 0 {
				t.Fatal("profiler saw no instructions")
			}
			frac := float64(named) / float64(total)
			t.Logf("%s: %d/%d insts attributed (%.2f%%)", w.Name, named, total, 100*frac)
			if frac < 0.95 {
				t.Errorf("attribution %.2f%% < 95%%", 100*frac)
			}
			// The folded-stack export must be non-empty and rooted.
			if len(snap.Folded) == 0 {
				t.Error("no call-stack samples collected")
			}
		})
	}
}
