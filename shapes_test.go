package gemfi

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/workloads"
)

// TestFig5ShapeClaims encodes the paper's qualitative Fig. 5 findings as
// assertions, so regressions in the simulator or engine that would break
// the reproduction fail CI rather than silently skewing EXPERIMENTS.md.
// Run on two workloads with enough samples for stable ordering; skipped
// under -short.
func TestFig5ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign shape test is slow; run without -short")
	}
	const perLocation = 30

	type rowStats struct {
		crash, nonprop, acceptable float64
	}
	measure := func(t *testing.T, w *workloads.Workload, locs []core.Location) map[core.Location]rowStats {
		t.Helper()
		pool, err := campaign.NewPool(w, 2, campaign.RunnerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[core.Location]rowStats)
		for _, loc := range locs {
			exps := campaign.GenerateUniform(perLocation, campaign.GenConfig{
				Locations:   []core.Location{loc},
				WindowInsts: pool.Runner().WindowInsts,
				Seed:        77 + int64(loc),
			})
			tally := campaign.TallyOf(pool.RunAll(exps))
			acc := tally.Fraction(campaign.OutcomeStrictlyCorrect) +
				tally.Fraction(campaign.OutcomeCorrect) +
				tally.Fraction(campaign.OutcomeNonPropagated)
			out[loc] = rowStats{
				crash:      tally.Fraction(campaign.OutcomeCrashed),
				nonprop:    tally.Fraction(campaign.OutcomeNonPropagated),
				acceptable: acc,
			}
		}
		return out
	}

	t.Run("dct", func(t *testing.T) {
		locs := []core.Location{core.LocIntReg, core.LocFloatReg, core.LocExec, core.LocPC}
		rows := measure(t, workloads.DCT(workloads.ScaleTest), locs)

		// "All applications demonstrate their highest resiliency to
		// faults targeting floating point registers."
		if rows[core.LocFloatReg].crash > rows[core.LocIntReg].crash {
			t.Errorf("FP-register faults crash more than int-register faults: %v vs %v",
				rows[core.LocFloatReg].crash, rows[core.LocIntReg].crash)
		}
		if rows[core.LocFloatReg].acceptable < 0.9 {
			t.Errorf("FP-register faults acceptable fraction = %v, want ~benign", rows[core.LocFloatReg].acceptable)
		}

		// "Faults altering the value of the PC address were almost always
		// fatal": PC must be the most crash-prone of the measured rows.
		for loc, row := range rows {
			if loc == core.LocPC {
				continue
			}
			if row.crash > rows[core.LocPC].crash {
				t.Errorf("%v crashes more than PC faults: %v vs %v", loc, row.crash, rows[core.LocPC].crash)
			}
		}
		if rows[core.LocPC].crash < 0.5 {
			t.Errorf("PC fault crash rate = %v, want 'almost always fatal'", rows[core.LocPC].crash)
		}

		// Execute-stage faults on a memory-heavy app crash frequently
		// (corrupted effective addresses).
		if rows[core.LocExec].crash < 0.25 {
			t.Errorf("execute-stage crash rate on DCT = %v, want substantial", rows[core.LocExec].crash)
		}
	})

	t.Run("deblock-integer-only", func(t *testing.T) {
		rows := measure(t, workloads.Deblock(workloads.ScaleTest), []core.Location{core.LocFloatReg})
		// "Deblocking, a benchmark with no floating point operations,
		// behaves exactly as expected, demonstrating 100% strict
		// correctness" under FP-register faults.
		fp := rows[core.LocFloatReg]
		if fp.crash != 0 || fp.acceptable != 1 {
			t.Errorf("deblock FP row must be 100%% benign: crash=%v acceptable=%v", fp.crash, fp.acceptable)
		}
	})
}

// TestFig6ShapeClaims encodes the Fig. 6 trends: Knapsack's acceptable
// fraction must not degrade over injection time (it trends upward), and
// Jacobi must exhibit the correct-class (extra iterations) outcomes that
// strict-only workloads lack. Skipped under -short.
func TestFig6ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign shape test is slow; run without -short")
	}
	knap, err := campaign.RunFig6(campaign.Fig6Config{
		Workload:    workloads.Knapsack(workloads.ScaleTest),
		Experiments: 150,
		Bins:        3,
		Parallelism: 2,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := knap.Bins[0], knap.Bins[len(knap.Bins)-1]
	if last.Acceptable+0.05 < first.Acceptable {
		t.Errorf("knapsack late-fault acceptability (%v) fell below early (%v): Fig.6 trend lost",
			last.Acceptable, first.Acceptable)
	}

	jac, err := campaign.RunFig6(campaign.Fig6Config{
		Workload:    workloads.Jacobi(workloads.ScaleTest),
		Experiments: 150,
		Bins:        3,
		Parallelism: 2,
		Seed:        43,
	})
	if err != nil {
		t.Fatal(err)
	}
	correctTotal := 0.0
	for _, b := range jac.Bins {
		correctTotal += b.Correct
	}
	if correctTotal == 0 {
		t.Error("jacobi shows no correct-with-extra-iterations outcomes: convergence absorption lost")
	}
}
