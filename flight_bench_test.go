package gemfi

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/workloads"
)

// flightRunner builds a checkpoint-backed pi runner, optionally with the
// flight recorder attached — the per-experiment configuration the flight
// disabled-overhead bound is defined against.
func flightRunner(b *testing.B, depth int) (*campaign.Runner, []campaign.Experiment) {
	b.Helper()
	r, err := campaign.NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), campaign.RunnerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if depth > 0 {
		r.AttachFlight(depth)
	}
	exps := campaign.GenerateUniform(4, campaign.GenConfig{WindowInsts: r.WindowInsts, Seed: 17})
	return r, exps
}

func runFlightCase(b *testing.B, depth int) {
	b.ReportAllocs()
	b.StopTimer()
	r, exps := flightRunner(b, depth)
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		r.Run(exps[i%len(exps)])
	}
}

// BenchmarkFlightDisabled compares per-experiment execution with the
// flight recorder absent (nil sink — the path every campaign without
// -flight takes) against a recorder attached. The nil path is one
// untaken branch in the commit epilogue; the atomic model's fast path
// skips even that when no observer is attached.
func BenchmarkFlightDisabled(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) {
		runFlightCase(b, 0)
	})
	b.Run("FlightOff", func(b *testing.B) {
		// Same as Baseline — the explicit-nil spelling of "disabled".
		runFlightCase(b, 0)
	})
	b.Run("FlightOn", func(b *testing.B) {
		runFlightCase(b, 256)
	})
}

// TestFlightDisabledOverhead asserts the acceptance bound: with no
// flight recorder attached, experiment execution must not regress
// measurably against the pre-flight baseline — the recorder is a
// nil-guarded sink on the commit epilogue, excluded from the atomic
// fast-path predicate like the profiler and taint hooks. The generous
// 1.5x threshold catches a structural regression (e.g. recording when
// the sink is nil), not scheduler noise.
func TestFlightDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison in -short mode")
	}
	measure := func(depth int) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			runFlightCase(b, depth)
		})
		return float64(res.NsPerOp())
	}
	baseline := measure(0)
	disabled := measure(0)
	enabled := measure(256)
	t.Logf("baseline %.0f ns/op, flight-disabled %.0f ns/op, flight-enabled %.0f ns/op",
		baseline, disabled, enabled)
	if disabled > baseline*1.5 {
		t.Errorf("flight-disabled run %.0f ns/op vs baseline %.0f ns/op: disabled path is not free",
			disabled, baseline)
	}
	// Enabled recording is a ring store per committed instruction —
	// bounded, allocation-free after warm-up, and well under the cost of
	// executing the instruction itself.
	if enabled > baseline*3.0 {
		t.Errorf("flight-enabled run %.0f ns/op vs baseline %.0f ns/op: recording is too expensive",
			enabled, baseline)
	}
}
