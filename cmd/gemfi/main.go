// Command gemfi runs one simulation: a guest program (mini-C or
// Thessaly-64 assembly) on a chosen CPU model, optionally with a fault
// description file in the paper's Listing-1 format.
//
// Examples:
//
//	gemfi -prog prog.mc
//	gemfi -prog prog.s -model pipelined -faults faults.txt -v
//	gemfi -workload dct -scale small -faults faults.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/httpserv"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/taint"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		progPath  = flag.String("prog", "", "guest program (.mc mini-C or .s assembly)")
		workload  = flag.String("workload", "", "built-in workload instead of -prog (dct|jacobi|pi|knapsack|deblock|canneal)")
		scaleName = flag.String("scale", "test", "workload scale: test|small|paper")
		faultFile = flag.String("faults", "", "fault description file (Listing-1 format)")
		model     = flag.String("model", "atomic", "CPU model: atomic|timing|pipelined")
		maxInsts  = flag.Uint64("max-insts", 2_000_000_000, "watchdog instruction limit")
		noFI      = flag.Bool("no-fi", false, "disable the fault injection engine entirely (vanilla simulator)")
		verbose   = flag.Bool("v", false, "print statistics and fault lifecycle details")
		traceN    = flag.Uint64("trace-insts", 0, "print the first N committed instructions")
		saveCkpt  = flag.String("save-checkpoint", "", "run to fi_read_init_all, save the checkpoint here, and exit")
		loadCkpt  = flag.String("restore", "", "restore this checkpoint before running (skips boot + init)")

		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
		traceJSONL  = flag.String("trace-jsonl", "", "stream trace events as JSON lines to this file")
		metricsDump = flag.Bool("metrics", false, "print the metrics registry (gem5 stats style) at exit")
		metricsJSON = flag.String("metrics-json", "", "write the metrics registry as JSON to this file at exit")
		validate    = flag.String("validate-trace", "", "validate a JSONL trace file against the event schema and exit")

		profile       = flag.Bool("profile", false, "profile the guest per PC and print the top-N table at exit")
		profileTop    = flag.Int("profile-top", 20, "rows in the -profile text table")
		profileJSON   = flag.String("profile-json", "", "write the guest profile as JSON to this file at exit (implies -profile)")
		profileFolded = flag.String("profile-folded", "", "write the guest profile in folded-stack (flamegraph) format to this file (implies -profile)")
		httpAddr      = flag.String("http", "", "serve live observability HTTP endpoints (/metrics /status /profile /taint /debug/pprof) on this address")
		validateProm  = flag.String("validate-prom", "", "validate a Prometheus text exposition file and exit")

		taintOn       = flag.Bool("taint", false, "track fault propagation and print the report at exit")
		taintDot      = flag.String("taint-dot", "", "write the propagation DAG as Graphviz DOT to this file (implies -taint)")
		taintJSON     = flag.String("taint-json", "", "write the propagation report as JSON to this file (implies -taint)")
		validateTaint = flag.String("validate-taint", "", "validate a propagation-report JSON file against the schema and exit")
		validateSpans = flag.String("validate-spans", "", "validate a span JSONL file (gemfi-campaign -spans-jsonl) against the span schema and exit")

		bbtOn    = flag.Bool("bbt", true, "translate hot basic blocks into fused closure chains on the atomic fast path")
	bbtStats = flag.Bool("bbt-stats", false, "print the block translator's counters (blocks compiled, hits, invalidations, fallbacks) at exit")

	flightOn    = flag.Bool("flight", false, "record the last -flight-depth committed instructions and print the post-mortem timeline if the run crashes")
		flightDepth = flag.Int("flight-depth", 0, "flight recorder ring size (0 = default)")
		validatePM  = flag.String("validate-postmortem", "", "validate a post-mortem JSON file (/postmortem/{id}) against the schema and exit")
	)
	flag.Parse()

	// The five -validate-* modes share one shape: open, check, report the
	// shared line-reader's verdict, exit.
	validators := []struct {
		path string
		run  func(io.Reader) (string, error)
	}{
		{*validate, func(r io.Reader) (string, error) {
			n, err := obs.ValidateJSONL(r)
			return fmt.Sprintf("%d events OK", n), err
		}},
		{*validateProm, func(r io.Reader) (string, error) {
			n, err := obs.ValidateProm(r)
			return fmt.Sprintf("%d samples OK", n), err
		}},
		{*validateTaint, func(r io.Reader) (string, error) {
			rep, err := taint.ValidateReportJSON(r)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("OK (verdict=%s nodes=%d edges=%d)",
				rep.Verdict, len(rep.Nodes), len(rep.Edges)), nil
		}},
		{*validateSpans, func(r io.Reader) (string, error) {
			n, err := obs.ValidateSpansJSONL(r)
			return fmt.Sprintf("%d spans OK", n), err
		}},
		{*validatePM, func(r io.Reader) (string, error) {
			pm, err := flight.ValidatePostmortemJSON(r)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("OK (outcome=%s records=%d finalPc=%#x)",
				pm.Outcome, len(pm.Records), pm.FinalPC()), nil
		}},
	}
	for _, v := range validators {
		if v.path == "" {
			continue
		}
		f, err := os.Open(v.path)
		if err != nil {
			return err
		}
		msg, err := v.run(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", v.path, err)
		}
		fmt.Printf("%s: %s\n", v.path, msg)
		return nil
	}
	wantTaint := *taintOn || *taintDot != "" || *taintJSON != ""

	prog, err := loadProgram(*progPath, *workload, *scaleName)
	if err != nil {
		return err
	}

	var faults []core.Fault
	if *faultFile != "" {
		f, err := os.Open(*faultFile)
		if err != nil {
			return err
		}
		faults, err = core.ParseFaults(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	cfg := sim.Config{
		Model:                   sim.ModelKind(*model),
		EnableFI:                !*noFI,
		Faults:                  faults,
		MaxInsts:                *maxInsts,
		SwitchToAtomicOnResolve: sim.ModelKind(*model) == sim.ModelPipelined,
		EnableBlockTranslation:  *bbtOn,
	}
	if *metricsDump || *metricsJSON != "" || *httpAddr != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *profile || *profileJSON != "" || *profileFolded != "" || *httpAddr != "" {
		cfg.EnableProfiler = true
	}
	if *traceOut != "" || *traceJSONL != "" {
		cfg.Tracer = obs.NewTracer()
	}
	if wantTaint || *httpAddr != "" {
		cfg.EnableTaint = true
	}
	if *flightOn {
		cfg.EnableFlight = true
		cfg.FlightDepth = *flightDepth
	}
	var jsonlFile *os.File
	if *traceJSONL != "" {
		var err error
		jsonlFile, err = os.Create(*traceJSONL)
		if err != nil {
			return err
		}
		cfg.Tracer.StreamJSONL(jsonlFile)
	}
	// dumpObs flushes the observability outputs; every exit path that ran
	// any simulation calls it.
	dumpObs := func() error {
		if jsonlFile != nil {
			if err := cfg.Tracer.Flush(); err != nil {
				return err
			}
			if err := jsonlFile.Close(); err != nil {
				return err
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := cfg.Tracer.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s (%d events)\n", *traceOut, len(cfg.Tracer.Events()))
		}
		if *metricsDump {
			if err := cfg.Metrics.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if *metricsJSON != "" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			if err := cfg.Metrics.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	s := sim.New(cfg)
	if err := s.Load(prog); err != nil {
		return err
	}
	if *traceN > 0 {
		// Symbolize the trace against the program's function symbols;
		// Format falls back to bare hex for PCs outside every symbol.
		syms := prog.Symbols()
		var traced uint64
		s.Core.TraceFn = func(pc uint64, in isa.Inst) {
			if traced < *traceN {
				fmt.Printf("%12d  0x%06x  %-24s  %s\n",
					s.Core.Insts+1, pc, syms.Format(pc), in.Disassemble(pc))
				traced++
			}
		}
	}
	var golden *taint.GoldenState // set by the clean replay below
	if *httpAddr != "" {
		srv, err := httpserv.New(*httpAddr, httpserv.Config{
			Metrics: cfg.Metrics,
			Status: func() any {
				return map[string]any{"insts": s.Core.Insts, "ticks": s.Core.Ticks}
			},
			Profile: func() *prof.Profile {
				if pr := s.Profiler(); pr != nil {
					return pr.Snapshot()
				}
				return nil
			},
			Taint: func() *taint.PropReport {
				if s.Taint() == nil {
					return nil
				}
				return s.TaintReport(false, golden)
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s\n", srv.Addr())
	}
	// dumpProfile writes the requested guest-profile outputs at exit.
	dumpProfile := func() error {
		pr := s.Profiler()
		if pr == nil {
			return nil
		}
		snap := pr.Snapshot()
		if *profile {
			if err := snap.WriteTop(os.Stdout, *profileTop); err != nil {
				return err
			}
		}
		if *profileJSON != "" {
			f, err := os.Create(*profileJSON)
			if err != nil {
				return err
			}
			if err := snap.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *profileFolded != "" {
			f, err := os.Create(*profileFolded)
			if err != nil {
				return err
			}
			if err := snap.WriteFolded(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}

	// Checkpoint workflows (the paper's campaign fast-forwarding, as a
	// command line round trip).
	if *saveCkpt != "" {
		st, res, err := s.RunToCheckpoint()
		if err != nil {
			return fmt.Errorf("program ended before fi_read_init_all (%+v): %w", res, err)
		}
		if err := st.SaveFile(*saveCkpt); err != nil {
			return err
		}
		fmt.Printf("checkpoint saved to %s after %d instructions\n", *saveCkpt, res.Insts)
		return dumpObs()
	}
	var ckptState *checkpoint.State
	if *loadCkpt != "" {
		st, err := checkpoint.LoadFile(*loadCkpt)
		if err != nil {
			return err
		}
		ckptState = st
		s.Restore(st, faults)
	}

	if s.Taint() != nil && len(faults) > 0 {
		// Golden replay: run the same program fault-free on a throwaway
		// simulator so the taint differ can tell masked-logically (taint
		// alive but final state identical) from reached-state corruption.
		gcfg := cfg
		gcfg.Faults = nil
		gcfg.Tracer = nil
		gcfg.Metrics = nil
		gcfg.EnableProfiler = false
		gcfg.EnableTaint = false
		gcfg.Taint = nil
		gs := sim.New(gcfg)
		if err := gs.Load(prog); err != nil {
			return err
		}
		if ckptState != nil {
			gs.Restore(ckptState, nil)
		}
		if gr := gs.Run(); !gr.Failed() {
			golden = taint.CaptureGolden(&gs.Core.Arch, gs.Mem)
		}
	}

	r := s.Run()

	if r.Console != "" {
		fmt.Print(r.Console)
		if !strings.HasSuffix(r.Console, "\n") {
			fmt.Println()
		}
	}
	switch {
	case r.Crashed:
		fmt.Printf("CRASHED: %s\n", r.CrashCause)
	case r.Hung:
		fmt.Printf("HUNG after %d instructions\n", r.Insts)
	default:
		fmt.Printf("exit status %d\n", r.ExitStatus)
	}
	if *bbtStats {
		if s.BBT != nil {
			st := s.BBT.Stats
			fmt.Printf("bbt: %d blocks compiled (%d poisoned), %d hits, %d insts translated, %d invalidations, %d fallbacks\n",
				st.Compiled, st.Poisoned, st.Hits, st.Insts, st.Invalidations, st.Fallbacks)
		} else {
			fmt.Println("bbt: translation disabled")
		}
	}
	if *verbose {
		fmt.Printf("instructions: %d  ticks: %d  model: %s  switched: %v\n",
			r.Insts, r.Ticks, r.Model, r.Switched)
		for _, oc := range r.Outcomes {
			fmt.Printf("fault %q: fired=%v committed=%v squashed=%v propagated=%v overwritten=%v detail=%q\n",
				oc.Fault.String(), oc.Fired, oc.Committed, oc.Squashed, oc.Propagated, oc.Overwritten, oc.Detail)
		}
	}
	if wantTaint && s.Taint() != nil {
		rep := s.TaintReport(r.Failed(), golden)
		if *taintOn {
			if err := rep.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if *taintDot != "" {
			f, err := os.Create(*taintDot)
			if err != nil {
				return err
			}
			if err := rep.WriteDOT(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("propagation DAG written to %s (%d nodes)\n", *taintDot, len(rep.Nodes))
		}
		if *taintJSON != "" {
			f, err := os.Create(*taintJSON)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *flightOn {
		if fr := s.Flight(); fr != nil && r.Failed() && fr.Committed() > 0 {
			pm := &flight.Postmortem{
				Outcome:    "crashed",
				CrashCause: r.CrashCause,
				Depth:      fr.Depth(),
				Committed:  fr.Committed(),
				Squashed:   fr.Squashed(),
				Records:    fr.Records(),
				Keyframes:  fr.Keyframes(),
			}
			if t := s.Core.Trap; t != nil {
				pm.AppendTrap(t.PC, uint32(t.Word))
			}
			if err := pm.WriteText(os.Stdout); err != nil {
				return err
			}
		} else if !r.Failed() {
			fmt.Println("flight recorder: run completed normally, no post-mortem")
		}
	}
	if err := dumpProfile(); err != nil {
		return err
	}
	if err := dumpObs(); err != nil {
		return err
	}
	if r.Failed() {
		os.Exit(2)
	}
	return nil
}

// loadProgram builds the guest image from a file or a named workload.
func loadProgram(path, workload, scaleName string) (*asm.Program, error) {
	if workload != "" {
		scale, err := parseScale(scaleName)
		if err != nil {
			return nil, err
		}
		w, err := workloads.ByName(workload, scale)
		if err != nil {
			return nil, err
		}
		return w.Build()
	}
	if path == "" {
		return nil, fmt.Errorf("need -prog or -workload")
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		return asm.Assemble(string(src))
	}
	return minic.Compile(string(src))
}

func parseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}
