// Command gemfi-cc compiles mini-C source to a Thessaly-64 program and
// prints a disassembly listing with symbols, the closest thing the
// toolchain has to an object dump.
//
//	gemfi-cc prog.mc
//	gemfi-cc -run prog.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi-cc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIt = flag.Bool("run", false, "run the program on the atomic model after compiling")
		quiet = flag.Bool("q", false, "suppress the listing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: gemfi-cc [-run] file.mc")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	p, err := minic.Compile(string(src))
	if err != nil {
		return err
	}
	if !*quiet {
		printListing(p)
	}
	if *runIt {
		s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 2_000_000_000})
		if err := s.Load(p); err != nil {
			return err
		}
		r := s.Run()
		fmt.Print(r.Console)
		fmt.Printf("exit status %d (%d instructions)\n", r.ExitStatus, r.Insts)
		if r.Failed() {
			os.Exit(2)
		}
	}
	return nil
}

// printListing disassembles the text section with symbol annotations.
func printListing(p *asm.Program) {
	// Build a reverse symbol map for text addresses.
	symAt := map[uint64][]string{}
	for _, name := range p.SortedSymbols() {
		symAt[p.SymbolMap[name]] = append(symAt[p.SymbolMap[name]], name)
	}
	fmt.Printf("; text 0x%x (%d instructions), data 0x%x (%d bytes), entry 0x%x\n",
		p.TextBase, len(p.Text), p.DataBase, len(p.Data), p.Entry)
	for i, w := range p.Text {
		addr := p.TextBase + uint64(i)*4
		for _, s := range symAt[addr] {
			fmt.Printf("%s:\n", s)
		}
		fmt.Printf("  0x%06x  %08x  %s\n", addr, uint32(w), isa.Decode(w).Disassemble(addr))
	}
	fmt.Println("; symbols:")
	for _, name := range p.SortedSymbols() {
		fmt.Printf(";   %-24s 0x%x\n", name, p.SymbolMap[name])
	}
}
