// Command gemfi-now distributes a fault injection campaign over a
// network of workstations (Section III.E of the paper).
//
// Master (runs the golden simulation, holds the checkpoint and queue):
//
//	gemfi-now master -addr :7070 -workload pi -scale small -n 500
//
// Worker (one per workstation; -slots experiments run simultaneously):
//
//	gemfi-now worker -addr master-host:7070 -slots 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/now"
	"repro/internal/obs"
	"repro/internal/obs/httpserv"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi-now:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: gemfi-now master|worker [flags]")
	}
	switch os.Args[1] {
	case "master":
		return runMaster(os.Args[2:])
	case "worker":
		return runWorker(os.Args[2:])
	case "prepare":
		return runPrepare(os.Args[2:])
	case "filework":
		return runFileWorker(os.Args[2:])
	case "collect":
		return runCollect(os.Args[2:])
	}
	return fmt.Errorf("unknown subcommand %q (master|worker|prepare|filework|collect)", os.Args[1])
}

// runPrepare populates a shared-filesystem campaign directory (the
// paper's original NFS-based mechanism): checkpoint + one Listing-1
// fault file per experiment.
func runPrepare(args []string) error {
	fs := flag.NewFlagSet("prepare", flag.ExitOnError)
	var (
		dir       = fs.String("share", "", "shared directory (required)")
		workload  = fs.String("workload", "pi", "workload name")
		scaleName = fs.String("scale", "test", "test|small|paper")
		n         = fs.Int("n", 100, "number of experiments")
		seed      = fs.Int64("seed", 1, "campaign seed")
		model     = fs.String("model", "atomic", "CPU model")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("prepare needs -share")
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	// First pass discovers the injection window; second writes the real
	// experiment set.
	probeDir, err := os.MkdirTemp("", "gemfi-probe")
	if err != nil {
		return err
	}
	defer os.RemoveAll(probeDir)
	if err := now.PrepareShare(probeDir, now.ShareConfig{Workload: *workload, Scale: scale, Model: sim.ModelKind(*model)}); err != nil {
		return err
	}
	window, err := now.ShareWindowInsts(probeDir)
	if err != nil {
		return err
	}
	exps := campaign.GenerateUniform(*n, campaign.GenConfig{WindowInsts: window, Seed: *seed})
	if err := now.PrepareShare(*dir, now.ShareConfig{
		Workload: *workload, Scale: scale, Model: sim.ModelKind(*model), Experiments: exps,
	}); err != nil {
		return err
	}
	fmt.Printf("share %s prepared: %d experiments of %s\n", *dir, len(exps), *workload)
	return nil
}

// runFileWorker drains experiments from a prepared share.
func runFileWorker(args []string) error {
	fs := flag.NewFlagSet("filework", flag.ExitOnError)
	dir := fs.String("share", "", "shared directory (required)")
	requeue := fs.Bool("requeue", false, "requeue stale claims before working")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("filework needs -share")
	}
	if *requeue {
		n, err := now.RequeueStaleClaims(*dir)
		if err != nil {
			return err
		}
		fmt.Printf("requeued %d stale claims\n", n)
	}
	n, err := now.FileWorker(*dir)
	fmt.Printf("worker completed %d experiments\n", n)
	return err
}

// runCollect summarizes the results on a share.
func runCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	dir := fs.String("share", "", "shared directory (required)")
	n := fs.Int("n", 0, "expected result count (0 = whatever is present)")
	waitSec := fs.Int("wait", 0, "seconds to wait for results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("collect needs -share")
	}
	results, err := now.CollectResults(*dir, *n, time.Duration(*waitSec)*time.Second)
	if err != nil && len(results) == 0 {
		return err
	}
	tally := campaign.TallyOf(results)
	fmt.Printf("campaign results: %d experiments\n", tally.Total())
	for _, o := range campaign.Outcomes() {
		fmt.Printf("  %-18s %5d (%5.1f%%)\n", o, tally[o], 100*tally.Fraction(o))
	}
	return nil
}

func runMaster(args []string) error {
	fs := flag.NewFlagSet("master", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7070", "listen address")
		workload  = fs.String("workload", "pi", "workload name")
		scaleName = fs.String("scale", "test", "test|small|paper")
		n         = fs.Int("n", 100, "number of experiments")
		seed      = fs.Int64("seed", 1, "campaign seed")
		model     = fs.String("model", "atomic", "CPU model")
		metrics   = fs.Bool("metrics", false, "print master telemetry (now.master.*) at exit")
		httpAddr  = fs.String("http", "", "serve live observability endpoints (/metrics /status /debug/pprof) on this address")
		drain     = fs.Duration("drain", 30*time.Second, "in-flight drain bound on SIGINT/SIGTERM")

		flightOn   = fs.Bool("flight", false, "ask workers (via the welcome message) to flight-record: crashed/SDC results arrive with post-mortem dumps attached")
		spansOn    = fs.Bool("spans", false, "trace every experiment end to end (worker-side spans stitch under the master's experiment span)")
		spanSample = fs.Int("span-sample", 1, "keep 1 in N experiment traces (crashed/SDC traces are always kept)")
		spansJSONL = fs.String("spans-jsonl", "", "write completed span trees to this JSONL file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metrics || *httpAddr != "" {
		reg = obs.NewRegistry()
	}
	var spanRec *obs.SpanRecorder
	if *spansOn || *spansJSONL != "" || *httpAddr != "" {
		spanRec = obs.NewSpanRecorder()
		spanRec.SetSampling(*spanSample)
		if reg != nil {
			spanRec.AttachMetrics(reg)
		}
	}

	// Bootstrap: a throwaway master run discovers the injection window
	// size; then the real master serves the generated experiments.
	probe, err := now.NewMaster("127.0.0.1:0", now.MasterConfig{
		Workload: *workload, Scale: scale, Quiet: true, Model: sim.ModelKind(*model),
	})
	if err != nil {
		return err
	}
	window := probe.WindowInsts()
	probe.Close()

	exps := campaign.GenerateUniform(*n, campaign.GenConfig{WindowInsts: window, Seed: *seed})
	m, err := now.NewMaster(*addr, now.MasterConfig{
		Workload: *workload, Scale: scale, Experiments: exps, Model: sim.ModelKind(*model),
		Metrics: reg, Spans: spanRec, Flight: *flightOn,
	})
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		srv, err := httpserv.New(*httpAddr, httpserv.Config{
			Metrics: reg,
			Status:  func() any { return m.Status() },
			Spans:   spanRec,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s\n", srv.Addr())
	}
	fmt.Printf("master: serving %d experiments of %s on %s\n", len(exps), *workload, m.Addr())

	// Graceful shutdown: a signal drains in-flight experiments within the
	// -drain bound and reports whatever completed, instead of dropping
	// results already paid for on other machines.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	waitCh := make(chan []campaign.Result, 1)
	go func() { waitCh <- m.Wait() }()
	var results []campaign.Result
	select {
	case results = <-waitCh:
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "master: %v — draining in-flight experiments (bound %s)\n", sig, *drain)
		results = m.Shutdown(*drain)
	}
	tally := campaign.TallyOf(results)
	fmt.Printf("campaign complete: %d experiments (%d requeued after disconnects)\n",
		tally.Total(), m.Requeued())
	for _, o := range campaign.Outcomes() {
		fmt.Printf("  %-18s %5d (%5.1f%%)\n", o, tally[o], 100*tally.Fraction(o))
	}
	if spanRec != nil && *spansJSONL != "" {
		f, err := os.Create(*spansJSONL)
		if err != nil {
			return err
		}
		if err := spanRec.WriteSpansJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spans written to %s (%d spans dropped by sampling/ring)\n", *spansJSONL, spanRec.Dropped())
	}
	if reg != nil {
		return reg.WriteText(os.Stdout)
	}
	return nil
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7070", "master address")
		slots      = fs.Int("slots", 4, "simultaneous experiments")
		name       = fs.String("name", "", "worker name for master logs")
		dialTries  = fs.Int("dial-attempts", 5, "connection attempts before giving up")
		expTimeout = fs.Duration("exp-timeout", 0, "per-experiment wall-time bound (0 = unbounded)")
		retries    = fs.Int("retries", 2, "local retries for a timed-out experiment")
		heartbeat  = fs.Duration("heartbeat", 5*time.Second, "liveness message interval (0 = off)")
		metrics    = fs.Bool("metrics", false, "print worker telemetry (now.worker.*) at exit")
		taintOn    = fs.Bool("taint", false, "track fault propagation per experiment; verdict summaries ride back to the master on each result")
		forkOn     = fs.Bool("fork", false, "fork-server mode: each slot runs one local trunk and forks experiments from COW snapshots instead of replaying the shipped checkpoint")
		forkSnaps  = fs.Int("fork-snapshots", 0, "trunk snapshots across the fault window in -fork mode (0 = default)")
		flightOn   = fs.Bool("flight", false, "flight recorder: crashed/SDC experiments ship a post-mortem dump back to the master on their result (also enabled by the master's welcome)")
		flightDep  = fs.Int("flight-depth", 0, "flight recorder ring size (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	w := now.NewWorker(now.WorkerConfig{
		Addr: *addr, Slots: *slots, Name: *name,
		DialAttempts: *dialTries,
		ExpTimeout:   *expTimeout, ExpRetries: *retries,
		Heartbeat: *heartbeat,
		Metrics:   reg,
		Taint:     *taintOn,
		Fork:      *forkOn, ForkSnapshots: *forkSnaps,
		Flight:    *flightOn, FlightDepth: *flightDep,
	})
	n, err := w.Run()
	fmt.Printf("worker: completed %d experiments\n", n)
	if reg != nil {
		if werr := reg.WriteText(os.Stdout); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func parseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}
