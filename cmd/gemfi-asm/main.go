// Command gemfi-asm assembles Thessaly-64 assembly and prints the
// resulting image as a listing.
//
//	gemfi-asm prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi-asm:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: gemfi-asm file.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	symAt := map[uint64][]string{}
	for _, name := range p.SortedSymbols() {
		symAt[p.SymbolMap[name]] = append(symAt[p.SymbolMap[name]], name)
	}
	fmt.Printf("; entry 0x%x, %d instructions, %d data bytes\n", p.Entry, len(p.Text), len(p.Data))
	for i, w := range p.Text {
		addr := p.TextBase + uint64(i)*4
		for _, s := range symAt[addr] {
			fmt.Printf("%s:\n", s)
		}
		fmt.Printf("  0x%06x  %08x  %s\n", addr, uint32(w), isa.Decode(w).Disassemble(addr))
	}
	return nil
}
