// gemfi-fuzz runs lockstep differential fuzzing across the CPU models:
// it generates random Thessaly-64 programs, runs each on every selected
// model in lockstep, and reports any architectural divergence with a
// disassembled trace diff and a minimized reproducer.
//
// Exit status is 0 when all programs agree, 1 on any divergence.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/conformance"
	"repro/internal/obs"
	"repro/internal/obs/httpserv"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi-fuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 1, "first generator seed")
		n        = flag.Int("n", 100, "number of programs to run (seeds seed..seed+n-1)")
		models   = flag.String("models", "atomic,timing,pipelined", "comma-separated CPU models to compare")
		sync     = flag.Uint64("sync", 64, "compare architectural state every N committed instructions")
		units    = flag.Int("units", 0, "units per generated program (0 = seed-derived)")
		minimize = flag.Bool("minimize", true, "shrink diverging programs to a minimal reproducer")
		perturb  = flag.String("perturb", "", "inject a synthetic model bug: model[:reg:bit:after], e.g. pipelined:9:17:2")
		maxSteps = flag.Uint64("maxsteps", 0, "per-model step budget (0 = default)")
		forkMode = flag.Bool("fork", false, "fuzz COW fork points instead of lockstep models: fork children at random instruction counts and compare against straight-line execution")
		forkPts  = flag.Int("forkpoints", 4, "fork points per program in -fork mode")
		verbose  = flag.Bool("v", false, "log every program, not just divergences")
		metrics  = flag.Bool("metrics", false, "print fuzzing counters at exit")
		httpAddr = flag.String("http", "", "serve live observability endpoints (/metrics /debug/pprof) during the fuzz run")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics || *httpAddr != "" {
		reg = obs.NewRegistry()
	}
	if *httpAddr != "" {
		srv, err := httpserv.New(*httpAddr, httpserv.Config{Metrics: reg})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability server on http://%s\n", srv.Addr())
	}
	programs := reg.Counter("fuzz.programs")
	diverged := reg.Counter("fuzz.divergences")
	minimized := reg.Counter("fuzz.minimizations")
	instsRun := reg.Counter("fuzz.program_insts")
	dumpObs := func() {
		if reg != nil {
			_ = reg.WriteText(os.Stdout)
		}
	}

	if *forkMode {
		failures := 0
		for i := 0; i < *n; i++ {
			s := *seed + int64(i)
			res, err := conformance.ForkFuzz(s, *forkPts, conformance.GenConfig{Units: *units})
			programs.Inc()
			if err != nil {
				failures++
				diverged.Inc()
				fmt.Printf("seed %d: FORK DIVERGENCE\n%v\n", s, err)
				continue
			}
			instsRun.Add(res.Insts)
			if *verbose {
				fmt.Printf("seed %d: ok (%d fork points, %d insts)\n", s, res.Points, res.Insts)
			}
		}
		fmt.Printf("gemfi-fuzz: %d programs, %d fork divergences\n", *n, failures)
		dumpObs()
		if failures > 0 {
			return fmt.Errorf("%d of %d programs diverged under forking", failures, *n)
		}
		return nil
	}

	cfg := conformance.Config{SyncInterval: *sync, MaxSteps: *maxSteps}
	for _, m := range strings.Split(*models, ",") {
		switch kind := sim.ModelKind(strings.TrimSpace(m)); kind {
		case sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined:
			cfg.Models = append(cfg.Models, kind)
		default:
			return fmt.Errorf("unknown model %q", m)
		}
	}
	if len(cfg.Models) < 2 {
		return fmt.Errorf("need at least two models to compare, got %q", *models)
	}
	if *perturb != "" {
		spec, err := parsePerturb(*perturb)
		if err != nil {
			return err
		}
		cfg.Perturb = spec
	}

	divergences := 0
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		p := conformance.Generate(s, conformance.GenConfig{Units: *units})
		prog, err := p.Build()
		if err != nil {
			return fmt.Errorf("seed %d: build: %w", s, err)
		}
		d, err := conformance.RunLockstep(prog, cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		programs.Inc()
		instsRun.Add(uint64(len(prog.Text)))
		if d == nil {
			if *verbose {
				fmt.Printf("seed %d: ok (%d units, %d insts)\n", s, len(p.Units), len(prog.Text))
			}
			continue
		}
		divergences++
		diverged.Inc()
		fmt.Printf("seed %d: DIVERGENCE\n%s", s, d.Report())
		if *minimize {
			minimized.Inc()
			min, md := conformance.MinimizeDivergence(p, cfg)
			if min == nil {
				fmt.Println("  (divergence did not reproduce during minimization)")
				continue
			}
			minProg, err := min.Build()
			if err != nil {
				return fmt.Errorf("seed %d: rebuild minimized: %w", s, err)
			}
			fmt.Printf("minimized reproducer (%d units, %d instructions):\n%s",
				len(min.Units), len(minProg.Text), conformance.Listing(minProg))
			if md != nil {
				fmt.Printf("minimized divergence:\n%s", md.Report())
			}
		}
	}
	fmt.Printf("gemfi-fuzz: %d programs, %d divergences (models: %s)\n", *n, divergences, *models)
	dumpObs()
	if divergences > 0 {
		return fmt.Errorf("%d of %d programs diverged", divergences, *n)
	}
	return nil
}

// parsePerturb parses model[:reg:bit:after].
func parsePerturb(s string) (*conformance.PerturbSpec, error) {
	parts := strings.Split(s, ":")
	spec := &conformance.PerturbSpec{Reg: 9, Bit: 17, After: 2}
	switch kind := sim.ModelKind(parts[0]); kind {
	case sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined:
		spec.Model = kind
	default:
		return nil, fmt.Errorf("perturb: unknown model %q", parts[0])
	}
	if len(parts) == 1 {
		return spec, nil
	}
	if len(parts) != 4 {
		return nil, fmt.Errorf("perturb: want model[:reg:bit:after], got %q", s)
	}
	var err error
	if spec.Reg, err = strconv.Atoi(parts[1]); err != nil {
		return nil, fmt.Errorf("perturb: bad reg %q", parts[1])
	}
	if spec.Bit, err = strconv.Atoi(parts[2]); err != nil {
		return nil, fmt.Errorf("perturb: bad bit %q", parts[2])
	}
	if spec.After, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
		return nil, fmt.Errorf("perturb: bad after %q", parts[3])
	}
	return spec, nil
}
