// Command gemfi-serve runs the durable campaign service: a long-running
// server that accepts fault-injection campaign specs over HTTP, executes
// them on a local runner pool (and, with -now, on network-of-workstation
// workers), journals every state transition so a crash or restart
// resumes mid-campaign with exactly-once accounting, and streams
// progress to any number of watchers.
//
//	gemfi-serve -addr :8080 -dir /var/lib/gemfi -slots 8 -now :7070
//
// Submit and watch with gemfi-campaign -server, or raw curl:
//
//	curl -X POST localhost:8080/campaigns -d '{"workload":"pi","n":500}'
//	curl localhost:8080/campaigns/c0001/stream
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (campaign API + observability)")
		dir     = flag.String("dir", "gemfi-serve.d", "journal directory (campaigns survive restarts here)")
		slots   = flag.Int("slots", 4, "concurrent local experiment executions across all campaigns")
		nowAddr = flag.String("now", "", "also serve NoW workers (gemfi-now worker -addr) on this address")
		drain   = flag.Duration("drain", 30*time.Second, "in-flight drain bound on SIGINT/SIGTERM")
		metrics = flag.Bool("metrics", false, "print the service metrics registry at exit")

		spansOff   = flag.Bool("no-spans", false, "disable distributed span tracing (/trace and /traces endpoints)")
		spanSample = flag.Int("span-sample", 1, "keep 1 in N experiment traces (head sampling; crashed/SDC traces are always kept)")
		spanRing   = flag.Int("span-ring", 0, "recent-trace ring capacity (0 = default)")

		flightOn = flag.Bool("flight", false, "flight recorder on every campaign: crashed/SDC experiments carry post-mortem dumps, journaled and served at /postmortem/{id}")
	)
	flag.Parse()

	// The registry always exists — /metrics is part of the API surface;
	// -metrics additionally dumps it at exit. Same for span tracing:
	// /trace/{id} is part of the API surface unless -no-spans.
	reg := obs.NewRegistry()
	var spans *obs.SpanRecorder
	if !*spansOff {
		spans = obs.NewSpanRecorder()
		spans.SetSampling(*spanSample)
		if *spanRing > 0 {
			spans.SetRingCap(*spanRing)
		}
	}
	s, err := serv.New(serv.Config{Dir: *dir, Slots: *slots, Metrics: reg, Spans: spans, Flight: *flightOn})
	if err != nil {
		return err
	}
	srv, ln, err := s.Serve(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("campaign service on http://%s (journal %s, %d slots)\n", ln.Addr(), *dir, *slots)

	var nowLn net.Listener
	if *nowAddr != "" {
		nowLn, err = net.Listen("tcp", *nowAddr)
		if err != nil {
			return err
		}
		s.ServeWorkers(nowLn)
		fmt.Printf("NoW worker port on %s\n", nowLn.Addr())
	}

	// Graceful shutdown: drain in-flight experiments within the bound,
	// fsync the journal, then exit. A SIGKILL instead loses nothing the
	// journal already flushed — the restart test in CI proves it.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "gemfi-serve: %v — draining (bound %s)\n", sig, *drain)
	if nowLn != nil {
		_ = nowLn.Close()
	}
	_ = srv.Close()
	if err := s.Shutdown(*drain); err != nil {
		return err
	}
	if *metrics {
		return reg.WriteText(os.Stdout)
	}
	return nil
}
