// Command gemfi-bench measures simulator throughput (guest insts/sec per
// CPU model, campaign experiments/sec) and records the results in
// BENCH_simcore.json, the perf trajectory file tracked across PRs:
//
//	gemfi-bench -label current            # full suite, appends/replaces "current"
//	gemfi-bench -quick -label ci          # short mode for CI
//	gemfi-bench -compare baseline,current # print speedups without measuring
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/workloads"
)

func main() {
	var (
		out      = flag.String("o", "BENCH_simcore.json", "benchmark trajectory file to update")
		label    = flag.String("label", "current", "label for this measurement record")
		workload = flag.String("workload", "pi", "workload to measure")
		quick    = flag.Bool("quick", false, "short mode: test-scale workload, fewer reps/experiments (CI)")
		reps     = flag.Int("reps", 0, "best-of repetitions per model (0 = default)")
		exps     = flag.Int("n", 0, "campaign experiments (0 = default)")
		workers  = flag.Int("workers", 4, "campaign pool size")
		sampling = flag.Bool("sampling", false, "also run the adaptive-vs-uniform sampling accuracy suite over all workloads")
		sbudget  = flag.Int("sampling-budget", 0, "per-mode experiment budget for -sampling (0 = default)")
		compare   = flag.String("compare", "", "compare two labels from the file (base,current) and exit")
		failBelow = flag.Float64("fail-below", 0, "with -compare: exit nonzero if any model record's throughput ratio falls below this (e.g. 0.90 fails >10% regressions; 0 = report only)")
	)
	flag.Parse()
	log.SetFlags(0)

	f, err := bench.Load(*out)
	if err != nil {
		log.Fatal(err)
	}
	if *compare != "" {
		base, cur, ok := strings.Cut(*compare, ",")
		if !ok {
			log.Fatalf("-compare wants base,current labels")
		}
		b, c := f.Find(base), f.Find(cur)
		if b == nil || c == nil {
			log.Fatalf("labels %q/%q not both present in %s", base, cur, *out)
		}
		fmt.Print(bench.Speedup(b, c))
		if *failBelow > 0 {
			if regs := bench.Regressions(b, c, *failBelow); len(regs) > 0 {
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
				}
				os.Exit(1)
			}
		}
		return
	}

	cfg := bench.Config{
		Label:           *label,
		Workload:        *workload,
		Reps:            *reps,
		CampaignExps:    *exps,
		CampaignWorkers: *workers,
		Sampling:        *sampling,
		SamplingBudget:  *sbudget,
	}
	if *quick {
		cfg.Scale = workloads.ScaleTest
		if cfg.Reps == 0 {
			cfg.Reps = 2
		}
		if cfg.CampaignExps == 0 {
			cfg.CampaignExps = 12
		}
	}
	rec, err := bench.Run(cfg, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	f.Add(rec)
	if err := f.Save(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d records)", *out, len(f.Records))
	if base := f.Find("baseline"); base != nil && *label != "baseline" {
		fmt.Fprintf(os.Stderr, "speedup vs baseline:\n%s", bench.Speedup(base, &rec))
	}
}
