package main

// Campaign-service client mode (-server): submit specs to a running
// gemfi-serve, watch campaigns stream in live over SSE, and resume
// watching after a client restart — the server's journal, not this
// process, is the source of truth.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/campaign"
	"repro/internal/serv"
)

type clientArgs struct {
	server string
	submit bool
	watch  string
	resume string

	workload string
	scale    string
	model    string
	n        int
	seed     int64
	sampling string
	strata   int
	batch    int
	tenant   string
	weight   int
	workers  int
	fork     bool
	taint    bool
	profile  bool
	flight   bool
}

func runClient(a clientArgs) error {
	base := strings.TrimSuffix(a.server, "/")
	switch {
	case a.submit:
		spec := serv.CampaignSpec{
			Workload: a.workload, Scale: a.scale, Model: a.model,
			N: a.n, Seed: a.seed,
			Sampling: a.sampling, Strata: a.strata, Batch: a.batch,
			Tenant: a.tenant, Weight: a.weight, Workers: a.workers,
			Fork: a.fork, Taint: a.taint, Profile: a.profile, Flight: a.flight,
		}
		body, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return clientErr("submit", resp)
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			return err
		}
		fmt.Println(created.ID)
		return nil

	case a.watch != "":
		return watchCampaign(base, a.watch, false)

	case a.resume != "":
		return watchCampaign(base, a.resume, true)
	}
	return fmt.Errorf("client mode needs one of -submit, -watch <id>, -resume <id>")
}

// watchCampaign streams a campaign until it finishes. In resume mode the
// report-so-far prints first, so a reconnecting client sees where the
// campaign stands before the stream (which replays history, then runs
// live) takes over.
func watchCampaign(base, id string, resumeMode bool) error {
	if resumeMode {
		rep, err := fetchReport(base, id)
		if err != nil {
			return err
		}
		fmt.Printf("campaign %s (%s, %s sampling): %d results so far\n",
			rep.ID, rep.Workload, rep.Sampling, rep.Total)
	}
	resp, err := http.Get(base + "/campaigns/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientErr("stream", resp)
	}

	tally := make(campaign.Tally)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "result":
				var r campaign.Result
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					return err
				}
				tally.Add(r)
				fmt.Printf("exp %4d: %-18s (fault %s@%d, %d insts)\n",
					r.ID, r.Outcome, r.Fault.Loc, r.Fault.When, r.Insts)
			case "done":
				var st serv.CampaignStatus
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return err
				}
				fmt.Printf("\ncampaign %s %s: %d experiments\n", st.ID, st.Phase, tally.Total())
				for _, o := range campaign.Outcomes() {
					fmt.Printf("  %-18s %5d (%5.1f%%)\n", o, tally[o], 100*tally.Fraction(o))
				}
				if st.AggCIWidth > 0 {
					fmt.Printf("vulnerability estimate %.4f (±%.4f at campaign confidence)\n",
						st.AggP, st.AggCIWidth/2)
				}
				return nil
			case "status":
				// Periodic keep-alive snapshots; nothing to print.
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream interrupted: %w (reconnect with -resume %s)", err, id)
	}
	return fmt.Errorf("stream ended before campaign finished (reconnect with -resume %s)", id)
}

func fetchReport(base, id string) (*serv.Report, error) {
	resp, err := http.Get(base + "/campaigns/" + id + "/report")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, clientErr("report", resp)
	}
	var rep serv.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

func clientErr(op string, resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if body.Error != "" {
		return fmt.Errorf("%s: %s (HTTP %d)", op, body.Error, resp.StatusCode)
	}
	return fmt.Errorf("%s: HTTP %d", op, resp.StatusCode)
}
