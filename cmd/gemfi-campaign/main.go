// Command gemfi-campaign runs fault injection campaigns and regenerates
// the paper's evaluation figures:
//
//	gemfi-campaign -experiment fig5 -n 100 -parallel 8
//	gemfi-campaign -experiment fig6 -workload knapsack -n 400
//	gemfi-campaign -experiment fig7 -trials 5
//	gemfi-campaign -experiment fig8 -n 20 -workers 4
//	gemfi-campaign -experiment custom -workload dct -n 200 -json out.json
//
// With -server it is instead a client of a gemfi-serve campaign service:
//
//	gemfi-campaign -server http://localhost:8080 -submit -workload pi -n 500 -sampling adaptive
//	gemfi-campaign -server http://localhost:8080 -watch c0001
//	gemfi-campaign -server http://localhost:8080 -resume c0001
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/httpserv"
	"repro/internal/sim"
	"repro/internal/taint"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gemfi-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "custom", "fig5|fig6|fig7|fig8|vdd|table1|custom")
		workload   = flag.String("workload", "pi", "workload for fig6/custom")
		scaleName  = flag.String("scale", "test", "workload scale: test|small|paper")
		n          = flag.Int("n", 100, "experiments (per location for fig5)")
		bins       = flag.Int("bins", 5, "time bins for fig6")
		trials     = flag.Int("trials", 3, "trials for fig7")
		workers    = flag.Int("workers", 4, "parallel workers for fig8")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "local parallelism")
		seed       = flag.Int64("seed", 1, "campaign seed")
		model      = flag.String("model", "atomic", "CPU model for experiments")
		jsonOut    = flag.String("json", "", "also write the report as JSON to this file")
		traceOut   = flag.String("trace", "", "stream campaign trace events as JSON lines to this file (custom experiment)")
		metrics    = flag.Bool("metrics", false, "print the campaign metrics registry at exit")
		progress   = flag.Bool("progress", true, "print periodic progress lines (custom experiment)")
		httpAddr   = flag.String("http", "", "serve live observability endpoints (/metrics /status /profile /taint /debug/pprof) during the campaign (custom experiment)")
		profile    = flag.Bool("profile", false, "profile the guest across all experiments and print the top table plus the per-PC outcome attribution (custom experiment)")
		profileTop = flag.Int("profile-top", 20, "rows in the -profile tables")
		taintOn    = flag.Bool("taint", false, "track fault propagation per experiment: verdict tally, Result.Prop summaries in -json, propagation columns in the PC report (custom experiment)")
		fastFwd    = flag.Bool("fast-forward", false, "run each experiment on the cheap atomic model until the fault window opens, then switch to -model (campaign speedup; no effect when -model atomic)")
		bbtOn      = flag.Bool("bbt", true, "translate hot basic blocks into fused closure chains wherever the atomic fast path runs (fast-forward prefix, atomic experiments, post-resolve tail)")
		forkOn     = flag.Bool("fork", false, "fork-server mode: one trunk run freezes COW snapshots across the fault window; each experiment forks from the closest one instead of replaying the warm-up (custom experiment)")
		forkSnaps  = flag.Int("fork-snapshots", 32, "target trunk snapshots across the fault window in -fork mode")
		forkPrune  = flag.Bool("fork-prune", true, "classify provably masked experiments early in -fork mode (disabled automatically under -profile/-taint)")

		flightOn    = flag.Bool("flight", false, "flight recorder: dump the last -flight-depth committed instructions of every crashed/SDC experiment onto its result (custom experiment; served at /postmortem/{id} with -http)")
		flightDepth = flag.Int("flight-depth", 0, "flight recorder ring size (0 = default)")

		// Distributed span tracing (custom experiment). Each experiment
		// becomes one trace: an experiment root, per-phase child spans,
		// and fault-lifecycle events.
		spansOn     = flag.Bool("spans", false, "record per-experiment span traces (implied by the other -span* flags and -http)")
		spanSample  = flag.Int("span-sample", 1, "keep 1 in N experiment traces (head sampling; crashed/SDC traces are always kept)")
		spansJSONL  = flag.String("spans-jsonl", "", "stream completed span trees as JSON lines to this file (validate with gemfi -validate-spans)")
		spansChrome = flag.String("spans-chrome", "", "write kept traces as Chrome/Perfetto catapult JSON to this file at exit")
		traceID     = flag.String("trace-id", "", "print one trace's span timeline at exit: a trace ID, or 'last' for the most recent kept trace")

		// Campaign-service client mode.
		server   = flag.String("server", "", "gemfi-serve base URL; switches to client mode (-submit/-watch/-resume)")
		submit   = flag.Bool("submit", false, "submit a campaign spec built from the flags to -server and print its ID")
		watch    = flag.String("watch", "", "stream a -server campaign's results live until it finishes")
		resume   = flag.String("resume", "", "print a -server campaign's report so far, then stream the remainder")
		sampling = flag.String("sampling", "", "service sampling mode: uniform|adaptive (-submit)")
		strata   = flag.Int("strata", 0, "adaptive strata count (-submit; 0 = service default)")
		batch    = flag.Int("batch", 0, "adaptive batch size (-submit; 0 = service default)")
		tenant   = flag.String("tenant", "", "fair-share tenant account (-submit)")
		weight   = flag.Int("weight", 0, "fair-share weight (-submit; 0 = default 1)")
	)
	flag.Parse()

	if *server != "" {
		return runClient(clientArgs{
			server: *server, submit: *submit, watch: *watch, resume: *resume,
			workload: *workload, scale: *scaleName, model: *model,
			n: *n, seed: *seed, sampling: *sampling, strata: *strata, batch: *batch,
			tenant: *tenant, weight: *weight, workers: *parallel,
			fork: *forkOn, taint: *taintOn, profile: *profile, flight: *flightOn,
		})
	}

	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metrics || *httpAddr != "" {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer()
		tracer.StreamJSONL(traceFile)
	}
	// dumpObs flushes trace/metrics output on the paths that ran a
	// campaign.
	dumpObs := func() error {
		if tracer != nil {
			if err := tracer.Flush(); err != nil {
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		if reg != nil {
			return reg.WriteText(os.Stdout)
		}
		return nil
	}
	cfg := sim.Config{
		Model:                   sim.ModelKind(*model),
		EnableFI:                true,
		MaxInsts:                2_000_000_000,
		SwitchToAtomicOnResolve: sim.ModelKind(*model) == sim.ModelPipelined,
		FastForward:             *fastFwd,
		EnableBlockTranslation:  *bbtOn,
	}
	opts := campaign.RunnerOptions{Cfg: &cfg}

	var report interface {
		String() string
	}
	switch *experiment {
	case "fig5":
		rep, err := campaign.RunFig5(campaign.Fig5Config{
			Workloads:    workloads.All(scale),
			PerLocation:  *n,
			Parallelism:  *parallel,
			Seed:         *seed,
			RunnerConfig: opts,
		})
		if err != nil {
			return err
		}
		report = rep

	case "fig6":
		w, err := workloads.ByName(*workload, scale)
		if err != nil {
			return err
		}
		rep, err := campaign.RunFig6(campaign.Fig6Config{
			Workload:     w,
			Experiments:  *n,
			Bins:         *bins,
			Parallelism:  *parallel,
			Seed:         *seed,
			RunnerConfig: opts,
		})
		if err != nil {
			return err
		}
		report = rep

	case "fig7":
		rep, err := campaign.RunFig7(campaign.Fig7Config{
			Workloads: workloads.All(scale),
			Trials:    *trials,
			Metrics:   reg,
		})
		if err != nil {
			return err
		}
		report = rep

	case "fig8":
		rep, err := campaign.RunFig8(campaign.Fig8Config{
			Workloads:   workloads.All(scale),
			Experiments: *n,
			Workers:     *workers,
			Seed:        *seed,
			Cfg:         &cfg,
			Metrics:     reg,
		})
		if err != nil {
			return err
		}
		report = rep

	case "table1":
		fmt.Println("Table I: Thessaly-64 instruction formats (Alpha layout)")
		for _, row := range [][2]string{
			{"Memory", "opcode[31:26] Ra[25:21] Rb[20:16] displacement[15:0]"},
			{"Branch", "opcode[31:26] Ra[25:21] displacement[20:0]"},
			{"Operate (reg)", "opcode[31:26] Ra[25:21] Rb[20:16] SBZ[15:13] 0[12] func[11:5] Rc[4:0]"},
			{"Operate (lit)", "opcode[31:26] Ra[25:21] literal[20:13] 1[12] func[11:5] Rc[4:0]"},
			{"FP Operate", "opcode[31:26] Fa[25:21] Fb[20:16] func[15:5] Fc[4:0]"},
			{"PALcode", "opcode[31:26] palcode function[25:0]"},
		} {
			fmt.Printf("  %-14s %s\n", row[0], row[1])
		}
		return nil

	case "vdd":
		w, err := workloads.ByName(*workload, scale)
		if err != nil {
			return err
		}
		rep, err := campaign.RunVddSweep(campaign.VddConfig{
			Workload:     w,
			PerVoltage:   *n,
			Parallelism:  *parallel,
			Seed:         *seed,
			RunnerConfig: opts,
		})
		if err != nil {
			return err
		}
		report = rep

	case "custom":
		w, err := workloads.ByName(*workload, scale)
		if err != nil {
			return err
		}
		pool, err := campaign.NewPool(w, *parallel, opts)
		if err != nil {
			return err
		}
		pool.Metrics = reg
		pool.Tracer = tracer
		wantSpans := *spansOn || *spansJSONL != "" || *spansChrome != "" ||
			*traceID != "" || *httpAddr != ""
		var spanRec *obs.SpanRecorder
		var spansFile *os.File
		if wantSpans {
			spanRec = obs.NewSpanRecorder()
			spanRec.SetSampling(*spanSample)
			pool.Spans = spanRec
			if *spansJSONL != "" {
				if spansFile, err = os.Create(*spansJSONL); err != nil {
					return err
				}
				// The sink fires from whichever worker completes a trace;
				// serialize the file writes.
				var mu sync.Mutex
				spanRec.StreamJSONL(func(tr obs.Trace) {
					mu.Lock()
					defer mu.Unlock()
					_ = obs.WriteTraceJSONL(spansFile, tr)
				})
			}
		}
		if *profile || *httpAddr != "" {
			pool.AttachProfilers()
		}
		if *taintOn || *httpAddr != "" {
			pool.AttachTaint()
		}
		// Post-mortem index for /postmortem/{id}: filled as results land
		// (OnResult fires from worker goroutines, hence the lock).
		var pmMu sync.Mutex
		pmByTrace := make(map[string]*flight.Postmortem)
		if *flightOn {
			pool.AttachFlight(*flightDepth)
			pool.OnResult = func(res campaign.Result) {
				if res.Postmortem == nil {
					return
				}
				pmMu.Lock()
				pmByTrace[res.TraceID] = res.Postmortem
				pmByTrace[fmt.Sprintf("exp/%d", res.ID)] = res.Postmortem
				pmMu.Unlock()
			}
		}
		if *forkOn {
			if err := pool.EnableFork(campaign.ForkOptions{
				Snapshots: *forkSnaps,
				Prune:     *forkPrune,
				TwinCheck: *forkPrune,
			}); err != nil {
				return err
			}
		}
		if *httpAddr != "" {
			hcfg := httpserv.Config{
				Metrics: reg,
				Status:  func() any { return pool.Status() },
				Profile: pool.Profile,
				Taint:   pool.TaintReport,
				Spans:   spanRec,
				TopN:    *profileTop,
			}
			if *flightOn {
				hcfg.Postmortem = func(id string) (*flight.Postmortem, bool) {
					pmMu.Lock()
					defer pmMu.Unlock()
					pm, ok := pmByTrace[id]
					return pm, ok
				}
			}
			srv, err := httpserv.New(*httpAddr, hcfg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "observability server on http://%s\n", srv.Addr())
		}
		if *progress {
			// Throttled progress: at most one line every ~2s, plus the
			// final one.
			var last time.Time
			pool.OnProgress = func(done, total int, elapsed time.Duration) {
				if done != total && time.Since(last) < 2*time.Second {
					return
				}
				last = time.Now()
				rate := float64(done) / elapsed.Seconds()
				fmt.Fprintf(os.Stderr, "campaign: %d/%d experiments (%.1f exp/s)\n", done, total, rate)
			}
		}
		exps := campaign.GenerateUniform(*n, campaign.GenConfig{
			WindowInsts: pool.Runner().WindowInsts,
			Seed:        *seed,
		})
		results := pool.RunAll(exps)
		tally := campaign.TallyOf(results)
		fmt.Printf("workload %s: %d experiments\n", w.Name, tally.Total())
		for _, o := range campaign.Outcomes() {
			fmt.Printf("  %-18s %5d (%5.1f%%)\n", o, tally[o], 100*tally.Fraction(o))
		}
		if *flightOn {
			dumps := 0
			for _, r := range results {
				if r.Postmortem != nil {
					dumps++
				}
			}
			fmt.Printf("flight recorder: %d post-mortem dumps (crashed/SDC/reached-state)\n", dumps)
		}
		if *forkOn {
			st := pool.ForkStats()
			fmt.Printf("fork server: %d forks from %d snapshots (%d evicted, ~%d KiB live), "+
				"pruned %d masked + %d twin-converged of %d twin checks\n",
				st.Forks, st.SnapshotsTaken, st.SnapshotsEvicted, st.ApproxBytes/1024,
				st.PrunedMasked, st.PrunedTwin, st.TwinChecks)
		}
		if *taintOn {
			// Companion tally: for each outcome above, how the taint
			// tracker explains it.
			verdicts := make(map[taint.Verdict]int)
			for _, r := range results {
				if r.Prop != nil {
					verdicts[r.Prop.Verdict]++
				}
			}
			fmt.Println("propagation verdicts:")
			for _, v := range taint.Verdicts() {
				if n := verdicts[v]; n > 0 {
					fmt.Printf("  %-18s %5d\n", v, n)
				}
			}
		}
		if *profile {
			if p := pool.Profile(); p != nil {
				fmt.Println()
				if err := p.WriteTop(os.Stdout, *profileTop); err != nil {
					return err
				}
			}
			syms := pool.Runner().Profiler().Symbols()
			rows, unattributed := campaign.AttributeByPC(results, syms)
			if len(rows) > *profileTop {
				rows = rows[:*profileTop]
			}
			fmt.Println()
			if err := campaign.WritePCReport(os.Stdout, rows, unattributed); err != nil {
				return err
			}
		}
		if spanRec != nil {
			if err := dumpSpans(spanRec, spansFile, *spansChrome, *traceID); err != nil {
				return err
			}
		}
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, results); err != nil {
				return err
			}
		}
		return dumpObs()

	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}

	fmt.Print(report.String())
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, report); err != nil {
			return err
		}
	}
	return dumpObs()
}

// dumpSpans flushes the span-tracing outputs at campaign end: close the
// JSONL stream, write the Chrome/Perfetto export, and print the
// requested trace timeline.
func dumpSpans(rec *obs.SpanRecorder, jsonl *os.File, chromePath, traceID string) error {
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			return err
		}
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := rec.WriteSpansChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("span trace written to %s (load in chrome://tracing or Perfetto)\n", chromePath)
	}
	if traceID != "" {
		var tr *obs.Trace
		if traceID == "last" {
			if ts := rec.Traces(); len(ts) > 0 {
				tr = ts[0]
			}
		} else {
			tr = rec.TraceByID(traceID)
		}
		if tr == nil {
			fmt.Fprintf(os.Stderr, "trace %q not found (evicted or sampled out; %d dropped)\n",
				traceID, rec.Dropped())
		} else if err := tr.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if n := rec.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "spans: %d spans dropped by sampling/eviction (obs.spans.dropped)\n", n)
	}
	return nil
}

func writeJSON(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func parseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}
