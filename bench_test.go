// Package gemfi's benchmark harness regenerates every table and figure of
// the paper's evaluation. Each benchmark prints the same rows/series the
// paper reports; absolute numbers differ (the substrate is a simulator,
// not the authors' Xeon cluster) but the shapes are asserted in
// EXPERIMENTS.md:
//
//	BenchmarkTableIInstructionFormats  - Table I (ISA decode throughput per format)
//	BenchmarkFig2FIPerInstruction      - Fig. 2  (the per-instruction FI fast path)
//	BenchmarkFig4OutcomeClasses        - Fig. 4  (DCT outcome categories)
//	BenchmarkFig5Campaign              - Fig. 5  (outcome vs fault location, 6 apps)
//	BenchmarkFig6TimingSweep           - Fig. 6  (outcome vs injection time)
//	BenchmarkFig7Overhead              - Fig. 7  (GemFI vs vanilla simulator)
//	BenchmarkFig8CampaignTime          - Fig. 8  (baseline vs checkpoint vs parallel)
//
// Run with: go test -bench=. -benchmem
package gemfi

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// BenchmarkTableIInstructionFormats measures decode across the four
// Table I instruction formats (and prints the format table once).
func BenchmarkTableIInstructionFormats(b *testing.B) {
	type row struct {
		name string
		word isa.Word
	}
	mem, _ := isa.MakeMem(isa.OpLDQ, 1, 30, 16)
	br, _ := isa.MakeBranch(isa.OpBNE, 5, -12)
	rows := []row{
		{"Memory", mem},
		{"Branch", br},
		{"Operate", isa.MakeOperate(isa.OpIntArith, isa.FnADDQ, 1, 2, 3)},
		{"OperateLit", isa.MakeOperateLit(isa.OpIntShift, isa.FnSLL, 1, 7, 3)},
		{"FPOperate", isa.MakeFP(isa.FnMULT, 1, 2, 3)},
		{"PALcode", isa.MakePal(isa.PalCallSys)},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if isa.Decode(r.word).Kind == isa.KindIllegal {
					b.Fatal("row decodes illegal")
				}
			}
		})
	}
}

// fig2Program is a pure compute loop used for the per-instruction
// overhead microbenchmarks.
const fig2Iterations = 2000

func fig2Sim(b *testing.B, enableFI, activate bool) *sim.Simulator {
	b.Helper()
	activateStmt := ""
	if activate {
		activateStmt = "fi_activate(0);"
	}
	src := fmt.Sprintf(`
int main() {
    %s
    int s = 0;
    for (int i = 0; i < %d; i = i + 1) { s = s + i * 3; }
    %s
    if (s < 0) { return 1; }
    return 0;
}`, activateStmt, fig2Iterations, activateStmt)
	p, err := CompileC(src)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSimulator(SimConfig{Model: ModelAtomic, EnableFI: enableFI, MaxInsts: 100_000_000})
	if err := s.Load(p); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig2FIPerInstruction measures the engine's per-instruction
// fast path (Fig. 2): vanilla (engine absent), FI idle (engine attached,
// thread not activated) and FI active (thread activated, no faults).
func BenchmarkFig2FIPerInstruction(b *testing.B) {
	cases := []struct {
		name               string
		enableFI, activate bool
	}{
		{"Vanilla", false, false},
		{"FIIdle", true, false},
		{"FIActive", true, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := fig2Sim(b, tc.enableFI, tc.activate)
				b.StartTimer()
				if r := s.Run(); r.Failed() {
					b.Fatalf("%+v", r)
				}
			}
		})
	}
}

// BenchmarkFig4OutcomeClasses exercises the DCT evaluator on the three
// result categories the paper's Fig. 4 illustrates: strict, relaxed
// (lossy but acceptable) and SDC.
func BenchmarkFig4OutcomeClasses(b *testing.B) {
	w := workloads.DCT(workloads.ScaleTest)
	golden, _, err := workloads.Golden(w)
	if err != nil {
		b.Fatal(err)
	}
	relaxed := cloneResult(golden)
	relaxed.Data["out"][0] ^= 1
	sdc := cloneResult(golden)
	for i := range sdc.Data["out"] {
		sdc.Data["out"][i] = 0
	}
	cases := []struct {
		name string
		run  *workloads.Result
		want workloads.Grade
	}{
		{"Strict", golden, workloads.GradeStrict},
		{"Relaxed", relaxed, workloads.GradeCorrect},
		{"SDC", sdc, workloads.GradeSDC},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := w.Classify(golden, tc.run); got != tc.want {
					b.Fatalf("grade %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// BenchmarkFig5Campaign runs the Fig. 5 campaign matrix (all six apps x
// seven locations) once per iteration and prints the outcome table.
func BenchmarkFig5Campaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.RunFig5(campaign.Fig5Config{
			Workloads:   workloads.All(workloads.ScaleTest),
			PerLocation: 12,
			Parallelism: 4,
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep.String())
		}
	}
}

// BenchmarkFig6TimingSweep runs the Fig. 6 injection-time correlation for
// the paper's three interesting workloads.
func BenchmarkFig6TimingSweep(b *testing.B) {
	for _, name := range []string{"pi", "knapsack", "jacobi"} {
		b.Run(name, func(b *testing.B) {
			w, err := workloads.ByName(name, workloads.ScaleTest)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := campaign.RunFig6(campaign.Fig6Config{
					Workload: w, Experiments: 60, Bins: 4, Parallelism: 4, Seed: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("\n%s", rep.String())
				}
			}
		})
	}
}

// BenchmarkFig7Overhead measures GemFI-enabled vs vanilla simulation time
// per application (FI active, no faults injected, cycle-accurate model
// throughout — the paper's worst case).
func BenchmarkFig7Overhead(b *testing.B) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		p, err := w.Build()
		if err != nil {
			b.Fatal(err)
		}
		for _, enabled := range []bool{false, true} {
			name := w.Name + "/vanilla"
			if enabled {
				name = w.Name + "/gemfi"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := sim.New(sim.Config{Model: sim.ModelPipelined, EnableFI: enabled, MaxInsts: 2_000_000_000})
					if err := s.Load(p); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if r := s.Run(); r.Failed() {
						b.Fatalf("%+v", r)
					}
				}
			})
		}
	}
}

// BenchmarkFig8CampaignTime measures the campaign-time effect of the two
// optimizations (checkpoint fast-forwarding; parallel workers).
func BenchmarkFig8CampaignTime(b *testing.B) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	exps := func(r *campaign.Runner) []campaign.Experiment {
		return campaign.GenerateUniform(10, campaign.GenConfig{WindowInsts: r.WindowInsts, Seed: 3})
	}
	b.Run("Baseline", func(b *testing.B) {
		r, err := campaign.NewRunner(w, campaign.RunnerOptions{DisableCheckpoint: true})
		if err != nil {
			b.Fatal(err)
		}
		es := exps(r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range es {
				r.Run(e)
			}
		}
	})
	b.Run("Checkpoint", func(b *testing.B) {
		r, err := campaign.NewRunner(w, campaign.RunnerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		es := exps(r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range es {
				r.Run(e)
			}
		}
	})
	b.Run("CheckpointParallel4", func(b *testing.B) {
		pool, err := campaign.NewPool(w, 4, campaign.RunnerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		es := exps(pool.Runner())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.RunAll(es)
		}
	})
}

// BenchmarkCampaignFork compares the three campaign execution strategies
// on identical experiments: full replay from the checkpoint, the
// fast-forward prefix, and the fork server (each experiment forked from
// the closest COW trunk snapshot). Trunk setup runs once outside the
// timed loop, matching how a long campaign amortizes it.
func BenchmarkCampaignFork(b *testing.B) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	newPool := func(b *testing.B, ff, fork bool) (*campaign.Pool, []campaign.Experiment) {
		b.Helper()
		cfg := sim.DefaultConfig()
		cfg.FastForward = ff
		pool, err := campaign.NewPool(w, 4, campaign.RunnerOptions{Cfg: &cfg})
		if err != nil {
			b.Fatal(err)
		}
		if fork {
			if err := pool.EnableFork(campaign.DefaultForkOptions()); err != nil {
				b.Fatal(err)
			}
		}
		exps := campaign.GenerateUniform(12, campaign.GenConfig{
			WindowInsts: pool.Runner().WindowInsts, Seed: 7,
		})
		return pool, exps
	}
	for _, tc := range []struct {
		name     string
		ff, fork bool
	}{
		{"Replay", false, false},
		{"FastForward", true, false},
		{"Fork", false, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pool, exps := newPool(b, tc.ff, tc.fork)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.RunAll(exps)
			}
			b.ReportMetric(float64(len(exps))*float64(b.N)/b.Elapsed().Seconds(), "exps/sec")
		})
	}
}

// BenchmarkCowSnapshotOverhead measures the heap uniquely attributable to
// one trunk snapshot as a function of dirty rate: the trunk rewrites a
// fraction of a 256-page working set between freezes, so each freeze
// should cost the dirtied pages (reported as bytes/snapshot), never the
// full image.
func BenchmarkCowSnapshotOverhead(b *testing.B) {
	const pages = 256
	for _, pct := range []int{1, 10, 50, 100} {
		b.Run(fmt.Sprintf("dirty=%d", pct), func(b *testing.B) {
			m := mem.New()
			m.Map(0, pages*mem.PageSize)
			for i := 0; i < pages; i++ {
				if err := m.Write64(uint64(i)*mem.PageSize, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			m.CowSnapshot() // baseline freeze: everything clean after this
			dirty := pages * pct / 100
			if dirty == 0 {
				dirty = 1
			}
			var bytes uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for p := 0; p < dirty; p++ {
					if err := m.Write64(uint64(p)*mem.PageSize+16, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
				bytes += m.CowSnapshot().ApproxBytes()
			}
			b.StopTimer()
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/snapshot")
		})
	}
}

// BenchmarkSimulatorModels compares the three CPU models' simulation
// speed (the speed/accuracy trade-off of Section II).
func BenchmarkSimulatorModels(b *testing.B) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range []sim.ModelKind{sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined} {
		b.Run(string(model), func(b *testing.B) {
			b.ReportAllocs()
			var insts uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := sim.New(sim.Config{Model: model, EnableFI: true, MaxInsts: 2_000_000_000})
				if err := s.Load(p); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				r := s.Run()
				if r.Failed() {
					b.Fatalf("%+v", r)
				}
				insts = r.Insts
			}
			b.ReportMetric(float64(insts), "guest-insts/run")
		})
	}
}

// BenchmarkFaultParse measures the Listing-1 input file parser.
func BenchmarkFaultParse(b *testing.B) {
	line := "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ParseFault(line); err != nil {
			b.Fatal(err)
		}
	}
}

func cloneResult(r *workloads.Result) *workloads.Result {
	out := &workloads.Result{ExitStatus: r.ExitStatus, Data: make(map[string][]uint64, len(r.Data))}
	for k, v := range r.Data {
		out.Data[k] = append([]uint64(nil), v...)
	}
	return out
}
