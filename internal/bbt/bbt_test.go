package bbt_test

import (
	"testing"

	"repro/internal/minic"
	"repro/internal/sim"
)

// These are the translator's own exactness units: every stop, pause and
// preemption a batched block commit could smear must land on precisely
// the state the per-instruction interpreter produces. The conformance
// suite (internal/conformance) holds the full six-workload referee; here
// the boundaries themselves are the target.

const hotLoopProgram = `
int out[1];
int main() {
    int s = 0;
    for (int i = 0; i < 20000; i = i + 1) { s = s + i; }
    out[0] = s;
    return 0;
}`

const threadedProgram = `
int results[4];
void worker(int slot) {
    int s = 0;
    for (int i = 0; i < 3000; i = i + 1) { s = s + i; }
    results[slot] = s + slot;
}
int main() {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    int s = 0;
    for (int i = 0; i < 3000; i = i + 1) { s = s + i; }
    join(t1);
    join(t2);
    results[0] = s;
    return 0;
}`

func build(t *testing.T, src string, cfg sim.Config) *sim.Simulator {
	t.Helper()
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	return s
}

// TestTranslationEngages proves a hot loop actually runs translated: the
// block cache fills, hits accumulate, and the large majority of the
// run's instructions retire inside blocks.
func TestTranslationEngages(t *testing.T) {
	s := build(t, hotLoopProgram, sim.Config{Model: sim.ModelAtomic,
		EnableFI: true, MaxInsts: 10_000_000, EnableBlockTranslation: true})
	r := s.Run()
	if !r.Exited || r.ExitStatus != 0 {
		t.Fatalf("run failed: %+v", r)
	}
	st := s.BBT.Stats
	if st.Compiled == 0 || st.Hits == 0 {
		t.Fatalf("translator never engaged: %+v", st)
	}
	if st.Insts*2 < s.Core.Insts {
		t.Errorf("only %d of %d instructions ran translated — the hot loop was missed",
			st.Insts, s.Core.Insts)
	}
}

// TestWatchdogExactness arms a watchdog that expires mid-hot-loop: the
// translated run must stop at exactly the same committed-instruction
// count as the interpreter — the admission ceiling may not let a block
// overshoot the bound.
func TestWatchdogExactness(t *testing.T) {
	for _, maxInsts := range []uint64{1000, 5007, 20_000} {
		tr := build(t, hotLoopProgram, sim.Config{Model: sim.ModelAtomic,
			EnableFI: true, MaxInsts: maxInsts, EnableBlockTranslation: true})
		rt := tr.Run()
		ref := build(t, hotLoopProgram, sim.Config{Model: sim.ModelAtomic,
			EnableFI: true, MaxInsts: maxInsts, DisableFastPath: true})
		rr := ref.Run()
		if !rt.Hung || !rr.Hung {
			t.Fatalf("max=%d: watchdog never expired: bbt %+v, ref %+v", maxInsts, rt, rr)
		}
		if tr.Core.Insts != ref.Core.Insts || tr.Core.Ticks != ref.Core.Ticks {
			t.Errorf("max=%d: watchdog landed at insts %d/ticks %d, interpreter at %d/%d",
				maxInsts, tr.Core.Insts, tr.Core.Ticks, ref.Core.Insts, ref.Core.Ticks)
		}
		if tr.Core.Arch != ref.Core.Arch {
			t.Errorf("max=%d: architectural state at the watchdog diverged", maxInsts)
		}
	}
}

// TestRunUntilExactness pauses a translated run at an arbitrary bound
// mid-loop (the fork server's trunk walk): the pause must land at
// exactly the bound with interpreter-identical state, and resuming must
// finish identically too.
func TestRunUntilExactness(t *testing.T) {
	for _, bound := range []uint64{777, 12_345} {
		tr := build(t, hotLoopProgram, sim.Config{Model: sim.ModelAtomic,
			EnableFI: true, MaxInsts: 10_000_000, EnableBlockTranslation: true})
		rt := tr.RunUntil(bound)
		ref := build(t, hotLoopProgram, sim.Config{Model: sim.ModelAtomic,
			EnableFI: true, MaxInsts: 10_000_000, DisableFastPath: true})
		rr := ref.RunUntil(bound)
		if !rt.Paused || !rr.Paused {
			t.Fatalf("bound=%d: did not pause: bbt %+v, ref %+v", bound, rt, rr)
		}
		if tr.Core.Insts != bound || tr.Core.Insts != ref.Core.Insts {
			t.Errorf("bound=%d: paused at %d (interpreter %d)", bound, tr.Core.Insts, ref.Core.Insts)
		}
		if tr.Core.Arch != ref.Core.Arch {
			t.Errorf("bound=%d: architectural state at the pause diverged", bound)
		}
		ft, fr := tr.Run(), ref.Run()
		if !ft.Exited || !fr.Exited || tr.Core.Arch != ref.Core.Arch || tr.Core.Insts != ref.Core.Insts {
			t.Errorf("bound=%d: resumed runs diverged: bbt %+v, ref %+v", bound, ft, fr)
		}
	}
}

// TestSchedulerSliceExactness runs a three-thread program under block
// translation and requires the preemption schedule to be untouched:
// identical final state, context-switch count and remaining slice, for
// the default quantum and for quanta small enough that blocks constantly
// collide with the slice boundary.
func TestSchedulerSliceExactness(t *testing.T) {
	for _, quantum := range []uint64{0, 17, 100, 10_000} {
		cfg := sim.Config{Model: sim.ModelAtomic, EnableFI: true,
			MaxInsts: 10_000_000, Quantum: quantum}
		bcfg := cfg
		bcfg.EnableBlockTranslation = true
		rcfg := cfg
		rcfg.DisableFastPath = true
		tr := build(t, threadedProgram, bcfg)
		rt := tr.Run()
		ref := build(t, threadedProgram, rcfg)
		rr := ref.Run()
		if !rt.Exited || !rr.Exited || rt.ExitStatus != rr.ExitStatus {
			t.Fatalf("q=%d: runs diverged: bbt %+v, ref %+v", quantum, rt, rr)
		}
		if tr.Core.Arch != ref.Core.Arch || tr.Core.Insts != ref.Core.Insts || tr.Core.Ticks != ref.Core.Ticks {
			t.Errorf("q=%d: state diverged: insts %d vs %d", quantum, tr.Core.Insts, ref.Core.Insts)
		}
		kt, kr := tr.Kernel.Snapshot(), ref.Kernel.Snapshot()
		if kt.ContextSwitches != kr.ContextSwitches {
			t.Errorf("q=%d: context switches %d vs %d — batched slice accounting drifted",
				quantum, kt.ContextSwitches, kr.ContextSwitches)
		}
		if kt.SliceLeft != kr.SliceLeft || kt.Cur != kr.Cur {
			t.Errorf("q=%d: scheduler state diverged: slice %d/%d cur %d/%d",
				quantum, kt.SliceLeft, kr.SliceLeft, kt.Cur, kr.Cur)
		}
		if quantum == 0 || quantum >= 100 {
			if tr.BBT.Stats.Insts == 0 {
				t.Errorf("q=%d: threaded run never translated anything", quantum)
			}
		}
	}
}
