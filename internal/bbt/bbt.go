// Package bbt is the basic-block translator: the gem5/QEMU "translated
// block" idea applied to the atomic fast path. While the fault-injection
// window is closed and no per-instruction observer is attached — exactly
// the predicate that already gates the atomic model's stepFast — hot
// straight-line runs of guest text are fused into a pre-bound chain of Go
// closures, one closure per decoded instruction with its register indices
// and immediates resolved at translation time. Executing a block skips
// the per-instruction fetch, predecode lookup, port interpretation,
// execute-stage dispatch and commit epilogue entirely; only the memory
// system and the architectural register file are touched, so the result
// is bit-identical to the interpreter (enforced by the conformance
// suite's translated-vs-interpreted referee).
//
// Blocks are cached keyed on (PC, text generation): any store that
// overlaps the declared text region — self-modifying code, store-value
// faults landing in text, checkpoint restores, fork adoption — bumps
// mem.Memory's generation counter and thereby invalidates every block at
// once, the same wholesale scheme the per-PC predecode cache uses. A
// store inside a block re-checks the generation at the instruction
// boundary, so even a block that overwrites itself bails out before
// executing a stale downstream instruction.
//
// The ROADMAP calls for the per-PC profiler's counts to seed hotness,
// but an attached profiler forces the slow path (it needs per-commit
// hooks), so a translated run never has one; the translator keeps its
// own direct-mapped hotness table over block-entry PCs instead.
package bbt

import (
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/obs"
)

const (
	blockBits = 10 // 1024 direct-mapped translated-block slots
	blockMask = 1<<blockBits - 1
	hotBits   = 12 // 4096 direct-mapped hotness counters
	hotMask   = 1<<hotBits - 1
	tagValid  = uint64(1) << 63

	// DefaultThreshold is how many dispatcher visits a PC needs before it
	// is translated. Block entry points in a hot loop reach it within the
	// first few iterations; cold code never pays compilation.
	DefaultThreshold = 8

	// maxBlockLen caps translated block length. Short blocks keep the
	// admission checks (instruction limit, scheduler slice budget) from
	// declining often near their boundaries.
	maxBlockLen = 32

	// maxChain bounds how many blocks one Exec call chains through, so
	// the run loop's interrupt poll (every 256 steps) keeps a bounded
	// worst-case latency.
	maxChain = 64
)

// opFn executes one translated instruction against the translator's
// bound core. It returns false to end the block early: either a trap
// (the instruction did not commit) or a text-generation change detected
// after a store (the instruction committed but downstream translations
// are stale). The closure is responsible for leaving the architectural
// state exactly as the interpreter would at that boundary.
type opFn func(t *Translator) bool

// block is one translated basic block: straight-line closures ending at
// a branch (which assigns the next PC itself) or at a fallthrough
// boundary (end holds the successor PC). n == 0 marks a poisoned entry:
// the PC starts with a PAL/illegal/untranslatable instruction and must
// always take the interpreter.
type block struct {
	tag uint64 // pc | tagValid
	gen uint64 // mem text generation at translation time
	n   uint64 // instructions in the block; 0 = poisoned
	end uint64 // fallthrough successor PC; 0 when a branch terminator sets it
	ops []opFn
}

type hotEntry struct {
	tag   uint64
	count uint32
}

// Stats are the translator's observability counters, exposed as the
// cpu.bbt.* metrics group.
type Stats struct {
	Compiled      uint64 // blocks translated
	Poisoned      uint64 // entry PCs marked untranslatable
	Hits          uint64 // translated block executions
	Insts         uint64 // instructions retired inside translated blocks
	Invalidations uint64 // stale translations discarded (text generation moved)
	Fallbacks     uint64 // interpreter fallbacks while translation was attached
}

type exitKind uint8

const (
	exitNone exitKind = iota
	exitTrap          // an op trapped: it ticked but did not commit
	exitSMC           // a store moved the text generation: op committed, bail
)

// Translator implements cpu.BlockRunner for one core.
type Translator struct {
	c    *cpu.Core
	arch *cpu.Arch
	mem  *mem.Memory

	// Threshold is the hotness count that triggers translation.
	Threshold uint32

	// Stats counters (plain fields; metrics read them as pull-collectors).
	Stats Stats

	// limit is an absolute committed-instruction ceiling translated blocks
	// must not cross (0 = none). The simulator arms it with the min of the
	// watchdog, the fast-forward switch point and any RunUntil bound, so
	// every stop/pause/switch lands on exactly the instruction count the
	// interpreter would have produced.
	limit uint64

	gen  uint64   // text generation of the block being executed
	exit exitKind // why the current block ended early

	schedSrc cpu.Scheduler      // core scheduler the binding below reflects
	sched    cpu.BatchScheduler // batch view of schedSrc, nil if absent
	schedOff bool               // scheduler attached but cannot batch: no translation

	blocks [1 << blockBits]block
	hot    [1 << hotBits]hotEntry
}

var _ cpu.BlockRunner = (*Translator)(nil)

// New builds a translator bound to core c. Attach it with c.BBT = t.
func New(c *cpu.Core) *Translator {
	return &Translator{c: c, arch: &c.Arch, mem: c.Mem, Threshold: DefaultThreshold}
}

// SetLimit arms an absolute committed-instruction ceiling: no block is
// admitted whose completion would push Core.Insts past limit (0 = none).
func (t *Translator) SetLimit(limit uint64) { t.limit = limit }

// NoteFallback implements cpu.BlockRunner: the atomic model reports each
// slow-path step taken while translation is attached — the FI window is
// open or an observer needs per-instruction hooks — so the bailout
// behavior is observable (a campaign with taint and flight attached must
// show zero translated instructions and a growing fallback count).
func (t *Translator) NoteFallback() { t.Stats.Fallbacks++ }

// Exec implements cpu.BlockRunner: it runs translated blocks starting at
// the core's current PC, chaining across taken branches, and returns
// whether any guest instruction was executed. A false return means the
// interpreter must execute the current instruction (and the visit was
// counted toward hotness).
func (t *Translator) Exec() bool {
	c := t.c
	if c.Stopped {
		return false
	}
	if c.Sched != t.schedSrc {
		// The kernel attaches the scheduler at Boot, after the translator
		// was built; rebind lazily whenever it changes.
		t.bindSched()
	}
	if t.schedOff {
		return false
	}
	executed := false
	for n := 0; n < maxChain; n++ {
		pc := t.arch.PC
		gen := t.mem.TextGen()
		b := &t.blocks[(pc>>2)&blockMask]
		if b.tag != pc|tagValid || b.gen != gen {
			if executed {
				return true
			}
			if b.tag == pc|tagValid {
				// Same PC, older text generation: the translation is stale.
				t.Stats.Invalidations++
				b.tag = 0
			}
			if !t.noteHot(pc) {
				return false
			}
			t.compile(pc, gen)
			if b.tag != pc|tagValid || b.n == 0 {
				return executed
			}
		}
		if b.n == 0 {
			// Poisoned: this PC always takes the interpreter (PAL, illegal,
			// outside the text region).
			return executed
		}
		// Admission: the block must not cross the instruction ceiling, and
		// its commits must fit inside the scheduler's remaining slice so
		// per-commit MaybeSwitch calls could never have fired mid-block.
		if t.limit != 0 && c.Insts+b.n > t.limit {
			t.Stats.Fallbacks++
			return executed
		}
		if t.sched != nil && b.n >= t.sched.SliceBudget() {
			t.Stats.Fallbacks++
			return executed
		}
		t.run(b)
		executed = true
		if c.Stopped || t.exit != exitNone {
			return true
		}
	}
	return executed
}

// bindSched resolves the core's scheduler into its batch-accounting
// view. A scheduler that cannot batch disables translation outright:
// per-commit preemption cannot be replicated for a fused block.
func (t *Translator) bindSched() {
	t.schedSrc = t.c.Sched
	t.sched, _ = t.c.Sched.(cpu.BatchScheduler)
	t.schedOff = t.c.Sched != nil && t.sched == nil
}

// noteHot counts a dispatcher visit at pc and reports whether it just
// crossed the translation threshold.
func (t *Translator) noteHot(pc uint64) bool {
	h := &t.hot[(pc>>2)&hotMask]
	if h.tag != pc {
		h.tag, h.count = pc, 1
		return false
	}
	h.count++
	if h.count < t.Threshold {
		return false
	}
	h.count = 0
	return true
}

// run executes one translated block and settles the per-instruction
// bookkeeping the interpreter would have done — ticks, committed
// instructions, sequence numbers, scheduler slice — in one batch, with
// the early-exit cases (trap, text-generation bail) accounted exactly:
// a trapping instruction consumes a tick and a sequence number but never
// commits, matching stepFast.
func (t *Translator) run(b *block) {
	t.gen = b.gen
	t.exit = exitNone
	ops := b.ops
	i := 0
	for ; i < len(ops); i++ {
		if !ops[i](t) {
			break
		}
	}
	c := t.c
	if i == len(ops) {
		if b.end != 0 {
			t.arch.PC = b.end
		}
		c.Ticks += b.n
		c.Insts += b.n
		c.BumpSeq(b.n)
		if t.sched != nil {
			t.sched.ConsumeSlice(b.n)
		}
		t.Stats.Hits++
		t.Stats.Insts += b.n
		return
	}
	committed := uint64(i)
	if t.exit == exitSMC {
		committed++ // the generation-moving store itself committed
	}
	c.Ticks += uint64(i) + 1
	c.Insts += committed
	c.BumpSeq(uint64(i) + 1)
	if t.sched != nil && committed > 0 {
		t.sched.ConsumeSlice(committed)
	}
	t.Stats.Hits++
	t.Stats.Insts += committed
}

// trapAt stops the core exactly as the interpreter would mid-step: the
// architectural PC still names the trapping instruction.
func (t *Translator) trapAt(pc uint64, tr *cpu.Trap) bool {
	t.arch.PC = pc
	t.c.Stop(tr)
	t.exit = exitTrap
	return false
}

// smcBail ends the block after a committed store moved the text
// generation: execution resumes at the next instruction through the
// interpreter, which refetches the (possibly rewritten) bytes.
func (t *Translator) smcBail(nextPC uint64) bool {
	t.arch.PC = nextPC
	t.exit = exitSMC
	return false
}

// RegisterMetrics exposes the translator's counters as the cpu.bbt.*
// metrics group on the registry (nil-safe, pull-collectors only).
func (t *Translator) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("cpu.bbt.blocks_compiled", func() float64 { return float64(t.Stats.Compiled) })
	r.RegisterFunc("cpu.bbt.blocks_poisoned", func() float64 { return float64(t.Stats.Poisoned) })
	r.RegisterFunc("cpu.bbt.block_hits", func() float64 { return float64(t.Stats.Hits) })
	r.RegisterFunc("cpu.bbt.insts_translated", func() float64 { return float64(t.Stats.Insts) })
	r.RegisterFunc("cpu.bbt.invalidations", func() float64 { return float64(t.Stats.Invalidations) })
	r.RegisterFunc("cpu.bbt.fallbacks", func() float64 { return float64(t.Stats.Fallbacks) })
}
