package bbt

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// compile translates the basic block starting at pc into the
// direct-mapped slot for pc. Blocks are only built inside the declared
// text region (the same restriction as the predecode cache: a corrupted
// PC can point anywhere, and data pages have no invalidation tracking)
// and end at the first branch (included, as the terminator), or just
// before a PAL, illegal or otherwise untranslatable instruction
// (excluded; the interpreter owns FI activation, syscalls and traps on
// decode). A PC whose first instruction is untranslatable is poisoned so
// the dispatcher stops probing it.
func (t *Translator) compile(pc, gen uint64) {
	slot := &t.blocks[(pc>>2)&blockMask]
	lo, hi := t.mem.TextRegion()
	if pc < lo || pc >= hi || pc%4 != 0 {
		*slot = block{tag: pc | tagValid, gen: gen}
		t.Stats.Poisoned++
		return
	}
	var ops []opFn
	cur := pc
	for uint64(len(ops)) < maxBlockLen && cur < hi {
		word, err := t.mem.Read32(cur)
		if err != nil {
			break
		}
		in := isa.Decode(isa.Word(word))
		op, terminal := t.emit(in, cur)
		if op == nil {
			break
		}
		ops = append(ops, op)
		cur += 4
		if terminal {
			*slot = block{tag: pc | tagValid, gen: gen, n: uint64(len(ops)), ops: ops}
			t.Stats.Compiled++
			return
		}
	}
	if len(ops) == 0 {
		*slot = block{tag: pc | tagValid, gen: gen}
		t.Stats.Poisoned++
		return
	}
	// Fallthrough block: no branch terminator, so completing it resumes
	// the interpreter at cur (a PAL instruction, the region edge, or the
	// length cap).
	*slot = block{tag: pc | tagValid, gen: gen, n: uint64(len(ops)), end: cur, ops: ops}
	t.Stats.Compiled++
}

// nopOp is the translation of an instruction whose only architectural
// effect is a write to the zero register: nothing, beyond being counted.
func nopOp(*Translator) bool { return true }

// emit translates one decoded instruction at pc into a specialized
// closure, returning (nil, false) for untranslatable kinds and terminal
// = true for branches (which assign the next PC themselves). Operand
// routing replicates isa.Inst.Ports exactly; register reads index the
// architectural arrays directly, which is safe because R[31]/F[31] are
// pinned to zero by every writer (WriteReg/WriteFReg, including the
// fault engine's register mutations).
func (t *Translator) emit(in isa.Inst, pc uint64) (op opFn, terminal bool) {
	next := pc + 4
	raw := in.Raw
	switch in.Format {
	case isa.FormatMemory:
		base := int(in.Rb) & 31 // ports.SrcA: the address base
		reg := int(in.Ra) & 31  // load/JMP destination, store value source
		disp := uint64(int64(in.Disp))
		switch in.Kind {
		case isa.KindLDA:
			if reg == 31 {
				return nopOp, false
			}
			return func(t *Translator) bool {
				t.arch.R[reg] = t.arch.R[base] + disp
				return true
			}, false
		case isa.KindLDAH:
			d := disp << 16
			if reg == 31 {
				return nopOp, false
			}
			return func(t *Translator) bool {
				t.arch.R[reg] = t.arch.R[base] + d
				return true
			}, false
		case isa.KindLDQ:
			return func(t *Translator) bool {
				ea := t.arch.R[base] + disp
				if ea%8 != 0 {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapUnaligned, PC: pc, Addr: ea, Word: raw})
				}
				v, err := t.mem.Read64(ea)
				if err != nil {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapMemFault, PC: pc, Addr: ea, Word: raw})
				}
				if reg != 31 {
					t.arch.R[reg] = v
				}
				return true
			}, false
		case isa.KindLDBU:
			return func(t *Translator) bool {
				ea := t.arch.R[base] + disp
				v, err := t.mem.LoadByte(ea)
				if err != nil {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapMemFault, PC: pc, Addr: ea, Word: raw})
				}
				if reg != 31 {
					t.arch.R[reg] = uint64(v)
				}
				return true
			}, false
		case isa.KindLDT:
			return func(t *Translator) bool {
				ea := t.arch.R[base] + disp
				if ea%8 != 0 {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapUnaligned, PC: pc, Addr: ea, Word: raw})
				}
				v, err := t.mem.Read64(ea)
				if err != nil {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapMemFault, PC: pc, Addr: ea, Word: raw})
				}
				if reg != 31 {
					t.arch.F[reg] = math.Float64frombits(v)
				}
				return true
			}, false
		case isa.KindSTQ:
			return func(t *Translator) bool {
				ea := t.arch.R[base] + disp
				if ea%8 != 0 {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapUnaligned, PC: pc, Addr: ea, Word: raw})
				}
				if err := t.mem.Write64(ea, t.arch.R[reg]); err != nil {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapMemFault, PC: pc, Addr: ea, Word: raw})
				}
				if t.mem.TextGen() != t.gen {
					return t.smcBail(next)
				}
				return true
			}, false
		case isa.KindSTB:
			return func(t *Translator) bool {
				ea := t.arch.R[base] + disp
				if err := t.mem.StoreByte(ea, byte(t.arch.R[reg])); err != nil {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapMemFault, PC: pc, Addr: ea, Word: raw})
				}
				if t.mem.TextGen() != t.gen {
					return t.smcBail(next)
				}
				return true
			}, false
		case isa.KindSTT:
			return func(t *Translator) bool {
				ea := t.arch.R[base] + disp
				if ea%8 != 0 {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapUnaligned, PC: pc, Addr: ea, Word: raw})
				}
				if err := t.mem.Write64(ea, math.Float64bits(t.arch.F[reg])); err != nil {
					return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapMemFault, PC: pc, Addr: ea, Word: raw})
				}
				if t.mem.TextGen() != t.gen {
					return t.smcBail(next)
				}
				return true
			}, false
		case isa.KindJMP:
			return func(t *Translator) bool {
				tgt := t.arch.R[base] &^ 3 // read before the link write: Ra may equal Rb
				if reg != 31 {
					t.arch.R[reg] = next
				}
				t.arch.PC = tgt
				return true
			}, true
		}
		return nil, false

	case isa.FormatBranch:
		reg := int(in.Ra) & 31
		target := next + uint64(int64(in.Disp))*4
		switch in.Kind {
		case isa.KindBR, isa.KindBSR:
			return func(t *Translator) bool {
				if reg != 31 {
					t.arch.R[reg] = next
				}
				t.arch.PC = target
				return true
			}, true
		case isa.KindBEQ:
			return condBranch(reg, next, target, func(s int64) bool { return s == 0 }), true
		case isa.KindBNE:
			return condBranch(reg, next, target, func(s int64) bool { return s != 0 }), true
		case isa.KindBLT:
			return condBranch(reg, next, target, func(s int64) bool { return s < 0 }), true
		case isa.KindBLE:
			return condBranch(reg, next, target, func(s int64) bool { return s <= 0 }), true
		case isa.KindBGE:
			return condBranch(reg, next, target, func(s int64) bool { return s >= 0 }), true
		case isa.KindBGT:
			return condBranch(reg, next, target, func(s int64) bool { return s > 0 }), true
		case isa.KindFBEQ:
			return func(t *Translator) bool {
				if t.arch.F[reg] == 0 {
					t.arch.PC = target
				} else {
					t.arch.PC = next
				}
				return true
			}, true
		case isa.KindFBNE:
			return func(t *Translator) bool {
				if t.arch.F[reg] != 0 {
					t.arch.PC = target
				} else {
					t.arch.PC = next
				}
				return true
			}, true
		}
		return nil, false

	case isa.FormatOperate:
		return t.emitOperate(in, pc), false

	case isa.FormatFP:
		return t.emitFP(in, pc), false
	}
	// PAL and anything undecodable stays with the interpreter.
	return nil, false
}

// condBranch builds a conditional-branch terminator over the signed
// value of register ra. The comparison closure is resolved per kind at
// translation time; ra == 31 reads the pinned zero.
func condBranch(ra int, next, target uint64, taken func(int64) bool) opFn {
	return func(t *Translator) bool {
		if taken(int64(t.arch.R[ra])) {
			t.arch.PC = target
		} else {
			t.arch.PC = next
		}
		return true
	}
}

// emitOperate translates an integer operate instruction. The b operand
// is resolved at translation time: a captured literal or a register
// read. Only DIVQ/REMQ can trap; every other kind with a zero-register
// destination collapses to a counted no-op.
func (t *Translator) emitOperate(in isa.Inst, pc uint64) opFn {
	ra := int(in.Ra) & 31
	rb := int(in.Rb) & 31
	rc := int(in.Rc) & 31
	raw := in.Raw

	if in.Kind == isa.KindDIVQ || in.Kind == isa.KindREMQ {
		rem := in.Kind == isa.KindREMQ
		bArg := func(t *Translator) int64 { return int64(t.arch.R[rb]) }
		if in.IsLit {
			lit := int64(uint64(in.Lit))
			bArg = func(*Translator) int64 { return lit }
		}
		return func(t *Translator) bool {
			a, b := int64(t.arch.R[ra]), bArg(t)
			if b == 0 {
				return t.trapAt(pc, &cpu.Trap{Kind: cpu.TrapArith, PC: pc, Word: raw})
			}
			var res uint64
			switch {
			case a == math.MinInt64 && b == -1:
				if !rem {
					res = uint64(a)
				}
			case rem:
				res = uint64(a % b)
			default:
				res = uint64(a / b)
			}
			if rc != 31 {
				t.arch.R[rc] = res
			}
			return true
		}
	}

	if rc == 31 {
		return nopOp
	}
	if in.IsLit {
		lit := uint64(in.Lit)
		switch in.Kind {
		case isa.KindADDQ:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] + lit; return true }
		case isa.KindSUBQ:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] - lit; return true }
		case isa.KindCMPEQ:
			return func(t *Translator) bool { t.arch.R[rc] = boolBit(t.arch.R[ra] == lit); return true }
		case isa.KindCMPLT:
			return func(t *Translator) bool { t.arch.R[rc] = boolBit(int64(t.arch.R[ra]) < int64(lit)); return true }
		case isa.KindCMPLE:
			return func(t *Translator) bool { t.arch.R[rc] = boolBit(int64(t.arch.R[ra]) <= int64(lit)); return true }
		case isa.KindCMPULT:
			return func(t *Translator) bool { t.arch.R[rc] = boolBit(t.arch.R[ra] < lit); return true }
		case isa.KindCMPULE:
			return func(t *Translator) bool { t.arch.R[rc] = boolBit(t.arch.R[ra] <= lit); return true }
		case isa.KindAND:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] & lit; return true }
		case isa.KindBIC:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] &^ lit; return true }
		case isa.KindBIS:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] | lit; return true }
		case isa.KindORNOT:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] | ^lit; return true }
		case isa.KindXOR:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] ^ lit; return true }
		case isa.KindEQV:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] ^ ^lit; return true }
		case isa.KindSLL:
			sh := lit & 63
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] << sh; return true }
		case isa.KindSRL:
			sh := lit & 63
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] >> sh; return true }
		case isa.KindSRA:
			sh := lit & 63
			return func(t *Translator) bool { t.arch.R[rc] = uint64(int64(t.arch.R[ra]) >> sh); return true }
		case isa.KindMULQ:
			return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] * lit; return true }
		}
		return nil
	}
	switch in.Kind {
	case isa.KindADDQ:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] + t.arch.R[rb]; return true }
	case isa.KindSUBQ:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] - t.arch.R[rb]; return true }
	case isa.KindCMPEQ:
		return func(t *Translator) bool { t.arch.R[rc] = boolBit(t.arch.R[ra] == t.arch.R[rb]); return true }
	case isa.KindCMPLT:
		return func(t *Translator) bool {
			t.arch.R[rc] = boolBit(int64(t.arch.R[ra]) < int64(t.arch.R[rb]))
			return true
		}
	case isa.KindCMPLE:
		return func(t *Translator) bool {
			t.arch.R[rc] = boolBit(int64(t.arch.R[ra]) <= int64(t.arch.R[rb]))
			return true
		}
	case isa.KindCMPULT:
		return func(t *Translator) bool { t.arch.R[rc] = boolBit(t.arch.R[ra] < t.arch.R[rb]); return true }
	case isa.KindCMPULE:
		return func(t *Translator) bool { t.arch.R[rc] = boolBit(t.arch.R[ra] <= t.arch.R[rb]); return true }
	case isa.KindAND:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] & t.arch.R[rb]; return true }
	case isa.KindBIC:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] &^ t.arch.R[rb]; return true }
	case isa.KindBIS:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] | t.arch.R[rb]; return true }
	case isa.KindORNOT:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] | ^t.arch.R[rb]; return true }
	case isa.KindXOR:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] ^ t.arch.R[rb]; return true }
	case isa.KindEQV:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] ^ ^t.arch.R[rb]; return true }
	case isa.KindSLL:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] << (t.arch.R[rb] & 63); return true }
	case isa.KindSRL:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] >> (t.arch.R[rb] & 63); return true }
	case isa.KindSRA:
		return func(t *Translator) bool {
			t.arch.R[rc] = uint64(int64(t.arch.R[ra]) >> (t.arch.R[rb] & 63))
			return true
		}
	case isa.KindMULQ:
		return func(t *Translator) bool { t.arch.R[rc] = t.arch.R[ra] * t.arch.R[rb]; return true }
	}
	return nil
}

// emitFP translates a floating-point operate instruction. None of these
// trap; the rarer conversion/special kinds route through cpu.Execute so
// their edge-case semantics (saturating CVTTQ, copysign) live in exactly
// one place.
func (t *Translator) emitFP(in isa.Inst, pc uint64) opFn {
	fa := int(in.Ra) & 31
	fb := int(in.Rb) & 31
	rc := int(in.Rc) & 31
	if rc == 31 {
		return nopOp
	}
	switch in.Kind {
	case isa.KindADDT:
		return func(t *Translator) bool { t.arch.F[rc] = t.arch.F[fa] + t.arch.F[fb]; return true }
	case isa.KindSUBT:
		return func(t *Translator) bool { t.arch.F[rc] = t.arch.F[fa] - t.arch.F[fb]; return true }
	case isa.KindMULT:
		return func(t *Translator) bool { t.arch.F[rc] = t.arch.F[fa] * t.arch.F[fb]; return true }
	case isa.KindDIVT:
		return func(t *Translator) bool { t.arch.F[rc] = t.arch.F[fa] / t.arch.F[fb]; return true }
	case isa.KindCMPTEQ:
		return func(t *Translator) bool { t.arch.F[rc] = boolFP(t.arch.F[fa] == t.arch.F[fb]); return true }
	case isa.KindCMPTLT:
		return func(t *Translator) bool { t.arch.F[rc] = boolFP(t.arch.F[fa] < t.arch.F[fb]); return true }
	case isa.KindCMPTLE:
		return func(t *Translator) bool { t.arch.F[rc] = boolFP(t.arch.F[fa] <= t.arch.F[fb]); return true }
	case isa.KindSQRTT, isa.KindCVTTQ, isa.KindCVTQT, isa.KindCPYS:
		return func(t *Translator) bool {
			o := cpu.Execute(in, 0, 0, t.arch.F[fa], t.arch.F[fb], pc)
			t.arch.F[rc] = o.FpRes
			return true
		}
	}
	return nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// boolFP is Alpha's FP "true" encoding (2.0), matching cpu.Execute.
func boolFP(b bool) float64 {
	if b {
		return 2.0
	}
	return 0.0
}
