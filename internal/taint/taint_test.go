package taint_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/taint"
)

// chainProgram exercises every propagation class in a handful of
// instructions: the fault lands in t0 right after FI activation, flows
// through an ALU op into t1, out to memory, back in through a load, and
// finally to the console — register → register → store → load → output.
const chainProgram = `
_start:
    fi_read_init_all
    li   a0, 0
    fi_activate_inst
    li   t0, 7
    addq t0, #1, t1
    la   t2, buf
    stq  t1, 0(t2)
    ldq  t3, 0(t2)
    li   a0, 0
    fi_activate_inst
    and  t3, #255, a0
    li   v0, 2
    callsys
    li   a0, 0
    li   v0, 1
    callsys
.data
buf: .quad 0
`

// maskedProgram overwrites the corrupted register with a constant before
// any use, so the corruption must be classified masked-overwritten.
const maskedProgram = `
_start:
    fi_read_init_all
    li   a0, 0
    fi_activate_inst
    li   t0, 7
    li   t0, 9
    addq t0, #1, t1
    li   a0, 0
    fi_activate_inst
    and  t1, #255, a0
    li   v0, 2
    callsys
    li   a0, 0
    li   v0, 1
    callsys
`

// t0 is integer register 1. The FI window opens at the activating
// instruction itself (in-window instruction 1), so When:2 strikes at the
// commit of `li t0, 7` — after the write, corrupting the live value.
func t0Fault() []core.Fault {
	return []core.Fault{{
		Loc: core.LocIntReg, Reg: 1, Behavior: core.BehFlip, Bit: 4,
		ThreadID: 0, Base: core.TimeInst, When: 2, Occ: 1,
	}}
}

func runTaint(t *testing.T, src string, faults []core.Fault) (*sim.Simulator, sim.RunResult) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{
		Model: sim.ModelAtomic, EnableFI: true, EnableTaint: true,
		Faults: faults, MaxInsts: 1_000_000,
	})
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Hung || r.Interrupted {
		t.Fatalf("run did not finish: %+v", r)
	}
	return s, r
}

func goldenOf(t *testing.T, src string) *taint.GoldenState {
	t.Helper()
	s, r := runTaint(t, src, nil)
	if r.Failed() {
		t.Fatalf("clean run failed: %+v", r)
	}
	return taint.CaptureGolden(&s.Core.Arch, s.Mem)
}

func kinds(rep *taint.PropReport) map[taint.NodeKind]int {
	m := map[taint.NodeKind]int{}
	for _, n := range rep.Nodes {
		m[n.Kind]++
	}
	return m
}

func TestPropagationChainToOutput(t *testing.T) {
	golden := goldenOf(t, chainProgram)
	s, r := runTaint(t, chainProgram, t0Fault())
	rep := s.TaintReport(r.Failed(), golden)

	if rep.Verdict != taint.VerdictReachedOutput {
		t.Fatalf("verdict = %s, want %s\n%+v", rep.Verdict, taint.VerdictReachedOutput, rep)
	}
	ks := kinds(rep)
	for _, k := range []taint.NodeKind{taint.NodeInject, taint.NodeDef, taint.NodeStore, taint.NodeLoad, taint.NodeOutput} {
		if ks[k] == 0 {
			t.Errorf("DAG missing a %s node: %v", k, ks)
		}
	}
	if !rep.HasPath(taint.NodeInject, taint.NodeOutput) {
		t.Error("no DAG path from injection to output")
	}
	if rep.FirstStore < 0 || rep.FirstLoad < 0 || rep.FirstOutput < 0 {
		t.Errorf("first-event indexes not recorded: store=%d load=%d output=%d",
			rep.FirstStore, rep.FirstLoad, rep.FirstOutput)
	}
	if rep.FirstStore > rep.FirstLoad || rep.FirstLoad > rep.FirstOutput {
		t.Errorf("event order wrong: store=%d load=%d output=%d",
			rep.FirstStore, rep.FirstLoad, rep.FirstOutput)
	}
	if rep.TaintedInsts == 0 || rep.MaxLiveTaint == 0 {
		t.Errorf("counters empty: tainted=%d maxlive=%d", rep.TaintedInsts, rep.MaxLiveTaint)
	}
}

func TestMaskedOverwritten(t *testing.T) {
	golden := goldenOf(t, maskedProgram)
	s, r := runTaint(t, maskedProgram, t0Fault())
	rep := s.TaintReport(r.Failed(), golden)

	if rep.Verdict != taint.VerdictMaskedOverwritten {
		t.Fatalf("verdict = %s, want %s\n%+v", rep.Verdict, taint.VerdictMaskedOverwritten, rep)
	}
	if rep.GoldenDiff.Total() != 0 {
		t.Errorf("masked run diverged from golden: %+v", rep.GoldenDiff)
	}
	if rep.LiveTaint != 0 || len(rep.ResidualRegs) != 0 {
		t.Errorf("masked run left live taint: live=%d regs=%v", rep.LiveTaint, rep.ResidualRegs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	s, r := runTaint(t, chainProgram, t0Fault())
	rep := s.TaintReport(r.Failed(), nil)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := taint.ValidateReportJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted report fails its own schema: %v\n%s", err, buf.String())
	}
	if parsed.Verdict != rep.Verdict || len(parsed.Nodes) != len(rep.Nodes) {
		t.Errorf("round trip changed the report: %s/%d vs %s/%d",
			parsed.Verdict, len(parsed.Nodes), rep.Verdict, len(rep.Nodes))
	}

	// Schema violations must be rejected.
	bad := strings.Replace(buf.String(), string(rep.Verdict), "exploded", 1)
	if _, err := taint.ValidateReportJSON(strings.NewReader(bad)); err == nil {
		t.Error("unknown verdict accepted")
	}
	if _, err := taint.ValidateReportJSON(strings.NewReader(`{"verdict":"not-injected","unknown_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	s, r := runTaint(t, chainProgram, t0Fault())
	rep := s.TaintReport(r.Failed(), nil)

	var buf bytes.Buffer
	if err := rep.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph taint", "octagon", "doublecircle", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, `\\n`) {
		t.Errorf("DOT labels contain a double-escaped newline:\n%s", dot)
	}
}

// TestNilTrackerIsSafe: every hook must be callable on a nil tracker —
// that is the disabled fast path wired into the CPU core.
func TestNilTrackerIsSafe(t *testing.T) {
	var tr *taint.Tracker
	tr.MarkPendingInjection(1, 0x100, "x")
	tr.MarkRegInjection(false, 3, 0x100, "x")
	tr.MarkControlInjection(0x100, "x")
	tr.MarkIOInjection("x")
	tr.OnSquash(1)
	tr.Reset()
	if tr.Live() != 0 || tr.Injections() != 0 || tr.PendingInjections() != 0 {
		t.Error("nil tracker reports state")
	}
	if rep := tr.Report(false, nil, nil, nil); rep != nil {
		t.Errorf("nil tracker produced a report: %+v", rep)
	}
}

// TestTrackerResetClearsEverything: a tracker reused across experiments
// (the campaign path) must start each run clean.
func TestTrackerResetClearsEverything(t *testing.T) {
	s, r := runTaint(t, chainProgram, t0Fault())
	tr := s.Taint()
	if tr == nil {
		t.Fatal("no tracker attached")
	}
	rep := s.TaintReport(r.Failed(), nil)
	if rep.Injections == 0 {
		t.Fatal("fault never injected")
	}
	tr.Reset()
	rep = s.TaintReport(false, nil)
	if rep.Injections != 0 || rep.TaintedInsts != 0 || rep.LiveTaint != 0 ||
		len(rep.Nodes) != 0 || len(rep.Edges) != 0 || rep.CommittedInsts != 0 {
		t.Errorf("Reset left state behind: %+v", rep)
	}
}
