package taint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// NodeKind classifies a propagation DAG node.
type NodeKind string

// Node kinds.
const (
	NodeInject   NodeKind = "inject"   // the corruption site
	NodeDef      NodeKind = "def"      // tainted value written to a register
	NodeLoad     NodeKind = "load"     // taint entered through a memory read
	NodeStore    NodeKind = "store"    // taint left to memory
	NodeBranch   NodeKind = "branch"   // tainted value decided control flow
	NodeControl  NodeKind = "control"  // control state corrupted directly
	NodeOutput   NodeKind = "output"   // tainted byte reached I/O
	NodeFinal    NodeKind = "final"    // residual taint in the final state
	NodeCrash    NodeKind = "crash"    // the run crashed while taint was live
	NodeOverflow NodeKind = "overflow" // sites beyond the node cap
)

// validNodeKinds is the schema enumeration for ValidateReportJSON.
var validNodeKinds = map[NodeKind]bool{
	NodeInject: true, NodeDef: true, NodeLoad: true, NodeStore: true,
	NodeBranch: true, NodeControl: true, NodeOutput: true, NodeFinal: true,
	NodeCrash: true, NodeOverflow: true,
}

// Node is one propagation site: a (PC, kind) pair hit one or more times.
type Node struct {
	ID        int      `json:"id"`
	Kind      NodeKind `json:"kind"`
	PC        uint64   `json:"pc"`
	Label     string   `json:"label,omitempty"`
	Hits      uint64   `json:"hits"`
	FirstInst uint64   `json:"first_inst"` // committed-instruction index of first hit
}

// Edge is one dataflow edge, with the number of times it was traversed.
type Edge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	N    uint64 `json:"n"`
}

// Verdict is the terminal explanation of where the corruption went.
type Verdict string

// Verdicts.
const (
	// VerdictNotInjected: no corruption ever committed (the fault never
	// fired, or only hit squashed speculative instructions).
	VerdictNotInjected Verdict = "not-injected"
	// VerdictMaskedOverwritten: every tainted bit was overwritten by
	// clean values before reaching output — the paper's "overwritten
	// before the erroneous value was used".
	VerdictMaskedOverwritten Verdict = "masked-overwritten"
	// VerdictMaskedLogically: tainted bits survive to the end of the run
	// but the golden-run differ finds zero architectural divergence — the
	// corruption was logically masked (e.g. AND with zeroes).
	VerdictMaskedLogically Verdict = "masked-logically"
	// VerdictReachedOutput: a tainted byte reached an I/O device — SDC
	// provenance.
	VerdictReachedOutput Verdict = "reached-output"
	// VerdictReachedCrash: the run crashed after corruption committed.
	VerdictReachedCrash Verdict = "reached-crash"
	// VerdictReachedState: residual taint (or a control divergence)
	// left the final architectural state different from the golden run
	// without reaching output — latent state corruption.
	VerdictReachedState Verdict = "reached-state"
)

// Verdicts returns every verdict in severity order, for stable tallies.
func Verdicts() []Verdict {
	return []Verdict{
		VerdictNotInjected, VerdictMaskedOverwritten, VerdictMaskedLogically,
		VerdictReachedState, VerdictReachedOutput, VerdictReachedCrash,
	}
}

// GoldenState is the final architectural state of a fault-free run of the
// same program; the differ uses it to distinguish logical masking from
// latent state corruption.
type GoldenState struct {
	Arch cpu.Arch
	Mem  mem.Snapshot
}

// CaptureGolden snapshots the final state of a completed clean run.
func CaptureGolden(a *cpu.Arch, m *mem.Memory) *GoldenState {
	return &GoldenState{Arch: *a, Mem: m.Snapshot()}
}

// GoldenDiff summarizes the architectural divergence between the faulty
// and the golden final state.
type GoldenDiff struct {
	IntRegs  int            `json:"int_regs"`
	FpRegs   int            `json:"fp_regs"`
	MemBytes int            `json:"mem_bytes"`
	Sample   []mem.ByteDiff `json:"sample,omitempty"` // first few memory diffs
}

// Total returns the total number of diverging architectural locations.
func (d *GoldenDiff) Total() int {
	if d == nil {
		return 0
	}
	return d.IntRegs + d.FpRegs + d.MemBytes
}

// diffGolden compares the faulty final state against the golden one.
func diffGolden(a *cpu.Arch, m *mem.Memory, g *GoldenState) *GoldenDiff {
	d := &GoldenDiff{}
	for r := 0; r < isa.NumRegs; r++ {
		if a.R[r] != g.Arch.R[r] {
			d.IntRegs++
		}
		if a.F[r] != g.Arch.F[r] {
			d.FpRegs++
		}
	}
	sample, total := mem.DiffSnapshots(m.Snapshot(), g.Mem, 8)
	d.MemBytes = total
	d.Sample = sample
	return d
}

// PropReport is the per-experiment propagation report: the DAG, the
// summary counters and the terminal verdict.
type PropReport struct {
	Verdict Verdict `json:"verdict"`
	Crashed bool    `json:"crashed"`

	Injections         uint64   `json:"injections"`
	PendingInjections  uint64   `json:"pending_injections,omitempty"`
	SquashedInjections uint64   `json:"squashed_injections"`
	CommittedInsts     uint64   `json:"committed_insts"`
	TaintedInsts       uint64   `json:"tainted_insts"`
	MaxLiveTaint       int      `json:"max_live_taint"`
	LiveTaint          int      `json:"live_taint"`
	ResidualRegs       []string `json:"residual_regs,omitempty"`
	ResidualMemBytes   int      `json:"residual_mem_bytes"`

	// First* are committed-instruction indexes (since tracker reset) of
	// the first taint event of each class; -1 means it never happened.
	FirstLoad   int64 `json:"first_load"`
	FirstStore  int64 `json:"first_store"`
	FirstBranch int64 `json:"first_branch"`
	FirstOutput int64 `json:"first_output"`

	ControlDivergences uint64 `json:"control_divergences"`
	OutputBytes        uint64 `json:"output_bytes"`

	GoldenDiff *GoldenDiff `json:"golden_diff,omitempty"`

	Nodes          []Node `json:"nodes"`
	Edges          []Edge `json:"edges"`
	TruncatedNodes uint64 `json:"truncated_nodes,omitempty"`
}

// Summary is the compact per-experiment record joined onto
// campaign.Result (next to InjPC).
type Summary struct {
	Verdict       Verdict `json:"verdict"`
	Injections    uint64  `json:"injections"`
	TaintedInsts  uint64  `json:"tainted_insts"`
	MaxLiveTaint  int     `json:"max_live_taint"`
	ReachedOutput bool    `json:"reached_output"`
	Nodes         int     `json:"nodes"`
}

// Summary extracts the compact record.
func (r *PropReport) Summary() *Summary {
	if r == nil {
		return nil
	}
	return &Summary{
		Verdict:       r.Verdict,
		Injections:    r.Injections,
		TaintedInsts:  r.TaintedInsts,
		MaxLiveTaint:  r.MaxLiveTaint,
		ReachedOutput: r.Verdict == VerdictReachedOutput,
		Nodes:         len(r.Nodes),
	}
}

// Report builds the propagation report for the run observed since the
// last Reset. crashed tells whether the run ended in a crash; a and m are
// the final architectural state; golden may be nil (the differ is then
// skipped and residual taint maps to reached-state). Report is
// read-only on the tracker, so it can serve a live /taint endpoint
// mid-run.
func (t *Tracker) Report(crashed bool, a *cpu.Arch, m *mem.Memory, golden *GoldenState) *PropReport {
	if t == nil {
		return nil
	}
	r := &PropReport{
		Crashed:            crashed,
		Injections:         t.injections,
		PendingInjections:  uint64(len(t.pending)),
		SquashedInjections: t.squashedInj,
		CommittedInsts:     t.committed,
		TaintedInsts:       t.taintedInsts,
		MaxLiveTaint:       t.maxLive,
		LiveTaint:          t.Live(),
		ResidualMemBytes:   len(t.memT),
		FirstLoad:          t.firstLoad,
		FirstStore:         t.firstStore,
		FirstBranch:        t.firstBranch,
		FirstOutput:        t.firstOutput,
		ControlDivergences: t.ctrlDiverg,
		OutputBytes:        t.outputBytes,
		Nodes:              append([]Node(nil), t.nodes...),
	}
	if t.overflow != 0 {
		r.TruncatedNodes = t.nodes[t.overflow-1].Hits
	}
	for reg := 0; reg < isa.NumRegs; reg++ {
		if t.intT[reg] != 0 {
			r.ResidualRegs = append(r.ResidualRegs, isa.Reg(reg).String())
		}
		if t.fpT[reg] != 0 {
			r.ResidualRegs = append(r.ResidualRegs, fmt.Sprintf("f%d", reg))
		}
	}
	if golden != nil && a != nil && m != nil {
		r.GoldenDiff = diffGolden(a, m, golden)
	}

	// Edges, deterministically ordered.
	r.Edges = make([]Edge, 0, len(t.edges))
	for k, n := range t.edges {
		r.Edges = append(r.Edges, Edge{From: int(k[0]), To: int(k[1]), N: n})
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		if r.Edges[i].From != r.Edges[j].From {
			return r.Edges[i].From < r.Edges[j].From
		}
		return r.Edges[i].To < r.Edges[j].To
	})

	r.Verdict = t.verdict(crashed, r.GoldenDiff, golden != nil)

	// Terminal nodes that exist only in the report: where the taint
	// story ends when it does not end at an output node.
	switch r.Verdict {
	case VerdictReachedCrash:
		r.addTerminal(t, NodeCrash, "crash")
	case VerdictReachedState:
		r.addTerminal(t, NodeFinal, "residual architectural state")
	}
	return r
}

// verdict derives the terminal verdict from the tracker state.
func (t *Tracker) verdict(crashed bool, diff *GoldenDiff, haveGolden bool) Verdict {
	live := t.Live()
	switch {
	case crashed && (t.injections > 0 || len(t.pending) > 0):
		// A fault that fired in a front-end stage and killed the machine
		// before its corruption could commit still explains the crash.
		return VerdictReachedCrash
	case t.injections == 0:
		return VerdictNotInjected
	case t.firstOutput >= 0:
		return VerdictReachedOutput
	case haveGolden && diff.Total() > 0:
		return VerdictReachedState
	case live > 0 && !haveGolden:
		return VerdictReachedState
	case live > 0:
		return VerdictMaskedLogically
	default:
		return VerdictMaskedOverwritten
	}
}

// addTerminal appends a synthetic terminal node fed by every residual
// provenance site (or, with no residual taint, by every inject node).
func (r *PropReport) addTerminal(t *Tracker, kind NodeKind, label string) {
	id := len(r.Nodes)
	r.Nodes = append(r.Nodes, Node{ID: id, Kind: kind, Label: label, Hits: 1, FirstInst: t.committed})
	seen := map[int32]bool{}
	feed := func(p int32) {
		if p != 0 && !seen[p] {
			seen[p] = true
			r.Edges = append(r.Edges, Edge{From: int(p - 1), To: id, N: 1})
		}
	}
	for reg := 0; reg < isa.NumRegs; reg++ {
		feed(t.intT[reg])
		feed(t.fpT[reg])
	}
	for _, p := range t.memT {
		feed(p)
	}
	if len(seen) == 0 {
		for i := range r.Nodes {
			if r.Nodes[i].Kind == NodeInject {
				r.Edges = append(r.Edges, Edge{From: r.Nodes[i].ID, To: id, N: 1})
			}
		}
	}
}

// HasPath reports whether the DAG contains a directed path from any node
// of kind from to any node of kind to.
func (r *PropReport) HasPath(from, to NodeKind) bool {
	adj := make(map[int][]int, len(r.Nodes))
	for _, e := range r.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	kind := make(map[int]NodeKind, len(r.Nodes))
	var queue []int
	for _, n := range r.Nodes {
		kind[n.ID] = n.Kind
		if n.Kind == from {
			queue = append(queue, n.ID)
		}
	}
	visited := make(map[int]bool, len(r.Nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if visited[id] {
			continue
		}
		visited[id] = true
		if kind[id] == to {
			return true
		}
		queue = append(queue, adj[id]...)
	}
	return false
}

// WriteJSON writes the report as indented JSON.
func (r *PropReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// dotShapes maps node kinds to Graphviz shapes; the injection site and
// the terminals stand out.
var dotShapes = map[NodeKind]string{
	NodeInject:   "octagon",
	NodeDef:      "box",
	NodeLoad:     "house",
	NodeStore:    "invhouse",
	NodeBranch:   "diamond",
	NodeControl:  "diamond",
	NodeOutput:   "doublecircle",
	NodeFinal:    "doubleoctagon",
	NodeCrash:    "tripleoctagon",
	NodeOverflow: "folder",
}

// dotQuote renders s as a DOT double-quoted string; real newlines become
// the \n line-break escape Graphviz expects inside labels.
func dotQuote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// WriteDOT writes the propagation DAG in Graphviz DOT format.
func (r *PropReport) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph taint {\n  rankdir=TB;\n  label=%s;\n  node [fontsize=10];\n",
		dotQuote("fault propagation: "+string(r.Verdict))); err != nil {
		return err
	}
	for _, n := range r.Nodes {
		shape := dotShapes[n.Kind]
		if shape == "" {
			shape = "box"
		}
		label := fmt.Sprintf("%s\n0x%x", n.Kind, n.PC)
		if n.Label != "" {
			label += "\n" + n.Label
		}
		if n.Hits > 1 {
			label += fmt.Sprintf("\n(%d hits)", n.Hits)
		}
		if _, err := fmt.Fprintf(w, "  n%d [shape=%s, label=%s];\n", n.ID, shape, dotQuote(label)); err != nil {
			return err
		}
	}
	for _, e := range r.Edges {
		attr := ""
		if e.N > 1 {
			attr = fmt.Sprintf(" [label=\"%d\"]", e.N)
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.From, e.To, attr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteText writes a human-readable summary of the report.
func (r *PropReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "taint verdict: %s\n", r.Verdict); err != nil {
		return err
	}
	fmt.Fprintf(w, "  injections: %d committed, %d squashed\n", r.Injections, r.SquashedInjections)
	fmt.Fprintf(w, "  tainted instructions: %d / %d committed\n", r.TaintedInsts, r.CommittedInsts)
	fmt.Fprintf(w, "  max live taint: %d  residual: %d (%d regs %v, %d mem bytes)\n",
		r.MaxLiveTaint, r.LiveTaint, len(r.ResidualRegs), r.ResidualRegs, r.ResidualMemBytes)
	fmt.Fprintf(w, "  first load/store/branch/output: %d/%d/%d/%d (committed insts, -1 = never)\n",
		r.FirstLoad, r.FirstStore, r.FirstBranch, r.FirstOutput)
	fmt.Fprintf(w, "  control divergences: %d  tainted output bytes: %d\n",
		r.ControlDivergences, r.OutputBytes)
	if r.GoldenDiff != nil {
		fmt.Fprintf(w, "  golden diff: %d int regs, %d fp regs, %d mem bytes\n",
			r.GoldenDiff.IntRegs, r.GoldenDiff.FpRegs, r.GoldenDiff.MemBytes)
	}
	_, err := fmt.Fprintf(w, "  DAG: %d nodes, %d edges\n", len(r.Nodes), len(r.Edges))
	return err
}

// ValidateReportJSON checks a PropReport JSON document against the
// schema: verdict and node kinds must be from the enumerations, node IDs
// must be dense, edges must reference existing nodes, and the counters
// must be mutually consistent. Returns the parsed report on success.
func ValidateReportJSON(rd io.Reader) (*PropReport, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r PropReport
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("propreport: %w", err)
	}
	switch r.Verdict {
	case VerdictNotInjected, VerdictMaskedOverwritten, VerdictMaskedLogically,
		VerdictReachedOutput, VerdictReachedCrash, VerdictReachedState:
	default:
		return nil, fmt.Errorf("propreport: unknown verdict %q", r.Verdict)
	}
	for i, n := range r.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("propreport: node %d has id %d (ids must be dense)", i, n.ID)
		}
		if !validNodeKinds[n.Kind] {
			return nil, fmt.Errorf("propreport: node %d has unknown kind %q", i, n.Kind)
		}
	}
	for _, e := range r.Edges {
		if e.From < 0 || e.From >= len(r.Nodes) || e.To < 0 || e.To >= len(r.Nodes) {
			return nil, fmt.Errorf("propreport: edge %d->%d references a missing node", e.From, e.To)
		}
	}
	if r.TaintedInsts > r.CommittedInsts {
		return nil, fmt.Errorf("propreport: tainted_insts %d > committed_insts %d", r.TaintedInsts, r.CommittedInsts)
	}
	if r.Injections > 0 && r.Verdict == VerdictNotInjected {
		return nil, fmt.Errorf("propreport: %d injections but verdict %q", r.Injections, r.Verdict)
	}
	return &r, nil
}
