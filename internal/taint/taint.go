// Package taint implements fault-propagation taint tracking: it marks the
// architectural bits corrupted by the fault injection engine and follows
// them through the committed instruction stream — register to register via
// the decode ports, register to memory and back at byte granularity
// through loads and stores, into control flow when a tainted value decides
// a branch, and out to I/O when a tainted byte reaches the console
// syscall. The result is a propagation DAG plus a terminal verdict that
// *explains* the campaign outcome classes (GemFI Section IV.B.1) instead
// of merely labelling them: a Non-Propagated run ends as masked-overwritten
// or masked-logically, an SDC shows a path from the injection node to an
// output or final-state node.
//
// The tracker attaches to a cpu.Core as its TaintSink and observes only
// committed (architectural) instructions, so it is exact on all three CPU
// models: speculative wrong-path work in the pipelined model never
// propagates taint, and the only speculative state — injection marks made
// by pre-commit engine hooks — is discarded on squash.
package taint

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/obs"
)

// maxNodes bounds the propagation DAG; beyond it, new propagation sites
// collapse into a single overflow node (reported as TruncatedNodes).
const maxNodes = 4096

// nodeKey dedupes DAG nodes: one node per (PC, kind) propagation site, so
// loops grow hit counts instead of node counts.
type nodeKey struct {
	pc   uint64
	kind NodeKind
}

// pendingInj is an injection recorded by a pre-commit engine hook (fetch,
// decode, execute, memory stage). It stays provisional until the hit
// instruction commits; a squash discards it.
type pendingInj struct {
	pc    uint64
	label string
}

// Tracker is the shadow-state propagation tracker. The zero value is not
// usable; call New. All methods are safe on a nil receiver (disabled
// tracking), mirroring the repo's nil-guarded observability convention.
type Tracker struct {
	// Trace, when set, receives fault.prop.* lifecycle events.
	Trace *obs.Tracer
	// TickFn, when set, timestamps trace events with simulation ticks;
	// otherwise the committed-instruction index is used.
	TickFn func() uint64

	// Shadow register files: 0 = clean, otherwise node ID + 1 of the
	// propagation site that last defined the register.
	intT [isa.NumRegs]int32
	fpT  [isa.NumRegs]int32
	// Shadow memory, byte granular: tainted address -> node ID + 1.
	memT map[uint64]int32

	pending map[uint64]pendingInj // seq -> provisional injection

	nodes    []Node
	nodeIdx  map[nodeKey]int
	edges    map[[2]int32]uint64
	overflow int32 // overflow node ID + 1, once allocated

	liveRegs int // tainted registers (live memory taint is len(memT))
	everLive bool

	committed    uint64
	taintedInsts uint64
	injections   uint64
	squashedInj  uint64
	maxLive      int
	ctrlDiverg   uint64
	outputBytes  uint64

	firstLoad, firstStore, firstBranch, firstOutput int64
}

var _ cpu.TaintSink = (*Tracker)(nil)

// New builds an empty tracker.
func New() *Tracker {
	t := &Tracker{}
	t.Reset()
	return t
}

// Reset clears all shadow state, the DAG and the counters; called when a
// checkpoint is restored so one tracker serves many experiments.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.intT = [isa.NumRegs]int32{}
	t.fpT = [isa.NumRegs]int32{}
	t.memT = make(map[uint64]int32)
	t.pending = make(map[uint64]pendingInj)
	t.nodes = t.nodes[:0]
	t.nodeIdx = make(map[nodeKey]int)
	t.edges = make(map[[2]int32]uint64)
	t.overflow = 0
	t.liveRegs = 0
	t.everLive = false
	t.committed = 0
	t.taintedInsts = 0
	t.injections = 0
	t.squashedInj = 0
	t.maxLive = 0
	t.ctrlDiverg = 0
	t.outputBytes = 0
	t.firstLoad, t.firstStore, t.firstBranch, t.firstOutput = -1, -1, -1, -1
}

// Live returns the current live-taint width: tainted registers plus
// tainted memory bytes.
func (t *Tracker) Live() int {
	if t == nil {
		return 0
	}
	return t.liveRegs + len(t.memT)
}

// PendingInjections returns how many provisional (pre-commit) injection
// marks are outstanding; after a run completes it must be zero unless the
// program halted with a corrupted instruction still in flight.
func (t *Tracker) PendingInjections() int {
	if t == nil {
		return 0
	}
	return len(t.pending)
}

// Injections returns how many injections materialized (committed).
func (t *Tracker) Injections() uint64 {
	if t == nil {
		return 0
	}
	return t.injections
}

// now picks the event timestamp: ticks when wired, else committed insts.
func (t *Tracker) now() uint64 {
	if t.TickFn != nil {
		return t.TickFn()
	}
	return t.committed
}

// emit sends one fault.prop.* event; a no-op without a tracer.
func (t *Tracker) emit(name string, args map[string]any) {
	if t.Trace == nil {
		return
	}
	t.Trace.Instant(obs.CatTaint, name, t.now(), args)
}

// node interns the DAG node for a (pc, kind) propagation site and counts
// the hit. Returns the node ID.
func (t *Tracker) node(kind NodeKind, pc uint64, label string) int32 {
	key := nodeKey{pc: pc, kind: kind}
	if id, ok := t.nodeIdx[key]; ok {
		t.nodes[id].Hits++
		return int32(id)
	}
	if len(t.nodes) >= maxNodes {
		if t.overflow == 0 {
			t.nodes = append(t.nodes, Node{
				ID: len(t.nodes), Kind: NodeOverflow, Hits: 0,
				Label: "propagation sites beyond the node cap", FirstInst: t.committed,
			})
			t.overflow = int32(len(t.nodes)) // ID + 1
		}
		t.nodes[t.overflow-1].Hits++
		return t.overflow - 1
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, Node{
		ID: id, Kind: kind, PC: pc, Label: label, Hits: 1, FirstInst: t.committed,
	})
	t.nodeIdx[key] = id
	return int32(id)
}

// edge records (or re-counts) a DAG edge.
func (t *Tracker) edge(from, to int32) {
	if from == to {
		return
	}
	t.edges[[2]int32{from, to}]++
}

// setReg updates a shadow register (p = node ID + 1, 0 clears) and the
// live-register count. Writes to the architectural zero register are
// discarded by the CPU, so they never carry taint.
func (t *Tracker) setReg(fp bool, r isa.Reg, p int32) {
	if r >= isa.NumRegs || r == isa.ZeroReg {
		return
	}
	shadow := &t.intT
	if fp {
		shadow = &t.fpT
	}
	old := shadow[r]
	if (old == 0) == (p == 0) {
		shadow[r] = p
		return
	}
	shadow[r] = p
	if p != 0 {
		t.liveRegs++
	} else {
		t.liveRegs--
	}
}

// regTaint reads a shadow register (node ID + 1, 0 = clean).
func (t *Tracker) regTaint(fp bool, r isa.Reg) int32 {
	if r >= isa.NumRegs {
		return 0
	}
	if fp {
		return t.fpT[r]
	}
	return t.intT[r]
}

// setMem taints or clears one shadow memory byte.
func (t *Tracker) setMem(addr uint64, p int32) {
	if p == 0 {
		delete(t.memT, addr)
		return
	}
	t.memT[addr] = p
}

// touchLive refreshes maxLive and emits the extinction event when the
// last live tainted bit is cleared.
func (t *Tracker) touchLive() {
	live := t.liveRegs + len(t.memT)
	if live > t.maxLive {
		t.maxLive = live
	}
	if live > 0 {
		t.everLive = true
	} else if t.everLive {
		t.everLive = false
		t.emit("fault.prop.extinct", map[string]any{"inst": t.committed})
	}
}

// ---- engine-facing injection marks ----

// MarkPendingInjection records that a pre-commit stage hook (fetch,
// decode, execute, memory) corrupted the in-flight instruction seq. The
// mark materializes when seq commits and is discarded if seq squashes.
func (t *Tracker) MarkPendingInjection(seq, pc uint64, label string) {
	if t == nil {
		return
	}
	t.pending[seq] = pendingInj{pc: pc, label: label}
}

// MarkRegInjection records a register fault applied at commit: the
// register is tainted directly and propagation starts with the next
// instruction that reads it.
func (t *Tracker) MarkRegInjection(fp bool, r isa.Reg, pc uint64, label string) {
	if t == nil {
		return
	}
	id := t.node(NodeInject, pc, label)
	t.injections++
	t.setReg(fp, r, id+1)
	t.touchLive()
	t.emit("fault.prop.inject", map[string]any{"pc": pc, "fault": label, "node": id})
}

// MarkControlInjection records a fault applied directly to control state
// (PC or PCB base register): the divergence is architectural immediately,
// so an inject node feeds a control node with no data taint.
func (t *Tracker) MarkControlInjection(pc uint64, label string) {
	if t == nil {
		return
	}
	id := t.node(NodeInject, pc, label)
	t.injections++
	ctrl := t.node(NodeControl, pc, "control state corrupted")
	t.edge(id, ctrl)
	t.ctrlDiverg++
	if t.firstBranch < 0 {
		t.firstBranch = int64(t.committed)
	}
	t.emit("fault.prop.inject", map[string]any{"pc": pc, "fault": label, "node": id, "control": true})
}

// MarkIOInjection records a fault applied to a byte already on its way to
// an I/O device: injection and output provenance coincide.
func (t *Tracker) MarkIOInjection(label string) {
	if t == nil {
		return
	}
	id := t.node(NodeInject, 0, label)
	t.injections++
	out := t.node(NodeOutput, 0, "console byte corrupted in flight")
	t.edge(id, out)
	t.outputBytes++
	if t.firstOutput < 0 {
		t.firstOutput = int64(t.committed)
	}
	t.emit("fault.prop.inject", map[string]any{"fault": label, "node": id, "io": true})
}

// ---- cpu.TaintSink ----

// OnSquash implements cpu.TaintSink: provisional injection marks on a
// squashed speculative instruction are discarded, so wrong-path
// corruption leaves zero residual taint.
func (t *Tracker) OnSquash(seq uint64) {
	if t == nil || len(t.pending) == 0 {
		return
	}
	if _, ok := t.pending[seq]; ok {
		delete(t.pending, seq)
		t.squashedInj++
		t.emit("fault.prop.squashed", map[string]any{"seq": seq})
	}
}

// OnCommitInst implements cpu.TaintSink: propagate taint through one
// committed instruction. The fast path — no live taint, no pending
// injection — is a counter increment and two length checks.
func (t *Tracker) OnCommitInst(seq, pc uint64, in isa.Inst, ports isa.RegPorts, out *cpu.ExecOut, loadVal uint64, a *cpu.Arch) {
	if t == nil {
		return
	}
	t.committed++
	if t.liveRegs == 0 && len(t.memT) == 0 && len(t.pending) == 0 {
		return
	}
	t.step(seq, pc, in, ports, out, a)
}

// step is the slow path of OnCommitInst: at least one tainted bit or
// pending injection exists somewhere in the machine.
func (t *Tracker) step(seq, pc uint64, in isa.Inst, ports isa.RegPorts, out *cpu.ExecOut, a *cpu.Arch) {
	// Collect the provenance of this instruction's tainted inputs.
	var parents [12]int32
	np := 0
	add := func(p int32) {
		if p == 0 {
			return
		}
		for i := 0; i < np; i++ {
			if parents[i] == p {
				return
			}
		}
		if np < len(parents) {
			parents[np] = p
			np++
		}
	}

	k := in.Kind
	if ports.SrcAUsed {
		add(t.regTaint(ports.SrcAFP, ports.SrcA))
	}
	if ports.SrcBUsed {
		add(t.regTaint(ports.SrcBFP, ports.SrcB))
	}
	if k.IsLoad() && len(t.memT) > 0 {
		for i := 0; i < k.MemSize(); i++ {
			add(t.memT[out.EA+uint64(i)])
		}
	}

	// Materialize a pending pre-commit injection: the corrupted
	// instruction retired, so its outputs are fault-derived.
	if inj, ok := t.pending[seq]; ok {
		delete(t.pending, seq)
		id := t.node(NodeInject, inj.pc, inj.label)
		t.injections++
		add(id + 1)
		t.emit("fault.prop.inject", map[string]any{"pc": inj.pc, "fault": inj.label, "node": id})
	}

	// Syscalls consume R0 (selector) and R16 (argument) — registers the
	// decode ports don't describe. A tainted byte reaching the console,
	// or a tainted exit status, is SDC provenance.
	if k == isa.KindSyscall {
		selT := t.intT[isa.RegV0]
		argT := t.intT[isa.RegA0]
		sel := a.ReadReg(isa.RegV0)
		if selT != 0 || (argT != 0 && (sel == isa.SysPutc || sel == isa.SysExit)) {
			id := t.node(NodeOutput, pc, "syscall "+outputLabel(sel))
			if selT != 0 {
				t.edge(selT-1, id)
			}
			if argT != 0 {
				t.edge(argT-1, id)
			}
			t.taintedInsts++
			t.outputBytes++
			if t.firstOutput < 0 {
				t.firstOutput = int64(t.committed)
				t.emit("fault.prop.first-output", map[string]any{"pc": pc, "inst": t.committed})
			}
		}
		return
	}

	if np == 0 {
		// Clean inputs: the write (if any) overwrites taint.
		t.clearOutputs(k, ports, out)
		t.touchLive()
		return
	}
	t.taintedInsts++

	switch {
	case k.IsStore():
		id := t.node(NodeStore, pc, in.String())
		for i := 0; i < np; i++ {
			t.edge(parents[i]-1, id)
		}
		for i := 0; i < k.MemSize(); i++ {
			t.setMem(out.EA+uint64(i), id+1)
		}
		if t.firstStore < 0 {
			t.firstStore = int64(t.committed)
			t.emit("fault.prop.first-store", map[string]any{"pc": pc, "addr": out.EA, "inst": t.committed})
		}

	case k.IsLoad():
		id := t.node(NodeLoad, pc, in.String())
		for i := 0; i < np; i++ {
			t.edge(parents[i]-1, id)
		}
		t.writeDst(ports, id+1)
		if t.firstLoad < 0 {
			t.firstLoad = int64(t.committed)
			t.emit("fault.prop.first-load", map[string]any{"pc": pc, "addr": out.EA, "inst": t.committed})
		}

	case k.IsBranch():
		// A tainted value decided (or addressed) control flow: record
		// the divergence point. The link register of a jump holds the
		// untainted return address, so data taint does not flow to it.
		id := t.node(NodeBranch, pc, in.String())
		for i := 0; i < np; i++ {
			t.edge(parents[i]-1, id)
		}
		t.ctrlDiverg++
		t.writeDst(ports, 0)
		if t.firstBranch < 0 {
			t.firstBranch = int64(t.committed)
			t.emit("fault.prop.first-branch", map[string]any{"pc": pc, "inst": t.committed})
		}

	default:
		id := t.node(NodeDef, pc, in.String())
		for i := 0; i < np; i++ {
			t.edge(parents[i]-1, id)
		}
		t.writeDst(ports, id+1)
	}
	t.touchLive()
}

// writeDst taints (or clears, p == 0) the destination register, if any.
func (t *Tracker) writeDst(ports isa.RegPorts, p int32) {
	if ports.DstUsed {
		t.setReg(ports.DstFP, ports.Dst, p)
	}
}

// clearOutputs handles a fully clean instruction: its register write or
// store overwrites whatever taint the destination held.
func (t *Tracker) clearOutputs(k isa.Kind, ports isa.RegPorts, out *cpu.ExecOut) {
	if k.IsStore() {
		if len(t.memT) > 0 {
			for i := 0; i < k.MemSize(); i++ {
				delete(t.memT, out.EA+uint64(i))
			}
		}
		return
	}
	t.writeDst(ports, 0)
}

// outputLabel names the observable effect of a tainted syscall.
func outputLabel(sel uint64) string {
	switch sel {
	case isa.SysPutc:
		return "putc"
	case isa.SysExit:
		return "exit status"
	default:
		return "selector"
	}
}

// RegisterMetrics exposes the tracker's counters as pull-collectors.
func (t *Tracker) RegisterMetrics(r *obs.Registry) {
	if t == nil || r == nil {
		return
	}
	r.RegisterFunc("taint.injections", func() float64 { return float64(t.injections) })
	r.RegisterFunc("taint.squashed_injections", func() float64 { return float64(t.squashedInj) })
	r.RegisterFunc("taint.tainted_insts", func() float64 { return float64(t.taintedInsts) })
	r.RegisterFunc("taint.live", func() float64 { return float64(t.Live()) })
	r.RegisterFunc("taint.max_live", func() float64 { return float64(t.maxLive) })
	r.RegisterFunc("taint.nodes", func() float64 { return float64(len(t.nodes)) })
	r.RegisterFunc("taint.control_divergences", func() float64 { return float64(t.ctrlDiverg) })
	r.RegisterFunc("taint.output_bytes", func() float64 { return float64(t.outputBytes) })
}
