package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestParsePaperListing1 parses the exact line of the paper's Listing 1.
func TestParsePaperListing1(t *testing.T) {
	line := `"RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1"`
	fs, err := ParseFaults(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("parsed %d faults", len(fs))
	}
	f := fs[0]
	if f.Loc != LocIntReg || f.Reg != 1 || f.Bit != 21 || f.Behavior != BehFlip {
		t.Errorf("location/behavior wrong: %+v", f)
	}
	if f.When != 2457 || f.Base != TimeInst || f.ThreadID != 0 || f.Occ != 1 {
		t.Errorf("timing wrong: %+v", f)
	}
	if f.CPU != "system.cpu1" {
		t.Errorf("cpu = %q", f.CPU)
	}
}

func TestParseAllFaultTypes(t *testing.T) {
	lines := map[string]Location{
		"RegisterInjectedFault Inst:1 Flip:0 Threadid:0 occ:1 float 7":      LocFloatReg,
		"RegisterInjectedFault Inst:1 Flip:0 Threadid:0 occ:1 special 0":    LocSpecialReg,
		"GeneralFetchInjectedFault Inst:5 Flip:13 Threadid:0 occ:1":         LocFetch,
		"RegisterDecodingInjectedFault Inst:5 Flip:2 Threadid:0 occ:1 op 1": LocDecode,
		"ExecutionInjectedFault Tick:100 XOR:0xff Threadid:0 occ:2":         LocExec,
		"MemoryInjectedFault Inst:9 AllZero Threadid:1 occ:all":             LocMem,
		"PCInjectedFault Inst:3 Imm:65536 Threadid:0 occ:1":                 LocPC,
	}
	for line, wantLoc := range lines {
		f, err := ParseFault(line)
		if err != nil {
			t.Errorf("%q: %v", line, err)
			continue
		}
		if f.Loc != wantLoc {
			t.Errorf("%q: loc %v want %v", line, f.Loc, wantLoc)
		}
	}
}

func TestParseBehaviorsAndTiming(t *testing.T) {
	f, err := ParseFault("MemoryInjectedFault Tick:42 XOR:0xdeadbeef Threadid:3 occ:5")
	if err != nil {
		t.Fatal(err)
	}
	if f.Base != TimeTick || f.When != 42 || f.Behavior != BehXor ||
		f.Value != 0xdeadbeef || f.ThreadID != 3 || f.Occ != 5 {
		t.Errorf("parsed %+v", f)
	}
	perm, err := ParseFault("RegisterInjectedFault Inst:1 AllOne Threadid:0 occ:all int 9")
	if err != nil {
		t.Fatal(err)
	}
	if perm.Occ != PermanentOcc || perm.Behavior != BehAllOne {
		t.Errorf("permanent fault %+v", perm)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"WeirdFault Inst:1 Flip:1 occ:1",
		"RegisterInjectedFault Flip:1 occ:1 int 1",   // missing time
		"RegisterInjectedFault Inst:1 occ:1 int 1",   // missing behavior
		"RegisterInjectedFault Inst:1 Flip:99 int 1", // bit out of range
		"RegisterInjectedFault Inst:1 Flip:1 int 40", // register out of range
		"RegisterInjectedFault Inst:1 Flip:1 occ:0 int 1",
		"RegisterDecodingInjectedFault Inst:1 Flip:1 op 5",
		"MemoryInjectedFault Inst:1 Flip:1 bogus",
	}
	for _, line := range bad {
		if _, err := ParseFault(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

// TestFaultStringRoundTrip: rendering a fault and re-parsing it yields
// the same fault.
func TestFaultStringRoundTrip(t *testing.T) {
	faults := []Fault{
		{Loc: LocIntReg, Reg: 5, Behavior: BehFlip, Bit: 21, ThreadID: 0, Base: TimeInst, When: 2457, Occ: 1},
		{Loc: LocFloatReg, Reg: 30, Behavior: BehXor, Value: 0xff, ThreadID: 2, Base: TimeTick, When: 9, Occ: 3},
		{Loc: LocFetch, Behavior: BehAllZero, Base: TimeInst, When: 1, Occ: PermanentOcc},
		{Loc: LocDecode, Reg: 2, Behavior: BehFlip, Bit: 4, Base: TimeInst, When: 7, Occ: 1},
		{Loc: LocPC, Behavior: BehSet, Value: 4096, Base: TimeInst, When: 3, Occ: 1},
	}
	for _, f := range faults {
		back, err := ParseFault(f.String())
		if err != nil {
			t.Errorf("%v: %v", f, err)
			continue
		}
		// The renderer fills in a default CPU name.
		f.CPU = back.CPU
		if back != f {
			t.Errorf("round trip:\n  in  %+v\n  out %+v", f, back)
		}
	}
}

func TestCorruptBehaviors(t *testing.T) {
	old := uint64(0b1010)
	cases := []struct {
		f    Fault
		want uint64
	}{
		{Fault{Behavior: BehFlip, Bit: 0}, 0b1011},
		{Fault{Behavior: BehFlip, Bit: 3}, 0b0010},
		{Fault{Behavior: BehXor, Value: 0xF}, 0b0101},
		{Fault{Behavior: BehSet, Value: 7}, 7},
		{Fault{Behavior: BehAllZero}, 0},
		{Fault{Behavior: BehAllOne}, ^uint64(0)},
	}
	for _, tc := range cases {
		if got := tc.f.Corrupt(old, 64); got != tc.want {
			t.Errorf("%v(%b) = %b want %b", tc.f.Behavior, old, got, tc.want)
		}
	}
}

func TestCorruptWidthMask(t *testing.T) {
	f := Fault{Behavior: BehAllOne}
	if got := f.Corrupt(0, 5); got != 31 {
		t.Errorf("5-bit all-one = %d", got)
	}
	flip := Fault{Behavior: BehFlip, Bit: 40}
	if got := flip.Corrupt(0, 32); got != 0 {
		t.Errorf("flip beyond width must mask away: %d", got)
	}
	prop := func(old uint64, bit uint8) bool {
		f := Fault{Behavior: BehFlip, Bit: int(bit % 64)}
		v := f.Corrupt(old, 32)
		return v <= 0xFFFFFFFF
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// engineWith returns an engine with one thread activated at PCB 0x1000.
func engineWith(faults ...Fault) *Engine {
	e := NewEngine("system.cpu0", faults)
	e.OnActivate(0x1000, 0)
	return e
}

func TestActivateToggle(t *testing.T) {
	e := NewEngine("cpu", nil)
	if e.Enabled() {
		t.Fatal("enabled before activation")
	}
	e.OnActivate(0x1000, 7)
	if !e.Enabled() || e.ThreadsActive() != 1 {
		t.Fatal("activation failed")
	}
	e.OnActivate(0x1000, 7) // toggle off
	if e.Enabled() || e.ThreadsActive() != 0 {
		t.Fatal("deactivation failed")
	}
}

func TestContextSwitchTracking(t *testing.T) {
	e := NewEngine("cpu", nil)
	e.OnActivate(0x1000, 0)
	e.OnContextSwitch(0x2000) // switched-in thread has FI off
	if e.Enabled() {
		t.Error("engine enabled for non-FI thread")
	}
	e.OnContextSwitch(0x1000)
	if !e.Enabled() {
		t.Error("engine did not re-enable for FI thread")
	}
}

func TestFetchFaultFiresAtExactInstruction(t *testing.T) {
	e := engineWith(Fault{Loc: LocFetch, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 3, Occ: 1})
	w := uint32(isa.MakeOperate(isa.OpIntArith, isa.FnADDQ, 1, 2, 3))
	if got := e.OnFetch(1, 0, w); got != w {
		t.Error("fired at fetch 1")
	}
	if got := e.OnFetch(2, 0, w); got != w {
		t.Error("fired at fetch 2")
	}
	if got := e.OnFetch(3, 0, w); got != w^1 {
		t.Errorf("did not fire at fetch 3: %x", got)
	}
	if got := e.OnFetch(4, 0, w); got != w {
		t.Error("transient fault fired twice")
	}
	oc := e.Outcomes()[0]
	if !oc.Fired || oc.FiredCount != 3 {
		t.Errorf("outcome %+v", oc)
	}
	if !strings.Contains(oc.Detail, "fetch") {
		t.Errorf("missing detail: %q", oc.Detail)
	}
}

func TestIntermittentFaultFiresNTimes(t *testing.T) {
	e := engineWith(Fault{Loc: LocFetch, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 2, Occ: 3})
	w := uint32(0)
	fired := 0
	for i := uint64(1); i <= 10; i++ {
		if e.OnFetch(i, 0, w) != w {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("intermittent occ:3 fired %d times", fired)
	}
}

func TestPermanentFaultAlwaysFires(t *testing.T) {
	e := engineWith(Fault{Loc: LocFetch, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 5, Occ: PermanentOcc})
	fired := 0
	for i := uint64(1); i <= 20; i++ {
		if e.OnFetch(i, 0, 0) != 0 {
			fired++
		}
	}
	if fired != 16 {
		t.Errorf("permanent fault fired %d of 16 post-trigger fetches", fired)
	}
	if e.Resolved() {
		t.Error("permanent faults must never resolve")
	}
}

func TestRegisterFaultAppliedAtCommit(t *testing.T) {
	e := engineWith(Fault{Loc: LocIntReg, Reg: 4, Behavior: BehSet, Value: 99, Base: TimeInst, When: 2, Occ: 1})
	var a cpu.Arch
	e.OnCommit(1, 0, &a)
	if a.R[4] != 0 {
		t.Error("fired early")
	}
	e.OnCommit(2, 0, &a)
	if a.R[4] != 99 {
		t.Errorf("register not corrupted: %d", a.R[4])
	}
}

func TestPCFaultReportsRedirect(t *testing.T) {
	e := engineWith(Fault{Loc: LocPC, Behavior: BehFlip, Bit: 8, Base: TimeInst, When: 1, Occ: 1})
	a := cpu.Arch{PC: 0x1000}
	if !e.OnCommit(1, 0, &a) {
		t.Error("PC fault must report a redirect")
	}
	if a.PC != 0x1100 {
		t.Errorf("PC = %#x", a.PC)
	}
}

func TestSpecialRegFaultHitsPCBB(t *testing.T) {
	e := engineWith(Fault{Loc: LocSpecialReg, Reg: 0, Behavior: BehFlip, Bit: 4, Base: TimeInst, When: 1, Occ: 1})
	a := cpu.Arch{PCBB: 0xF00000}
	e.OnCommit(1, 0, &a)
	if a.PCBB != 0xF00010 {
		t.Errorf("PCBB = %#x", a.PCBB)
	}
}

func TestTaintPropagationRead(t *testing.T) {
	e := engineWith(Fault{Loc: LocIntReg, Reg: 4, Behavior: BehFlip, Bit: 1, Base: TimeInst, When: 1, Occ: 1})
	var a cpu.Arch
	e.OnCommit(1, 0, &a)
	e.OnRegRead(false, 4)
	oc := e.Outcomes()[0]
	if !oc.Propagated {
		t.Error("read of tainted register must propagate")
	}
}

func TestTaintOverwriteBeforeRead(t *testing.T) {
	e := engineWith(Fault{Loc: LocIntReg, Reg: 4, Behavior: BehFlip, Bit: 1, Base: TimeInst, When: 1, Occ: 1})
	var a cpu.Arch
	e.OnCommit(1, 0, &a)
	e.OnRegWrite(false, 4)
	e.OnRegRead(false, 4) // read AFTER overwrite: clean value
	oc := e.Outcomes()[0]
	if oc.Propagated || !oc.Overwritten {
		t.Errorf("outcome %+v, want overwritten & not propagated", oc)
	}
}

func TestFPRegisterTaintSeparateFile(t *testing.T) {
	e := engineWith(Fault{Loc: LocFloatReg, Reg: 4, Behavior: BehFlip, Bit: 52, Base: TimeInst, When: 1, Occ: 1})
	var a cpu.Arch
	e.OnCommit(1, 0, &a)
	e.OnRegRead(false, 4) // INT register 4: must not clear FP taint
	if e.Outcomes()[0].Propagated {
		t.Error("int read cleared fp taint")
	}
	e.OnRegRead(true, 4)
	if !e.Outcomes()[0].Propagated {
		t.Error("fp read did not propagate")
	}
}

func TestSquashMakesFaultNonPropagated(t *testing.T) {
	e := engineWith(Fault{Loc: LocExec, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 1, Occ: 1})
	in := isa.Decode(isa.MakeOperate(isa.OpIntArith, isa.FnADDQ, 1, 2, 3))
	var out cpu.ExecOut
	e.OnExecute(42, 0, in, &out)
	if !e.Outcomes()[0].Fired {
		t.Fatal("did not fire")
	}
	e.OnSquash(42)
	oc := e.Outcomes()[0]
	if oc.Propagated || !oc.Squashed {
		t.Errorf("squashed fault: %+v", oc)
	}
	if !e.Resolved() {
		t.Error("squashed transient fault must be resolved")
	}
}

func TestExecFaultTargetsByInstructionClass(t *testing.T) {
	mk := func() *Engine {
		return engineWith(Fault{Loc: LocExec, Behavior: BehFlip, Bit: 3, Base: TimeInst, When: 1, Occ: 1})
	}
	// Memory instruction: corrupts the effective address.
	ldq, _ := isa.MakeMem(isa.OpLDQ, 1, 2, 0)
	out := cpu.ExecOut{EA: 0x100}
	mk().OnExecute(1, 0, isa.Decode(ldq), &out)
	if out.EA != 0x108 {
		t.Errorf("EA = %#x", out.EA)
	}
	// Branch: corrupts the target.
	br, _ := isa.MakeBranch(isa.OpBEQ, 1, 4)
	out = cpu.ExecOut{Target: 0x100}
	mk().OnExecute(1, 0, isa.Decode(br), &out)
	if out.Target != 0x108 {
		t.Errorf("target = %#x", out.Target)
	}
	// ALU: corrupts the integer result.
	add := isa.MakeOperate(isa.OpIntArith, isa.FnADDQ, 1, 2, 3)
	out = cpu.ExecOut{IntRes: 16}
	mk().OnExecute(1, 0, isa.Decode(add), &out)
	if out.IntRes != 24 {
		t.Errorf("int result = %d", out.IntRes)
	}
}

func TestDecodeFaultCorruptsSelectedOperand(t *testing.T) {
	for sel := 0; sel < 3; sel++ {
		e := engineWith(Fault{Loc: LocDecode, Reg: sel, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 1, Occ: 1})
		ports := isa.RegPorts{SrcA: 2, SrcB: 4, Dst: 6, SrcAUsed: true, SrcBUsed: true, DstUsed: true}
		got := e.OnDecode(1, 0, ports)
		switch sel {
		case 0:
			if got.SrcA != 3 || got.SrcB != 4 || got.Dst != 6 {
				t.Errorf("sel 0: %+v", got)
			}
		case 1:
			if got.SrcB != 5 || got.SrcA != 2 {
				t.Errorf("sel 1: %+v", got)
			}
		case 2:
			if got.Dst != 7 {
				t.Errorf("sel 2: %+v", got)
			}
		}
	}
}

func TestMemFaultCorruptsValue(t *testing.T) {
	e := engineWith(Fault{Loc: LocMem, Behavior: BehXor, Value: 0xFF, Base: TimeInst, When: 1, Occ: 1})
	// Memory faults time against the executed-instruction counter (the
	// paper's "number of instructions already executed"), so the memory
	// access follows its own execute stage.
	ldq, _ := isa.MakeMem(isa.OpLDQ, 1, 2, 0)
	var out cpu.ExecOut
	e.OnExecute(1, 0, isa.Decode(ldq), &out)
	if got := e.OnMem(1, 0, true, 0x100, 0xAB00, true); got != 0xABFF {
		t.Errorf("load value = %#x", got)
	}
}

// TestMemFaultWaitsForNextMemOp: a memory fault scheduled between memory
// operations fires at the first load/store at-or-after its instruction.
func TestMemFaultWaitsForNextMemOp(t *testing.T) {
	e := engineWith(Fault{Loc: LocMem, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 5, Occ: 1})
	add := isa.Decode(isa.MakeOperate(isa.OpIntArith, isa.FnADDQ, 1, 2, 3))
	ldq, _ := isa.MakeMem(isa.OpLDQ, 1, 2, 0)
	ld := isa.Decode(ldq)
	var out cpu.ExecOut
	// Instructions 1..2: one ALU op and one load (before the trigger).
	e.OnExecute(1, 0, add, &out)
	e.OnExecute(2, 0, ld, &out)
	if e.OnMem(2, 0, true, 0, 0, true) != 0 {
		t.Fatal("fired before its instruction")
	}
	// Instructions 3..7: ALU ops straddling the trigger point, then the
	// first post-trigger load at instruction 8 takes the hit.
	for seq := uint64(3); seq <= 7; seq++ {
		e.OnExecute(seq, 0, add, &out)
	}
	e.OnExecute(8, 0, ld, &out)
	if e.OnMem(8, 0, true, 0, 0, true) == 0 {
		t.Fatal("did not fire at the first post-trigger memory op")
	}
}

func TestTickBasedTiming(t *testing.T) {
	e := NewEngine("cpu", []Fault{
		{Loc: LocFetch, Behavior: BehFlip, Bit: 0, Base: TimeTick, When: 100, Occ: 1},
	})
	e.OnTick(500) // activation happens at tick 500
	e.OnActivate(0x1000, 0)
	e.OnTick(550)
	if e.OnFetch(1, 0, 0) != 0 { // tick offset 50 < 100
		t.Error("fired before tick offset reached")
	}
	e.OnTick(610)
	if e.OnFetch(2, 0, 0) == 0 { // tick offset 110 >= 100
		t.Error("did not fire after tick offset")
	}
}

func TestThreadFiltering(t *testing.T) {
	e := NewEngine("cpu", []Fault{
		{Loc: LocFetch, Behavior: BehFlip, Bit: 0, ThreadID: 1, Base: TimeInst, When: 1, Occ: 1},
	})
	e.OnActivate(0x1000, 0) // thread id 0, fault targets id 1
	if e.OnFetch(1, 0, 0) != 0 {
		t.Error("fault fired for wrong thread")
	}
	e.OnActivate(0x2000, 1)
	if e.OnFetch(2, 0, 0) == 0 {
		t.Error("fault did not fire for its thread")
	}
}

func TestCPUNameFiltering(t *testing.T) {
	f := Fault{Loc: LocFetch, Behavior: BehFlip, Bit: 0, CPU: "system.cpu1", Base: TimeInst, When: 1, Occ: 1}
	other := NewEngine("system.cpu0", []Fault{f})
	other.OnActivate(0x1000, 0)
	if other.OnFetch(1, 0, 0) != 0 {
		t.Error("fault armed on wrong CPU")
	}
	right := NewEngine("system.cpu1", []Fault{f})
	right.OnActivate(0x1000, 0)
	if right.OnFetch(1, 0, 0) == 0 {
		t.Error("fault did not arm on its CPU")
	}
}

// TestResetRearms is the fi_read_init_all contract: after Reset the
// engine state is as freshly parsed.
func TestResetRearms(t *testing.T) {
	f := Fault{Loc: LocFetch, Behavior: BehFlip, Bit: 0, Base: TimeInst, When: 1, Occ: 1}
	e := engineWith(f)
	e.OnFetch(1, 0, 0)
	if !e.AnyFired() {
		t.Fatal("setup: fault should have fired")
	}
	e.Reset([]Fault{f})
	if e.AnyFired() || e.Enabled() || e.ThreadsActive() != 0 {
		t.Error("reset did not clear engine state")
	}
	e.OnActivate(0x1000, 0)
	if e.OnFetch(1, 0, 0) == 0 {
		t.Error("re-armed fault did not fire")
	}
}

func TestHooksAreNoOpsWhenDisabled(t *testing.T) {
	e := NewEngine("cpu", []Fault{
		{Loc: LocFetch, Behavior: BehAllOne, Base: TimeInst, When: 1, Occ: 1},
	})
	// Never activated: every hook must be identity.
	if e.OnFetch(1, 0, 0x1234) != 0x1234 {
		t.Error("fetch hook mutated while disabled")
	}
	if e.OnMem(1, 0, true, 0, 42, true) != 42 {
		t.Error("mem hook mutated while disabled")
	}
	var a cpu.Arch
	if e.OnCommit(1, 0, &a) {
		t.Error("commit hook redirected while disabled")
	}
}
