package core

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/taint"
)

// Stage indexes the engine's five internal fault queues — "the file is
// parsed at startup and each fault is inserted to one of five internal
// queues. Each queue corresponds to a different pipeline stage."
type Stage int

// Fault queues.
const (
	StageFetch Stage = iota
	StageDecode
	StageExec
	StageMem
	StageCommit // register, special register and PC faults apply at commit
	numStages
)

// stageOf maps a fault location to its queue. Interconnect faults share
// the memory queue (they fire on the subset of transactions that cross
// the bus); I/O faults live outside the pipeline and get the commit
// queue's timing but are matched in OnIO.
func stageOf(l Location) Stage {
	switch l {
	case LocFetch:
		return StageFetch
	case LocDecode:
		return StageDecode
	case LocExec:
		return StageExec
	case LocMem, LocBus:
		return StageMem
	default:
		return StageCommit
	}
}

// ThreadEnabledFault holds the per-thread state GemFI keeps for threads
// that have activated fault injection (the paper's class of the same
// name): the numeric id assigned at fi_activate_inst, the identifying PCB
// address, and the per-stage event counters used for fault timing.
type ThreadEnabledFault struct {
	ID  int
	PCB uint64

	// Per-stage dynamic event counts since activation. Fetch/decode/
	// exec/mem counts include speculative (later squashed) events in the
	// pipelined model; Commits counts retired instructions.
	Fetches, Decodes, Execs, Mems, Commits uint64

	// TickStart anchors tick-based fault timing at activation time.
	TickStart uint64
}

// faultState is the runtime wrapper around one fault description.
type faultState struct {
	Fault
	idx       int   // position in the armed fault list (stable event key)
	remaining int64 // occurrences left (<0: permanent)

	Fired       bool // corrupted at least one value
	FiredTick   uint64
	FiredCount  uint64 // stage counter value at first firing
	PC          uint64 // guest PC of the first instruction hit
	HavePC      bool   // PC recorded (distinguishes a real PC 0)
	Committed   bool   // an instruction it hit committed
	Squashed    bool   // an instruction it hit was squashed
	Propagated  bool   // register faults: corrupted value was read
	Overwritten bool   // register faults: overwritten before any read
	pending     int    // in-flight instructions this fault has hit
	Detail      string // postmortem info (affected instruction)

	// loadHit marks a corrupted load value whose consuming load has not
	// yet committed; the commit emits fault.first-load (the load itself
	// is the first consumption of a LocMem load-value fault).
	loadHit bool
}

// active reports whether the fault can still fire.
func (fs *faultState) active() bool {
	return fs.remaining != 0
}

// matches reports whether the fault fires for the given thread at the
// given stage-counter value and tick.
func (fs *faultState) matches(t *ThreadEnabledFault, count, ticksNow uint64) bool {
	if !fs.active() || fs.ThreadID != t.ID {
		return false
	}
	var now uint64
	if fs.Base == TimeTick {
		now = ticksNow - t.TickStart
	} else {
		now = count
	}
	if now < fs.When {
		return false
	}
	if fs.remaining == PermanentOcc {
		return true
	}
	// Window of Occ occurrences starting at When: each firing consumes
	// one occurrence (transient: 1; intermittent: N).
	return true
}

// consume burns one occurrence and records first-fire info.
func (fs *faultState) consume(count, tick uint64) {
	if !fs.Fired {
		fs.Fired = true
		fs.FiredTick = tick
		fs.FiredCount = count
	}
	if fs.remaining > 0 {
		fs.remaining--
	}
}

// Engine is the fault injection engine. It implements cpu.Injector.
type Engine struct {
	CPUName string

	// Trace, when non-nil, receives the fault lifecycle as structured
	// events (armed -> injected -> committed/squashed -> first-read /
	// first-load / masked). Every emission site is on a fault-firing
	// path, never on the per-instruction fast path, so tracing costs
	// nothing until a fault actually strikes.
	Trace *obs.Tracer

	// Span, when non-nil, additionally receives the same fault lifecycle
	// as span events, so armed/injected/committed/squashed land on the
	// enclosing experiment's distributed-trace timeline. Like Trace,
	// every emission is on a fault-firing path; a nil Span is free.
	Span *obs.Span

	// Taint, when non-nil, receives injection marks for fault-propagation
	// tracking: pre-commit stage hits stay provisional until commit,
	// register faults taint the shadow register file directly. All
	// Tracker methods are nil-receiver safe.
	Taint *taint.Tracker

	faults []Fault // immutable, as parsed (re-armed by Reset)
	queues [numStages][]*faultState
	states []*faultState

	threads map[uint64]*ThreadEnabledFault
	current *ThreadEnabledFault // cached pointer for the running thread

	bySeq map[uint64][]*faultState // in-flight instruction -> faults applied

	taintInt [isa.NumRegs]*faultState
	taintFP  [isa.NumRegs]*faultState

	// memTaint maps addresses whose stored value a LocMem/LocBus store
	// fault corrupted to the fault, so the lifecycle chain can report the
	// first consuming load (fault.first-load) or a clean overwrite
	// (fault.masked, reason mem-overwritten) — the memory analogue of the
	// taintInt/taintFP register tracking.
	memTaint map[uint64]*faultState

	ticksNow uint64

	// WindowHook, when set, is called after a fault-injection window
	// opens (open=true) or closes (open=false). The simulator's
	// fast-forward mode uses the open edge to switch from the cheap
	// atomic prefix to the configured detailed model.
	WindowHook func(open bool)

	// Stats for the overhead study.
	Activations uint64
	HookCalls   uint64
	Injections  uint64

	// windowCommits accumulates the committed-instruction counts of
	// deactivated ThreadEnabledFault windows; campaigns use it to sample
	// injection times uniformly over the fault-injection window.
	windowCommits uint64
}

var _ cpu.Injector = (*Engine)(nil)

// NewEngine builds an engine for the named CPU with the given fault list.
func NewEngine(cpuName string, faults []Fault) *Engine {
	e := &Engine{CPUName: cpuName}
	e.faults = append(e.faults, faults...)
	e.rearm()
	return e
}

// rearm rebuilds all runtime fault state from the parsed descriptions.
func (e *Engine) rearm() {
	e.states = e.states[:0]
	for i := range e.queues {
		e.queues[i] = e.queues[i][:0]
	}
	for _, f := range e.faults {
		if f.CPU != "" && e.CPUName != "" && f.CPU != e.CPUName {
			continue
		}
		fs := &faultState{Fault: f, idx: len(e.states), remaining: f.Occ}
		e.states = append(e.states, fs)
		s := stageOf(f.Loc)
		e.queues[s] = append(e.queues[s], fs)
		e.traceFault("fault.armed", fs, nil)
	}
	e.threads = make(map[uint64]*ThreadEnabledFault)
	e.current = nil
	e.bySeq = make(map[uint64][]*faultState)
	e.taintInt = [isa.NumRegs]*faultState{}
	e.taintFP = [isa.NumRegs]*faultState{}
	e.memTaint = make(map[uint64]*faultState)
	e.Taint.Reset()
}

// Reset implements the fi_read_init_all restore semantics: "upon
// restoring from the checkpoint, it resets all the internal information of
// GemFI, allowing the same checkpoint to be used as a starting point for
// multiple experiments".
func (e *Engine) Reset(faults []Fault) {
	e.faults = append(e.faults[:0], faults...)
	e.rearm()
}

// Faults returns the parsed fault descriptions the engine was armed with.
func (e *Engine) Faults() []Fault { return append([]Fault(nil), e.faults...) }

// Enabled implements cpu.Injector: the per-tick fast path is a nil check
// on the cached thread pointer (Fig. 2 of the paper).
func (e *Engine) Enabled() bool { return e.current != nil }

// OnActivate implements the fi_activate_inst toggle: first call for a PCB
// enables fault injection for that thread; the next call disables it and
// destroys the ThreadEnabledFault object.
func (e *Engine) OnActivate(pcbb uint64, id int) {
	if t, ok := e.threads[pcbb]; ok {
		delete(e.threads, pcbb)
		e.windowCommits += t.Commits
		if e.current == t {
			e.current = nil
		}
		if e.Trace != nil {
			e.Trace.Instant(obs.CatFI, "fi.window.close", e.ticksNow,
				map[string]any{"thread": t.ID, "commits": t.Commits})
		}
		if e.WindowHook != nil {
			e.WindowHook(false)
		}
		return
	}
	t := &ThreadEnabledFault{ID: id, PCB: pcbb, TickStart: e.ticksNow}
	e.threads[pcbb] = t
	e.current = t
	e.Activations++
	if e.Trace != nil {
		e.Trace.Instant(obs.CatFI, "fi.window.open", e.ticksNow, map[string]any{"thread": id})
	}
	if e.WindowHook != nil {
		e.WindowHook(true)
	}
}

// OnContextSwitch implements cpu.Injector: re-resolve the cached pointer
// when the PCB base register changes.
func (e *Engine) OnContextSwitch(pcbb uint64) {
	e.current = e.threads[pcbb] // nil if the switched-in thread has FI off
}

// OnTick implements cpu.Injector.
func (e *Engine) OnTick(ticks uint64) { e.ticksNow = ticks }

// traceFault emits one fault-lifecycle event; a no-op without a tracer
// or an enclosing span.
func (e *Engine) traceFault(name string, fs *faultState, extra map[string]any) {
	if e.Trace == nil && e.Span == nil {
		return
	}
	args := map[string]any{
		"fault": fs.Fault.String(),
		"loc":   fs.Loc.String(),
		"idx":   fs.idx,
	}
	if fs.Detail != "" {
		args["detail"] = fs.Detail
	}
	for k, v := range extra {
		args[k] = v
	}
	if e.Trace != nil {
		e.Trace.Instant(obs.CatFI, name, e.ticksNow, args)
	}
	e.Span.Event(name, e.ticksNow, args)
}

// AttachTracer sets the lifecycle tracer and announces the already-armed
// faults (NewEngine arms before the simulator can hand over a tracer).
func (e *Engine) AttachTracer(t *obs.Tracer) {
	e.Trace = t
	for _, fs := range e.states {
		e.traceFault("fault.armed", fs, nil)
	}
}

// RegisterMetrics exposes the engine's counters as pull-collectors.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.RegisterFunc("fi.activations", func() float64 { return float64(e.Activations) })
	r.RegisterFunc("fi.hook_calls", func() float64 { return float64(e.HookCalls) })
	r.RegisterFunc("fi.injections", func() float64 { return float64(e.Injections) })
	r.RegisterFunc("fi.threads_active", func() float64 { return float64(len(e.threads)) })
	r.RegisterFunc("fi.faults_armed", func() float64 { return float64(len(e.states)) })
}

// recordHit associates a fired fault with an in-flight instruction and
// records the guest PC the injection struck (per-PC outcome
// attribution in campaign reports).
func (e *Engine) recordHit(seq, pc uint64, fs *faultState) {
	fs.pending++
	if !fs.HavePC {
		fs.PC, fs.HavePC = pc, true
	}
	e.bySeq[seq] = append(e.bySeq[seq], fs)
	e.Injections++
	e.Taint.MarkPendingInjection(seq, pc, fs.Fault.String())
	e.traceFault("fault.injected", fs, map[string]any{"seq": seq, "pc": pc})
}

// OnFetch implements cpu.Injector: corrupts the fetched instruction word
// (32 bits).
func (e *Engine) OnFetch(seq, pc uint64, word uint32) uint32 {
	t := e.current
	if t == nil {
		return word
	}
	e.HookCalls++
	t.Fetches++
	for _, fs := range e.queues[StageFetch] {
		if fs.matches(t, t.Fetches, e.ticksNow) {
			old := word
			word = uint32(fs.Corrupt(uint64(word), 32))
			fs.consume(t.Fetches, e.ticksNow)
			fs.Detail = "fetch " + isa.Decode(isa.Word(old)).String() + " -> " + isa.Decode(isa.Word(word)).String()
			e.recordHit(seq, pc, fs)
		}
	}
	return word
}

// OnDecode implements cpu.Injector: corrupts the register selection
// (5-bit indices) produced by the decode stage.
func (e *Engine) OnDecode(seq, pc uint64, ports isa.RegPorts) isa.RegPorts {
	t := e.current
	if t == nil {
		return ports
	}
	e.HookCalls++
	t.Decodes++
	for _, fs := range e.queues[StageDecode] {
		if fs.matches(t, t.Decodes, e.ticksNow) {
			switch fs.Reg {
			case 0:
				ports.SrcA = isa.Reg(fs.Corrupt(uint64(ports.SrcA), 5))
			case 1:
				ports.SrcB = isa.Reg(fs.Corrupt(uint64(ports.SrcB), 5))
			default:
				ports.Dst = isa.Reg(fs.Corrupt(uint64(ports.Dst), 5))
			}
			fs.consume(t.Decodes, e.ticksNow)
			fs.Detail = "decode register selection corrupted"
			e.recordHit(seq, pc, fs)
		}
	}
	return ports
}

// OnExecute implements cpu.Injector: corrupts the execute-stage output.
// For memory instructions this is the effective address being calculated;
// for branches the target; otherwise the integer or FP result.
func (e *Engine) OnExecute(seq, pc uint64, in isa.Inst, out *cpu.ExecOut) {
	t := e.current
	if t == nil {
		return
	}
	e.HookCalls++
	t.Execs++
	for _, fs := range e.queues[StageExec] {
		if fs.matches(t, t.Execs, e.ticksNow) {
			switch {
			case in.Kind.IsMem():
				out.EA = fs.Corrupt(out.EA, 64)
			case in.Kind.IsBranch():
				out.Target = fs.Corrupt(out.Target, 64)
			case in.Kind.IsFP():
				out.FpRes = math.Float64frombits(fs.Corrupt(math.Float64bits(out.FpRes), 64))
			default:
				out.IntRes = fs.Corrupt(out.IntRes, 64)
			}
			fs.consume(t.Execs, e.ticksNow)
			fs.Detail = "execute result of " + in.String()
			e.recordHit(seq, pc, fs)
		}
	}
}

// OnMem implements cpu.Injector: corrupts the value of a load (after the
// read) or a store (before the write). Fault timing follows the paper's
// "number of instructions already executed" semantics: a memory fault
// scheduled at instruction N fires at the first memory transaction at or
// after the Nth executed instruction (the Execs counter), since not every
// instruction touches memory.
func (e *Engine) OnMem(seq, pc uint64, load bool, addr uint64, val uint64, bus bool) uint64 {
	t := e.current
	if t == nil {
		return val
	}
	e.HookCalls++
	t.Mems++
	// Resolve earlier store-value corruptions: the first load of a
	// corrupted address is the fault's first consumption, a clean store
	// over it masks the fault before any use.
	if len(e.memTaint) > 0 {
		if fs, ok := e.memTaint[addr]; ok {
			delete(e.memTaint, addr)
			if load {
				fs.Propagated = true
				e.traceFault("fault.first-load", fs, map[string]any{"addr": addr, "via": "memory"})
			} else if !fs.Propagated {
				fs.Overwritten = true
				e.traceFault("fault.masked", fs, map[string]any{"reason": "mem-overwritten", "addr": addr})
			}
		}
	}
	for _, fs := range e.queues[StageMem] {
		if fs.Loc == LocBus && !bus {
			continue // interconnect faults only hit off-chip transactions
		}
		if fs.matches(t, t.Execs, e.ticksNow) {
			val = fs.Corrupt(val, 64)
			switch {
			case fs.Loc == LocBus && load:
				fs.Detail = "interconnect transaction"
				fs.loadHit = true
			case fs.Loc == LocBus:
				fs.Detail = "interconnect transaction"
				e.memTaint[addr] = fs
			case load:
				fs.Detail = "memory load value"
				fs.loadHit = true
			default:
				fs.Detail = "memory store value"
				e.memTaint[addr] = fs
			}
			fs.consume(t.Execs, e.ticksNow)
			e.recordHit(seq, pc, fs)
		}
	}
	return val
}

// OnIO corrupts a byte on its way to an external I/O device (the
// console), implementing the paper's Section VII "fault injection ...
// on external I/O devices" extension. Timing follows the committed
// instruction counter.
func (e *Engine) OnIO(b byte) byte {
	t := e.current
	if t == nil {
		return b
	}
	for _, fs := range e.queues[StageCommit] {
		if fs.Loc != LocIO {
			continue
		}
		if fs.matches(t, t.Commits, e.ticksNow) {
			b = byte(fs.Corrupt(uint64(b), 8))
			fs.consume(t.Commits, e.ticksNow)
			fs.Propagated = true // reached the device
			fs.Detail = "console output byte"
			e.Injections++
			e.Taint.MarkIOInjection(fs.Fault.String())
			e.traceFault("fault.injected", fs, map[string]any{"stage": "io"})
		}
	}
	return b
}

// OnCommit implements cpu.Injector: counts the retired instruction,
// resolves the commit-or-squash state of stage faults, and applies
// register / special register / PC faults by direct state mutation.
// Returns true if the architectural PC was changed.
func (e *Engine) OnCommit(seq, pc uint64, a *cpu.Arch) bool {
	if hits, ok := e.bySeq[seq]; ok {
		for _, fs := range hits {
			fs.pending--
			fs.Committed = true
			fs.Propagated = true // a corrupted instruction retired
			e.traceFault("fault.committed", fs, map[string]any{"seq": seq})
			if fs.loadHit {
				// The corrupted load value just retired: the load itself
				// is the first consumption of a load-value fault — the
				// memory analogue of fault.first-read.
				fs.loadHit = false
				e.traceFault("fault.first-load", fs, map[string]any{"seq": seq, "via": "load-value"})
			}
		}
		delete(e.bySeq, seq)
	}
	t := e.current
	if t == nil {
		return false
	}
	e.HookCalls++
	t.Commits++
	pcChanged := false
	for _, fs := range e.queues[StageCommit] {
		if !fs.matches(t, t.Commits, e.ticksNow) {
			continue
		}
		switch fs.Loc {
		case LocIO:
			continue // applied in OnIO, not at commit
		case LocIntReg:
			r := isa.Reg(fs.Reg & 31)
			a.WriteReg(r, fs.Corrupt(a.ReadReg(r), 64))
			if r != isa.ZeroReg {
				e.taintInt[r] = fs
			}
			fs.Detail = "int register " + r.String()
			e.Taint.MarkRegInjection(false, r, pc, fs.Fault.String())
		case LocFloatReg:
			r := isa.Reg(fs.Reg & 31)
			bits := math.Float64bits(a.ReadFReg(r))
			a.WriteFReg(r, math.Float64frombits(fs.Corrupt(bits, 64)))
			if r != isa.ZeroReg {
				e.taintFP[r] = fs
			}
			fs.Detail = "float register f" + itoa(fs.Reg&31)
			e.Taint.MarkRegInjection(true, r, pc, fs.Fault.String())
		case LocSpecialReg:
			a.PCBB = fs.Corrupt(a.PCBB, 64)
			fs.Propagated = true
			fs.Detail = "special register PCBB"
			e.Taint.MarkControlInjection(pc, fs.Fault.String())
		case LocPC:
			a.PC = fs.Corrupt(a.PC, 64)
			pcChanged = true
			fs.Propagated = true
			fs.Detail = "program counter"
			e.Taint.MarkControlInjection(pc, fs.Fault.String())
		}
		fs.consume(t.Commits, e.ticksNow)
		fs.Committed = true
		if !fs.HavePC {
			fs.PC, fs.HavePC = pc, true
		}
		e.Injections++
		e.traceFault("fault.injected", fs, map[string]any{"stage": "commit", "pc": pc})
	}
	return pcChanged
}

// OnSquash implements cpu.Injector: faults whose corrupted instruction
// was squashed never propagate (unless they also hit a committed one).
func (e *Engine) OnSquash(seq uint64) {
	hits, ok := e.bySeq[seq]
	if !ok {
		return
	}
	for _, fs := range hits {
		fs.pending--
		fs.Squashed = true
		fs.loadHit = false // the consuming load never committed
		e.traceFault("fault.squashed", fs, map[string]any{"seq": seq})
	}
	delete(e.bySeq, seq)
}

// OnRegRead implements cpu.Injector: a committed read of a tainted
// register means the fault propagated into the dataflow.
func (e *Engine) OnRegRead(fp bool, r isa.Reg) {
	if r >= isa.NumRegs {
		return
	}
	taint := &e.taintInt
	if fp {
		taint = &e.taintFP
	}
	if fs := taint[r]; fs != nil {
		fs.Propagated = true
		taint[r] = nil
		e.traceFault("fault.first-read", fs, map[string]any{"reg": r.String()})
	}
}

// OnRegWrite implements cpu.Injector: overwriting a tainted register
// before any read makes the fault non-propagated ("the corrupted register
// was ... overwritten before the erroneous value was used").
func (e *Engine) OnRegWrite(fp bool, r isa.Reg) {
	if r >= isa.NumRegs {
		return
	}
	taint := &e.taintInt
	if fp {
		taint = &e.taintFP
	}
	if fs := taint[r]; fs != nil {
		if !fs.Propagated {
			fs.Overwritten = true
			e.traceFault("fault.masked", fs, map[string]any{"reason": "overwritten", "reg": r.String()})
		}
		taint[r] = nil
	}
}

// Resolved reports whether every fault has finished firing and has no
// in-flight corrupted instruction — the paper's switch-to-atomic point
// ("the simulation continues until the affected instruction commits or
// squashes"). Permanent faults never resolve.
func (e *Engine) Resolved() bool {
	for _, fs := range e.states {
		if fs.remaining != 0 || fs.pending > 0 {
			return false
		}
	}
	return true
}

// ThreadsActive returns how many threads currently have FI enabled.
func (e *Engine) ThreadsActive() int { return len(e.threads) }

// WindowCommits returns the total committed instructions executed inside
// completed fault-injection windows (between fi_activate_inst toggles),
// plus any still-open window. Campaigns sample injection times uniformly
// from [1, WindowCommits] of a golden run.
func (e *Engine) WindowCommits() uint64 {
	n := e.windowCommits
	for _, t := range e.threads {
		n += t.Commits
	}
	return n
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
