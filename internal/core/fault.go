// Package core implements the GemFI fault injection engine — the paper's
// primary contribution. It provides:
//
//   - the fault description model (Location, Thread, Time, Behavior —
//     Section III.A of the paper) and a parser for the input-file format
//     of Listing 1;
//   - the per-pipeline-stage fault queues and the per-instruction
//     injection fast path of Fig. 2;
//   - thread tracking keyed by Process Control Block address, with
//     context-switch monitoring so the per-tick check is a cached pointer
//     dereference instead of a hash lookup;
//   - fault lifecycle tracking (fired / committed / squashed /
//     propagated / overwritten) used by the campaign layer to classify
//     outcomes, including the "non propagated" class.
package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Location is the micro-architectural module targeted by a fault
// (Section III.A.1 of the paper).
type Location int

// Fault locations.
const (
	LocIntReg     Location = iota + 1 // integer register file
	LocFloatReg                       // floating point register file
	LocSpecialReg                     // special purpose registers (0 = PCBB)
	LocFetch                          // the fetched instruction word
	LocDecode                         // register selection during decode
	LocExec                           // the result of the execution stage
	LocMem                            // value of a memory transaction (load/store)
	LocPC                             // the program counter

	// Extension locations (the paper's Section VII future work).
	LocBus // processor/memory interconnect: transactions that miss L1
	LocIO  // external I/O devices: bytes written to the console
)

// String names the location as used in fault files and reports.
func (l Location) String() string {
	switch l {
	case LocIntReg:
		return "int-register"
	case LocFloatReg:
		return "float-register"
	case LocSpecialReg:
		return "special-register"
	case LocFetch:
		return "fetch"
	case LocDecode:
		return "decode"
	case LocExec:
		return "execute"
	case LocMem:
		return "memory"
	case LocPC:
		return "pc"
	case LocBus:
		return "interconnect"
	case LocIO:
		return "io-device"
	default:
		return "unknown"
	}
}

// Behavior is how the targeted value is corrupted (Section III.A.4).
type Behavior int

// Fault behaviors.
const (
	BehFlip    Behavior = iota + 1 // flip one bit
	BehXor                         // XOR with a constant
	BehSet                         // assign an immediate value
	BehAllZero                     // set all bits to 0
	BehAllOne                      // set all bits to 1
)

// String names the behavior.
func (b Behavior) String() string {
	switch b {
	case BehFlip:
		return "flip"
	case BehXor:
		return "xor"
	case BehSet:
		return "set"
	case BehAllZero:
		return "all-zero"
	case BehAllOne:
		return "all-one"
	default:
		return "unknown"
	}
}

// TimeBase selects whether fault timing counts committed instructions or
// simulation ticks of the targeted thread (Section III.A.3).
type TimeBase int

// Time bases.
const (
	TimeInst TimeBase = iota + 1
	TimeTick
)

// PermanentOcc marks a permanent fault (active until the end of the
// simulation).
const PermanentOcc int64 = -1

// Fault is one fault description: one line of the GemFI input file.
type Fault struct {
	Loc Location

	// Reg is the register index for register/special faults, or the
	// operand selector for decode faults (0 = first source, 1 = second
	// source, 2 = destination).
	Reg int

	Behavior Behavior
	Bit      int    // bit position for BehFlip
	Value    uint64 // constant for BehXor / BehSet

	ThreadID int
	CPU      string // target CPU name; "" matches any

	Base TimeBase
	When uint64 // trigger point, relative to fi_activate_inst
	Occ  int64  // active occurrences; PermanentOcc = permanent
}

// String renders the fault in the input-file format.
func (f Fault) String() string {
	var sb strings.Builder
	sb.WriteString(faultTypeName(f.Loc))
	if f.Base == TimeTick {
		fmt.Fprintf(&sb, " Tick:%d", f.When)
	} else {
		fmt.Fprintf(&sb, " Inst:%d", f.When)
	}
	switch f.Behavior {
	case BehFlip:
		fmt.Fprintf(&sb, " Flip:%d", f.Bit)
	case BehXor:
		fmt.Fprintf(&sb, " XOR:0x%x", f.Value)
	case BehSet:
		fmt.Fprintf(&sb, " Imm:%d", f.Value)
	case BehAllZero:
		sb.WriteString(" AllZero")
	case BehAllOne:
		sb.WriteString(" AllOne")
	}
	fmt.Fprintf(&sb, " Threadid:%d", f.ThreadID)
	cpuName := f.CPU
	if cpuName == "" {
		cpuName = "system.cpu0"
	}
	sb.WriteString(" " + cpuName)
	if f.Occ == PermanentOcc {
		sb.WriteString(" occ:all")
	} else {
		fmt.Fprintf(&sb, " occ:%d", f.Occ)
	}
	switch f.Loc {
	case LocIntReg:
		fmt.Fprintf(&sb, " int %d", f.Reg)
	case LocFloatReg:
		fmt.Fprintf(&sb, " float %d", f.Reg)
	case LocSpecialReg:
		fmt.Fprintf(&sb, " special %d", f.Reg)
	case LocDecode:
		fmt.Fprintf(&sb, " op %d", f.Reg)
	}
	return sb.String()
}

func faultTypeName(l Location) string {
	switch l {
	case LocIntReg, LocFloatReg, LocSpecialReg:
		return "RegisterInjectedFault"
	case LocFetch:
		return "GeneralFetchInjectedFault"
	case LocDecode:
		return "RegisterDecodingInjectedFault"
	case LocExec:
		return "ExecutionInjectedFault"
	case LocMem:
		return "MemoryInjectedFault"
	case LocPC:
		return "PCInjectedFault"
	case LocBus:
		return "InterconnectInjectedFault"
	case LocIO:
		return "IODeviceInjectedFault"
	default:
		return "UnknownInjectedFault"
	}
}

// ParseFaults reads a GemFI fault input file: one fault per line, the
// format of the paper's Listing 1, e.g.
//
//	RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1
//
// Lines starting with '#' and blank lines are ignored. Quotes around a
// line (as printed in the paper) are stripped.
func ParseFaults(r io.Reader) ([]Fault, error) {
	var out []Fault
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		line = strings.Trim(line, `"`)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := ParseFault(line)
		if err != nil {
			return nil, fmt.Errorf("fault file line %d: %w", lineNo, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseFault parses a single fault description line.
func ParseFault(line string) (Fault, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Fault{}, fmt.Errorf("empty fault description")
	}
	f := Fault{Occ: 1, Base: TimeInst}

	switch fields[0] {
	case "RegisterInjectedFault":
		f.Loc = LocIntReg // refined by the trailing register class
	case "GeneralFetchInjectedFault", "FetchInjectedFault":
		f.Loc = LocFetch
	case "RegisterDecodingInjectedFault", "DecodeInjectedFault":
		f.Loc = LocDecode
	case "ExecutionInjectedFault", "IEWStageInjectedFault":
		f.Loc = LocExec
	case "MemoryInjectedFault", "LoadStoreInjectedFault":
		f.Loc = LocMem
	case "PCInjectedFault":
		f.Loc = LocPC
	case "InterconnectInjectedFault", "BusInjectedFault":
		f.Loc = LocBus
	case "IODeviceInjectedFault", "IOInjectedFault":
		f.Loc = LocIO
	default:
		return Fault{}, fmt.Errorf("unknown fault type %q", fields[0])
	}
	isRegister := fields[0] == "RegisterInjectedFault"

	var haveBehavior, haveTime bool
	i := 1
	for i < len(fields) {
		tok := fields[i]
		key, val, hasVal := strings.Cut(tok, ":")
		switch {
		case key == "Inst" && hasVal:
			n, err := parseU64(val)
			if err != nil {
				return Fault{}, err
			}
			f.Base, f.When, haveTime = TimeInst, n, true
		case key == "Tick" && hasVal:
			n, err := parseU64(val)
			if err != nil {
				return Fault{}, err
			}
			f.Base, f.When, haveTime = TimeTick, n, true
		case key == "Flip" && hasVal:
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > 63 {
				return Fault{}, fmt.Errorf("bad flip bit %q", val)
			}
			f.Behavior, f.Bit, haveBehavior = BehFlip, n, true
		case key == "XOR" && hasVal:
			n, err := parseU64(val)
			if err != nil {
				return Fault{}, err
			}
			f.Behavior, f.Value, haveBehavior = BehXor, n, true
		case (key == "Imm" || key == "Value") && hasVal:
			n, err := parseU64(val)
			if err != nil {
				return Fault{}, err
			}
			f.Behavior, f.Value, haveBehavior = BehSet, n, true
		case tok == "AllZero":
			f.Behavior, haveBehavior = BehAllZero, true
		case tok == "AllOne":
			f.Behavior, haveBehavior = BehAllOne, true
		case key == "Threadid" && hasVal:
			n, err := strconv.Atoi(val)
			if err != nil {
				return Fault{}, fmt.Errorf("bad thread id %q", val)
			}
			f.ThreadID = n
		case key == "occ" && hasVal:
			if val == "all" {
				f.Occ = PermanentOcc
			} else {
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 1 {
					return Fault{}, fmt.Errorf("bad occ %q", val)
				}
				f.Occ = n
			}
		case tok == "int" || tok == "float" || tok == "special" || tok == "op":
			if i+1 >= len(fields) {
				return Fault{}, fmt.Errorf("%s needs a register number", tok)
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil || n < 0 {
				return Fault{}, fmt.Errorf("bad register number %q", fields[i+1])
			}
			f.Reg = n
			switch tok {
			case "int":
				if isRegister {
					f.Loc = LocIntReg
				}
			case "float":
				if isRegister {
					f.Loc = LocFloatReg
				}
			case "special":
				if isRegister {
					f.Loc = LocSpecialReg
				}
			case "op":
				if f.Loc != LocDecode {
					return Fault{}, fmt.Errorf("operand selector only valid for decode faults")
				}
				if n > 2 {
					return Fault{}, fmt.Errorf("operand selector must be 0..2")
				}
			}
			i++
		case strings.Contains(tok, "cpu"):
			f.CPU = tok
		default:
			return Fault{}, fmt.Errorf("unknown token %q", tok)
		}
		i++
	}
	if !haveBehavior {
		return Fault{}, fmt.Errorf("fault needs a behavior (Flip/XOR/Imm/AllZero/AllOne)")
	}
	if !haveTime {
		return Fault{}, fmt.Errorf("fault needs a time (Inst:N or Tick:N)")
	}
	if (f.Loc == LocIntReg || f.Loc == LocFloatReg) && f.Reg > 31 {
		return Fault{}, fmt.Errorf("register index %d out of range", f.Reg)
	}
	return f, nil
}

func parseU64(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// Corrupt applies the fault's behavior to old, masked to width bits
// (width <= 64).
func (f Fault) Corrupt(old uint64, width uint) uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = (1 << width) - 1
	}
	var v uint64
	switch f.Behavior {
	case BehFlip:
		v = old ^ (1 << uint(f.Bit))
	case BehXor:
		v = old ^ f.Value
	case BehSet:
		v = f.Value
	case BehAllZero:
		v = 0
	case BehAllOne:
		v = ^uint64(0)
	default:
		v = old
	}
	return v & mask
}
