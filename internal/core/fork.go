package core

// Fork support: capturing the engine's fault-injection window bookkeeping
// so a campaign fork taken mid-window behaves exactly like a full replay
// that ran up to the same point. checkpoint.State deliberately omits
// engine state (fi_read_init_all resets it on restore), but a fork is
// different: the trunk has already executed part of the window, so the
// child must inherit the per-thread stage counters and tick anchor or
// every fault timed after the fork point would fire at the wrong moment.

// WindowState is a value snapshot of the engine's activation windows: the
// per-thread counters, which thread is running, the tick clock, and the
// closed-window commit total. It contains no pointers into the engine and
// may be shared across any number of forks.
type WindowState struct {
	Threads       map[uint64]ThreadEnabledFault // value copies, keyed by PCB
	CurrentPCB    uint64
	HaveCurrent   bool
	TicksNow      uint64
	WindowCommits uint64
}

// Open reports whether any fault-injection window is open in the state.
func (ws WindowState) Open() bool { return len(ws.Threads) > 0 }

// WindowOpen reports whether any fault-injection window is currently
// open (some thread has called fi_activate without a matching
// deactivate) — the mid-window-fork check, without the deep copy
// CaptureWindow makes.
func (e *Engine) WindowOpen() bool { return len(e.threads) > 0 }

// CaptureWindow snapshots the engine's window bookkeeping at the current
// instant. The returned state is deep-copied and immutable.
func (e *Engine) CaptureWindow() WindowState {
	ws := WindowState{
		TicksNow:      e.ticksNow,
		WindowCommits: e.windowCommits,
	}
	if len(e.threads) > 0 {
		ws.Threads = make(map[uint64]ThreadEnabledFault, len(e.threads))
		for pcb, t := range e.threads {
			ws.Threads[pcb] = *t
		}
	}
	if e.current != nil {
		ws.CurrentPCB, ws.HaveCurrent = e.current.PCB, true
	}
	return ws
}

// ResetWithWindow is Reset followed by reinstalling a captured window
// state: fresh fault state armed from the descriptions, but thread
// counters, the running-thread pointer, the tick clock, and the
// closed-window total continue from the fork point.
func (e *Engine) ResetWithWindow(faults []Fault, ws WindowState) {
	e.Reset(faults)
	for pcb, t := range ws.Threads {
		ct := t
		e.threads[pcb] = &ct
	}
	if ws.HaveCurrent {
		e.current = e.threads[ws.CurrentPCB]
	}
	e.ticksNow = ws.TicksNow
	e.windowCommits = ws.WindowCommits
}

// MaskedClean reports whether the experiment's fate is already sealed as
// non-propagated with the machine back in the golden state: every fault
// has finished firing with nothing in flight, every fired fault was
// masked before committed execution observed it (register taint
// overwritten, or all struck instructions squashed), and no taint —
// register, memory, or in-flight — remains outstanding. When true, the
// architectural state equals the fault-free run at the same instruction
// count, so the remaining execution is exactly the golden suffix and a
// fork-server campaign may classify the run without finishing it.
func (e *Engine) MaskedClean() bool {
	for _, fs := range e.states {
		if fs.remaining != 0 || fs.pending > 0 {
			return false
		}
		if !fs.Fired {
			continue
		}
		if fs.Propagated {
			return false
		}
		if !fs.Overwritten && !(fs.Squashed && !fs.Committed) {
			return false
		}
	}
	for i := range e.taintInt {
		if e.taintInt[i] != nil || e.taintFP[i] != nil {
			return false
		}
	}
	return len(e.memTaint) == 0 && len(e.bySeq) == 0
}
