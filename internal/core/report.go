package core

// FaultOutcome is the engine-level lifecycle summary for one fault. The
// campaign layer combines it with the program's output comparison to
// produce the paper's five outcome classes.
type FaultOutcome struct {
	Fault Fault

	// Fired: the fault corrupted at least one value.
	Fired bool
	// FiredTick / FiredCount: when it first fired.
	FiredTick  uint64
	FiredCount uint64
	// PC / HavePC: the guest PC of the first instruction the fault
	// struck, for symbolized per-PC outcome attribution.
	PC     uint64
	HavePC bool
	// Committed / Squashed: fate of the corrupted instruction(s).
	Committed bool
	Squashed  bool
	// Propagated: the corrupted value was observed by committed execution
	// (register faults: read before overwrite; stage faults: instruction
	// retired; PC/special faults: always).
	Propagated bool
	// Overwritten: register fault overwritten before any read.
	Overwritten bool
	// Detail describes the affected instruction or location, printed for
	// postmortem correlation like the paper's injection log.
	Detail string
}

// NonPropagated reports whether the fault never manifested as an error:
// it did not fire, only hit squashed instructions, or its register taint
// was overwritten/never read.
func (o FaultOutcome) NonPropagated() bool { return !o.Propagated }

// Outcomes returns the lifecycle summary of every armed fault.
func (e *Engine) Outcomes() []FaultOutcome {
	out := make([]FaultOutcome, 0, len(e.states))
	for _, fs := range e.states {
		out = append(out, FaultOutcome{
			Fault:       fs.Fault,
			Fired:       fs.Fired,
			FiredTick:   fs.FiredTick,
			FiredCount:  fs.FiredCount,
			PC:          fs.PC,
			HavePC:      fs.HavePC,
			Committed:   fs.Committed,
			Squashed:    fs.Squashed,
			Propagated:  fs.Propagated,
			Overwritten: fs.Overwritten,
			Detail:      fs.Detail,
		})
	}
	return out
}

// AnyPropagated reports whether at least one fault propagated.
func (e *Engine) AnyPropagated() bool {
	for _, fs := range e.states {
		if fs.Propagated {
			return true
		}
	}
	return false
}

// AnyFired reports whether at least one fault fired.
func (e *Engine) AnyFired() bool {
	for _, fs := range e.states {
		if fs.Fired {
			return true
		}
	}
	return false
}
