package campaign

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// poolFP fabricates a fork point whose WindowCommits reports win, for
// exercising the snapshot pool without a simulator.
func poolFP(win uint64) *checkpoint.ForkPoint {
	fp := &checkpoint.ForkPoint{}
	if win > 0 {
		fp.Window.Threads = map[uint64]core.ThreadEnabledFault{1: {Commits: win}}
	}
	return fp
}

func TestSnapPoolBestPicksClosestPreceding(t *testing.T) {
	sp := &snapPool{maxLive: 16}
	sp.setRoot(poolFP(0))
	for _, w := range []uint64{100, 200, 300} {
		sp.insert(poolFP(w))
	}
	for _, tc := range []struct {
		when     uint64
		rootOnly bool
		want     uint64
	}{
		{when: 250, want: 200},
		{when: 301, want: 300},
		// A fault firing exactly at a snapshot's commit count must fork
		// from the snapshot before it: at win == When the fault has
		// already fired on the trunk.
		{when: 200, want: 100},
		{when: 100, want: 0},
		{when: 50, want: 0},
		{when: 999, rootOnly: true, want: 0},
	} {
		got := sp.best(tc.when, tc.rootOnly)
		if got.win != tc.want {
			t.Errorf("best(%d, rootOnly=%v) = win %d, want %d", tc.when, tc.rootOnly, got.win, tc.want)
		}
	}
}

func TestSnapPoolThinningAccounting(t *testing.T) {
	sp := &snapPool{maxLive: 4}
	sp.setRoot(poolFP(0))
	for i := uint64(1); i <= 12; i++ {
		sp.insert(poolFP(i * 10))
	}
	taken, evicted, live, bytes := sp.stats()
	if taken != 13 { // root + 12 inserts
		t.Errorf("taken = %d, want 13", taken)
	}
	if live > sp.maxLive+1 { // +1 for the root, which is never evicted
		t.Errorf("live = %d exceeds bound %d", live, sp.maxLive+1)
	}
	if int(evicted) != 13-live {
		t.Errorf("accounting broken: taken %d, evicted %d, live %d", taken, evicted, live)
	}
	if bytes == 0 {
		t.Error("ApproxBytes sum is zero for a non-empty pool")
	}
	// Build-time thinning keeps the pool sorted and retains the newest
	// snapshot so late-window faults keep a nearby fork point.
	for i := 1; i < len(sp.snaps); i++ {
		if sp.snaps[i-1].win >= sp.snaps[i].win {
			t.Fatalf("pool unsorted after thinning: %d before %d", sp.snaps[i-1].win, sp.snaps[i].win)
		}
	}
	if last := sp.snaps[len(sp.snaps)-1].win; last != 120 {
		t.Errorf("newest snapshot evicted by thinning: last win = %d, want 120", last)
	}
}

func TestSnapPoolLRUEviction(t *testing.T) {
	sp := &snapPool{maxLive: 3}
	sp.setRoot(poolFP(0))
	for _, w := range []uint64{10, 20, 30} {
		sp.insert(poolFP(w))
	}
	// Touch 10 and 30; 20 becomes the least recently used.
	sp.best(11, false)
	sp.best(31, false)
	sp.insert(poolFP(40))
	for _, s := range sp.snaps {
		if s.win == 20 {
			t.Fatal("LRU eviction kept the least-recently-used snapshot")
		}
	}
	_, evicted, live, _ := sp.stats()
	if live != 4 || evicted != 1 { // root + {10, 30, 40}
		t.Errorf("live %d evicted %d, want 4 and 1", live, evicted)
	}
}

// TestForkCampaignMatchesReplay is the outcome-identity half of the fork
// acceptance criteria: the same experiments run through a fork-server
// runner and a plain checkpoint-replay runner must classify identically —
// outcome class, fired flag, and (on the serial atomic model) committed
// instruction totals, including experiments the fork server pruned early.
func TestForkCampaignMatchesReplay(t *testing.T) {
	replay := piRunner(t)
	fork := piRunner(t)
	if err := fork.EnableFork(DefaultForkOptions()); err != nil {
		t.Fatal(err)
	}
	if !fork.ForkEnabled() {
		t.Fatal("EnableFork left fork mode off")
	}

	exps := GenerateUniform(24, GenConfig{WindowInsts: replay.WindowInsts, Seed: 11})
	for _, e := range exps {
		want := replay.Run(e)
		got := fork.Run(e)
		if got.Outcome != want.Outcome || got.Fired != want.Fired {
			t.Errorf("exp %d (%+v): fork %v/fired=%v, replay %v/fired=%v",
				e.ID, e.Faults[0], got.Outcome, got.Fired, want.Outcome, want.Fired)
		}
		if got.Insts != want.Insts {
			t.Errorf("exp %d: insts %d vs %d", e.ID, got.Insts, want.Insts)
		}
		if got.Ticks != want.Ticks {
			t.Errorf("exp %d: ticks %d vs %d", e.ID, got.Ticks, want.Ticks)
		}
	}

	st := fork.ForkStats()
	if st.Forks != uint64(len(exps)) {
		t.Errorf("forks = %d, want %d", st.Forks, len(exps))
	}
	if st.SnapshotsTaken < 2 {
		t.Errorf("trunk took %d snapshots, want at least root + one mid-window", st.SnapshotsTaken)
	}
	if st.TrunkInsts == 0 {
		t.Error("trunk completion instruction count missing")
	}
}

// TestForkPoolMatchesSerialReplay runs the concurrent path: a pool of
// fork-server workers sharing one snapshot pool must reproduce the
// serial replay tally exactly.
func TestForkPoolMatchesSerialReplay(t *testing.T) {
	replay := piRunner(t)
	pool, err := NewPool(replay.Workload, 3, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.EnableFork(DefaultForkOptions()); err != nil {
		t.Fatal(err)
	}
	exps := GenerateUniform(18, GenConfig{WindowInsts: replay.WindowInsts, Seed: 5})
	results := pool.RunAll(exps)
	for _, e := range exps {
		want := replay.Run(e)
		got := results[e.ID]
		if got.ID != e.ID {
			t.Fatalf("result order broken: got ID %d at slot %d", got.ID, e.ID)
		}
		if got.Outcome != want.Outcome || got.Fired != want.Fired {
			t.Errorf("exp %d: pool fork %v/fired=%v, serial replay %v/fired=%v",
				e.ID, got.Outcome, got.Fired, want.Outcome, want.Fired)
		}
	}
	if st := pool.ForkStats(); st.Forks != uint64(len(exps)) {
		t.Errorf("pool fork count = %d, want %d", st.Forks, len(exps))
	}
}
