package campaign

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig7Row is the overhead measurement for one application: simulation
// time with GemFI machinery active (fault injection enabled, no faults
// injected) versus the unmodified simulator, with a confidence interval —
// the paper's worst-case-overhead experiment.
type Fig7Row struct {
	Workload    string  `json:"workload"`
	VanillaSec  float64 `json:"vanillaSec"`
	GemFISec    float64 `json:"gemfiSec"`
	OverheadPct float64 `json:"overheadPct"`
	CILowPct    float64 `json:"ciLowPct"`
	CIHighPct   float64 `json:"ciHighPct"`
	Trials      int     `json:"trials"`
}

// Fig7Report reproduces Fig. 7.
type Fig7Report struct {
	Rows []Fig7Row `json:"rows"`
}

// Fig7Config parameterizes the overhead study.
type Fig7Config struct {
	Workloads []*workloads.Workload
	Trials    int
	Model     sim.ModelKind // the paper measures on the O3 (pipelined) model
	// Metrics, when set, records every trial's wall time in
	// campaign.fig7.{vanilla,gemfi}_us histograms.
	Metrics *obs.Registry
}

// RunFig7 measures GemFI's overhead over the vanilla simulator. Per the
// paper: fault injection is activated (fi_activate_inst runs, per-tick
// machinery engaged) but no fault is injected, and the simulation stays
// in the expensive cycle-accurate model throughout.
func RunFig7(cfg Fig7Config) (*Fig7Report, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}
	if cfg.Model == "" {
		cfg.Model = sim.ModelPipelined
	}
	rep := &Fig7Report{}
	for _, w := range cfg.Workloads {
		p, err := w.Build()
		if err != nil {
			return nil, err
		}
		var vanilla, gemfi stats.Mean
		for trial := 0; trial < cfg.Trials; trial++ {
			for _, enabled := range []bool{false, true} {
				s := sim.New(sim.Config{Model: cfg.Model, EnableFI: enabled, MaxInsts: 2_000_000_000})
				if err := s.Load(p); err != nil {
					return nil, err
				}
				start := time.Now()
				r := s.Run()
				elapsed := time.Since(start).Seconds()
				if r.Failed() {
					return nil, fmt.Errorf("fig7: %s failed: %+v", w.Name, r)
				}
				if enabled {
					gemfi.Add(elapsed)
					cfg.Metrics.Histogram("campaign.fig7.gemfi_us").Observe(elapsed * 1e6)
				} else {
					vanilla.Add(elapsed)
					cfg.Metrics.Histogram("campaign.fig7.vanilla_us").Observe(elapsed * 1e6)
				}
			}
		}
		over := 100 * (gemfi.Value() - vanilla.Value()) / vanilla.Value()
		// CI of the overhead via the CI of the GemFI mean against the
		// vanilla mean (normal approximation, as in the paper's 95% CI).
		lo, hi := gemfi.Interval(0.95)
		rep.Rows = append(rep.Rows, Fig7Row{
			Workload:    w.Name,
			VanillaSec:  vanilla.Value(),
			GemFISec:    gemfi.Value(),
			OverheadPct: over,
			CILowPct:    100 * (lo - vanilla.Value()) / vanilla.Value(),
			CIHighPct:   100 * (hi - vanilla.Value()) / vanilla.Value(),
			Trials:      cfg.Trials,
		})
	}
	return rep, nil
}

// String renders the overhead table.
func (r *Fig7Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s %18s\n", "app", "vanilla(s)", "gemfi(s)", "overhead", "95% CI")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %12.4f %12.4f %9.2f%% [%6.2f%%, %6.2f%%]\n",
			row.Workload, row.VanillaSec, row.GemFISec, row.OverheadPct, row.CILowPct, row.CIHighPct)
	}
	return sb.String()
}

// Fig8Row is the campaign-time measurement for one application: the
// no-checkpoint baseline, the checkpoint-fast-forwarded campaign, and
// the parallel (NoW-style) campaign.
type Fig8Row struct {
	Workload string `json:"workload"`

	Experiments int `json:"experiments"`

	BaselineSec   float64 `json:"baselineSec"`
	CheckpointSec float64 `json:"checkpointSec"`
	ParallelSec   float64 `json:"parallelSec"`

	CheckpointSpeedup float64 `json:"checkpointSpeedup"`
	ParallelSpeedup   float64 `json:"parallelSpeedup"` // vs checkpointed
	Workers           int     `json:"workers"`
}

// Fig8Report reproduces Fig. 8.
type Fig8Report struct {
	Rows []Fig8Row `json:"rows"`
}

// Fig8Config parameterizes the campaign-time study.
type Fig8Config struct {
	Workloads   []*workloads.Workload
	Experiments int
	Workers     int // simultaneous experiments in the parallel phase
	Seed        int64
	Cfg         *sim.Config
	// Metrics, when set, records the per-phase campaign times as gauges
	// (campaign.fig8.<workload>.{baseline,checkpoint,parallel}_sec).
	Metrics *obs.Registry
}

// RunFig8 measures the campaign-time effect of GemFI's two optimizations
// (checkpoint fast-forwarding and parallel execution).
func RunFig8(cfg Fig8Config) (*Fig8Report, error) {
	if cfg.Experiments <= 0 {
		cfg.Experiments = 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	rep := &Fig8Report{}
	for _, w := range cfg.Workloads {
		row := Fig8Row{Workload: w.Name, Experiments: cfg.Experiments, Workers: cfg.Workers}

		// Baseline: no checkpointing — every experiment re-simulates
		// boot + initialization.
		base, err := NewRunner(w, RunnerOptions{Cfg: cfg.Cfg, DisableCheckpoint: true})
		if err != nil {
			return nil, err
		}
		exps := GenerateUniform(cfg.Experiments, GenConfig{
			WindowInsts: base.WindowInsts, Seed: cfg.Seed,
		})
		start := time.Now()
		for _, e := range exps {
			base.Run(e)
		}
		row.BaselineSec = time.Since(start).Seconds()

		// Checkpoint fast-forwarding, serial.
		ck, err := NewRunner(w, RunnerOptions{Cfg: cfg.Cfg})
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for _, e := range exps {
			ck.Run(e)
		}
		row.CheckpointSec = time.Since(start).Seconds()

		// Checkpoint + parallel workers (the NoW effect, in-process).
		pool, err := NewPool(w, cfg.Workers, RunnerOptions{Cfg: cfg.Cfg})
		if err != nil {
			return nil, err
		}
		start = time.Now()
		pool.RunAll(exps)
		row.ParallelSec = time.Since(start).Seconds()

		if row.CheckpointSec > 0 {
			row.CheckpointSpeedup = row.BaselineSec / row.CheckpointSec
			row.ParallelSpeedup = row.CheckpointSec / row.ParallelSec
		}
		prefix := "campaign.fig8." + w.Name + "."
		cfg.Metrics.Gauge(prefix + "baseline_sec").Set(row.BaselineSec)
		cfg.Metrics.Gauge(prefix + "checkpoint_sec").Set(row.CheckpointSec)
		cfg.Metrics.Gauge(prefix + "parallel_sec").Set(row.ParallelSec)
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// String renders the campaign-time table.
func (r *Fig8Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %6s %12s %12s %12s %10s %10s\n",
		"app", "exps", "baseline(s)", "ckpt(s)", "parallel(s)", "ckpt-spdup", "par-spdup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %6d %12.3f %12.3f %12.3f %9.1fx %9.1fx\n",
			row.Workload, row.Experiments, row.BaselineSec, row.CheckpointSec,
			row.ParallelSec, row.CheckpointSpeedup, row.ParallelSpeedup)
	}
	return sb.String()
}
