package campaign

// Cross-experiment result memoization for the fork server (the PR 6
// follow-on): once an experiment's faults have resolved on a serial model
// AND at least one fault has propagated, its final classification is a
// pure function of the machine state — no engine taint is outstanding
// that could change the verdict, and the remaining execution is
// deterministic. So the first experiment to reach a given resolved state
// records its verdict keyed by a state hash (committed instructions +
// architectural registers + kernel snapshot + full memory image), and
// every later experiment that reaches the same state at the same prune
// checkpoint closes immediately with the recorded outcome and
// deterministic suffix deltas. Non-propagated states stay out of the
// memo: their engines may still carry taint that propagates later, which
// the state hash cannot see — those are the masked/twin pruning rules'
// territory.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/sim"
)

// memoEntry is one memoized verdict: the outcome (with crash cause, when
// crashed), the run's absolute final instruction count (the key includes
// the key-point instruction count, so this is shared by every hit), and
// the tick delta from the key point to completion (tick history before
// the key point is experiment-specific on the pipelined model, so only
// the suffix is shared).
type memoEntry struct {
	outcome    Outcome
	crashCause string
	finalInsts uint64
	dTicks     uint64
}

// memoPending carries a computed key (and the key point's tick count,
// the base of the suffix delta) from the prune loop to the
// post-classification insert in Run.
type memoPending struct {
	key   uint64
	ticks uint64
}

// resultMemo is the shared verdict cache; one instance serves every
// runner of a fork-server pool.
type resultMemo struct {
	mu    sync.Mutex
	m     map[uint64]memoEntry
	pages *mem.PageHashCache

	hits     atomic.Uint64
	inserted atomic.Uint64
}

func newResultMemo() *resultMemo {
	return &resultMemo{m: make(map[uint64]memoEntry), pages: mem.NewPageHashCache()}
}

func (mm *resultMemo) lookup(key uint64) (memoEntry, bool) {
	mm.mu.Lock()
	e, ok := mm.m[key]
	mm.mu.Unlock()
	if ok {
		mm.hits.Add(1)
	}
	return e, ok
}

func (mm *resultMemo) insert(key uint64, e memoEntry) {
	mm.mu.Lock()
	if _, dup := mm.m[key]; !dup {
		mm.m[key] = e
		mm.inserted.Add(1)
	}
	mm.mu.Unlock()
}

func (mm *resultMemo) entries() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}

const (
	memoFNVOffset = 14695981039346656037
	memoFNVPrime  = 1099511628211
)

func memoFold(h, x uint64) uint64 { return (h ^ x) * memoFNVPrime }

// keyFor digests the simulator's resolved machine state: committed
// instruction count, architectural registers (FP as raw bits, matching
// Arch.BitsEqual's NaN semantics), the kernel snapshot, and the full
// memory image via the shared frozen-page hash cache.
func (mm *resultMemo) keyFor(s *sim.Simulator) uint64 {
	h := uint64(memoFNVOffset)
	h = memoFold(h, s.Core.Insts)
	a := &s.Core.Arch
	for _, r := range a.R {
		h = memoFold(h, r)
	}
	for _, f := range a.F {
		h = memoFold(h, math.Float64bits(f))
	}
	h = memoFold(h, a.PC)
	h = memoFold(h, a.PCBB)
	k := s.Kernel.Snapshot()
	h = memoFold(h, uint64(k.Cur))
	h = memoFold(h, k.SliceLeft)
	h = memoFold(h, uint64(k.NThreads))
	h = memoFold(h, k.ExitTrampoline)
	h = memoFold(h, k.ContextSwitches)
	h = memoFold(h, k.SyscallCount)
	h = memoFold(h, k.Quantum)
	for _, b := range k.Console {
		h = memoFold(h, uint64(b))
	}
	return memoFold(h, s.Mem.ImageHash(mm.pages))
}

// commitMemo records the classified outcome of an experiment whose memo
// key was computed in the prune loop. Interrupted runs never memoize —
// their "outcome" is a retry artifact, not a verdict.
func (r *Runner) commitMemo(res *Result) {
	pm := r.pendingMemo
	r.pendingMemo = nil
	if pm == nil || r.fork == nil || r.fork.memo == nil {
		return
	}
	if res.CrashCause == CrashInterrupted {
		return
	}
	r.fork.memo.insert(pm.key, memoEntry{
		outcome:    res.Outcome,
		crashCause: res.CrashCause,
		finalInsts: res.Insts,
		dTicks:     res.Ticks - pm.ticks,
	})
}
