package campaign

import (
	"testing"

	"repro/internal/workloads"
)

// Fixed-seed campaign used by the regression tests below: small enough to
// run three times in a unit test, large enough to hit several outcome
// classes.
const (
	regressionSeed = 99
	regressionN    = 18
)

func regressionExperiments(t *testing.T, r *Runner) []Experiment {
	t.Helper()
	return GenerateUniform(regressionN, GenConfig{
		WindowInsts: r.WindowInsts,
		Seed:        regressionSeed,
	})
}

// TestClassificationStableAcrossRuns runs the identical fixed-seed
// campaign twice on one runner and requires per-experiment outcome
// equality — injection, classification and the golden comparison must be
// free of run-to-run nondeterminism.
func TestClassificationStableAcrossRuns(t *testing.T) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	r, err := NewRunner(w, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exps := regressionExperiments(t, r)

	run := func() []Result {
		out := make([]Result, 0, len(exps))
		for _, e := range exps {
			out = append(out, r.Run(e))
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		a, b := first[i], second[i]
		if a.Outcome != b.Outcome || a.Fired != b.Fired || a.Insts != b.Insts {
			t.Errorf("experiment %d unstable across runs: outcome %v/%v fired %v/%v insts %d/%d",
				a.ID, a.Outcome, b.Outcome, a.Fired, b.Fired, a.Insts, b.Insts)
		}
	}
	tally := TallyOf(first)
	if tally.Total() != regressionN {
		t.Errorf("tally covers %d experiments, want %d", tally.Total(), regressionN)
	}
	if !equalTallies(tally, TallyOf(second)) {
		t.Errorf("outcome tallies differ across runs: %v vs %v", tally, TallyOf(second))
	}
}

// TestClassificationStableAcrossPoolSizes requires the same campaign to
// classify identically when sharded over worker pools of different sizes:
// outcomes are a function of the experiment alone, not of scheduling.
func TestClassificationStableAcrossPoolSizes(t *testing.T) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	serial, err := NewRunner(w, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exps := regressionExperiments(t, serial)
	want := make([]Result, 0, len(exps))
	for _, e := range exps {
		want = append(want, serial.Run(e))
	}

	for _, size := range []int{1, 3} {
		pool, err := NewPool(w, size, RunnerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := pool.RunAll(exps)
		if len(got) != len(want) {
			t.Fatalf("pool size %d returned %d results, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Outcome != want[i].Outcome {
				t.Errorf("pool size %d, experiment %d: outcome %v, want %v",
					size, want[i].ID, got[i].Outcome, want[i].Outcome)
			}
		}
		if !equalTallies(TallyOf(got), TallyOf(want)) {
			t.Errorf("pool size %d tallies differ: %v vs %v", size, TallyOf(got), TallyOf(want))
		}
	}
}

// TestGenerateUniformIsSeedDeterministic pins experiment generation
// itself: same seed, same faults.
func TestGenerateUniformIsSeedDeterministic(t *testing.T) {
	gc := GenConfig{WindowInsts: 100_000, Seed: regressionSeed}
	a, b := GenerateUniform(regressionN, gc), GenerateUniform(regressionN, gc)
	for i := range a {
		if len(a[i].Faults) != len(b[i].Faults) {
			t.Fatalf("experiment %d: fault counts differ", i)
		}
		for j := range a[i].Faults {
			if a[i].Faults[j] != b[i].Faults[j] {
				t.Errorf("experiment %d fault %d differs: %+v vs %+v", i, j, a[i].Faults[j], b[i].Faults[j])
			}
		}
	}
	other := GenerateUniform(regressionN, GenConfig{WindowInsts: 100_000, Seed: regressionSeed + 1})
	same := true
	for i := range a {
		for j := range a[i].Faults {
			if j < len(other[i].Faults) && a[i].Faults[j] != other[i].Faults[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault lists")
	}
}

func equalTallies(a, b Tally) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
