package campaign

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/workloads"
)

// crashFault is the PC bit-flip every flight test uses to force a
// crashed outcome (same fault as TestPCFaultCrashes).
func crashFault(r *Runner) core.Fault {
	return core.Fault{
		Loc: core.LocPC, Behavior: core.BehFlip, Bit: 30,
		Base: core.TimeInst, When: r.WindowInsts / 2, Occ: 1,
	}
}

func TestFlightCrashedDump(t *testing.T) {
	r := piRunner(t)
	if fr := r.AttachFlight(64); fr == nil || fr != r.AttachFlight(64) {
		t.Fatal("AttachFlight is not idempotent")
	}
	res := r.Run(Experiment{ID: 3, Faults: []core.Fault{crashFault(r)}})
	if res.Outcome != OutcomeCrashed {
		t.Fatalf("outcome = %v, want crashed", res.Outcome)
	}
	pm := res.Postmortem
	if pm == nil {
		t.Fatal("crashed experiment produced no post-mortem")
	}
	// The dump's final record is the appended trap, carrying the exact
	// crash PC the simulator stopped at.
	last := pm.Records[len(pm.Records)-1]
	if !last.Trap {
		t.Error("final record is not the trap")
	}
	trap := r.sim.Core.Trap
	if trap == nil {
		t.Fatal("simulator holds no terminal trap after a crashed run")
	}
	if pm.FinalPC() != trap.PC || pm.CrashPC != trap.PC {
		t.Errorf("final pc %#x / crashPc %#x, want trap pc %#x", pm.FinalPC(), pm.CrashPC, trap.PC)
	}
	if res.InjPCValid {
		if !pm.InjPCValid || pm.InjPC != res.InjPC {
			t.Errorf("injection point not spliced: dump %#x(%v), result %#x", pm.InjPC, pm.InjPCValid, res.InjPC)
		}
	}
	if pm.Committed == 0 || len(pm.Records) < 2 {
		t.Errorf("dump too thin: committed %d, %d records", pm.Committed, len(pm.Records))
	}
	// The wire form must satisfy its own schema checker.
	var buf bytes.Buffer
	if err := pm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := flight.ValidatePostmortemJSON(&buf); err != nil {
		t.Errorf("dump rejected by its validator: %v", err)
	}
}

func TestFlightMaskedNoDump(t *testing.T) {
	r := piRunner(t)
	r.AttachFlight(64)
	res := r.Run(Experiment{ID: 0})
	if res.Outcome != OutcomeNonPropagated {
		t.Fatalf("outcome = %v, want non-propagated", res.Outcome)
	}
	if res.Postmortem != nil {
		t.Error("masked experiment carries a post-mortem dump")
	}
}

func TestFlightRingResetsBetweenExperiments(t *testing.T) {
	r := piRunner(t)
	r.AttachFlight(64)
	a := r.Run(Experiment{ID: 0, Faults: []core.Fault{crashFault(r)}})
	if a.Postmortem == nil {
		t.Fatal("first crashed run produced no dump")
	}
	firstCommitted := a.Postmortem.Committed
	b := r.Run(Experiment{ID: 1, Faults: []core.Fault{crashFault(r)}})
	if b.Postmortem == nil {
		t.Fatal("second crashed run produced no dump")
	}
	// The ring belongs to one experiment: the second dump must not
	// accumulate the first run's commits.
	if b.Postmortem.Committed > firstCommitted {
		t.Errorf("ring leaked across experiments: run 2 committed %d > run 1 committed %d",
			b.Postmortem.Committed, firstCommitted)
	}
}

func TestFlightPhasesSplicedFromSpans(t *testing.T) {
	r := piRunner(t)
	r.AttachFlight(64)
	r.AttachSpans(obs.NewSpanRecorder(), "test")
	res := r.Run(Experiment{ID: 0, Faults: []core.Fault{crashFault(r)}})
	pm := res.Postmortem
	if pm == nil {
		t.Fatal("no dump")
	}
	if len(pm.Phases) == 0 {
		t.Fatal("span-traced dump carries no phase boundaries")
	}
	// The ring records must land inside the experiment's simulated phase
	// window: some phase's tick range reaches the last committed record.
	var lastCommitted uint64
	for _, rec := range pm.Records {
		if !rec.Trap {
			lastCommitted = rec.Tick
		}
	}
	covered := false
	for _, ph := range pm.Phases {
		if ph.EndTick >= lastCommitted && ph.EndTick > ph.StartTick {
			covered = true
		}
	}
	if !covered {
		t.Errorf("no phase tick range covers the final committed record (tick %d): %+v",
			lastCommitted, pm.Phases)
	}
}

func TestPoolFlightDumpsAndOnResult(t *testing.T) {
	pool, err := NewPool(workloads.MonteCarloPI(workloads.ScaleTest), 2, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool.AttachFlight(32)
	f := crashFault(pool.Runner())
	exps := []Experiment{
		{ID: 0, Faults: []core.Fault{f}},
		{ID: 1}, // masked
		{ID: 2, Faults: []core.Fault{f}},
	}
	seen := 0
	pool.OnResult = func(res Result) {
		if res.Postmortem != nil {
			seen++
		}
	}
	results := pool.RunAll(exps)
	dumps := 0
	for _, res := range results {
		switch res.Outcome {
		case OutcomeCrashed:
			if res.Postmortem == nil {
				t.Errorf("exp %d crashed without a dump", res.ID)
			} else {
				dumps++
			}
		case OutcomeNonPropagated:
			if res.Postmortem != nil {
				t.Errorf("exp %d masked but carries a dump", res.ID)
			}
		}
	}
	if dumps == 0 {
		t.Error("no crashed experiment in the pool run")
	}
	if seen != dumps {
		t.Errorf("OnResult saw %d dumps, results carry %d", seen, dumps)
	}
}
