package campaign

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// piRunner is shared across tests (golden run + checkpoint are costly).
func piRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerGoldenAndWindow(t *testing.T) {
	r := piRunner(t)
	if r.WindowInsts == 0 {
		t.Fatal("fault-injection window is empty")
	}
	if r.Ckpt == nil {
		t.Fatal("no checkpoint captured")
	}
	if len(r.Golden.Data["pi_out"]) != 1 {
		t.Fatal("golden outputs missing")
	}
}

func TestNoFaultExperimentIsNonPropagated(t *testing.T) {
	r := piRunner(t)
	res := r.Run(Experiment{ID: 0})
	if res.Outcome != OutcomeNonPropagated {
		t.Errorf("no-fault run = %v, want non-propagated", res.Outcome)
	}
}

func TestDeadlineFaultNeverFires(t *testing.T) {
	r := piRunner(t)
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 5, Behavior: core.BehFlip, Bit: 1,
		Base: core.TimeInst, When: r.WindowInsts * 100, Occ: 1,
	}
	res := r.Run(Experiment{ID: 0, Faults: []core.Fault{f}})
	if res.Fired {
		t.Error("fault beyond program end must not fire")
	}
	if res.Outcome != OutcomeNonPropagated {
		t.Errorf("outcome = %v", res.Outcome)
	}
}

func TestPCFaultCrashes(t *testing.T) {
	r := piRunner(t)
	f := core.Fault{
		Loc: core.LocPC, Behavior: core.BehFlip, Bit: 30,
		Base: core.TimeInst, When: r.WindowInsts / 2, Occ: 1,
	}
	res := r.Run(Experiment{ID: 0, Faults: []core.Fault{f}})
	if res.Outcome != OutcomeCrashed {
		t.Errorf("PC bit-30 flip = %v, want crashed", res.Outcome)
	}
}

func TestRunnerRepeatabilityAfterRestore(t *testing.T) {
	// The same experiment run twice through the same runner must yield
	// the same outcome (checkpoint restore isolates experiments).
	r := piRunner(t)
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 3, Behavior: core.BehFlip, Bit: 17,
		Base: core.TimeInst, When: r.WindowInsts / 3, Occ: 1,
	}
	a := r.Run(Experiment{ID: 0, Faults: []core.Fault{f}})
	b := r.Run(Experiment{ID: 0, Faults: []core.Fault{f}})
	if a.Outcome != b.Outcome {
		t.Errorf("outcomes differ across restores: %v vs %v", a.Outcome, b.Outcome)
	}
	clean := r.Run(Experiment{ID: 1})
	if clean.Outcome != OutcomeNonPropagated {
		t.Errorf("runner state leaked into clean run: %v", clean.Outcome)
	}
}

func TestGenerateUniformProperties(t *testing.T) {
	exps := GenerateUniform(500, GenConfig{WindowInsts: 1000, Seed: 7})
	if len(exps) != 500 {
		t.Fatal("count")
	}
	seenLoc := map[core.Location]bool{}
	for i, e := range exps {
		if e.ID != i || len(e.Faults) != 1 {
			t.Fatalf("experiment %d malformed", i)
		}
		f := e.Faults[0]
		seenLoc[f.Loc] = true
		if f.When == 0 || f.When > 1000 {
			t.Fatalf("time %d out of range", f.When)
		}
		if f.Bit < 0 || f.Bit >= 64 {
			t.Fatalf("bit %d out of range", f.Bit)
		}
		if f.Loc == core.LocFetch && f.Bit >= 32 {
			t.Fatalf("fetch bit %d out of range", f.Bit)
		}
		if f.Loc == core.LocDecode && (f.Reg < 0 || f.Reg > 2) {
			t.Fatalf("decode operand %d", f.Reg)
		}
		if (f.Loc == core.LocIntReg || f.Loc == core.LocFloatReg) && f.Reg == 31 {
			t.Fatal("generator must not target the zero register")
		}
	}
	for _, loc := range AllLocations() {
		if !seenLoc[loc] {
			t.Errorf("location %v never sampled", loc)
		}
	}
	// Reproducible.
	again := GenerateUniform(500, GenConfig{WindowInsts: 1000, Seed: 7})
	for i := range exps {
		if exps[i].Faults[0] != again[i].Faults[0] {
			t.Fatal("generation not reproducible")
		}
	}
}

func TestSmallCampaignDistribution(t *testing.T) {
	// A small uniform campaign on PI: outcomes must span more than one
	// class, and every experiment must be classified.
	r := piRunner(t)
	exps := GenerateUniform(40, GenConfig{WindowInsts: r.WindowInsts, Seed: 11})
	var results []Result
	for _, e := range exps {
		results = append(results, r.Run(e))
	}
	tally := TallyOf(results)
	if tally.Total() != 40 {
		t.Fatalf("total = %d", tally.Total())
	}
	classes := 0
	for _, o := range Outcomes() {
		if tally[o] > 0 {
			classes++
		}
	}
	if classes < 2 {
		t.Errorf("expected outcome diversity, got %v", tally)
	}
	t.Logf("PI campaign tally: %v", tallyToMap(tally))
}

func TestPoolMatchesSerialRunner(t *testing.T) {
	w := workloads.MonteCarloPI(workloads.ScaleTest)
	pool, err := NewPool(w, 4, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exps := GenerateUniform(24, GenConfig{WindowInsts: pool.Runner().WindowInsts, Seed: 3})
	par := pool.RunAll(exps)

	serial := piRunner(t)
	for i, e := range exps {
		sres := serial.Run(e)
		if sres.Outcome != par[i].Outcome {
			t.Errorf("experiment %d: serial %v vs pool %v", i, sres.Outcome, par[i].Outcome)
		}
	}
}

func TestAcceptableUnion(t *testing.T) {
	if !OutcomeCorrect.Acceptable() || !OutcomeStrictlyCorrect.Acceptable() || !OutcomeNonPropagated.Acceptable() {
		t.Error("acceptable union wrong")
	}
	if OutcomeCrashed.Acceptable() || OutcomeSDC.Acceptable() {
		t.Error("crash/SDC must not be acceptable")
	}
}

func TestPaperSampleSize(t *testing.T) {
	n := PaperSampleSize(2950)
	if n < 2400 || n > 2600 {
		t.Errorf("sample size %d", n)
	}
}

func TestPipelinedCampaignMethodology(t *testing.T) {
	// The paper's methodology: pipelined until commit/squash of the
	// fault, then atomic. One experiment end-to-end.
	cfg := sim.DefaultConfig()
	cfg.MaxInsts = 500_000_000
	r, err := NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), RunnerOptions{Cfg: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 2, Behavior: core.BehFlip, Bit: 5,
		Base: core.TimeInst, When: r.WindowInsts / 4, Occ: 1,
	}
	res := r.Run(Experiment{ID: 0, Faults: []core.Fault{f}})
	if !res.Fired {
		t.Error("fault did not fire under the pipelined methodology")
	}
	t.Logf("pipelined campaign experiment: %v", res.Outcome)
}

func TestFig5ReportStructure(t *testing.T) {
	rep, err := RunFig5(Fig5Config{
		Workloads:   []*workloads.Workload{workloads.MonteCarloPI(workloads.ScaleTest)},
		PerLocation: 6,
		Parallelism: 2,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 7 locations + 1 summary row.
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if _, ok := rep.Row("pi", "total"); !ok {
		t.Error("missing summary row")
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
	total, _ := rep.Row("pi", "total")
	if total.Total != 7*6 {
		t.Errorf("summary total = %d", total.Total)
	}
}

func TestFig6ReportStructure(t *testing.T) {
	rep, err := RunFig6(Fig6Config{
		Workload:    workloads.MonteCarloPI(workloads.ScaleTest),
		Experiments: 30,
		Bins:        3,
		Parallelism: 2,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bins) != 3 {
		t.Fatalf("bins = %d", len(rep.Bins))
	}
	n := 0
	for _, b := range rep.Bins {
		n += b.Total
	}
	if n != 30 {
		t.Errorf("binned %d of 30 experiments", n)
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
}
