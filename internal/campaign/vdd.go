package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// This file implements the research direction the paper closes with
// (Section VII): "enhance it with realistic fault models, associating the
// supply voltage (Vdd) with the error rate in different system
// components. Our goal is to study the limits of aggressively reducing
// power consumption at the expense of correctness."
//
// The model follows the standard exponential characterization of
// voltage-scaling fault rates (as used by the SCoRPiO project the paper
// acknowledges): below the nominal supply, the per-instruction
// bit-upset rate grows exponentially as the voltage margin shrinks:
//
//	lambda(V) = Lambda0 * exp(Slope * (VNominal - V))
//
// A VddSweep runs fault injection campaigns at decreasing voltages; each
// experiment draws a Poisson-distributed number of transient single-bit
// faults at rate lambda(V) * windowInsts, uniformly placed in time and
// micro-architectural location.

// VddModel maps supply voltage to a per-instruction transient fault rate.
type VddModel struct {
	// VNominal is the nominal supply voltage (no derating), e.g. 1.0 V.
	VNominal float64
	// Lambda0 is the per-instruction upset probability at VNominal.
	Lambda0 float64
	// Slope is the exponential sensitivity (per volt).
	Slope float64
}

// DefaultVddModel gives a rate that is negligible at nominal voltage and
// reaches roughly one fault per hundred-thousand instructions around 25%
// undervolting — steep enough to show the cliff on small campaigns.
func DefaultVddModel() VddModel {
	return VddModel{VNominal: 1.0, Lambda0: 1e-9, Slope: 40}
}

// Rate returns the per-instruction fault rate at voltage v.
func (m VddModel) Rate(v float64) float64 {
	return m.Lambda0 * math.Exp(m.Slope*(m.VNominal-v))
}

// GenerateVddExperiments draws n experiments at voltage v: each gets a
// Poisson(lambda * windowInsts) number of uniform transient bit-flips.
func GenerateVddExperiments(n int, v float64, m VddModel, gc GenConfig) []Experiment {
	if gc.WindowInsts == 0 {
		gc.WindowInsts = 1
	}
	locs := gc.Locations
	if len(locs) == 0 {
		locs = AllLocations()
	}
	rng := rand.New(rand.NewSource(gc.Seed))
	mean := m.Rate(v) * float64(gc.WindowInsts)
	exps := make([]Experiment, n)
	for i := range exps {
		exps[i].ID = i
		for k := poisson(rng, mean); k > 0; k-- {
			loc := locs[rng.Intn(len(locs))]
			f := core.Fault{
				Loc:      loc,
				Behavior: core.BehFlip,
				Bit:      rng.Intn(bitRange(loc)),
				ThreadID: gc.ThreadID,
				CPU:      gc.CPU,
				Base:     core.TimeInst,
				When:     1 + uint64(rng.Int63n(int64(gc.WindowInsts))),
				Occ:      1,
			}
			switch loc {
			case core.LocIntReg, core.LocFloatReg:
				f.Reg = rng.Intn(31)
			case core.LocDecode:
				f.Reg = rng.Intn(3)
			}
			exps[i].Faults = append(exps[i].Faults, f)
		}
	}
	return exps
}

// poisson draws from Poisson(mean) by inversion (mean is small here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation for large means keeps this O(1).
		k := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// VddPoint is one voltage step of a sweep.
type VddPoint struct {
	Vdd        float64        `json:"vdd"`
	Rate       float64        `json:"ratePerInst"`
	MeanFaults float64        `json:"meanFaultsPerRun"`
	Total      int            `json:"total"`
	Tally      map[string]int `json:"tally"`
	Acceptable float64        `json:"acceptable"`
	Crashed    float64        `json:"crashed"`
	SDC        float64        `json:"sdc"`
}

// VddReport is the outcome-vs-voltage study.
type VddReport struct {
	Workload string     `json:"workload"`
	Model    VddModel   `json:"model"`
	Points   []VddPoint `json:"points"`
}

// VddConfig parameterizes RunVddSweep.
type VddConfig struct {
	Workload     *workloads.Workload
	Voltages     []float64
	PerVoltage   int
	Model        VddModel
	Parallelism  int
	Seed         int64
	RunnerConfig RunnerOptions
}

// RunVddSweep measures application outcome quality as the supply voltage
// drops — the "limits of aggressively reducing power consumption at the
// expense of correctness" study.
func RunVddSweep(cfg VddConfig) (*VddReport, error) {
	if cfg.PerVoltage <= 0 {
		cfg.PerVoltage = 30
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if len(cfg.Voltages) == 0 {
		cfg.Voltages = []float64{1.0, 0.9, 0.85, 0.8, 0.75, 0.7}
	}
	if cfg.Model == (VddModel{}) {
		cfg.Model = DefaultVddModel()
	}
	pool, err := NewPool(cfg.Workload, cfg.Parallelism, cfg.RunnerConfig)
	if err != nil {
		return nil, err
	}
	rep := &VddReport{Workload: cfg.Workload.Name, Model: cfg.Model}
	for vi, v := range cfg.Voltages {
		exps := GenerateVddExperiments(cfg.PerVoltage, v, cfg.Model, GenConfig{
			WindowInsts: pool.Runner().WindowInsts,
			Seed:        cfg.Seed + int64(vi)*101,
		})
		results := pool.RunAll(exps)
		t := TallyOf(results)
		pt := VddPoint{
			Vdd:        v,
			Rate:       cfg.Model.Rate(v),
			MeanFaults: cfg.Model.Rate(v) * float64(pool.Runner().WindowInsts),
			Total:      t.Total(),
			Tally:      tallyToMap(t),
		}
		if pt.Total > 0 {
			acc := 0
			for _, r := range results {
				if r.Outcome.Acceptable() {
					acc++
				}
			}
			pt.Acceptable = float64(acc) / float64(pt.Total)
			pt.Crashed = t.Fraction(OutcomeCrashed)
			pt.SDC = t.Fraction(OutcomeSDC)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// String renders the sweep as a table.
func (r *VddReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload %s: outcome vs supply voltage (lambda0=%.1e slope=%.0f)\n",
		r.Workload, r.Model.Lambda0, r.Model.Slope)
	fmt.Fprintf(&sb, "%6s %12s %12s %6s %11s %8s %8s\n",
		"Vdd", "rate/inst", "faults/run", "n", "acceptable", "crashed", "SDC")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%6.2f %12.2e %12.3f %6d %10.1f%% %7.1f%% %7.1f%%\n",
			p.Vdd, p.Rate, p.MeanFaults, p.Total, 100*p.Acceptable, 100*p.Crashed, 100*p.SDC)
	}
	return sb.String()
}
