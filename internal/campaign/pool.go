package campaign

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// Pool runs experiments in parallel on local worker goroutines, each
// owning a private simulator restored from a shared checkpoint — the
// in-process analogue of running several simulations per workstation
// (the paper ran 4 per quad-core node).
type Pool struct {
	runners []*Runner
}

// NewPool builds n parallel runners for the workload. The golden run and
// checkpoint are computed once and shared (checkpoint restore deep-copies
// state, so sharing is safe).
func NewPool(w *workloads.Workload, n int, opts RunnerOptions) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("campaign: pool size must be positive")
	}
	first, err := NewRunner(w, opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{runners: make([]*Runner, n)}
	p.runners[0] = first
	for i := 1; i < n; i++ {
		// Clone cheaply: reuse the golden outputs and checkpoint, but
		// give each worker its own simulator.
		r := &Runner{
			Workload:    w,
			Cfg:         first.Cfg,
			Golden:      first.Golden,
			WindowInsts: first.WindowInsts,
			Ckpt:        first.Ckpt,
		}
		prog, err := w.Build()
		if err != nil {
			return nil, err
		}
		s := sim.New(first.Cfg)
		if err := s.Load(prog); err != nil {
			return nil, err
		}
		r.sim = s
		p.runners[i] = r
	}
	return p, nil
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.runners) }

// Runner returns the first runner (for window/golden metadata).
func (p *Pool) Runner() *Runner { return p.runners[0] }

// RunAll executes all experiments across the pool and returns results
// ordered by experiment ID.
func (p *Pool) RunAll(exps []Experiment) []Result {
	jobs := make(chan Experiment)
	results := make([]Result, len(exps))
	var wg sync.WaitGroup
	for _, r := range p.runners {
		wg.Add(1)
		go func(r *Runner) {
			defer wg.Done()
			for exp := range jobs {
				results[exp.ID] = r.Run(exp)
			}
		}(r)
	}
	for i := range exps {
		if exps[i].ID != i {
			exps[i].ID = i
		}
		jobs <- exps[i]
	}
	close(jobs)
	wg.Wait()
	return results
}
