package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// Pool runs experiments in parallel on local worker goroutines, each
// owning a private simulator restored from a shared checkpoint — the
// in-process analogue of running several simulations per workstation
// (the paper ran 4 per quad-core node).
type Pool struct {
	runners []*Runner

	// Metrics, when set, receives campaign counters: per-outcome tallies
	// (campaign.outcome.<name>), the completed-experiment count, and an
	// experiment-duration histogram (campaign.exp_duration_us). Nil
	// disables at no cost.
	Metrics *obs.Registry
	// Tracer, when set, receives one complete ("X") span per experiment,
	// with the pool worker index as the tid — loading the Chrome export
	// shows per-worker occupancy lanes. Nil disables.
	Tracer *obs.Tracer
	// Spans, when set, turns on distributed span tracing: every
	// experiment becomes one trace (experiment root, phase children,
	// fault-lifecycle events) with the worker index as its track, and
	// the per-phase latency histograms in Metrics carry trace-ID
	// exemplars. Nil disables at no cost.
	Spans *obs.SpanRecorder
	// OnProgress, when set, is called after every completed experiment
	// with the done count, the total, and the elapsed wall time. Calls
	// are serialized; keep the callback cheap (drivers use it for
	// throttled progress lines).
	OnProgress func(done, total int, elapsed time.Duration)
	// OnResult, when set, is called with every completed experiment's
	// result as soon as it lands (before the run finishes). Calls are
	// serialized with OnProgress; drivers use it to index post-mortem
	// dumps for live serving while the campaign is still running.
	OnResult func(Result)

	// Live status, maintained by RunAll and read by Status() — the
	// campaign driver's -http /status endpoint scrapes this while the
	// run is in flight, so everything is atomic.
	total     atomic.Int64
	done      atomic.Int64
	inFlight  atomic.Int64
	startNano atomic.Int64
	outcomes  [numOutcomes]atomic.Int64 // indexed by Outcome-1
}

// NewPool builds n parallel runners for the workload. The golden run and
// checkpoint are computed once and shared (checkpoint restore deep-copies
// state, so sharing is safe).
func NewPool(w *workloads.Workload, n int, opts RunnerOptions) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("campaign: pool size must be positive")
	}
	first, err := NewRunner(w, opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{runners: make([]*Runner, n)}
	p.runners[0] = first
	for i := 1; i < n; i++ {
		// Clone cheaply: reuse the golden outputs and checkpoint, but
		// give each worker its own simulator.
		r, err := first.Clone()
		if err != nil {
			return nil, err
		}
		p.runners[i] = r
	}
	return p, nil
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.runners) }

// Runner returns the first runner (for window/golden metadata).
func (p *Pool) Runner() *Runner { return p.runners[0] }

// AttachProfilers attaches one guest profiler to every runner in the
// pool (each worker accumulates privately, so the hot loop stays
// contention-free) and returns them. Idempotent.
func (p *Pool) AttachProfilers() []*prof.Profiler {
	prs := make([]*prof.Profiler, 0, len(p.runners))
	for _, r := range p.runners {
		if pr := r.AttachProfiler(); pr != nil {
			prs = append(prs, pr)
		}
	}
	return prs
}

// AttachTaint attaches one fault-propagation taint tracker to every
// runner in the pool. The first runner's simulator still holds the
// golden run's final state, so its capture supplies the golden differ
// for every worker (the clones were freshly Loaded and never ran).
// Idempotent.
func (p *Pool) AttachTaint() {
	first := p.runners[0]
	first.AttachTaint()
	for _, r := range p.runners[1:] {
		r.AttachTaint()
		if r.taintGolden == nil {
			r.ShareTaintGolden(first.taintGolden)
		}
	}
}

// AttachFlight attaches a private flight recorder of depth records to
// every runner in the pool — rings are per-simulator, never shared, so
// the hot loop stays contention-free. Idempotent.
func (p *Pool) AttachFlight(depth int) {
	for _, r := range p.runners {
		r.AttachFlight(depth)
	}
}

// TaintReport returns the pool-wide most recent propagation report —
// the freshest LastTaintReport across all workers. Nil when taint
// tracking is off or no experiment has finished. Safe to call while
// RunAll is in flight.
func (p *Pool) TaintReport() *taint.PropReport {
	var best *taint.PropReport
	var bestStamp uint64
	for _, r := range p.runners {
		rep, stamp := r.LastTaintReport()
		if rep != nil && stamp >= bestStamp {
			best, bestStamp = rep, stamp
		}
	}
	return best
}

// Profile snapshots and merges every worker's profiler into one
// campaign-wide profile. Returns nil when no profiler is attached.
// Safe to call while RunAll is in flight (snapshots are atomic).
func (p *Pool) Profile() *prof.Profile {
	var parts []*prof.Profile
	for _, r := range p.runners {
		if r.prof != nil {
			parts = append(parts, r.prof.Snapshot())
		}
	}
	return prof.MergeProfiles(parts...)
}

// PoolStatus is a point-in-time view of a running (or finished)
// campaign, served as JSON by the -http /status endpoint.
type PoolStatus struct {
	Workload   string         `json:"workload"`
	Workers    int            `json:"workers"`
	Total      int            `json:"total"`
	Done       int            `json:"done"`
	InFlight   int            `json:"inFlight"`
	ElapsedSec float64        `json:"elapsedSec"`
	ExpsPerSec float64        `json:"expsPerSec"`
	Outcomes   map[string]int `json:"outcomes"`
}

// Status reads the live campaign state. Safe to call concurrently with
// RunAll from any goroutine.
func (p *Pool) Status() PoolStatus {
	st := PoolStatus{
		Workers:  len(p.runners),
		Total:    int(p.total.Load()),
		Done:     int(p.done.Load()),
		InFlight: int(p.inFlight.Load()),
		Outcomes: make(map[string]int, int(numOutcomes)),
	}
	if len(p.runners) > 0 && p.runners[0].Workload != nil {
		st.Workload = p.runners[0].Workload.Name
	}
	for _, o := range Outcomes() {
		if n := p.outcomes[int(o)-1].Load(); n > 0 {
			st.Outcomes[o.String()] = int(n)
		}
	}
	if t0 := p.startNano.Load(); t0 > 0 {
		st.ElapsedSec = time.Since(time.Unix(0, t0)).Seconds()
		if st.ElapsedSec > 0 {
			st.ExpsPerSec = float64(st.Done) / st.ElapsedSec
		}
	}
	return st
}

// PhaseHists lazily binds the per-phase latency histograms
// (campaign.phase.<name>_us) of a registry. Observing a result whose
// PhaseNS is populated feeds each phase's duration in microseconds,
// carrying the result's trace ID as the histogram exemplar — a fat
// bucket then links to a concrete experiment's span tree. Safe for
// concurrent use; an instance over a nil registry is free.
type PhaseHists struct {
	reg *obs.Registry
	mu  sync.Mutex
	m   map[string]*obs.Histogram
}

// NewPhaseHists builds the binder (reg may be nil).
func NewPhaseHists(reg *obs.Registry) *PhaseHists {
	return &PhaseHists{reg: reg, m: make(map[string]*obs.Histogram)}
}

func newPhaseHists(reg *obs.Registry) *PhaseHists { return NewPhaseHists(reg) }

// Observe feeds one result's phase durations.
func (p *PhaseHists) Observe(res Result) {
	if p == nil || p.reg == nil || len(res.PhaseNS) == 0 {
		return
	}
	for name, ns := range res.PhaseNS {
		p.mu.Lock()
		h, ok := p.m[name]
		if !ok {
			h = p.reg.Histogram("campaign.phase." + name + "_us")
			p.m[name] = h
		}
		p.mu.Unlock()
		h.ObserveEx(float64(ns)/1e3, res.TraceID)
	}
}

func (p *PhaseHists) observe(res Result) { p.Observe(res) }

// RunAll executes all experiments across the pool and returns results
// ordered by experiment ID.
func (p *Pool) RunAll(exps []Experiment) []Result {
	jobs := make(chan Experiment)
	results := make([]Result, len(exps))
	start := time.Now()
	p.total.Store(int64(len(exps)))
	p.startNano.Store(start.UnixNano())

	// Instruments are fetched once up front so workers never touch the
	// registry lock; outcomeCounters is read-only during the run.
	durHist := p.Metrics.Histogram("campaign.exp_duration_us")
	completed := p.Metrics.Counter("campaign.completed")
	outcomeCounters := make(map[Outcome]*obs.Counter, int(numOutcomes))
	for _, o := range Outcomes() {
		outcomeCounters[o] = p.Metrics.Counter("campaign.outcome." + o.String())
	}
	if p.Spans != nil {
		p.Spans.AttachMetrics(p.Metrics)
		for wi, r := range p.runners {
			r.AttachSpans(p.Spans, fmt.Sprintf("worker %d", wi+1))
		}
	}
	phaseHists := newPhaseHists(p.Metrics)

	var done atomic.Int64
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for wi, r := range p.runners {
		wg.Add(1)
		go func(wi int, r *Runner) {
			defer wg.Done()
			for exp := range jobs {
				endSpan := p.Tracer.Span(obs.CatCampaign, "experiment", wi+1)
				t0 := time.Now()
				p.inFlight.Add(1)
				res := r.Run(exp)
				p.inFlight.Add(-1)
				results[exp.ID] = res
				durHist.ObserveEx(float64(time.Since(t0).Microseconds()), res.TraceID)
				phaseHists.observe(res)
				completed.Inc()
				outcomeCounters[res.Outcome].Inc()
				if res.Outcome >= 1 && res.Outcome < numOutcomes {
					p.outcomes[int(res.Outcome)-1].Add(1)
				}
				p.done.Add(1)
				endSpan(map[string]any{
					"id": exp.ID, "outcome": res.Outcome.String(), "fired": res.Fired,
				})
				n := done.Add(1)
				if p.OnResult != nil || p.OnProgress != nil {
					progressMu.Lock()
					if p.OnResult != nil {
						p.OnResult(res)
					}
					if p.OnProgress != nil {
						p.OnProgress(int(n), len(exps), time.Since(start))
					}
					progressMu.Unlock()
				}
			}
		}(wi, r)
	}
	for i := range exps {
		if exps[i].ID != i {
			exps[i].ID = i
		}
	}
	dispatch := exps
	if p.forkEnabled() {
		// Injection-time order keeps consecutive forks on the same or
		// neighboring snapshots (warm page maps, stable LRU).
		dispatch = sortForFork(exps)
	}
	for i := range dispatch {
		jobs <- dispatch[i]
	}
	close(jobs)
	wg.Wait()
	return results
}
