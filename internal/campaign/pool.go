package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Pool runs experiments in parallel on local worker goroutines, each
// owning a private simulator restored from a shared checkpoint — the
// in-process analogue of running several simulations per workstation
// (the paper ran 4 per quad-core node).
type Pool struct {
	runners []*Runner

	// Metrics, when set, receives campaign counters: per-outcome tallies
	// (campaign.outcome.<name>), the completed-experiment count, and an
	// experiment-duration histogram (campaign.exp_duration_us). Nil
	// disables at no cost.
	Metrics *obs.Registry
	// Tracer, when set, receives one complete ("X") span per experiment,
	// with the pool worker index as the tid — loading the Chrome export
	// shows per-worker occupancy lanes. Nil disables.
	Tracer *obs.Tracer
	// OnProgress, when set, is called after every completed experiment
	// with the done count, the total, and the elapsed wall time. Calls
	// are serialized; keep the callback cheap (drivers use it for
	// throttled progress lines).
	OnProgress func(done, total int, elapsed time.Duration)
}

// NewPool builds n parallel runners for the workload. The golden run and
// checkpoint are computed once and shared (checkpoint restore deep-copies
// state, so sharing is safe).
func NewPool(w *workloads.Workload, n int, opts RunnerOptions) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("campaign: pool size must be positive")
	}
	first, err := NewRunner(w, opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{runners: make([]*Runner, n)}
	p.runners[0] = first
	for i := 1; i < n; i++ {
		// Clone cheaply: reuse the golden outputs and checkpoint, but
		// give each worker its own simulator.
		r := &Runner{
			Workload:    w,
			Cfg:         first.Cfg,
			Golden:      first.Golden,
			WindowInsts: first.WindowInsts,
			Ckpt:        first.Ckpt,
		}
		prog, err := w.Build()
		if err != nil {
			return nil, err
		}
		s := sim.New(first.Cfg)
		if err := s.Load(prog); err != nil {
			return nil, err
		}
		r.sim = s
		p.runners[i] = r
	}
	return p, nil
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.runners) }

// Runner returns the first runner (for window/golden metadata).
func (p *Pool) Runner() *Runner { return p.runners[0] }

// RunAll executes all experiments across the pool and returns results
// ordered by experiment ID.
func (p *Pool) RunAll(exps []Experiment) []Result {
	jobs := make(chan Experiment)
	results := make([]Result, len(exps))
	start := time.Now()

	// Instruments are fetched once up front so workers never touch the
	// registry lock; outcomeCounters is read-only during the run.
	durHist := p.Metrics.Histogram("campaign.exp_duration_us")
	completed := p.Metrics.Counter("campaign.completed")
	outcomeCounters := make(map[Outcome]*obs.Counter, int(numOutcomes))
	for _, o := range Outcomes() {
		outcomeCounters[o] = p.Metrics.Counter("campaign.outcome." + o.String())
	}

	var done atomic.Int64
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for wi, r := range p.runners {
		wg.Add(1)
		go func(wi int, r *Runner) {
			defer wg.Done()
			for exp := range jobs {
				endSpan := p.Tracer.Span(obs.CatCampaign, "experiment", wi+1)
				t0 := time.Now()
				res := r.Run(exp)
				results[exp.ID] = res
				durHist.Observe(float64(time.Since(t0).Microseconds()))
				completed.Inc()
				outcomeCounters[res.Outcome].Inc()
				endSpan(map[string]any{
					"id": exp.ID, "outcome": res.Outcome.String(), "fired": res.Fired,
				})
				if n := done.Add(1); p.OnProgress != nil {
					progressMu.Lock()
					p.OnProgress(int(n), len(exps), time.Since(start))
					progressMu.Unlock()
				}
			}
		}(wi, r)
	}
	for i := range exps {
		if exps[i].ID != i {
			exps[i].ID = i
		}
		jobs <- exps[i]
	}
	close(jobs)
	wg.Wait()
	return results
}
