package campaign

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestExperimentPhasesTileWallTime: the acceptance criterion — for a
// traced experiment, the recorded phase durations must sum to the
// experiment's wall time within 1% (the phases are cut as adjacent
// slices of one timeline, so nothing is counted twice or lost).
func TestExperimentPhasesTileWallTime(t *testing.T) {
	r, err := NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder()
	r.AttachSpans(rec, "r1")
	exps := GenerateUniform(5, GenConfig{WindowInsts: r.WindowInsts, Seed: 5})
	for _, exp := range exps {
		res := r.Run(exp)
		if res.TraceID == "" {
			t.Fatalf("experiment %d: no trace ID on result", exp.ID)
		}
		if res.WallNs <= 0 {
			t.Fatalf("experiment %d: wallNs = %d", exp.ID, res.WallNs)
		}
		var sum int64
		for _, ns := range res.PhaseNS {
			sum += ns
		}
		diff := res.WallNs - sum
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > res.WallNs {
			t.Errorf("experiment %d: phases sum %dns vs wall %dns (off %.2f%%), phases %v",
				exp.ID, sum, res.WallNs, 100*float64(diff)/float64(res.WallNs), res.PhaseNS)
		}

		tr := rec.TraceByID(res.TraceID)
		if tr == nil {
			t.Fatalf("experiment %d: trace %s not recorded", exp.ID, res.TraceID)
		}
		root := tr.Root()
		if root == nil || root.Name != "experiment" {
			t.Fatalf("experiment %d: bad root %+v", exp.ID, root)
		}
		if got, _ := root.Attrs["outcome"].(string); got != res.Outcome.String() {
			t.Errorf("experiment %d: root outcome %q vs result %v", exp.ID, got, res.Outcome)
		}
		// Every phase span parents directly under the experiment root.
		phaseSpans := 0
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			if sp.SpanID == root.SpanID {
				continue
			}
			if sp.ParentID != root.SpanID {
				t.Errorf("experiment %d: span %q parented under %s, want root", exp.ID, sp.Name, sp.ParentID)
			}
			phaseSpans++
		}
		if phaseSpans < 3 {
			t.Errorf("experiment %d: only %d phase spans", exp.ID, phaseSpans)
		}
		var buf bytes.Buffer
		if err := obs.WriteTraceJSONL(&buf, *tr); err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ValidateSpansJSONL(&buf); err != nil {
			t.Errorf("experiment %d: invalid span tree: %v", exp.ID, err)
		}
	}
}

// TestForkModePhasesTileWallTime: same tiling criterion through the
// fork-server path (restore is replaced by fork, and the sim slices
// arrive via chunked RunUntil calls).
func TestForkModePhasesTileWallTime(t *testing.T) {
	r, err := NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableFork(DefaultForkOptions()); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder()
	r.AttachSpans(rec, "r1")
	exps := GenerateUniform(5, GenConfig{WindowInsts: r.WindowInsts, Seed: 6})
	for _, exp := range exps {
		res := r.Run(exp)
		var sum int64
		for _, ns := range res.PhaseNS {
			sum += ns
		}
		diff := res.WallNs - sum
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > res.WallNs {
			t.Errorf("experiment %d (fork): phases sum %dns vs wall %dns (off %.2f%%), phases %v",
				exp.ID, sum, res.WallNs, 100*float64(diff)/float64(res.WallNs), res.PhaseNS)
		}
	}
}

// TestPoolSpansAndExemplars: the pool wires the recorder to every
// runner and the per-phase histograms carry trace-ID exemplars.
func TestPoolSpansAndExemplars(t *testing.T) {
	pool, err := NewPool(workloads.MonteCarloPI(workloads.ScaleTest), 2, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder()
	pool.Spans = rec
	pool.Metrics = obs.NewRegistry()
	reg := pool.Metrics
	exps := GenerateUniform(8, GenConfig{WindowInsts: pool.Runner().WindowInsts, Seed: 3})
	results := pool.RunAll(exps)
	if len(results) != len(exps) {
		t.Fatalf("results = %d", len(results))
	}
	if got := len(rec.Traces()); got != len(exps) {
		t.Fatalf("traces = %d, want %d", got, len(exps))
	}
	for _, res := range results {
		if res.TraceID == "" {
			t.Errorf("experiment %d: no trace ID", res.ID)
		}
		if rec.TraceByID(res.TraceID) == nil {
			t.Errorf("experiment %d: trace %s missing from ring", res.ID, res.TraceID)
		}
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	if !bytes.Contains(prom.Bytes(), []byte("trace_id=")) {
		t.Errorf("prom exposition has no trace_id exemplars:\n%.2000s", out)
	}
}
