package campaign

import (
	"encoding/json"
	"testing"

	"repro/internal/workloads"
)

func TestRunFig7SmallStructure(t *testing.T) {
	rep, err := RunFig7(Fig7Config{
		Workloads: []*workloads.Workload{workloads.MonteCarloPI(workloads.ScaleTest)},
		Trials:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	row := rep.Rows[0]
	if row.VanillaSec <= 0 || row.GemFISec <= 0 {
		t.Errorf("timings missing: %+v", row)
	}
	if row.CILowPct > row.OverheadPct || row.CIHighPct < row.OverheadPct {
		t.Errorf("CI does not bracket the point estimate: %+v", row)
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not JSON-serializable: %v", err)
	}
}

func TestRunFig8SmallStructure(t *testing.T) {
	rep, err := RunFig8(Fig8Config{
		Workloads:   []*workloads.Workload{workloads.MonteCarloPI(workloads.ScaleTest)},
		Experiments: 4,
		Workers:     2,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	row := rep.Rows[0]
	if row.BaselineSec <= 0 || row.CheckpointSec <= 0 || row.ParallelSec <= 0 {
		t.Errorf("timings missing: %+v", row)
	}
	// The defining claim: skipping boot+init makes experiments cheaper.
	if row.CheckpointSpeedup <= 1 {
		t.Errorf("checkpoint speedup = %v, want > 1 (baseline %v vs ckpt %v)",
			row.CheckpointSpeedup, row.BaselineSec, row.CheckpointSec)
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
}
