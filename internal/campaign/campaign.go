// Package campaign implements GemFI's fault injection campaign
// orchestration: statistical generation of fault configurations, golden
// (fault-free) reference runs, checkpoint-based fast-forwarding of
// experiments (Fig. 3 of the paper), parallel local execution, and the
// five-class outcome taxonomy of Section IV.B:
//
//	Crashed / Non-propagated / Strictly-correct / Correct / SDC
package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// CrashInterrupted is the CrashCause reported when a run was stopped via
// Runner.Interrupt — e.g. by a NoW worker's per-experiment timeout. The
// worker retries such results; they are never final outcomes unless the
// retry budget is exhausted.
const CrashInterrupted = "interrupted"

// Outcome is the classification of one experiment (Section IV.B.1).
type Outcome int

// Experiment outcomes.
const (
	// OutcomeCrashed: the run failed to terminate successfully (trap,
	// hang, or nonzero exit).
	OutcomeCrashed Outcome = iota + 1
	// OutcomeNonPropagated: the fault never manifested as an error (not
	// fired, squashed, overwritten before read, or never read).
	OutcomeNonPropagated
	// OutcomeStrictlyCorrect: output bit-wise identical to the golden
	// run although the fault propagated.
	OutcomeStrictlyCorrect
	// OutcomeCorrect: output within the application's quality margin.
	OutcomeCorrect
	// OutcomeSDC: silent data corruption — terminated normally with an
	// unacceptable result.
	OutcomeSDC
	numOutcomes
)

// String names the outcome as in the paper's figures.
func (o Outcome) String() string {
	switch o {
	case OutcomeCrashed:
		return "crashed"
	case OutcomeNonPropagated:
		return "non-propagated"
	case OutcomeStrictlyCorrect:
		return "strictly-correct"
	case OutcomeCorrect:
		return "correct"
	case OutcomeSDC:
		return "SDC"
	default:
		return "unknown"
	}
}

// Outcomes lists all outcome classes in display order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeCrashed, OutcomeNonPropagated, OutcomeStrictlyCorrect, OutcomeCorrect, OutcomeSDC}
}

// Acceptable reports whether the outcome is in the paper's "acceptable"
// union (correct or strictly correct; non-propagated runs are bit-exact
// and therefore acceptable as well).
func (o Outcome) Acceptable() bool {
	return o == OutcomeStrictlyCorrect || o == OutcomeCorrect || o == OutcomeNonPropagated
}

// Experiment is one fault-injection run specification.
type Experiment struct {
	ID     int          `json:"id"`
	Faults []core.Fault `json:"faults"`
}

// Result is the outcome of one experiment.
type Result struct {
	ID      int     `json:"id"`
	Outcome Outcome `json:"outcome"`

	// Fault echoes the primary injected fault for correlation.
	Fault core.Fault `json:"fault"`
	// NormTime is the injection time normalized to the golden run's
	// fault-injection window (for the Fig. 6 correlation).
	NormTime float64 `json:"normTime"`

	Fired      bool   `json:"fired"`
	CrashCause string `json:"crashCause,omitempty"`
	Insts      uint64 `json:"insts"`
	Ticks      uint64 `json:"ticks"`

	// InjPC is the guest PC of the instruction the first fired fault
	// actually struck (valid only when InjPCValid). Joining it with the
	// outcome gives the per-PC vulnerability attribution report.
	InjPC      uint64 `json:"injPC,omitempty"`
	InjPCValid bool   `json:"injPCValid,omitempty"`

	// Prop is the propagation-taint summary explaining the outcome
	// (present only when the runner has a taint tracker attached). The
	// full PropReport with the DAG is available per experiment via
	// Runner.LastTaintReport.
	Prop *taint.Summary `json:"prop,omitempty"`

	// WallNs is the experiment's wall-clock execution time on its
	// runner; the serv journal, /results and the SSE stream expose it.
	WallNs int64 `json:"wallNs,omitempty"`
	// Worker names the executor when the experiment ran remotely (the
	// NoW worker's name); empty for local execution.
	Worker string `json:"worker,omitempty"`
	// TraceID links the result to its span tree when span tracing is
	// attached (Runner.AttachSpans); retrieve the tree via /trace/{id}.
	TraceID string `json:"traceId,omitempty"`
	// PhaseNS breaks WallNs into the contiguous phases of the
	// experiment (fork/restore, fast-forward, pre-window, fi-window,
	// post-window, classify, taint) when span tracing is attached.
	PhaseNS map[string]int64 `json:"phaseNs,omitempty"`
	// Postmortem is the flight-recorder dump of the experiment's final
	// instructions, present only when a recorder is attached
	// (AttachFlight) and the verdict is interesting — crashed,
	// reached-output SDC, or taint reached-state. Masked experiments
	// never carry one.
	Postmortem *flight.Postmortem `json:"postmortem,omitempty"`
}

// Runner executes experiments for one workload. It is not safe for
// concurrent use; a Pool builds one Runner per worker.
type Runner struct {
	Workload *workloads.Workload
	Cfg      sim.Config

	// Golden is the fault-free reference output.
	Golden *workloads.Result
	// WindowInsts is the number of committed instructions in the golden
	// run's fault-injection window.
	WindowInsts uint64

	// Ckpt, when non-nil, fast-forwards every experiment from the
	// fi_read_init_all checkpoint instead of re-running boot + init.
	Ckpt *checkpoint.State

	sim  *sim.Simulator
	prof *prof.Profiler

	// fork, when non-nil, routes experiments through the fork server
	// (EnableFork): each run forks from the closest trunk snapshot
	// instead of replaying from the checkpoint.
	fork *forkServer

	// pendingMemo carries the current experiment's memo key from the fork
	// prune loop to the post-classification insert; memoCrash carries a
	// memo-hit's crash cause into the pruned-result path of Run.
	pendingMemo *memoPending
	memoCrash   string

	// Taint propagation tracking (AttachTaint). taintGolden is the final
	// architectural state of the golden run, captured lazily on attach;
	// canCaptureGolden marks the window where r.sim still holds it
	// (between NewRunner and the first experiment).
	taintTr          *taint.Tracker
	taintGolden      *taint.GoldenState
	canCaptureGolden bool

	propMu    sync.Mutex
	lastProp  *taint.PropReport
	propStamp uint64

	// Flight recording (AttachFlight): the per-runner ring of final
	// committed instructions, dumped onto Result.Postmortem for
	// interesting verdicts.
	flight *flight.Recorder

	// Span tracing (AttachSpans). curTrace is the live state of the
	// experiment currently inside RunCtx; runners are not concurrent,
	// so no lock is needed.
	spans     *obs.SpanRecorder
	spanTrack string
	curTrace  *expTrace
}

// expTrace is the span bookkeeping of one in-flight experiment: the
// experiment span, the end of the last closed phase (the next phase
// starts there, keeping phases contiguous), and the per-phase totals.
// cuts keeps the raw phase boundaries (only while a flight recorder is
// attached) so a post-mortem dump can place ring records inside the
// experiment's phases.
type expTrace struct {
	span   *obs.Span
	last   time.Time
	phases map[string]int64
	cuts   []flight.Phase
}

// propClock orders LastTaintReport results across a pool's runners.
var propClock atomic.Uint64

// RunnerOptions configures NewRunner.
type RunnerOptions struct {
	// Model for the injection phase (default: pipelined with a switch to
	// atomic after fault resolution — the paper's methodology).
	Cfg *sim.Config
	// DisableCheckpoint runs every experiment from program start (the
	// Fig. 8 baseline).
	DisableCheckpoint bool
}

// defaultCampaignConfig is the paper's methodology configuration.
func defaultCampaignConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Model = sim.ModelAtomic // campaigns default to the fast model; drivers override
	return cfg
}

// NewRunner builds a runner: compiles the workload, takes the golden
// run (capturing the fi_read_init_all checkpoint), and records the
// fault-injection window size.
func NewRunner(w *workloads.Workload, opts RunnerOptions) (*Runner, error) {
	cfg := defaultCampaignConfig()
	if opts.Cfg != nil {
		cfg = *opts.Cfg
	}
	cfg.EnableFI = true
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}

	p, err := w.Build()
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		return nil, err
	}
	var ckpt *checkpoint.State
	s.OnCheckpoint = func(sm *sim.Simulator) {
		if ckpt == nil {
			ckpt = sm.Checkpoint()
		}
	}
	r := s.Run()
	if r.Failed() {
		return nil, fmt.Errorf("campaign: golden run of %s failed: %+v", w.Name, r)
	}
	golden, err := workloads.Extract(w, s)
	if err != nil {
		return nil, err
	}
	// Tighten the hang watchdog to a multiple of the golden run length:
	// fault runs that loop forever otherwise burn the full generic limit
	// per experiment. Jacobi-style workloads legitimately run much longer
	// than golden when reconverging, so the margin is generous.
	if opts.Cfg == nil || opts.Cfg.MaxInsts == 0 {
		limit := r.Insts*50 + 10_000_000
		if limit < cfg.MaxInsts {
			cfg.MaxInsts = limit
		}
	}
	runner := &Runner{
		Workload:    w,
		Cfg:         cfg,
		Golden:      golden,
		WindowInsts: s.Engine.WindowCommits(),
		sim:         s,
		// The simulator still holds the golden run's final state; the
		// taint differ can snapshot it until the first experiment runs.
		canCaptureGolden: true,
	}
	s.Cfg.MaxInsts = cfg.MaxInsts
	if !opts.DisableCheckpoint {
		if ckpt == nil {
			return nil, fmt.Errorf("campaign: %s never executed fi_read_init_all", w.Name)
		}
		runner.Ckpt = ckpt
	}
	return runner, nil
}

// NewRestoredRunner builds a runner from externally supplied golden
// outputs and a checkpoint — the NoW worker path, where the checkpoint
// arrives over the network instead of being captured locally.
func NewRestoredRunner(w *workloads.Workload, cfg sim.Config, golden *workloads.Result, windowInsts uint64, ckpt *checkpoint.State) (*Runner, error) {
	cfg.EnableFI = true
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = 2_000_000_000
	}
	p, err := w.Build()
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		return nil, err
	}
	return &Runner{
		Workload:    w,
		Cfg:         cfg,
		Golden:      golden,
		WindowInsts: windowInsts,
		Ckpt:        ckpt,
		sim:         s,
	}, nil
}

// Clone builds a worker runner that shares this runner's expensive
// immutable state — golden outputs, checkpoint, fault-injection window,
// and fork server — but owns a private simulator, so the clone can run
// experiments concurrently with the original. Per-runner instrumentation
// is replicated, not shared: a clone of a taint- or profiler-attached
// runner gets its own tracker/profiler (accumulating privately, pool
// style) with the golden differ state shared. This is the pool's clone
// logic, exported for schedulers that build per-campaign worker sets.
func (r *Runner) Clone() (*Runner, error) {
	cfg := r.Cfg
	// The parent's Cfg carries its private instrumentation; the clone
	// must not inherit those pointers.
	cfg.Profiler = nil
	cfg.Taint = nil
	cfg.Flight = nil
	c := &Runner{
		Workload:    r.Workload,
		Cfg:         cfg,
		Golden:      r.Golden,
		WindowInsts: r.WindowInsts,
		Ckpt:        r.Ckpt,
		fork:        r.fork,
	}
	prog, err := r.Workload.Build()
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg)
	if err := s.Load(prog); err != nil {
		return nil, err
	}
	c.sim = s
	// The span recorder is shared (it is concurrency-safe); the pool or
	// scheduler overrides the clone's track with its own lane name.
	c.spans, c.spanTrack = r.spans, r.spanTrack
	if r.prof != nil {
		c.AttachProfiler()
	}
	if r.taintTr != nil {
		c.AttachTaint()
		c.ShareTaintGolden(r.taintGolden)
	}
	if r.flight != nil {
		c.AttachFlight(r.flight.Depth())
	}
	return c, nil
}

// Interrupt asks the in-progress experiment's simulation to stop at its
// next poll point; Run then returns a Result with CrashCause
// CrashInterrupted. It is safe to call concurrently with Run only on
// checkpoint-backed runners (NewRunner without DisableCheckpoint, or
// NewRestoredRunner), where the simulator is fixed at construction — the
// NoW worker path.
func (r *Runner) Interrupt() {
	if r.sim != nil {
		r.sim.Interrupt()
	}
}

// AttachProfiler attaches a guest profiler to the runner's simulator;
// all subsequent experiments accumulate into it. Idempotent — repeated
// calls return the same profiler. On baseline (DisableCheckpoint)
// runners the profiler also survives the per-experiment simulator
// rebuild, because it is carried through the runner's Config.
func (r *Runner) AttachProfiler() *prof.Profiler {
	if r.prof == nil && r.sim != nil {
		r.prof = r.sim.AttachProfiler(nil)
		r.Cfg.Profiler = r.prof
	}
	return r.prof
}

// Profiler returns the attached profiler (nil when profiling is off).
func (r *Runner) Profiler() *prof.Profiler { return r.prof }

// AttachTaint attaches a fault-propagation taint tracker to the runner's
// simulator; every subsequent experiment produces a PropReport whose
// summary lands on Result.Prop. When called before the first experiment
// on a NewRunner-built runner it also snapshots the golden run's final
// architectural state, enabling the masked-logically / reached-state
// differ; on restored runners (NoW workers) the differ is skipped.
// Idempotent — repeated calls return the same tracker. Like the
// profiler, the tracker is carried through the runner's Config so it
// survives the per-experiment rebuild of baseline (DisableCheckpoint)
// runners.
func (r *Runner) AttachTaint() *taint.Tracker {
	if r.taintTr == nil && r.sim != nil {
		if r.canCaptureGolden && r.taintGolden == nil {
			r.taintGolden = taint.CaptureGolden(&r.sim.Core.Arch, r.sim.Mem)
		}
		r.taintTr = r.sim.AttachTaint(nil)
		r.Cfg.Taint = r.taintTr
	}
	return r.taintTr
}

// Taint returns the attached tracker (nil when taint tracking is off).
func (r *Runner) Taint() *taint.Tracker { return r.taintTr }

// TaintGolden returns the golden final state used by the differ (nil on
// restored runners or before AttachTaint).
func (r *Runner) TaintGolden() *taint.GoldenState { return r.taintGolden }

// ShareTaintGolden installs an externally captured golden final state —
// the pool path, where one runner's capture serves every worker.
func (r *Runner) ShareTaintGolden(g *taint.GoldenState) { r.taintGolden = g }

// AttachFlight attaches a flight recorder keeping the last depth
// committed instructions (depth <= 0 selects flight.DefaultDepth);
// every subsequent experiment with an interesting verdict — crashed,
// reached-output SDC, or taint reached-state — lands its post-mortem
// dump on Result.Postmortem. Idempotent — repeated calls return the
// same recorder. Like the tracker, the recorder is carried through the
// runner's Config so it survives the per-experiment rebuild of baseline
// (DisableCheckpoint) runners.
func (r *Runner) AttachFlight(depth int) *flight.Recorder {
	if r.flight == nil && r.sim != nil {
		r.Cfg.FlightDepth = depth
		r.flight = r.sim.AttachFlight(flight.NewRecorder(depth))
		r.Cfg.Flight = r.flight
	}
	return r.flight
}

// Flight returns the attached flight recorder (nil when recording is
// off).
func (r *Runner) Flight() *flight.Recorder { return r.flight }

// dumpPostmortem builds the flight-recorder dump for one finished
// experiment, mirroring (and extending) the span ForceKeep policy:
// crashed and SDC outcomes always dump, and a taint verdict of
// reached-state — wrong architectural state behind correct output —
// dumps too. Everything the dump splices in is already at hand: the
// ring, the injection point from the result, the taint first-event
// indexes from the last propagation report, and the phase boundaries
// cut during the run.
func (r *Runner) dumpPostmortem(res *Result, tr *expTrace) {
	if r.flight == nil {
		return
	}
	interesting := res.Outcome == OutcomeCrashed || res.Outcome == OutcomeSDC ||
		(res.Prop != nil && res.Prop.Verdict == taint.VerdictReachedState)
	if !interesting {
		return
	}
	recs := r.flight.Records()
	if len(recs) == 0 {
		return
	}
	pm := &flight.Postmortem{
		ExpID:      res.ID,
		TraceID:    res.TraceID,
		Outcome:    res.Outcome.String(),
		Fault:      res.Fault.String(),
		InjPC:      res.InjPC,
		InjPCValid: res.InjPCValid,
		CrashCause: res.CrashCause,
		Depth:      r.flight.Depth(),
		Committed:  r.flight.Committed(),
		Squashed:   r.flight.Squashed(),
		Records:    recs,
		Keyframes:  r.flight.Keyframes(),
	}
	if tr != nil {
		pm.Phases = tr.cuts
	}
	if res.Prop != nil {
		pm.Verdict = string(res.Prop.Verdict)
	}
	if rep, _ := r.LastTaintReport(); rep != nil {
		pm.Taint = &flight.TaintFirsts{
			FirstLoad:   rep.FirstLoad,
			FirstStore:  rep.FirstStore,
			FirstBranch: rep.FirstBranch,
			FirstOutput: rep.FirstOutput,
		}
	}
	// The faulting instruction never committed — append it so the
	// timeline's final record carries the crash PC.
	if res.Outcome == OutcomeCrashed && r.sim != nil {
		if t := r.sim.Core.Trap; t != nil {
			pm.AppendTrap(t.PC, uint32(t.Word))
		}
	}
	res.Postmortem = pm
}

// LastTaintReport returns the full propagation report of the runner's
// most recent experiment plus a monotonic stamp for ordering across
// runners. Safe to call concurrently with Run.
func (r *Runner) LastTaintReport() (*taint.PropReport, uint64) {
	r.propMu.Lock()
	defer r.propMu.Unlock()
	return r.lastProp, r.propStamp
}

// recordProp renders and stores the propagation report after one
// experiment; res.Prop gets the compact summary.
func (r *Runner) recordProp(res *Result) {
	if r.taintTr == nil || r.sim == nil {
		return
	}
	rep := r.sim.TaintReport(res.Outcome == OutcomeCrashed, r.taintGolden)
	if rep == nil {
		return
	}
	res.Prop = rep.Summary()
	r.propMu.Lock()
	r.lastProp = rep
	r.propStamp = propClock.Add(1)
	r.propMu.Unlock()
}

// AttachSpans attaches a span recorder: every subsequent experiment
// emits a span tree — an "experiment" root (or a "run" child when
// RunCtx is given a parent from another process), contiguous phase
// children, and the engine's fault-lifecycle events. track names the
// render lane (worker or slot) the runner's spans belong to. Safe to
// call repeatedly; AttachSpans(nil, "") detaches.
func (r *Runner) AttachSpans(rec *obs.SpanRecorder, track string) {
	r.spans = rec
	r.spanTrack = track
}

// Spans returns the attached span recorder (nil when tracing is off).
func (r *Runner) Spans() *obs.SpanRecorder { return r.spans }

// beginExpTrace opens the experiment span (root, or a "run" child under
// a remote parent) and wires the simulator's phase/fault-event hooks.
// Returns nil when span tracing is detached.
func (r *Runner) beginExpTrace(exp Experiment, parent obs.SpanContext, start time.Time) *expTrace {
	if r.spans == nil {
		return nil
	}
	var span *obs.Span
	if parent.Valid() {
		span = r.spans.StartSpan("run", parent)
	} else {
		span = r.spans.StartRoot("experiment")
	}
	span.SetTrack(r.spanTrack)
	span.SetAttr("exp_id", exp.ID)
	if r.Workload != nil {
		span.SetAttr("workload", r.Workload.Name)
	}
	if len(exp.Faults) > 0 {
		span.SetAttr("fault", exp.Faults[0].String())
	}
	r.sim.SetSpans(r.spans, span)
	tr := &expTrace{span: span, last: start, phases: make(map[string]int64, 8)}
	r.curTrace = tr
	return tr
}

// cutPhase closes the phase that began at the previous cut (or at the
// experiment start), emitting it as a child span and accumulating its
// duration. No-op outside a traced RunCtx.
func (r *Runner) cutPhase(name string) {
	tr := r.curTrace
	if tr == nil {
		return
	}
	now := time.Now()
	if now.After(tr.last) {
		r.spans.AddChild(tr.span.Context(), obs.SpanRecord{
			Name: name, Track: r.spanTrack,
			StartNS: tr.last.UnixNano(), EndNS: now.UnixNano(),
		})
		tr.phases[name] += now.Sub(tr.last).Nanoseconds()
		if r.flight != nil {
			tr.cuts = append(tr.cuts, flight.Phase{
				Name: name, StartNS: tr.last.UnixNano(), EndNS: now.UnixNano(),
			})
		}
	}
	tr.last = now
}

// foldSimPhases closes the simulator's phase recording and folds its
// slices (already emitted as spans by the simulator) into the totals,
// advancing the contiguity cursor to the last slice's end.
func (r *Runner) foldSimPhases() {
	tr := r.curTrace
	if tr == nil {
		return
	}
	for _, ph := range r.sim.EndPhaseRecording() {
		tr.phases[ph.Name] += ph.EndNS - ph.StartNS
		tr.last = time.Unix(0, ph.EndNS)
		if r.flight != nil {
			tr.cuts = append(tr.cuts, flight.Phase{
				Name: ph.Name, StartNS: ph.StartNS, EndNS: ph.EndNS,
				StartTick: ph.StartTick, EndTick: ph.EndTick,
			})
		}
	}
}

// finishExpTrace stamps the verdict onto the experiment span and ends
// it; crashed and SDC experiments force-keep their trace through head
// sampling.
func (r *Runner) finishExpTrace(tr *expTrace, res *Result) {
	if tr == nil {
		return
	}
	r.curTrace = nil
	r.sim.SetSpans(nil, nil)
	res.TraceID = tr.span.Context().TraceID
	if len(tr.phases) > 0 {
		res.PhaseNS = tr.phases
	}
	sp := tr.span
	sp.SetAttr("outcome", res.Outcome.String())
	sp.SetAttr("fired", res.Fired)
	sp.SetAttr("insts", res.Insts)
	sp.SetTicks(0, res.Ticks)
	if res.InjPCValid {
		sp.SetAttr("inj_pc", fmt.Sprintf("%#x", res.InjPC))
	}
	if res.CrashCause != "" {
		sp.SetAttr("crash_cause", res.CrashCause)
	}
	if res.Outcome == OutcomeCrashed {
		sp.SetStatus("crashed: " + res.CrashCause)
	}
	if res.Outcome == OutcomeCrashed || res.Outcome == OutcomeSDC {
		sp.ForceKeep()
	}
	sp.End()
}

// Run executes one experiment and classifies its outcome.
func (r *Runner) Run(exp Experiment) Result {
	return r.RunCtx(exp, obs.SpanContext{})
}

// RunCtx is Run with a distributed-trace parent: when the runner has a
// span recorder attached, the experiment's spans parent under ctx (the
// NoW master's or serv's experiment span) instead of starting a fresh
// trace. An invalid ctx starts a local root — Run's behavior.
func (r *Runner) RunCtx(exp Experiment, ctx obs.SpanContext) Result {
	r.canCaptureGolden = false
	// Covers the baseline (DisableCheckpoint) path, which rebuilds the
	// simulator without a Restore/ForkFrom reset; elsewhere a second
	// reset is a no-op on an already-empty ring.
	r.flight.Reset()
	start := time.Now()
	tr := r.beginExpTrace(exp, ctx, start)
	res := r.runExp(exp)
	r.cutPhase("classify")
	r.commitMemo(&res)
	r.recordProp(&res)
	if r.taintTr != nil {
		r.cutPhase("taint")
	}
	res.WallNs = time.Since(start).Nanoseconds()
	r.finishExpTrace(tr, &res)
	r.dumpPostmortem(&res, tr)
	return res
}

// runExp executes the simulation half of one experiment: restore or
// fork, run, and output classification. commitMemo/recordProp and the
// span bookkeeping happen in RunCtx around it.
func (r *Runner) runExp(exp Experiment) (res Result) {
	res = Result{ID: exp.ID}
	if len(exp.Faults) > 0 {
		res.Fault = exp.Faults[0]
		if r.WindowInsts > 0 {
			res.NormTime = float64(exp.Faults[0].When) / float64(r.WindowInsts)
		}
	}

	var runRes sim.RunResult
	var pruned Outcome
	if r.fork != nil {
		// Fork server: fork from the closest trunk snapshot preceding the
		// injection point; masked experiments may classify early.
		// runForked cuts the "fork" phase itself, after ForkFrom.
		runRes, pruned = r.runForked(exp)
	} else if r.Ckpt != nil {
		// Fast-forward: restore the checkpoint and re-arm the engine
		// with this experiment's faults (Fig. 3 of the paper).
		r.sim.Restore(r.Ckpt, exp.Faults)
		r.sim.BeginPhaseRecording()
		r.cutPhase("restore")
		runRes = r.sim.Run()
	} else {
		// Baseline: full re-simulation from program start.
		s := sim.New(r.Cfg)
		p, err := r.Workload.Build()
		if err != nil {
			res.Outcome = OutcomeCrashed
			res.CrashCause = err.Error()
			return res
		}
		if err := s.Load(p); err != nil {
			res.Outcome = OutcomeCrashed
			res.CrashCause = err.Error()
			return res
		}
		s.Engine.Reset(exp.Faults)
		r.sim = s
		if tr := r.curTrace; tr != nil {
			s.SetSpans(r.spans, tr.span)
		}
		s.BeginPhaseRecording()
		r.cutPhase("restore")
		runRes = s.Run()
	}
	r.foldSimPhases()
	res.Insts = runRes.Insts
	res.Ticks = runRes.Ticks
	for _, oc := range runRes.Outcomes {
		if oc.Fired {
			res.Fired = true
			if oc.HavePC && !res.InjPCValid {
				res.InjPC = oc.PC
				res.InjPCValid = true
			}
		}
	}

	if pruned != 0 {
		// Pruned or memoized early: runForked already put the exact final
		// totals into runRes, so only the classification (and, for a
		// memoized crash, its cause) remains.
		res.Outcome = pruned
		if r.memoCrash != "" {
			res.CrashCause = r.memoCrash
			r.memoCrash = ""
		}
		return res
	}

	if runRes.Interrupted {
		// Externally stopped (timeout): the simulator state is mid-run,
		// so no output classification is possible.
		res.Outcome = OutcomeCrashed
		res.CrashCause = CrashInterrupted
		return res
	}

	if runRes.Failed() {
		res.Outcome = OutcomeCrashed
		res.CrashCause = runRes.CrashCause
		if runRes.Hung {
			res.CrashCause = "hang (watchdog)"
		}
		return res
	}

	out, err := workloads.Extract(r.Workload, r.sim)
	if err != nil {
		res.Outcome = OutcomeCrashed
		res.CrashCause = err.Error()
		return res
	}
	grade := r.Workload.Classify(r.Golden, out)

	// Combine the engine's propagation verdict with the output grade.
	propagated := false
	for _, oc := range runRes.Outcomes {
		if oc.Propagated {
			propagated = true
		}
	}
	switch {
	case !propagated:
		res.Outcome = OutcomeNonPropagated
	case grade == workloads.GradeStrict:
		res.Outcome = OutcomeStrictlyCorrect
	case grade == workloads.GradeCorrect:
		res.Outcome = OutcomeCorrect
	default:
		res.Outcome = OutcomeSDC
	}
	return res
}

// Tally is an outcome histogram.
type Tally map[Outcome]int

// Add counts a result.
func (t Tally) Add(r Result) { t[r.Outcome]++ }

// Total returns the number of counted results.
func (t Tally) Total() int {
	n := 0
	for _, v := range t {
		n += v
	}
	return n
}

// Fraction returns the share of an outcome.
func (t Tally) Fraction(o Outcome) float64 {
	if t.Total() == 0 {
		return 0
	}
	return float64(t[o]) / float64(t.Total())
}

// TallyOf accumulates a result list.
func TallyOf(rs []Result) Tally {
	t := make(Tally)
	for _, r := range rs {
		t.Add(r)
	}
	return t
}
