package campaign

import "testing"

// TestMemoForkMatchesReplay is the memoization identity test: running a
// batch that contains duplicated experiments through a memoizing fork
// runner must produce memo hits, and every result — including the
// memoized ones — must classify identically to a plain checkpoint-replay
// runner, down to instruction and tick totals.
func TestMemoForkMatchesReplay(t *testing.T) {
	replay := piRunner(t)
	fork := piRunner(t)
	opts := DefaultForkOptions()
	// Twin pruning off: it would close converged propagated runs before
	// the memo can record or replay them, hiding the path under test.
	opts.TwinCheck = false
	if !opts.Memoize {
		t.Fatal("DefaultForkOptions no longer enables memoization")
	}
	if err := fork.EnableFork(opts); err != nil {
		t.Fatal(err)
	}

	// Duplicate every experiment: the second copy reaches the exact same
	// post-resolve state at the same prune checkpoint, so each propagated
	// first-copy verdict must be served from the memo for the second.
	base := GenerateUniform(16, GenConfig{WindowInsts: replay.WindowInsts, Seed: 23})
	exps := make([]Experiment, 0, 2*len(base))
	for _, e := range base {
		exps = append(exps, e)
		dup := e
		dup.ID = len(base) + e.ID
		exps = append(exps, dup)
	}

	sawPropagated := false
	for _, e := range exps {
		want := replay.Run(e)
		got := fork.Run(e)
		if got.Outcome != want.Outcome || got.Fired != want.Fired {
			t.Errorf("exp %d (%+v): fork %v/fired=%v, replay %v/fired=%v",
				e.ID, e.Faults[0], got.Outcome, got.Fired, want.Outcome, want.Fired)
		}
		if got.Insts != want.Insts {
			t.Errorf("exp %d: insts %d vs %d", e.ID, got.Insts, want.Insts)
		}
		if got.Ticks != want.Ticks {
			t.Errorf("exp %d: ticks %d vs %d", e.ID, got.Ticks, want.Ticks)
		}
		if got.CrashCause != want.CrashCause {
			t.Errorf("exp %d: crash cause %q vs %q", e.ID, got.CrashCause, want.CrashCause)
		}
		if want.Outcome != OutcomeNonPropagated {
			sawPropagated = true
		}
	}

	st := fork.ForkStats()
	if st.MemoEntries == 0 {
		t.Fatal("no verdicts were memoized — the memo key point never fired")
	}
	if st.MemoHits == 0 {
		t.Fatal("duplicated experiments produced no memo hits")
	}
	if !sawPropagated {
		t.Log("warning: batch had no propagated outcomes; memo path weakly exercised")
	}
}

// TestMemoSkipsInstrumentedRunners: per-PC profiles and taint reports
// cover the whole run, so an instrumented runner must never memoize or
// serve memoized verdicts.
func TestMemoSkipsInstrumentedRunners(t *testing.T) {
	fork := piRunner(t)
	if err := fork.EnableFork(DefaultForkOptions()); err != nil {
		t.Fatal(err)
	}
	fork.AttachProfiler()
	base := GenerateUniform(6, GenConfig{WindowInsts: fork.WindowInsts, Seed: 7})
	for _, e := range base {
		fork.Run(e)
		fork.Run(e) // duplicate: would hit the memo if it were active
	}
	if st := fork.ForkStats(); st.MemoEntries != 0 || st.MemoHits != 0 {
		t.Fatalf("instrumented runner used the memo: %d entries, %d hits", st.MemoEntries, st.MemoHits)
	}
}
