package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
)

func TestAttributeByPC(t *testing.T) {
	syms := asm.SymbolTable{
		{Name: "fn_a", Addr: 0x1000, Size: 0x20},
		{Name: "fn_b", Addr: 0x1020, Size: 0x10},
	}
	results := []Result{
		{Outcome: OutcomeSDC, InjPC: 0x1008, InjPCValid: true},
		{Outcome: OutcomeCrashed, InjPC: 0x1008, InjPCValid: true},
		{Outcome: OutcomeNonPropagated, InjPC: 0x1008, InjPCValid: true},
		{Outcome: OutcomeCorrect, InjPC: 0x1020, InjPCValid: true},
		{Outcome: OutcomeNonPropagated}, // never fired: unattributed
	}
	rows, unattributed := AttributeByPC(results, syms)
	if unattributed != 1 {
		t.Errorf("unattributed = %d, want 1", unattributed)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Most vulnerable site first.
	if rows[0].PC != 0x1008 || rows[0].Vulnerable() != 2 || rows[0].Total != 3 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[0].Func != "fn_a" || rows[0].Offset != 8 {
		t.Errorf("row0 symbolization = %q+0x%x", rows[0].Func, rows[0].Offset)
	}
	if rows[1].PC != 0x1020 || rows[1].Func != "fn_b" || rows[1].Offset != 0 {
		t.Errorf("row1 = %+v", rows[1])
	}

	var buf bytes.Buffer
	if err := WritePCReport(&buf, rows, unattributed); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fn_a+0x8", "fn_b", "4 experiments at 2 sites (1 unattributed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
