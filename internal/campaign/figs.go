package campaign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Fig5Row is the outcome distribution for one (application, location)
// pair — one stacked bar of the paper's Fig. 5.
type Fig5Row struct {
	Workload string         `json:"workload"`
	Location string         `json:"location"`
	Tally    map[string]int `json:"tally"`
	Total    int            `json:"total"`
}

// Fig5Report reproduces Fig. 5: "the results of the fault injection
// campaigns, correlating the Location of the fault with application
// behavior", with a summary column per application.
type Fig5Report struct {
	Rows []Fig5Row `json:"rows"`
}

// Fig5Config parameterizes the Fig. 5 reproduction.
type Fig5Config struct {
	Workloads    []*workloads.Workload
	PerLocation  int // experiments per (app, location) bar
	Parallelism  int
	Seed         int64
	RunnerConfig RunnerOptions
}

// RunFig5 executes the Fig. 5 campaign matrix.
func RunFig5(cfg Fig5Config) (*Fig5Report, error) {
	if cfg.PerLocation <= 0 {
		cfg.PerLocation = 50
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	rep := &Fig5Report{}
	for _, w := range cfg.Workloads {
		pool, err := NewPool(w, cfg.Parallelism, cfg.RunnerConfig)
		if err != nil {
			return nil, err
		}
		summary := make(Tally)
		summaryTotal := 0
		for _, loc := range AllLocations() {
			exps := GenerateUniform(cfg.PerLocation, GenConfig{
				Locations:   []core.Location{loc},
				WindowInsts: pool.Runner().WindowInsts,
				Seed:        cfg.Seed + int64(loc)*1000,
			})
			results := pool.RunAll(exps)
			tally := TallyOf(results)
			rep.Rows = append(rep.Rows, Fig5Row{
				Workload: w.Name,
				Location: loc.String(),
				Tally:    tallyToMap(tally),
				Total:    tally.Total(),
			})
			for o, n := range tally {
				summary[o] += n
				summaryTotal += n
			}
		}
		rep.Rows = append(rep.Rows, Fig5Row{
			Workload: w.Name,
			Location: "total",
			Tally:    tallyToMap(summary),
			Total:    summaryTotal,
		})
	}
	return rep, nil
}

// Row returns the row for a (workload, location) pair.
func (r *Fig5Report) Row(workload, location string) (Fig5Row, bool) {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Location == location {
			return row, true
		}
	}
	return Fig5Row{}, false
}

// Fraction returns the share of an outcome in a row.
func (row Fig5Row) Fraction(outcome Outcome) float64 {
	if row.Total == 0 {
		return 0
	}
	return float64(row.Tally[outcome.String()]) / float64(row.Total)
}

// String renders the report as the paper-style table.
func (r *Fig5Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-16s %8s", "app", "location", "total")
	for _, o := range Outcomes() {
		fmt.Fprintf(&sb, " %16s", o)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %-16s %8d", row.Workload, row.Location, row.Total)
		for _, o := range Outcomes() {
			fmt.Fprintf(&sb, " %15.1f%%", 100*row.Fraction(o))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig6Bin is one time bin of the Fig. 6 correlation: fraction of each
// outcome class among faults injected in [Lo, Hi) of normalized
// execution time.
type Fig6Bin struct {
	Lo         float64        `json:"lo"`
	Hi         float64        `json:"hi"`
	Total      int            `json:"total"`
	Tally      map[string]int `json:"tally"`
	Acceptable float64        `json:"acceptable"`
	Strict     float64        `json:"strict"`
	Correct    float64        `json:"correct"`
	Crashed    float64        `json:"crashed"`
}

// Fig6Report reproduces Fig. 6: "correlation of the timing of fault
// injection with the effect on the application".
type Fig6Report struct {
	Workload string    `json:"workload"`
	Bins     []Fig6Bin `json:"bins"`
}

// Fig6Config parameterizes a timing sweep.
type Fig6Config struct {
	Workload     *workloads.Workload
	Experiments  int
	Bins         int
	Parallelism  int
	Seed         int64
	Locations    []core.Location
	RunnerConfig RunnerOptions
}

// RunFig6 executes a timing-correlation sweep for one workload.
func RunFig6(cfg Fig6Config) (*Fig6Report, error) {
	if cfg.Experiments <= 0 {
		cfg.Experiments = 200
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 5
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	pool, err := NewPool(cfg.Workload, cfg.Parallelism, cfg.RunnerConfig)
	if err != nil {
		return nil, err
	}
	exps := GenerateUniform(cfg.Experiments, GenConfig{
		Locations:   cfg.Locations,
		WindowInsts: pool.Runner().WindowInsts,
		Seed:        cfg.Seed,
	})
	results := pool.RunAll(exps)

	rep := &Fig6Report{Workload: cfg.Workload.Name, Bins: make([]Fig6Bin, cfg.Bins)}
	binned := make([][]Result, cfg.Bins)
	for _, res := range results {
		b := int(res.NormTime * float64(cfg.Bins))
		if b < 0 {
			b = 0
		}
		if b >= cfg.Bins {
			b = cfg.Bins - 1
		}
		binned[b] = append(binned[b], res)
	}
	for i := range rep.Bins {
		t := TallyOf(binned[i])
		bin := Fig6Bin{
			Lo:    float64(i) / float64(cfg.Bins),
			Hi:    float64(i+1) / float64(cfg.Bins),
			Total: t.Total(),
			Tally: tallyToMap(t),
		}
		if bin.Total > 0 {
			acc := 0
			for _, res := range binned[i] {
				if res.Outcome.Acceptable() {
					acc++
				}
			}
			bin.Acceptable = float64(acc) / float64(bin.Total)
			bin.Strict = t.Fraction(OutcomeStrictlyCorrect) + t.Fraction(OutcomeNonPropagated)
			bin.Correct = t.Fraction(OutcomeCorrect)
			bin.Crashed = t.Fraction(OutcomeCrashed)
		}
		rep.Bins[i] = bin
	}
	return rep, nil
}

// String renders the sweep as a table.
func (r *Fig6Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload %s: outcome vs normalized injection time\n", r.Workload)
	fmt.Fprintf(&sb, "%-12s %6s %11s %8s %9s %8s\n", "time-bin", "n", "acceptable", "strict", "correct", "crashed")
	for _, b := range r.Bins {
		fmt.Fprintf(&sb, "[%.2f,%.2f) %6d %10.1f%% %7.1f%% %8.1f%% %7.1f%%\n",
			b.Lo, b.Hi, b.Total, 100*b.Acceptable, 100*b.Strict, 100*b.Correct, 100*b.Crashed)
	}
	return sb.String()
}

func tallyToMap(t Tally) map[string]int {
	m := make(map[string]int, len(t))
	for o, n := range t {
		m[o.String()] = n
	}
	return m
}

// SortRows orders Fig. 5 rows by workload then location (stable output
// for goldens and docs).
func (r *Fig5Report) SortRows() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		if r.Rows[i].Workload != r.Rows[j].Workload {
			return r.Rows[i].Workload < r.Rows[j].Workload
		}
		return r.Rows[i].Location < r.Rows[j].Location
	})
}
