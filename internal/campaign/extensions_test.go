package campaign

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestInterconnectFaultOnlyHitsMisses verifies that a LocBus fault fires
// only on transactions that cross the processor/memory interconnect: a
// cache-resident access stream never triggers it, while a cold/streaming
// access does (extension of Section VII).
func TestInterconnectFaultOnlyHitsMisses(t *testing.T) {
	// A program that loads the same (hot) location repeatedly, then
	// streams over a large array (cold misses).
	src := `
int big[4096];
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 200; i = i + 1) { s = s + big[0]; }  // hot: L1 hits
    for (int i = 0; i < 4096; i = i + 8) { s = s + big[i]; } // cold: misses
    out[0] = s;
    fi_activate(0);
    return 0;
}`
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// The bus fault is armed from instruction 1 permanently; with the
	// timing model, the first off-chip transaction takes the hit.
	f := core.Fault{
		Loc: core.LocBus, Behavior: core.BehFlip, Bit: 7,
		Base: core.TimeInst, When: 1, Occ: 1,
	}
	s := sim.New(sim.Config{Model: sim.ModelTiming, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 100_000_000})
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Failed() {
		t.Fatalf("%+v", r)
	}
	oc := r.Outcomes[0]
	if !oc.Fired {
		t.Fatal("interconnect fault never fired despite cold misses")
	}
	if oc.Detail != "interconnect transaction" {
		t.Errorf("detail = %q", oc.Detail)
	}
}

// TestInterconnectFaultNeverFiresWithoutMisses uses the atomic model
// WITHOUT caches — there, every access is defined to cross the bus, so
// this instead checks the parser + engine plumbing end to end with the
// extended fault-file syntax.
func TestInterconnectFaultParses(t *testing.T) {
	f, err := core.ParseFault("InterconnectInjectedFault Inst:10 Flip:3 Threadid:0 occ:1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Loc != core.LocBus {
		t.Fatalf("loc = %v", f.Loc)
	}
	back, err := core.ParseFault(f.String())
	if err != nil || back.Loc != core.LocBus {
		t.Fatalf("round trip: %v %v", back, err)
	}
}

// TestIODeviceFaultCorruptsConsole checks the Section VII I/O extension:
// an IODeviceInjectedFault flips a bit of a byte on its way to the
// console without touching architectural state.
func TestIODeviceFaultCorruptsConsole(t *testing.T) {
	src := `
int main() {
    fi_checkpoint();
    fi_activate(0);
    putc('A');
    putc('B');
    putc('C');
    fi_activate(0);
    return 0;
}`
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := core.Fault{
		Loc: core.LocIO, Behavior: core.BehFlip, Bit: 0,
		Base: core.TimeInst, When: 1, Occ: 1,
	}
	s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true, Faults: []core.Fault{f}})
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Failed() {
		t.Fatalf("%+v", r)
	}
	if r.Console != "@BC" { // 'A' ^ 1 = '@'
		t.Errorf("console = %q, want \"@BC\"", r.Console)
	}
	if !r.Outcomes[0].Fired || !r.Outcomes[0].Propagated {
		t.Errorf("lifecycle: %+v", r.Outcomes[0])
	}
	// Exit status and memory state must be untouched (the fault lives
	// outside the processor).
	if r.ExitStatus != 0 {
		t.Errorf("exit = %d", r.ExitStatus)
	}
}

func TestVddModelRateMonotone(t *testing.T) {
	m := DefaultVddModel()
	prev := 0.0
	for v := 1.0; v >= 0.6; v -= 0.05 {
		r := m.Rate(v)
		if r <= prev {
			t.Fatalf("rate not increasing as voltage drops: %v at %v", r, v)
		}
		prev = r
	}
	if got := m.Rate(m.VNominal); math.Abs(got-m.Lambda0) > 1e-15 {
		t.Errorf("rate at nominal = %v, want lambda0", got)
	}
}

func TestGenerateVddExperimentsScaling(t *testing.T) {
	m := DefaultVddModel()
	gc := GenConfig{WindowInsts: 100000, Seed: 5}
	count := func(v float64) int {
		total := 0
		for _, e := range GenerateVddExperiments(200, v, m, gc) {
			total += len(e.Faults)
		}
		return total
	}
	atNominal := count(1.0)
	atLow := count(0.7)
	if atNominal > atLow/10 {
		t.Errorf("fault volume should explode under undervolting: %d vs %d", atNominal, atLow)
	}
	// Reproducibility.
	a := GenerateVddExperiments(50, 0.75, m, gc)
	b := GenerateVddExperiments(50, 0.75, m, gc)
	for i := range a {
		if len(a[i].Faults) != len(b[i].Faults) {
			t.Fatal("vdd generation not reproducible")
		}
	}
}

func TestPoissonSanity(t *testing.T) {
	rngSeed := int64(9)
	_ = rngSeed
	exps := GenerateVddExperiments(2000, 0.75, DefaultVddModel(), GenConfig{WindowInsts: 100000, Seed: 9})
	total := 0
	for _, e := range exps {
		total += len(e.Faults)
	}
	mean := float64(total) / float64(len(exps))
	want := DefaultVddModel().Rate(0.75) * 100000
	if mean < want*0.8 || mean > want*1.2 {
		t.Errorf("empirical mean %v, want ~%v", mean, want)
	}
}

// TestVddSweepCliff runs a miniature undervolting study on PI and
// requires the acceptability cliff: near-perfect at nominal voltage,
// heavily degraded deep below it.
func TestVddSweepCliff(t *testing.T) {
	rep, err := RunVddSweep(VddConfig{
		Workload:    workloads.MonteCarloPI(workloads.ScaleTest),
		Voltages:    []float64{1.0, 0.7},
		PerVoltage:  15,
		Parallelism: 2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	nominal, low := rep.Points[0], rep.Points[1]
	if nominal.Acceptable < 0.95 {
		t.Errorf("nominal voltage acceptability = %v", nominal.Acceptable)
	}
	if low.Acceptable >= nominal.Acceptable {
		t.Errorf("no degradation under undervolting: %v vs %v", low.Acceptable, nominal.Acceptable)
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
}
