package campaign

import (
	"testing"

	"repro/internal/taint"
	"repro/internal/workloads"
)

// runTaintCampaign executes n uniform experiments on one runner with
// taint tracking attached and returns, per experiment, the classified
// result paired with its full propagation report.
func runTaintCampaign(t *testing.T, n int, seed int64) ([]Result, []*taint.PropReport) {
	t.Helper()
	r, err := NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.AttachTaint() == nil {
		t.Fatal("AttachTaint returned nil")
	}
	if r.TaintGolden() == nil {
		t.Fatal("runner did not capture the golden final state")
	}
	exps := GenerateUniform(n, GenConfig{WindowInsts: r.WindowInsts, Seed: seed})
	results := make([]Result, 0, n)
	reports := make([]*taint.PropReport, 0, n)
	for _, exp := range exps {
		res := r.Run(exp)
		rep, _ := r.LastTaintReport()
		if rep == nil {
			t.Fatalf("experiment %d produced no propagation report", exp.ID)
		}
		if res.Prop == nil {
			t.Fatalf("experiment %d: Result.Prop not populated", exp.ID)
		}
		if res.Prop.Verdict != rep.Verdict {
			t.Fatalf("experiment %d: summary verdict %s != report verdict %s",
				exp.ID, res.Prop.Verdict, rep.Verdict)
		}
		results = append(results, res)
		reports = append(reports, rep)
	}
	return results, reports
}

// TestTaintExplainsOutcomes is the acceptance check that the taint
// verdict explains — not merely accompanies — the campaign's outcome
// classification:
//
//   - Non-Propagated runs must never carry a propagation verdict
//     (reached-output/reached-crash), and at least one must be fully
//     explained as masked (overwritten or logically) with a golden diff
//     of zero.
//   - Every SDC run's DAG must contain a path from an injection node to
//     an output or final-state node (or record a control divergence,
//     where wrong-path execution rather than wrong data corrupted the
//     output), and at least one SDC must be seen.
//   - Every crashed run whose fault fired must carry reached-crash.
func TestTaintExplainsOutcomes(t *testing.T) {
	results, reports := runTaintCampaign(t, 60, 3)

	var sawMaskedNonProp, sawSDC, sawCrash bool
	for i, res := range results {
		rep := reports[i]
		switch res.Outcome {
		case OutcomeNonPropagated:
			if rep.Verdict == taint.VerdictReachedOutput || rep.Verdict == taint.VerdictReachedCrash {
				t.Errorf("exp %d: non-propagated outcome but verdict %s", res.ID, rep.Verdict)
			}
			if (rep.Verdict == taint.VerdictMaskedOverwritten || rep.Verdict == taint.VerdictMaskedLogically) &&
				rep.GoldenDiff.Total() == 0 {
				sawMaskedNonProp = true
			}
		case OutcomeSDC:
			sawSDC = true
			explained := rep.HasPath(taint.NodeInject, taint.NodeOutput) ||
				rep.HasPath(taint.NodeInject, taint.NodeFinal) ||
				rep.ControlDivergences > 0
			if !explained {
				t.Errorf("exp %d: SDC with no DAG path from injection to output/final and no control divergence (verdict %s, %d nodes)",
					res.ID, rep.Verdict, len(rep.Nodes))
			}
		case OutcomeCrashed:
			if res.Fired && rep.Verdict != taint.VerdictReachedCrash {
				t.Errorf("exp %d: crash with a fired fault but verdict %s", res.ID, rep.Verdict)
			}
			if res.Fired {
				sawCrash = true
			}
		}
	}
	if !sawMaskedNonProp {
		t.Error("campaign produced no non-propagated run explained as masked with golden diff zero")
	}
	if !sawSDC {
		t.Error("campaign produced no SDC run to explain (enlarge n or change seed)")
	}
	if !sawCrash {
		t.Error("campaign produced no fired crash to explain (enlarge n or change seed)")
	}
}

// TestTaintSummaryOnPoolResults checks the pool path: AttachTaint fans
// the tracker out to every worker, Prop summaries land on all completed
// results, and TaintReport returns the freshest report.
func TestTaintSummaryOnPoolResults(t *testing.T) {
	pool, err := NewPool(workloads.MonteCarloPI(workloads.ScaleTest), 4, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool.AttachTaint()
	exps := GenerateUniform(16, GenConfig{WindowInsts: pool.Runner().WindowInsts, Seed: 7})
	results := pool.RunAll(exps)
	for _, res := range results {
		if res.Prop == nil {
			t.Fatalf("experiment %d: no propagation summary on pool result", res.ID)
		}
	}
	if pool.TaintReport() == nil {
		t.Error("pool.TaintReport returned nil after a finished campaign")
	}

	// The per-PC attribution must surface propagation stats.
	rows, _ := AttributeByPC(results, nil)
	if len(rows) == 0 {
		t.Fatal("no attributed rows")
	}
	withTaint := 0
	for _, row := range rows {
		withTaint += row.TaintN
	}
	if withTaint == 0 {
		t.Error("no PC row carries propagation stats")
	}
}
