package campaign

// Fork-server campaign scheduling (GemFI §III.D checkpointing taken to
// its limit, ZOFI's fork model): one golden "trunk" run advances once
// through the fault-injection window, freezing copy-on-write snapshots at
// adaptive intervals into a bounded pool; every experiment then forks a
// worker simulator from the closest snapshot preceding its injection
// point instead of replaying the warm-up. Two exact pruning rules let
// most masked experiments finish without executing the golden suffix:
//
//   - engine-masked: every fired fault was overwritten or squashed with
//     no outstanding taint, so the machine is provably back in the golden
//     state (Engine.MaskedClean);
//   - trunk-anchor diff: the trunk IS the fault-free twin, and it keeps
//     freezing anchors past the window across the golden tail; a child
//     run to an anchor's exact instruction count and bit-identical to it
//     (architectural, memory-image and kernel state) will execute exactly
//     the golden suffix from there, so its outcome is already decided.
//
// Both rules fire only after Engine.Resolved() and only while the fault
// flags are frozen, so the classification matches a full replay bit for
// bit (the fork conformance suite enforces this on the serial models).

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ForkOptions parameterizes the fork server.
type ForkOptions struct {
	// Snapshots is the target number of trunk snapshots across the
	// fault-injection window (default 32). The capture interval is
	// WindowInsts/Snapshots committed instructions.
	Snapshots int
	// MaxLive bounds the snapshot pool (default Snapshots + Snapshots/2).
	// During the trunk run the pool thins itself by dropping every other
	// snapshot — doubling the effective interval, the "adaptive interval"
	// policy — and at fork time eviction is least-recently-used.
	MaxLive int
	// Prune enables engine-masked early classification.
	Prune bool
	// TwinCheck enables convergence pruning against the trunk's own
	// snapshots: after its faults resolve, a child is diffed against each
	// upcoming trunk anchor it reaches, and a bit-identical match ends the
	// experiment early. Each check costs a page-map sweep (shared pages
	// compare by pointer), not a twin execution — the trunk already ran.
	TwinCheck bool
	// Memoize enables cross-experiment result memoization: resolved,
	// propagated machine states are hashed, and a state seen before
	// closes immediately with the recorded verdict instead of replaying
	// the identical suffix (see memo.go for the exactness argument).
	Memoize bool
}

// DefaultForkOptions returns the standard fork-server configuration.
func DefaultForkOptions() ForkOptions {
	return ForkOptions{Snapshots: 32, Prune: true, TwinCheck: true, Memoize: true}
}

func (o ForkOptions) withDefaults() ForkOptions {
	if o.Snapshots <= 0 {
		o.Snapshots = 32
	}
	if o.MaxLive <= 0 {
		o.MaxLive = o.Snapshots + o.Snapshots/2
	}
	return o
}

// forkSnap is one pool entry: a frozen fork point plus scheduling
// metadata.
type forkSnap struct {
	fp      *checkpoint.ForkPoint
	win     uint64 // window commits at capture (0 = pre-window)
	lastUse uint64 // LRU clock value of the most recent fork
}

// snapPool is the bounded snapshot pool. All methods are safe for
// concurrent use by pool workers.
type snapPool struct {
	mu      sync.Mutex
	root    *forkSnap   // pre-window snapshot, never evicted
	snaps   []*forkSnap // mid-window snapshots sorted by win ascending
	tail    []*forkSnap // post-window prune anchors sorted by insts ascending
	maxLive int
	useClk  uint64

	taken   uint64
	evicted uint64
}

// setRoot installs the pre-window fallback snapshot.
func (sp *snapPool) setRoot(fp *checkpoint.ForkPoint) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.root = &forkSnap{fp: fp}
	sp.taken++
}

// insert adds a mid-window snapshot, evicting when the pool exceeds its
// bound: least-recently-used once forks have started, every-other
// thinning during the trunk run (nothing has been used yet, so dropping
// alternate entries doubles the effective interval while keeping
// coverage).
func (sp *snapPool) insert(fp *checkpoint.ForkPoint) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.snaps = append(sp.snaps, &forkSnap{fp: fp, win: fp.WindowCommits()})
	sp.taken++
	for len(sp.snaps) > sp.maxLive {
		if sp.useClk == 0 {
			kept := sp.snaps[:0]
			lastIdx := len(sp.snaps) - 1
			for i, s := range sp.snaps {
				// Keep every other entry, plus the newest so late-window
				// faults always have a nearby fork point.
				if i%2 == 1 || i == lastIdx {
					kept = append(kept, s)
				} else {
					sp.evicted++
				}
			}
			sp.snaps = kept
			continue
		}
		victim := 0
		for i, s := range sp.snaps {
			if s.lastUse < sp.snaps[victim].lastUse {
				victim = i
			}
		}
		sp.snaps = append(sp.snaps[:victim], sp.snaps[victim+1:]...)
		sp.evicted++
	}
}

// maxTail bounds the post-window anchor list; when full, every other
// anchor is dropped and the caller doubles its capture interval — the
// same adaptive-interval policy as the window snapshots.
const maxTail = 64

// insertTail appends a post-window prune anchor, thinning the list by
// half when it hits maxTail. Returns true when it thinned (the trunk
// should double its capture interval).
func (sp *snapPool) insertTail(fp *checkpoint.ForkPoint) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.tail = append(sp.tail, &forkSnap{fp: fp, win: fp.WindowCommits()})
	sp.taken++
	if len(sp.tail) < maxTail {
		return false
	}
	kept := sp.tail[:0]
	lastIdx := len(sp.tail) - 1
	for i, s := range sp.tail {
		if i%2 == 1 || i == lastIdx {
			kept = append(kept, s)
		} else {
			sp.evicted++
		}
	}
	sp.tail = kept
	return true
}

// anchorAfter returns the trunk snapshot with the smallest committed-
// instruction count >= insts — the next point at which a child can be
// diffed against the golden run — or nil past the last anchor.
func (sp *snapPool) anchorAfter(insts uint64) *forkSnap {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	i := sort.Search(len(sp.snaps), func(i int) bool { return sp.snaps[i].fp.Core.Insts >= insts })
	if i < len(sp.snaps) {
		return sp.snaps[i]
	}
	j := sort.Search(len(sp.tail), func(i int) bool { return sp.tail[i].fp.Core.Insts >= insts })
	if j < len(sp.tail) {
		return sp.tail[j]
	}
	return nil
}

// best returns the snapshot with the largest window-commit count still
// strictly below when — the fault must not have fired yet at the fork
// point — falling back to the pre-window root. rootOnly forces the root
// (tick-timed faults cannot be forked mid-window: the trunk's tick clock
// is model-dependent).
func (sp *snapPool) best(when uint64, rootOnly bool) *forkSnap {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.useClk++
	if !rootOnly {
		// Largest win < when: first index with win >= when, minus one.
		i := sort.Search(len(sp.snaps), func(i int) bool { return sp.snaps[i].win >= when })
		if i > 0 {
			s := sp.snaps[i-1]
			s.lastUse = sp.useClk
			return s
		}
	}
	sp.root.lastUse = sp.useClk
	return sp.root
}

// stats returns pool accounting: snapshots taken, evicted, currently
// live, and the approximate private bytes held live.
func (sp *snapPool) stats() (taken, evicted uint64, live int, bytes uint64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	live = len(sp.snaps) + len(sp.tail)
	bytes = 0
	if sp.root != nil {
		live++
		bytes += sp.root.fp.ApproxBytes()
	}
	for _, s := range sp.snaps {
		bytes += s.fp.ApproxBytes()
	}
	for _, s := range sp.tail {
		bytes += s.fp.ApproxBytes()
	}
	return sp.taken, sp.evicted, live, bytes
}

// forkServer is the shared fork-campaign state: the snapshot pool, the
// trunk's completion result (the golden continuation every pruned
// experiment inherits), and counters. One server serves every runner of
// a pool.
type forkServer struct {
	opts  ForkOptions
	pool  *snapPool
	final sim.RunResult // trunk run to completion (golden continuation)
	memo  *resultMemo   // cross-experiment verdict cache (nil when off)

	forks        atomic.Uint64
	prunedMasked atomic.Uint64
	prunedTwin   atomic.Uint64
	twinChecks   atomic.Uint64
}

// ForkStats is a point-in-time accounting of a fork-server campaign.
type ForkStats struct {
	SnapshotsTaken   uint64 `json:"snapshotsTaken"`
	SnapshotsEvicted uint64 `json:"snapshotsEvicted"`
	SnapshotsLive    int    `json:"snapshotsLive"`
	ApproxBytes      uint64 `json:"approxBytes"`
	Forks            uint64 `json:"forks"`
	PrunedMasked     uint64 `json:"prunedMasked"`
	PrunedTwin       uint64 `json:"prunedTwin"`
	TwinChecks       uint64 `json:"twinChecks"`
	TrunkInsts       uint64 `json:"trunkInsts"`
	MemoHits         uint64 `json:"memoHits"`
	MemoEntries      int    `json:"memoEntries"`
}

func (fs *forkServer) statsSnapshot() ForkStats {
	taken, evicted, live, bytes := fs.pool.stats()
	st := ForkStats{
		SnapshotsTaken:   taken,
		SnapshotsEvicted: evicted,
		SnapshotsLive:    live,
		ApproxBytes:      bytes,
		Forks:            fs.forks.Load(),
		PrunedMasked:     fs.prunedMasked.Load(),
		PrunedTwin:       fs.prunedTwin.Load(),
		TwinChecks:       fs.twinChecks.Load(),
		TrunkInsts:       fs.final.Insts,
	}
	if fs.memo != nil {
		st.MemoHits = fs.memo.hits.Load()
		st.MemoEntries = fs.memo.entries()
	}
	return st
}

// trunkConfig derives the trunk/twin simulator configuration from a
// runner's: always the atomic model (the trunk is a golden prefix, no
// faults can strike it), no fast-forward (it IS the fast-forward), no
// per-experiment instrumentation.
func trunkConfig(cfg sim.Config) sim.Config {
	cfg.Model = sim.ModelAtomic
	cfg.FastForward = false
	cfg.FastForwardAt = 0
	cfg.Faults = nil
	cfg.StopAtCheckpoint = false
	cfg.Profiler = nil
	cfg.EnableProfiler = false
	cfg.Taint = nil
	cfg.EnableTaint = false
	cfg.Flight = nil
	cfg.EnableFlight = false
	return cfg
}

// seekChunk bounds the trunk's instruction overshoot past the window-open
// edge; snapshot granularity near the window start is at most this many
// instructions.
const seekChunk = 512

// EnableFork builds the fork server for a checkpoint-backed runner: a
// dedicated trunk simulator restores the checkpoint, runs once to
// completion on the atomic model, and freezes snapshots across the
// fault-injection window on the way. Idempotent.
func (r *Runner) EnableFork(opts ForkOptions) error {
	if r.fork != nil {
		return nil
	}
	if r.Ckpt == nil {
		return fmt.Errorf("campaign: fork mode requires a checkpoint-backed runner")
	}
	opts = opts.withDefaults()

	p, err := r.Workload.Build()
	if err != nil {
		return err
	}
	trunk := sim.New(trunkConfig(r.Cfg))
	if err := trunk.Load(p); err != nil {
		return err
	}
	trunk.Restore(r.Ckpt, nil)

	sp := &snapPool{maxLive: opts.MaxLive}
	sp.setRoot(trunk.CaptureForkPoint())

	interval := r.WindowInsts / uint64(opts.Snapshots)
	if interval == 0 {
		interval = 1
	}

	// Seek the window-open edge in small steps, then snapshot across the
	// window at the configured interval. WindowCommits turning nonzero
	// while no thread is active means the window opened and closed within
	// one chunk — skip straight to the completion run.
	res := sim.RunResult{Paused: true}
	for res.Paused && trunk.Engine.ThreadsActive() == 0 && trunk.Engine.WindowCommits() == 0 {
		res = trunk.RunUntil(trunk.Core.Insts + seekChunk)
	}
	for res.Paused && trunk.Engine.ThreadsActive() > 0 {
		sp.insert(trunk.CaptureForkPoint())
		res = trunk.RunUntil(trunk.Core.Insts + interval)
	}
	// Past the window, keep freezing prune anchors across the golden tail
	// at a coarser, adaptively doubling interval: convergence checks diff
	// children against these instead of re-executing a fault-free twin.
	tailInterval := interval * 4
	for res.Paused {
		if sp.insertTail(trunk.CaptureForkPoint()) {
			tailInterval *= 2
		}
		res = trunk.RunUntil(trunk.Core.Insts + tailInterval)
	}
	if res.Failed() {
		return fmt.Errorf("campaign: fork trunk run of %s failed: %+v", r.Workload.Name, res)
	}

	fs := &forkServer{opts: opts, pool: sp, final: res}
	if opts.Memoize {
		fs.memo = newResultMemo()
	}
	r.fork = fs
	if m := r.Cfg.Metrics; m != nil {
		m.RegisterFunc("campaign.fork.snapshots_live", func() float64 {
			_, _, live, _ := sp.stats()
			return float64(live)
		})
		m.RegisterFunc("campaign.fork.snapshot_bytes", func() float64 {
			_, _, _, b := sp.stats()
			return float64(b)
		})
		m.RegisterFunc("campaign.fork.forks", func() float64 { return float64(fs.forks.Load()) })
		m.RegisterFunc("campaign.fork.pruned_masked", func() float64 { return float64(fs.prunedMasked.Load()) })
		m.RegisterFunc("campaign.fork.pruned_twin", func() float64 { return float64(fs.prunedTwin.Load()) })
		if fs.memo != nil {
			m.RegisterFunc("campaign.fork.memo_hits", func() float64 { return float64(fs.memo.hits.Load()) })
			m.RegisterFunc("campaign.fork.memo_entries", func() float64 { return float64(fs.memo.entries()) })
		}
	}
	return nil
}

// ForkEnabled reports whether the runner executes experiments through the
// fork server.
func (r *Runner) ForkEnabled() bool { return r.fork != nil }

// ForkStats returns the fork-server accounting (zero value when fork mode
// is off).
func (r *Runner) ForkStats() ForkStats {
	if r.fork == nil {
		return ForkStats{}
	}
	return r.fork.statsSnapshot()
}

// shareFork points a pool clone at an already built fork server.
func (r *Runner) shareFork(fs *forkServer) { r.fork = fs }

// childChunk is the forked child's run granularity between prune checks.
const childChunk = 4096

// runForked executes one experiment through the fork server. It returns
// the child's run result and, when the experiment could be classified
// early, the exact outcome (0 = run to completion, classify normally).
func (r *Runner) runForked(exp Experiment) (sim.RunResult, Outcome) {
	fs := r.fork

	// Pick the fork point: the snapshot closest below the earliest
	// injection. Tick-timed faults fall back to the pre-window root — the
	// trunk's tick clock is model-dependent, so only the committed-
	// instruction prefix may be shared for them.
	minWhen := ^uint64(0)
	rootOnly := false
	for _, f := range exp.Faults {
		if f.Base == core.TimeTick || f.CPU != "" && f.CPU != r.Cfg.CPUName {
			rootOnly = true
		}
		if f.When < minWhen {
			minWhen = f.When
		}
	}
	snap := fs.pool.best(minWhen, rootOnly)
	r.sim.ForkFrom(snap.fp, exp.Faults)
	fs.forks.Add(1)
	r.sim.BeginPhaseRecording()
	r.cutPhase("fork")

	// Pruning and memoization need the experiment's only observable
	// products to be the outcome class and the engine flags: per-PC
	// profiles and taint reports cover the whole run, so instrumented
	// runners always finish.
	instrumented := r.taintTr != nil || r.prof != nil
	pruneOK := fs.opts.Prune && !instrumented
	memoOK := fs.memo != nil && !instrumented
	if !pruneOK && !memoOK {
		return r.sim.Run(), 0
	}

	for {
		res := r.sim.RunUntil(r.sim.Core.Insts + childChunk)
		if !res.Paused {
			return res, 0 // exit, crash, hang or interrupt: classify normally
		}
		eng := r.sim.Engine
		if !eng.Resolved() {
			continue
		}
		// The pipelined model latches in-flight state across steps that a
		// snapshot comparison cannot see; only prune once the simulator is
		// on a serial model (atomic, or pipelined after the post-resolve
		// switch — the campaign methodology's SwitchToAtomicOnResolve).
		if r.sim.Model.ModelName() == "pipelined" {
			continue
		}
		if pruneOK && eng.MaskedClean() {
			fs.prunedMasked.Add(1)
			r.Cfg.Tracer.Instant(obs.CatFork, "fork.prune", r.sim.Core.Ticks,
				map[string]any{"id": exp.ID, "rule": "masked", "insts": res.Insts})
			// The machine is provably back in the golden state: the rest of
			// the run is exactly the trunk's completion, so the experiment
			// inherits the trunk's totals.
			res.Insts, res.Ticks = fs.final.Insts, fs.final.Ticks
			return res, OutcomeNonPropagated
		}
		// Memoization point: a fault has propagated and every fault has
		// resolved, so the final verdict is a pure function of the machine
		// state. A recorded state closes immediately; an unseen one is
		// keyed now and committed after classification (commitMemo).
		if memoOK && r.pendingMemo == nil && eng.AnyPropagated() {
			key := fs.memo.keyFor(r.sim)
			if e, ok := fs.memo.lookup(key); ok {
				r.memoCrash = e.crashCause
				r.Cfg.Tracer.Instant(obs.CatFork, "fork.memo", r.sim.Core.Ticks,
					map[string]any{"id": exp.ID, "insts": res.Insts})
				res.Insts = e.finalInsts
				res.Ticks = r.sim.Core.Ticks + e.dTicks
				return res, e.outcome
			}
			r.pendingMemo = &memoPending{key: key, ticks: r.sim.Core.Ticks}
		}
		if !pruneOK {
			if r.pendingMemo != nil {
				// Memo decision made and pruning is off: nothing else can
				// close this run early, so run it out in one go.
				return r.sim.Run(), 0
			}
			continue
		}
		if !fs.opts.TwinCheck {
			continue
		}
		// Advance to the next trunk anchor and diff against it — the trunk
		// is the fault-free twin, already executed.
		a := fs.pool.anchorAfter(res.Insts)
		if a == nil {
			return r.sim.Run(), 0 // past the last anchor: run out
		}
		if res = r.sim.RunUntil(a.fp.Core.Insts); !res.Paused {
			return res, 0
		}
		fs.twinChecks.Add(1)
		if res.Insts == a.fp.Core.Insts && r.convergedAt(a.fp) {
			fs.prunedTwin.Add(1)
			out := OutcomeNonPropagated
			if eng.AnyPropagated() {
				out = OutcomeStrictlyCorrect
			}
			r.Cfg.Tracer.Instant(obs.CatFork, "fork.prune", r.sim.Core.Ticks,
				map[string]any{"id": exp.ID, "rule": "twin", "insts": res.Insts})
			// Twin-pruned runs report the trunk's totals, which are not the
			// suffix-delta form the memo stores — drop any pending key.
			r.pendingMemo = nil
			res.Insts, res.Ticks = fs.final.Insts, fs.final.Ticks
			return res, out
		}
	}
}

// convergedAt reports whether the child is bit-identical to the golden
// trunk at the same committed-instruction count: equal architectural
// state (NaN-safe), equal full memory image (shared pages compare by
// pointer), equal kernel state. When it is, the child's remaining
// execution is exactly the golden suffix. The fault flags are frozen at
// this point — any outstanding taint entry would imply a state divergence
// while the window is open, and closes with the window otherwise — so
// early classification is exact.
func (r *Runner) convergedAt(fp *checkpoint.ForkPoint) bool {
	if r.sim.Core.Insts != fp.Core.Insts {
		return false
	}
	if !r.sim.Core.Arch.BitsEqual(&fp.Core.Arch) {
		return false
	}
	if !r.sim.Mem.ConvergedWith(fp.Mem) {
		return false
	}
	return reflect.DeepEqual(r.sim.Kernel.Snapshot(), fp.Kernel)
}

// EnableFork switches the whole pool to fork-server execution: the first
// runner builds the trunk and snapshot pool, every worker shares them
// (fork points are immutable, so sharing is lock-free), and RunAll
// dispatches experiments sorted by injection time.
func (p *Pool) EnableFork(opts ForkOptions) error {
	first := p.runners[0]
	if err := first.EnableFork(opts); err != nil {
		return err
	}
	for _, r := range p.runners[1:] {
		r.shareFork(first.fork)
	}
	return nil
}

// ForkStats returns the shared fork-server accounting (zero value when
// fork mode is off).
func (p *Pool) ForkStats() ForkStats { return p.runners[0].ForkStats() }

// forkEnabled reports whether the pool runs experiments through a fork
// server.
func (p *Pool) forkEnabled() bool { return p.runners[0].fork != nil }

// sortForFork orders experiment dispatch by earliest injection time so
// consecutive experiments fork from the same or neighboring snapshots
// (warm page maps, stable LRU). Returns a new slice; IDs are untouched.
func sortForFork(exps []Experiment) []Experiment {
	out := append([]Experiment(nil), exps...)
	sort.SliceStable(out, func(i, j int) bool {
		return earliestWhen(out[i]) < earliestWhen(out[j])
	})
	return out
}

func earliestWhen(e Experiment) uint64 {
	w := ^uint64(0)
	for _, f := range e.Faults {
		if f.When < w {
			w = f.When
		}
	}
	return w
}
