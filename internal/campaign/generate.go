package campaign

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

// GenConfig parameterizes uniform random fault generation — the paper's
// validation methodology: "each experiment injects a flip-bit fault,
// using a uniform distribution for the Location, Time and Behavior".
type GenConfig struct {
	// Locations to draw from (uniformly). Empty means all seven classes
	// of Fig. 5.
	Locations []core.Location
	// WindowInsts is the injection time range [1, WindowInsts], usually
	// the golden run's fault-injection window size.
	WindowInsts uint64
	// MinWhen/MaxWhen restrict the injection time to the inclusive slice
	// [MinWhen, MaxWhen] of the window (zero values mean the full
	// [1, WindowInsts] range). The adaptive campaign sampler draws each
	// stratum's batch from its own window slice this way.
	MinWhen, MaxWhen uint64
	// ThreadID targets a specific fi_activate_inst id.
	ThreadID int
	// CPU is the fault's target CPU name ("" = any).
	CPU string
	// Seed makes generation reproducible.
	Seed int64
}

// AllLocations are the seven injection location classes of Fig. 5.
func AllLocations() []core.Location {
	return []core.Location{
		core.LocIntReg, core.LocFloatReg, core.LocFetch, core.LocDecode,
		core.LocExec, core.LocMem, core.LocPC,
	}
}

// bitRange returns the meaningful bit-flip range per location.
func bitRange(loc core.Location) int {
	switch loc {
	case core.LocFetch:
		return 32 // instruction words are 32 bits
	case core.LocDecode:
		return 5 // register selectors are 5 bits
	case core.LocPC:
		return 32 // beyond bit 31 every flip is trivially wild
	default:
		return 64
	}
}

// GenerateUniform produces n single-fault experiments sampled uniformly
// over location, bit position, register and injection time.
func GenerateUniform(n int, gc GenConfig) []Experiment {
	locs := gc.Locations
	if len(locs) == 0 {
		locs = AllLocations()
	}
	if gc.WindowInsts == 0 {
		gc.WindowInsts = 1
	}
	// Injection times are drawn from [lo, hi]; the defaults reproduce the
	// historical full-window draw bit for bit (same RNG consumption).
	lo, hi := gc.MinWhen, gc.MaxWhen
	if lo == 0 {
		lo = 1
	}
	if hi == 0 || hi > gc.WindowInsts {
		hi = gc.WindowInsts
	}
	if hi < lo {
		hi = lo
	}
	rng := rand.New(rand.NewSource(gc.Seed))
	exps := make([]Experiment, n)
	for i := range exps {
		loc := locs[rng.Intn(len(locs))]
		f := core.Fault{
			Loc:      loc,
			Behavior: core.BehFlip,
			Bit:      rng.Intn(bitRange(loc)),
			ThreadID: gc.ThreadID,
			CPU:      gc.CPU,
			Base:     core.TimeInst,
			When:     lo + uint64(rng.Int63n(int64(hi-lo+1))),
			Occ:      1,
		}
		switch loc {
		case core.LocIntReg, core.LocFloatReg:
			f.Reg = rng.Intn(31) // exclude the hardwired zero register
		case core.LocDecode:
			f.Reg = rng.Intn(3) // operand selector
		}
		exps[i] = Experiment{ID: i, Faults: []core.Fault{f}}
	}
	return exps
}

// PaperSampleSize computes the number of experiments the paper's
// methodology would run: Leveugle sizing at 99% confidence, 1% margin,
// p=0.5, over the given fault population size.
func PaperSampleSize(populationN int64) int64 {
	return stats.SampleSize(populationN, 0.99, 0.01, 0.5)
}
