package campaign

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/asm"
	"repro/internal/taint"
)

// PCOutcome aggregates experiment outcomes by the guest PC the fault
// struck — the "which instruction is vulnerable" view that joins the
// profiler's symbol table with the campaign's five-class taxonomy.
type PCOutcome struct {
	PC     uint64 `json:"pc"`
	Func   string `json:"func,omitempty"`
	Offset uint64 `json:"offset,omitempty"`

	Total           int `json:"total"`
	Crashed         int `json:"crashed"`
	NonPropagated   int `json:"nonPropagated"`
	StrictlyCorrect int `json:"strictlyCorrect"`
	Correct         int `json:"correct"`
	SDC             int `json:"sdc"`

	// Propagation stats, present when the campaign ran with taint
	// tracking: over the TaintN experiments at this site that carried a
	// PropReport summary, the mean tainted-instruction count and the
	// fraction whose corruption reached program output.
	TaintN           int     `json:"taintN,omitempty"`
	MeanTaintedInsts float64 `json:"meanTaintedInsts,omitempty"`
	PctReachedOutput float64 `json:"pctReachedOutput,omitempty"`

	sumTainted    uint64
	reachedOutput int
}

// Vulnerable returns the count of unacceptable outcomes at this PC.
func (p PCOutcome) Vulnerable() int { return p.Crashed + p.SDC }

func (p *PCOutcome) addProp(s *taint.Summary) {
	if s == nil {
		return
	}
	p.TaintN++
	p.sumTainted += s.TaintedInsts
	if s.ReachedOutput {
		p.reachedOutput++
	}
}

func (p *PCOutcome) finishProp() {
	if p.TaintN == 0 {
		return
	}
	p.MeanTaintedInsts = float64(p.sumTainted) / float64(p.TaintN)
	p.PctReachedOutput = 100 * float64(p.reachedOutput) / float64(p.TaintN)
}

func (p *PCOutcome) add(o Outcome) {
	p.Total++
	switch o {
	case OutcomeCrashed:
		p.Crashed++
	case OutcomeNonPropagated:
		p.NonPropagated++
	case OutcomeStrictlyCorrect:
		p.StrictlyCorrect++
	case OutcomeCorrect:
		p.Correct++
	case OutcomeSDC:
		p.SDC++
	}
}

// AttributeByPC buckets results by injection PC, symbolizing each
// bucket against syms (nil syms leaves Func empty — PCs still group).
// Results whose fault never fired, or fired on a stage that carries no
// PC, are counted under the returned unattributed total. Rows come back
// sorted most-vulnerable first (Crashed+SDC desc, then Total desc, then
// PC asc).
func AttributeByPC(results []Result, syms asm.SymbolTable) (rows []PCOutcome, unattributed int) {
	byPC := make(map[uint64]*PCOutcome)
	for _, r := range results {
		if !r.InjPCValid {
			unattributed++
			continue
		}
		p := byPC[r.InjPC]
		if p == nil {
			p = &PCOutcome{PC: r.InjPC}
			if s, ok := syms.Lookup(r.InjPC); ok {
				p.Func, p.Offset = s.Name, r.InjPC-s.Addr
			}
			byPC[r.InjPC] = p
		}
		p.add(r.Outcome)
		p.addProp(r.Prop)
	}
	rows = make([]PCOutcome, 0, len(byPC))
	for _, p := range byPC {
		p.finishProp()
		rows = append(rows, *p)
	}
	sort.Slice(rows, func(i, j int) bool {
		if a, b := rows[i].Vulnerable(), rows[j].Vulnerable(); a != b {
			return a > b
		}
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].PC < rows[j].PC
	})
	return rows, unattributed
}

// WritePCReport renders the attribution as a ranked text table. When
// any row carries propagation stats (campaign ran with taint tracking),
// two extra columns show the mean tainted-instruction count and the
// percentage of faults at that site whose corruption reached output.
func WritePCReport(w io.Writer, rows []PCOutcome, unattributed int) error {
	attributed, withTaint := 0, false
	for _, r := range rows {
		attributed += r.Total
		withTaint = withTaint || r.TaintN > 0
	}
	if _, err := fmt.Fprintf(w, "fault outcomes by injection PC: %d experiments at %d sites (%d unattributed)\n",
		attributed, len(rows), unattributed); err != nil {
		return err
	}
	hdr := fmt.Sprintf("%-18s %-28s %6s %6s %6s %8s %8s %8s",
		"PC", "SYMBOL", "TOTAL", "CRASH", "SDC", "NONPROP", "STRICT", "CORRECT")
	if withTaint {
		hdr += fmt.Sprintf(" %8s %6s", "TAINTED", "%OUT")
	}
	if _, err := fmt.Fprintln(w, hdr); err != nil {
		return err
	}
	for _, r := range rows {
		sym := r.Func
		if sym != "" && r.Offset != 0 {
			sym = fmt.Sprintf("%s+0x%x", r.Func, r.Offset)
		}
		if sym == "" {
			sym = "?"
		}
		line := fmt.Sprintf("0x%-16x %-28s %6d %6d %6d %8d %8d %8d",
			r.PC, sym, r.Total, r.Crashed, r.SDC, r.NonPropagated, r.StrictlyCorrect, r.Correct)
		if withTaint {
			line += fmt.Sprintf(" %8.1f %6.1f", r.MeanTaintedInsts, r.PctReachedOutput)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
