package prof

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/asm"
)

// maxStackDepth bounds the shadow call stack; recursion past it is
// counted but not expanded (folded output stays finite for runaway
// faulted control flow).
const maxStackDepth = 128

// stackNode is one frame path in the shadow-call-stack tree. count is
// the number of retired instructions sampled with this path on top,
// updated atomically; the children map shape is guarded by the tree
// mutex so live HTTP readers can walk it mid-simulation.
type stackNode struct {
	fn       string
	count    uint64
	parent   *stackNode
	children map[string]*stackNode
}

// StackTree maintains a shadow call stack (pushed on call commits,
// popped on return commits) and a tree of sampled stack paths — the
// data behind the folded "flamegraph collapsed" export.
type StackTree struct {
	mu       sync.Mutex // guards children-map inserts and reader walks
	syms     asm.SymbolTable
	root     *stackNode
	cur      *stackNode
	depth    int
	overflow int // pushes beyond maxStackDepth, not expanded
}

func newStackTree() *StackTree {
	root := &stackNode{}
	return &StackTree{root: root, cur: root}
}

// frameName symbolizes a frame entry address.
func (t *StackTree) frameName(addr uint64) string {
	if s, ok := t.syms.Lookup(addr); ok {
		return s.Name
	}
	return fmt.Sprintf("0x%x", addr)
}

// child descends into (creating if needed) the named child of n.
func (t *StackTree) child(n *stackNode, name string) *stackNode {
	if c := n.children[name]; c != nil {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := n.children[name]
	if c == nil {
		c = &stackNode{fn: name, parent: n}
		if n.children == nil {
			n.children = make(map[string]*stackNode)
		}
		n.children[name] = c
	}
	return c
}

// push enters the frame starting at callee.
func (t *StackTree) push(callee uint64) {
	if t.depth >= maxStackDepth {
		t.overflow++
		return
	}
	t.cur = t.child(t.cur, t.frameName(callee))
	t.depth++
}

// pop leaves the current frame. Unmatched pops (returns into
// checkpoint-truncated stacks, faulted RA values) safely pin at root.
func (t *StackTree) pop() {
	if t.overflow > 0 {
		t.overflow--
		return
	}
	if t.cur.parent != nil {
		t.cur = t.cur.parent
		t.depth--
	}
}

// sample charges one retired instruction at pc to the current stack.
// When pc sits inside the function on top of the stack (the common
// case) this is a single atomic add; otherwise the sample lands on a
// transient leaf named after pc's own function, so pre-main code and
// faulted control flow still show up truthfully.
func (t *StackTree) sample(pc uint64) {
	leaf := t.frameName(pc)
	n := t.cur
	if n.fn != leaf {
		n = t.child(n, leaf)
	}
	atomic.AddUint64(&n.count, 1)
}

// reset re-roots the shadow stack (checkpoint restore) while keeping
// accumulated samples.
func (t *StackTree) reset() {
	t.cur = t.root
	t.depth = 0
	t.overflow = 0
}

// StackCount is one folded-stack line: frame path and sample count.
type StackCount struct {
	Stack string // "frame;frame;frame"
	Count uint64
}

// Folded snapshots the tree as folded-stack lines sorted by path —
// the flamegraph.pl / speedscope "collapsed" input format. Safe to
// call while the simulation runs.
func (t *StackTree) Folded() []StackCount {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []StackCount
	var walk func(n *stackNode, path string)
	walk = func(n *stackNode, path string) {
		if n.fn != "" {
			if path == "" {
				path = n.fn
			} else {
				path += ";" + n.fn
			}
			if c := atomic.LoadUint64(&n.count); c > 0 {
				out = append(out, StackCount{Stack: path, Count: c})
			}
		}
		for _, name := range sortedChildNames(n) {
			walk(n.children[name], path)
		}
	}
	walk(t.root, "")
	sort.Slice(out, func(i, j int) bool { return out[i].Stack < out[j].Stack })
	return out
}

func sortedChildNames(n *stackNode) []string {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
