package prof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
)

func TestProfilerDenseAndSparse(t *testing.T) {
	p := New(0x1000, 2) // dense window covers 0x1000 and 0x1004
	p.OnCommit(0x1000, 1)
	p.OnCommit(0x1004, 3)
	p.OnCommit(0x2000, 10) // outside the window: sparse overflow
	p.OnIMiss(0x1000)
	p.OnDMiss(0x1004)
	p.OnMispredict(0x2000)
	p.OnStall(0x1000, StallMem, 5)
	p.OnStall(0x1000, StallCause(99), 1) // out of range clamps to drain

	snap := p.Snapshot()
	if snap.TotalInsts != 3 {
		t.Errorf("TotalInsts = %d, want 3", snap.TotalInsts)
	}
	// Commit-to-commit deltas: 1, 2, 7 — cycles sum to the final tick.
	if snap.TotalCycles != 10 {
		t.Errorf("TotalCycles = %d, want 10", snap.TotalCycles)
	}
	byPC := map[uint64]PCStat{}
	for _, st := range snap.PCs {
		byPC[st.PC] = st
	}
	if st := byPC[0x1000]; st.Insts != 1 || st.Cycles != 1 || st.IMisses != 1 ||
		st.Stalls[StallMem] != 5 || st.Stalls[StallDrain] != 1 {
		t.Errorf("0x1000 = %+v", st)
	}
	if st := byPC[0x1004]; st.Insts != 1 || st.Cycles != 2 || st.DMisses != 1 {
		t.Errorf("0x1004 = %+v", st)
	}
	if st := byPC[0x2000]; st.Insts != 1 || st.Cycles != 7 || st.Mispredict != 1 {
		t.Errorf("0x2000 (sparse) = %+v", st)
	}
}

func TestProfilerTickRewind(t *testing.T) {
	p := New(0x1000, 4)
	p.OnCommit(0x1000, 100)
	p.OnCommit(0x1004, 5) // checkpoint restore rewound the clock
	p.OnCommit(0x1008, 8)
	snap := p.Snapshot()
	// 100 + 0 (rewind resets the baseline) + 3.
	if snap.TotalCycles != 103 {
		t.Errorf("TotalCycles = %d, want 103", snap.TotalCycles)
	}
}

func TestMergeProfiles(t *testing.T) {
	mk := func() *Profiler {
		p := New(0x1000, 2)
		p.OnCommit(0x1000, 2)
		p.OnCommit(0x1004, 4)
		return p
	}
	a, b := mk().Snapshot(), mk().Snapshot()
	m := MergeProfiles(a, b, nil)
	if m.TotalInsts != 4 || m.TotalCycles != 8 {
		t.Errorf("merged totals = %d insts / %d cycles", m.TotalInsts, m.TotalCycles)
	}
	if len(m.PCs) != 2 || m.PCs[0].Insts != 2 || m.PCs[1].Cycles != 4 {
		t.Errorf("merged PCs = %+v", m.PCs)
	}
}

func TestStackTreeFolded(t *testing.T) {
	syms := asm.SymbolTable{
		{Name: "_start", Addr: 0x1000, Size: 0x10},
		{Name: "fn_a", Addr: 0x1010, Size: 0x10},
		{Name: "fn_b", Addr: 0x1020, Size: 0x10},
	}
	p := New(0x1000, 12)
	p.SetSymbols(syms)

	p.OnStackSample(0x1000) // root frame
	p.OnCall(0x1010)
	p.OnStackSample(0x1010)
	p.OnStackSample(0x1014)
	p.OnCall(0x1020)
	p.OnStackSample(0x1020)
	p.OnReturn()
	p.OnStackSample(0x1018)
	p.OnReturn()
	p.OnReturn() // extra pop pins at root, must not panic

	var buf bytes.Buffer
	if err := p.Snapshot().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	// Execution begins in _start without a call, so its samples land on
	// a transient root-level leaf; called frames chain from the root.
	out := buf.String()
	for _, want := range []string{
		"_start 1\n",
		"fn_a 3\n",
		"fn_a;fn_b 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
}

func TestStackTreeDepthBound(t *testing.T) {
	p := New(0x1000, 4)
	for i := 0; i < maxStackDepth+50; i++ {
		p.OnCall(0x1000)
	}
	p.OnStackSample(0x1000) // must not blow up past the bound
	for i := 0; i < maxStackDepth+50; i++ {
		p.OnReturn()
	}
	p.ResetStack()
	p.OnStackSample(0x1000)
	if len(p.Snapshot().Folded) == 0 {
		t.Error("no folded samples after reset")
	}
}
