package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/asm"
)

// PCStat is one profiled program counter with symbol attribution.
type PCStat struct {
	PC     uint64 `json:"pc"`
	Func   string `json:"func,omitempty"` // covering function, "" when stripped
	Offset uint64 `json:"offset"`         // pc - function entry

	Insts      uint64 `json:"insts"`
	Cycles     uint64 `json:"cycles"`
	IMisses    uint64 `json:"imisses,omitempty"`
	DMisses    uint64 `json:"dmisses,omitempty"`
	Mispredict uint64 `json:"mispredicts,omitempty"`

	Stalls [NumStallCauses]uint64 `json:"stalls,omitempty"`
}

// FuncStat aggregates PCStats over one function.
type FuncStat struct {
	Name string `json:"name"`
	Addr uint64 `json:"addr"`

	Insts      uint64 `json:"insts"`
	Cycles     uint64 `json:"cycles"`
	IMisses    uint64 `json:"imisses,omitempty"`
	DMisses    uint64 `json:"dmisses,omitempty"`
	Mispredict uint64 `json:"mispredicts,omitempty"`
}

// Profile is an immutable snapshot of a Profiler: plain data, safe to
// serve, merge and aggregate after (or while) the simulation runs.
type Profile struct {
	TotalInsts  uint64       `json:"total_insts"`
	TotalCycles uint64       `json:"total_cycles"`
	PCs         []PCStat     `json:"pcs"`    // sorted by PC, zero rows omitted
	Folded      []StackCount `json:"folded"` // folded call-stack samples

	syms asm.SymbolTable
}

// Snapshot captures the profiler's current state with atomic loads; it
// is safe to call from an HTTP handler while the simulation commits
// instructions.
func (p *Profiler) Snapshot() *Profile {
	out := &Profile{syms: p.syms}
	addPC := func(pc uint64, s *Sample) {
		st := PCStat{
			PC:         pc,
			Insts:      atomic.LoadUint64(&s.Insts),
			Cycles:     atomic.LoadUint64(&s.Cycles),
			IMisses:    atomic.LoadUint64(&s.IMisses),
			DMisses:    atomic.LoadUint64(&s.DMisses),
			Mispredict: atomic.LoadUint64(&s.Mispredict),
		}
		for c := range st.Stalls {
			st.Stalls[c] = atomic.LoadUint64(&s.Stalls[c])
		}
		if st == (PCStat{PC: pc}) {
			return
		}
		if sym, ok := p.syms.Lookup(pc); ok {
			st.Func, st.Offset = sym.Name, pc-sym.Addr
		}
		out.TotalInsts += st.Insts
		out.TotalCycles += st.Cycles
		out.PCs = append(out.PCs, st)
	}
	for i := range p.dense {
		addPC(p.textBase+uint64(i)*4, &p.dense[i])
	}
	p.mu.Lock()
	sparsePCs := make([]uint64, 0, len(p.sparse))
	for pc := range p.sparse {
		sparsePCs = append(sparsePCs, pc)
	}
	p.mu.Unlock()
	sort.Slice(sparsePCs, func(i, j int) bool { return sparsePCs[i] < sparsePCs[j] })
	for _, pc := range sparsePCs {
		p.mu.Lock()
		s := p.sparse[pc]
		p.mu.Unlock()
		addPC(pc, s)
	}
	sort.Slice(out.PCs, func(i, j int) bool { return out.PCs[i].PC < out.PCs[j].PC })
	out.Folded = p.stack.Folded()
	return out
}

// Merge folds other into p (campaign runners each profile their own
// simulator; the final report is the merge).
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	p.TotalInsts += other.TotalInsts
	p.TotalCycles += other.TotalCycles
	if p.syms == nil {
		p.syms = other.syms
	}

	byPC := make(map[uint64]int, len(p.PCs))
	for i := range p.PCs {
		byPC[p.PCs[i].PC] = i
	}
	for _, st := range other.PCs {
		if i, ok := byPC[st.PC]; ok {
			d := &p.PCs[i]
			d.Insts += st.Insts
			d.Cycles += st.Cycles
			d.IMisses += st.IMisses
			d.DMisses += st.DMisses
			d.Mispredict += st.Mispredict
			for c := range d.Stalls {
				d.Stalls[c] += st.Stalls[c]
			}
		} else {
			byPC[st.PC] = len(p.PCs)
			p.PCs = append(p.PCs, st)
		}
	}
	sort.Slice(p.PCs, func(i, j int) bool { return p.PCs[i].PC < p.PCs[j].PC })

	byStack := make(map[string]int, len(p.Folded))
	for i := range p.Folded {
		byStack[p.Folded[i].Stack] = i
	}
	for _, sc := range other.Folded {
		if i, ok := byStack[sc.Stack]; ok {
			p.Folded[i].Count += sc.Count
		} else {
			byStack[sc.Stack] = len(p.Folded)
			p.Folded = append(p.Folded, sc)
		}
	}
	sort.Slice(p.Folded, func(i, j int) bool { return p.Folded[i].Stack < p.Folded[j].Stack })
}

// MergeProfiles merges any number of snapshots into a fresh profile.
func MergeProfiles(ps ...*Profile) *Profile {
	out := &Profile{}
	for _, p := range ps {
		out.Merge(p)
	}
	return out
}

// ByFunc aggregates the profile per function, sorted by cycles
// descending (ties: instructions, then name). PCs without a covering
// symbol aggregate under the empty name.
func (p *Profile) ByFunc() []FuncStat {
	idx := make(map[string]int)
	var out []FuncStat
	for _, st := range p.PCs {
		i, ok := idx[st.Func]
		if !ok {
			i = len(out)
			idx[st.Func] = i
			out = append(out, FuncStat{Name: st.Func, Addr: st.PC - st.Offset})
		}
		f := &out[i]
		f.Insts += st.Insts
		f.Cycles += st.Cycles
		f.IMisses += st.IMisses
		f.DMisses += st.DMisses
		f.Mispredict += st.Mispredict
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		if out[i].Insts != out[j].Insts {
			return out[i].Insts > out[j].Insts
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AttributedInsts returns how many retired instructions landed inside
// a named function, and the total — the ≥95%-attribution acceptance
// metric.
func (p *Profile) AttributedInsts() (named, total uint64) {
	for _, st := range p.PCs {
		total += st.Insts
		if st.Func != "" {
			named += st.Insts
		}
	}
	return named, total
}

// TopPCs returns the n hottest PCs by cycles (ties: instructions, then
// PC), without mutating the profile's PC order.
func (p *Profile) TopPCs(n int) []PCStat {
	top := append([]PCStat(nil), p.PCs...)
	sort.Slice(top, func(i, j int) bool {
		if top[i].Cycles != top[j].Cycles {
			return top[i].Cycles > top[j].Cycles
		}
		if top[i].Insts != top[j].Insts {
			return top[i].Insts > top[j].Insts
		}
		return top[i].PC < top[j].PC
	})
	if n > 0 && n < len(top) {
		top = top[:n]
	}
	return top
}

// WriteTop renders the ranked top-N text report: a per-function
// summary followed by the hottest PCs.
func (p *Profile) WriteTop(w io.Writer, n int) error {
	named, total := p.AttributedInsts()
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(named) / float64(total)
	}
	if _, err := fmt.Fprintf(w,
		"guest profile: %d insts, %d cycles, %.1f%% attributed to named functions\n\n",
		p.TotalInsts, p.TotalCycles, pct); err != nil {
		return err
	}

	fmt.Fprintf(w, "%-24s %12s %6s %12s %8s %8s %8s\n",
		"FUNC", "CYCLES", "CYC%", "INSTS", "IMISS", "DMISS", "MISPRED")
	for _, f := range p.ByFunc() {
		name := f.Name
		if name == "" {
			name = "<unknown>"
		}
		cp := 0.0
		if p.TotalCycles > 0 {
			cp = 100 * float64(f.Cycles) / float64(p.TotalCycles)
		}
		fmt.Fprintf(w, "%-24s %12d %5.1f%% %12d %8d %8d %8d\n",
			name, f.Cycles, cp, f.Insts, f.IMisses, f.DMisses, f.Mispredict)
	}

	fmt.Fprintf(w, "\n%-10s %-28s %12s %12s %8s %8s %8s  %s\n",
		"PC", "WHERE", "CYCLES", "INSTS", "IMISS", "DMISS", "MISPRED", "STALLS")
	for _, st := range p.TopPCs(n) {
		where := fmt.Sprintf("0x%x", st.PC)
		if st.Func != "" {
			where = fmt.Sprintf("%s+0x%x", st.Func, st.Offset)
		}
		stalls := ""
		for c := StallCause(0); c < NumStallCauses; c++ {
			if v := st.Stalls[c]; v > 0 {
				if stalls != "" {
					stalls += " "
				}
				stalls += fmt.Sprintf("%s:%d", c, v)
			}
		}
		fmt.Fprintf(w, "0x%08x %-28s %12d %12d %8d %8d %8d  %s\n",
			st.PC, where, st.Cycles, st.Insts, st.IMisses, st.DMisses, st.Mispredict, stalls)
	}
	return nil
}

// WriteJSON renders the full profile as JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteFolded renders the folded-stack ("flamegraph collapsed")
// format: one "frame;frame;frame count" line per sampled stack, ready
// for flamegraph.pl or speedscope.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, sc := range p.Folded {
		if _, err := fmt.Fprintf(w, "%s %d\n", sc.Stack, sc.Count); err != nil {
			return err
		}
	}
	return nil
}
