// Package prof is the guest-program profiler: an exact per-PC account
// of retired instructions, cycles, cache misses, branch mispredicts and
// pipeline stall causes, collected through cheap hooks in the CPU
// models and symbolized against the program's function symbol table.
// It plays the role of gem5's per-PC m5out statistics for the
// simulated application, with one addition gem5 lacks: per-PC
// fault-injection outcome attribution (see Attribution in
// internal/campaign).
//
// The profiler is hot-loop safe in the same way the obs registry is:
// a nil *Profiler is never touched (every core hook sits behind a
// single nil-check branch), and an attached profiler only performs
// array-indexed atomic adds, so live HTTP readers can snapshot it
// while a simulation runs without stopping it.
package prof

import (
	"sync"
	"sync/atomic"

	"repro/internal/asm"
)

// StallCause classifies why the pipelined model failed to commit an
// instruction on a given cycle.
type StallCause int

// Stall causes, in render order.
const (
	StallFetch    StallCause = iota // front end waiting on L1I / redirect
	StallMem                        // memory stage busy on a data access
	StallSquash                     // refilling after a mispredict squash
	StallDrain                      // serialization / pipeline drain
	NumStallCauses
)

// String names a stall cause for reports.
func (s StallCause) String() string {
	switch s {
	case StallFetch:
		return "fetch"
	case StallMem:
		return "mem"
	case StallSquash:
		return "squash"
	case StallDrain:
		return "drain"
	default:
		return "?"
	}
}

// Sample is the per-PC counter block. All fields are updated with
// atomic adds on the simulation thread and read with atomic loads by
// snapshotters, so a live /profile scrape never tears a counter.
type Sample struct {
	Insts      uint64 // retired instructions
	Cycles     uint64 // ticks attributed to this PC (sums to total ticks)
	IMisses    uint64 // L1I misses fetching this PC
	DMisses    uint64 // L1D misses by this PC's loads/stores
	Mispredict uint64 // branch mispredicts resolved at this PC

	Stalls [NumStallCauses]uint64 // cycles lost while this PC was oldest in flight
}

// Profiler accumulates per-PC samples for one core. Create one per
// simulator; merge across campaign runners with Merge.
type Profiler struct {
	textBase uint64
	dense    []Sample // indexed by (pc-textBase)/4
	syms     asm.SymbolTable

	mu       sync.Mutex        // guards sparse map shape (values still atomic)
	sparse   map[uint64]*Sample // PCs outside [textBase, textBase+4*len)
	lastTick uint64             // commit-to-commit cycle attribution state

	stack *StackTree
}

// New builds a profiler covering textWords instructions starting at
// textBase. PCs outside the window (none in practice — the kernel runs
// guest text only) fall into a sparse overflow map.
func New(textBase uint64, textWords int) *Profiler {
	return &Profiler{
		textBase: textBase,
		dense:    make([]Sample, textWords),
		sparse:   make(map[uint64]*Sample),
		stack:    newStackTree(),
	}
}

// ForProgram builds a profiler sized and symbolized for a program.
func ForProgram(p *asm.Program) *Profiler {
	pr := New(p.TextBase, len(p.Text))
	pr.SetSymbols(p.Symbols())
	return pr
}

// SetSymbols attaches the symbol table used by reports and by the
// shadow call stack. Safe to call before the simulation starts.
func (p *Profiler) SetSymbols(t asm.SymbolTable) {
	p.syms = t
	p.stack.syms = t
}

// Symbols returns the attached symbol table (possibly nil).
func (p *Profiler) Symbols() asm.SymbolTable { return p.syms }

// sample returns the counter block for pc, allocating a sparse entry
// for out-of-window PCs (a faulted PC can point anywhere).
func (p *Profiler) sample(pc uint64) *Sample {
	if pc >= p.textBase {
		if i := (pc - p.textBase) / 4; i < uint64(len(p.dense)) {
			return &p.dense[i]
		}
	}
	p.mu.Lock()
	s := p.sparse[pc]
	if s == nil {
		s = new(Sample)
		p.sparse[pc] = s
	}
	p.mu.Unlock()
	return s
}

// OnCommit records one retired instruction at pc, attributing every
// cycle since the previous commit to it (so per-PC cycles sum exactly
// to total ticks: stall cycles land on the instruction that was
// waiting to commit). ticks is the core's cycle counter after the
// instruction completed.
func (p *Profiler) OnCommit(pc uint64, ticks uint64) {
	s := p.sample(pc)
	atomic.AddUint64(&s.Insts, 1)
	if ticks < p.lastTick {
		p.lastTick = ticks // checkpoint restore rewound the clock
	}
	if d := ticks - p.lastTick; d > 0 {
		atomic.AddUint64(&s.Cycles, d)
		p.lastTick = ticks
	}
}

// OnIMiss records an L1I miss fetching pc.
func (p *Profiler) OnIMiss(pc uint64) {
	atomic.AddUint64(&p.sample(pc).IMisses, 1)
}

// OnDMiss records an L1D miss by the instruction at pc.
func (p *Profiler) OnDMiss(pc uint64) {
	atomic.AddUint64(&p.sample(pc).DMisses, 1)
}

// OnMispredict records a branch mispredict resolved at pc.
func (p *Profiler) OnMispredict(pc uint64) {
	atomic.AddUint64(&p.sample(pc).Mispredict, 1)
}

// OnStall charges n stalled cycles with the given cause to the oldest
// in-flight PC (pipelined model only; cycle *attribution* still comes
// from OnCommit — stall counters are a diagnostic breakdown).
func (p *Profiler) OnStall(pc uint64, cause StallCause, n uint64) {
	if cause < 0 || cause >= NumStallCauses {
		cause = StallDrain
	}
	atomic.AddUint64(&p.sample(pc).Stalls[cause], n)
}

// OnCall pushes callee onto the shadow call stack (BSR/JSR commit).
func (p *Profiler) OnCall(callee uint64) { p.stack.push(callee) }

// OnReturn pops the shadow call stack (RET commit).
func (p *Profiler) OnReturn() { p.stack.pop() }

// OnStackSample charges one retired instruction to the current shadow
// stack (called at commit alongside OnCommit).
func (p *Profiler) OnStackSample(pc uint64) { p.stack.sample(pc) }

// ResetStack clears shadow-stack state (checkpoint restore lands the
// guest mid-call-chain; the tree keeps prior samples but re-roots).
func (p *Profiler) ResetStack() { p.stack.reset() }
