package minic

import "repro/internal/isa"

// builtin describes a compiler intrinsic.
type builtin struct {
	args []Type
	ret  Type
}

// builtins exposed to mini-C programs. fi_activate and fi_checkpoint are
// the paper's two-function user API (Section III.A): fi_activate_inst(id)
// and fi_read_init_all().
var builtins = map[string]builtin{
	"fi_activate":   {args: []Type{TypeInt}, ret: TypeVoid},
	"fi_checkpoint": {args: nil, ret: TypeVoid},
	"exit":          {args: []Type{TypeInt}, ret: TypeVoid},
	"putc":          {args: []Type{TypeInt}, ret: TypeVoid},
	"tid":           {args: nil, ret: TypeInt},
	"spawn":         {args: []Type{TypeVoid, TypeInt}, ret: TypeInt}, // (func, arg)
	"join":          {args: []Type{TypeInt}, ret: TypeVoid},
	"yield":         {args: nil, ret: TypeVoid},
	"thread_exit":   {args: nil, ret: TypeVoid},
	"itof":          {args: []Type{TypeInt}, ret: TypeFloat},
	"ftoi":          {args: []Type{TypeFloat}, ret: TypeInt},
	"fsqrt":         {args: []Type{TypeFloat}, ret: TypeFloat},
	"fabs":          {args: []Type{TypeFloat}, ret: TypeFloat},
}

func (c *compiler) genCall(x *Call) (Type, error) {
	if bi, ok := builtins[x.Name]; ok {
		return c.genBuiltin(x, bi)
	}
	fn, ok := c.funcs[x.Name]
	if !ok {
		return 0, c.errf("call to undefined function %q (line %d)", x.Name, x.Line)
	}
	if len(x.Args) != len(fn.Params) {
		return 0, c.errf("%q wants %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}

	savedInt, savedFP := c.spillTemps()

	// Evaluate arguments left to right onto the (now empty) temp stacks,
	// remembering where each landed.
	type argSlot struct {
		ty  Type
		reg isa.Reg
	}
	slots := make([]argSlot, len(x.Args))
	for i, a := range x.Args {
		ty, err := c.genExpr(a)
		if err != nil {
			return 0, err
		}
		if ty != fn.Params[i].Type {
			return 0, c.errf("argument %d of %q: have %v, want %v", i+1, x.Name, ty, fn.Params[i].Type)
		}
		if ty == TypeFloat {
			slots[i] = argSlot{ty: ty, reg: c.topFP()}
		} else {
			slots[i] = argSlot{ty: ty, reg: c.topInt()}
		}
	}
	// Move argument values into the calling convention registers
	// (a0..a5 for ints, f16..f21 for floats, by position).
	for i := len(slots) - 1; i >= 0; i-- {
		s := slots[i]
		if s.ty == TypeFloat {
			c.b.FMov(c.popFP(), isa.Reg(16+i))
		} else {
			c.b.Mov(c.popInt(), isa.Reg(16+i))
		}
	}
	c.b.Br(isa.OpBSR, isa.RegRA, "fn_"+x.Name)

	c.restoreTemps(savedInt, savedFP)
	// Push the result.
	switch fn.Ret {
	case TypeInt:
		r, err := c.pushInt()
		if err != nil {
			return 0, err
		}
		c.b.Mov(isa.RegV0, r)
	case TypeFloat:
		r, err := c.pushFP()
		if err != nil {
			return 0, err
		}
		c.b.FMov(0, r)
	}
	return fn.Ret, nil
}

// spillTemps saves all live expression temps to the frame's spill area
// and empties the stacks. Returns the saved depths.
func (c *compiler) spillTemps() (int, int) {
	for i := 0; i < c.intDepth; i++ {
		c.b.Mem(isa.OpSTQ, intTemps[i], isa.RegFP, int32(c.spillIntOff+int64(i)*8))
	}
	for i := 0; i < c.fpDepth; i++ {
		c.b.Mem(isa.OpSTT, fpTemps[i], isa.RegFP, int32(c.spillFpOff+int64(i)*8))
	}
	si, sf := c.intDepth, c.fpDepth
	c.intDepth, c.fpDepth = 0, 0
	return si, sf
}

// restoreTemps reloads spilled temps and restores the stack depths.
func (c *compiler) restoreTemps(savedInt, savedFP int) {
	for i := 0; i < savedInt; i++ {
		c.b.Mem(isa.OpLDQ, intTemps[i], isa.RegFP, int32(c.spillIntOff+int64(i)*8))
	}
	for i := 0; i < savedFP; i++ {
		c.b.Mem(isa.OpLDT, fpTemps[i], isa.RegFP, int32(c.spillFpOff+int64(i)*8))
	}
	c.intDepth, c.fpDepth = savedInt, savedFP
}

// genBuiltin emits a compiler intrinsic.
func (c *compiler) genBuiltin(x *Call, bi builtin) (Type, error) {
	argc := len(bi.args)
	if len(x.Args) != argc {
		return 0, c.errf("%q wants %d arguments, got %d (line %d)", x.Name, argc, len(x.Args), x.Line)
	}

	switch x.Name {
	case "itof":
		if ty, err := c.genExprTyped(x.Args[0], TypeInt); err != nil {
			return ty, err
		}
		r := c.popInt()
		f, err := c.pushFP()
		if err != nil {
			return 0, err
		}
		c.b.Mem(isa.OpSTQ, r, isa.RegFP, int32(c.convOff))
		c.b.Mem(isa.OpLDT, f, isa.RegFP, int32(c.convOff))
		c.b.FP(isa.FnCVTQT, isa.ZeroReg, f, f)
		return TypeFloat, nil

	case "ftoi":
		if ty, err := c.genExprTyped(x.Args[0], TypeFloat); err != nil {
			return ty, err
		}
		f := c.popFP()
		r, err := c.pushInt()
		if err != nil {
			return 0, err
		}
		c.b.FP(isa.FnCVTTQ, isa.ZeroReg, f, f)
		c.b.Mem(isa.OpSTT, f, isa.RegFP, int32(c.convOff))
		c.b.Mem(isa.OpLDQ, r, isa.RegFP, int32(c.convOff))
		return TypeInt, nil

	case "fsqrt":
		if ty, err := c.genExprTyped(x.Args[0], TypeFloat); err != nil {
			return ty, err
		}
		f := c.topFP()
		c.b.FP(isa.FnSQRTT, isa.ZeroReg, f, f)
		return TypeFloat, nil

	case "fabs":
		if ty, err := c.genExprTyped(x.Args[0], TypeFloat); err != nil {
			return ty, err
		}
		f := c.topFP()
		c.b.FP(isa.FnCPYS, isa.ZeroReg, f, f) // sign of f31 (+0.0)
		return TypeFloat, nil

	case "fi_activate":
		if ty, err := c.genExprTyped(x.Args[0], TypeInt); err != nil {
			return ty, err
		}
		savedInt, savedFP := c.spillTempsKeepTop(1)
		c.b.Mov(c.popInt(), isa.RegA0)
		c.b.Pal(isa.PalFIActivate)
		c.restoreTemps(savedInt, savedFP)
		return TypeVoid, nil

	case "fi_checkpoint":
		c.b.Pal(isa.PalFIInit)
		return TypeVoid, nil

	case "spawn":
		// First argument must be a bare function name.
		fnRef, ok := x.Args[0].(*Ident)
		if !ok {
			return 0, c.errf("spawn wants a function name as its first argument")
		}
		target, ok := c.funcs[fnRef.Name]
		if !ok {
			return 0, c.errf("spawn of undefined function %q", fnRef.Name)
		}
		if len(target.Params) > 1 {
			return 0, c.errf("spawned function %q must take at most one int argument", fnRef.Name)
		}
		if ty, err := c.genExprTyped(x.Args[1], TypeInt); err != nil {
			return ty, err
		}
		savedInt, savedFP := c.spillTempsKeepTop(1)
		c.b.Mov(c.popInt(), isa.RegA1)
		c.b.LA(isa.RegA0, "fn_"+fnRef.Name)
		return c.syscallResult(isa.SysSpawn, savedInt, savedFP, TypeInt)

	case "exit", "putc", "join":
		if ty, err := c.genExprTyped(x.Args[0], TypeInt); err != nil {
			return ty, err
		}
		savedInt, savedFP := c.spillTempsKeepTop(1)
		c.b.Mov(c.popInt(), isa.RegA0)
		num := map[string]uint64{"exit": isa.SysExit, "putc": isa.SysPutc, "join": isa.SysJoin}[x.Name]
		return c.syscallResult(num, savedInt, savedFP, TypeVoid)

	case "tid":
		savedInt, savedFP := c.spillTempsKeepTop(0)
		return c.syscallResult(isa.SysGetTID, savedInt, savedFP, TypeInt)

	case "yield":
		savedInt, savedFP := c.spillTempsKeepTop(0)
		return c.syscallResult(isa.SysYield, savedInt, savedFP, TypeVoid)

	case "thread_exit":
		savedInt, savedFP := c.spillTempsKeepTop(0)
		c.b.LoadImm(isa.RegA0, 0)
		return c.syscallResult(isa.SysThreadExit, savedInt, savedFP, TypeVoid)
	}
	return 0, c.errf("unimplemented builtin %q", x.Name)
}

// genExprTyped evaluates an expression and checks its type.
func (c *compiler) genExprTyped(e Expr, want Type) (Type, error) {
	ty, err := c.genExpr(e)
	if err != nil {
		return ty, err
	}
	if ty != want {
		return ty, c.errf("expected %v expression, got %v", want, ty)
	}
	return ty, nil
}

// spillTempsKeepTop spills all temps except the top keep entries of the
// int stack (arguments already evaluated and about to be consumed).
// Syscalls clobber v0/a0 but no temps, so only saving what a nested call
// could clobber is unnecessary — we conservatively spill everything
// below the kept entries.
func (c *compiler) spillTempsKeepTop(keep int) (int, int) {
	for i := 0; i < c.intDepth-keep; i++ {
		c.b.Mem(isa.OpSTQ, intTemps[i], isa.RegFP, int32(c.spillIntOff+int64(i)*8))
	}
	for i := 0; i < c.fpDepth; i++ {
		c.b.Mem(isa.OpSTT, fpTemps[i], isa.RegFP, int32(c.spillFpOff+int64(i)*8))
	}
	return c.intDepth - keep, c.fpDepth
}

// syscallResult emits the callsys, restores spilled temps and pushes the
// result if any.
func (c *compiler) syscallResult(num uint64, savedInt, savedFP int, ret Type) (Type, error) {
	c.b.LoadImm(isa.RegV0, int64(num))
	c.b.Pal(isa.PalCallSys)
	// Restore the spilled prefix; current depths already exclude consumed
	// arguments.
	for i := 0; i < savedInt; i++ {
		c.b.Mem(isa.OpLDQ, intTemps[i], isa.RegFP, int32(c.spillIntOff+int64(i)*8))
	}
	for i := 0; i < savedFP; i++ {
		c.b.Mem(isa.OpLDT, fpTemps[i], isa.RegFP, int32(c.spillFpOff+int64(i)*8))
	}
	if ret == TypeInt {
		r, err := c.pushInt()
		if err != nil {
			return 0, err
		}
		c.b.Mov(isa.RegV0, r)
	}
	return ret, nil
}
