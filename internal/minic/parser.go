package minic

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a mini-C translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.accept("(") {
			fn, err := p.parseFunc(ty, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		decl, err := p.parseGlobalRest(ty, name)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decl)
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s (at %v)", p.cur().line, fmt.Sprintf(format, args...), p.cur())
}

// at reports whether the current token matches.
func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes a punct/keyword token if it matches.
func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q", text)
	}
	return nil
}

// ident consumes an identifier.
func (p *parser) ident() (string, error) {
	if !p.at(tokIdent, "") {
		return "", p.errf("expected identifier")
	}
	name := p.cur().text
	p.pos++
	return name, nil
}

// parseType consumes int/float/void.
func (p *parser) parseType() (Type, error) {
	switch {
	case p.accept("int"):
		return TypeInt, nil
	case p.accept("float"):
		return TypeFloat, nil
	case p.accept("void"):
		return TypeVoid, nil
	}
	return 0, p.errf("expected type")
}

// parseGlobalRest parses the remainder of a global declaration after
// "type name".
func (p *parser) parseGlobalRest(ty Type, name string) (*VarDecl, error) {
	if ty == TypeVoid {
		return nil, p.errf("void variable %q", name)
	}
	d := &VarDecl{Name: name, Type: ty, Line: p.cur().line}
	if p.accept("[") {
		n, err := p.constInt()
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, p.errf("array %q must have positive length", name)
		}
		d.IsArray, d.Len = true, n
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		d.HasInit = true
		if d.IsArray {
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			for !p.accept("}") {
				if err := p.appendConst(d); err != nil {
					return nil, err
				}
				if !p.accept(",") && !p.at(tokPunct, "}") {
					return nil, p.errf("expected ',' or '}' in initializer")
				}
			}
			if int64(len(d.InitInt))+int64(len(d.InitFloat)) > d.Len {
				return nil, p.errf("too many initializers for %q", name)
			}
		} else {
			if err := p.appendConst(d); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// appendConst parses one (possibly negated) constant into the decl's
// initializer list.
func (p *parser) appendConst(d *VarDecl) error {
	neg := p.accept("-")
	t := p.cur()
	switch t.kind {
	case tokIntLit:
		v := t.ival
		if neg {
			v = -v
		}
		if d.Type == TypeFloat {
			d.InitFloat = append(d.InitFloat, float64(v))
		} else {
			d.InitInt = append(d.InitInt, v)
		}
	case tokFloatLit:
		if d.Type != TypeFloat {
			return p.errf("float initializer for int variable %q", d.Name)
		}
		v := t.fval
		if neg {
			v = -v
		}
		d.InitFloat = append(d.InitFloat, v)
	default:
		return p.errf("expected constant initializer")
	}
	p.pos++
	return nil
}

// constInt parses a constant integer.
func (p *parser) constInt() (int64, error) {
	if !p.at(tokIntLit, "") {
		return 0, p.errf("expected integer constant")
	}
	v := p.cur().ival
	p.pos++
	return v, nil
}

// parseFunc parses a function after "type name (".
func (p *parser) parseFunc(ret Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Ret: ret, Line: p.cur().line}
	if !p.accept(")") {
		for {
			pty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if pty == TypeVoid {
				if p.accept(")") && len(fn.Params) == 0 {
					break // f(void)
				}
				return nil, p.errf("void parameter")
			}
			pname, err := p.ident()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: pty})
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	if len(fn.Params) > 6 {
		return nil, p.errf("function %q has more than 6 parameters", name)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseBlock parses { stmt* }.
func (p *parser) parseBlock() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept("}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// parseStmt parses one statement.
func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tokPunct, "{"):
		return p.parseBlock()

	case p.at(tokKeyword, "int") || p.at(tokKeyword, "float"):
		return p.parseDeclStmt()

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{}
		if !p.accept(";") {
			if p.at(tokKeyword, "int") || p.at(tokKeyword, "float") {
				init, err := p.parseDeclStmt()
				if err != nil {
					return nil, err
				}
				st.Init = init
			} else {
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Init = &ExprStmt{X: x}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		}
		if !p.accept(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = post
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case p.accept("return"):
		st := &ReturnStmt{}
		if !p.accept(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = x
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return st, nil

	case p.accept("break"):
		return &BreakStmt{}, p.expect(";")

	case p.accept("continue"):
		return &ContinueStmt{}, p.expect(";")

	case p.accept(";"):
		return &BlockStmt{}, nil

	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, p.expect(";")
	}
}

// parseDeclStmt parses a local declaration statement.
func (p *parser) parseDeclStmt() (Stmt, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name, Type: ty, Line: p.cur().line}
	st := &DeclStmt{Decl: d}
	if p.accept("[") {
		n, err := p.constInt()
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, p.errf("array %q must have positive length", name)
		}
		d.IsArray, d.Len = true, n
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	} else if p.accept("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	return st, p.expect(";")
}

// Operator precedence climbing. Levels, loosest first:
//
//	||  &&  |  ^  &  == !=  < <= > >=  << >>  + -  * / %
var precedence = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

// parseExpr parses an assignment, compound assignment, increment or
// binary expression. Compound forms desugar: `x += e` becomes
// `x = x + (e)` and `x++` becomes `x = x + 1` (the expression's value is
// the updated value; the left side is re-evaluated, which is observable
// only through array index expressions with side effects).
func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		if err := checkLValue(p, lhs); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, RHS: rhs}, nil
	}
	for _, op := range []string{"+=", "-=", "*=", "/=", "%="} {
		if p.accept(op) {
			if err := checkLValue(p, lhs); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{LHS: lhs, RHS: &Binary{Op: op[:1], X: lhs, Y: rhs}}, nil
		}
	}
	if p.accept("++") {
		if err := checkLValue(p, lhs); err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, RHS: &Binary{Op: "+", X: lhs, Y: &IntLit{V: 1}}}, nil
	}
	if p.accept("--") {
		if err := checkLValue(p, lhs); err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, RHS: &Binary{Op: "-", X: lhs, Y: &IntLit{V: 1}}}, nil
	}
	return lhs, nil
}

// checkLValue rejects assignment to non-lvalues.
func checkLValue(p *parser, e Expr) error {
	switch e.(type) {
	case *Ident, *Index:
		return nil
	}
	return p.errf("invalid assignment target")
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		// Don't eat '=' as part of a comparison; precedence map has no
		// '=' so this is naturally safe.
		op := t.text
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.accept("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case p.accept("!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	case p.accept("~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "~", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokIntLit:
		p.pos++
		return &IntLit{V: t.ival}, nil
	case t.kind == tokFloatLit:
		p.pos++
		return &FloatLit{V: t.fval}, nil
	case p.accept("("):
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	case t.kind == tokIdent:
		name := t.text
		line := t.line
		p.pos++
		if p.accept("(") {
			call := &Call{Name: name, Line: line}
			if !p.accept(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		if p.accept("[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Index{Name: name, I: idx}, p.expect("]")
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("expected expression")
}
