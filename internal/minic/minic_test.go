package minic_test

import (
	"testing"

	"repro/internal/minic"
	"repro/internal/sim"
)

// runProgram compiles src and runs it on the atomic model, returning the
// exit status and console output.
func runProgram(t testing.TB, src string) (int, string) {
	t.Helper()
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 100_000_000})
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Crashed || r.Hung {
		t.Fatalf("program crashed: %+v", r)
	}
	return r.ExitStatus, r.Console
}

// expectExit asserts the program exits with the given status.
func expectExit(t *testing.T, src string, want int) {
	t.Helper()
	got, _ := runProgram(t, src)
	if got != want {
		t.Errorf("exit = %d, want %d", got, want)
	}
}

func TestReturnConstant(t *testing.T) {
	expectExit(t, `int main() { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	expectExit(t, `int main() { return (2 + 3) * 8 - 50 / 2 + 100 % 7; }`, 17)
}

func TestVariablesAndAssignment(t *testing.T) {
	expectExit(t, `
int main() {
    int x = 10;
    int y;
    y = x * 3;
    x = y - 5;
    return x;
}`, 25)
}

func TestGlobalVariables(t *testing.T) {
	expectExit(t, `
int counter = 7;
int scale;
int main() {
    scale = 6;
    counter = counter * scale;
    return counter;
}`, 42)
}

func TestGlobalArrayInitializer(t *testing.T) {
	expectExit(t, `
int table[5] = {3, 1, 4, 1, 5};
int main() {
    int s = 0;
    for (int i = 0; i < 5; i = i + 1) {
        s = s + table[i];
    }
    return s;
}`, 14)
}

func TestLocalArrays(t *testing.T) {
	expectExit(t, `
int main() {
    int a[10];
    for (int i = 0; i < 10; i = i + 1) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) { s = s + a[i]; }
    return s;
}`, 285)
}

func TestIfElseChains(t *testing.T) {
	src := `
int classify(int x) {
    if (x < 0) { return 1; }
    else if (x == 0) { return 2; }
    else if (x < 10) { return 3; }
    else { return 4; }
}
int main() {
    return classify(0-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	expectExit(t, src, 1234)
}

func TestWhileLoopBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
    int i = 0;
    int s = 0;
    while (1) {
        i = i + 1;
        if (i > 100) { break; }
        if (i % 2 == 0) { continue; }
        s = s + i;       // sum of odd numbers 1..99 = 2500
    }
    return s / 25;
}`, 100)
}

func TestLogicalShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// if it did, the division by zero would trap and the run would crash.
	expectExit(t, `
int zero = 0;
int main() {
    int hits = 0;
    if (zero != 0 && 10 / zero > 0) { hits = hits + 1; }
    if (zero == 0 || 10 / zero > 0) { hits = hits + 10; }
    if (1 && 2) { hits = hits + 100; }
    if (0 || 0) { hits = hits + 1000; }
    return hits;
}`, 110)
}

func TestBitwiseOps(t *testing.T) {
	expectExit(t, `
int main() {
    int a = 0xF0;
    int b = 0x0F;
    int r = (a | b) + (a & 0xFF) + (a ^ b) + (~0 & 15) + (1 << 6) + (256 >> 2);
    return r % 251;
}`, (0xFF+0xF0+0xFF+15+64+64)%251)
}

func TestRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }`, 55)
}

func TestMutualRecursion(t *testing.T) {
	// Forward references work without prototypes: all functions are
	// registered before code generation.
	expectExit(t, `
int isEven(int n) {
    if (n == 0) { return 1; }
    return isOdd(n - 1);
}
int isOdd(int n) {
    if (n == 0) { return 0; }
    return isEven(n - 1);
}
int main() { return isEven(10) * 10 + isOdd(7); }`, 11)
}

func TestFloatArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
    float a = 1.5;
    float b = 2.25;
    float c = (a + b) * 4.0 - 5.0;   // 10.0
    return ftoi(c);
}`, 10)
}

func TestFloatComparisonsAndSqrt(t *testing.T) {
	expectExit(t, `
int main() {
    float x = fsqrt(144.0);
    int r = 0;
    if (x == 12.0) { r = r + 1; }
    if (x > 11.5) { r = r + 10; }
    if (x <= 12.0) { r = r + 100; }
    if (x != 13.0) { r = r + 1000; }
    if (fabs(0.0 - 3.5) == 3.5) { r = r + 10000; }
    return r % 251;
}`, 11111%251)
}

func TestItofFtoi(t *testing.T) {
	expectExit(t, `
int main() {
    float f = itof(41);
    f = f + 1.75;
    return ftoi(f);   // trunc(42.75) = 42
}`, 42)
}

func TestFloatGlobalsAndArrays(t *testing.T) {
	expectExit(t, `
float weights[4] = {0.5, 1.5, 2.0, 4.0};
float bias = 2.0;
int main() {
    float s = bias;
    for (int i = 0; i < 4; i = i + 1) { s = s + weights[i]; }
    return ftoi(s);   // 2 + 8 = 10
}`, 10)
}

func TestPutcConsole(t *testing.T) {
	_, console := runProgram(t, `
void puts2(int a, int b) { putc(a); putc(b); }
int main() { puts2('O', 'K'); putc('\n'); return 0; }`)
	if console != "OK\n" {
		t.Errorf("console = %q", console)
	}
}

func TestManyParams(t *testing.T) {
	expectExit(t, `
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + b*2 + c*3 + d*4 + e*5 + f*6;
}
int main() { return sum6(1, 2, 3, 4, 5, 6); }`, 1+4+9+16+25+36)
}

func TestFloatParamsAndReturn(t *testing.T) {
	expectExit(t, `
float mix(float a, float b) { return a * 2.0 + b; }
int main() { return ftoi(mix(10.5, 4.0)); }`, 25)
}

func TestNestedCallsSpillTemps(t *testing.T) {
	// Deep expression with interleaved calls forces temp spilling.
	expectExit(t, `
int id(int x) { return x; }
int main() {
    return id(1) + (id(2) + (id(3) + (id(4) + id(5) * id(6))));
}`, 40)
}

func TestThreadsSpawnJoin(t *testing.T) {
	expectExit(t, `
int results[4];
void worker(int slot) {
    results[slot] = slot * 10 + 1;
}
int main() {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1);
    join(t2);
    return results[1] + results[2];
}`, 32)
}

func TestFIIntrinsics(t *testing.T) {
	// fi_checkpoint + fi_activate toggling must compile and run cleanly.
	p, err := minic.Compile(`
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) { s = s + i; }
    fi_activate(0);
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: true})
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.ExitStatus != 45 {
		t.Errorf("exit = %d", r.ExitStatus)
	}
	if s.CheckpointHits != 1 {
		t.Errorf("checkpoints = %d", s.CheckpointHits)
	}
	if s.Engine.Activations != 1 {
		t.Errorf("activations = %d", s.Engine.Activations)
	}
}

func TestCharLiterals(t *testing.T) {
	expectExit(t, `int main() { return 'A' + '\n'; }`, 75)
}

func TestComments(t *testing.T) {
	expectExit(t, `
// line comment
/* block
   comment */
int main() { return /* inline */ 5; }`, 5)
}

func TestPipelinedExecutionMatchesAtomic(t *testing.T) {
	src := `
int data[32];
int main() {
    int seed = 987654321;
    for (int i = 0; i < 32; i = i + 1) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        data[i] = seed % 100;
    }
    int s = 0;
    for (int i = 0; i < 32; i = i + 1) {
        if (data[i] % 3 == 0) { s = s + data[i]; }
        else { s = s - data[i] / 2; }
    }
    return (s % 251 + 251) % 251;
}`
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var exits []int
	for _, kind := range []sim.ModelKind{sim.ModelAtomic, sim.ModelPipelined} {
		s := sim.New(sim.Config{Model: kind, EnableFI: true, MaxInsts: 100_000_000})
		if err := s.Load(p); err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		if r.Crashed || r.Hung {
			t.Fatalf("%s: %+v", kind, r)
		}
		exits = append(exits, r.ExitStatus)
	}
	if exits[0] != exits[1] {
		t.Errorf("atomic exit %d != pipelined exit %d", exits[0], exits[1])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing main", `int foo() { return 1; }`},
		{"undefined variable", `int main() { return x; }`},
		{"undefined function", `int main() { return foo(); }`},
		{"duplicate function", `int f() { return 1; } int f() { return 2; } int main() { return 0; }`},
		{"type mismatch", `int main() { float f = 1.0; return f + 1; }`},
		{"bad assign target", `int main() { 5 = 6; return 0; }`},
		{"array without index", `int a[4]; int main() { return a; }`},
		{"index on scalar", `int a; int main() { return a[0]; }`},
		{"wrong arg count", `int f(int a) { return a; } int main() { return f(1, 2); }`},
		{"return type mismatch", `float main() { return 1; }`},
		{"break outside loop", `int main() { break; return 0; }`},
		{"too many params", `int f(int a, int b, int c, int d, int e, int g, int h) { return 0; } int main() { return 0; }`},
		{"void variable", `void v; int main() { return 0; }`},
		{"float initializer for int", `int x = 1.5; int main() { return 0; }`},
	}
	for _, tc := range cases {
		if _, err := minic.Compile(tc.src); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := minic.Compile("int main() {\n    return $;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
}

func BenchmarkCompile(b *testing.B) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := minic.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompoundAssignment(t *testing.T) {
	expectExit(t, `
int main() {
    int x = 10;
    x += 5;      // 15
    x -= 3;      // 12
    x *= 4;      // 48
    x /= 6;      // 8
    x %= 5;      // 3
    int a[3];
    a[1] = 7;
    a[1] += x;   // 10
    return a[1] * 10 + x;
}`, 103)
}

func TestIncrementDecrement(t *testing.T) {
	expectExit(t, `
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s += i; }
    int j = 5;
    j--;
    j--;
    return s * 10 + j;   // 450 + 3
}`, 453)
}

func TestFloatCompoundAssignment(t *testing.T) {
	expectExit(t, `
int main() {
    float f = 2.5;
    f += 1.5;    // 4.0
    f *= 2.0;    // 8.0
    return ftoi(f);
}`, 8)
}

func TestCompoundAssignErrors(t *testing.T) {
	if _, err := minic.Compile(`int main() { 5 += 1; return 0; }`); err == nil {
		t.Error("compound assignment to literal must fail")
	}
	if _, err := minic.Compile(`int main() { int x; x++ ++; return 0; }`); err == nil {
		t.Error("double increment must fail")
	}
}
