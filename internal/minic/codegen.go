package minic

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Compile parses and compiles mini-C source into a linked program image.
//
// Code generation model: all variables live in memory (globals in the
// data section, locals and parameters in the stack frame); expressions
// evaluate on a small register stack (t0–t7 for integers, f1–f8 for
// floats) that spills to reserved frame slots around calls. This produces
// memory-access-heavy code, like the unoptimized cross-compiled binaries
// the paper studies.
func Compile(src string) (*asm.Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		b:       asm.NewBuilder(),
		globals: make(map[string]*VarDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	return c.compile(prog)
}

// Register conventions for the expression stack.
var (
	intTemps = []isa.Reg{isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4, isa.RegT5, isa.RegT6, isa.RegT7}
	fpTemps  = []isa.Reg{1, 2, 3, 4, 5, 6, 7, 8} // f1..f8
)

const maxTemps = 8

type localVar struct {
	off     int64
	ty      Type
	isArray bool
	length  int64
	inReg   bool    // promoted to a callee-saved register
	reg     isa.Reg // valid when inReg
}

type compiler struct {
	b       *asm.Builder
	globals map[string]*VarDecl
	funcs   map[string]*FuncDecl
	labelN  int
	floatN  int // pooled float-literal counter (.fc symbols)

	// Per-function state.
	fn        *FuncDecl
	scopes    []map[string]*localVar
	nextOff   int64
	frameSize int64
	intDepth  int
	fpDepth   int
	epilogue  string
	breaks    []string
	conts     []string

	convOff     int64 // int<->float reinterpret scratch slot
	spillIntOff int64
	spillFpOff  int64

	// promote maps promoted scalar declarations to callee-saved
	// registers (see regalloc.go); savedRegs lists the registers in use
	// with their save slots for the prologue/epilogue.
	promote   map[*VarDecl]regLocal
	savedRegs []savedReg
}

// savedReg is one callee-saved register with its frame save slot.
type savedReg struct {
	reg isa.Reg
	fp  bool
	off int64
}

func (c *compiler) errf(format string, args ...interface{}) error {
	where := ""
	if c.fn != nil {
		where = " in function " + c.fn.Name
	}
	return fmt.Errorf("minic: %s%s", fmt.Sprintf(format, args...), where)
}

func (c *compiler) label(prefix string) string {
	c.labelN++
	return fmt.Sprintf(".L%s%d", prefix, c.labelN)
}

func (c *compiler) compile(prog *Program) (*asm.Program, error) {
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return nil, c.errf("duplicate global %q", g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return nil, c.errf("duplicate function %q", f.Name)
		}
		c.funcs[f.Name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return nil, c.errf("missing function main")
	}

	// Runtime startup: call main, pass its result to exit().
	b := c.b
	b.Func("_start")
	b.Br(isa.OpBSR, isa.RegRA, "fn_main")
	b.Mov(isa.RegV0, isa.RegA0)
	b.LoadImm(isa.RegV0, int64(isa.SysExit))
	b.Pal(isa.PalCallSys)
	// Trampoline for spawned threads whose function returns.
	b.Func("_thread_exit")
	b.LoadImm(isa.RegA0, 0)
	b.LoadImm(isa.RegV0, int64(isa.SysThreadExit))
	b.Pal(isa.PalCallSys)

	for _, f := range prog.Funcs {
		if err := c.genFunc(f); err != nil {
			return nil, err
		}
	}

	// Data section.
	for _, g := range prog.Globals {
		n := int64(1)
		if g.IsArray {
			n = g.Len
		}
		switch g.Type {
		case TypeInt:
			vals := make([]uint64, n)
			for i, v := range g.InitInt {
				vals[i] = uint64(v)
			}
			quads := make([]uint64, len(vals))
			copy(quads, vals)
			c.b.Quad(g.Name, quads...)
		case TypeFloat:
			vals := make([]float64, n)
			copy(vals, g.InitFloat)
			c.b.Double(g.Name, vals...)
		}
	}
	return c.b.Build()
}

// ---- function generation ----

func (c *compiler) genFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = []map[string]*localVar{make(map[string]*localVar)}
	c.nextOff = 0
	c.intDepth, c.fpDepth = 0, 0
	c.epilogue = c.label("ret_" + f.Name)
	c.breaks, c.conts = nil, nil
	c.promote = c.planPromotions(f)
	c.savedRegs = nil

	// Pass 1: size the frame (params + all locals + scratch + spills).
	for _, p := range f.Params {
		c.declare(p.Name, &localVar{off: c.alloc(8), ty: p.Type})
	}
	var sizeErr error
	c.sizeLocals(f.Body, &sizeErr)
	if sizeErr != nil {
		return sizeErr
	}
	c.convOff = c.alloc(8)
	c.spillIntOff = c.alloc(8 * maxTemps)
	c.spillFpOff = c.alloc(8 * maxTemps)
	// Save slots for the callee-saved registers this function uses, in
	// deterministic (register-number, int-before-fp) order.
	for _, saved := range []struct {
		regs []isa.Reg
		fp   bool
	}{{intSaved, false}, {fpSaved, true}} {
		for _, reg := range saved.regs {
			if c.usesPromoted(reg, saved.fp) {
				c.savedRegs = append(c.savedRegs, savedReg{reg: reg, fp: saved.fp, off: c.alloc(8)})
			}
		}
	}
	savedFP := c.alloc(8)
	savedRA := c.alloc(8)
	c.frameSize = (c.nextOff + 15) &^ 15
	if c.frameSize > 32000 {
		return c.errf("stack frame too large (%d bytes); use global arrays", c.frameSize)
	}

	// Reset for pass 2 (keep the same deterministic layout).
	c.scopes = []map[string]*localVar{make(map[string]*localVar)}
	c.nextOff = 0

	b := c.b
	b.Func("fn_" + f.Name)
	b.Mem(isa.OpLDA, isa.RegSP, isa.RegSP, int32(-c.frameSize))
	b.Mem(isa.OpSTQ, isa.RegRA, isa.RegSP, int32(savedRA))
	b.Mem(isa.OpSTQ, isa.RegFP, isa.RegSP, int32(savedFP))
	b.Mov(isa.RegSP, isa.RegFP)

	// Preserve the callee-saved registers this function repurposes.
	for _, sr := range c.savedRegs {
		if sr.fp {
			b.Mem(isa.OpSTT, sr.reg, isa.RegFP, int32(sr.off))
		} else {
			b.Mem(isa.OpSTQ, sr.reg, isa.RegFP, int32(sr.off))
		}
	}

	// Copy arguments into their homes (register or frame slot).
	for i, p := range f.Params {
		lv := &localVar{off: c.alloc(8), ty: p.Type}
		if rl, ok := c.promote[p]; ok {
			lv.inReg, lv.reg = true, rl.reg
		}
		c.declare(p.Name, lv)
		if lv.inReg {
			if p.Type == TypeFloat {
				b.FMov(isa.Reg(16+i), lv.reg)
			} else {
				b.Mov(isa.Reg(16+i), lv.reg)
			}
			continue
		}
		if p.Type == TypeFloat {
			b.Mem(isa.OpSTT, isa.Reg(16+i), isa.RegFP, int32(lv.off))
		} else {
			b.Mem(isa.OpSTQ, isa.Reg(16+i), isa.RegFP, int32(lv.off))
		}
	}

	if err := c.genBlock(f.Body); err != nil {
		return err
	}

	// Implicit return (value 0 / 0.0 for non-void falls through).
	b.Label(c.epilogue)
	for _, sr := range c.savedRegs {
		if sr.fp {
			b.Mem(isa.OpLDT, sr.reg, isa.RegFP, int32(sr.off))
		} else {
			b.Mem(isa.OpLDQ, sr.reg, isa.RegFP, int32(sr.off))
		}
	}
	b.Mem(isa.OpLDQ, isa.RegRA, isa.RegFP, int32(savedRA))
	b.Mem(isa.OpLDQ, isa.RegFP, isa.RegFP, int32(savedFP))
	b.Mem(isa.OpLDA, isa.RegSP, isa.RegSP, int32(c.frameSize))
	b.Jump(isa.ZeroReg, isa.RegRA, isa.HintRET)
	c.fn = nil
	return nil
}

// sizeLocals walks the body once, allocating offsets for every
// declaration so the frame size is known before emitting the prologue.
func (c *compiler) sizeLocals(s Stmt, errOut *error) {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			c.sizeLocals(sub, errOut)
		}
	case *DeclStmt:
		size := int64(8)
		if st.Decl.IsArray {
			size = 8 * st.Decl.Len
		}
		c.alloc(size)
	case *IfStmt:
		c.sizeLocals(st.Then, errOut)
		if st.Else != nil {
			c.sizeLocals(st.Else, errOut)
		}
	case *WhileStmt:
		c.sizeLocals(st.Body, errOut)
	case *ForStmt:
		if st.Init != nil {
			c.sizeLocals(st.Init, errOut)
		}
		c.sizeLocals(st.Body, errOut)
	}
}

// usesPromoted reports whether any promoted declaration occupies reg.
func (c *compiler) usesPromoted(reg isa.Reg, fp bool) bool {
	for _, rl := range c.promote {
		if rl.reg == reg && (rl.ty == TypeFloat) == fp {
			return true
		}
	}
	return false
}

// alloc bumps the frame allocator.
func (c *compiler) alloc(size int64) int64 {
	off := c.nextOff
	c.nextOff += size
	return off
}

// declare binds a name in the innermost scope.
func (c *compiler) declare(name string, lv *localVar) {
	c.scopes[len(c.scopes)-1][name] = lv
}

// lookupLocal resolves a name against the scope stack.
func (c *compiler) lookupLocal(name string) *localVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if lv, ok := c.scopes[i][name]; ok {
			return lv
		}
	}
	return nil
}

// ---- statements ----

func (c *compiler) genBlock(b *BlockStmt) error {
	c.scopes = append(c.scopes, make(map[string]*localVar))
	for _, s := range b.Stmts {
		if err := c.genStmt(s); err != nil {
			return err
		}
	}
	c.scopes = c.scopes[:len(c.scopes)-1]
	return nil
}

func (c *compiler) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.genBlock(st)

	case *DeclStmt:
		size := int64(8)
		if st.Decl.IsArray {
			size = 8 * st.Decl.Len
		}
		lv := &localVar{off: c.alloc(size), ty: st.Decl.Type, isArray: st.Decl.IsArray, length: st.Decl.Len}
		if rl, ok := c.promote[st.Decl]; ok {
			lv.inReg, lv.reg = true, rl.reg
		}
		c.declare(st.Decl.Name, lv)
		if st.Init != nil {
			ty, err := c.genExpr(st.Init)
			if err != nil {
				return err
			}
			if ty != st.Decl.Type {
				return c.errf("initializer type %v for %v variable %q", ty, st.Decl.Type, st.Decl.Name)
			}
			if lv.inReg {
				if ty == TypeFloat {
					c.b.FMov(c.popFP(), lv.reg)
				} else {
					c.b.Mov(c.popInt(), lv.reg)
				}
				return nil
			}
			if ty == TypeFloat {
				r := c.popFP()
				c.b.Mem(isa.OpSTT, r, isa.RegFP, int32(lv.off))
			} else {
				r := c.popInt()
				c.b.Mem(isa.OpSTQ, r, isa.RegFP, int32(lv.off))
			}
		}
		return nil

	case *ExprStmt:
		ty, err := c.genExpr(st.X)
		if err != nil {
			return err
		}
		c.discard(ty)
		return nil

	case *IfStmt:
		elseL := c.label("else")
		endL := c.label("endif")
		target := endL
		if st.Else != nil {
			target = elseL
		}
		if err := c.genCondBranch(st.Cond, target, false); err != nil {
			return err
		}
		if err := c.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			c.b.Br(isa.OpBR, isa.ZeroReg, endL)
			c.b.Label(elseL)
			if err := c.genStmt(st.Else); err != nil {
				return err
			}
		}
		c.b.Label(endL)
		return nil

	case *WhileStmt:
		top := c.label("while")
		end := c.label("endwhile")
		c.b.Label(top)
		if err := c.genCondBranch(st.Cond, end, false); err != nil {
			return err
		}
		c.breaks = append(c.breaks, end)
		c.conts = append(c.conts, top)
		if err := c.genStmt(st.Body); err != nil {
			return err
		}
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.conts = c.conts[:len(c.conts)-1]
		c.b.Br(isa.OpBR, isa.ZeroReg, top)
		c.b.Label(end)
		return nil

	case *ForStmt:
		c.scopes = append(c.scopes, make(map[string]*localVar))
		if st.Init != nil {
			if err := c.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := c.label("for")
		post := c.label("forpost")
		end := c.label("endfor")
		c.b.Label(top)
		if st.Cond != nil {
			if err := c.genCondBranch(st.Cond, end, false); err != nil {
				return err
			}
		}
		c.breaks = append(c.breaks, end)
		c.conts = append(c.conts, post)
		if err := c.genStmt(st.Body); err != nil {
			return err
		}
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.conts = c.conts[:len(c.conts)-1]
		c.b.Label(post)
		if st.Post != nil {
			ty, err := c.genExpr(st.Post)
			if err != nil {
				return err
			}
			c.discard(ty)
		}
		c.b.Br(isa.OpBR, isa.ZeroReg, top)
		c.b.Label(end)
		c.scopes = c.scopes[:len(c.scopes)-1]
		return nil

	case *ReturnStmt:
		if st.X != nil {
			ty, err := c.genExpr(st.X)
			if err != nil {
				return err
			}
			if ty != c.fn.Ret {
				return c.errf("return type %v, function returns %v", ty, c.fn.Ret)
			}
			if ty == TypeFloat {
				c.b.FMov(c.popFP(), 0) // result in f0
			} else {
				c.b.Mov(c.popInt(), isa.RegV0)
			}
		} else if c.fn.Ret != TypeVoid {
			return c.errf("missing return value")
		}
		c.b.Br(isa.OpBR, isa.ZeroReg, c.epilogue)
		return nil

	case *BreakStmt:
		if len(c.breaks) == 0 {
			return c.errf("break outside loop")
		}
		c.b.Br(isa.OpBR, isa.ZeroReg, c.breaks[len(c.breaks)-1])
		return nil

	case *ContinueStmt:
		if len(c.conts) == 0 {
			return c.errf("continue outside loop")
		}
		c.b.Br(isa.OpBR, isa.ZeroReg, c.conts[len(c.conts)-1])
		return nil
	}
	return c.errf("unknown statement %T", s)
}

// genCondBranch evaluates cond and branches to label when the condition
// equals want (false => branch on zero).
func (c *compiler) genCondBranch(cond Expr, label string, want bool) error {
	ty, err := c.genExpr(cond)
	if err != nil {
		return err
	}
	if ty == TypeFloat {
		r := c.popFP()
		if want {
			c.b.Br(isa.OpFBNE, r, label)
		} else {
			c.b.Br(isa.OpFBEQ, r, label)
		}
		return nil
	}
	if ty != TypeInt {
		return c.errf("condition has type %v", ty)
	}
	r := c.popInt()
	if want {
		c.b.Br(isa.OpBNE, r, label)
	} else {
		c.b.Br(isa.OpBEQ, r, label)
	}
	return nil
}

// ---- expression stack ----

func (c *compiler) pushInt() (isa.Reg, error) {
	if c.intDepth >= maxTemps {
		return 0, c.errf("integer expression too deep")
	}
	r := intTemps[c.intDepth]
	c.intDepth++
	return r, nil
}

func (c *compiler) popInt() isa.Reg {
	c.intDepth--
	return intTemps[c.intDepth]
}

func (c *compiler) topInt() isa.Reg { return intTemps[c.intDepth-1] }

func (c *compiler) pushFP() (isa.Reg, error) {
	if c.fpDepth >= maxTemps {
		return 0, c.errf("float expression too deep")
	}
	r := fpTemps[c.fpDepth]
	c.fpDepth++
	return r, nil
}

func (c *compiler) popFP() isa.Reg {
	c.fpDepth--
	return fpTemps[c.fpDepth]
}

func (c *compiler) topFP() isa.Reg { return fpTemps[c.fpDepth-1] }

// discard pops a value of the given type (void pops nothing).
func (c *compiler) discard(ty Type) {
	switch ty {
	case TypeInt:
		c.popInt()
	case TypeFloat:
		c.popFP()
	}
}

// ---- expressions ----

// genExpr emits code that leaves the expression value on the appropriate
// register stack and returns its type.
func (c *compiler) genExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		r, err := c.pushInt()
		if err != nil {
			return 0, err
		}
		c.b.LoadImm(r, x.V)
		return TypeInt, nil

	case *FloatLit:
		r, err := c.pushFP()
		if err != nil {
			return 0, err
		}
		// Materialize from a constant pool entry.
		sym := c.floatConst(x.V)
		c.b.LA(isa.RegAT, sym)
		c.b.Mem(isa.OpLDT, r, isa.RegAT, 0)
		return TypeFloat, nil

	case *Ident:
		return c.genLoadVar(x.Name)

	case *Index:
		return c.genLoadIndex(x)

	case *Unary:
		return c.genUnary(x)

	case *Binary:
		return c.genBinary(x)

	case *Assign:
		return c.genAssign(x)

	case *Call:
		return c.genCall(x)
	}
	return 0, c.errf("unknown expression %T", e)
}

// floatConst pools a float literal in the data section. The counter is
// per-compiler: symbols need uniqueness only within one compilation
// unit, and a package global would race concurrent Compile calls (the
// campaign service builds workloads for several campaigns in parallel).
func (c *compiler) floatConst(v float64) string {
	c.floatN++
	sym := fmt.Sprintf(".fc%d", c.floatN)
	c.b.Double(sym, v)
	return sym
}

// addrOf emits code leaving the address of a scalar variable in RegAT.
func (c *compiler) addrOfVar(name string) (Type, bool, error) {
	if lv := c.lookupLocal(name); lv != nil {
		c.b.Mem(isa.OpLDA, isa.RegAT, isa.RegFP, int32(lv.off))
		return lv.ty, lv.isArray, nil
	}
	if g, ok := c.globals[name]; ok {
		c.b.LA(isa.RegAT, name)
		return g.Type, g.IsArray, nil
	}
	return 0, false, c.errf("undefined variable %q", name)
}

func (c *compiler) genLoadVar(name string) (Type, error) {
	if lv := c.lookupLocal(name); lv != nil && lv.inReg {
		if lv.ty == TypeFloat {
			r, err := c.pushFP()
			if err != nil {
				return 0, err
			}
			c.b.FMov(lv.reg, r)
			return TypeFloat, nil
		}
		r, err := c.pushInt()
		if err != nil {
			return 0, err
		}
		c.b.Mov(lv.reg, r)
		return TypeInt, nil
	}
	ty, isArr, err := c.addrOfVar(name)
	if err != nil {
		return 0, err
	}
	if isArr {
		return 0, c.errf("array %q used without index", name)
	}
	if ty == TypeFloat {
		r, err := c.pushFP()
		if err != nil {
			return 0, err
		}
		c.b.Mem(isa.OpLDT, r, isa.RegAT, 0)
		return TypeFloat, nil
	}
	r, err := c.pushInt()
	if err != nil {
		return 0, err
	}
	c.b.Mem(isa.OpLDQ, r, isa.RegAT, 0)
	return TypeInt, nil
}

// genIndexAddr leaves the element address in RegAT; the index temp is
// consumed.
func (c *compiler) genIndexAddr(x *Index) (Type, error) {
	ity, err := c.genExpr(x.I)
	if err != nil {
		return 0, err
	}
	if ity != TypeInt {
		return 0, c.errf("array index must be int")
	}
	idx := c.popInt()
	c.b.OpLit(isa.OpIntShift, isa.FnSLL, idx, 3, idx)
	ty, isArr, err := c.addrOfVar(x.Name)
	if err != nil {
		return 0, err
	}
	if !isArr {
		return 0, c.errf("%q is not an array", x.Name)
	}
	c.b.Op(isa.OpIntArith, isa.FnADDQ, isa.RegAT, idx, isa.RegAT)
	return ty, nil
}

func (c *compiler) genLoadIndex(x *Index) (Type, error) {
	ty, err := c.genIndexAddr(x)
	if err != nil {
		return 0, err
	}
	if ty == TypeFloat {
		r, err := c.pushFP()
		if err != nil {
			return 0, err
		}
		c.b.Mem(isa.OpLDT, r, isa.RegAT, 0)
		return TypeFloat, nil
	}
	r, err := c.pushInt()
	if err != nil {
		return 0, err
	}
	c.b.Mem(isa.OpLDQ, r, isa.RegAT, 0)
	return TypeInt, nil
}

func (c *compiler) genAssign(x *Assign) (Type, error) {
	rty, err := c.genExpr(x.RHS)
	if err != nil {
		return 0, err
	}
	switch lhs := x.LHS.(type) {
	case *Ident:
		if lv := c.lookupLocal(lhs.Name); lv != nil && lv.inReg {
			if lv.ty != rty {
				return 0, c.errf("assigning %v to %v variable %q", rty, lv.ty, lhs.Name)
			}
			// Write through to the register, keeping the value on the
			// expression stack as the assignment's result.
			if rty == TypeFloat {
				c.b.FMov(c.topFP(), lv.reg)
			} else {
				c.b.Mov(c.topInt(), lv.reg)
			}
			return rty, nil
		}
		ty, isArr, err := c.addrOfVar(lhs.Name)
		if err != nil {
			return 0, err
		}
		if isArr {
			return 0, c.errf("cannot assign to array %q", lhs.Name)
		}
		if ty != rty {
			return 0, c.errf("assigning %v to %v variable %q", rty, ty, lhs.Name)
		}
	case *Index:
		ty, err := c.genIndexAddr(lhs)
		if err != nil {
			return 0, err
		}
		if ty != rty {
			return 0, c.errf("assigning %v to %v array %q", rty, ty, lhs.Name)
		}
	default:
		return 0, c.errf("invalid assignment target")
	}
	// Store the value, keeping it on the stack as the expression result.
	if rty == TypeFloat {
		c.b.Mem(isa.OpSTT, c.topFP(), isa.RegAT, 0)
	} else {
		c.b.Mem(isa.OpSTQ, c.topInt(), isa.RegAT, 0)
	}
	return rty, nil
}

func (c *compiler) genUnary(x *Unary) (Type, error) {
	ty, err := c.genExpr(x.X)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case "-":
		if ty == TypeFloat {
			r := c.topFP()
			c.b.FP(isa.FnSUBT, isa.ZeroReg, r, r) // 0.0 - x
			return TypeFloat, nil
		}
		r := c.topInt()
		c.b.Op(isa.OpIntArith, isa.FnSUBQ, isa.ZeroReg, r, r)
		return TypeInt, nil
	case "!":
		if ty != TypeInt {
			return 0, c.errf("! needs an int operand")
		}
		r := c.topInt()
		c.b.OpLit(isa.OpIntArith, isa.FnCMPEQ, r, 0, r)
		return TypeInt, nil
	case "~":
		if ty != TypeInt {
			return 0, c.errf("~ needs an int operand")
		}
		r := c.topInt()
		c.b.Op(isa.OpIntLogic, isa.FnORNOT, isa.ZeroReg, r, r)
		return TypeInt, nil
	}
	return 0, c.errf("unknown unary operator %q", x.Op)
}

// intBinOps maps int operators to (opcode, function, swap-operands).
var intBinOps = map[string]struct {
	op   isa.Opcode
	fn   uint16
	swap bool
	not  bool // complement the 0/1 result
}{
	"+":  {isa.OpIntArith, isa.FnADDQ, false, false},
	"-":  {isa.OpIntArith, isa.FnSUBQ, false, false},
	"*":  {isa.OpIntMul, isa.FnMULQ, false, false},
	"/":  {isa.OpIntMul, isa.FnDIVQ, false, false},
	"%":  {isa.OpIntMul, isa.FnREMQ, false, false},
	"&":  {isa.OpIntLogic, isa.FnAND, false, false},
	"|":  {isa.OpIntLogic, isa.FnBIS, false, false},
	"^":  {isa.OpIntLogic, isa.FnXOR, false, false},
	"<<": {isa.OpIntShift, isa.FnSLL, false, false},
	">>": {isa.OpIntShift, isa.FnSRA, false, false},
	"==": {isa.OpIntArith, isa.FnCMPEQ, false, false},
	"!=": {isa.OpIntArith, isa.FnCMPEQ, false, true},
	"<":  {isa.OpIntArith, isa.FnCMPLT, false, false},
	"<=": {isa.OpIntArith, isa.FnCMPLE, false, false},
	">":  {isa.OpIntArith, isa.FnCMPLT, true, false},
	">=": {isa.OpIntArith, isa.FnCMPLE, true, false},
}

// fpCmpOps maps float comparison operators to (function, swap).
var fpCmpOps = map[string]struct {
	fn   uint16
	swap bool
	not  bool
}{
	"==": {isa.FnCMPTEQ, false, false},
	"!=": {isa.FnCMPTEQ, false, true},
	"<":  {isa.FnCMPTLT, false, false},
	"<=": {isa.FnCMPTLE, false, false},
	">":  {isa.FnCMPTLT, true, false},
	">=": {isa.FnCMPTLE, true, false},
}

var fpArithOps = map[string]uint16{
	"+": isa.FnADDT, "-": isa.FnSUBT, "*": isa.FnMULT, "/": isa.FnDIVT,
}

func (c *compiler) genBinary(x *Binary) (Type, error) {
	// Short-circuit logical operators.
	if x.Op == "&&" || x.Op == "||" {
		return c.genLogical(x)
	}

	tx, err := c.genExpr(x.X)
	if err != nil {
		return 0, err
	}
	ty, err := c.genExpr(x.Y)
	if err != nil {
		return 0, err
	}
	if tx != ty {
		return 0, c.errf("operator %q with mixed types %v and %v (use itof/ftoi)", x.Op, tx, ty)
	}

	if tx == TypeFloat {
		if fn, ok := fpArithOps[x.Op]; ok {
			rb := c.popFP()
			ra := c.topFP()
			c.b.FP(fn, ra, rb, ra)
			return TypeFloat, nil
		}
		if cmp, ok := fpCmpOps[x.Op]; ok {
			rb := c.popFP()
			ra := c.popFP()
			if cmp.swap {
				ra, rb = rb, ra
			}
			// Compare into an FP temp, then convert 2.0/0.0 into int 0/1.
			c.b.FP(cmp.fn, ra, rb, ra)
			rd, err := c.pushInt()
			if err != nil {
				return 0, err
			}
			trueL := c.label("fcmpt")
			endL := c.label("fcmpe")
			branchOp := isa.OpFBNE
			if cmp.not {
				branchOp = isa.OpFBEQ
			}
			c.b.Br(branchOp, ra, trueL)
			c.b.LoadImm(rd, 0)
			c.b.Br(isa.OpBR, isa.ZeroReg, endL)
			c.b.Label(trueL)
			c.b.LoadImm(rd, 1)
			c.b.Label(endL)
			return TypeInt, nil
		}
		return 0, c.errf("operator %q not defined for float", x.Op)
	}

	ent, ok := intBinOps[x.Op]
	if !ok {
		return 0, c.errf("operator %q not defined for int", x.Op)
	}
	rb := c.popInt()
	ra := c.popInt()
	rd := ra // result goes to the slot that becomes the new stack top
	opA, opB := ra, rb
	if ent.swap {
		opA, opB = rb, ra
	}
	c.b.Op(ent.op, ent.fn, opA, opB, rd)
	if ent.not {
		c.b.OpLit(isa.OpIntLogic, isa.FnXOR, rd, 1, rd)
	}
	c.intDepth++ // result back on the stack (in rd's slot)
	return TypeInt, nil
}

// genLogical emits short-circuit && / ||.
func (c *compiler) genLogical(x *Binary) (Type, error) {
	rd, err := c.pushInt()
	if err != nil {
		return 0, err
	}
	shortL := c.label("sc")
	endL := c.label("scend")
	// Evaluate X.
	tx, err := c.genExpr(x.X)
	if err != nil {
		return 0, err
	}
	if tx != TypeInt {
		return 0, c.errf("%q needs int operands", x.Op)
	}
	rx := c.popInt()
	if x.Op == "&&" {
		c.b.Br(isa.OpBEQ, rx, shortL) // false: result 0
	} else {
		c.b.Br(isa.OpBNE, rx, shortL) // true: result 1
	}
	tyY, err := c.genExpr(x.Y)
	if err != nil {
		return 0, err
	}
	if tyY != TypeInt {
		return 0, c.errf("%q needs int operands", x.Op)
	}
	ry := c.popInt()
	// Normalize Y to 0/1.
	c.b.Op(isa.OpIntArith, isa.FnCMPEQ, ry, isa.ZeroReg, rd)
	c.b.OpLit(isa.OpIntLogic, isa.FnXOR, rd, 1, rd)
	c.b.Br(isa.OpBR, isa.ZeroReg, endL)
	c.b.Label(shortL)
	if x.Op == "&&" {
		c.b.LoadImm(rd, 0)
	} else {
		c.b.LoadImm(rd, 1)
	}
	c.b.Label(endL)
	return TypeInt, nil
}
