package minic_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/minic"
	"repro/internal/sim"
)

// TestExpressionFuzz generates random integer expression trees, evaluates
// them host-side with Go semantics, and requires the compiled guest
// program to agree. This is the compiler's differential oracle: any
// mismatch in operator precedence, code generation, temp-stack handling
// or 64-bit arithmetic shows up here.
func TestExpressionFuzz(t *testing.T) {
	const trees = 120
	for seed := int64(0); seed < trees; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := map[string]int64{
			"a": rng.Int63n(1000) - 500,
			"b": rng.Int63n(1000) - 500,
			"c": rng.Int63n(100) + 1, // safe divisor
			"d": rng.Int63n(63),      // safe shift amount
		}
		exprSrc, want := genExpr(rng, env, 0)

		src := fmt.Sprintf(`
int main() {
    int a = %d;
    int b = %d;
    int c = %d;
    int d = %d;
    int r = %s;
    // Fold to a byte so the exit status carries it faithfully.
    int folded = r %% 251;
    if (folded < 0) { folded = folded + 251; }
    return folded;
}`, env["a"], env["b"], env["c"], env["d"], exprSrc)

		wantFolded := want % 251
		if wantFolded < 0 {
			wantFolded += 251
		}

		p, err := minic.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile %q: %v", seed, exprSrc, err)
		}
		s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: false, MaxInsts: 10_000_000})
		if err := s.Load(p); err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		if r.Crashed || r.Hung {
			t.Fatalf("seed %d: expr %q crashed: %+v", seed, exprSrc, r)
		}
		if int64(r.ExitStatus) != wantFolded {
			t.Fatalf("seed %d: expr %q = %d (guest) vs %d (host)", seed, exprSrc, r.ExitStatus, wantFolded)
		}
	}
}

// genExpr builds a random expression string over variables a,b (values),
// c (nonzero divisor), d (shift in [0,63)) and returns the host-computed
// value alongside. depth bounds the temp-stack pressure.
func genExpr(rng *rand.Rand, env map[string]int64, depth int) (string, int64) {
	if depth >= 4 || rng.Intn(3) == 0 {
		// Leaf: variable or literal.
		switch rng.Intn(3) {
		case 0:
			v := rng.Int63n(2000) - 1000
			return fmt.Sprintf("%d", v), v
		case 1:
			name := []string{"a", "b"}[rng.Intn(2)]
			return name, env[name]
		default:
			v := rng.Int63n(200)
			return fmt.Sprintf("%d", v), v
		}
	}
	lhs, lv := genExpr(rng, env, depth+1)
	switch rng.Intn(10) {
	case 0: // division by the safe variable
		return fmt.Sprintf("((%s) / c)", lhs), lv / env["c"]
	case 1: // modulo by the safe variable
		return fmt.Sprintf("((%s) %% c)", lhs), lv % env["c"]
	case 2: // shift by the safe amount
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("((%s) << (d %% 8))", lhs), lv << uint(env["d"]%8)
		}
		return fmt.Sprintf("((%s) >> (d %% 8))", lhs), lv >> uint(env["d"]%8)
	case 3: // unary
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("(-(%s))", lhs), -lv
		case 1:
			return fmt.Sprintf("(~(%s))", lhs), ^lv
		default:
			r := int64(0)
			if lv == 0 {
				r = 1
			}
			return fmt.Sprintf("(!(%s))", lhs), r
		}
	default:
		rhs, rv := genExpr(rng, env, depth+1)
		ops := []struct {
			op string
			f  func(a, b int64) int64
		}{
			{"+", func(a, b int64) int64 { return a + b }},
			{"-", func(a, b int64) int64 { return a - b }},
			{"*", func(a, b int64) int64 { return a * b }},
			{"&", func(a, b int64) int64 { return a & b }},
			{"|", func(a, b int64) int64 { return a | b }},
			{"^", func(a, b int64) int64 { return a ^ b }},
			{"<", func(a, b int64) int64 { return b2i(a < b) }},
			{"<=", func(a, b int64) int64 { return b2i(a <= b) }},
			{">", func(a, b int64) int64 { return b2i(a > b) }},
			{">=", func(a, b int64) int64 { return b2i(a >= b) }},
			{"==", func(a, b int64) int64 { return b2i(a == b) }},
			{"!=", func(a, b int64) int64 { return b2i(a != b) }},
		}
		o := ops[rng.Intn(len(ops))]
		return fmt.Sprintf("(%s %s %s)", lhs, o.op, rhs), o.f(lv, rv)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestStatementFuzz generates random straight-line statement sequences
// (assignments, compound assignments, if/else over a small variable set)
// and compares the guest's final state with a host-side interpreter.
func TestStatementFuzz(t *testing.T) {
	const programs = 60
	for seed := int64(1000); seed < 1000+programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vars := map[string]int64{"x": 7, "y": -3, "z": 100}
		var body strings.Builder
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			name := []string{"x", "y", "z"}[rng.Intn(3)]
			switch rng.Intn(4) {
			case 0:
				v := rng.Int63n(100)
				fmt.Fprintf(&body, "    %s += %d;\n", name, v)
				vars[name] += v
			case 1:
				v := rng.Int63n(100) + 1
				fmt.Fprintf(&body, "    %s *= %d;\n", name, v)
				vars[name] *= v
			case 2:
				other := []string{"x", "y", "z"}[rng.Intn(3)]
				fmt.Fprintf(&body, "    %s = %s - %s;\n", name, other, name)
				vars[name] = vars[other] - vars[name]
			default:
				other := []string{"x", "y", "z"}[rng.Intn(3)]
				fmt.Fprintf(&body, "    if (%s > %s) { %s++; } else { %s--; }\n", name, other, name, name)
				if vars[name] > vars[other] {
					vars[name]++
				} else {
					vars[name]--
				}
			}
		}
		want := (vars["x"] ^ vars["y"] ^ vars["z"]) % 251
		if want < 0 {
			want += 251
		}
		src := fmt.Sprintf(`
int main() {
    int x = 7;
    int y = -3;
    int z = 100;
%s    int folded = (x ^ y ^ z) %% 251;
    if (folded < 0) { folded += 251; }
    return folded;
}`, body.String())
		p, err := minic.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		s := sim.New(sim.Config{Model: sim.ModelAtomic, EnableFI: false, MaxInsts: 10_000_000})
		if err := s.Load(p); err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		if r.Crashed || r.Hung {
			t.Fatalf("seed %d crashed: %+v\n%s", seed, r, src)
		}
		if int64(r.ExitStatus) != want {
			t.Fatalf("seed %d: guest %d vs host %d\n%s", seed, r.ExitStatus, want, src)
		}
	}
}
