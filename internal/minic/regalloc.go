package minic

import (
	"sort"

	"repro/internal/isa"
)

// Register promotion: the most-used scalar locals of each function are
// allocated to callee-saved registers (s0–s5 for ints, f9–f14 for
// floats) instead of stack slots. Besides speed, this matters for
// fidelity to the paper: its fault injection results assume compiled
// code keeps hot values — loop counters, accumulators, base addresses —
// live in the register file for long spans ("integer registers tend to
// be live during large spans of the application life"), which is what
// makes register faults consequential.

// intSaved / fpSaved are the promotion target registers, in allocation
// order.
var (
	intSaved = []isa.Reg{isa.RegS0, 10, 11, 12, 13, isa.RegS5}
	fpSaved  = []isa.Reg{9, 10, 11, 12, 13, 14}
)

// regLocal records a promoted variable.
type regLocal struct {
	reg isa.Reg
	ty  Type
}

// planPromotions chooses which of fn's scalar declarations live in
// callee-saved registers. Each *declaration* (parameter or DeclStmt) is a
// separate candidate, so loop variables re-declared per loop are promoted
// independently; the code generator's scope stack resolves references to
// the right instance. Every promoted declaration gets a distinct
// register, so simultaneously-live declarations never conflict.
func (c *compiler) planPromotions(fn *FuncDecl) map[*VarDecl]regLocal {
	uses := map[string]int{}
	countUses(fn.Body, uses)

	type cand struct {
		decl  *VarDecl
		order int
		n     int
	}
	var cands []cand
	add := func(d *VarDecl) {
		if d.IsArray {
			return
		}
		cands = append(cands, cand{decl: d, order: len(cands), n: uses[d.Name]})
	}
	for _, p := range fn.Params {
		add(p)
	}
	collectDecls(fn.Body, add)

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].order < cands[j].order
	})

	out := make(map[*VarDecl]regLocal)
	nextInt, nextFP := 0, 0
	for _, cd := range cands {
		switch cd.decl.Type {
		case TypeInt:
			if nextInt < len(intSaved) {
				out[cd.decl] = regLocal{reg: intSaved[nextInt], ty: TypeInt}
				nextInt++
			}
		case TypeFloat:
			if nextFP < len(fpSaved) {
				out[cd.decl] = regLocal{reg: fpSaved[nextFP], ty: TypeFloat}
				nextFP++
			}
		}
	}
	return out
}

// collectDecls visits every local declaration in a statement tree.
func collectDecls(s Stmt, visit func(*VarDecl)) {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			collectDecls(sub, visit)
		}
	case *DeclStmt:
		visit(st.Decl)
	case *IfStmt:
		collectDecls(st.Then, visit)
		if st.Else != nil {
			collectDecls(st.Else, visit)
		}
	case *WhileStmt:
		collectDecls(st.Body, visit)
	case *ForStmt:
		if st.Init != nil {
			collectDecls(st.Init, visit)
		}
		collectDecls(st.Body, visit)
	}
}

// countUses tallies variable references in a statement tree. Loop-body
// references count double so loop-carried variables win promotion.
func countUses(s Stmt, uses map[string]int) {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			countUses(sub, uses)
		}
	case *DeclStmt:
		if st.Init != nil {
			countExprUses(st.Init, uses, 1)
		}
	case *ExprStmt:
		countExprUses(st.X, uses, 1)
	case *IfStmt:
		countExprUses(st.Cond, uses, 1)
		countUses(st.Then, uses)
		if st.Else != nil {
			countUses(st.Else, uses)
		}
	case *WhileStmt:
		countExprUses(st.Cond, uses, 4)
		countScaled(st.Body, uses, 4)
	case *ForStmt:
		if st.Init != nil {
			countUses(st.Init, uses)
		}
		if st.Cond != nil {
			countExprUses(st.Cond, uses, 4)
		}
		if st.Post != nil {
			countExprUses(st.Post, uses, 4)
		}
		countScaled(st.Body, uses, 4)
	case *ReturnStmt:
		if st.X != nil {
			countExprUses(st.X, uses, 1)
		}
	}
}

// countScaled counts a loop body with a weight multiplier (approximated
// by repeating the walk's weight).
func countScaled(s Stmt, uses map[string]int, weight int) {
	tmp := map[string]int{}
	countUses(s, tmp)
	for name, n := range tmp {
		uses[name] += n * weight
	}
}

// countExprUses tallies variable references in an expression.
func countExprUses(e Expr, uses map[string]int, weight int) {
	switch x := e.(type) {
	case *Ident:
		uses[x.Name] += weight
	case *Index:
		uses[x.Name] += weight
		countExprUses(x.I, uses, weight)
	case *Unary:
		countExprUses(x.X, uses, weight)
	case *Binary:
		countExprUses(x.X, uses, weight)
		countExprUses(x.Y, uses, weight)
	case *Assign:
		countExprUses(x.LHS, uses, weight)
		countExprUses(x.RHS, uses, weight)
	case *Call:
		for _, a := range x.Args {
			countExprUses(a, uses, weight)
		}
	}
}
