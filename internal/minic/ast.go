package minic

// Type is a mini-C type.
type Type int

// Types.
const (
	TypeVoid Type = iota + 1
	TypeInt
	TypeFloat
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	default:
		return "?"
	}
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a global or local variable (scalar or array).
type VarDecl struct {
	Name    string
	Type    Type
	IsArray bool
	Len     int64 // array length (elements)
	// Initializers (globals only; compile-time constants).
	InitInt   []int64
	InitFloat []float64
	HasInit   bool
	Line      int
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []*VarDecl
	Body   *BlockStmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
	Init Expr // optional scalar initializer
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil (DeclStmt or ExprStmt)
	Cond Expr // may be nil (infinite)
	Post Expr // may be nil
	Body Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	X Expr // nil for void
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface {
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	V int64
}

// FloatLit is a float literal.
type FloatLit struct {
	V float64
}

// Ident references a variable.
type Ident struct {
	Name string
}

// Index is arr[i].
type Index struct {
	Name string
	I    Expr
}

// Unary is -x, !x, ~x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is x op y.
type Binary struct {
	Op   string
	X, Y Expr
}

// Assign is lvalue = value. Lvalue is an Ident or Index.
type Assign struct {
	LHS Expr
	RHS Expr
}

// Call is f(args...). Builtins are resolved during codegen.
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Index) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Assign) exprNode()   {}
func (*Call) exprNode()     {}
