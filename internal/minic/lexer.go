// Package minic implements a small C-like language ("mini-C") compiled to
// Thessaly-64 assembly. It is the stand-in for the gcc Alpha
// cross-compiler of the paper's workflow: the six benchmark applications
// of Section IV are written in mini-C, compiled by this package, and run
// on the simulated CPU where GemFI injects faults.
//
// Language summary:
//
//	int / float scalars, fixed-size global and local arrays
//	functions with up to 6 parameters, int/float/void returns
//	if/else, while, for, break, continue, return
//	arithmetic, comparison, logical (&&, || short-circuit), bitwise ops
//	intrinsics: fi_activate(id), fi_checkpoint(), putc(c), tid(),
//	            spawn(func, arg), join(t), yield(), thread_exit(),
//	            itof(i), ftoi(f), fsqrt(f), exit(status)
//	global initializers: scalars and {…} lists (computed at compile time
//	    by the host harness when generating workload sources)
package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokIntLit
	tokFloatLit
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "float": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes mini-C source.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// twoCharOps are the multi-character operators, longest match first.
var twoCharOps = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "++", "--",
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: l.line}, nil

	case unicode.IsDigit(rune(c)):
		return l.number()

	case c == '\'':
		// Character literal -> int.
		if l.pos+2 < len(l.src) && l.src[l.pos+1] == '\\' {
			esc := l.src[l.pos+2]
			if l.pos+3 >= len(l.src) || l.src[l.pos+3] != '\'' {
				return token{}, l.errf("unterminated char literal")
			}
			v, ok := map[byte]int64{'n': 10, 't': 9, '0': 0, 'r': 13, '\\': 92, '\'': 39}[esc]
			if !ok {
				return token{}, l.errf("unknown escape \\%c", esc)
			}
			l.pos += 4
			return token{kind: tokIntLit, text: "'\\'", ival: v, line: l.line}, nil
		}
		if l.pos+2 < len(l.src) && l.src[l.pos+2] == '\'' {
			v := int64(l.src[l.pos+1])
			l.pos += 3
			return token{kind: tokIntLit, text: "'c'", ival: v, line: l.line}, nil
		}
		return token{}, l.errf("bad char literal")

	default:
		for _, op := range twoCharOps {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokPunct, text: op, line: l.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%<>=!&|^~(){}[],;", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) number() (token, error) {
	start := l.pos
	isFloat := false
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf("bad hex literal %q", text)
		}
		return token{kind: tokIntLit, text: text, ival: v, line: l.line}, nil
	}
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.' ||
		l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
		((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
		if l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' {
			isFloat = true
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return token{}, l.errf("bad float literal %q", text)
		}
		return token{kind: tokFloatLit, text: text, fval: f, line: l.line}, nil
	}
	var v int64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
		return token{}, l.errf("bad int literal %q", text)
	}
	return token{kind: tokIntLit, text: text, ival: v, line: l.line}, nil
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isHexDigit(c byte) bool {
	return unicode.IsDigit(rune(c)) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
