package bench

// Sampling accuracy measurement: adaptive importance sampling vs the
// uniform referee on a fixed experiment budget. Both modes run through
// the real campaign service (journal, scheduler, sampler — the code path
// users get), against the same workload and budget; the comparison is
// the quality of the resulting vulnerability estimate, not throughput.
// Adaptive wins when its per-stratum confidence intervals are no wider
// at the worst stratum and its population-weighted aggregate interval is
// tighter — the experiments went where uncertainty was, instead of
// where the uniform draw happened to land.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/serv"
	"repro/internal/workloads"
)

// SamplingModeResult is one sampling mode's accuracy on a fixed budget.
type SamplingModeResult struct {
	Budget          int     `json:"budget"`
	Batches         int     `json:"batches"`
	AggP            float64 `json:"aggP"`            // stratified vulnerability estimate
	AggCIWidth      float64 `json:"aggCIWidth"`      // full aggregate interval width
	MaxStratumWidth float64 `json:"maxStratumWidth"` // widest per-stratum interval
	UnsampledStrata int     `json:"unsampledStrata"`
}

// SamplingResult compares the two modes for one workload.
type SamplingResult struct {
	Strata   int                `json:"strata"`
	Uniform  SamplingModeResult `json:"uniform"`
	Adaptive SamplingModeResult `json:"adaptive"`

	// AdaptiveMaxNoWider: adaptive's worst per-stratum interval is no
	// wider than uniform's. AdaptiveTighterAgg: adaptive's aggregate
	// interval is strictly tighter.
	AdaptiveMaxNoWider bool `json:"adaptiveMaxNoWider"`
	AdaptiveTighterAgg bool `json:"adaptiveTighterAgg"`
}

// MeasureSampling runs one workload's fixed budget through a real
// campaign service twice — uniform referee, then adaptive — and compares
// the interval quality. Both campaigns run in the same service instance
// (they are exactly the multi-tenant case the scheduler serves).
func MeasureSampling(workload string, scale workloads.Scale, budget, strata, batch, slots int, seed int64) (SamplingResult, error) {
	dir, err := os.MkdirTemp("", "gemfi-bench-sampling")
	if err != nil {
		return SamplingResult{}, err
	}
	defer os.RemoveAll(dir)
	s, err := serv.New(serv.Config{Dir: dir, Slots: slots})
	if err != nil {
		return SamplingResult{}, err
	}
	defer s.Shutdown(time.Second)

	scaleName := scaleString(scale)
	specs := map[string]serv.CampaignSpec{
		serv.SampleUniform: {
			Workload: workload, Scale: scaleName, N: budget, Seed: seed,
			Strata: strata, Workers: 2,
		},
		serv.SampleAdaptive: {
			Workload: workload, Scale: scaleName, N: budget, Seed: seed,
			Sampling: serv.SampleAdaptive, Strata: strata, Batch: batch, Workers: 2,
		},
	}
	reports := make(map[string]serv.Report)
	for mode, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			return SamplingResult{}, err
		}
		if !s.Wait(id, 30*time.Minute) {
			return SamplingResult{}, fmt.Errorf("bench: %s %s campaign timed out", workload, mode)
		}
		c, _ := s.Campaign(id)
		st := c.Status()
		if st.Phase != serv.PhaseDone {
			return SamplingResult{}, fmt.Errorf("bench: %s %s campaign %s: %s", workload, mode, st.Phase, st.Error)
		}
		reports[mode] = c.VulnReport()
	}

	res := SamplingResult{Strata: strata}
	for mode, rep := range reports {
		mr := SamplingModeResult{
			Budget:     rep.Total,
			AggP:       rep.AggP,
			AggCIWidth: rep.AggCIWidth,
		}
		for _, sr := range rep.Strata {
			if sr.Sampled == 0 {
				mr.UnsampledStrata++
			}
			if sr.CIWidth > mr.MaxStratumWidth {
				mr.MaxStratumWidth = sr.CIWidth
			}
		}
		switch mode {
		case serv.SampleUniform:
			res.Uniform = mr
		case serv.SampleAdaptive:
			res.Adaptive = mr
		}
	}
	// Campaign status carries the batch counts.
	for _, st := range s.Campaigns() {
		switch st.Sampling {
		case serv.SampleUniform:
			res.Uniform.Batches = st.Batches
		case serv.SampleAdaptive:
			res.Adaptive.Batches = st.Batches
		}
	}
	res.AdaptiveMaxNoWider = res.Adaptive.MaxStratumWidth <= res.Uniform.MaxStratumWidth
	res.AdaptiveTighterAgg = res.Adaptive.AggCIWidth < res.Uniform.AggCIWidth
	return res, nil
}

// MeasureSamplingSuite runs MeasureSampling over every paper workload.
func MeasureSamplingSuite(scale workloads.Scale, budget, strata, batch, slots int, seed int64,
	logf func(format string, args ...any)) (map[string]SamplingResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := make(map[string]SamplingResult)
	for _, name := range workloads.Names() {
		sr, err := MeasureSampling(name, scale, budget, strata, batch, slots, seed)
		if err != nil {
			return nil, err
		}
		out[name] = sr
		logf("sampling %-9s uniform agg ±%.4f (max stratum %.3f)  adaptive agg ±%.4f (max stratum %.3f)  tighter=%v",
			name, sr.Uniform.AggCIWidth/2, sr.Uniform.MaxStratumWidth,
			sr.Adaptive.AggCIWidth/2, sr.Adaptive.MaxStratumWidth, sr.AdaptiveTighterAgg)
	}
	return out, nil
}

func scaleString(s workloads.Scale) string {
	switch s {
	case workloads.ScaleSmall:
		return "small"
	case workloads.ScalePaper:
		return "paper"
	default:
		return "test"
	}
}
