// Package bench measures the simulator's core throughput numbers —
// guest instructions per second per CPU model and campaign experiments
// per second — and records them in BENCH_simcore.json so the performance
// trajectory is tracked across PRs. The committed file always contains
// the history of labelled records; CI regenerates a "ci" record in short
// mode and uploads it as an artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ModelResult is one CPU model's measured simulation throughput.
type ModelResult struct {
	Insts       uint64  `json:"insts"`       // guest instructions retired per run
	Seconds     float64 `json:"seconds"`     // best-of-reps wall time of one run
	InstsPerSec float64 `json:"instsPerSec"` // Insts / Seconds
}

// CampaignResult is a campaign configuration's measured throughput.
type CampaignResult struct {
	Experiments int     `json:"experiments"`
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	ExpsPerSec  float64 `json:"expsPerSec"`

	// Fork-server extras (omitted for replay configurations). The trunk
	// run is one-time setup amortized over the whole campaign, so it is
	// reported separately rather than folded into Seconds.
	TrunkSeconds  float64 `json:"trunkSeconds,omitempty"`
	SnapshotBytes uint64  `json:"snapshotBytes,omitempty"`
	Pruned        uint64  `json:"pruned,omitempty"`
}

// Record is one labelled measurement of the whole suite.
type Record struct {
	Label     string                    `json:"label"`
	Date      string                    `json:"date"`
	GoVersion string                    `json:"goVersion"`
	Workload  string                    `json:"workload"`
	Scale     string                    `json:"scale"`
	Models    map[string]ModelResult    `json:"models"`
	Campaigns map[string]CampaignResult `json:"campaigns"`
	// Sampling compares adaptive importance sampling against the uniform
	// referee per workload (test scale, fixed budget); present when the
	// suite ran with sampling measurement enabled.
	Sampling map[string]SamplingResult `json:"sampling,omitempty"`
}

// File is the BENCH_simcore.json schema: append-only labelled records,
// oldest first. Comparing the newest record against "baseline" gives the
// cumulative speedup.
type File struct {
	Records []Record `json:"records"`
}

// Load reads an existing benchmark file; a missing file yields an empty
// one (the first run creates it).
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{}, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &f, nil
}

// Save writes the benchmark file with stable indentation.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Find returns the record with the given label (newest wins), or nil.
func (f *File) Find(label string) *Record {
	for i := len(f.Records) - 1; i >= 0; i-- {
		if f.Records[i].Label == label {
			return &f.Records[i]
		}
	}
	return nil
}

// Add appends a record, replacing any previous record with the same
// label so re-runs don't accumulate duplicates.
func (f *File) Add(r Record) {
	out := f.Records[:0]
	for _, old := range f.Records {
		if old.Label != r.Label {
			out = append(out, old)
		}
	}
	f.Records = append(out, r)
}

// Config parameterizes a measurement run.
type Config struct {
	Label    string
	Workload string          // workload name (default "pi")
	Scale    workloads.Scale // default ScaleSmall; ScaleTest for -quick
	Reps     int             // best-of repetitions (default 3)

	// CampaignExps is the experiment count for the campaign throughput
	// measurements (default 40; 8 in quick mode).
	CampaignExps int
	// CampaignWorkers is the pool size (default 4).
	CampaignWorkers int

	// Sampling enables the adaptive-vs-uniform accuracy suite over all
	// paper workloads (test scale); SamplingBudget is the per-mode
	// experiment budget (default 48 over 8 strata, batches of 12).
	Sampling       bool
	SamplingBudget int
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = "pi"
	}
	if c.Scale == 0 {
		c.Scale = workloads.ScaleSmall
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.CampaignExps <= 0 {
		c.CampaignExps = 40
	}
	if c.CampaignWorkers <= 0 {
		c.CampaignWorkers = 4
	}
	return c
}

// MeasureModel runs the workload once per rep on the given model (fault
// engine attached but idle — the campaign-realistic configuration) and
// returns the best run.
func MeasureModel(w *workloads.Workload, model sim.ModelKind, reps int) (ModelResult, error) {
	return measureModel(w, model, reps, false, false)
}

// MeasureModelFlight is MeasureModel with the flight recorder attached —
// the post-mortem configuration. The delta against the plain model run is
// the recorder's commit-path overhead.
func MeasureModelFlight(w *workloads.Workload, model sim.ModelKind, reps int) (ModelResult, error) {
	return measureModel(w, model, reps, true, false)
}

// MeasureModelBBT is MeasureModel with the basic-block translator
// attached — the "atomic-bbt" record. The ratio against the plain atomic
// run is the translation speedup the ISSUE/ROADMAP targets.
func MeasureModelBBT(w *workloads.Workload, model sim.ModelKind, reps int) (ModelResult, error) {
	return measureModel(w, model, reps, false, true)
}

func measureModel(w *workloads.Workload, model sim.ModelKind, reps int, flight, bbt bool) (ModelResult, error) {
	p, err := w.Build()
	if err != nil {
		return ModelResult{}, err
	}
	best := ModelResult{Seconds: -1}
	for i := 0; i < reps; i++ {
		s := sim.New(sim.Config{Model: model, EnableFI: true, MaxInsts: 2_000_000_000,
			EnableFlight: flight, EnableBlockTranslation: bbt})
		if err := s.Load(p); err != nil {
			return ModelResult{}, err
		}
		t0 := time.Now()
		r := s.Run()
		dt := time.Since(t0).Seconds()
		if r.Failed() {
			return ModelResult{}, fmt.Errorf("bench: %s on %s failed: %+v", w.Name, model, r)
		}
		if best.Seconds < 0 || dt < best.Seconds {
			best = ModelResult{Insts: r.Insts, Seconds: dt, InstsPerSec: float64(r.Insts) / dt}
		}
	}
	return best, nil
}

// MeasureCampaign runs n checkpoint-fast-forwarded experiments across a
// pool and returns the throughput. The configuration is the paper's
// methodology: pipelined model with the switch-to-atomic optimization,
// plus the simulator-level fast-forward prefix when ff is set.
func MeasureCampaign(w *workloads.Workload, n, workers int, ff bool, seed int64) (CampaignResult, error) {
	return measureCampaign(w, n, workers, ff, false, seed)
}

// MeasureCampaignBBT is the fast-forward campaign with the basic-block
// translator accelerating the atomic prefix and post-resolve tail — the
// "fastforward-bbt" record.
func MeasureCampaignBBT(w *workloads.Workload, n, workers int, seed int64) (CampaignResult, error) {
	return measureCampaign(w, n, workers, true, true, seed)
}

func measureCampaign(w *workloads.Workload, n, workers int, ff, bbt bool, seed int64) (CampaignResult, error) {
	cfg := sim.DefaultConfig()
	cfg.FastForward = ff
	cfg.EnableBlockTranslation = bbt
	pool, err := campaign.NewPool(w, workers, campaign.RunnerOptions{Cfg: &cfg})
	if err != nil {
		return CampaignResult{}, err
	}
	exps := campaign.GenerateUniform(n, campaign.GenConfig{
		WindowInsts: pool.Runner().WindowInsts, Seed: seed,
	})
	t0 := time.Now()
	pool.RunAll(exps)
	dt := time.Since(t0).Seconds()
	return CampaignResult{
		Experiments: n, Workers: workers, Seconds: dt, ExpsPerSec: float64(n) / dt,
	}, nil
}

// MeasureForkCampaign runs n experiments through the fork server on the
// same pool configuration as MeasureCampaign: the one-time trunk run
// (EnableFork) is timed separately, and the reported throughput is the
// steady-state fork-and-run rate.
func MeasureForkCampaign(w *workloads.Workload, n, workers int, seed int64) (CampaignResult, error) {
	cfg := sim.DefaultConfig()
	pool, err := campaign.NewPool(w, workers, campaign.RunnerOptions{Cfg: &cfg})
	if err != nil {
		return CampaignResult{}, err
	}
	t0 := time.Now()
	if err := pool.EnableFork(campaign.DefaultForkOptions()); err != nil {
		return CampaignResult{}, err
	}
	trunk := time.Since(t0).Seconds()
	exps := campaign.GenerateUniform(n, campaign.GenConfig{
		WindowInsts: pool.Runner().WindowInsts, Seed: seed,
	})
	t1 := time.Now()
	pool.RunAll(exps)
	dt := time.Since(t1).Seconds()
	st := pool.ForkStats()
	return CampaignResult{
		Experiments: n, Workers: workers, Seconds: dt, ExpsPerSec: float64(n) / dt,
		TrunkSeconds:  trunk,
		SnapshotBytes: st.ApproxBytes,
		Pruned:        st.PrunedMasked + st.PrunedTwin,
	}, nil
}

// Run executes the full measurement suite and returns the record.
// Progress lines go to logf (may be nil).
func Run(cfg Config, logf func(format string, args ...any)) (Record, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	w, err := workloads.ByName(cfg.Workload, cfg.Scale)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Label:     cfg.Label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workload:  cfg.Workload,
		Scale:     scaleName(cfg.Scale),
		Models:    make(map[string]ModelResult),
		Campaigns: make(map[string]CampaignResult),
	}
	for _, model := range []sim.ModelKind{sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined} {
		mr, err := MeasureModel(w, model, cfg.Reps)
		if err != nil {
			return Record{}, err
		}
		rec.Models[string(model)] = mr
		logf("model %-9s %12.0f insts/sec (%d insts in %.3fs)", model, mr.InstsPerSec, mr.Insts, mr.Seconds)
	}
	// The flight-recorder overhead record: atomic with the ring attached.
	// Speedup ignores keys absent from the baseline, so old BENCH files
	// compare cleanly.
	fm, err := MeasureModelFlight(w, sim.ModelAtomic, cfg.Reps)
	if err != nil {
		return Record{}, err
	}
	rec.Models["atomic-flight"] = fm
	logf("model %-9s %12.0f insts/sec (%d insts in %.3fs)", "atomic-flight", fm.InstsPerSec, fm.Insts, fm.Seconds)
	// The block-translation record: atomic with hot guest code compiled
	// into fused closure chains. The ratio over plain atomic is the
	// translation speedup.
	bm, err := MeasureModelBBT(w, sim.ModelAtomic, cfg.Reps)
	if err != nil {
		return Record{}, err
	}
	rec.Models["atomic-bbt"] = bm
	logf("model %-9s %12.0f insts/sec (%d insts in %.3fs)", "atomic-bbt", bm.InstsPerSec, bm.Insts, bm.Seconds)
	for _, c := range []struct {
		name string
		ff   bool
	}{{"checkpoint", false}, {"fastforward", true}} {
		cr, err := MeasureCampaign(w, cfg.CampaignExps, cfg.CampaignWorkers, c.ff, 7)
		if err != nil {
			return Record{}, err
		}
		rec.Campaigns[c.name] = cr
		logf("campaign %-12s %8.1f exps/sec (%d exps, %d workers, %.3fs)",
			c.name, cr.ExpsPerSec, cr.Experiments, cr.Workers, cr.Seconds)
	}
	fr, err := MeasureForkCampaign(w, cfg.CampaignExps, cfg.CampaignWorkers, 7)
	if err != nil {
		return Record{}, err
	}
	br, err := MeasureCampaignBBT(w, cfg.CampaignExps, cfg.CampaignWorkers, 7)
	if err != nil {
		return Record{}, err
	}
	rec.Campaigns["fastforward-bbt"] = br
	logf("campaign %-12s %8.1f exps/sec (%d exps, %d workers, %.3fs)",
		"fastforward-bbt", br.ExpsPerSec, br.Experiments, br.Workers, br.Seconds)
	rec.Campaigns["fork"] = fr
	logf("campaign %-12s %8.1f exps/sec (%d exps, %d workers, %.3fs + %.3fs trunk, %d pruned, %d KiB snapshots)",
		"fork", fr.ExpsPerSec, fr.Experiments, fr.Workers, fr.Seconds, fr.TrunkSeconds,
		fr.Pruned, fr.SnapshotBytes/1024)
	if cfg.Sampling {
		budget := cfg.SamplingBudget
		if budget <= 0 {
			budget = 48
		}
		sampling, err := MeasureSamplingSuite(workloads.ScaleTest, budget, 8, 12,
			cfg.CampaignWorkers, 7, logf)
		if err != nil {
			return Record{}, err
		}
		rec.Sampling = sampling
	}
	return rec, nil
}

// Speedup renders the per-model and per-campaign ratios of cur over base.
func Speedup(base, cur *Record) string {
	if base == nil || cur == nil {
		return ""
	}
	out := ""
	for _, m := range []string{"atomic", "atomic-bbt", "timing", "pipelined", "atomic-flight"} {
		b, okB := base.Models[m]
		c, okC := cur.Models[m]
		if okB && okC && b.InstsPerSec > 0 {
			out += fmt.Sprintf("%-12s %6.2fx (%0.0f -> %0.0f insts/sec)\n", m, c.InstsPerSec/b.InstsPerSec, b.InstsPerSec, c.InstsPerSec)
		}
	}
	for name, c := range cur.Campaigns {
		if b, ok := base.Campaigns[name]; ok && b.ExpsPerSec > 0 {
			out += fmt.Sprintf("%-12s %6.2fx (%0.1f -> %0.1f exps/sec)\n", name, c.ExpsPerSec/b.ExpsPerSec, b.ExpsPerSec, c.ExpsPerSec)
		} else if b, ok := base.Campaigns["checkpoint"]; ok && b.ExpsPerSec > 0 {
			// New configurations compare against the plain checkpoint run.
			out += fmt.Sprintf("%-12s %6.2fx vs checkpoint (%0.1f -> %0.1f exps/sec)\n", name, c.ExpsPerSec/b.ExpsPerSec, b.ExpsPerSec, c.ExpsPerSec)
		}
	}
	return out
}

// Regressions lists the model records of cur whose throughput fell
// below ratio × base's (ratio 0.90 flags >10% regressions), sorted by
// name. Records absent from either side are skipped, so new models never
// fail against an old baseline. The CI perf job fails on a non-empty
// result.
func Regressions(base, cur *Record, ratio float64) []string {
	if base == nil || cur == nil {
		return nil
	}
	names := make([]string, 0, len(base.Models))
	for name := range base.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		b := base.Models[name]
		c, ok := cur.Models[name]
		if !ok || b.InstsPerSec <= 0 {
			continue
		}
		if r := c.InstsPerSec / b.InstsPerSec; r < ratio {
			out = append(out, fmt.Sprintf("%s: %.2fx (%0.0f -> %0.0f insts/sec)",
				name, r, b.InstsPerSec, c.InstsPerSec))
		}
	}
	return out
}

func scaleName(s workloads.Scale) string {
	switch s {
	case workloads.ScaleTest:
		return "test"
	case workloads.ScaleSmall:
		return "small"
	case workloads.ScalePaper:
		return "paper"
	default:
		return "unknown"
	}
}
