package serv

// Service is the campaign server: a durable, multi-tenant scheduler that
// accepts campaign specs over HTTP, persists every state transition to
// the journal, executes experiments on per-campaign local runner pools
// under a global slot budget (and, optionally, on NoW workers via the
// now.ExpSource bridge), and streams progress to any number of watchers.
//
// Fair sharing is smooth weighted round-robin over campaigns that have
// both pending work and an idle runner: each dispatch round every
// runnable campaign gains its weight, the largest accumulator wins the
// slot and pays the total back. Interleaving is proportional to weight
// even in short windows, so one tenant's 10k-experiment campaign cannot
// starve another's smoke test.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/now"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/httpserv"
	"repro/internal/prof"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// Config parameterizes a Service.
type Config struct {
	// Dir is the journal directory (required).
	Dir string
	// Slots bounds concurrent local experiment executions across all
	// campaigns (default 4).
	Slots int
	// Metrics receives service telemetry (nil disables).
	Metrics *obs.Registry
	// Spans, when set, turns on end-to-end span tracing: every
	// experiment — local or on a NoW worker — becomes one trace rooted
	// at the service (campaign/tenant/batch attributes), with the
	// runner's phase spans (and a remote worker's shipped spans)
	// stitched underneath. Served live via /trace/{id} and /traces.
	// Nil disables at no cost.
	Spans *obs.SpanRecorder
	// Flight turns on flight-recorder post-mortems service-wide: every
	// campaign's runners (local pool and NoW workers, via the welcome)
	// record the final committed instructions of each experiment and
	// interesting results carry a dump, journaled with the result and
	// served via /postmortem/{id}. Individual campaigns can also opt in
	// with CampaignSpec.Flight.
	Flight bool
}

// Service hosts campaigns. Lock order: a Campaign's mu may be held when
// taking s.mu (the journal/mirror path), never the reverse — anything
// holding s.mu must release it before touching a Campaign's lock.
type Service struct {
	cfg Config
	j   *journal

	mu     sync.Mutex
	st     *journalState // durable mirror; advanced with every append
	camps  map[string]*Campaign
	order  []string
	closed bool

	slots chan struct{} // global local-execution budget (semaphore)
	kickC chan struct{}
	stopC chan struct{}
	wg    sync.WaitGroup // dispatcher + experiment goroutines

	// Span bookkeeping for in-flight experiments (nil-map free when
	// tracing is off). spanMu is leaf-level: taken with c.mu or s.mu
	// held, never the reverse.
	spanMu   sync.Mutex
	expSpans map[expKey]*servExp
	retryOf  map[expKey]string

	submittedC *obs.Counter
	resultsC   *obs.Counter
	batchesC   *obs.Counter
	resumedC   *obs.Counter
}

// New opens (or creates) the journal in cfg.Dir, replays it, resumes
// every unfinished campaign, and starts the dispatcher.
func New(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serv: Config.Dir is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	j, st, err := openJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		j:        j,
		st:       st,
		camps:    make(map[string]*Campaign),
		slots:    make(chan struct{}, cfg.Slots),
		kickC:    make(chan struct{}, 1),
		stopC:    make(chan struct{}),
		expSpans: make(map[expKey]*servExp),
		retryOf:  make(map[expKey]string),
	}
	s.registerMetrics()
	if cfg.Spans != nil {
		cfg.Spans.AttachMetrics(cfg.Metrics)
	}

	// Resume: rebuild every journaled campaign. Finished ones are cheap
	// (state only — no golden run); unfinished ones relaunch through the
	// same prepare path a fresh submission takes, with the persisted
	// planned/results ledger restored so nothing reruns or double-counts.
	for _, id := range st.Order {
		p := st.Camps[id]
		c := newCampaign(id, p.Spec)
		c.spans = cfg.Spans
		c.flight = cfg.Flight
		s.camps[id] = c
		s.order = append(s.order, id)
		if p.Done {
			s.restoreFinished(c, p)
			continue
		}
		if s.resumedC != nil {
			s.resumedC.Inc()
		}
		snap := snapshotPersisted(p)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.launch(c, snap)
		}()
	}

	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

func (s *Service) registerMetrics() {
	r := s.cfg.Metrics
	s.submittedC = r.Counter("serv.campaigns_submitted")
	s.resultsC = r.Counter("serv.results_total")
	s.batchesC = r.Counter("serv.batches_planned")
	s.resumedC = r.Counter("serv.campaigns_resumed")
	if r == nil {
		return
	}
	r.RegisterFunc("serv.slots_busy", func() float64 {
		return float64(len(s.slots))
	})
	r.RegisterFunc("serv.campaigns_active", func() float64 {
		// Copy the campaign set under s.mu, then read each status under
		// its own lock — taking c.mu while holding s.mu would invert the
		// service's lock order (completion holds c.mu when journaling).
		s.mu.Lock()
		camps := make([]*Campaign, 0, len(s.camps))
		for _, c := range s.camps {
			camps = append(camps, c)
		}
		s.mu.Unlock()
		n := 0
		for _, c := range camps {
			if ph := c.Status().Phase; ph == PhaseRunning || ph == PhasePreparing {
				n++
			}
		}
		return float64(n)
	})
}

// snapshotPersisted deep-copies the mutable parts of a persisted record
// so a resuming campaign does not alias the live mirror.
func snapshotPersisted(p *persisted) *persisted {
	cp := &persisted{Spec: p.Spec, Window: p.Window, Batches: p.Batches, Done: p.Done}
	cp.Planned = append([]campaign.Experiment(nil), p.Planned...)
	cp.Results = make(map[int]campaign.Result, len(p.Results))
	for id, r := range p.Results {
		cp.Results[id] = r
	}
	return cp
}

// restoreFinished rebuilds a done campaign's read-only state (status,
// results, report) without the golden run or a runner pool.
func (s *Service) restoreFinished(c *Campaign, p *persisted) {
	c.mu.Lock()
	c.window = p.Window
	c.planned = append([]campaign.Experiment(nil), p.Planned...)
	for id, r := range p.Results {
		c.results[id] = r
	}
	c.batches = p.Batches
	if p.Window > 0 {
		c.sampler = newSampler(&c.Spec, p.Window)
		c.sampler.restore(c.planned, c.results, p.Batches)
	}
	c.phase = PhaseDone
	c.finishLocked()
	c.mu.Unlock()
}

// appendApply journals one record and folds it into the durable mirror,
// compacting when the journal has grown past the threshold. Safe to call
// while holding a Campaign's lock (s.mu is taken after c.mu by design).
func (s *Service) appendApply(r record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serv: service closed")
	}
	n, err := s.j.append(r)
	if err != nil {
		return err
	}
	s.st.apply(r)
	if n >= compactEvery {
		return s.j.compact(s.st)
	}
	return nil
}

// Submit validates a spec, journals it, and launches its campaign.
// Returns the assigned campaign ID.
func (s *Service) Submit(spec CampaignSpec) (string, error) {
	if err := validateSpec(&spec); err != nil {
		return "", err
	}
	if _, err := workloads.ByName(spec.Workload, workloads.ScaleTest); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("serv: service closed")
	}
	id := fmt.Sprintf("c%04d", len(s.order)+1)
	if _, err := s.j.append(record{T: recSpec, Campaign: id, Spec: &spec}); err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.st.apply(record{T: recSpec, Campaign: id, Spec: &spec})
	c := newCampaign(id, spec)
	c.spans = s.cfg.Spans
	c.flight = s.cfg.Flight
	s.camps[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	if s.submittedC != nil {
		s.submittedC.Inc()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.launch(c, nil)
	}()
	return id, nil
}

// launch takes a campaign from submitted (or journal-resumed: prev holds
// the persisted ledger) to running: golden run, sampler, first batch.
func (s *Service) launch(c *Campaign, prev *persisted) {
	window, err := c.prepare()
	if err != nil {
		c.fail(err)
		return
	}
	c.mu.Lock()
	if prev == nil || prev.Window == 0 {
		if err := s.appendApply(record{T: recWindow, Campaign: c.ID, Window: window}); err != nil {
			c.mu.Unlock()
			c.fail(err)
			return
		}
	}
	c.sampler = newSampler(&c.Spec, window)
	if prev != nil {
		c.sampler.restore(prev.Planned, prev.Results, prev.Batches)
		c.planned = prev.Planned
		c.batches = prev.Batches
		for id, r := range prev.Results {
			c.results[id] = r
		}
		for _, e := range c.planned {
			if _, done := c.results[e.ID]; !done {
				c.pending = append(c.pending, e)
			}
		}
	}
	if len(c.pending) == 0 {
		if err := s.planBatchLocked(c); err != nil {
			c.mu.Unlock()
			c.fail(err)
			return
		}
	}
	if len(c.pending) == 0 && len(c.inflight) == 0 {
		// Budget already spent (a resumed campaign whose last results were
		// journaled but whose done record was lost): finish now.
		s.finishLocked(c)
		c.mu.Unlock()
		return
	}
	c.phase = PhaseRunning
	c.mu.Unlock()
	c.broadcastStatus()
	s.kick()
}

// planBatchLocked asks the campaign's sampler for the next batch and
// journals it before exposing it to the scheduler. Caller holds c.mu.
// A nil-batch return with no error means the budget is spent.
func (s *Service) planBatchLocked(c *Campaign) error {
	exps := c.sampler.nextBatch(len(c.planned) + 1)
	if exps == nil {
		return nil
	}
	rec := record{T: recExps, Campaign: c.ID, Batch: c.sampler.batches, Exps: exps}
	if err := s.appendApply(rec); err != nil {
		return err
	}
	c.planned = append(c.planned, exps...)
	c.pending = append(c.pending, exps...)
	c.batches = c.sampler.batches
	for _, e := range exps {
		c.expBatch[e.ID] = rec.Batch
	}
	if s.batchesC != nil {
		s.batchesC.Inc()
	}
	return nil
}

// finishLocked journals the done record and closes out the campaign.
// Caller holds c.mu.
func (s *Service) finishLocked(c *Campaign) {
	_ = s.appendApply(record{T: recDone, Campaign: c.ID})
	c.phase = PhaseDone
	c.finishLocked()
}

// expKey identifies one in-flight experiment across campaigns.
type expKey struct {
	camp string
	id   int
}

// servExp is the service's side of one in-flight traced experiment:
// the open root span plus the dispatch wall-clock (for the NTP-style
// skew estimate when a remote worker's spans come back).
type servExp struct {
	span   *obs.Span
	sentNS int64
}

// startExpSpan roots one experiment's trace at the service — the root
// exists even if the executor dies — and returns the context runner or
// worker spans parent under. Zero context when tracing is off.
func (s *Service) startExpSpan(c *Campaign, exp campaign.Experiment, worker string) obs.SpanContext {
	if s.cfg.Spans == nil {
		return obs.SpanContext{}
	}
	c.mu.Lock()
	batch := c.expBatch[exp.ID]
	c.mu.Unlock()
	sp := s.cfg.Spans.StartRoot("experiment")
	sp.SetTrack(worker)
	sp.SetAttr("campaign", c.ID)
	sp.SetAttr("tenant", c.Spec.tenant())
	sp.SetAttr("workload", c.Spec.Workload)
	sp.SetAttr("exp_id", exp.ID)
	sp.SetAttr("worker", worker)
	if batch > 0 {
		sp.SetAttr("batch", batch)
	}
	if len(exp.Faults) > 0 {
		sp.SetAttr("fault", exp.Faults[0].String())
	}
	key := expKey{c.ID, exp.ID}
	s.spanMu.Lock()
	if prev := s.retryOf[key]; prev != "" {
		sp.SetAttr("retry_of", prev)
		delete(s.retryOf, key)
	}
	s.expSpans[key] = &servExp{span: sp, sentNS: time.Now().UnixNano()}
	s.spanMu.Unlock()
	return sp.Context()
}

// finishExpSpan ends an experiment's service-side root: remote span
// records (if any) are stitched underneath with a clock-skew estimate,
// the verdict lands as attributes, and crashed/SDC traces are kept
// regardless of sampling. No-op when the experiment was never traced.
func (s *Service) finishExpSpan(c *Campaign, res campaign.Result, spans []obs.SpanRecord) {
	s.spanMu.Lock()
	se := s.expSpans[expKey{c.ID, res.ID}]
	delete(s.expSpans, expKey{c.ID, res.ID})
	s.spanMu.Unlock()
	if se == nil {
		return
	}
	sp := se.span
	if len(spans) > 0 {
		rootID := sp.Context().SpanID
		for i := range spans {
			if spans[i].ParentID == rootID && spans[i].EndNS > 0 {
				recvNS := time.Now().UnixNano()
				skew := ((se.sentNS - spans[i].StartNS) + (recvNS - spans[i].EndNS)) / 2
				sp.SetAttr("clock_skew_ns", skew)
				break
			}
		}
		s.cfg.Spans.ImportSpans(spans)
	}
	if res.Worker != "" {
		sp.SetAttr("worker", res.Worker)
	}
	sp.SetAttr("outcome", res.Outcome.String())
	sp.SetAttr("fired", res.Fired)
	sp.SetTicks(0, res.Ticks)
	if res.Outcome == campaign.OutcomeCrashed {
		sp.SetStatus("crashed: " + res.CrashCause)
	}
	if res.Outcome == campaign.OutcomeCrashed || res.Outcome == campaign.OutcomeSDC {
		sp.ForceKeep()
	}
	sp.End()
}

// abandonExpSpan drops an experiment's half-built trace (its executor
// died or its result was a duplicate) and, when remember is set, notes
// the abandoned trace ID so the retry's span can carry retry_of —
// exactly one span tree per experiment survives.
func (s *Service) abandonExpSpan(campID string, expID int, remember bool) {
	key := expKey{campID, expID}
	s.spanMu.Lock()
	se := s.expSpans[key]
	delete(s.expSpans, key)
	if se != nil && remember {
		s.retryOf[key] = se.span.Context().TraceID
	}
	s.spanMu.Unlock()
	if se != nil {
		s.cfg.Spans.Abandon(se.span.Context().TraceID)
	}
}

// complete folds one classified experiment into the campaign: dedupe,
// journal, sampler evidence, stream broadcast, and — when the batch has
// drained — the next batch or the finish line. The exactly-once point:
// a result is journaled and counted only if its ID was not already
// classified, so requeued or duplicated executions collapse to one.
func (s *Service) complete(c *Campaign, res campaign.Result, spans []obs.SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.results[res.ID]; dup {
		s.abandonExpSpan(c.ID, res.ID, false)
		return
	}
	if err := s.appendApply(record{T: recResult, Campaign: c.ID, Result: &res}); err != nil {
		// Journal write failed (closed mid-shutdown, disk error): drop the
		// result rather than count something the ledger never saw.
		delete(c.inflight, res.ID)
		s.abandonExpSpan(c.ID, res.ID, false)
		return
	}
	s.finishExpSpan(c, res, spans)
	c.results[res.ID] = res
	delete(c.inflight, res.ID)
	c.sampler.record(res)
	if s.resultsC != nil {
		s.resultsC.Inc()
	}
	c.broadcastLocked(streamEvent{Type: "result", Result: &res})
	if len(c.pending) == 0 && len(c.inflight) == 0 {
		if err := s.planBatchLocked(c); err != nil {
			c.mu.Unlock()
			c.fail(err)
			c.mu.Lock()
			return
		}
		if len(c.pending) == 0 {
			s.finishLocked(c)
		}
	}
}

// kick wakes the dispatcher (coalescing).
func (s *Service) kick() {
	select {
	case s.kickC <- struct{}{}:
	default:
	}
}

// dispatch is the scheduler loop: on every wake it hands out as many
// (campaign, experiment, runner, slot) quadruples as it can.
func (s *Service) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopC:
			return
		case <-s.kickC:
		}
		for s.dispatchOne() {
		}
	}
}

// dispatchOne picks the next campaign by smooth weighted round-robin
// among those with pending work and an idle runner, takes a global slot,
// and launches one experiment. Returns false when nothing can start.
func (s *Service) dispatchOne() bool {
	select {
	case s.slots <- struct{}{}:
	default:
		return false // all slots busy; a completion will re-kick
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.slots
		return false
	}
	cands := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		cands = append(cands, s.camps[id])
	}
	s.mu.Unlock()

	// Smooth WRR (nginx variant): every runnable candidate gains its
	// weight; the largest accumulator wins and repays the round total.
	// wrrCur is touched only here, on the single dispatcher goroutine.
	var pick *Campaign
	var pickRunner *campaign.Runner
	var pickExp campaign.Experiment
	total := 0
	for _, c := range cands {
		c.mu.Lock()
		runnable := c.phase == PhaseRunning && len(c.pending) > 0
		c.mu.Unlock()
		if !runnable {
			continue
		}
		r := c.borrowRunner()
		if r == nil {
			continue // pool busy; its completion will re-kick
		}
		w := c.Spec.weight()
		total += w
		c.wrrCur += w
		if pick == nil || c.wrrCur > pick.wrrCur {
			if pick != nil {
				pick.returnRunner(pickRunner)
			}
			pick, pickRunner = c, r
		} else {
			c.returnRunner(r)
		}
	}
	if pick == nil {
		<-s.slots
		return false
	}
	pick.wrrCur -= total

	pick.mu.Lock()
	exp, ok := pick.takeLocked()
	pick.mu.Unlock()
	if !ok {
		pick.returnRunner(pickRunner)
		<-s.slots
		return false
	}
	pickExp = exp

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ctx := s.startExpSpan(pick, pickExp, "local")
		res := pickRunner.RunCtx(pickExp, ctx)
		pick.returnRunner(pickRunner)
		<-s.slots
		s.complete(pick, res, nil)
		s.kick()
	}()
	return true
}

// Campaign looks up a hosted campaign by ID.
func (s *Service) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.camps[id]
	return c, ok
}

// Campaigns lists every hosted campaign's status in submission order.
func (s *Service) Campaigns() []CampaignStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	camps := make([]*Campaign, len(ids))
	for i, id := range ids {
		camps[i] = s.camps[id]
	}
	s.mu.Unlock()
	out := make([]CampaignStatus, len(camps))
	for i, c := range camps {
		out[i] = c.Status()
	}
	return out
}

// Wait blocks until the campaign finishes (done or failed) or the
// timeout elapses; reports whether it finished.
func (s *Service) Wait(id string, timeout time.Duration) bool {
	c, ok := s.Campaign(id)
	if !ok {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		st := c.Status()
		if st.Phase == PhaseDone || st.Phase == PhaseFailed {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Shutdown drains gracefully: no new dispatches, in-flight experiments
// run to completion within the bound, then the journal is fsynced and
// closed. Safe to call once.
func (s *Service) Shutdown(deadline time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopC)

	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if len(s.slots) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.j.sync(); err != nil {
		return err
	}
	return s.j.close()
}

// Close abandons the service without draining or fsync — the crash-test
// hook (per-record flushes are the only durability). In-flight
// experiment goroutines fail their journal appends and drop out.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopC)
	_ = s.j.close()
}

// ---- NoW bridge: the service as an experiment source ----

// Open implements now.ExpSource: an arriving worker is assigned to the
// running campaign with the most pending work (ties to submission
// order). ok=false when nothing needs remote help.
func (s *Service) Open(workerName string) (now.Welcome, now.Session, bool) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	camps := make([]*Campaign, len(ids))
	for i, id := range ids {
		camps[i] = s.camps[id]
	}
	s.mu.Unlock()

	var pick *Campaign
	best := 0
	for _, c := range camps {
		c.mu.Lock()
		n := 0
		if c.phase == PhaseRunning {
			n = len(c.pending)
		}
		c.mu.Unlock()
		if n > best {
			pick, best = c, n
		}
	}
	if pick == nil {
		return now.Welcome{}, nil, false
	}
	scale, _ := pick.Spec.scale()
	wel := now.Welcome{
		Campaign:    pick.ID,
		Workload:    pick.Spec.Workload,
		Scale:       int(scale),
		Checkpoint:  pick.ckptBytes,
		WindowInsts: pick.window,
		Model:       string(pick.Spec.model()),
		MaxInsts:    pick.Spec.MaxInsts,
		SpanTrace:   s.cfg.Spans != nil,
		Flight:      s.cfg.Flight || pick.Spec.Flight,
	}
	return wel, &servSession{s: s, c: pick, worker: workerName,
		taken: make(map[int]campaign.Experiment)}, true
}

// ServeWorkers serves the NoW worker protocol on ln until it closes.
func (s *Service) ServeWorkers(ln net.Listener) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		now.ServeSource(ln, s)
	}()
}

// servSession is one worker connection's campaign assignment.
type servSession struct {
	s      *Service
	c      *Campaign
	worker string

	mu    sync.Mutex
	taken map[int]campaign.Experiment
}

func (ss *servSession) Take() (campaign.Experiment, obs.SpanContext, bool) {
	ss.c.mu.Lock()
	exp, ok := ss.c.takeLocked()
	ss.c.mu.Unlock()
	if !ok {
		return exp, obs.SpanContext{}, false
	}
	ss.mu.Lock()
	ss.taken[exp.ID] = exp
	ss.mu.Unlock()
	return exp, ss.s.startExpSpan(ss.c, exp, ss.worker), true
}

func (ss *servSession) Complete(res campaign.Result, spans []obs.SpanRecord) {
	ss.mu.Lock()
	delete(ss.taken, res.ID)
	ss.mu.Unlock()
	ss.s.complete(ss.c, res, spans)
	ss.s.kick()
}

// Close requeues whatever the dead worker took but never finished; the
// results ledger guarantees anything it did finish counts exactly once.
// The orphaned traces are abandoned and remembered so the retries'
// fresh spans can name what they replace.
func (ss *servSession) Close() {
	ss.mu.Lock()
	exps := make([]campaign.Experiment, 0, len(ss.taken))
	for _, e := range ss.taken {
		exps = append(exps, e)
	}
	ss.taken = make(map[int]campaign.Experiment)
	ss.mu.Unlock()
	if len(exps) > 0 {
		for _, e := range exps {
			ss.s.abandonExpSpan(ss.c.ID, e.ID, true)
		}
		ss.c.requeue(exps)
		ss.s.kick()
	}
}

// ---- HTTP API ----

// Postmortem looks up one flight-recorder dump across every hosted
// campaign. id is the experiment's span trace ID (the join key Results
// and /traces expose) or the explicit "<campaign>/<expID>" form. Dumps
// live on journaled results, so they survive restarts like everything
// else in the ledger.
func (s *Service) Postmortem(id string) (*flight.Postmortem, bool) {
	s.mu.Lock()
	camps := make([]*Campaign, 0, len(s.camps))
	for _, c := range s.camps {
		camps = append(camps, c)
	}
	s.mu.Unlock()
	var campID string
	expID := -1
	if i := strings.IndexByte(id, '/'); i > 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil {
			campID, expID = id[:i], n
		}
	}
	for _, c := range camps {
		c.mu.Lock()
		if expID >= 0 {
			if c.ID == campID {
				if res, ok := c.results[expID]; ok && res.Postmortem != nil {
					c.mu.Unlock()
					return res.Postmortem, true
				}
			}
		} else {
			for _, res := range c.results {
				if res.Postmortem != nil && res.TraceID == id {
					c.mu.Unlock()
					return res.Postmortem, true
				}
			}
		}
		c.mu.Unlock()
	}
	return nil, false
}

// Handler returns the service's HTTP surface: the campaign API plus the
// standard observability endpoints (with per-campaign keying wired).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaigns", s.handleCampaigns)
	mux.HandleFunc("/campaigns/", s.handleCampaign)
	mux.Handle("/", httpserv.Handler(httpserv.Config{
		Metrics: s.cfg.Metrics,
		Spans:   s.cfg.Spans,
		Status:  func() any { return s.Campaigns() },
		StatusFor: func(id string) (any, bool) {
			c, ok := s.Campaign(id)
			if !ok {
				return nil, false
			}
			return c.Status(), true
		},
		ProfileFor: func(id string) (*prof.Profile, bool) {
			c, ok := s.Campaign(id)
			if !ok {
				return nil, false
			}
			return c.Profile(), true
		},
		TaintFor: func(id string) (*taint.PropReport, bool) {
			c, ok := s.Campaign(id)
			if !ok {
				return nil, false
			}
			return c.TaintReport(), true
		},
		Postmortem: s.Postmortem,
	}))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleCampaigns serves POST /campaigns (submit) and GET /campaigns
// (list).
func (s *Service) handleCampaigns(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		var spec CampaignSpec
		if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Campaigns())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleCampaign serves GET /campaigns/{id}[/results|/report|/stream].
func (s *Service) handleCampaign(w http.ResponseWriter, req *http.Request) {
	rest := strings.TrimPrefix(req.URL.Path, "/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	c, ok := s.Campaign(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, c.Status())
	case "results":
		writeJSON(w, http.StatusOK, c.Results())
	case "report":
		writeJSON(w, http.StatusOK, c.VulnReport())
	case "stream":
		s.handleStream(w, req, c)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown endpoint %q", sub))
	}
}

// handleStream serves one SSE watcher: the full result history so far,
// then live results as they classify, then a terminal done event.
func (s *Service) handleStream(w http.ResponseWriter, req *http.Request, c *Campaign) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := c.subscribe()
	defer cancel()
	for {
		select {
		case <-req.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			var payload any
			switch {
			case ev.Result != nil:
				payload = ev.Result
			case ev.Status != nil:
				payload = ev.Status
			default:
				payload = struct{}{}
			}
			b, err := json.Marshal(payload)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
			fl.Flush()
			if ev.Type == "done" {
				return
			}
		}
	}
}

// Serve starts an HTTP server for the service API on addr; returns the
// bound server (Close it to stop).
func (s *Service) Serve(addr string) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return srv, ln, nil
}
