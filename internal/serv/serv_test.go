package serv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/now"
	"repro/internal/sim"
	"repro/internal/workloads"
)

const waitBound = 180 * time.Second

// directResults runs the service's uniform experiment plan by hand — the
// conformance referee for every service-path test.
func directResults(t *testing.T, spec CampaignSpec) ([]campaign.Result, uint64) {
	t.Helper()
	scale, err := spec.scale()
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName(spec.Workload, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Model: spec.model(), EnableFI: true, MaxInsts: spec.MaxInsts}
	r, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	exps := campaign.GenerateUniform(spec.N, campaign.GenConfig{
		WindowInsts: r.WindowInsts, Seed: spec.Seed,
	})
	out := make([]campaign.Result, 0, len(exps))
	for _, e := range exps {
		out = append(out, r.Run(e))
	}
	return out, r.WindowInsts
}

// TestServiceUniformMatchesDirect: a service-hosted uniform campaign
// classifies exactly the experiments (and outcomes) a by-hand campaign
// with the same seed does.
func TestServiceUniformMatchesDirect(t *testing.T) {
	spec := CampaignSpec{Workload: "pi", N: 10, Seed: 41, Workers: 2}
	want, _ := directResults(t, spec)

	s, err := New(Config{Dir: t.TempDir(), Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Wait(id, waitBound) {
		t.Fatal("campaign did not finish")
	}
	c, _ := s.Campaign(id)
	st := c.Status()
	if st.Phase != PhaseDone {
		t.Fatalf("phase %s (err %s)", st.Phase, st.Error)
	}
	got := c.Results()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	// Service IDs are 1-based (renumbered by the sampler); the generation
	// order is identical, so got[i] corresponds to want[i].
	for i := range got {
		if got[i].ID != i+1 {
			t.Fatalf("result %d has ID %d", i, got[i].ID)
		}
		if got[i].Outcome != want[i].Outcome || got[i].Fault != want[i].Fault {
			t.Fatalf("result %d: service %v/%v, direct %v/%v",
				i, got[i].Outcome, got[i].Fault, want[i].Outcome, want[i].Fault)
		}
	}
}

// TestServiceCrashResume is the exactly-once tentpole test: a service is
// abandoned (no drain, no fsync — the in-process SIGKILL analog) partway
// through a campaign; a second service on the same journal finishes it;
// the final ledger is experiment-for-experiment identical to an
// uninterrupted reference, with no double-counted IDs.
func TestServiceCrashResume(t *testing.T) {
	spec := CampaignSpec{Workload: "pi", N: 18, Seed: 5}
	want, _ := directResults(t, spec)

	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Crash as soon as some — but not all — results are in.
	deadline := time.Now().Add(waitBound)
	for {
		c, _ := s1.Campaign(id)
		if st := c.Status(); st.Done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Close()

	s2, err := New(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(time.Second)
	if !s2.Wait(id, waitBound) {
		t.Fatal("resumed campaign did not finish")
	}
	c, ok := s2.Campaign(id)
	if !ok {
		t.Fatal("campaign lost across restart")
	}
	st := c.Status()
	if st.Phase != PhaseDone {
		t.Fatalf("resumed phase %s (err %s)", st.Phase, st.Error)
	}
	got := c.Results()
	if len(got) != spec.N {
		t.Fatalf("resumed campaign has %d results, want %d", len(got), spec.N)
	}
	seen := map[int]bool{}
	for i, r := range got {
		if seen[r.ID] {
			t.Fatalf("experiment %d double-counted", r.ID)
		}
		seen[r.ID] = true
		if r.Outcome != want[i].Outcome {
			t.Fatalf("experiment %d: resumed %v, reference %v", r.ID, r.Outcome, want[i].Outcome)
		}
	}
	gotTally := campaign.TallyOf(got)
	wantTally := campaign.TallyOf(want)
	for _, o := range campaign.Outcomes() {
		if gotTally[o] != wantTally[o] {
			t.Fatalf("tally mismatch at %v: resumed %d, reference %d", o, gotTally[o], wantTally[o])
		}
	}

	// The durable ledger agrees: exactly N results journaled, no more.
	if err := s2.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	_, st3, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := st3.Camps[id]
	if p == nil || len(p.Results) != spec.N || !p.Done {
		t.Fatalf("journal ledger wrong: %+v", p)
	}
}

// TestServiceAdaptiveCampaign: the adaptive sampler drives a campaign to
// its budget in multiple batches, with per-stratum accounting that sums
// to the budget.
func TestServiceAdaptiveCampaign(t *testing.T) {
	spec := CampaignSpec{
		Workload: "pi", N: 24, Seed: 9,
		Sampling: SampleAdaptive, Strata: 4, Batch: 8, Workers: 2,
	}
	s, err := New(Config{Dir: t.TempDir(), Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Wait(id, waitBound) {
		t.Fatal("campaign did not finish")
	}
	c, _ := s.Campaign(id)
	st := c.Status()
	if st.Phase != PhaseDone {
		t.Fatalf("phase %s (err %s)", st.Phase, st.Error)
	}
	if st.Done != spec.N {
		t.Fatalf("done %d, want %d", st.Done, spec.N)
	}
	if st.Batches < 2 {
		t.Fatalf("adaptive campaign planned %d batches, want several", st.Batches)
	}
	rep := c.VulnReport()
	if len(rep.Strata) != spec.Strata {
		t.Fatalf("report has %d strata, want %d", len(rep.Strata), spec.Strata)
	}
	sampled := 0
	for _, sr := range rep.Strata {
		sampled += sr.Sampled
		if sr.Sampled == 0 && sr.CIWidth != 1 {
			// Unsampled strata carry maximal uncertainty by definition.
			t.Fatalf("unsampled stratum [%d,%d] has width %v, want 1", sr.Lo, sr.Hi, sr.CIWidth)
		}
	}
	if sampled != spec.N {
		t.Fatalf("strata account %d samples, want %d", sampled, spec.N)
	}
	if rep.AggCIWidth <= 0 {
		t.Fatal("aggregate interval missing")
	}
}

// TestServiceHTTP drives the full client surface: submit over POST,
// watch over SSE until done, then read status/results/report and the
// keyed observability endpoints.
func TestServiceHTTP(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := CampaignSpec{Workload: "pi", N: 6, Seed: 3}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var created struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.ID == "" {
		t.Fatal("no campaign ID")
	}

	// Stream until done: every result arrives exactly once, then the
	// terminal done event carries the final status.
	resp, err = http.Get(ts.URL + "/campaigns/" + created.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var event string
	results := map[int]bool{}
	doneSeen := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "result":
				var r campaign.Result
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					t.Fatal(err)
				}
				if results[r.ID] {
					t.Fatalf("stream delivered experiment %d twice", r.ID)
				}
				results[r.ID] = true
			case "done":
				var st CampaignStatus
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatal(err)
				}
				if st.Phase != PhaseDone {
					t.Fatalf("done event phase %s", st.Phase)
				}
				doneSeen = true
			}
		}
		if doneSeen {
			break
		}
	}
	if !doneSeen {
		t.Fatal("stream ended without a done event")
	}
	if len(results) != spec.N {
		t.Fatalf("stream delivered %d results, want %d", len(results), spec.N)
	}

	// REST reads.
	for _, path := range []string{
		"/campaigns",
		"/campaigns/" + created.ID,
		"/campaigns/" + created.ID + "/results",
		"/campaigns/" + created.ID + "/report",
		"/status?campaign=" + created.ID,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	var rep Report
	resp, err = http.Get(ts.URL + "/campaigns/" + created.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Total != spec.N {
		t.Fatalf("report total %d, want %d", rep.Total, spec.N)
	}

	// Unknown campaigns 404 on both API and keyed observability paths.
	for _, path := range []string{"/campaigns/nope", "/status?campaign=nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Bad specs are rejected before anything is journaled.
	for _, bad := range []CampaignSpec{
		{N: 5},                                    // no workload
		{Workload: "pi"},                          // no budget
		{Workload: "pi", N: 5, Scale: "galaxy"},   // bad scale
		{Workload: "pi", N: 5, Sampling: "maybe"}, // bad mode
	} {
		b, _ := json.Marshal(bad)
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %+v accepted with %d", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServiceNoWWorkers: the service feeds its queue to protocol workers
// via the ExpSource bridge, and a worker death mid-campaign loses
// nothing — its taken experiments requeue and count exactly once.
func TestServiceNoWWorkers(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	s.ServeWorkers(ln)

	spec := CampaignSpec{Workload: "pi", N: 16, Seed: 13}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the campaign to be serving before pointing a worker at it.
	deadline := time.Now().Add(waitBound)
	for {
		c, _ := s.Campaign(id)
		if c.Status().Phase == PhaseRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	w := now.NewWorker(now.WorkerConfig{Addr: ln.Addr().String(), Slots: 2})
	done := make(chan int, 1)
	go func() {
		n, _ := w.Run() // a late fetch may race campaign completion; the ledger below is the check
		done <- n
	}()

	if !s.Wait(id, waitBound) {
		t.Fatal("campaign did not finish")
	}
	workerN := <-done
	c, _ := s.Campaign(id)
	got := c.Results()
	if len(got) != spec.N {
		t.Fatalf("campaign has %d results, want %d", len(got), spec.N)
	}
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r.ID] {
			t.Fatalf("experiment %d double-counted", r.ID)
		}
		seen[r.ID] = true
	}
	t.Logf("worker completed %d of %d experiments", workerN, spec.N)
}

// TestServiceFairSharing: two campaigns submitted together both finish,
// and the heavier-weighted one does not starve the lighter.
func TestServiceFairSharing(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	idA, err := s.Submit(CampaignSpec{Workload: "pi", N: 8, Seed: 1, Tenant: "a", Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Submit(CampaignSpec{Workload: "pi", N: 8, Seed: 2, Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{idA, idB} {
		if !s.Wait(id, waitBound) {
			t.Fatalf("campaign %s did not finish", id)
		}
		c, _ := s.Campaign(id)
		if st := c.Status(); st.Phase != PhaseDone || st.Done != 8 {
			t.Fatalf("campaign %s: %+v", id, st)
		}
	}
	sts := s.Campaigns()
	if len(sts) != 2 {
		t.Fatalf("listed %d campaigns, want 2", len(sts))
	}
	if sts[0].Tenant != "a" || sts[1].Tenant != "b" {
		t.Fatalf("tenants wrong: %s %s", sts[0].Tenant, sts[1].Tenant)
	}
}
