package serv

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/now"
	"repro/internal/obs"
)

// TestServiceTracedForkCampaignNoW is the acceptance end-to-end: a
// fork-mode campaign through the service with one NoW worker attached
// must produce exactly one span tree per experiment, fetchable live via
// /trace/{id}, with the worker-side spans stitched under the service's
// experiment root.
func TestServiceTracedForkCampaignNoW(t *testing.T) {
	rec := obs.NewSpanRecorder()
	s, err := New(Config{Dir: t.TempDir(), Slots: 1, Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	s.ServeWorkers(ln)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The pipelined model keeps local execution slow enough that the NoW
	// worker reliably joins mid-campaign and takes a share.
	// A heavy, high-weight blocker campaign pins the single local slot so
	// the traced campaign's experiments reliably wait long enough for the
	// NoW worker to join and take a share.
	blockerID, err := s.Submit(CampaignSpec{
		Workload: "pi", N: 30, Seed: 1, Scale: "small", Model: "pipelined",
		Tenant: "blocker", Weight: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, s, blockerID, PhaseRunning)

	spec := CampaignSpec{Workload: "pi", N: 40, Seed: 13, Fork: true, Tenant: "t1"}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, s, id, PhaseRunning)
	w := now.NewWorker(now.WorkerConfig{Addr: ln.Addr().String(), Slots: 2, Name: "nw0"})
	workerDone := make(chan int, 1)
	go func() {
		n, err := w.Run()
		if err != nil {
			t.Logf("worker exit: %v", err)
		}
		workerDone <- n
	}()
	if !s.Wait(id, waitBound) {
		t.Fatal("campaign did not finish")
	}
	workerN := <-workerDone
	t.Logf("NoW worker completed %d of %d experiments", workerN, spec.N)

	c, _ := s.Campaign(id)
	results := c.Results()
	if len(results) != spec.N {
		t.Fatalf("results = %d, want %d", len(results), spec.N)
	}

	// Satellite: every result carries wall-clock, and remote ones name
	// their worker; the HTTP results JSON exposes both.
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/results: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"wallNs"`) {
		t.Error("/results JSON has no wallNs field")
	}
	remoteSeen := false
	for _, r := range results {
		if r.WallNs <= 0 {
			t.Errorf("experiment %d: wallNs = %d", r.ID, r.WallNs)
		}
		if r.TraceID == "" {
			t.Errorf("experiment %d: no trace ID", r.ID)
		}
		if strings.HasPrefix(r.Worker, "nw0") {
			remoteSeen = true
		}
	}
	if !remoteSeen {
		t.Error("no experiment ran on the NoW worker")
	}

	// One span tree per experiment, live via /trace/{id}.
	perExp := map[int]int{}
	workerSpanSeen := false
	for _, r := range results {
		resp, err := http.Get(ts.URL + "/trace/" + r.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/trace/%s: %d %s", r.TraceID, resp.StatusCode, body)
		}
		var tr obs.Trace
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			t.Fatalf("/trace/%s: %v", r.TraceID, err)
		}
		root := tr.Root()
		if root == nil || root.Name != "experiment" || root.ParentID != "" {
			t.Fatalf("trace %s: bad root %+v", r.TraceID, root)
		}
		expID, ok := root.Attrs["exp_id"].(float64) // JSON round trip
		if !ok {
			t.Fatalf("trace %s: root missing exp_id: %v", r.TraceID, root.Attrs)
		}
		perExp[int(expID)]++
		for i := range tr.Spans {
			if tr.Spans[i].Name == "worker" {
				workerSpanSeen = true
				if tr.Spans[i].ParentID != root.SpanID {
					t.Errorf("trace %s: worker span not under root", r.TraceID)
				}
			}
		}
		var buf bytes.Buffer
		for i := range tr.Spans {
			b, _ := json.Marshal(tr.Spans[i])
			buf.Write(b)
			buf.WriteByte('\n')
		}
		if _, err := obs.ValidateSpansJSONL(&buf); err != nil {
			t.Errorf("trace %s: invalid tree: %v", r.TraceID, err)
		}
	}
	for expID, n := range perExp {
		if n != 1 {
			t.Errorf("experiment %d has %d span trees, want exactly 1", expID, n)
		}
	}
	if len(perExp) != spec.N {
		t.Errorf("distinct experiment trees = %d, want %d", len(perExp), spec.N)
	}
	if !workerSpanSeen {
		t.Error("no worker spans stitched into any tree")
	}

	// The recent-trace listing filters by tenant (the blocker campaign's
	// traces share the recorder and must not show up here).
	resp, err = http.Get(ts.URL + "/traces?tenant=t1&n=100")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	var list []map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("/traces: %v in %s", err, body)
	}
	if len(list) != spec.N {
		t.Errorf("/traces listed %d, want %d", len(list), spec.N)
	}
	// Text timeline renders.
	resp, err = http.Get(ts.URL + "/trace/" + results[0].TraceID + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if !strings.Contains(body, "experiment") {
		t.Errorf("text timeline missing root: %s", body)
	}
}

func waitPhase(t *testing.T, s *Service, id, phase string) {
	t.Helper()
	deadline := time.Now().Add(waitBound)
	for {
		c, ok := s.Campaign(id)
		if ok && c.Status().Phase == phase {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached phase %s", id, phase)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return buf.String()
}

// TestJournalOldResultRecordsReplay: journals written before results
// carried wallNs/worker/traceId must still replay — the new fields are
// additive, so a finished campaign's ledger survives the upgrade.
func TestJournalOldResultRecordsReplay(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(CampaignSpec{Workload: "pi", N: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Wait(id, waitBound) {
		t.Fatal("campaign did not finish")
	}
	if err := s1.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}

	// Rewrite the journal as an old server would have written it: strip
	// the post-upgrade result fields from every record line.
	logPath := filepath.Join(dir, "journal.jsonl")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line: %v", err)
		}
		if res, ok := rec["result"].(map[string]any); ok {
			delete(res, "wallNs")
			delete(res, "worker")
			delete(res, "traceId")
			delete(res, "phaseNs")
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	if err := os.WriteFile(logPath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// An old snapshot would also lack the fields; removing it forces the
	// replay through the rewritten journal alone.
	os.Remove(filepath.Join(dir, "snapshot.json"))

	s2, err := New(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatalf("resume on old-format journal: %v", err)
	}
	defer s2.Shutdown(time.Second)
	c, ok := s2.Campaign(id)
	if !ok {
		t.Fatal("campaign lost on replay")
	}
	if st := c.Status(); st.Phase != PhaseDone {
		t.Fatalf("replayed phase = %s, want done", st.Phase)
	}
	results := c.Results()
	if len(results) != 6 {
		t.Fatalf("replayed results = %d, want 6", len(results))
	}
	for _, r := range results {
		if r.WallNs != 0 || r.Worker != "" || r.TraceID != "" {
			t.Fatalf("old record grew fields on replay: %+v", r)
		}
	}
}
