package serv

// One hosted campaign: its spec, its durable ledger mirror (planned
// experiments, results), its runner pool, its sampler, and its stream
// subscribers. The Service's scheduler moves experiments from pending to
// in-flight to results; every transition that matters for resumption is
// journaled by the Service before the in-memory state advances.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// CampaignSpec is what a client POSTs to /campaigns.
type CampaignSpec struct {
	// Name is an optional human label; Tenant is the fair-share account
	// (empty = "default"); Weight biases the round-robin (default 1).
	Name   string `json:"name,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Weight int    `json:"weight,omitempty"`

	// Workload/Scale/Model/MaxInsts configure the simulators.
	Workload string `json:"workload"`
	Scale    string `json:"scale,omitempty"` // test|small|paper (default test)
	Model    string `json:"model,omitempty"` // atomic|pipelined (default atomic)
	MaxInsts uint64 `json:"maxInsts,omitempty"`

	// Sampling selects the experiment planner: "uniform" (default, the
	// conformance referee) or "adaptive" (widest-CI stratified batches).
	// N is the total experiment budget; Confidence/Margin parameterize
	// the Leveugle sizing of adaptive strata; Strata and Batch shape the
	// adaptive loop. Seed makes every plan reproducible.
	Sampling   string  `json:"sampling,omitempty"`
	N          int     `json:"n"`
	Confidence float64 `json:"confidence,omitempty"`
	Margin     float64 `json:"margin,omitempty"`
	Strata     int     `json:"strata,omitempty"`
	Batch      int     `json:"batch,omitempty"`
	Seed       int64   `json:"seed,omitempty"`

	// Workers bounds this campaign's local runner pool (default 1; the
	// global slot budget still applies). Fork/Taint/Profile attach the
	// fork server, propagation tracker, and guest profiler.
	Workers int  `json:"workers,omitempty"`
	Fork    bool `json:"fork,omitempty"`
	Taint   bool `json:"taint,omitempty"`
	Profile bool `json:"profile,omitempty"`
	// Flight attaches a flight recorder to every runner: crashed, SDC
	// and reached-state results carry a post-mortem dump (served via
	// /postmortem/{id}). Implied service-wide by serv.Config.Flight.
	Flight bool `json:"flight,omitempty"`
}

func (s *CampaignSpec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

func (s *CampaignSpec) weight() int {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

func (s *CampaignSpec) confidence() float64 {
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return 0.95
	}
	return s.Confidence
}

func (s *CampaignSpec) margin() float64 {
	if s.Margin <= 0 || s.Margin >= 1 {
		return 0.05
	}
	return s.Margin
}

func (s *CampaignSpec) workers() int {
	if s.Workers <= 0 {
		return 1
	}
	if s.Workers > 8 {
		return 8
	}
	return s.Workers
}

func (s *CampaignSpec) scale() (workloads.Scale, error) {
	switch s.Scale {
	case "", "test":
		return workloads.ScaleTest, nil
	case "small":
		return workloads.ScaleSmall, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test|small|paper)", s.Scale)
}

func (s *CampaignSpec) model() sim.ModelKind {
	if s.Model == "" {
		return sim.ModelAtomic
	}
	return sim.ModelKind(s.Model)
}

// Campaign phases.
const (
	PhasePreparing = "preparing" // golden run / runner pool building
	PhaseRunning   = "running"
	PhaseDone      = "done"
	PhaseFailed    = "failed"
)

// Campaign is one hosted campaign's runtime state.
type Campaign struct {
	ID   string
	Spec CampaignSpec

	mu       sync.Mutex
	phase    string
	failErr  string
	window   uint64
	sampler  *sampler
	planned  []campaign.Experiment
	pending  []campaign.Experiment
	inflight map[int]campaign.Experiment
	results  map[int]campaign.Result
	batches  int
	expBatch map[int]int // experiment ID -> batch it was planned in
	started  time.Time

	// spans, when set (by the Service from its config), is attached to
	// every pool runner so local executions emit phase spans under the
	// service's experiment roots.
	spans *obs.SpanRecorder

	// flight (set by the Service from its config) turns on flight
	// recording for this campaign's pool even when the spec did not ask.
	flight bool

	// Runner pool: built by prepare, borrowed by the scheduler. free is
	// buffered to the pool size so returns never block. ckptBytes is the
	// serialized fi_read_init_all checkpoint, shipped to NoW workers.
	runners   []*campaign.Runner
	free      chan *campaign.Runner
	ckptBytes []byte

	// wrrCur is the smooth-WRR accumulator; touched only by the single
	// dispatcher goroutine, so it needs no lock.
	wrrCur int

	// Stream subscribers: each gets every result exactly once plus a
	// terminal done event. Buffered; a stalled subscriber is dropped.
	subs map[chan streamEvent]struct{}
}

// streamEvent is one SSE payload.
type streamEvent struct {
	Type   string           `json:"-"`
	Result *campaign.Result `json:"result,omitempty"`
	Status *CampaignStatus  `json:"status,omitempty"`
}

func newCampaign(id string, spec CampaignSpec) *Campaign {
	return &Campaign{
		ID:       id,
		Spec:     spec,
		phase:    PhasePreparing,
		inflight: make(map[int]campaign.Experiment),
		results:  make(map[int]campaign.Result),
		expBatch: make(map[int]int),
		subs:     make(map[chan streamEvent]struct{}),
		started:  time.Now(),
	}
}

// prepare builds the golden run and the runner pool. Expensive (it runs
// the workload once); the Service calls it off the request path. The
// returned window is 0 only on error.
func (c *Campaign) prepare() (uint64, error) {
	scale, err := c.Spec.scale()
	if err != nil {
		return 0, err
	}
	w, err := workloads.ByName(c.Spec.Workload, scale)
	if err != nil {
		return 0, err
	}
	cfg := sim.Config{Model: c.Spec.model(), EnableFI: true, MaxInsts: c.Spec.MaxInsts}
	first, err := campaign.NewRunner(w, campaign.RunnerOptions{Cfg: &cfg})
	if err != nil {
		return 0, err
	}
	if c.Spec.Profile {
		first.AttachProfiler()
	}
	if c.Spec.Taint {
		first.AttachTaint()
	}
	if c.Spec.Flight || c.flight {
		first.AttachFlight(0) // clones replicate the recorder, per runner
	}
	if c.Spec.Fork {
		if err := first.EnableFork(campaign.DefaultForkOptions()); err != nil {
			return 0, err
		}
	}
	runners := []*campaign.Runner{first}
	for i := 1; i < c.Spec.workers(); i++ {
		r, err := first.Clone()
		if err != nil {
			return 0, err
		}
		runners = append(runners, r)
	}
	if c.spans != nil {
		for i, r := range runners {
			r.AttachSpans(c.spans, fmt.Sprintf("%s/r%d", c.ID, i+1))
		}
	}
	free := make(chan *campaign.Runner, len(runners))
	for _, r := range runners {
		free <- r
	}
	var ckptBytes []byte
	if first.Ckpt != nil {
		if ckptBytes, err = first.Ckpt.Bytes(); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	c.runners = runners
	c.free = free
	c.ckptBytes = ckptBytes
	c.window = first.WindowInsts
	c.mu.Unlock()
	return first.WindowInsts, nil
}

// fail moves the campaign to the failed phase.
func (c *Campaign) fail(err error) {
	c.mu.Lock()
	c.phase = PhaseFailed
	c.failErr = err.Error()
	c.mu.Unlock()
	c.broadcastStatus()
}

// borrowRunner takes an idle runner without blocking (nil when all are
// busy).
func (c *Campaign) borrowRunner() *campaign.Runner {
	c.mu.Lock()
	free := c.free
	c.mu.Unlock()
	if free == nil {
		return nil
	}
	select {
	case r := <-free:
		return r
	default:
		return nil
	}
}

func (c *Campaign) returnRunner(r *campaign.Runner) {
	c.mu.Lock()
	free := c.free
	c.mu.Unlock()
	if free != nil {
		free <- r
	}
}

// takeLocked pops one pending experiment into in-flight. Caller holds
// c.mu.
func (c *Campaign) takeLocked() (campaign.Experiment, bool) {
	for len(c.pending) > 0 {
		exp := c.pending[0]
		c.pending = c.pending[1:]
		if _, dup := c.results[exp.ID]; dup {
			continue // already classified (journal resume overlap)
		}
		c.inflight[exp.ID] = exp
		return exp, true
	}
	return campaign.Experiment{}, false
}

// requeue returns un-finished experiments to the head of the queue (a
// died NoW worker's assignments).
func (c *Campaign) requeue(exps []campaign.Experiment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range exps {
		if _, done := c.results[e.ID]; done {
			continue
		}
		delete(c.inflight, e.ID)
		c.pending = append([]campaign.Experiment{e}, c.pending...)
	}
}

// Profile merges the campaign's per-runner profiles (nil when profiling
// is off or the pool is not built yet).
func (c *Campaign) Profile() *prof.Profile {
	c.mu.Lock()
	runners := c.runners
	c.mu.Unlock()
	var parts []*prof.Profile
	for _, r := range runners {
		if p := r.Profiler(); p != nil {
			parts = append(parts, p.Snapshot())
		}
	}
	return prof.MergeProfiles(parts...)
}

// TaintReport returns the campaign's freshest propagation report across
// its runners — the per-campaign selection the /taint endpoint keys on.
func (c *Campaign) TaintReport() *taint.PropReport {
	c.mu.Lock()
	runners := c.runners
	c.mu.Unlock()
	var best *taint.PropReport
	var bestStamp uint64
	for _, r := range runners {
		rep, stamp := r.LastTaintReport()
		if rep != nil && stamp >= bestStamp {
			best, bestStamp = rep, stamp
		}
	}
	return best
}

// subscribe registers a stream consumer primed with every existing
// result, so late watchers see the full history in order.
func (c *Campaign) subscribe() (chan streamEvent, func()) {
	c.mu.Lock()
	backlog := make([]campaign.Result, 0, len(c.results))
	for i := 0; i < len(c.planned); i++ {
		if r, ok := c.results[c.planned[i].ID]; ok {
			backlog = append(backlog, r)
		}
	}
	done := c.phase == PhaseDone || c.phase == PhaseFailed
	ch := make(chan streamEvent, 256+2*len(backlog))
	for i := range backlog {
		ch <- streamEvent{Type: "result", Result: &backlog[i]}
	}
	if done {
		st := c.statusLocked()
		ch <- streamEvent{Type: "done", Status: &st}
		close(ch)
		c.mu.Unlock()
		return ch, func() {}
	}
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		if _, ok := c.subs[ch]; ok {
			delete(c.subs, ch)
		}
		c.mu.Unlock()
	}
}

// broadcast sends an event to every subscriber, dropping ones whose
// buffers are full (a stalled client must not stall the campaign).
func (c *Campaign) broadcast(ev streamEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broadcastLocked(ev)
}

func (c *Campaign) broadcastLocked(ev streamEvent) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
			delete(c.subs, ch)
			close(ch)
		}
	}
}

// finishLocked closes every subscriber after a terminal event.
func (c *Campaign) finishLocked() {
	st := c.statusLocked()
	for ch := range c.subs {
		select {
		case ch <- streamEvent{Type: "done", Status: &st}:
		default:
		}
		close(ch)
		delete(c.subs, ch)
	}
}

func (c *Campaign) broadcastStatus() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase == PhaseDone || c.phase == PhaseFailed {
		c.finishLocked()
		return
	}
	st := c.statusLocked()
	c.broadcastLocked(streamEvent{Type: "status", Status: &st})
}

// CampaignStatus is the public point-in-time view of one campaign.
type CampaignStatus struct {
	ID          string          `json:"id"`
	Name        string          `json:"name,omitempty"`
	Tenant      string          `json:"tenant"`
	Workload    string          `json:"workload"`
	Sampling    string          `json:"sampling"`
	Phase       string          `json:"phase"`
	Error       string          `json:"error,omitempty"`
	Budget      int             `json:"budget"`
	Planned     int             `json:"planned"`
	Done        int             `json:"done"`
	InFlight    int             `json:"inFlight"`
	Pending     int             `json:"pending"`
	Batches     int             `json:"batches"`
	WindowInsts uint64          `json:"windowInsts,omitempty"`
	Outcomes    map[string]int  `json:"outcomes"`
	ElapsedSec  float64         `json:"elapsedSec"`
	Strata      []StratumStatus `json:"strata,omitempty"`
	AggP        float64         `json:"aggP"`
	AggCIWidth  float64         `json:"aggCIWidth"`
}

// Status reads the campaign's live state.
func (c *Campaign) Status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *Campaign) statusLocked() CampaignStatus {
	st := CampaignStatus{
		ID:          c.ID,
		Name:        c.Spec.Name,
		Tenant:      c.Spec.tenant(),
		Workload:    c.Spec.Workload,
		Sampling:    c.samplingMode(),
		Phase:       c.phase,
		Error:       c.failErr,
		Budget:      c.Spec.N,
		Planned:     len(c.planned),
		Done:        len(c.results),
		InFlight:    len(c.inflight),
		Pending:     len(c.pending),
		Batches:     c.batches,
		WindowInsts: c.window,
		Outcomes:    make(map[string]int),
		ElapsedSec:  time.Since(c.started).Seconds(),
	}
	for _, r := range c.results {
		st.Outcomes[r.Outcome.String()]++
	}
	if c.sampler != nil {
		st.Strata, st.AggP, st.AggCIWidth = c.sampler.status()
	}
	return st
}

func (c *Campaign) samplingMode() string {
	if c.Spec.Sampling == "" {
		return SampleUniform
	}
	return c.Spec.Sampling
}

// Results returns the classified results in planned order.
func (c *Campaign) Results() []campaign.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]campaign.Result, 0, len(c.results))
	for _, e := range c.planned {
		if r, ok := c.results[e.ID]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Report is the campaign's vulnerability report: the five-class tally
// with fractions, the stratified vulnerability estimate, and the
// per-stratum confidence table.
type Report struct {
	ID         string             `json:"id"`
	Workload   string             `json:"workload"`
	Sampling   string             `json:"sampling"`
	Total      int                `json:"total"`
	Outcomes   map[string]int     `json:"outcomes"`
	Fractions  map[string]float64 `json:"fractions"`
	AggP       float64            `json:"aggP"`
	AggCIWidth float64            `json:"aggCIWidth"`
	Confidence float64            `json:"confidence"`
	Strata     []StratumStatus    `json:"strata,omitempty"`
}

// VulnReport builds the live vulnerability report.
func (c *Campaign) VulnReport() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{
		ID:         c.ID,
		Workload:   c.Spec.Workload,
		Sampling:   c.samplingMode(),
		Total:      len(c.results),
		Outcomes:   make(map[string]int),
		Fractions:  make(map[string]float64),
		Confidence: c.Spec.confidence(),
	}
	tally := make(campaign.Tally)
	for _, r := range c.results {
		tally.Add(r)
	}
	for _, o := range campaign.Outcomes() {
		if n := tally[o]; n > 0 {
			rep.Outcomes[o.String()] = n
		}
		rep.Fractions[o.String()] = tally.Fraction(o)
	}
	if c.sampler != nil {
		rep.Strata, rep.AggP, rep.AggCIWidth = c.sampler.status()
	}
	return rep
}
