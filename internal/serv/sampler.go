package serv

// Sampling strategies for service-hosted campaigns. Both stratify the
// fault population by injection region — equal slices of the golden
// run's fault-injection window, the committed-instruction axis that
// per-PC profiler counts and taint verdicts attribute vulnerability to —
// and differ only in where the next batch goes:
//
//   - uniform: the conformance referee. All experiments are drawn in one
//     batch, uniformly over the full window, exactly the paper's §IV
//     methodology; the strata only account outcomes so adaptive runs
//     have per-stratum rates to converge against.
//   - adaptive: batches of experiments are allocated by
//     stats.AllocateWidest to the strata whose outcome-confidence
//     intervals are widest, each stratum's batch drawn uniformly inside
//     its own window slice. Per-stratum Leveugle sizing
//     (stats.StratifiedSizes) caps each stratum's useful sample, and the
//     campaign stops at its experiment budget.

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/stats"
)

// Sampling modes.
const (
	SampleUniform  = "uniform"
	SampleAdaptive = "adaptive"
)

// sampler tracks a campaign's stratified outcome evidence and plans
// experiment batches. It is not safe for concurrent use; the owning
// Campaign serializes access under its own lock.
type sampler struct {
	mode       string
	window     uint64
	seed       int64
	confidence float64
	budget     int // total experiment budget
	batch      int // adaptive batch size

	bounds  [][2]uint64 // per-stratum inclusive injection-time slices
	strata  []stats.Stratum
	caps    []int64 // per-stratum Leveugle sample caps
	planned int
	batches int
}

// newSampler slices the injection window into nStrata equal regions.
// The stratum population is its slice width — the number of injectable
// instruction slots — which is what Leveugle sizing wants.
func newSampler(spec *CampaignSpec, window uint64) *sampler {
	n := spec.Strata
	if n <= 0 {
		n = 8
	}
	if uint64(n) > window {
		n = int(window)
		if n == 0 {
			n = 1
		}
	}
	s := &sampler{
		mode:       spec.Sampling,
		window:     window,
		seed:       spec.Seed,
		confidence: spec.confidence(),
		budget:     spec.N,
		batch:      spec.Batch,
	}
	if s.mode == "" {
		s.mode = SampleUniform
	}
	if s.batch <= 0 {
		s.batch = 32
	}
	step := window / uint64(n)
	for i := 0; i < n; i++ {
		lo := uint64(i)*step + 1
		hi := uint64(i+1) * step
		if i == n-1 {
			hi = window // last stratum absorbs the rounding remainder
		}
		s.bounds = append(s.bounds, [2]uint64{lo, hi})
		s.strata = append(s.strata, stats.Stratum{Pop: int64(hi - lo + 1)})
	}
	pops := make([]int64, len(s.strata))
	for i, st := range s.strata {
		pops[i] = st.Pop
	}
	s.caps = stats.StratifiedSizes(pops, s.confidence, spec.margin())
	return s
}

// restore replays already planned batches and already accumulated
// results into the sampler (the resume path).
func (s *sampler) restore(planned []campaign.Experiment, results map[int]campaign.Result, batches int) {
	s.planned = len(planned)
	s.batches = batches
	for _, r := range results {
		s.record(r)
	}
}

// stratumOf maps an injection time to its stratum index.
func (s *sampler) stratumOf(when uint64) int {
	for i, b := range s.bounds {
		if when >= b[0] && when <= b[1] {
			return i
		}
	}
	return len(s.bounds) - 1
}

// record folds one classified experiment into the stratified evidence.
// The outcome of interest — the "vulnerable" proportion each stratum's
// confidence interval is over — is a non-acceptable outcome: crash or
// silent data corruption.
func (s *sampler) record(r campaign.Result) {
	if r.Fault.Loc == 0 && r.Fault.When == 0 {
		return // no-fault experiment: no stratum
	}
	i := s.stratumOf(r.Fault.When)
	s.strata[i].N++
	if !r.Outcome.Acceptable() {
		s.strata[i].K++
	}
}

// nextBatch plans the next set of experiments, numbered from firstID.
// Returns nil when the campaign has spent its budget (or, adaptively,
// when every stratum is capped). The batch sequence number is
// s.batches after the call — the journal's exps record.
func (s *sampler) nextBatch(firstID int) []campaign.Experiment {
	remaining := s.budget - s.planned
	if remaining <= 0 {
		return nil
	}
	var exps []campaign.Experiment
	switch s.mode {
	case SampleAdaptive:
		n := s.batch
		if n > remaining {
			n = remaining
		}
		// Clamp each stratum to its Leveugle cap: beyond it the stratum's
		// interval is already inside the requested margin, so marginal
		// experiments belong elsewhere.
		capped := make([]stats.Stratum, len(s.strata))
		copy(capped, s.strata)
		for i := range capped {
			if s.caps[i] > 0 && s.caps[i] < capped[i].Pop {
				capped[i].Pop = s.caps[i]
			}
		}
		alloc := stats.AllocateWidest(capped, n, s.confidence)
		for i, k := range alloc {
			if k == 0 {
				continue
			}
			// Each stratum draws uniformly inside its own slice, with a
			// seed derived from (campaign seed, batch, stratum) so every
			// batch is reproducible and journal replay regenerates nothing.
			gc := campaign.GenConfig{
				WindowInsts: s.window,
				MinWhen:     s.bounds[i][0],
				MaxWhen:     s.bounds[i][1],
				Seed:        s.seed + int64(s.batches+1)*1_000_003 + int64(i)*7919,
			}
			for _, e := range campaign.GenerateUniform(k, gc) {
				e.ID = firstID + len(exps)
				exps = append(exps, e)
			}
		}
	default: // uniform referee: everything in one full-window batch
		exps = campaign.GenerateUniform(remaining, campaign.GenConfig{
			WindowInsts: s.window,
			Seed:        s.seed,
		})
		for i := range exps {
			exps[i].ID = firstID + i
		}
	}
	if len(exps) == 0 {
		return nil
	}
	s.planned += len(exps)
	s.batches++
	return exps
}

// StratumStatus is one stratum's public accounting, served in campaign
// status and vulnerability reports.
type StratumStatus struct {
	Lo         uint64  `json:"lo"`
	Hi         uint64  `json:"hi"`
	Population int64   `json:"population"`
	Sampled    int     `json:"sampled"`
	Vulnerable int     `json:"vulnerable"`
	P          float64 `json:"p"`
	CIWidth    float64 `json:"ciWidth"`
	LeveugleN  int64   `json:"leveugleN"`
}

// status renders the per-stratum table plus the population-weighted
// aggregate vulnerability estimate and its interval.
func (s *sampler) status() ([]StratumStatus, float64, float64) {
	out := make([]StratumStatus, len(s.strata))
	for i, st := range s.strata {
		out[i] = StratumStatus{
			Lo: s.bounds[i][0], Hi: s.bounds[i][1],
			Population: st.Pop, Sampled: st.N, Vulnerable: st.K,
			P: st.P(), CIWidth: st.CIWidth(s.confidence), LeveugleN: s.caps[i],
		}
	}
	p, width := stats.AggregateInterval(s.strata, s.confidence)
	return out, p, width
}

// validateSpec rejects specs the service cannot run before anything is
// journaled.
func validateSpec(spec *CampaignSpec) error {
	if spec.Workload == "" {
		return fmt.Errorf("spec needs a workload")
	}
	if _, err := spec.scale(); err != nil {
		return err
	}
	switch spec.Sampling {
	case "", SampleUniform, SampleAdaptive:
	default:
		return fmt.Errorf("unknown sampling mode %q (uniform|adaptive)", spec.Sampling)
	}
	if spec.N <= 0 {
		return fmt.Errorf("spec needs a positive experiment budget n")
	}
	return nil
}
