package serv

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/now"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// TestServiceFlightForkCampaignNoW is the flight-recorder acceptance
// end-to-end: a fork-mode campaign with Flight set, executed partly on a
// NoW worker, must land exactly one post-mortem dump on every crashed
// (and SDC/reached-state) result — including the results shipped back by
// the worker — none on masked results, and serve each dump live at
// /postmortem/{id} in both JSON and text form.
func TestServiceFlightForkCampaignNoW(t *testing.T) {
	rec := obs.NewSpanRecorder()
	s, err := New(Config{Dir: t.TempDir(), Slots: 1, Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	s.ServeWorkers(ln)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A heavy, high-weight blocker campaign pins the single local slot so
	// the flight campaign's experiments reliably wait long enough for the
	// NoW worker to join and take a share.
	blockerID, err := s.Submit(CampaignSpec{
		Workload: "pi", N: 30, Seed: 1, Scale: "small", Model: "pipelined",
		Tenant: "blocker", Weight: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, s, blockerID, PhaseRunning)

	// Flight comes from the spec (per-campaign), not service-wide config
	// — the welcome message carries it to the worker, whose runner
	// attaches its own recorder.
	spec := CampaignSpec{Workload: "pi", N: 40, Seed: 13, Fork: true, Flight: true, Tenant: "t1"}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, s, id, PhaseRunning)
	w := now.NewWorker(now.WorkerConfig{Addr: ln.Addr().String(), Slots: 2, Name: "nw0"})
	workerDone := make(chan int, 1)
	go func() {
		n, err := w.Run()
		if err != nil {
			t.Logf("worker exit: %v", err)
		}
		workerDone <- n
	}()
	if !s.Wait(id, waitBound) {
		t.Fatal("campaign did not finish")
	}
	workerN := <-workerDone
	t.Logf("NoW worker completed %d of %d experiments", workerN, spec.N)

	c, _ := s.Campaign(id)
	results := c.Results()
	if len(results) != spec.N {
		t.Fatalf("results = %d, want %d", len(results), spec.N)
	}

	crashed, dumps, remoteDumps := 0, 0, 0
	for _, r := range results {
		interesting := r.Outcome == campaign.OutcomeCrashed || r.Outcome == campaign.OutcomeSDC
		switch {
		case interesting && r.Postmortem == nil:
			t.Errorf("experiment %d (%s) has no post-mortem dump", r.ID, r.Outcome)
		case !interesting && r.Postmortem != nil:
			t.Errorf("experiment %d (%s) carries an unexpected dump", r.ID, r.Outcome)
		}
		if r.Outcome == campaign.OutcomeCrashed {
			crashed++
			if pm := r.Postmortem; pm != nil {
				// The dump's final record is the trap at the crash PC.
				last := pm.Records[len(pm.Records)-1]
				if !last.Trap || last.PC != pm.CrashPC {
					t.Errorf("experiment %d: final record pc %#x trap=%v, crashPc %#x",
						r.ID, last.PC, last.Trap, pm.CrashPC)
				}
			}
		}
		if r.Postmortem != nil {
			dumps++
			if strings.HasPrefix(r.Worker, "nw0") {
				remoteDumps++
			}
		}
	}
	if crashed == 0 {
		t.Fatal("campaign produced no crashed experiments — the acceptance run must be crash-heavy")
	}
	t.Logf("%d crashed, %d dumps (%d shipped by the NoW worker)", crashed, dumps, remoteDumps)
	if remoteDumps == 0 {
		t.Error("no dump shipped back by the NoW worker — the result-message path is untested")
	}

	// Every dump is fetchable by trace ID and by campaign/exp addressing,
	// and the served JSON satisfies the schema validator.
	for _, r := range results {
		if r.Postmortem == nil {
			continue
		}
		for _, addr := range []string{r.TraceID, id + "/" + strconv.Itoa(r.ID)} {
			resp, err := http.Get(ts.URL + "/postmortem/" + addr)
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/postmortem/%s: %d %s", addr, resp.StatusCode, body)
			}
			pm, err := flight.ValidatePostmortemJSON(strings.NewReader(body))
			if err != nil {
				t.Fatalf("/postmortem/%s: invalid dump: %v", addr, err)
			}
			if pm.ExpID != r.ID {
				t.Errorf("/postmortem/%s: expId %d, want %d", addr, pm.ExpID, r.ID)
			}
		}
	}
	// Text timeline renders.
	for _, r := range results {
		if r.Postmortem == nil {
			continue
		}
		resp, err := http.Get(ts.URL + "/postmortem/" + r.TraceID + "?format=text")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if !strings.Contains(body, "post-mortem: experiment") {
			t.Errorf("text dump missing header: %s", body)
		}
		break
	}
	// Masked results 404.
	for _, r := range results {
		if r.Postmortem != nil || r.TraceID == "" {
			continue
		}
		resp, err := http.Get(ts.URL + "/postmortem/" + r.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/postmortem/%s (masked): %d %s, want 404", r.TraceID, resp.StatusCode, body)
		}
		break
	}

	// Satellite: /traces?postmortems=1 lists only traces with dumps, and
	// limit caps the listing.
	resp, err := http.Get(ts.URL + "/traces?tenant=t1&postmortems=1&n=100")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/traces?postmortems=1: %d %s", resp.StatusCode, body)
	}
	listed := strings.Count(body, `"traceId"`)
	if listed != dumps {
		t.Errorf("/traces?postmortems=1 listed %d traces, want %d (one per dump)", listed, dumps)
	}
	resp, err = http.Get(ts.URL + "/traces?tenant=t1&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if n := strings.Count(body, `"traceId"`); n != 1 {
		t.Errorf("/traces?limit=1 listed %d traces, want 1", n)
	}
	// A since bound in the far future filters everything out.
	resp, err = http.Get(ts.URL + "/traces?tenant=t1&since=9223372036854775806")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if n := strings.Count(body, `"traceId"`); n != 0 {
		t.Errorf("/traces?since=<future> listed %d traces, want 0", n)
	}

	// Dumps survive a restart — they ride the journaled results, so a
	// resumed service answers Postmortem lookups with no re-execution.
	dir := s.cfg.Dir
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Dir: dir, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(time.Second)
	for _, r := range results {
		if r.Postmortem == nil {
			continue
		}
		pm, ok := s2.Postmortem(id + "/" + strconv.Itoa(r.ID))
		if !ok || pm == nil {
			t.Fatalf("dump for experiment %d lost across restart", r.ID)
		}
		if pm.FinalPC() != r.Postmortem.FinalPC() {
			t.Errorf("experiment %d: replayed final pc %#x, want %#x",
				r.ID, pm.FinalPC(), r.Postmortem.FinalPC())
		}
	}
}
