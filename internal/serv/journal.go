package serv

// Durable campaign storage: an append-only JSONL journal plus a
// periodically compacted snapshot. Every state transition — campaign
// submitted, injection window discovered, batch planned, experiment
// classified, campaign finished — is one appended line, flushed to the
// OS before the call returns, so a server killed with SIGKILL loses at
// most results the kernel had not yet accepted (none, in practice: the
// page cache survives process death, only machine death loses it).
// Graceful shutdown additionally fsyncs. A restarted server replays
// snapshot + journal and resumes every unfinished campaign with
// exactly-once accounting: results are keyed by (campaign, experiment)
// and deduplicated on both append and replay, so a requeued experiment
// that reports twice still counts once.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/campaign"
)

// record is one journal line; T selects which fields are meaningful.
type record struct {
	T        string                `json:"t"`
	Campaign string                `json:"c,omitempty"`
	Spec     *CampaignSpec         `json:"spec,omitempty"`
	Window   uint64                `json:"window,omitempty"`
	Batch    int                   `json:"batch,omitempty"` // 1-based batch sequence for exps records
	Exps     []campaign.Experiment `json:"exps,omitempty"`
	Result   *campaign.Result      `json:"result,omitempty"`
}

// Record types.
const (
	recSpec   = "spec"   // campaign submitted
	recWindow = "window" // golden run done, injection window known
	recExps   = "exps"   // batch of experiments planned
	recResult = "result" // one experiment classified
	recDone   = "done"   // campaign reached its budget
)

// persisted is one campaign's durable state, as reconstructed by replay
// and as written to the compacted snapshot.
type persisted struct {
	Spec    CampaignSpec               `json:"spec"`
	Window  uint64                     `json:"window,omitempty"`
	Batches int                        `json:"batches,omitempty"`
	Planned []campaign.Experiment      `json:"planned,omitempty"`
	Results map[int]campaign.Result    `json:"results,omitempty"`
	Done    bool                       `json:"done,omitempty"`
}

// journalState is the full replayed store: campaign order (submission
// order, which also fixes ID allocation) and per-campaign state.
type journalState struct {
	Order []string              `json:"order"`
	Camps map[string]*persisted `json:"campaigns"`
}

func newJournalState() *journalState {
	return &journalState{Camps: make(map[string]*persisted)}
}

// apply folds one record into the state; unknown campaigns and duplicate
// results are tolerated (the exactly-once dedupe point for replay).
func (st *journalState) apply(r record) {
	switch r.T {
	case recSpec:
		if _, dup := st.Camps[r.Campaign]; dup || r.Spec == nil {
			return
		}
		st.Order = append(st.Order, r.Campaign)
		st.Camps[r.Campaign] = &persisted{Spec: *r.Spec, Results: make(map[int]campaign.Result)}
	case recWindow:
		if p := st.Camps[r.Campaign]; p != nil {
			p.Window = r.Window
		}
	case recExps:
		p := st.Camps[r.Campaign]
		if p == nil || r.Batch != p.Batches+1 {
			// A batch at or below p.Batches is already folded into the
			// snapshot (possible when a crash lands between snapshot
			// rename and journal truncation) — replay must skip it.
			return
		}
		p.Planned = append(p.Planned, r.Exps...)
		p.Batches++
	case recResult:
		p := st.Camps[r.Campaign]
		if p == nil || r.Result == nil {
			return
		}
		if _, dup := p.Results[r.Result.ID]; !dup {
			p.Results[r.Result.ID] = *r.Result
		}
	case recDone:
		if p := st.Camps[r.Campaign]; p != nil {
			p.Done = true
		}
	}
}

// compactEvery bounds journal growth: after this many appended records
// the journal is folded into the snapshot and truncated.
const compactEvery = 4096

// journal is the on-disk store. All methods are safe for concurrent use.
type journal struct {
	dir string

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	appended int
}

func (j *journal) logPath() string  { return filepath.Join(j.dir, "journal.jsonl") }
func (j *journal) snapPath() string { return filepath.Join(j.dir, "snapshot.json") }

// openJournal opens (creating if needed) the store in dir and replays
// snapshot + journal into a state.
func openJournal(dir string) (*journal, *journalState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serv: journal dir: %w", err)
	}
	j := &journal{dir: dir}
	st := newJournalState()

	// Snapshot first (the compacted prefix), then the journal tail.
	if b, err := os.ReadFile(j.snapPath()); err == nil {
		if err := json.Unmarshal(b, st); err != nil {
			return nil, nil, fmt.Errorf("serv: corrupt snapshot %s: %w", j.snapPath(), err)
		}
		if st.Camps == nil {
			st.Camps = make(map[string]*persisted)
		}
		for _, p := range st.Camps {
			if p.Results == nil {
				p.Results = make(map[int]campaign.Result)
			}
		}
	}
	if f, err := os.Open(j.logPath()); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64<<10), 64<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var r record
			if err := json.Unmarshal(line, &r); err != nil {
				// A torn final line is expected after SIGKILL; anything
				// after it is unreachable, so stop replaying here.
				break
			}
			st.apply(r)
		}
		_ = f.Close()
	}

	f, err := os.OpenFile(j.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serv: open journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 64<<10)
	return j, st, nil
}

// append writes one record and flushes it to the OS. Returns the number
// of records appended since the last compaction so the caller can
// trigger one (compaction needs the caller's state, not the journal's).
func (j *journal) append(r record) (int, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("serv: journal closed")
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return 0, err
	}
	if err := j.w.Flush(); err != nil {
		return 0, err
	}
	j.appended++
	return j.appended, nil
}

// compact writes the full state as a snapshot (atomically, via rename)
// and truncates the journal. The caller must pass a state that already
// reflects every appended record.
func (j *journal) compact(st *journalState) error {
	b, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serv: journal closed")
	}
	tmp := j.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
	if err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
	if err := os.Rename(tmp, j.snapPath()); err != nil {
		return err
	}
	// The snapshot now covers everything; truncating the journal is safe
	// even if we die between these steps — replaying a stale journal line
	// over the snapshot is a no-op (spec/result dedupe, batch sequencing).
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	j.w.Reset(j.f)
	j.appended = 0
	return nil
}

// sync flushes and fsyncs the journal — the graceful-shutdown barrier.
func (j *journal) sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// close flushes, fsyncs and closes the journal.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
