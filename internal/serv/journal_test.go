package serv

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

func testSpec(n int) CampaignSpec {
	return CampaignSpec{Workload: "pi", N: n, Seed: 7}
}

func exp(id int, when uint64) campaign.Experiment {
	return campaign.Experiment{ID: id, Faults: []core.Fault{{
		Loc: core.LocIntReg, Behavior: core.BehFlip, Bit: 3, Reg: 5,
		Base: core.TimeInst, When: when, Occ: 1,
	}}}
}

func res(id int, o campaign.Outcome, when uint64) campaign.Result {
	return campaign.Result{ID: id, Outcome: o, Fault: core.Fault{Loc: core.LocIntReg, When: when}}
}

// TestJournalReplayRoundTrip: everything appended is reconstructed by a
// reopen, including across a close.
func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Order) != 0 {
		t.Fatalf("fresh journal has %d campaigns", len(st.Order))
	}
	spec := testSpec(4)
	recs := []record{
		{T: recSpec, Campaign: "c0001", Spec: &spec},
		{T: recWindow, Campaign: "c0001", Window: 1234},
		{T: recExps, Campaign: "c0001", Batch: 1, Exps: []campaign.Experiment{exp(1, 10), exp(2, 20)}},
		{T: recResult, Campaign: "c0001", Result: ptr(res(1, campaign.OutcomeCrashed, 10))},
		{T: recResult, Campaign: "c0001", Result: ptr(res(2, campaign.OutcomeSDC, 20))},
		{T: recDone, Campaign: "c0001"},
	}
	for _, r := range recs {
		if _, err := j.append(r); err != nil {
			t.Fatal(err)
		}
		st.apply(r)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	p := st2.Camps["c0001"]
	if p == nil {
		t.Fatal("campaign lost on replay")
	}
	if p.Window != 1234 || p.Batches != 1 || len(p.Planned) != 2 || len(p.Results) != 2 || !p.Done {
		t.Fatalf("replayed state wrong: %+v", p)
	}
	if p.Results[1].Outcome != campaign.OutcomeCrashed || p.Results[2].Outcome != campaign.OutcomeSDC {
		t.Fatalf("replayed results wrong: %+v", p.Results)
	}
}

// TestJournalCompactionAndStaleTail: after a compaction the snapshot
// alone reconstructs the state, and a stale journal tail (the crash
// window between snapshot rename and journal truncate) replays as a
// no-op: duplicate specs, already-folded batches and duplicate results
// are all skipped.
func TestJournalCompactionAndStaleTail(t *testing.T) {
	dir := t.TempDir()
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(4)
	recs := []record{
		{T: recSpec, Campaign: "c0001", Spec: &spec},
		{T: recWindow, Campaign: "c0001", Window: 99},
		{T: recExps, Campaign: "c0001", Batch: 1, Exps: []campaign.Experiment{exp(1, 5)}},
		{T: recResult, Campaign: "c0001", Result: ptr(res(1, campaign.OutcomeCorrect, 5))},
	}
	for _, r := range recs {
		if _, err := j.append(r); err != nil {
			t.Fatal(err)
		}
		st.apply(r)
	}
	if err := j.compact(st); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the pre-compaction journal lines come
	// back (as if truncate never happened) and must replay as no-ops.
	for _, r := range recs {
		if _, err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	p := st2.Camps["c0001"]
	if p == nil {
		t.Fatal("campaign lost after compaction")
	}
	if len(st2.Order) != 1 {
		t.Fatalf("duplicate spec replay created %d campaigns", len(st2.Order))
	}
	if p.Batches != 1 || len(p.Planned) != 1 {
		t.Fatalf("stale exps replay double-planned: batches=%d planned=%d", p.Batches, len(p.Planned))
	}
	if len(p.Results) != 1 {
		t.Fatalf("stale result replay double-counted: %d results", len(p.Results))
	}
}

// TestJournalTornFinalLine: a SIGKILL mid-append leaves a torn final
// line; replay keeps everything before it and tolerates the tear.
func TestJournalTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(2)
	r := record{T: recSpec, Campaign: "c0001", Spec: &spec}
	if _, err := j.append(r); err != nil {
		t.Fatal(err)
	}
	st.apply(r)
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"result","c":"c0001","result":{"id":`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	j2, st2, err := openJournal(dir)
	if err != nil {
		t.Fatalf("torn line broke replay: %v", err)
	}
	defer j2.close()
	if len(st2.Order) != 1 || st2.Camps["c0001"] == nil {
		t.Fatal("record before the torn line was lost")
	}
	if len(st2.Camps["c0001"].Results) != 0 {
		t.Fatal("torn line was half-applied")
	}
}

func ptr[T any](v T) *T { return &v }
