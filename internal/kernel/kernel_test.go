package kernel

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// boot assembles src and boots a core.
func boot(t *testing.T, src string) (*cpu.Core, *Kernel) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	c := &cpu.Core{Name: "cpu", Mem: m}
	k := New(m)
	if err := k.Boot(c, p); err != nil {
		t.Fatal(err)
	}
	return c, k
}

func runAtomic(c *cpu.Core, maxSteps int) {
	mdl := cpu.NewAtomic(c)
	for i := 0; i < maxSteps && mdl.Step(); i++ {
	}
}

func TestBootInitialState(t *testing.T) {
	c, k := boot(t, "_start:\n nop\n halt\n")
	if c.Arch.PCBB != PCBAddr(0) {
		t.Errorf("PCBB = %#x, want %#x", c.Arch.PCBB, PCBAddr(0))
	}
	if c.Arch.R[30] != StackTop {
		t.Errorf("SP = %#x", c.Arch.R[30])
	}
	if k.CurrentSlot() != 0 || k.Threads() != 1 {
		t.Error("thread bookkeeping wrong")
	}
	// PCB 0 must be in guest memory with state running.
	st, err := k.readPCBField(0, pcbState)
	if err != nil || st != ThreadRunning {
		t.Errorf("PCB state = %d, %v", st, err)
	}
}

func TestExitSyscallStopsWithStatus(t *testing.T) {
	c, _ := boot(t, `
_start:
    li a0, 42
    li v0, 1
    callsys
`)
	runAtomic(c, 100)
	if !c.Stopped || c.ExitStatus != 42 {
		t.Fatalf("stopped=%v status=%d", c.Stopped, c.ExitStatus)
	}
}

func TestHaltStops(t *testing.T) {
	c, _ := boot(t, "_start:\n halt\n")
	runAtomic(c, 10)
	if !c.Stopped || c.Trap != nil {
		t.Fatalf("halt: stopped=%v trap=%v", c.Stopped, c.Trap)
	}
}

func TestUnknownSyscallPanicsKernel(t *testing.T) {
	c, _ := boot(t, `
_start:
    li v0, 999
    callsys
`)
	runAtomic(c, 100)
	if c.Trap == nil || c.Trap.Kind != cpu.TrapKernel {
		t.Fatalf("trap = %v, want kernel panic", c.Trap)
	}
}

func TestGetTIDAndConsole(t *testing.T) {
	c, k := boot(t, `
_start:
    li v0, 3
    callsys           ; v0 = tid (0)
    addq v0, #65, a0  ; 'A'
    li v0, 2
    callsys
    li a0, 0
    li v0, 1
    callsys
`)
	runAtomic(c, 100)
	if k.Console() != "A" {
		t.Errorf("console %q", k.Console())
	}
}

func TestSpawnAllocatesPCB(t *testing.T) {
	c, k := boot(t, `
_start:
    la  a0, child
    li  a1, 5
    li  v0, 4
    callsys           ; spawn -> v0 = tid 1
    mov v0, a0
    li  v0, 1
    callsys           ; exit(tid)
child:
    li  v0, 6
    li  a0, 0
    callsys
`)
	runAtomic(c, 1000)
	if c.ExitStatus != 1 {
		t.Fatalf("spawn returned %d", c.ExitStatus)
	}
	if k.Threads() != 2 {
		t.Errorf("threads = %d", k.Threads())
	}
	// The child PCB must carry its argument in a0's slot.
	a0, err := k.readPCBField(1, pcbRegs+8*16)
	if err != nil || a0 != 5 {
		t.Errorf("child a0 = %d, %v", a0, err)
	}
	pc, _ := k.readPCBField(1, pcbPC)
	if pc == 0 {
		t.Error("child PC not set")
	}
}

func TestSpawnExhaustionReturnsMinusOne(t *testing.T) {
	src := "_start:\n"
	for i := 0; i < MaxThreads; i++ { // one more than the free slots
		src += "    la a0, child\n    li a1, 0\n    li v0, 4\n    callsys\n    mov v0, s0\n"
	}
	src += "    mov s0, a0\n    li v0, 1\n    callsys\nchild:\n    li v0, 5\n    callsys\n    br child\n"
	c, _ := boot(t, src)
	runAtomic(c, 100000)
	if c.ExitStatus != -1 {
		t.Errorf("last spawn = %d, want -1 (no free slots)", c.ExitStatus)
	}
}

func TestPreemptionRoundRobin(t *testing.T) {
	c, k := boot(t, `
_start:
    la a0, spinner
    li a1, 0
    li v0, 4
    callsys
    ; busy loop until the spinner stored its mark
    la t0, mark
wait:
    ldq t1, 0(t0)
    beq t1, wait
    mov t1, a0
    li v0, 1
    callsys
spinner:
    la t0, mark
    li t1, 9
    stq t1, 0(t0)
spin:
    br spin
.data
mark: .quad 0
`)
	k.Quantum = 100
	runAtomic(c, 1_000_000)
	if c.ExitStatus != 9 {
		t.Fatalf("exit = %d (trap %v)", c.ExitStatus, c.Trap)
	}
	if k.ContextSwitches < 2 {
		t.Errorf("context switches = %d", k.ContextSwitches)
	}
}

func TestYieldSwitchesImmediately(t *testing.T) {
	c, k := boot(t, `
_start:
    la a0, other
    li a1, 0
    li v0, 4
    callsys
    li v0, 5
    callsys          ; yield: other runs next
    la t0, cell
    ldq a0, 0(t0)
    li v0, 1
    callsys
other:
    la t0, cell
    li t1, 33
    stq t1, 0(t0)
    li v0, 6
    li a0, 0
    callsys
.data
cell: .quad 0
`)
	k.Quantum = 1_000_000 // preemption never fires; only yield switches
	runAtomic(c, 1_000_000)
	if c.ExitStatus != 33 {
		t.Fatalf("exit = %d", c.ExitStatus)
	}
}

func TestJoinBlocksUntilChildExits(t *testing.T) {
	c, k := boot(t, `
_start:
    la a0, worker
    li a1, 0
    li v0, 4
    callsys
    mov v0, a0
    li v0, 7
    callsys           ; join(child)
    la t0, cell
    ldq a0, 0(t0)     ; guaranteed 77 after join
    li v0, 1
    callsys
worker:
    li t0, 500
delay:
    subq t0, #1, t0
    bne t0, delay
    la t1, cell
    li t2, 77
    stq t2, 0(t1)
    li v0, 6
    li a0, 0
    callsys
.data
cell: .quad 0
`)
	k.Quantum = 50
	runAtomic(c, 1_000_000)
	if c.ExitStatus != 77 {
		t.Fatalf("join did not wait: exit = %d (trap %v)", c.ExitStatus, c.Trap)
	}
}

func TestJoinDeadlockPanics(t *testing.T) {
	c, _ := boot(t, `
_start:
    li a0, 0          ; join self
    li v0, 7
    callsys
`)
	runAtomic(c, 10000)
	if c.Trap == nil || c.Trap.Kind != cpu.TrapKernel {
		t.Fatalf("self-join: trap = %v", c.Trap)
	}
}

func TestContextSwitchRoundTripsFPRegisters(t *testing.T) {
	// Thread 0 parks a distinctive FP value, spins across several
	// quanta, and checks the value survived the context switches.
	c, k := boot(t, `
_start:
    la a0, spinner
    li a1, 0
    li v0, 4
    callsys
    la t0, fval
    ldt f5, 0(t0)
    li t1, 3000
loop:
    subq t1, #1, t1
    bne t1, loop
    stt f5, 8(t0)
    ldq t2, 8(t0)
    ldq t3, 0(t0)
    subq t2, t3, t4
    beq t4, good
    li a0, 1
    li v0, 1
    callsys
good:
    li a0, 0
    li v0, 1
    callsys
spinner:
    li v0, 5
    callsys
    br spinner
.data
fval: .double 2.718281828
scratch: .quad 0
`)
	k.Quantum = 100
	runAtomic(c, 1_000_000)
	if c.ExitStatus != 0 {
		t.Fatalf("FP state corrupted across context switches (exit %d)", c.ExitStatus)
	}
	if k.ContextSwitches == 0 {
		t.Fatal("test did not exercise context switches")
	}
}

func TestSnapshotRestore(t *testing.T) {
	c, k := boot(t, "_start:\n nop\n halt\n")
	runAtomic(c, 1)
	k.console.WriteString("hello")
	snap := k.Snapshot()
	k.console.Reset()
	k.cur = 3
	k.Restore(snap)
	if k.Console() != "hello" || k.CurrentSlot() != 0 {
		t.Error("restore incomplete")
	}
	// Snapshot must be isolated from later mutation.
	k.console.WriteString("X")
	if string(snap.Console) != "hello" {
		t.Error("snapshot aliased console buffer")
	}
	_ = c
}
