// Package kernel implements the micro operating system running inside the
// simulator: per-thread Process Control Blocks stored in guest memory, a
// preemptive round-robin scheduler, and the syscall interface. It stands
// in for the Linux image gem5 boots in the paper's full-system mode.
//
// The design detail that matters for GemFI is thread identity: like gem5,
// threads are identified "at the hardware/simulator level by their unique
// Process Control Block (PCB) address", and context switches are visible
// to the fault injection engine as changes of the PCB base register
// (Arch.PCBB). The PCBs live in *guest* memory, so faults corrupting them
// produce realistic kernel-level crashes.
package kernel

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Guest memory layout.
const (
	MaxThreads = 8

	PCBBase = 0x00F0_0000
	PCBSize = 0x400

	StackTop  = 0x00E0_0000 // thread 0 stack grows down from here
	StackSize = 0x0002_0000 // per-thread stack
)

// PCB field offsets (bytes from the PCB base).
const (
	pcbPC    = 0x000
	pcbRegs  = 0x008 // 32 x 8 bytes
	pcbFRegs = 0x108 // 32 x 8 bytes (IEEE 754 bits)
	pcbTID   = 0x208
	pcbState = 0x210
	pcbExit  = 0x218
	pcbJoin  = 0x220
)

// Thread states stored in the PCB.
const (
	ThreadFree     uint64 = 0
	ThreadRunnable uint64 = 1
	ThreadRunning  uint64 = 2
	ThreadExited   uint64 = 3
	ThreadBlocked  uint64 = 4 // waiting in join
)

// DefaultQuantum is the scheduler time slice in committed instructions.
const DefaultQuantum = 10000

// Kernel is the simulated operating system. It implements cpu.PalHandler
// (syscalls) and cpu.Scheduler (preemption).
type Kernel struct {
	Mem     *mem.Memory
	Quantum uint64

	cur       int // running thread slot
	sliceLeft uint64
	nthreads  int // high-water mark of allocated slots

	console bytes.Buffer

	// IOFilter, when set, transforms every byte written to the console —
	// the hook the fault injection engine uses for I/O-device faults
	// (paper Section VII future work).
	IOFilter func(byte) byte

	exitTrampoline uint64 // return address installed for spawned threads

	// Stats.
	ContextSwitches uint64
	SyscallCount    uint64
}

var (
	_ cpu.PalHandler = (*Kernel)(nil)
	_ cpu.Scheduler  = (*Kernel)(nil)
)

// New returns a kernel managing threads in m.
func New(m *mem.Memory) *Kernel {
	return &Kernel{Mem: m, Quantum: DefaultQuantum, sliceLeft: DefaultQuantum}
}

// Console returns everything the guest wrote with the putc syscall.
func (k *Kernel) Console() string { return k.console.String() }

// PCBAddr returns the guest address of thread slot i's PCB.
func PCBAddr(i int) uint64 { return PCBBase + uint64(i)*PCBSize }

// stackTopFor returns the initial stack pointer of thread slot i.
func stackTopFor(i int) uint64 { return StackTop - uint64(i)*StackSize }

// Boot maps the program image and kernel regions into memory, loads the
// image, creates thread 0 and points the core at it. It mirrors gem5 FS
// mode's boot-to-app sequence in miniature.
func (k *Kernel) Boot(c *cpu.Core, p *asm.Program) error {
	m := k.Mem
	textSize := uint64(len(p.Text)) * 4
	m.Map(p.TextBase, textSize)
	// Declare the text section so predecoded-instruction caches observe
	// any store into it (self-modifying code, faults landing in text).
	m.SetTextRegion(p.TextBase, p.TextBase+textSize)
	if len(p.Data) > 0 {
		m.Map(p.DataBase, uint64(len(p.Data)))
	}
	m.Map(StackTop-uint64(MaxThreads)*StackSize, uint64(MaxThreads)*StackSize)
	m.Map(PCBBase, uint64(MaxThreads)*PCBSize)

	for i, w := range p.Text {
		if err := m.Write32(p.TextBase+uint64(i)*4, uint32(w)); err != nil {
			return fmt.Errorf("load text: %w", err)
		}
	}
	if err := m.StoreBytes(p.DataBase, p.Data); err != nil {
		return fmt.Errorf("load data: %w", err)
	}
	if t, ok := p.Symbol("_thread_exit"); ok {
		k.exitTrampoline = t
	}

	// Thread 0.
	if err := k.initPCB(0, p.Entry, 0); err != nil {
		return err
	}
	k.cur = 0
	k.nthreads = 1
	if err := k.writePCBField(0, pcbState, ThreadRunning); err != nil {
		return err
	}
	if err := k.loadArch(0, &c.Arch); err != nil {
		return err
	}
	c.Pal = k
	c.Sched = k
	return nil
}

// initPCB builds a fresh PCB for slot i with the given entry PC and a0.
func (k *Kernel) initPCB(i int, entry, a0 uint64) error {
	base := PCBAddr(i)
	zero := make([]byte, PCBSize)
	if err := k.Mem.StoreBytes(base, zero); err != nil {
		return err
	}
	fields := map[uint64]uint64{
		pcbPC:                         entry,
		pcbRegs + 8*uint64(isa.RegSP): stackTopFor(i),
		pcbRegs + 8*uint64(isa.RegA0): a0,
		pcbRegs + 8*uint64(isa.RegRA): k.exitTrampoline,
		pcbTID:                        uint64(i),
		pcbState:                      ThreadRunnable,
	}
	for off, v := range fields {
		if err := k.Mem.Write64(base+off, v); err != nil {
			return err
		}
	}
	return nil
}

func (k *Kernel) readPCBField(i int, off uint64) (uint64, error) {
	return k.Mem.Read64(PCBAddr(i) + off)
}

func (k *Kernel) writePCBField(i int, off uint64, v uint64) error {
	return k.Mem.Write64(PCBAddr(i)+off, v)
}

// saveArch writes the architectural state into slot i's PCB.
func (k *Kernel) saveArch(i int, a *cpu.Arch) error {
	base := PCBAddr(i)
	if err := k.Mem.Write64(base+pcbPC, a.PC); err != nil {
		return err
	}
	for r := 0; r < isa.NumRegs; r++ {
		if err := k.Mem.Write64(base+pcbRegs+8*uint64(r), a.R[r]); err != nil {
			return err
		}
		if err := k.Mem.Write64(base+pcbFRegs+8*uint64(r), f2b(a.F[r])); err != nil {
			return err
		}
	}
	return nil
}

// loadArch restores the architectural state from slot i's PCB and sets
// the PCB base register.
func (k *Kernel) loadArch(i int, a *cpu.Arch) error {
	base := PCBAddr(i)
	pc, err := k.Mem.Read64(base + pcbPC)
	if err != nil {
		return err
	}
	a.PC = pc
	for r := 0; r < isa.NumRegs; r++ {
		v, err := k.Mem.Read64(base + pcbRegs + 8*uint64(r))
		if err != nil {
			return err
		}
		a.R[r] = v
		fb, err := k.Mem.Read64(base + pcbFRegs + 8*uint64(r))
		if err != nil {
			return err
		}
		a.F[r] = b2f(fb)
	}
	a.R[isa.ZeroReg] = 0
	a.F[isa.ZeroReg] = 0
	a.PCBB = base
	return nil
}

// HandlePal implements cpu.PalHandler.
func (k *Kernel) HandlePal(c *cpu.Core, kind isa.Kind) (cpu.PalAction, error) {
	switch kind {
	case isa.KindHalt:
		c.ExitStatus = 0
		return cpu.PalStop, nil
	case isa.KindSyscall:
		return k.syscall(c)
	default:
		return cpu.PalContinue, fmt.Errorf("kernel: unhandled PAL kind %v", kind)
	}
}

// syscall dispatches on the number in R0 (v0).
func (k *Kernel) syscall(c *cpu.Core) (cpu.PalAction, error) {
	k.SyscallCount++
	a := &c.Arch
	num := a.ReadReg(isa.RegV0)
	arg0 := a.ReadReg(isa.RegA0)
	arg1 := a.ReadReg(isa.RegA1)
	switch num {
	case isa.SysExit:
		c.ExitStatus = int(int64(arg0))
		if err := k.writePCBField(k.cur, pcbState, ThreadExited); err != nil {
			return cpu.PalContinue, err
		}
		if err := k.writePCBField(k.cur, pcbExit, arg0); err != nil {
			return cpu.PalContinue, err
		}
		return cpu.PalStop, nil

	case isa.SysPutc:
		b := byte(arg0)
		if k.IOFilter != nil {
			b = k.IOFilter(b)
		}
		k.console.WriteByte(b)
		a.WriteReg(isa.RegV0, 0)
		return cpu.PalContinue, nil

	case isa.SysGetTID:
		tid, err := k.readPCBField(k.cur, pcbTID)
		if err != nil {
			return cpu.PalContinue, err
		}
		a.WriteReg(isa.RegV0, tid)
		return cpu.PalContinue, nil

	case isa.SysSpawn:
		slot := -1
		for i := 0; i < MaxThreads; i++ {
			st, err := k.readPCBField(i, pcbState)
			if err != nil {
				return cpu.PalContinue, err
			}
			if st == ThreadFree {
				slot = i
				break
			}
		}
		if slot < 0 {
			a.WriteReg(isa.RegV0, ^uint64(0)) // -1: no free slots
			return cpu.PalContinue, nil
		}
		if err := k.initPCB(slot, arg0, arg1); err != nil {
			return cpu.PalContinue, err
		}
		if slot >= k.nthreads {
			k.nthreads = slot + 1
		}
		a.WriteReg(isa.RegV0, uint64(slot))
		return cpu.PalContinue, nil

	case isa.SysYield:
		k.sliceLeft = 0
		a.WriteReg(isa.RegV0, 0)
		return cpu.PalContinue, nil

	case isa.SysThreadExit:
		if err := k.writePCBField(k.cur, pcbState, ThreadExited); err != nil {
			return cpu.PalContinue, err
		}
		if err := k.writePCBField(k.cur, pcbExit, arg0); err != nil {
			return cpu.PalContinue, err
		}
		if k.cur == 0 {
			c.ExitStatus = int(int64(arg0))
			return cpu.PalStop, nil
		}
		if !k.switchFrom(c, false) {
			// Nothing left to run.
			c.ExitStatus = 0
			return cpu.PalStop, nil
		}
		return cpu.PalContinue, nil

	case isa.SysJoin:
		target := int(int64(arg0))
		if target < 0 || target >= MaxThreads {
			a.WriteReg(isa.RegV0, ^uint64(0))
			return cpu.PalContinue, nil
		}
		st, err := k.readPCBField(target, pcbState)
		if err != nil {
			return cpu.PalContinue, err
		}
		if st == ThreadExited || st == ThreadFree {
			a.WriteReg(isa.RegV0, 0)
			return cpu.PalContinue, nil
		}
		if err := k.writePCBField(k.cur, pcbState, ThreadBlocked); err != nil {
			return cpu.PalContinue, err
		}
		if err := k.writePCBField(k.cur, pcbJoin, uint64(target)); err != nil {
			return cpu.PalContinue, err
		}
		// Re-run the join when the thread is rescheduled.
		a.PC -= 4
		a.WriteReg(isa.RegV0, isa.SysJoin)
		if !k.switchFrom(c, true) {
			return cpu.PalContinue, fmt.Errorf("kernel: join deadlock")
		}
		return cpu.PalContinue, nil

	default:
		return cpu.PalContinue, fmt.Errorf("kernel: unknown syscall %d", num)
	}
}

// MaybeSwitch implements cpu.Scheduler: round-robin preemption every
// Quantum committed instructions.
func (k *Kernel) MaybeSwitch(c *cpu.Core) bool {
	// Quantum may be reconfigured after construction; clamp the current
	// slice so the new value takes effect immediately.
	if k.sliceLeft > k.Quantum {
		k.sliceLeft = k.Quantum
	}
	if k.sliceLeft > 1 {
		k.sliceLeft--
		return false
	}
	k.sliceLeft = k.Quantum
	if k.nthreads <= 1 {
		return false
	}
	return k.switchFrom(c, true)
}

// SliceBudget implements cpu.BatchScheduler: how many commits the running
// thread is guaranteed before MaybeSwitch could preempt it. MaybeSwitch
// only fires when the slice reaches 1, so any n < SliceBudget() commits
// are preemption-free. The same clamp as MaybeSwitch applies so a
// reconfigured Quantum takes effect immediately.
func (k *Kernel) SliceBudget() uint64 {
	if k.sliceLeft > k.Quantum {
		k.sliceLeft = k.Quantum
	}
	return k.sliceLeft
}

// ConsumeSlice implements cpu.BatchScheduler: charge n commits against
// the running thread's slice in one call — identical arithmetic to n
// MaybeSwitch calls that all declined (callers guarantee n < the budget,
// so the slice never reaches the switch point mid-batch).
func (k *Kernel) ConsumeSlice(n uint64) {
	if k.sliceLeft > k.Quantum {
		k.sliceLeft = k.Quantum
	}
	if n < k.sliceLeft {
		k.sliceLeft -= n
	} else {
		k.sliceLeft = 1
	}
}

// switchFrom saves the current thread (if saveCur) and dispatches the next
// runnable one. Returns false if no other thread can run.
func (k *Kernel) switchFrom(c *cpu.Core, saveCur bool) bool {
	next := k.pickNext(c)
	if next < 0 {
		return false
	}
	if saveCur {
		curState, err := k.readPCBField(k.cur, pcbState)
		if err != nil {
			k.panic(c, err)
			return false
		}
		if err := k.saveArch(k.cur, &c.Arch); err != nil {
			k.panic(c, err)
			return false
		}
		if curState == ThreadRunning {
			if err := k.writePCBField(k.cur, pcbState, ThreadRunnable); err != nil {
				k.panic(c, err)
				return false
			}
		}
	}
	if err := k.writePCBField(next, pcbState, ThreadRunning); err != nil {
		k.panic(c, err)
		return false
	}
	if err := k.loadArch(next, &c.Arch); err != nil {
		k.panic(c, err)
		return false
	}
	k.cur = next
	k.ContextSwitches++
	return true
}

// pickNext chooses the next runnable slot after cur (round robin),
// unblocking joiners whose target has exited.
func (k *Kernel) pickNext(c *cpu.Core) int {
	for step := 1; step <= k.nthreads; step++ {
		i := (k.cur + step) % k.nthreads
		st, err := k.readPCBField(i, pcbState)
		if err != nil {
			k.panic(c, err)
			return -1
		}
		switch st {
		case ThreadRunnable:
			return i
		case ThreadBlocked:
			tgt, err := k.readPCBField(i, pcbJoin)
			if err != nil {
				k.panic(c, err)
				return -1
			}
			if int(tgt) < MaxThreads {
				ts, err := k.readPCBField(int(tgt), pcbState)
				if err != nil {
					k.panic(c, err)
					return -1
				}
				if ts == ThreadExited || ts == ThreadFree {
					return i
				}
			}
		}
	}
	return -1
}

// panic stops the core with a kernel trap (e.g. fault-corrupted PCB
// memory becoming unmappable).
func (k *Kernel) panic(c *cpu.Core, err error) {
	c.Stop(&cpu.Trap{Kind: cpu.TrapKernel, PC: c.Arch.PC})
	_ = err
}

// CurrentSlot returns the running thread slot (for tests and tools).
func (k *Kernel) CurrentSlot() int { return k.cur }

// Threads returns the number of allocated thread slots.
func (k *Kernel) Threads() int { return k.nthreads }

// Snapshot captures the kernel scheduling state for checkpointing (the
// PCBs themselves live in guest memory and are captured with it).
type Snapshot struct {
	Cur             int
	SliceLeft       uint64
	NThreads        int
	Console         []byte
	ExitTrampoline  uint64
	ContextSwitches uint64
	SyscallCount    uint64
	Quantum         uint64
}

// Snapshot returns a copy of the kernel state.
func (k *Kernel) Snapshot() Snapshot {
	return Snapshot{
		Cur:             k.cur,
		SliceLeft:       k.sliceLeft,
		NThreads:        k.nthreads,
		Console:         append([]byte(nil), k.console.Bytes()...),
		ExitTrampoline:  k.exitTrampoline,
		ContextSwitches: k.ContextSwitches,
		SyscallCount:    k.SyscallCount,
		Quantum:         k.Quantum,
	}
}

// Restore replaces the kernel state with the snapshot's.
func (k *Kernel) Restore(s Snapshot) {
	k.cur = s.Cur
	k.sliceLeft = s.SliceLeft
	k.nthreads = s.NThreads
	k.console.Reset()
	k.console.Write(s.Console)
	k.exitTrampoline = s.ExitTrampoline
	k.ContextSwitches = s.ContextSwitches
	k.SyscallCount = s.SyscallCount
	k.Quantum = s.Quantum
}

func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }
