package isa

import "fmt"

// MakeMem encodes a memory-format instruction. disp must fit in a signed
// 16-bit field.
func MakeMem(op Opcode, ra, rb Reg, disp int32) (Word, error) {
	if disp < -32768 || disp > 32767 {
		return 0, fmt.Errorf("memory displacement %d out of 16-bit range", disp)
	}
	w := Word(uint32(op)<<26 | uint32(ra&31)<<21 | uint32(rb&31)<<16 | uint32(uint16(disp)))
	return w, nil
}

// MakeBranch encodes a branch-format instruction. disp is in instruction
// words (target = PC+4 + disp*4) and must fit in a signed 21-bit field.
func MakeBranch(op Opcode, ra Reg, disp int32) (Word, error) {
	if disp < -(1<<20) || disp >= (1<<20) {
		return 0, fmt.Errorf("branch displacement %d out of 21-bit range", disp)
	}
	w := Word(uint32(op)<<26 | uint32(ra&31)<<21 | (uint32(disp) & 0x1FFFFF))
	return w, nil
}

// MakeOperate encodes a register-form integer operate instruction.
// Bits [15:13] are emitted as zero (SBZ).
func MakeOperate(op Opcode, fn uint16, ra, rb, rc Reg) Word {
	return Word(uint32(op)<<26 | uint32(ra&31)<<21 | uint32(rb&31)<<16 |
		uint32(fn&0x7F)<<5 | uint32(rc&31))
}

// MakeOperateLit encodes a literal-form integer operate instruction with an
// 8-bit unsigned literal as the second operand.
func MakeOperateLit(op Opcode, fn uint16, ra Reg, lit uint8, rc Reg) Word {
	return Word(uint32(op)<<26 | uint32(ra&31)<<21 | uint32(lit)<<13 |
		1<<12 | uint32(fn&0x7F)<<5 | uint32(rc&31))
}

// MakeFP encodes an FP-operate instruction.
func MakeFP(fn uint16, fa, fb, fc Reg) Word {
	return Word(uint32(OpFltOp)<<26 | uint32(fa&31)<<21 | uint32(fb&31)<<16 |
		uint32(fn&0x7FF)<<5 | uint32(fc&31))
}

// MakePal encodes a PAL-format instruction with a 26-bit function code.
func MakePal(fn uint32) Word {
	return Word(uint32(OpCallPal)<<26 | fn&0x3FFFFFF)
}

// MakeJump encodes a memory-format jump with a hint in disp[15:14].
func MakeJump(ra, rb Reg, hint int) Word {
	return Word(uint32(OpJMP)<<26 | uint32(ra&31)<<21 | uint32(rb&31)<<16 |
		uint32(hint&3)<<14)
}

// Nop returns an encoding of the architectural no-op.
func Nop() Word { return MakePal(PalNop) }
