package isa

// Decoding an instruction word is a pure function, so its result can be
// cached keyed on the raw 32-bit word — gem5 does exactly this with its
// per-ISA decode cache. Because the key is the (possibly fault-corrupted)
// word itself, the cache is safe under fetch-fault injection: a corrupted
// word is a different key and simply decodes (and caches) separately.

const (
	decodeCacheBits = 12 // 4096 direct-mapped entries
	decodeCacheMask = 1<<decodeCacheBits - 1

	// decodeTagValid marks a filled entry. Tags are the 32-bit word with
	// this bit set, so the all-zero word never aliases a zero-initialized
	// (empty) entry.
	decodeTagValid = uint64(1) << 63
)

type decodeEntry struct {
	tag   uint64
	in    Inst
	ports RegPorts
}

// DecodeCache memoizes Decode and Ports keyed on the raw instruction
// word. It is not safe for concurrent use; give each core its own.
type DecodeCache struct {
	entries [1 << decodeCacheBits]decodeEntry
	hits    uint64
	misses  uint64
}

// NewDecodeCache returns an empty decode cache.
func NewDecodeCache() *DecodeCache { return new(DecodeCache) }

// Decode returns the decoded form and register ports of w, from the
// cache when possible.
func (c *DecodeCache) Decode(w Word) (Inst, RegPorts) {
	// Fibonacci hash: instruction words differ mostly in low (register,
	// displacement) and high (opcode) bits; multiplication mixes both
	// into the index.
	idx := (uint32(w) * 0x9E3779B1) >> (32 - decodeCacheBits)
	e := &c.entries[idx]
	tag := uint64(w) | decodeTagValid
	if e.tag == tag {
		c.hits++
		return e.in, e.ports
	}
	c.misses++
	in := Decode(w)
	ports := in.Ports()
	*e = decodeEntry{tag: tag, in: in, ports: ports}
	return in, ports
}

// Stats returns the hit/miss counters.
func (c *DecodeCache) Stats() (hits, misses uint64) { return c.hits, c.misses }
