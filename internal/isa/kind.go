package isa

// Kind is the canonical semantic operation of a decoded instruction. The
// CPU models dispatch on Kind; a corrupted instruction word that does not
// decode to any defined operation yields KindIllegal, which the simulator
// turns into an illegal-instruction trap (the paper: "when faults were
// injected into the opcode or the function and the resulting
// opcode/function is not implemented the benchmarks always terminated their
// execution due to illegal instruction").
type Kind int

// Semantic operation kinds.
const (
	KindIllegal Kind = iota

	// Memory format.
	KindLDA
	KindLDAH
	KindLDBU
	KindSTB
	KindLDQ
	KindSTQ
	KindLDT
	KindSTT
	KindJMP

	// Branch format.
	KindBR
	KindBSR
	KindBEQ
	KindBNE
	KindBLT
	KindBLE
	KindBGE
	KindBGT
	KindFBEQ
	KindFBNE

	// Integer operate.
	KindADDQ
	KindSUBQ
	KindCMPEQ
	KindCMPLT
	KindCMPLE
	KindCMPULT
	KindCMPULE
	KindAND
	KindBIC
	KindBIS
	KindORNOT
	KindXOR
	KindEQV
	KindSLL
	KindSRL
	KindSRA
	KindMULQ
	KindDIVQ
	KindREMQ

	// FP operate.
	KindADDT
	KindSUBT
	KindMULT
	KindDIVT
	KindCMPTEQ
	KindCMPTLT
	KindCMPTLE
	KindSQRTT
	KindCVTTQ
	KindCVTQT
	KindCPYS

	// PAL format.
	KindHalt
	KindSyscall
	KindFIActivate
	KindFIInit
	KindNop

	numKinds
)

var kindNames = map[Kind]string{
	KindIllegal: "illegal",
	KindLDA:     "lda", KindLDAH: "ldah", KindLDBU: "ldbu", KindSTB: "stb",
	KindLDQ: "ldq", KindSTQ: "stq", KindLDT: "ldt", KindSTT: "stt",
	KindJMP: "jmp",
	KindBR:  "br", KindBSR: "bsr",
	KindBEQ: "beq", KindBNE: "bne", KindBLT: "blt", KindBLE: "ble",
	KindBGE: "bge", KindBGT: "bgt", KindFBEQ: "fbeq", KindFBNE: "fbne",
	KindADDQ: "addq", KindSUBQ: "subq",
	KindCMPEQ: "cmpeq", KindCMPLT: "cmplt", KindCMPLE: "cmple",
	KindCMPULT: "cmpult", KindCMPULE: "cmpule",
	KindAND: "and", KindBIC: "bic", KindBIS: "bis", KindORNOT: "ornot",
	KindXOR: "xor", KindEQV: "eqv",
	KindSLL: "sll", KindSRL: "srl", KindSRA: "sra",
	KindMULQ: "mulq", KindDIVQ: "divq", KindREMQ: "remq",
	KindADDT: "addt", KindSUBT: "subt", KindMULT: "mult", KindDIVT: "divt",
	KindCMPTEQ: "cmpteq", KindCMPTLT: "cmptlt", KindCMPTLE: "cmptle",
	KindSQRTT: "sqrtt", KindCVTTQ: "cvttq", KindCVTQT: "cvtqt", KindCPYS: "cpys",
	KindHalt: "halt", KindSyscall: "callsys",
	KindFIActivate: "fi_activate_inst", KindFIInit: "fi_read_init_all",
	KindNop: "nop",
}

// String returns the assembly mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind?"
}

// IsLoad reports whether the kind reads from memory.
func (k Kind) IsLoad() bool {
	switch k {
	case KindLDBU, KindLDQ, KindLDT:
		return true
	}
	return false
}

// IsStore reports whether the kind writes to memory.
func (k Kind) IsStore() bool {
	switch k {
	case KindSTB, KindSTQ, KindSTT:
		return true
	}
	return false
}

// IsMem reports whether the kind performs a memory transaction (the
// paper's "memory transactions (load/stores)" fault location).
func (k Kind) IsMem() bool { return k.IsLoad() || k.IsStore() }

// MemSize returns the transaction width in bytes for a load/store kind
// (1 for the byte forms, 8 for everything else). Only meaningful when
// IsMem() is true.
func (k Kind) MemSize() int {
	if k == KindLDBU || k == KindSTB {
		return 1
	}
	return 8
}

// IsBranch reports whether the kind can redirect control flow.
func (k Kind) IsBranch() bool {
	switch k {
	case KindJMP, KindBR, KindBSR, KindBEQ, KindBNE, KindBLT, KindBLE,
		KindBGE, KindBGT, KindFBEQ, KindFBNE:
		return true
	}
	return false
}

// IsCondBranch reports whether the branch outcome depends on a register.
func (k Kind) IsCondBranch() bool {
	switch k {
	case KindBEQ, KindBNE, KindBLT, KindBLE, KindBGE, KindBGT, KindFBEQ, KindFBNE:
		return true
	}
	return false
}

// IsFP reports whether the kind's destination (if any) is a floating point
// register.
func (k Kind) IsFP() bool {
	switch k {
	case KindLDT, KindADDT, KindSUBT, KindMULT, KindDIVT, KindCMPTEQ,
		KindCMPTLT, KindCMPTLE, KindSQRTT, KindCVTTQ, KindCVTQT, KindCPYS:
		return true
	}
	return false
}
