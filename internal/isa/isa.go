// Package isa defines "Thessaly-64", the Alpha-like 64-bit RISC instruction
// set simulated by this repository.
//
// The four instruction formats reproduce Table I of the GemFI paper (the
// Alpha instruction formats) bit-for-bit:
//
//	Memory:    opcode[31:26] Ra[25:21] Rb[20:16] displacement[15:0]
//	Branch:    opcode[31:26] Ra[25:21] displacement[20:0]
//	Operate:   opcode[31:26] Ra[25:21] Rb[20:16] SBZ[15:13] L[12] func[11:5] Rc[4:0]
//	           (literal form: opcode Ra literal[20:13] L=1 func Rc)
//	FP Operate:opcode[31:26] Fa[25:21] Fb[20:16] func[15:5]  Fc[4:0]
//	PALcode:   opcode[31:26] palcode function[25:0]
//
// Opcode numbering follows the Alpha layout where practical but is not
// binary compatible; DIVQ and REMQ are extensions (real Alpha has no
// integer divide). The fetch-stage fault taxonomy of the paper depends on
// the existence of unused bits: in register-form Operate instructions bits
// [15:13] are SBZ and ignored by decode, and in Memory-format jumps the
// displacement's low 14 bits are a hint ignored by the execution semantics.
package isa

import "fmt"

// Word is a single 32-bit instruction word.
type Word uint32

// Reg names an integer register. R31 always reads as zero.
type Reg uint8

// NumRegs is the number of architectural integer (and floating point)
// registers.
const NumRegs = 32

// ZeroReg reads as zero and discards writes, like Alpha R31/F31.
const ZeroReg Reg = 31

// Conventional register roles (Alpha calling standard).
const (
	RegV0 Reg = 0 // function return value
	RegT0 Reg = 1 // temporaries R1..R8
	RegT1 Reg = 2
	RegT2 Reg = 3
	RegT3 Reg = 4
	RegT4 Reg = 5
	RegT5 Reg = 6
	RegT6 Reg = 7
	RegT7 Reg = 8
	RegS0 Reg = 9  // callee-saved R9..R14
	RegS5 Reg = 14 //
	RegFP Reg = 15 // frame pointer
	RegA0 Reg = 16 // arguments R16..R21
	RegA1 Reg = 17
	RegA2 Reg = 18
	RegA3 Reg = 19
	RegA4 Reg = 20
	RegA5 Reg = 21
	RegT8 Reg = 22 // more temporaries R22..R25
	RegRA Reg = 26 // return address
	RegPV Reg = 27 // procedure value
	RegAT Reg = 28 // assembler temporary
	RegGP Reg = 29 // global pointer (unused by our toolchain)
	RegSP Reg = 30 // stack pointer
)

// Format identifies which of the Table I instruction formats a word uses.
type Format int

// Instruction formats (Table I of the paper).
const (
	FormatUnknown Format = iota
	FormatMemory
	FormatBranch
	FormatOperate
	FormatFP
	FormatPAL
)

// String returns the format name as used in Table I.
func (f Format) String() string {
	switch f {
	case FormatMemory:
		return "Memory"
	case FormatBranch:
		return "Branch"
	case FormatOperate:
		return "Operate"
	case FormatFP:
		return "FP Operate"
	case FormatPAL:
		return "PALcode"
	default:
		return "Unknown"
	}
}

// Opcode is the 6-bit primary opcode field.
type Opcode uint8

// Primary opcodes. Grouped by format.
const (
	OpCallPal Opcode = 0x00 // PAL format: syscalls and FI pseudo-instructions

	// Memory format.
	OpLDA  Opcode = 0x08 // Ra = Rb + sext(disp)
	OpLDAH Opcode = 0x09 // Ra = Rb + sext(disp)<<16
	OpLDBU Opcode = 0x0A // load zero-extended byte
	OpSTB  Opcode = 0x0E // store byte
	OpJMP  Opcode = 0x1A // Ra = PC+4; PC = Rb & ^3 (disp[15:14] = hint)
	OpLDT  Opcode = 0x23 // load 64-bit float
	OpSTT  Opcode = 0x27 // store 64-bit float
	OpLDQ  Opcode = 0x29 // load quadword
	OpSTQ  Opcode = 0x2D // store quadword

	// Operate format (integer).
	OpIntArith Opcode = 0x10 // add/sub/compare
	OpIntLogic Opcode = 0x11 // and/or/xor/...
	OpIntShift Opcode = 0x12 // shifts
	OpIntMul   Opcode = 0x13 // multiply/divide (DIVQ/REMQ are extensions)

	// FP operate format.
	OpFltOp Opcode = 0x16

	// Branch format.
	OpBR   Opcode = 0x30 // unconditional, Ra = PC+4
	OpFBEQ Opcode = 0x31 // branch if Fa == 0.0
	OpBSR  Opcode = 0x34 // subroutine call, Ra = PC+4
	OpFBNE Opcode = 0x35 // branch if Fa != 0.0
	OpBEQ  Opcode = 0x39
	OpBLT  Opcode = 0x3A
	OpBLE  Opcode = 0x3B
	OpBNE  Opcode = 0x3D
	OpBGE  Opcode = 0x3E
	OpBGT  Opcode = 0x3F
)

// Integer arithmetic function codes (opcode 0x10).
const (
	FnADDQ   uint16 = 0x20
	FnSUBQ   uint16 = 0x29
	FnCMPEQ  uint16 = 0x2D
	FnCMPLT  uint16 = 0x4D
	FnCMPLE  uint16 = 0x6D
	FnCMPULT uint16 = 0x1D
	FnCMPULE uint16 = 0x3D
)

// Integer logical function codes (opcode 0x11).
const (
	FnAND   uint16 = 0x00
	FnBIC   uint16 = 0x08
	FnBIS   uint16 = 0x20 // OR
	FnORNOT uint16 = 0x28
	FnXOR   uint16 = 0x40
	FnEQV   uint16 = 0x48 // XNOR
)

// Integer shift function codes (opcode 0x12).
const (
	FnSLL uint16 = 0x39
	FnSRL uint16 = 0x34
	FnSRA uint16 = 0x3C
)

// Integer multiply/divide function codes (opcode 0x13).
const (
	FnMULQ uint16 = 0x20
	FnDIVQ uint16 = 0x30 // extension: real Alpha has no integer divide
	FnREMQ uint16 = 0x31 // extension
)

// FP operate function codes (opcode 0x16, 11-bit function field).
const (
	FnADDT   uint16 = 0x0A0
	FnSUBT   uint16 = 0x0A1
	FnMULT   uint16 = 0x0A2
	FnDIVT   uint16 = 0x0A3
	FnCMPTEQ uint16 = 0x0A5 // Fc = 2.0 if Fa == Fb else 0.0
	FnCMPTLT uint16 = 0x0A6
	FnCMPTLE uint16 = 0x0A7
	FnSQRTT  uint16 = 0x0AB
	FnCVTTQ  uint16 = 0x0AF // Fc = float64bits(int64(trunc(Fb)))
	FnCVTQT  uint16 = 0x0BE // Fc = float64(int64(float64bits(Fb)))
	FnCPYS   uint16 = 0x020 // copy sign: Fc = copysign(Fb, Fa); CPYS f,f,c moves
)

// PALcode function codes (opcode 0x00). The FI codes are the GemFI
// pseudo-instructions of Section III.A of the paper.
const (
	PalHalt       uint32 = 0x0000
	PalCallSys    uint32 = 0x0083 // syscall: number in R0, args in R16..R21
	PalFIActivate uint32 = 0x0100 // fi_activate_inst(id): id in R16
	PalFIInit     uint32 = 0x0101 // fi_read_init_all(): checkpoint + FI reset
	PalNop        uint32 = 0x0102 // no operation (pipeline/testing aid)
)

// Syscall numbers passed in R0 with PalCallSys.
const (
	SysExit       uint64 = 1 // status in R16; terminates the simulation
	SysPutc       uint64 = 2 // write byte R16 to the console
	SysGetTID     uint64 = 3 // returns thread id in R0
	SysSpawn      uint64 = 4 // entry PC in R16, argument in R17; returns tid
	SysYield      uint64 = 5 // voluntarily give up the time slice
	SysThreadExit uint64 = 6 // terminate the calling thread only
	SysJoin       uint64 = 7 // block until thread R16 exits
)

// JMP hint values stored in displacement bits [15:14] of memory-format
// jumps. They do not change execution semantics (exactly like Alpha), which
// makes the remaining displacement bits "unused" for the purposes of the
// paper's fetch-fault analysis.
const (
	HintJMP = 0
	HintJSR = 1
	HintRET = 2
	HintJCR = 3
)

// regNames are the conventional Alpha register mnemonics.
var regNames = [NumRegs]string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
	"t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
	"t10", "t11", "ra", "pv", "at", "gp", "sp", "zero",
}

// String returns the conventional mnemonic for the register.
func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r%d?", uint8(r))
}

// RegByName resolves a register mnemonic ("t0", "sp", ...) or numeric name
// ("r7" / "$7" / "f7" for floating point contexts).
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if len(name) >= 2 && (name[0] == 'r' || name[0] == 'R' || name[0] == '$' || name[0] == 'f' || name[0] == 'F') {
		v := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		if v < NumRegs {
			return Reg(v), true
		}
	}
	return 0, false
}

// FormatOf classifies a primary opcode into its Table I format.
func FormatOf(op Opcode) Format {
	switch op {
	case OpCallPal:
		return FormatPAL
	case OpLDA, OpLDAH, OpLDBU, OpSTB, OpJMP, OpLDT, OpSTT, OpLDQ, OpSTQ:
		return FormatMemory
	case OpIntArith, OpIntLogic, OpIntShift, OpIntMul:
		return FormatOperate
	case OpFltOp:
		return FormatFP
	case OpBR, OpFBEQ, OpBSR, OpFBNE, OpBEQ, OpBLT, OpBLE, OpBNE, OpBGE, OpBGT:
		return FormatBranch
	default:
		return FormatUnknown
	}
}
