package isa

import "testing"

// sampleWords enumerates representative encodable words for every
// instruction kind: each memory/branch opcode at its displacement
// extremes, every operate function in register and literal form, every FP
// function, every jump hint and every PAL code.
func sampleWords(t *testing.T) []Word {
	t.Helper()
	var words []Word
	emit := func(w Word, err error) {
		if err != nil {
			t.Fatalf("sample encode: %v", err)
		}
		words = append(words, w)
	}

	memOps := []Opcode{OpLDA, OpLDAH, OpLDBU, OpSTB, OpLDQ, OpSTQ, OpLDT, OpSTT}
	for _, op := range memOps {
		for _, disp := range []int32{0, 1, -1, 255, 32767, -32768} {
			emit(MakeMem(op, RegT0, RegSP, disp))
			emit(MakeMem(op, RegS0, ZeroReg, disp))
		}
	}
	for ra := Reg(0); ra < NumRegs; ra++ {
		for hint := 0; hint < 4; hint++ {
			emit(MakeJump(ra, RegRA, hint), nil)
		}
	}

	brOps := []Opcode{OpBR, OpBSR, OpBEQ, OpBNE, OpBLT, OpBLE, OpBGE, OpBGT, OpFBEQ, OpFBNE}
	for _, op := range brOps {
		for _, disp := range []int32{0, 1, -1, (1 << 20) - 1, -(1 << 20)} {
			emit(MakeBranch(op, RegT3, disp))
		}
	}

	intFns := []struct {
		op Opcode
		fn uint16
	}{
		{OpIntArith, FnADDQ}, {OpIntArith, FnSUBQ}, {OpIntArith, FnCMPEQ},
		{OpIntArith, FnCMPLT}, {OpIntArith, FnCMPLE}, {OpIntArith, FnCMPULT},
		{OpIntArith, FnCMPULE},
		{OpIntLogic, FnAND}, {OpIntLogic, FnBIC}, {OpIntLogic, FnBIS},
		{OpIntLogic, FnORNOT}, {OpIntLogic, FnXOR}, {OpIntLogic, FnEQV},
		{OpIntShift, FnSLL}, {OpIntShift, FnSRL}, {OpIntShift, FnSRA},
		{OpIntMul, FnMULQ}, {OpIntMul, FnDIVQ}, {OpIntMul, FnREMQ},
	}
	for _, f := range intFns {
		emit(MakeOperate(f.op, f.fn, RegT0, RegT1, RegT2), nil)
		for _, lit := range []uint8{0, 1, 255} {
			emit(MakeOperateLit(f.op, f.fn, RegA0, lit, RegV0), nil)
		}
	}

	fpFns := []uint16{FnADDT, FnSUBT, FnMULT, FnDIVT, FnCMPTEQ, FnCMPTLT,
		FnCMPTLE, FnSQRTT, FnCVTTQ, FnCVTQT, FnCPYS}
	for _, fn := range fpFns {
		emit(MakeFP(fn, Reg(1), Reg(2), Reg(3)), nil)
		emit(MakeFP(fn, ZeroReg, Reg(7), Reg(8)), nil)
	}

	for _, pal := range []uint32{PalHalt, PalCallSys, PalFIActivate, PalFIInit, PalNop} {
		emit(MakePal(pal), nil)
	}
	return words
}

// reencode rebuilds a word from its decoded fields through the public
// constructors, so any information the decoder drops shows up as a
// mismatch.
func reencode(t *testing.T, in Inst) Word {
	t.Helper()
	switch in.Format {
	case FormatMemory:
		if in.Kind == KindJMP {
			return MakeJump(in.Ra, in.Rb, in.Hint)
		}
		w, err := MakeMem(in.Op, in.Ra, in.Rb, in.Disp)
		if err != nil {
			t.Fatalf("re-encode %v: %v", in, err)
		}
		return w
	case FormatBranch:
		w, err := MakeBranch(in.Op, in.Ra, in.Disp)
		if err != nil {
			t.Fatalf("re-encode %v: %v", in, err)
		}
		return w
	case FormatOperate:
		if in.IsLit {
			return MakeOperateLit(in.Op, in.Func, in.Ra, in.Lit, in.Rc)
		}
		return MakeOperate(in.Op, in.Func, in.Ra, in.Rb, in.Rc)
	case FormatFP:
		return MakeFP(in.Func, in.Ra, in.Rb, in.Rc)
	case FormatPAL:
		return MakePal(in.Pal)
	}
	t.Fatalf("re-encode %v: unknown format %v", in, in.Format)
	return 0
}

// TestDecodeEncodeRoundTrip asserts decode(encode(x)) == x for every
// sampled word: decoding then re-encoding through the constructors must
// reproduce the exact word.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	for _, w := range sampleWords(t) {
		in := Decode(w)
		if in.Kind == KindIllegal {
			t.Errorf("word %08x decodes as illegal", uint32(w))
			continue
		}
		if in.Raw != w {
			t.Errorf("word %08x: decoded Raw = %08x", uint32(w), uint32(in.Raw))
		}
		if got := reencode(t, in); got != w {
			t.Errorf("word %08x (%s): re-encoded to %08x", uint32(w), in, uint32(got))
		}
	}
}

// TestSampleCoversAllKinds asserts the sample exercises every defined
// instruction kind, so new kinds cannot dodge the round-trip property.
func TestSampleCoversAllKinds(t *testing.T) {
	seen := make(map[Kind]bool)
	for _, w := range sampleWords(t) {
		seen[Decode(w).Kind] = true
	}
	for k := KindIllegal + 1; k < numKinds; k++ {
		if !seen[k] {
			t.Errorf("kind %v not covered by sampleWords", k)
		}
	}
}

// TestDecodeNeverPanics sweeps structured corruptions of a valid word —
// the fault model's single- and double-bit flips — checking Decode is
// total (the paper relies on corrupted fetches decoding to either a valid
// instruction or KindIllegal, never a simulator crash).
func TestDecodeNeverPanics(t *testing.T) {
	for _, w := range sampleWords(t) {
		for bit := 0; bit < 32; bit++ {
			in := Decode(w ^ Word(1<<uint(bit)))
			_ = in.Kind.String()
			_ = in.String()
		}
	}
}
