package isa

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDecodeMemoryFormat(t *testing.T) {
	w, err := MakeMem(OpLDQ, RegV0, RegSP, -16)
	if err != nil {
		t.Fatal(err)
	}
	in := Decode(w)
	if in.Format != FormatMemory || in.Kind != KindLDQ {
		t.Fatalf("got format %v kind %v", in.Format, in.Kind)
	}
	if in.Ra != RegV0 || in.Rb != RegSP || in.Disp != -16 {
		t.Fatalf("fields: Ra=%v Rb=%v Disp=%d", in.Ra, in.Rb, in.Disp)
	}
}

func TestDecodeBranchFormat(t *testing.T) {
	for _, tc := range []struct {
		op   Opcode
		kind Kind
		disp int32
	}{
		{OpBEQ, KindBEQ, 100},
		{OpBNE, KindBNE, -100},
		{OpBR, KindBR, (1 << 20) - 1},
		{OpBSR, KindBSR, -(1 << 20)},
		{OpFBEQ, KindFBEQ, 0},
	} {
		w, err := MakeBranch(tc.op, RegT0, tc.disp)
		if err != nil {
			t.Fatal(err)
		}
		in := Decode(w)
		if in.Kind != tc.kind || in.Disp != tc.disp || in.Ra != RegT0 {
			t.Errorf("%v: kind=%v disp=%d ra=%v", tc.op, in.Kind, in.Disp, in.Ra)
		}
	}
}

func TestDecodeOperateRegisterForm(t *testing.T) {
	w := MakeOperate(OpIntArith, FnADDQ, RegT0, RegT1, RegT2)
	in := Decode(w)
	if in.Kind != KindADDQ || in.IsLit {
		t.Fatalf("kind=%v lit=%v", in.Kind, in.IsLit)
	}
	if in.Ra != RegT0 || in.Rb != RegT1 || in.Rc != RegT2 {
		t.Fatalf("fields: %v %v %v", in.Ra, in.Rb, in.Rc)
	}
}

func TestDecodeOperateLiteralForm(t *testing.T) {
	w := MakeOperateLit(OpIntArith, FnSUBQ, RegSP, 255, RegSP)
	in := Decode(w)
	if in.Kind != KindSUBQ || !in.IsLit || in.Lit != 255 {
		t.Fatalf("kind=%v lit=%v val=%d", in.Kind, in.IsLit, in.Lit)
	}
}

func TestDecodeFPFormat(t *testing.T) {
	w := MakeFP(FnMULT, 1, 2, 3)
	in := Decode(w)
	if in.Kind != KindMULT || in.Ra != 1 || in.Rb != 2 || in.Rc != 3 {
		t.Fatalf("got %+v", in)
	}
	if !in.Kind.IsFP() {
		t.Fatal("MULT should be FP")
	}
}

func TestDecodePAL(t *testing.T) {
	for fn, k := range map[uint32]Kind{
		PalHalt:       KindHalt,
		PalCallSys:    KindSyscall,
		PalFIActivate: KindFIActivate,
		PalFIInit:     KindFIInit,
		PalNop:        KindNop,
		0x3FFFFFF:     KindIllegal,
	} {
		if got := Decode(MakePal(fn)).Kind; got != k {
			t.Errorf("pal 0x%x: got %v want %v", fn, got, k)
		}
	}
}

// TestOperateSBZBitsIgnored verifies the paper's key fetch-fault property:
// corrupting the SBZ bits [15:13] of a register-form operate instruction
// must not change decoding at all.
func TestOperateSBZBitsIgnored(t *testing.T) {
	base := MakeOperate(OpIntArith, FnADDQ, RegT0, RegT1, RegT2)
	ref := Decode(base)
	for bit := 13; bit <= 15; bit++ {
		corrupted := Decode(base ^ (1 << uint(bit)))
		if corrupted.Kind != ref.Kind || corrupted.Ra != ref.Ra ||
			corrupted.Rb != ref.Rb || corrupted.Rc != ref.Rc ||
			corrupted.IsLit != ref.IsLit {
			t.Errorf("bit %d should be ignored: %+v vs %+v", bit, corrupted, ref)
		}
	}
}

// TestJumpHintBitsSemanticallyInert verifies that the 14 low displacement
// bits and the 2 hint bits of a memory-format jump do not change the
// instruction's register ports or kind.
func TestJumpHintBitsSemanticallyInert(t *testing.T) {
	base := MakeJump(RegRA, RegPV, HintJSR)
	ref := Decode(base)
	refPorts := ref.Ports()
	for bit := 0; bit <= 15; bit++ {
		in := Decode(base ^ (1 << uint(bit)))
		if in.Kind != KindJMP || in.Ra != ref.Ra || in.Rb != ref.Rb {
			t.Errorf("bit %d changed jump semantics", bit)
		}
		if in.Ports() != refPorts {
			t.Errorf("bit %d changed jump ports", bit)
		}
	}
}

func TestDecodeUnknownOpcodeIsIllegal(t *testing.T) {
	for _, op := range []Opcode{0x01, 0x07, 0x1F, 0x2A, 0x38} {
		w := Word(uint32(op) << 26)
		if k := Decode(w).Kind; k != KindIllegal {
			t.Errorf("opcode 0x%02x decodes to %v, want illegal", op, k)
		}
	}
}

func TestUnknownFunctionIsIllegal(t *testing.T) {
	if k := Decode(MakeOperate(OpIntArith, 0x7F, 0, 0, 0)).Kind; k != KindIllegal {
		t.Errorf("int func 0x7F decodes to %v", k)
	}
	if k := Decode(MakeFP(0x7FF, 0, 0, 0)).Kind; k != KindIllegal {
		t.Errorf("fp func 0x7FF decodes to %v", k)
	}
}

// TestDecodeTotal is a property test: Decode must be total (never panic)
// and must classify every word into a defined format or FormatUnknown with
// KindIllegal.
func TestDecodeTotal(t *testing.T) {
	f := func(raw uint32) bool {
		in := Decode(Word(raw))
		if in.Format == FormatUnknown && in.Kind != KindIllegal {
			return false
		}
		_ = in.Ports()
		_ = in.Disassemble(0x1000)
		return in.Raw == Word(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeRoundTrip checks field round-tripping for all formats
// via testing/quick.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	mem := func(ra, rb uint8, disp int16) bool {
		w, err := MakeMem(OpSTQ, Reg(ra%32), Reg(rb%32), int32(disp))
		if err != nil {
			return false
		}
		in := Decode(w)
		return in.Ra == Reg(ra%32) && in.Rb == Reg(rb%32) && in.Disp == int32(disp)
	}
	if err := quick.Check(mem, nil); err != nil {
		t.Errorf("memory: %v", err)
	}
	op := func(ra, rb, rc uint8) bool {
		w := MakeOperate(OpIntLogic, FnXOR, Reg(ra%32), Reg(rb%32), Reg(rc%32))
		in := Decode(w)
		return in.Kind == KindXOR && in.Ra == Reg(ra%32) && in.Rb == Reg(rb%32) && in.Rc == Reg(rc%32)
	}
	if err := quick.Check(op, nil); err != nil {
		t.Errorf("operate: %v", err)
	}
	lit := func(ra, rc, l uint8) bool {
		w := MakeOperateLit(OpIntShift, FnSLL, Reg(ra%32), l, Reg(rc%32))
		in := Decode(w)
		return in.Kind == KindSLL && in.IsLit && in.Lit == l
	}
	if err := quick.Check(lit, nil); err != nil {
		t.Errorf("literal: %v", err)
	}
}

func TestMakeMemRangeCheck(t *testing.T) {
	if _, err := MakeMem(OpLDQ, 0, 0, 40000); err == nil {
		t.Error("expected range error for disp 40000")
	}
	if _, err := MakeBranch(OpBR, 0, 1<<21); err == nil {
		t.Error("expected range error for branch disp")
	}
}

func TestRegByName(t *testing.T) {
	cases := map[string]Reg{
		"v0": 0, "t0": 1, "sp": 30, "zero": 31, "ra": 26,
		"r17": 17, "$5": 5, "f9": 9,
	}
	for name, want := range cases {
		got, ok := RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("bogus register resolved")
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("r32 resolved")
	}
}

func TestPortsStoreReadsValueRegister(t *testing.T) {
	w, _ := MakeMem(OpSTQ, RegT3, RegSP, 8)
	p := Decode(w).Ports()
	if !p.SrcAUsed || p.SrcA != RegSP {
		t.Errorf("store base port wrong: %+v", p)
	}
	if !p.SrcBUsed || p.SrcB != RegT3 {
		t.Errorf("store value port wrong: %+v", p)
	}
	if p.DstUsed {
		t.Error("store must not have a destination")
	}
}

func TestPortsFPOperate(t *testing.T) {
	p := Decode(MakeFP(FnADDT, 4, 5, 6)).Ports()
	if !p.SrcAFP || !p.SrcBFP || !p.DstFP {
		t.Errorf("FP ports not marked FP: %+v", p)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := []Word{
		MakeOperate(OpIntArith, FnADDQ, 1, 2, 3),
		MakeOperateLit(OpIntArith, FnADDQ, 1, 7, 3),
		MakeFP(FnMULT, 1, 2, 3),
		MakePal(PalCallSys),
		MakeJump(RegRA, RegPV, HintRET),
	}
	w, _ := MakeMem(OpLDQ, 1, 30, 8)
	cases = append(cases, w)
	w, _ = MakeBranch(OpBNE, 5, -3)
	cases = append(cases, w)
	for _, c := range cases {
		s := Decode(c).Disassemble(0x2000)
		if s == "" {
			t.Errorf("empty disassembly for %08x", uint32(c))
		}
	}
}

// TestInstructionFormatsTable prints the Table I reproduction: the four
// instruction formats with their bit field layout. Run with -v to see it.
func TestInstructionFormatsTable(t *testing.T) {
	rows := []struct{ format, layout string }{
		{"Memory", "opcode[31:26] Ra[25:21] Rb[20:16] displacement[15:0]"},
		{"Branch", "opcode[31:26] Ra[25:21] displacement[20:0]"},
		{"Operate (reg)", "opcode[31:26] Ra[25:21] Rb[20:16] SBZ[15:13] 0[12] func[11:5] Rc[4:0]"},
		{"Operate (lit)", "opcode[31:26] Ra[25:21] literal[20:13] 1[12] func[11:5] Rc[4:0]"},
		{"FP Operate", "opcode[31:26] Fa[25:21] Fb[20:16] func[15:5] Fc[4:0]"},
		{"PALcode", "opcode[31:26] palcode function[25:0]"},
	}
	t.Log("Table I: instruction formats")
	for _, r := range rows {
		t.Log(fmt.Sprintf("%-14s %s", r.format, r.layout))
	}
	// Structurally verify a representative of each row decodes with the
	// claimed fields.
	w, _ := MakeMem(OpLDQ, 3, 4, 100)
	if in := Decode(w); in.Ra != 3 || in.Rb != 4 || in.Disp != 100 {
		t.Error("memory row mismatch")
	}
	w, _ = MakeBranch(OpBEQ, 7, -9)
	if in := Decode(w); in.Ra != 7 || in.Disp != -9 {
		t.Error("branch row mismatch")
	}
	if in := Decode(MakeOperateLit(OpIntArith, FnADDQ, 2, 200, 9)); !in.IsLit || in.Lit != 200 {
		t.Error("literal row mismatch")
	}
	if in := Decode(MakeFP(FnDIVT, 8, 9, 10)); in.Func != FnDIVT {
		t.Error("fp row mismatch")
	}
	if in := Decode(MakePal(PalFIActivate)); in.Pal != PalFIActivate {
		t.Error("pal row mismatch")
	}
}

func BenchmarkDecode(b *testing.B) {
	words := []Word{
		MakeOperate(OpIntArith, FnADDQ, 1, 2, 3),
		MakeFP(FnMULT, 1, 2, 3),
		MakePal(PalNop),
	}
	w, _ := MakeMem(OpLDQ, 1, 30, 8)
	words = append(words, w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Decode(words[i&3])
	}
}
