package isa

// Inst is a fully decoded instruction. Decode never fails: words that do
// not correspond to a defined operation decode with Kind == KindIllegal so
// that fault-corrupted instruction words flow through the pipeline and trap
// at execution, as on real hardware.
type Inst struct {
	Raw    Word
	Op     Opcode
	Format Format
	Kind   Kind

	Ra, Rb, Rc Reg // register fields as encoded (FP registers reuse these)

	Lit   uint8 // 8-bit literal when IsLit
	IsLit bool  // operate literal form (bit 12)

	Func uint16 // 7-bit integer or 11-bit FP function field
	Disp int32  // sign-extended 16-bit (memory) or 21-bit (branch) displacement
	Pal  uint32 // 26-bit PALcode function

	Hint int // memory-format jump hint (disp bits [15:14]); semantically inert
}

// field extracts bits [hi:lo] of w.
func field(w Word, hi, lo uint) uint32 {
	return (uint32(w) >> lo) & ((1 << (hi - lo + 1)) - 1)
}

// signExtend sign-extends the low n bits of v.
func signExtend(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// Decode decodes a 32-bit instruction word.
func Decode(w Word) Inst {
	op := Opcode(field(w, 31, 26))
	in := Inst{Raw: w, Op: op, Format: FormatOf(op)}
	switch in.Format {
	case FormatMemory:
		in.Ra = Reg(field(w, 25, 21))
		in.Rb = Reg(field(w, 20, 16))
		in.Disp = signExtend(field(w, 15, 0), 16)
		in.Kind = memKind(op)
		if op == OpJMP {
			// Bits [15:14] are a branch-prediction hint; bits [13:0] are
			// unused. Neither affects semantics (paper Section IV.B:
			// "experiments affecting unused bits always resulted into
			// strict correct results").
			in.Hint = int(field(w, 15, 14))
		}
	case FormatBranch:
		in.Ra = Reg(field(w, 25, 21))
		in.Disp = signExtend(field(w, 20, 0), 21)
		in.Kind = branchKind(op)
	case FormatOperate:
		in.Ra = Reg(field(w, 25, 21))
		in.Rc = Reg(field(w, 4, 0))
		in.Func = uint16(field(w, 11, 5))
		if field(w, 12, 12) != 0 {
			in.IsLit = true
			in.Lit = uint8(field(w, 20, 13))
		} else {
			// Register form: bits [15:13] are SBZ and deliberately ignored.
			in.Rb = Reg(field(w, 20, 16))
		}
		in.Kind = operateKind(op, in.Func)
	case FormatFP:
		in.Ra = Reg(field(w, 25, 21))
		in.Rb = Reg(field(w, 20, 16))
		in.Rc = Reg(field(w, 4, 0))
		in.Func = uint16(field(w, 15, 5))
		in.Kind = fpKind(in.Func)
	case FormatPAL:
		in.Pal = uint32(field(w, 25, 0))
		in.Kind = palKind(in.Pal)
	default:
		in.Kind = KindIllegal
	}
	return in
}

func memKind(op Opcode) Kind {
	switch op {
	case OpLDA:
		return KindLDA
	case OpLDAH:
		return KindLDAH
	case OpLDBU:
		return KindLDBU
	case OpSTB:
		return KindSTB
	case OpJMP:
		return KindJMP
	case OpLDT:
		return KindLDT
	case OpSTT:
		return KindSTT
	case OpLDQ:
		return KindLDQ
	case OpSTQ:
		return KindSTQ
	}
	return KindIllegal
}

func branchKind(op Opcode) Kind {
	switch op {
	case OpBR:
		return KindBR
	case OpBSR:
		return KindBSR
	case OpBEQ:
		return KindBEQ
	case OpBNE:
		return KindBNE
	case OpBLT:
		return KindBLT
	case OpBLE:
		return KindBLE
	case OpBGE:
		return KindBGE
	case OpBGT:
		return KindBGT
	case OpFBEQ:
		return KindFBEQ
	case OpFBNE:
		return KindFBNE
	}
	return KindIllegal
}

func operateKind(op Opcode, fn uint16) Kind {
	switch op {
	case OpIntArith:
		switch fn {
		case FnADDQ:
			return KindADDQ
		case FnSUBQ:
			return KindSUBQ
		case FnCMPEQ:
			return KindCMPEQ
		case FnCMPLT:
			return KindCMPLT
		case FnCMPLE:
			return KindCMPLE
		case FnCMPULT:
			return KindCMPULT
		case FnCMPULE:
			return KindCMPULE
		}
	case OpIntLogic:
		switch fn {
		case FnAND:
			return KindAND
		case FnBIC:
			return KindBIC
		case FnBIS:
			return KindBIS
		case FnORNOT:
			return KindORNOT
		case FnXOR:
			return KindXOR
		case FnEQV:
			return KindEQV
		}
	case OpIntShift:
		switch fn {
		case FnSLL:
			return KindSLL
		case FnSRL:
			return KindSRL
		case FnSRA:
			return KindSRA
		}
	case OpIntMul:
		switch fn {
		case FnMULQ:
			return KindMULQ
		case FnDIVQ:
			return KindDIVQ
		case FnREMQ:
			return KindREMQ
		}
	}
	return KindIllegal
}

func fpKind(fn uint16) Kind {
	switch fn {
	case FnADDT:
		return KindADDT
	case FnSUBT:
		return KindSUBT
	case FnMULT:
		return KindMULT
	case FnDIVT:
		return KindDIVT
	case FnCMPTEQ:
		return KindCMPTEQ
	case FnCMPTLT:
		return KindCMPTLT
	case FnCMPTLE:
		return KindCMPTLE
	case FnSQRTT:
		return KindSQRTT
	case FnCVTTQ:
		return KindCVTTQ
	case FnCVTQT:
		return KindCVTQT
	case FnCPYS:
		return KindCPYS
	}
	return KindIllegal
}

func palKind(fn uint32) Kind {
	switch fn {
	case PalHalt:
		return KindHalt
	case PalCallSys:
		return KindSyscall
	case PalFIActivate:
		return KindFIActivate
	case PalFIInit:
		return KindFIInit
	case PalNop:
		return KindNop
	}
	return KindIllegal
}

// RegPorts describes which architectural registers an instruction reads
// and writes. It is the information the decode stage produces, and the
// structure GemFI's decode-stage faults corrupt ("the selection of
// read/write registers during the decoding stage").
type RegPorts struct {
	// SrcA and SrcB are source register indices; a value of ZeroReg with
	// the corresponding Used flag false means "no such operand".
	SrcA, SrcB Reg
	SrcAFP     bool
	SrcBFP     bool
	SrcAUsed   bool
	SrcBUsed   bool
	Dst        Reg
	DstFP      bool
	DstUsed    bool
}

// Ports computes the register read/write ports of the instruction.
func (in Inst) Ports() RegPorts {
	var p RegPorts
	p.SrcA, p.SrcB, p.Dst = ZeroReg, ZeroReg, ZeroReg
	switch in.Format {
	case FormatMemory:
		switch in.Kind {
		case KindLDA, KindLDAH:
			p.SrcA, p.SrcAUsed = in.Rb, true
			p.Dst, p.DstUsed = in.Ra, true
		case KindLDBU, KindLDQ:
			p.SrcA, p.SrcAUsed = in.Rb, true
			p.Dst, p.DstUsed = in.Ra, true
		case KindLDT:
			p.SrcA, p.SrcAUsed = in.Rb, true
			p.Dst, p.DstUsed, p.DstFP = in.Ra, true, true
		case KindSTB, KindSTQ:
			p.SrcA, p.SrcAUsed = in.Rb, true
			p.SrcB, p.SrcBUsed = in.Ra, true
		case KindSTT:
			p.SrcA, p.SrcAUsed = in.Rb, true
			p.SrcB, p.SrcBUsed, p.SrcBFP = in.Ra, true, true
		case KindJMP:
			p.SrcA, p.SrcAUsed = in.Rb, true
			p.Dst, p.DstUsed = in.Ra, true
		}
	case FormatBranch:
		switch in.Kind {
		case KindBR, KindBSR:
			p.Dst, p.DstUsed = in.Ra, true
		case KindFBEQ, KindFBNE:
			p.SrcA, p.SrcAUsed, p.SrcAFP = in.Ra, true, true
		default:
			p.SrcA, p.SrcAUsed = in.Ra, true
		}
	case FormatOperate:
		p.SrcA, p.SrcAUsed = in.Ra, true
		if !in.IsLit {
			p.SrcB, p.SrcBUsed = in.Rb, true
		}
		p.Dst, p.DstUsed = in.Rc, true
	case FormatFP:
		p.SrcA, p.SrcAUsed, p.SrcAFP = in.Ra, true, true
		p.SrcB, p.SrcBUsed, p.SrcBFP = in.Rb, true, true
		p.Dst, p.DstUsed, p.DstFP = in.Rc, true, true
	case FormatPAL:
		// Syscalls read/write fixed registers; handled by the kernel.
	}
	return p
}
