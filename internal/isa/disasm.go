package isa

import (
	"fmt"
	"strings"
)

// fregName names a floating point register.
func fregName(r Reg) string { return fmt.Sprintf("f%d", r&31) }

// Disassemble renders the instruction in assembler syntax. pc, when
// non-zero, is used to resolve branch targets to absolute addresses.
func (in Inst) Disassemble(pc uint64) string {
	var b strings.Builder
	mn := in.Kind.String()
	switch in.Format {
	case FormatMemory:
		if in.Kind == KindJMP {
			hint := [...]string{"jmp", "jsr", "ret", "jcr"}[in.Hint&3]
			fmt.Fprintf(&b, "%s %s, (%s)", hint, in.Ra, in.Rb)
			break
		}
		ra := in.Ra.String()
		if in.Kind.IsFP() || in.Kind == KindSTT {
			ra = fregName(in.Ra)
		}
		fmt.Fprintf(&b, "%s %s, %d(%s)", mn, ra, in.Disp, in.Rb)
	case FormatBranch:
		target := ""
		if pc != 0 {
			target = fmt.Sprintf("0x%x", uint64(int64(pc)+4+int64(in.Disp)*4))
		} else {
			target = fmt.Sprintf(".%+d", in.Disp)
		}
		switch in.Kind {
		case KindFBEQ, KindFBNE:
			fmt.Fprintf(&b, "%s %s, %s", mn, fregName(in.Ra), target)
		default:
			fmt.Fprintf(&b, "%s %s, %s", mn, in.Ra, target)
		}
	case FormatOperate:
		if in.IsLit {
			fmt.Fprintf(&b, "%s %s, #%d, %s", mn, in.Ra, in.Lit, in.Rc)
		} else {
			fmt.Fprintf(&b, "%s %s, %s, %s", mn, in.Ra, in.Rb, in.Rc)
		}
	case FormatFP:
		fmt.Fprintf(&b, "%s %s, %s, %s", mn, fregName(in.Ra), fregName(in.Rb), fregName(in.Rc))
	case FormatPAL:
		switch in.Kind {
		case KindIllegal:
			fmt.Fprintf(&b, "call_pal 0x%x?", in.Pal)
		default:
			b.WriteString(mn)
		}
	default:
		fmt.Fprintf(&b, ".word 0x%08x", uint32(in.Raw))
	}
	return b.String()
}

// String implements fmt.Stringer without PC-relative target resolution.
func (in Inst) String() string { return in.Disassemble(0) }
