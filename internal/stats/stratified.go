package stats

// Stratified sample sizing and allocation for adaptive fault-injection
// campaigns. The campaign service partitions the fault population into
// strata (injection-window regions attributed to guest PCs) and spends
// its experiment budget where outcome uncertainty is highest: each
// stratum gets at least the Leveugle sample its own population demands,
// and marginal experiments go to the stratum whose outcome-proportion
// confidence interval is currently widest. A uniform sampler over the
// same population is the conformance referee — stratified estimates must
// converge to the same per-stratum rates.

import (
	"math"
	"sort"
)

// Stratum is one slice of the fault population with its accumulated
// outcome evidence: Pop injectable faults, of which N have been sampled
// and K showed the outcome of interest (e.g. crashed or SDC).
type Stratum struct {
	Pop int64 // fault population of the stratum (<= 0: infinite)
	N   int   // experiments sampled so far
	K   int   // outcome-of-interest count among the N
}

// P returns the stratum's observed outcome proportion (0 when empty).
func (s Stratum) P() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.K) / float64(s.N)
}

// CIWidth returns the full width (hi - lo) of the stratum's
// normal-approximation proportion confidence interval, clamped to [0,1]
// on both sides. An unsampled stratum has maximal uncertainty: width 1.
func (s Stratum) CIWidth(confidence float64) float64 {
	if s.N == 0 {
		return 1
	}
	lo, hi := Proportion{Successes: s.K, Total: s.N}.Interval(confidence)
	return hi - lo
}

// StratumSize computes the Leveugle sample size one stratum needs on its
// own: the uniform SampleSize formula applied to the stratum population
// with the conservative p = 0.5. Stratification changes where samples
// go, never how many a population of that size requires, so this is the
// exact per-stratum analogue of the paper's campaign sizing.
func StratumSize(pop int64, confidence, margin float64) int64 {
	return SampleSize(pop, confidence, margin, 0.5)
}

// StratifiedSizes computes the per-stratum Leveugle sample sizes for a
// partitioned population. Each stratum is sized independently at the
// same confidence and margin with conservative p = 0.5, so no stratum is
// ever under-sized relative to running the uniform formula on it alone —
// the property the stats test suite enforces.
func StratifiedSizes(pops []int64, confidence, margin float64) []int64 {
	out := make([]int64, len(pops))
	for i, p := range pops {
		out[i] = StratumSize(p, confidence, margin)
	}
	return out
}

// AllocateWidest distributes a batch of n experiments over strata by
// repeatedly granting one experiment to the stratum whose projected
// confidence interval is widest, assuming its observed proportion holds
// while the pending grants accumulate. Unsampled strata have width 1 and
// therefore drain first; after that the allocation equalizes CI widths —
// the "spend the budget where uncertainty is highest" loop of the
// adaptive sampler. Strata whose sampling has exhausted their finite
// population receive nothing. The returned slice sums to at most n.
func AllocateWidest(strata []Stratum, n int, confidence float64) []int {
	alloc := make([]int, len(strata))
	if len(strata) == 0 || n <= 0 {
		return alloc
	}
	z := ZFor(confidence)
	// width projects the stratum CI width after its pending allocation.
	width := func(i int) float64 {
		s := strata[i]
		total := s.N + alloc[i]
		if s.Pop > 0 && int64(total) >= s.Pop {
			return -1 // population exhausted: nothing left to learn
		}
		if total == 0 {
			return 1
		}
		p := s.P()
		se := math.Sqrt(p * (1 - p) / float64(total))
		w := 2 * z * se
		if w <= 0 {
			// Degenerate observed proportion (0 or 1): still shrinking
			// evidence is worth a trickle, ranked below any open interval.
			w = 1 / float64(total+1) * 1e-6
		}
		return w
	}
	for g := 0; g < n; g++ {
		best, bestW := -1, 0.0
		for i := range strata {
			if w := width(i); w > bestW {
				best, bestW = i, w
			}
		}
		if best < 0 {
			break // every stratum exhausted
		}
		alloc[best]++
	}
	return alloc
}

// AllocateProportional splits a batch of n experiments across strata in
// proportion to their populations — the uniform-sampling referee in
// stratified form. Rounding residue goes to the largest strata first so
// the result sums exactly to n (when the populations are non-empty).
func AllocateProportional(pops []int64, n int) []int {
	alloc := make([]int, len(pops))
	var total int64
	for _, p := range pops {
		if p > 0 {
			total += p
		}
	}
	if total == 0 || n <= 0 {
		return alloc
	}
	used := 0
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, 0, len(pops))
	for i, p := range pops {
		if p <= 0 {
			continue
		}
		exact := float64(n) * float64(p) / float64(total)
		alloc[i] = int(exact)
		used += alloc[i]
		rems = append(rems, rem{i, exact - float64(alloc[i])})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for _, r := range rems {
		if used >= n {
			break
		}
		alloc[r.i]++
		used++
	}
	return alloc
}

// AggregateInterval combines per-stratum proportions into the
// population-weighted stratified estimate and its confidence interval:
//
//	p = Σ W_h p_h,  se² = Σ W_h² p_h(1-p_h)/n_h
//
// with W_h the stratum's population share. Strata with no samples
// contribute their worst-case variance (p=0.5 over one virtual sample)
// so an unexplored stratum keeps the aggregate honest rather than
// silently narrowing it. Returns the point estimate and full interval
// width.
func AggregateInterval(strata []Stratum, confidence float64) (p, width float64) {
	var totalPop float64
	for _, s := range strata {
		if s.Pop > 0 {
			totalPop += float64(s.Pop)
		}
	}
	if totalPop == 0 {
		return 0, 0
	}
	var est, varsum float64
	for _, s := range strata {
		if s.Pop <= 0 {
			continue
		}
		w := float64(s.Pop) / totalPop
		ph, n := s.P(), float64(s.N)
		if s.N == 0 {
			ph, n = 0.5, 1
		}
		est += w * ph
		varsum += w * w * ph * (1 - ph) / n
	}
	z := ZFor(confidence)
	return est, 2 * z * math.Sqrt(varsum)
}
