package stats

import (
	"math/rand"
	"testing"
)

// TestStratifiedNeverUndersizes is the satellite property test: for any
// partition of any population, every stratum's stratified Leveugle size
// is at least what the uniform formula demands of that stratum's
// population alone, at every supported confidence/margin combination.
func TestStratifiedNeverUndersizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	confs := []float64{0.80, 0.90, 0.95, 0.99, 0.999}
	margins := []float64{0.2, 0.1, 0.05, 0.01}
	for trial := 0; trial < 200; trial++ {
		nStrata := 1 + rng.Intn(12)
		pops := make([]int64, nStrata)
		for i := range pops {
			pops[i] = 1 + rng.Int63n(5_000_000)
		}
		conf := confs[rng.Intn(len(confs))]
		margin := margins[rng.Intn(len(margins))]
		sizes := StratifiedSizes(pops, conf, margin)
		for i, pop := range pops {
			uniform := SampleSize(pop, conf, margin, 0.5)
			if sizes[i] < uniform {
				t.Fatalf("trial %d: stratum %d (pop %d, conf %.3f, margin %.3f) sized %d < uniform %d",
					trial, i, pop, conf, margin, sizes[i], uniform)
			}
		}
	}
}

// TestStratumSizeInfinitePopulation checks the infinite-population
// stratum degenerates to the unbounded Leveugle size.
func TestStratumSizeInfinitePopulation(t *testing.T) {
	if got, want := StratumSize(0, 0.99, 0.01), SampleSize(0, 0.99, 0.01, 0.5); got != want {
		t.Fatalf("infinite stratum: got %d want %d", got, want)
	}
}

// TestIntervalShrinksMonotonically is the satellite property test for
// confidence intervals: with the observed proportion held fixed, adding
// results can only shrink (never widen) the interval — both per stratum
// and in the stratified aggregate.
func TestIntervalShrinksMonotonically(t *testing.T) {
	// p values chosen so K = p*n is exact at every doubling: the width
	// comparison needs the observed proportion itself held fixed.
	for _, p := range []float64{0.25, 0.5, 0.75} {
		prev := 2.0
		for n := 8; n <= 1<<14; n *= 2 {
			s := Stratum{Pop: 1 << 20, N: n, K: int(p * float64(n))}
			w := s.CIWidth(0.95)
			if w > prev+1e-12 {
				t.Fatalf("p=%.2f: CI width widened from %g to %g at n=%d", p, prev, w, n)
			}
			prev = w
		}
	}

	// Aggregate: grow every stratum in lockstep, widths must not widen.
	strata := []Stratum{{Pop: 1000}, {Pop: 4000}, {Pop: 500}}
	ps := []float64{0.25, 0.5, 0.75}
	prev := 3.0
	for n := 4; n <= 256; n *= 2 {
		for i := range strata {
			strata[i].N = n
			strata[i].K = int(ps[i] * float64(n))
		}
		_, w := AggregateInterval(strata, 0.95)
		if w > prev+1e-12 {
			t.Fatalf("aggregate interval widened to %g at n=%d", w, n)
		}
		prev = w
	}
}

// TestAllocateWidestPrefersUncertainty: the widest-CI allocator must
// give an unexplored stratum its first samples before piling further
// onto a well-measured one, and must never allocate beyond a stratum's
// finite population.
func TestAllocateWidestPrefersUncertainty(t *testing.T) {
	strata := []Stratum{
		{Pop: 1000, N: 400, K: 200}, // well measured, maximal variance
		{Pop: 1000, N: 0, K: 0},     // unexplored
		{Pop: 3, N: 3, K: 1},        // exhausted
	}
	alloc := AllocateWidest(strata, 10, 0.95)
	if alloc[1] == 0 {
		t.Fatalf("unexplored stratum got nothing: %v", alloc)
	}
	if alloc[2] != 0 {
		t.Fatalf("exhausted stratum got %d new experiments", alloc[2])
	}
	if total := alloc[0] + alloc[1] + alloc[2]; total != 10 {
		t.Fatalf("allocated %d of 10", total)
	}

	// All strata exhausted: nothing to allocate.
	empty := AllocateWidest([]Stratum{{Pop: 2, N: 2}}, 5, 0.95)
	if empty[0] != 0 {
		t.Fatalf("allocated %d into exhausted population", empty[0])
	}
}

// TestAllocateWidestEqualizes: with two equal-population strata, one
// high-variance and one near-settled, the widest-CI allocator must give
// the high-variance stratum strictly more of the batch.
func TestAllocateWidestEqualizes(t *testing.T) {
	strata := []Stratum{
		{Pop: 1 << 30, N: 50, K: 25}, // p=0.5, widest
		{Pop: 1 << 30, N: 50, K: 1},  // p=0.02, narrow
	}
	alloc := AllocateWidest(strata, 100, 0.95)
	if alloc[0] <= alloc[1] {
		t.Fatalf("high-variance stratum got %d <= %d", alloc[0], alloc[1])
	}
}

// TestAllocateProportional checks exact-sum rounding and zero-population
// handling.
func TestAllocateProportional(t *testing.T) {
	alloc := AllocateProportional([]int64{3, 3, 3}, 10)
	if alloc[0]+alloc[1]+alloc[2] != 10 {
		t.Fatalf("rounded allocation %v does not sum to 10", alloc)
	}
	alloc = AllocateProportional([]int64{0, 5}, 7)
	if alloc[0] != 0 || alloc[1] != 7 {
		t.Fatalf("zero-population stratum mishandled: %v", alloc)
	}
	if got := AllocateProportional(nil, 5); len(got) != 0 {
		t.Fatalf("nil strata allocated %v", got)
	}
}

// TestAggregateIntervalUnsampledPenalty: an unsampled stratum must widen
// the aggregate, not narrow it.
func TestAggregateIntervalUnsampledPenalty(t *testing.T) {
	sampled := []Stratum{{Pop: 500, N: 100, K: 10}, {Pop: 500, N: 100, K: 12}}
	_, wAll := AggregateInterval(sampled, 0.95)
	half := []Stratum{{Pop: 500, N: 100, K: 10}, {Pop: 500}}
	_, wHalf := AggregateInterval(half, 0.95)
	if wHalf <= wAll {
		t.Fatalf("unexplored stratum narrowed the aggregate: %g <= %g", wHalf, wAll)
	}
}
