// Package stats provides the statistical machinery the paper's
// methodology relies on: the Leveugle et al. (DATE'09) sample-size
// formula used to size fault injection campaigns ("the number of
// executions ... has been calculated using the method presented in [7],
// setting 99% as a target confidence level and 1% as the error margin"),
// proportion and mean confidence intervals for reporting, and PSNR for
// the image-quality outcome thresholds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ZFor returns the two-sided normal critical value for a confidence
// level (e.g. 0.95 -> 1.96). The supported range is [0.80, 0.999] — the
// levels used in dependability papers; intermediate levels interpolate
// linearly between table entries, and out-of-range inputs clamp to the
// nearest endpoint (confidence <= 0.80 -> 1.2816, confidence >= 0.999 ->
// 3.2905). Clamping rather than extrapolating keeps sample sizes finite
// for degenerate requests like confidence = 1.0.
func ZFor(confidence float64) float64 {
	table := []struct{ c, z float64 }{
		{0.80, 1.2816}, {0.90, 1.6449}, {0.95, 1.9600},
		{0.98, 2.3263}, {0.99, 2.5758}, {0.995, 2.8070}, {0.999, 3.2905},
	}
	if confidence <= table[0].c {
		return table[0].z
	}
	if confidence >= table[len(table)-1].c {
		return table[len(table)-1].z
	}
	for i := 1; i < len(table); i++ {
		if confidence <= table[i].c {
			lo, hi := table[i-1], table[i]
			t := (confidence - lo.c) / (hi.c - lo.c)
			return lo.z + t*(hi.z-lo.z)
		}
	}
	return table[len(table)-1].z
}

// SampleSize computes the Leveugle statistical fault injection sample
// size: the number of experiments needed to estimate a proportion within
// margin e at the given confidence, drawing without replacement from a
// fault population of size N (pass N <= 0 for an infinite population):
//
//	n = N / (1 + e^2 * (N-1) / (t^2 * p * (1-p)))
//
// p is the assumed proportion (0.5 maximizes n and is the conservative
// choice the paper uses).
func SampleSize(populationN int64, confidence, margin, p float64) int64 {
	if margin <= 0 || p <= 0 || p >= 1 {
		return 0
	}
	t := ZFor(confidence)
	infinite := t * t * p * (1 - p) / (margin * margin)
	if populationN <= 0 {
		return int64(math.Ceil(infinite))
	}
	n := float64(populationN) / (1 + margin*margin*float64(populationN-1)/(t*t*p*(1-p)))
	return int64(math.Ceil(n))
}

// Proportion is a binomial outcome summary.
type Proportion struct {
	Successes int
	Total     int
}

// P returns the point estimate.
func (pr Proportion) P() float64 {
	if pr.Total == 0 {
		return 0
	}
	return float64(pr.Successes) / float64(pr.Total)
}

// Interval returns the normal-approximation confidence interval,
// clamped to [0, 1].
func (pr Proportion) Interval(confidence float64) (lo, hi float64) {
	if pr.Total == 0 {
		return 0, 0
	}
	p := pr.P()
	se := math.Sqrt(p * (1 - p) / float64(pr.Total))
	z := ZFor(confidence)
	lo = math.Max(0, p-z*se)
	hi = math.Min(1, p+z*se)
	return lo, hi
}

// Mean summarizes a sample of float64 observations.
type Mean struct {
	N    int
	Sum  float64
	Sum2 float64
}

// Add accumulates an observation.
func (m *Mean) Add(x float64) {
	m.N++
	m.Sum += x
	m.Sum2 += x * x
}

// Value returns the sample mean.
func (m *Mean) Value() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 {
	if m.N < 2 {
		return 0
	}
	mean := m.Value()
	v := (m.Sum2 - float64(m.N)*mean*mean) / float64(m.N-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Interval returns the normal-approximation confidence interval of the
// mean (the paper reports 95% CIs in Fig. 7).
func (m *Mean) Interval(confidence float64) (lo, hi float64) {
	if m.N == 0 {
		return 0, 0
	}
	se := m.StdDev() / math.Sqrt(float64(m.N))
	z := ZFor(confidence)
	return m.Value() - z*se, m.Value() + z*se
}

// PSNR computes the peak signal-to-noise ratio in dB between two
// equal-length 8-bit sample sequences (peak = 255). It returns +Inf for
// identical inputs. The paper's quality thresholds: DCT output vs input
// >= 30 dB is "correct"; deblocking output vs error-free output >= 80 dB
// is "correct".
func PSNR(a, b []byte) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: PSNR length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("stats: PSNR of empty images")
	}
	var mse float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// PSNR64 computes PSNR between two sequences of 64-bit integer samples
// clamped to [0, peak].
func PSNR64(a, b []int64, peak float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: PSNR length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("stats: PSNR of empty images")
	}
	var mse float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(peak*peak/mse), nil
}

// Histogram bins observations in [0,1) into n equal bins (used for the
// Fig. 6 injection-time sweeps).
type Histogram struct {
	Bins []int
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram { return &Histogram{Bins: make([]int, n)} }

// Add records an observation x in [0, 1]; out-of-range values clamp.
func (h *Histogram) Add(x float64) {
	i := int(x * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Quantile returns the q-quantile (0..1) of a sample (sorted copy).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
