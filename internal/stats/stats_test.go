package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZFor(t *testing.T) {
	cases := map[float64]float64{0.95: 1.96, 0.99: 2.5758, 0.90: 1.6449}
	for c, want := range cases {
		if got := ZFor(c); math.Abs(got-want) > 0.001 {
			t.Errorf("ZFor(%v) = %v want %v", c, got, want)
		}
	}
	if ZFor(0.97) <= ZFor(0.95) || ZFor(0.97) >= ZFor(0.98) {
		t.Error("interpolation not monotone")
	}
}

// TestZForClamps pins the documented [0.80, 0.999] range: requests past
// either end clamp to the endpoint z-value instead of extrapolating, so
// confidence = 1.0 (or a stray 99.9 passed as a percentage) still yields
// a finite sample size.
func TestZForClamps(t *testing.T) {
	for _, c := range []float64{0.999, 0.9995, 0.9999, 1.0, 99.9} {
		if got := ZFor(c); math.Abs(got-3.2905) > 1e-9 {
			t.Errorf("ZFor(%v) = %v, want clamp to 3.2905", c, got)
		}
	}
	for _, c := range []float64{0.80, 0.5, 0, -1} {
		if got := ZFor(c); math.Abs(got-1.2816) > 1e-9 {
			t.Errorf("ZFor(%v) = %v, want clamp to 1.2816", c, got)
		}
	}
	if n := SampleSize(0, 1.0, 0.01, 0.5); n <= 0 {
		t.Errorf("SampleSize at clamped confidence 1.0 = %d, want finite positive", n)
	}
}

// TestLeveugleSampleSize reproduces the paper's campaign sizing: "the
// number of executions of each application for every experiment varied
// from 2501 to 2504 ... setting 99% as a target confidence level and 1%
// as the error margin". With a finite per-application fault population
// in the low thousands, the formula lands exactly in that band.
func TestLeveugleSampleSize(t *testing.T) {
	// Infinite population at 99%/1% -> t^2 p(1-p)/e^2 ~= 16587.
	inf := SampleSize(0, 0.99, 0.01, 0.5)
	if inf < 16500 || inf > 16700 {
		t.Errorf("infinite-population size = %d", inf)
	}
	// A finite population reproducing the paper's 2501..2504 band.
	n := SampleSize(2950, 0.99, 0.01, 0.5)
	if n < 2400 || n > 2600 {
		t.Errorf("finite-population size = %d, want ~2500 (paper: 2501-2504)", n)
	}
	t.Logf("paper-style sizing: population 2950 -> %d experiments (paper: 2501-2504)", n)
}

func TestSampleSizeMonotonicity(t *testing.T) {
	f := func(nRaw uint32) bool {
		n := int64(nRaw%100000) + 2
		s := SampleSize(n, 0.99, 0.01, 0.5)
		sLooser := SampleSize(n, 0.95, 0.01, 0.5)
		sWider := SampleSize(n, 0.99, 0.05, 0.5)
		return s <= n && sLooser <= s && sWider <= s && s >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSizeDegenerate(t *testing.T) {
	if SampleSize(100, 0.99, 0, 0.5) != 0 {
		t.Error("zero margin should return 0")
	}
	if SampleSize(100, 0.99, 0.01, 0) != 0 {
		t.Error("p=0 should return 0")
	}
}

func TestProportionInterval(t *testing.T) {
	pr := Proportion{Successes: 50, Total: 100}
	lo, hi := pr.Interval(0.95)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] must bracket 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide: [%v,%v]", lo, hi)
	}
	// Tighter with more samples.
	big := Proportion{Successes: 5000, Total: 10000}
	blo, bhi := big.Interval(0.95)
	if bhi-blo >= hi-lo {
		t.Error("interval must shrink with sample size")
	}
	// Clamped at the edges.
	edge := Proportion{Successes: 0, Total: 10}
	elo, _ := edge.Interval(0.99)
	if elo < 0 {
		t.Error("interval must clamp at 0")
	}
}

func TestMeanInterval(t *testing.T) {
	var m Mean
	for _, x := range []float64{10, 12, 8, 11, 9, 10, 10, 10} {
		m.Add(x)
	}
	if math.Abs(m.Value()-10) > 0.01 {
		t.Errorf("mean = %v", m.Value())
	}
	lo, hi := m.Interval(0.95)
	if lo >= 10 || hi <= 10 {
		t.Errorf("interval [%v,%v] must bracket the mean", lo, hi)
	}
	if m.StdDev() <= 0 {
		t.Error("stddev must be positive for a spread sample")
	}
}

func TestMeanSingleObservation(t *testing.T) {
	var m Mean
	m.Add(5)
	if m.StdDev() != 0 {
		t.Error("single observation stddev must be 0")
	}
	lo, hi := m.Interval(0.95)
	if lo != 5 || hi != 5 {
		t.Errorf("degenerate interval [%v,%v]", lo, hi)
	}
}

func TestPSNRIdentical(t *testing.T) {
	img := []byte{1, 2, 3, 255, 0, 128}
	p, err := PSNR(img, img)
	if err != nil || !math.IsInf(p, 1) {
		t.Errorf("identical images: %v, %v", p, err)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := make([]byte, 100)
	b := make([]byte, 100)
	for i := range b {
		b[i] = 10 // MSE = 100 -> PSNR = 10*log10(65025/100) ~= 28.13
	}
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-28.13) > 0.01 {
		t.Errorf("PSNR = %v, want ~28.13", p)
	}
}

func TestPSNRThresholdOrdering(t *testing.T) {
	// Smaller corruption => higher PSNR.
	base := make([]byte, 1000)
	for i := range base {
		base[i] = byte(i % 251)
	}
	small := append([]byte(nil), base...)
	small[0] ^= 1
	large := append([]byte(nil), base...)
	for i := 0; i < 100; i++ {
		large[i] ^= 0x80
	}
	ps, _ := PSNR(base, small)
	pl, _ := PSNR(base, large)
	if ps <= pl {
		t.Errorf("PSNR ordering wrong: small=%v large=%v", ps, pl)
	}
	if ps < 70 {
		t.Errorf("single-LSB corruption should exceed 70 dB, got %v", ps)
	}
	if pl > 30 {
		t.Errorf("heavy corruption should be below 30 dB, got %v", pl)
	}
}

func TestPSNRErrors(t *testing.T) {
	if _, err := PSNR([]byte{1}, []byte{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := PSNR(nil, nil); err == nil {
		t.Error("empty images must error")
	}
}

func TestPSNR64(t *testing.T) {
	a := []int64{0, 100, 200}
	p, err := PSNR64(a, a, 255)
	if err != nil || !math.IsInf(p, 1) {
		t.Errorf("identical: %v %v", p, err)
	}
	b := []int64{1, 101, 201}
	p2, err := PSNR64(a, b, 255)
	if err != nil || p2 < 40 {
		t.Errorf("1-LSB: %v %v", p2, err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100)
	}
	for i, n := range h.Bins {
		if n != 10 {
			t.Errorf("bin %d = %d, want 10", i, n)
		}
	}
	h.Add(-1)
	h.Add(2)
	if h.Bins[0] != 11 || h.Bins[9] != 11 {
		t.Error("clamping failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}
