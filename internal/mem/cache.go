package mem

// This file models the timing side of the memory system: set-associative
// write-back caches with LRU replacement, chained into a hierarchy
// (L1I / L1D -> unified L2 -> DRAM). Data always lives in Memory; the
// caches only account for latency and hit/miss statistics, which is how
// gem5's atomic/timing "classic" memory system behaves.

// Level is anything that can service an access and report its latency in
// cycles.
type Level interface {
	// Access services a read (write=false) or write (write=true) of the
	// line containing addr and returns the total latency in cycles.
	Access(addr uint64, write bool) uint64
	// InvalidateAll drops all cached state (used on checkpoint restore).
	InvalidateAll()
}

// FixedLatency is a terminal memory level with a constant access latency,
// modelling DRAM.
type FixedLatency struct {
	Latency  uint64
	Accesses uint64
}

var _ Level = (*FixedLatency)(nil)

// Access implements Level.
func (f *FixedLatency) Access(addr uint64, write bool) uint64 {
	f.Accesses++
	return f.Latency
}

// InvalidateAll implements Level.
func (f *FixedLatency) InvalidateAll() {}

// CacheConfig describes the geometry and timing of one cache.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Assoc      int
	LineBytes  int
	HitLatency uint64
}

// CacheStats counts hit/miss/writeback events.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative write-back, write-allocate cache.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	numSets  int
	lineBits uint
	next     Level
	clock    uint64
	stats    CacheStats

	// MRU fast path: the last line that hit. Sequential fetch streams and
	// stack traffic hit the same line many times in a row; checking it
	// first skips the set scan. lastLine is the full line address the
	// entry was filled for (tag+set), so a match is conclusive.
	last     *cacheLine
	lastLine uint64
}

var _ Level = (*Cache)(nil)

// NewCache builds a cache in front of next. The configuration must be a
// power-of-two geometry; NewCache panics otherwise since configurations
// are static program data, not runtime input.
func NewCache(cfg CacheConfig, next Level) *Cache {
	if cfg.LineBytes <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic("mem: invalid cache config " + cfg.Name)
	}
	numSets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	if numSets <= 0 || numSets&(numSets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("mem: cache geometry must be a power of two: " + cfg.Name)
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	sets := make([][]cacheLine, numSets)
	for i := range sets {
		sets[i] = make([]cacheLine, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets, numSets: numSets, lineBits: lineBits, next: next}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the hit/miss counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Access implements Level.
func (c *Cache) Access(addr uint64, write bool) uint64 {
	lat, _ := c.AccessM(addr, write)
	return lat
}

// AccessM is Access plus a first-level hit/miss verdict, so callers
// (the CPU models feeding the profiler) can attribute misses to the
// requesting PC without re-deriving them from latency heuristics.
func (c *Cache) AccessM(addr uint64, write bool) (latency uint64, miss bool) {
	c.clock++
	lineAddr := addr >> c.lineBits
	if c.last != nil && c.lastLine == lineAddr && c.last.valid {
		c.stats.Hits++
		c.last.used = c.clock
		if write {
			c.last.dirty = true
		}
		return c.cfg.HitLatency, false
	}
	set := int(lineAddr) & (c.numSets - 1)
	tag := lineAddr >> 0
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.stats.Hits++
			lines[i].used = c.clock
			if write {
				lines[i].dirty = true
			}
			c.last, c.lastLine = &lines[i], lineAddr
			return c.cfg.HitLatency, false
		}
	}
	// Miss: fetch from the next level, allocate, evict LRU.
	c.stats.Misses++
	latency = c.cfg.HitLatency + c.next.Access(addr, false)
	victim := 0
	for i := 1; i < len(lines); i++ {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].used < lines[victim].used {
			victim = i
		}
	}
	if lines[victim].valid && lines[victim].dirty {
		c.stats.Writebacks++
		latency += c.next.Access(lines[victim].tag<<c.lineBits, true)
	}
	lines[victim] = cacheLine{tag: tag, valid: true, dirty: write, used: c.clock}
	// Point the MRU entry at the filled line: the next access is likely to
	// the same line, and if the victim was the previous MRU line this also
	// keeps the entry from matching a stale tag.
	c.last, c.lastLine = &lines[victim], lineAddr
	return latency, true
}

// InvalidateAll implements Level.
func (c *Cache) InvalidateAll() {
	c.last, c.lastLine = nil, 0
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = cacheLine{}
		}
	}
	c.next.InvalidateAll()
}

// Hierarchy is the standard split-L1 / unified-L2 configuration the paper
// uses for its validation study ("a L1 instruction cache and a L1 data
// cache and as a L2 cache we used a unified L2 cache").
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	DRAM *FixedLatency
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 CacheConfig
	DRAMLatency  uint64
}

// DefaultHierarchyConfig mirrors a small classic gem5 configuration.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:         CacheConfig{Name: "l1i", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, HitLatency: 1},
		L1D:         CacheConfig{Name: "l1d", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, HitLatency: 1},
		L2:          CacheConfig{Name: "l2", SizeBytes: 2 << 20, Assoc: 8, LineBytes: 64, HitLatency: 10},
		DRAMLatency: 100,
	}
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	dram := &FixedLatency{Latency: cfg.DRAMLatency}
	l2 := NewCache(cfg.L2, dram)
	return &Hierarchy{
		L1I:  NewCache(cfg.L1I, l2),
		L1D:  NewCache(cfg.L1D, l2),
		L2:   l2,
		DRAM: dram,
	}
}

// FetchLatency returns the latency of an instruction fetch at addr.
func (h *Hierarchy) FetchLatency(addr uint64) uint64 { return h.L1I.Access(addr, false) }

// FetchAccess is FetchLatency plus the L1I hit/miss verdict.
func (h *Hierarchy) FetchAccess(addr uint64) (uint64, bool) {
	return h.L1I.AccessM(addr, false)
}

// DataLatency returns the latency of a data access at addr.
func (h *Hierarchy) DataLatency(addr uint64, write bool) uint64 {
	return h.L1D.Access(addr, write)
}

// DataAccess is DataLatency plus the L1D hit/miss verdict.
func (h *Hierarchy) DataAccess(addr uint64, write bool) (uint64, bool) {
	return h.L1D.AccessM(addr, write)
}

// InvalidateAll drops all cached state.
func (h *Hierarchy) InvalidateAll() {
	h.L1I.InvalidateAll()
	h.L1D.InvalidateAll()
}
