package mem

import "testing"

// newTestMem maps one region and writes a recognizable pattern through
// the normal store paths, warming the data micro-TLB.
func newTestMem(t *testing.T) *Memory {
	t.Helper()
	m := New()
	m.Map(0x1000, 4*PageSize)
	for i := uint64(0); i < 4; i++ {
		if err := m.Write64(0x1000+i*PageSize, 0x1111*(i+1)); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}
	return m
}

func read64(t *testing.T, m *Memory, addr uint64) uint64 {
	t.Helper()
	v, err := m.Read64(addr)
	if err != nil {
		t.Fatalf("read 0x%x: %v", addr, err)
	}
	return v
}

// TestCowForkIsolationChildToTrunk: child writes after a fork must never
// become visible to the trunk or to sibling forks.
func TestCowForkIsolationChildToTrunk(t *testing.T) {
	trunk := newTestMem(t)
	snap := trunk.CowSnapshot()

	childA, childB := New(), New()
	childA.ForkFrom(snap)
	childB.ForkFrom(snap)

	if err := childA.Write64(0x1000, 0xdead); err != nil {
		t.Fatal(err)
	}
	if err := childA.StoreByte(0x1000+PageSize, 0xcc); err != nil {
		t.Fatal(err)
	}
	if got := read64(t, trunk, 0x1000); got != 0x1111 {
		t.Fatalf("child write leaked to trunk: got %#x want 0x1111", got)
	}
	if got := read64(t, childB, 0x1000); got != 0x1111 {
		t.Fatalf("child write leaked to sibling: got %#x want 0x1111", got)
	}
	if got := read64(t, childA, 0x1000); got != 0xdead {
		t.Fatalf("child lost its own write: got %#x", got)
	}
}

// TestCowForkIsolationTrunkToChild: trunk writes after the snapshot must
// never become visible to children forked from it — even when the trunk's
// micro-TLB was warm on the page at freeze time (the stale-writable-TLB
// hazard CowSnapshot exists to close).
func TestCowForkIsolationTrunkToChild(t *testing.T) {
	trunk := newTestMem(t)
	// Warm the data TLB on the page we'll overwrite post-freeze.
	read64(t, trunk, 0x1000)
	snap := trunk.CowSnapshot()

	// Trunk keeps running and dirties the page the snapshot froze.
	if err := trunk.Write64(0x1000, 0xbeef); err != nil {
		t.Fatal(err)
	}

	child := New()
	child.ForkFrom(snap)
	if got := read64(t, child, 0x1000); got != 0x1111 {
		t.Fatalf("trunk post-snapshot write leaked into child: got %#x want 0x1111", got)
	}
	if got := read64(t, trunk, 0x1000); got != 0xbeef {
		t.Fatalf("trunk lost its own post-snapshot write: got %#x", got)
	}
}

// TestCowTLBStalenessAfterFork: a fork must not read through translations
// cached before ForkFrom — the previous address space is gone wholesale.
func TestCowTLBStalenessAfterFork(t *testing.T) {
	a := newTestMem(t)
	if err := a.Write64(0x1000, 0xaaaa); err != nil {
		t.Fatal(err)
	}
	snapA := a.CowSnapshot()

	b := New()
	b.Map(0x1000, 4*PageSize)
	if err := b.Write64(0x1000, 0xbbbb); err != nil {
		t.Fatal(err)
	}
	// Warm both of b's ports on the page.
	read64(t, b, 0x1000)
	if _, err := b.Read32(0x1000); err != nil {
		t.Fatal(err)
	}

	b.ForkFrom(snapA)
	if got := read64(t, b, 0x1000); got != 0xaaaa {
		t.Fatalf("stale data-TLB read after fork: got %#x want 0xaaaa", got)
	}
	if v, err := b.Read32(0x1000); err != nil || v != 0xaaaa {
		t.Fatalf("stale fetch-TLB read after fork: got %#x, %v", v, err)
	}
	// And writes after the fork must not bleed back into the snapshot.
	if err := b.Write64(0x1000, 0xcccc); err != nil {
		t.Fatal(err)
	}
	c := New()
	c.ForkFrom(snapA)
	if got := read64(t, c, 0x1000); got != 0xaaaa {
		t.Fatalf("post-fork write corrupted the snapshot: got %#x", got)
	}
}

// TestCowTextGenAcrossForks: forking must bump the text generation so
// predecoded-instruction caches keyed on the old contents are dropped,
// and text-region stores in a child must keep bumping its own generation
// without touching siblings.
func TestCowTextGenAcrossForks(t *testing.T) {
	trunk := newTestMem(t)
	trunk.SetTextRegion(0x1000, 0x1000+PageSize)
	snap := trunk.CowSnapshot()

	child := New()
	gen0 := child.TextGen()
	child.ForkFrom(snap)
	if child.TextGen() == gen0 {
		t.Fatal("ForkFrom did not bump TextGen")
	}
	if lo, hi := child.TextRegion(); lo != 0x1000 || hi != 0x1000+PageSize {
		t.Fatalf("fork lost text region: [%#x, %#x)", lo, hi)
	}
	gen1 := child.TextGen()
	if err := child.StoreByte(0x1000, 0x90); err != nil {
		t.Fatal(err)
	}
	if child.TextGen() == gen1 {
		t.Fatal("text-region store in child did not bump TextGen")
	}
	sibling := New()
	sibling.ForkFrom(snap)
	sGen := sibling.TextGen()
	if err := child.StoreByte(0x1004, 0x90); err != nil {
		t.Fatal(err)
	}
	if sibling.TextGen() != sGen {
		t.Fatal("child text store bumped sibling TextGen")
	}
}

// TestCowSnapshotChainSharing: successive snapshots must share clean
// pages and account only the pages dirtied since the previous freeze.
func TestCowSnapshotChainSharing(t *testing.T) {
	trunk := newTestMem(t)
	s1 := trunk.CowSnapshot()
	if s1.DirtyPages() != 4 {
		t.Fatalf("first freeze dirty=%d want 4", s1.DirtyPages())
	}
	// Touch exactly one page, freeze again.
	if err := trunk.Write64(0x1000, 0x7777); err != nil {
		t.Fatal(err)
	}
	if trunk.DirtyPages() != 1 {
		t.Fatalf("trunk dirty=%d want 1", trunk.DirtyPages())
	}
	s2 := trunk.CowSnapshot()
	if s2.DirtyPages() != 1 {
		t.Fatalf("second freeze dirty=%d want 1", s2.DirtyPages())
	}
	if s2.Pages() != s1.Pages() {
		t.Fatalf("page counts diverged: s1=%d s2=%d", s1.Pages(), s2.Pages())
	}
	if s2.ApproxBytes() >= s1.ApproxBytes() {
		t.Fatalf("incremental snapshot not cheaper: s1=%d s2=%d bytes",
			s1.ApproxBytes(), s2.ApproxBytes())
	}
	// A no-write freeze shares the base table outright and costs ~nothing.
	s3 := trunk.CowSnapshot()
	if s3.DirtyPages() != 0 {
		t.Fatalf("no-write freeze dirty=%d want 0", s3.DirtyPages())
	}
	// The chain must still read correctly at every layer.
	a, b := New(), New()
	a.ForkFrom(s1)
	b.ForkFrom(s2)
	if got := read64(t, a, 0x1000); got != 0x1111 {
		t.Fatalf("s1 fork reads %#x want 0x1111", got)
	}
	if got := read64(t, b, 0x1000); got != 0x7777 {
		t.Fatalf("s2 fork reads %#x want 0x7777", got)
	}
}

// TestCowSnapshotFlattening: a deep Snapshot taken through a COW stack
// must equal one taken with no COW layer at all, and CowFromSnapshot must
// round-trip it.
func TestCowSnapshotFlattening(t *testing.T) {
	trunk := newTestMem(t)
	snap := trunk.CowSnapshot()
	if err := trunk.Write64(0x1000+2*PageSize, 0xfeed); err != nil {
		t.Fatal(err)
	}
	deep := trunk.Snapshot()

	flat := New()
	flat.Map(0x1000, 4*PageSize)
	for i := uint64(0); i < 4; i++ {
		if err := flat.Write64(0x1000+i*PageSize, 0x1111*(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := flat.Write64(0x1000+2*PageSize, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if _, total := DiffSnapshots(deep, flat.Snapshot(), 4); total != 0 {
		t.Fatalf("COW-flattened snapshot differs from flat memory: %d bytes", total)
	}

	// Round-trip through CowFromSnapshot: a fork of the wrapped deep copy
	// must read identically.
	tw := New()
	tw.ForkFrom(CowFromSnapshot(deep, 0, 0))
	if got := read64(t, tw, 0x1000+2*PageSize); got != 0xfeed {
		t.Fatalf("CowFromSnapshot fork reads %#x want 0xfeed", got)
	}
	_ = snap
}

// TestDiffPrivate: the overlay-only differ must agree with full snapshot
// diffing for same-base forks and refuse cross-base comparisons.
func TestDiffPrivate(t *testing.T) {
	trunk := newTestMem(t)
	snap := trunk.CowSnapshot()
	a, b := New(), New()
	a.ForkFrom(snap)
	b.ForkFrom(snap)
	if n, ok := DiffPrivate(a, b); !ok || n != 0 {
		t.Fatalf("identical forks: total=%d ok=%v", n, ok)
	}
	if err := a.Write64(0x1000, 0x1112); err != nil { // differs in 1 byte
		t.Fatal(err)
	}
	n, ok := DiffPrivate(a, b)
	if !ok || n != 1 {
		t.Fatalf("one-byte divergence: total=%d ok=%v", n, ok)
	}
	// b makes the same write: converged again.
	if err := b.Write64(0x1000, 0x1112); err != nil {
		t.Fatal(err)
	}
	if n, ok := DiffPrivate(a, b); !ok || n != 0 {
		t.Fatalf("converged forks: total=%d ok=%v", n, ok)
	}
	// Cross-base comparisons must be refused.
	other := newTestMem(t)
	o := New()
	o.ForkFrom(other.CowSnapshot())
	if _, ok := DiffPrivate(a, o); ok {
		t.Fatal("DiffPrivate accepted memories with different bases")
	}
	if _, ok := DiffPrivate(New(), New()); ok {
		t.Fatal("DiffPrivate accepted memories with no base")
	}
}

// TestRestoreDropsCowBase: a deep Restore must sever the memory from any
// frozen base so later writes cannot be confused with COW faults.
func TestRestoreDropsCowBase(t *testing.T) {
	trunk := newTestMem(t)
	snap := trunk.CowSnapshot()
	deep := trunk.Snapshot()

	child := New()
	child.ForkFrom(snap)
	if child.BaseID() == 0 {
		t.Fatal("fork did not record base identity")
	}
	child.Restore(deep)
	if child.BaseID() != 0 {
		t.Fatal("Restore left the frozen base attached")
	}
	if got := read64(t, child, 0x1000); got != 0x1111 {
		t.Fatalf("restored child reads %#x want 0x1111", got)
	}
}

// TestConvergedWith pins the exact image-equality check the fork server's
// prune rule rests on: a child that drifted from the trunk's lineage and
// then wrote the golden values back must compare equal, and every kind of
// genuine difference — changed byte, extra nonzero page, region layout —
// must not.
func TestConvergedWith(t *testing.T) {
	trunk := newTestMem(t)
	base := trunk.CowSnapshot()

	// Trunk advances and freezes the anchor the child will be diffed
	// against.
	if err := trunk.Write64(0x1000, 0x2222); err != nil {
		t.Fatal(err)
	}
	anchor := trunk.CowSnapshot()

	child := New()
	child.ForkFrom(base)
	if child.ConvergedWith(anchor) {
		t.Fatal("child at the base snapshot reported converged with a later anchor")
	}
	// Child performs the same write the trunk did — now the images match,
	// even though the child's page is private while the anchor's is frozen.
	if err := child.Write64(0x1000, 0x2222); err != nil {
		t.Fatal(err)
	}
	if !child.ConvergedWith(anchor) {
		t.Fatal("bit-identical images reported diverged")
	}
	// A transient write that is reverted still converges (values, not
	// dirty sets, decide equality)...
	if err := child.Write64(0x2000, 0xdead); err != nil {
		t.Fatal(err)
	}
	if child.ConvergedWith(anchor) {
		t.Fatal("differing byte reported converged")
	}
	if err := child.Write64(0x2000, 0x2222); err != nil { // the seeded value
		t.Fatal(err)
	}
	if !child.ConvergedWith(anchor) {
		t.Fatal("reverted write reported diverged")
	}
	// ...including a dirtied page the anchor never allocated: all-zero
	// content equals unwritten memory.
	if err := child.Write64(0x1000+3*PageSize+512, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if child.ConvergedWith(anchor) {
		t.Fatal("nonzero page outside the anchor reported converged")
	}
	if err := child.Write64(0x1000+3*PageSize+512, 0); err != nil {
		t.Fatal(err)
	}
	if !child.ConvergedWith(anchor) {
		t.Fatal("zeroed extra page reported diverged")
	}
	// A different mapped-region layout can never converge.
	child.Map(0x100000, PageSize)
	if child.ConvergedWith(anchor) {
		t.Fatal("differing region layout reported converged")
	}
}
