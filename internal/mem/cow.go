package mem

// This file implements copy-on-write, page-granular memory snapshots for
// the campaign fork server (GemFI §III.D checkpointing, ZOFI's fork
// model). Freezing a memory turns its private pages into an immutable
// base layer shared by reference; the trunk and every fork then write
// into fresh private overlays, so forking a simulator costs O(dirty
// pages) rather than O(memory). Frozen page maps are never mutated after
// creation, which makes them safe to share across campaign worker
// goroutines without locks.

import (
	"bytes"
	"sync/atomic"
)

// cowIDs hands out snapshot identities; Memory.baseID records which
// frozen base a memory is layered on so DiffPrivate can prove two forks
// share page content outside their overlays.
var cowIDs atomic.Uint64

// CowSnapshot is a frozen, shareable memory image. The page map and every
// page in it are immutable; any number of memories may fork from it
// concurrently. Snapshots taken later in the same run share clean pages
// with earlier ones, so a chain of snapshots costs the sum of pages
// dirtied between them, not a full copy each.
type CowSnapshot struct {
	id             uint64
	pages          map[uint64][]byte // frozen: never written after creation
	regions        []region
	textLo, textHi uint64
	dirty          int // private pages folded into the base by this freeze
}

// Pages returns the number of pages reachable from the snapshot.
func (s *CowSnapshot) Pages() int { return len(s.pages) }

// DirtyPages returns how many pages had been written since the previous
// freeze — the incremental cost of taking this snapshot.
func (s *CowSnapshot) DirtyPages() int { return s.dirty }

// ApproxBytes estimates the heap uniquely attributable to this snapshot:
// the pages dirtied since the previous freeze plus its share of the
// page-pointer table. Clean pages are shared with older snapshots and
// cost nothing here.
func (s *CowSnapshot) ApproxBytes() uint64 {
	const ptrEntry = 40 // map bucket share: key + slice header
	return uint64(s.dirty)*PageSize + uint64(len(s.pages))*ptrEntry
}

// CowSnapshot freezes the memory's current contents into a shareable
// snapshot. The private overlay is folded into a new frozen base (by
// pointer, no page copies), the memory continues with an empty overlay
// layered on that base, and both per-port micro-TLBs are invalidated —
// a cached writable page is frozen now, and writing through it would
// corrupt every fork taken from the snapshot.
func (m *Memory) CowSnapshot() *CowSnapshot {
	dirty := len(m.pages)
	var frozen map[uint64][]byte
	switch {
	case m.base == nil:
		frozen = make(map[uint64][]byte, dirty)
		for b, p := range m.pages {
			frozen[b] = p
		}
	case dirty == 0:
		// Nothing written since the last freeze: the previous base IS the
		// current contents; share its table outright.
		frozen = m.base
	default:
		frozen = make(map[uint64][]byte, len(m.base)+dirty)
		for b, p := range m.base {
			frozen[b] = p
		}
		for b, p := range m.pages {
			frozen[b] = p
		}
	}
	s := &CowSnapshot{
		id:      cowIDs.Add(1),
		pages:   frozen,
		regions: append([]region(nil), m.regions...),
		textLo:  m.textLo,
		textHi:  m.textHi,
		dirty:   dirty,
	}
	m.base = frozen
	m.baseID = s.id
	m.pages = make(map[uint64][]byte)
	m.fetch, m.data = tlb{}, tlb{}
	return s
}

// ForkFrom points the memory at a snapshot's frozen pages with an empty
// private overlay — the O(dirty pages) half of forking a simulator. Both
// micro-TLBs are invalidated and the text generation bumped: the previous
// contents are gone wholesale, so no cached translation or predecoded
// instruction may survive.
func (m *Memory) ForkFrom(s *CowSnapshot) {
	m.base = s.pages
	m.baseID = s.id
	m.pages = make(map[uint64][]byte)
	m.regions = append([]region(nil), s.regions...)
	m.textLo, m.textHi = s.textLo, s.textHi
	m.fetch, m.data = tlb{}, tlb{}
	m.textGen++
}

// CowFromSnapshot wraps a deep Snapshot as a fork point, so code paths
// exercised with COW snapshots can be replayed bit-for-bit from a plain
// deep copy (the conformance suite's "deep twin"). The snapshot's pages
// are adopted by reference and must not be mutated afterwards.
func CowFromSnapshot(s Snapshot, textLo, textHi uint64) *CowSnapshot {
	pages := make(map[uint64][]byte, len(s.Pages))
	for b, p := range s.Pages {
		pages[b] = p
	}
	return &CowSnapshot{
		id:      cowIDs.Add(1),
		pages:   pages,
		regions: append([]region(nil), s.Regions...),
		textLo:  textLo,
		textHi:  textHi,
		dirty:   len(s.Pages),
	}
}

// DirtyPages returns the number of private pages written since the last
// freeze, restore, or creation — the memory's current fork cost.
func (m *Memory) DirtyPages() int { return len(m.pages) }

// allZero reports whether every byte of a page is zero — the value an
// allocated-on-one-side-only page must hold for the two images to match,
// since unwritten mapped memory reads as zeros.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// ConvergedWith reports whether the memory's full image is bit-identical
// to a frozen snapshot's. Pages shared by pointer compare in O(1), so for
// a fork whose lineage passed through the snapshot's base the check costs
// a map sweep plus byte-compares of the few genuinely private pages. The
// mapped-region layout must match too — image equality is meaningless
// across different address spaces.
func (m *Memory) ConvergedWith(s *CowSnapshot) bool {
	if len(m.regions) != len(s.regions) {
		return false
	}
	for i, r := range m.regions {
		if r != s.regions[i] {
			return false
		}
	}
	for addr, sp := range s.pages {
		mp, ok := m.pages[addr]
		if !ok {
			mp, ok = m.base[addr]
		}
		if !ok {
			if !allZero(sp) {
				return false
			}
			continue
		}
		if &mp[0] == &sp[0] {
			continue
		}
		if !bytes.Equal(mp, sp) {
			return false
		}
	}
	for addr, mp := range m.pages {
		if _, ok := s.pages[addr]; !ok && !allZero(mp) {
			return false
		}
	}
	for addr, mp := range m.base {
		if _, ok := s.pages[addr]; ok {
			continue
		}
		if _, ok := m.pages[addr]; ok {
			continue
		}
		if !allZero(mp) {
			return false
		}
	}
	return true
}

// BaseID identifies the frozen base the memory is layered on (0 when it
// has none).
func (m *Memory) BaseID() uint64 { return m.baseID }

// DiffPrivate counts byte differences between two memories forked from
// the same frozen base by walking only their private overlays — pages
// outside both overlays are shared by construction and cannot differ.
// ok=false when the memories do not share a base, in which case the
// caller must fall back to full Snapshot diffing.
func DiffPrivate(a, b *Memory) (total int, ok bool) {
	if a.baseID == 0 || a.baseID != b.baseID {
		return 0, false
	}
	seen := make(map[uint64]struct{}, len(a.pages)+len(b.pages))
	for pb := range a.pages {
		seen[pb] = struct{}{}
	}
	for pb := range b.pages {
		seen[pb] = struct{}{}
	}
	for pb := range seen {
		pa, aok := a.pages[pb]
		if !aok {
			if bp, k := a.base[pb]; k {
				pa = bp
			} else {
				pa = zeroPage[:]
			}
		}
		pb2, bok := b.pages[pb]
		if !bok {
			if bp, k := b.base[pb]; k {
				pb2 = bp
			} else {
				pb2 = zeroPage[:]
			}
		}
		if bytes.Equal(pa, pb2) {
			continue
		}
		for i := 0; i < PageSize; i++ {
			if pa[i] != pb2[i] {
				total++
			}
		}
	}
	return total, true
}
