package mem

// Full-image hashing for the fork server's cross-experiment result
// memoization: two forked children whose post-resolve machine states hash
// equal will execute identical suffixes, so the second can adopt the
// first's verdict without replay. The hash must therefore follow
// ConvergedWith's equality semantics exactly — an absent page and an
// all-zero page are the same image — while staying cheap per experiment:
// frozen COW pages are immutable, so their hashes are computed once and
// cached by page identity, and only the child's private overlay is
// hashed fresh.

import "sync"

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// pageFNV hashes one page with FNV-1a, returning (0, true) for all-zero
// pages so they fold into the image hash identically to absent pages.
func pageFNV(p []byte) (h uint64, zero bool) {
	h = fnvOffset
	zero = true
	for _, b := range p {
		if b != 0 {
			zero = false
		}
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h, zero
}

// mix64 finalizes a 64-bit value (splitmix64's output permutation) so
// structured page addresses and similar page hashes spread over the full
// word before the order-independent sum combines them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PageHashCache memoizes hashes of frozen COW pages by page identity
// (the address of the first byte — frozen pages are never mutated, so
// identity implies content). Safe for concurrent use by campaign
// workers sharing one fork server.
type PageHashCache struct {
	mu sync.Mutex
	m  map[*byte]pageHashEntry
}

type pageHashEntry struct {
	h    uint64
	zero bool
}

// NewPageHashCache returns an empty cache.
func NewPageHashCache() *PageHashCache {
	return &PageHashCache{m: make(map[*byte]pageHashEntry)}
}

// frozen returns the cached hash of a frozen page, computing it on first
// sight.
func (c *PageHashCache) frozen(p []byte) (uint64, bool) {
	if len(p) == 0 {
		return 0, true
	}
	key := &p[0]
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		e.h, e.zero = pageFNV(p)
		c.mu.Lock()
		c.m[key] = e
		c.mu.Unlock()
	}
	return e.h, e.zero
}

// Entries returns the number of distinct frozen pages hashed so far.
func (c *PageHashCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// ImageHash digests the memory's full logical image: the mapped-region
// layout plus every non-zero page, combined order-independently so map
// iteration order cannot leak in. Two memories with ConvergedWith-equal
// images produce the same hash regardless of how their pages are split
// between private overlay and frozen base. Frozen base pages hash
// through the cache (cache may be nil: everything is hashed fresh).
func (m *Memory) ImageHash(cache *PageHashCache) uint64 {
	h := uint64(fnvOffset)
	for _, r := range m.regions {
		h = (h ^ r.Lo) * fnvPrime
		h = (h ^ r.Hi) * fnvPrime
	}
	var sum uint64
	add := func(addr, ph uint64) {
		sum += mix64(addr ^ mix64(ph))
	}
	for addr, p := range m.pages {
		if ph, zero := pageFNV(p); !zero {
			add(addr, ph)
		}
	}
	for addr, p := range m.base {
		if _, shadowed := m.pages[addr]; shadowed {
			continue
		}
		var ph uint64
		var zero bool
		if cache != nil {
			ph, zero = cache.frozen(p)
		} else {
			ph, zero = pageFNV(p)
		}
		if !zero {
			add(addr, ph)
		}
	}
	return mix64(h ^ sum)
}
