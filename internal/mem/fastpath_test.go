package mem

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// referenceMap is the obvious interval-merge implementation the in-place
// Map insertion must agree with.
func referenceMap(rs [][2]uint64, lo, hi uint64) [][2]uint64 {
	rs = append(rs, [2]uint64{lo, hi})
	sort.Slice(rs, func(i, j int) bool { return rs[i][0] < rs[j][0] })
	out := rs[:1]
	for _, r := range rs[1:] {
		if r[0] <= out[len(out)-1][1] {
			if r[1] > out[len(out)-1][1] {
				out[len(out)-1][1] = r[1]
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

func TestMapInsertInPlaceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		m := New()
		var ref [][2]uint64
		for i := 0; i < 30; i++ {
			base := uint64(rng.Intn(64)) * 0x100
			size := uint64(1+rng.Intn(8)) * 0x100
			m.Map(base, size)
			ref = referenceMap(ref, base, base+size)
			got := m.Regions()
			if len(got) != len(ref) {
				t.Fatalf("trial %d step %d: regions %v, want %v", trial, i, got, ref)
			}
			for j := range got {
				if got[j] != ref[j] {
					t.Fatalf("trial %d step %d: regions %v, want %v", trial, i, got, ref)
				}
			}
		}
	}
}

func TestTLBServesFreshDataAfterRestore(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	if err := m.Write64(0x40, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Write64(0x40, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	// Both writes went through the data-port TLB; Restore replaces the
	// page backing store and must drop the cached pointer.
	m.Restore(snap)
	got, err := m.Read64(0x40)
	if err != nil || got != 0xAAAA {
		t.Fatalf("after restore: got %#x err %v, want 0xAAAA", got, err)
	}
}

func TestTLBRespectsRegionBounds(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x100) // a region much smaller than a page
	if err := m.Write64(0x10F8, 1); err != nil {
		t.Fatal(err) // fills the data TLB with this page
	}
	// Same page, but past the end of the mapped region: must still fault.
	if err := m.Write64(0x1100, 2); err == nil {
		t.Fatal("write past region end on a TLB-cached page must fault")
	}
	if _, err := m.Read64(0x10FC); err == nil {
		t.Fatal("read straddling region end must fault")
	}
}

func TestTextGenTracksStores(t *testing.T) {
	m := New()
	m.Map(0, 4*PageSize)
	m.SetTextRegion(0x1000, 0x2000)
	g0 := m.TextGen()

	if err := m.Write64(0x3000, 1); err != nil { // outside text
		t.Fatal(err)
	}
	if m.TextGen() != g0 {
		t.Fatal("store outside text region must not bump TextGen")
	}
	if err := m.Write64(0x1010, 1); err != nil { // inside text
		t.Fatal(err)
	}
	if m.TextGen() == g0 {
		t.Fatal("store inside text region must bump TextGen")
	}

	g1 := m.TextGen()
	if err := m.StoreByte(0x0FFF, 1); err != nil { // last byte before text
		t.Fatal(err)
	}
	if m.TextGen() != g1 {
		t.Fatal("byte store just below text must not bump TextGen")
	}
	if err := m.Write64(0x0FFC, 1); err != nil { // straddles the boundary
		t.Fatal(err)
	}
	if m.TextGen() == g1 {
		t.Fatal("store straddling text start must bump TextGen")
	}

	g2 := m.TextGen()
	if err := m.StoreBytes(0x1800, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if m.TextGen() == g2 {
		t.Fatal("bulk store into text must bump TextGen")
	}

	g3 := m.TextGen()
	m.Restore(m.Snapshot())
	if m.TextGen() == g3 {
		t.Fatal("restore must bump TextGen (page contents replaced)")
	}
}

func TestBulkStoreLoadRoundTrip(t *testing.T) {
	m := New()
	m.Map(0x800, 3*PageSize)
	data := make([]byte, 2*PageSize+77) // spans several pages, odd length
	rng := rand.New(rand.NewSource(5))
	rng.Read(data)
	addr := uint64(0x800 + 13) // misaligned start
	if err := m.StoreBytes(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadBytes(addr, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("bulk round trip mismatch")
	}
	// Per-byte reads must observe the same contents as the bulk path.
	for _, off := range []int{0, 1, PageSize - 14, PageSize, len(data) - 1} {
		b, err := m.LoadByte(addr + uint64(off))
		if err != nil || b != data[off] {
			t.Fatalf("byte %d: got %#x err %v, want %#x", off, b, err, data[off])
		}
	}
}

func TestStoreBytesPartialWriteSemantics(t *testing.T) {
	m := New()
	m.Map(0, 0x10) // only 16 bytes mapped
	err := m.StoreBytes(0x8, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err == nil {
		t.Fatal("store running off the mapping must fault")
	}
	// The mapped prefix was written before the fault (byte-loop fallback).
	for i := 0; i < 8; i++ {
		b, err := m.LoadByte(0x8 + uint64(i))
		if err != nil || b != byte(i+1) {
			t.Fatalf("prefix byte %d: got %d err %v", i, b, err)
		}
	}
}

func TestCacheMRUFastPathStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Repeated accesses to one line: 1 miss then hits, identical to the
	// pre-fast-path accounting.
	for i := 0; i < 10; i++ {
		h.L1D.Access(0x100, false)
	}
	s := h.L1D.Stats()
	if s.Misses != 1 || s.Hits != 9 {
		t.Fatalf("MRU path stats: %+v", s)
	}
	// Evicting the MRU line (same set, different tags beyond assoc) must
	// not let the stale pointer report a bogus hit.
	cfg := CacheConfig{Name: "tiny", SizeBytes: 128, Assoc: 2, LineBytes: 64, HitLatency: 1}
	c := NewCache(cfg, &FixedLatency{Latency: 10})
	c.Access(0x0, false)   // set 0
	c.Access(0x80, false)  // set 0, second way
	c.Access(0x100, false) // set 0, evicts LRU (0x0); MRU now 0x100's line
	if _, miss := c.AccessM(0x0, false); !miss {
		t.Fatal("access to evicted line must miss")
	}
	c.InvalidateAll()
	if _, miss := c.AccessM(0x100, false); !miss {
		t.Fatal("access after InvalidateAll must miss")
	}
}

// BenchmarkMapManyRegions measures Map with a large interleaved region
// set — the in-place insertion versus the previous append-and-resort.
func BenchmarkMapManyRegions(b *testing.B) {
	const n = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New()
		// Interleave two strides so insertions land in the middle of the
		// sorted list rather than always appending at the end.
		for j := 0; j < n; j++ {
			m.Map(uint64(j)*0x4000, 0x1000)
			m.Map(uint64(n-1-j)*0x4000+0x2000, 0x1000)
		}
	}
}
