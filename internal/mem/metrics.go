package mem

import "repro/internal/obs"

// RegisterMetrics exposes one cache's hit/miss/writeback counters under
// "mem.<name>." as pull-collectors: the access path keeps its plain
// CacheStats fields and the registry reads them at dump time.
func (c *Cache) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	prefix := "mem." + c.cfg.Name + "."
	r.RegisterFunc(prefix+"hits", func() float64 { return float64(c.stats.Hits) })
	r.RegisterFunc(prefix+"misses", func() float64 { return float64(c.stats.Misses) })
	r.RegisterFunc(prefix+"writebacks", func() float64 { return float64(c.stats.Writebacks) })
	r.RegisterFunc(prefix+"accesses", func() float64 { return float64(c.stats.Hits + c.stats.Misses) })
}

// RegisterMetrics exposes the whole hierarchy (L1I, L1D, L2, DRAM).
func (h *Hierarchy) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	h.L1I.RegisterMetrics(r)
	h.L1D.RegisterMetrics(r)
	h.L2.RegisterMetrics(r)
	r.RegisterFunc("mem.dram.accesses", func() float64 { return float64(h.DRAM.Accesses) })
}
