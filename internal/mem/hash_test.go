package mem

import "testing"

// TestImageHashMatchesConvergedSemantics: images that ConvergedWith
// would call equal must hash equal — across private/frozen page splits,
// zero-page materialization, and fork lineage.
func TestImageHashMatchesConvergedSemantics(t *testing.T) {
	build := func() *Memory {
		m := New()
		m.Map(0x1000, 3*PageSize)
		if err := m.Write64(0x1008, 0xdeadbeef); err != nil {
			t.Fatal(err)
		}
		if err := m.Write64(0x1000+PageSize, 42); err != nil {
			t.Fatal(err)
		}
		return m
	}

	a, b := build(), build()
	cache := NewPageHashCache()
	if a.ImageHash(cache) != b.ImageHash(nil) {
		t.Fatal("identical images hash differently")
	}

	// Materializing an all-zero page must not change the hash (absent ==
	// zero, matching ConvergedWith).
	if err := b.Write64(0x1000+2*PageSize, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.Write64(0x1000+2*PageSize, 0); err != nil {
		t.Fatal(err)
	}
	if a.ImageHash(cache) != b.ImageHash(cache) {
		t.Fatal("explicit zero page changed the hash")
	}

	// Fork lineage: snapshot a, fork a sibling, write the same value into
	// both — the private-overlay copy must hash like the original.
	snap := a.CowSnapshot()
	c := New()
	c.ForkFrom(snap)
	if err := a.Write64(0x1010, 99); err != nil {
		t.Fatal(err)
	}
	if err := c.Write64(0x1010, 99); err != nil {
		t.Fatal(err)
	}
	if a.ImageHash(cache) != c.ImageHash(cache) {
		t.Fatal("fork with identical writes hashes differently from trunk")
	}

	// And a genuine divergence must show.
	if err := c.Write64(0x1018, 1); err != nil {
		t.Fatal(err)
	}
	if a.ImageHash(cache) == c.ImageHash(cache) {
		t.Fatal("diverged images hash equal")
	}
	if cache.Entries() == 0 {
		t.Fatal("frozen-page cache never filled")
	}
}

// TestImageHashRegionLayout: same bytes, different mapped layout, must
// differ — image equality is meaningless across address spaces.
func TestImageHashRegionLayout(t *testing.T) {
	a, b := New(), New()
	a.Map(0x1000, PageSize)
	b.Map(0x1000, 2*PageSize)
	if a.ImageHash(nil) == b.ImageHash(nil) {
		t.Fatal("different region layouts hash equal")
	}
}
