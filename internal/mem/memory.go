// Package mem implements the simulated memory system: a sparse physical
// memory with explicit mapped regions (so that wild accesses fault like a
// virtual-memory system would) and a configurable write-back cache
// hierarchy used for timing, mirroring gem5's "classic" memory system.
package mem

import (
	"bytes"
	"fmt"
	"sort"
)

// PageSize is the allocation granule of the sparse physical memory.
const PageSize = 4096

// AccessError reports an access outside all mapped regions. The simulator
// turns it into a crash outcome ("segmentation fault").
type AccessError struct {
	Addr  uint64
	Write bool
	Size  int
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("segfault: %d-byte %s at 0x%x", e.Size, op, e.Addr)
}

// region is a half-open mapped address range [Lo, Hi).
type region struct {
	Lo, Hi uint64
}

// tlb is a one-entry translation cache: the last page touched through a
// port, together with the bounds of the mapped region containing it. A
// hit turns the region binary search plus page-map lookup into three
// compares and a slice index — the dominant cost of the per-access slow
// path. One entry exists per port (instruction fetch, data) so the two
// streams do not evict each other, exactly like a split micro-TLB.
type tlb struct {
	page     []byte // nil: entry invalid
	pageBase uint64 // base address of page
	lo, hi   uint64 // containing mapped region [lo, hi)
	wr       bool   // page is private (writable); false for frozen/zero pages
}

// Memory is a sparse, little-endian physical memory. The zero value is not
// usable; call New.
type Memory struct {
	// pages is the private overlay: every page the memory has written since
	// it was created, restored, or last frozen by CowSnapshot. base is the
	// frozen copy-on-write layer shared with snapshots and sibling forks;
	// it is nil until the first CowSnapshot/ForkFrom and must never be
	// written through. Reads consult pages first, then base; the first
	// write to a frozen page copies it into pages (COW).
	pages  map[uint64][]byte
	base   map[uint64][]byte
	baseID uint64 // identity of the frozen base (CowSnapshot.id), 0 if none

	regions []region // sorted by Lo, non-overlapping, non-adjacent

	fetch tlb // instruction-fetch port (Read32)
	data  tlb // data port (byte/64-bit loads and stores)

	// Text-region write tracking: any store overlapping [textLo, textHi)
	// bumps textGen, invalidating decoded-instruction caches keyed on
	// guest PCs (self-modifying code, store-value faults landing in the
	// text section, checkpoint restores).
	textLo, textHi uint64
	textGen        uint64
}

// New returns an empty memory with no mapped regions.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// SetTextRegion declares [lo, hi) as the guest text section. Stores
// overlapping it invalidate predecoded-instruction caches via TextGen.
func (m *Memory) SetTextRegion(lo, hi uint64) {
	m.textLo, m.textHi = lo, hi
	m.textGen++
}

// TextGen returns the text-section write generation: it changes whenever
// a store may have modified an instruction word (or the whole memory was
// replaced by a checkpoint restore). Decoded-instruction caches compare
// it against the generation they were filled at.
func (m *Memory) TextGen() uint64 { return m.textGen }

// TextRegion returns the declared text section [lo, hi); both zero when
// SetTextRegion was never called.
func (m *Memory) TextRegion() (lo, hi uint64) { return m.textLo, m.textHi }

// noteWrite invalidates instruction predecode state when a store of size
// bytes at addr overlaps the text region.
func (m *Memory) noteWrite(addr uint64, size uint64) {
	if addr < m.textHi && addr+size > m.textLo {
		m.textGen++
	}
}

// Map marks [base, base+size) as accessible. Overlapping or adjacent maps
// are merged. Insertion keeps the region list sorted in place (one
// binary search plus a bounded copy) instead of re-sorting the whole
// slice on every call.
func (m *Memory) Map(base, size uint64) {
	if size == 0 {
		return
	}
	lo, hi := base, base+size
	m.fetch, m.data = tlb{}, tlb{}

	// First region starting after lo.
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].Lo > lo })
	// Merge with the predecessor when it touches or overlaps [lo, hi).
	if i > 0 && m.regions[i-1].Hi >= lo {
		i--
		lo = m.regions[i].Lo
		if m.regions[i].Hi > hi {
			hi = m.regions[i].Hi
		}
	}
	// Absorb every following region that touches or overlaps.
	j := i
	for j < len(m.regions) && m.regions[j].Lo <= hi {
		if m.regions[j].Hi > hi {
			hi = m.regions[j].Hi
		}
		j++
	}
	if i == j {
		// Pure insertion between neighbors.
		m.regions = append(m.regions, region{})
		copy(m.regions[i+1:], m.regions[i:])
		m.regions[i] = region{Lo: lo, Hi: hi}
		return
	}
	// Replace regions[i:j] with the single merged region.
	m.regions[i] = region{Lo: lo, Hi: hi}
	m.regions = append(m.regions[:i+1], m.regions[j:]...)
}

// regionFor returns the bounds of the mapped region containing
// [addr, addr+size), or ok=false.
func (m *Memory) regionFor(addr uint64, size int) (lo, hi uint64, ok bool) {
	end := addr + uint64(size)
	if end < addr {
		return 0, 0, false
	}
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].Hi > addr })
	if i < len(m.regions) && m.regions[i].Lo <= addr && end <= m.regions[i].Hi {
		return m.regions[i].Lo, m.regions[i].Hi, true
	}
	return 0, 0, false
}

// Mapped reports whether the full range [addr, addr+size) is mapped.
func (m *Memory) Mapped(addr uint64, size int) bool {
	_, _, ok := m.regionFor(addr, size)
	return ok
}

// Regions returns a copy of the mapped regions as (lo, hi) pairs.
func (m *Memory) Regions() [][2]uint64 {
	out := make([][2]uint64, len(m.regions))
	for i, r := range m.regions {
		out[i] = [2]uint64{r.Lo, r.Hi}
	}
	return out
}

// zeroPage backs reads of never-written pages so the read path allocates
// nothing. It must never be written: every write path goes through
// writablePage, and the TLB wr bit keeps fast-path stores off it.
var zeroPage [PageSize]byte

// writablePage returns the private page containing addr, copying it out
// of the frozen base on the first write after a snapshot (copy-on-write)
// or allocating it zeroed. Any micro-TLB entry caching the superseded
// frozen page is repointed at the private copy so the two ports stay
// coherent.
func (m *Memory) writablePage(addr uint64) []byte {
	pb := addr &^ uint64(PageSize-1)
	p, ok := m.pages[pb]
	if !ok {
		p = make([]byte, PageSize)
		if bp, ok := m.base[pb]; ok {
			copy(p, bp)
		}
		m.pages[pb] = p
		if m.fetch.page != nil && m.fetch.pageBase == pb {
			m.fetch.page, m.fetch.wr = p, true
		}
		if m.data.page != nil && m.data.pageBase == pb {
			m.data.page, m.data.wr = p, true
		}
	}
	return p
}

// readPage returns the current contents of addr's page without making it
// private: the private overlay wins, then the frozen base, then the
// shared zero page. private reports whether the returned page may be
// written in place.
func (m *Memory) readPage(addr uint64) (p []byte, private bool) {
	pb := addr &^ uint64(PageSize-1)
	if p, ok := m.pages[pb]; ok {
		return p, true
	}
	if p, ok := m.base[pb]; ok {
		return p, false
	}
	return zeroPage[:], false
}

// fill performs the slow path of a port access: full mapping check, page
// lookup (with a copy-on-write fault when write is set and the page is
// frozen), TLB refill. It returns the page slice or an error.
func (m *Memory) fill(t *tlb, addr uint64, size int, write bool) ([]byte, error) {
	lo, hi, ok := m.regionFor(addr, size)
	if !ok {
		return nil, &AccessError{Addr: addr, Write: write, Size: size}
	}
	var p []byte
	if write {
		p = m.writablePage(addr)
		t.wr = true
	} else {
		p, t.wr = m.readPage(addr)
	}
	t.page = p
	t.pageBase = addr &^ uint64(PageSize-1)
	t.lo, t.hi = lo, hi
	return p, nil
}

// hit reports whether [addr, addr+size) is fully inside the cached page
// and region of t. size must be <= PageSize. Stores must additionally
// check t.wr before writing through the cached page.
func (t *tlb) hit(addr uint64, size uint64) bool {
	return t.page != nil && addr-t.pageBase <= PageSize-size && addr >= t.lo && t.hi-addr >= size
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint64) (byte, error) {
	if t := &m.data; t.hit(addr, 1) {
		return t.page[addr-t.pageBase], nil
	}
	p, err := m.fill(&m.data, addr, 1, false)
	if err != nil {
		return 0, err
	}
	return p[addr%PageSize], nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, v byte) error {
	m.noteWrite(addr, 1)
	if t := &m.data; t.wr && t.hit(addr, 1) {
		t.page[addr-t.pageBase] = v
		return nil
	}
	p, err := m.fill(&m.data, addr, 1, true)
	if err != nil {
		return err
	}
	p[addr%PageSize] = v
	return nil
}

// le64 assembles a little-endian 64-bit value from p[off:off+8].
func le64(p []byte, off uint64) uint64 {
	b := p[off : off+8 : off+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// put64 stores v little-endian at p[off:off+8].
func put64(p []byte, off uint64, v uint64) {
	b := p[off : off+8 : off+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Read64 reads a little-endian 64-bit word. The CPU enforces alignment;
// Memory only enforces mapping.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if t := &m.data; t.hit(addr, 8) {
		return le64(t.page, addr-t.pageBase), nil
	}
	return m.read64Slow(addr)
}

func (m *Memory) read64Slow(addr uint64) (uint64, error) {
	off := addr % PageSize
	if off <= PageSize-8 {
		p, err := m.fill(&m.data, addr, 8, false)
		if err != nil {
			return 0, err
		}
		return le64(p, off), nil
	}
	if !m.Mapped(addr, 8) {
		return 0, &AccessError{Addr: addr, Size: 8}
	}
	var v uint64
	for i := 0; i < 8; i++ {
		b, err := m.LoadByte(addr + uint64(i))
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * uint(i))
	}
	return v, nil
}

// Write64 writes a little-endian 64-bit word.
func (m *Memory) Write64(addr uint64, v uint64) error {
	m.noteWrite(addr, 8)
	if t := &m.data; t.wr && t.hit(addr, 8) {
		put64(t.page, addr-t.pageBase, v)
		return nil
	}
	return m.write64Slow(addr, v)
}

func (m *Memory) write64Slow(addr uint64, v uint64) error {
	off := addr % PageSize
	if off <= PageSize-8 {
		p, err := m.fill(&m.data, addr, 8, true)
		if err != nil {
			return err
		}
		put64(p, off, v)
		return nil
	}
	if !m.Mapped(addr, 8) {
		return &AccessError{Addr: addr, Write: true, Size: 8}
	}
	for i := 0; i < 8; i++ {
		if err := m.StoreByte(addr+uint64(i), byte(v>>(8*uint(i)))); err != nil {
			return err
		}
	}
	return nil
}

// Read32 reads a little-endian 32-bit word (instruction fetch). It uses
// the dedicated fetch port so data traffic does not evict the
// fetch-stream TLB entry.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	if t := &m.fetch; t.hit(addr, 4) {
		off := addr - t.pageBase
		b := t.page[off : off+4 : off+4]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
	}
	return m.read32Slow(addr)
}

func (m *Memory) read32Slow(addr uint64) (uint32, error) {
	off := addr % PageSize
	if off <= PageSize-4 {
		p, err := m.fill(&m.fetch, addr, 4, false)
		if err != nil {
			return 0, err
		}
		b := p[off : off+4 : off+4]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
	}
	if !m.Mapped(addr, 4) {
		return 0, &AccessError{Addr: addr, Size: 4}
	}
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := m.LoadByte(addr + uint64(i))
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * uint(i))
	}
	return v, nil
}

// Write32 writes a little-endian 32-bit word (used by the loader).
func (m *Memory) Write32(addr uint64, v uint32) error {
	for i := 0; i < 4; i++ {
		if err := m.StoreByte(addr+uint64(i), byte(v>>(8*uint(i)))); err != nil {
			return err
		}
	}
	return nil
}

// StoreBytes copies b into memory starting at addr, page by page. When
// the full range is mapped (the common case) it runs as a handful of
// bulk copies; otherwise it falls back to the byte loop to preserve the
// partial-write-then-error semantics.
func (m *Memory) StoreBytes(addr uint64, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	if !m.Mapped(addr, len(b)) {
		for i, c := range b {
			if err := m.StoreByte(addr+uint64(i), c); err != nil {
				return err
			}
		}
		return nil
	}
	m.noteWrite(addr, uint64(len(b)))
	for len(b) > 0 {
		off := addr % PageSize
		n := copy(m.writablePage(addr)[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// LoadBytes copies n bytes starting at addr, page by page.
func (m *Memory) LoadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	if n == 0 {
		return out, nil
	}
	if !m.Mapped(addr, n) {
		for i := range out {
			b, err := m.LoadByte(addr + uint64(i))
			if err != nil {
				return nil, err
			}
			out[i] = b
		}
		return out, nil
	}
	dst := out
	for len(dst) > 0 {
		off := addr % PageSize
		p, _ := m.readPage(addr)
		c := copy(dst, p[off:])
		dst = dst[c:]
		addr += uint64(c)
	}
	return out, nil
}

// Snapshot captures the full memory contents and mapping for
// checkpointing. Pages are copied.
type Snapshot struct {
	Pages   map[uint64][]byte
	Regions []region
}

// Snapshot returns a deep copy of the memory state, flattening the frozen
// COW base and the private overlay into one page map.
func (m *Memory) Snapshot() Snapshot {
	s := Snapshot{
		Pages:   make(map[uint64][]byte, len(m.base)+len(m.pages)),
		Regions: make([]region, len(m.regions)),
	}
	copy(s.Regions, m.regions)
	for base, p := range m.base {
		if _, dirty := m.pages[base]; dirty {
			continue
		}
		cp := make([]byte, PageSize)
		copy(cp, p)
		s.Pages[base] = cp
	}
	for base, p := range m.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		s.Pages[base] = cp
	}
	return s
}

// ByteDiff is one byte-level divergence between two memory snapshots.
type ByteDiff struct {
	Addr uint64 `json:"addr"`
	A    byte   `json:"a"`
	B    byte   `json:"b"`
}

// DiffSnapshots compares two memory snapshots byte by byte and returns up
// to maxDetail individual differences plus the total count. Pages present
// in only one snapshot are compared against zeroes (an unmapped page reads
// as zero). Used by the conformance differ and the taint tracker's
// golden-run architectural differ.
func DiffSnapshots(a, b Snapshot, maxDetail int) (diffs []ByteDiff, total int) {
	seen := make(map[uint64]struct{}, len(a.Pages)+len(b.Pages))
	for base := range a.Pages {
		seen[base] = struct{}{}
	}
	for base := range b.Pages {
		seen[base] = struct{}{}
	}
	bases := make([]uint64, 0, len(seen))
	for base := range seen {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var zero [PageSize]byte
	for _, base := range bases {
		pa, pb := a.Pages[base], b.Pages[base]
		if pa == nil {
			pa = zero[:]
		}
		if pb == nil {
			pb = zero[:]
		}
		if bytes.Equal(pa, pb) {
			continue
		}
		for i := 0; i < PageSize; i++ {
			if pa[i] != pb[i] {
				total++
				if len(diffs) < maxDetail {
					diffs = append(diffs, ByteDiff{Addr: base + uint64(i), A: pa[i], B: pb[i]})
				}
			}
		}
	}
	return diffs, total
}

// Restore replaces the memory state with the snapshot's (deep copy). Any
// frozen COW base is dropped, both per-port micro-TLBs are invalidated
// unconditionally, and the text generation is bumped so no stale
// translation or predecoded instruction survives into the restored state.
func (m *Memory) Restore(s Snapshot) {
	m.pages = make(map[uint64][]byte, len(s.Pages))
	for base, p := range s.Pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		m.pages[base] = cp
	}
	m.base = nil
	m.baseID = 0
	m.regions = make([]region, len(s.Regions))
	copy(m.regions, s.Regions)
	m.fetch, m.data = tlb{}, tlb{}
	m.textGen++ // all cached decodes are stale: page contents were replaced
}
