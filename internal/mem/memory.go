// Package mem implements the simulated memory system: a sparse physical
// memory with explicit mapped regions (so that wild accesses fault like a
// virtual-memory system would) and a configurable write-back cache
// hierarchy used for timing, mirroring gem5's "classic" memory system.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the allocation granule of the sparse physical memory.
const PageSize = 4096

// AccessError reports an access outside all mapped regions. The simulator
// turns it into a crash outcome ("segmentation fault").
type AccessError struct {
	Addr  uint64
	Write bool
	Size  int
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("segfault: %d-byte %s at 0x%x", e.Size, op, e.Addr)
}

// region is a half-open mapped address range [Lo, Hi).
type region struct {
	Lo, Hi uint64
}

// Memory is a sparse, little-endian physical memory. The zero value is not
// usable; call New.
type Memory struct {
	pages   map[uint64][]byte
	regions []region // sorted by Lo, non-overlapping
}

// New returns an empty memory with no mapped regions.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// Map marks [base, base+size) as accessible. Overlapping or adjacent maps
// are merged.
func (m *Memory) Map(base, size uint64) {
	if size == 0 {
		return
	}
	r := region{Lo: base, Hi: base + size}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Lo < m.regions[j].Lo })
	merged := m.regions[:1]
	for _, next := range m.regions[1:] {
		last := &merged[len(merged)-1]
		if next.Lo <= last.Hi {
			if next.Hi > last.Hi {
				last.Hi = next.Hi
			}
		} else {
			merged = append(merged, next)
		}
	}
	m.regions = merged
}

// Mapped reports whether the full range [addr, addr+size) is mapped.
func (m *Memory) Mapped(addr uint64, size int) bool {
	end := addr + uint64(size)
	if end < addr {
		return false
	}
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].Hi > addr })
	return i < len(m.regions) && m.regions[i].Lo <= addr && end <= m.regions[i].Hi
}

// Regions returns a copy of the mapped regions as (lo, hi) pairs.
func (m *Memory) Regions() [][2]uint64 {
	out := make([][2]uint64, len(m.regions))
	for i, r := range m.regions {
		out[i] = [2]uint64{r.Lo, r.Hi}
	}
	return out
}

func (m *Memory) page(addr uint64) []byte {
	base := addr &^ uint64(PageSize-1)
	p, ok := m.pages[base]
	if !ok {
		p = make([]byte, PageSize)
		m.pages[base] = p
	}
	return p
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint64) (byte, error) {
	if !m.Mapped(addr, 1) {
		return 0, &AccessError{Addr: addr, Size: 1}
	}
	return m.page(addr)[addr%PageSize], nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, v byte) error {
	if !m.Mapped(addr, 1) {
		return &AccessError{Addr: addr, Write: true, Size: 1}
	}
	m.page(addr)[addr%PageSize] = v
	return nil
}

// Read64 reads a little-endian 64-bit word. The CPU enforces alignment;
// Memory only enforces mapping.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if !m.Mapped(addr, 8) {
		return 0, &AccessError{Addr: addr, Size: 8}
	}
	off := addr % PageSize
	if off <= PageSize-8 {
		p := m.page(addr)
		return uint64(p[off]) | uint64(p[off+1])<<8 | uint64(p[off+2])<<16 |
			uint64(p[off+3])<<24 | uint64(p[off+4])<<32 | uint64(p[off+5])<<40 |
			uint64(p[off+6])<<48 | uint64(p[off+7])<<56, nil
	}
	var v uint64
	for i := 0; i < 8; i++ {
		b, err := m.LoadByte(addr + uint64(i))
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * uint(i))
	}
	return v, nil
}

// Write64 writes a little-endian 64-bit word.
func (m *Memory) Write64(addr uint64, v uint64) error {
	if !m.Mapped(addr, 8) {
		return &AccessError{Addr: addr, Write: true, Size: 8}
	}
	off := addr % PageSize
	if off <= PageSize-8 {
		p := m.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		p[off+4] = byte(v >> 32)
		p[off+5] = byte(v >> 40)
		p[off+6] = byte(v >> 48)
		p[off+7] = byte(v >> 56)
		return nil
	}
	for i := 0; i < 8; i++ {
		if err := m.StoreByte(addr+uint64(i), byte(v>>(8*uint(i)))); err != nil {
			return err
		}
	}
	return nil
}

// Read32 reads a little-endian 32-bit word (instruction fetch).
func (m *Memory) Read32(addr uint64) (uint32, error) {
	if !m.Mapped(addr, 4) {
		return 0, &AccessError{Addr: addr, Size: 4}
	}
	off := addr % PageSize
	if off <= PageSize-4 {
		p := m.page(addr)
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 |
			uint32(p[off+3])<<24, nil
	}
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := m.LoadByte(addr + uint64(i))
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * uint(i))
	}
	return v, nil
}

// Write32 writes a little-endian 32-bit word (used by the loader).
func (m *Memory) Write32(addr uint64, v uint32) error {
	for i := 0; i < 4; i++ {
		if err := m.StoreByte(addr+uint64(i), byte(v>>(8*uint(i)))); err != nil {
			return err
		}
	}
	return nil
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) error {
	for i, c := range b {
		if err := m.StoreByte(addr+uint64(i), c); err != nil {
			return err
		}
	}
	return nil
}

// LoadBytes copies n bytes starting at addr.
func (m *Memory) LoadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		b, err := m.LoadByte(addr + uint64(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// Snapshot captures the full memory contents and mapping for
// checkpointing. Pages are copied.
type Snapshot struct {
	Pages   map[uint64][]byte
	Regions []region
}

// Snapshot returns a deep copy of the memory state.
func (m *Memory) Snapshot() Snapshot {
	s := Snapshot{
		Pages:   make(map[uint64][]byte, len(m.pages)),
		Regions: make([]region, len(m.regions)),
	}
	copy(s.Regions, m.regions)
	for base, p := range m.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		s.Pages[base] = cp
	}
	return s
}

// ByteDiff is one byte-level divergence between two memory snapshots.
type ByteDiff struct {
	Addr uint64 `json:"addr"`
	A    byte   `json:"a"`
	B    byte   `json:"b"`
}

// DiffSnapshots compares two memory snapshots byte by byte and returns up
// to maxDetail individual differences plus the total count. Pages present
// in only one snapshot are compared against zeroes (an unmapped page reads
// as zero). Used by the conformance differ and the taint tracker's
// golden-run architectural differ.
func DiffSnapshots(a, b Snapshot, maxDetail int) (diffs []ByteDiff, total int) {
	seen := make(map[uint64]struct{}, len(a.Pages)+len(b.Pages))
	for base := range a.Pages {
		seen[base] = struct{}{}
	}
	for base := range b.Pages {
		seen[base] = struct{}{}
	}
	bases := make([]uint64, 0, len(seen))
	for base := range seen {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var zero [PageSize]byte
	for _, base := range bases {
		pa, pb := a.Pages[base], b.Pages[base]
		if pa == nil {
			pa = zero[:]
		}
		if pb == nil {
			pb = zero[:]
		}
		for i := 0; i < PageSize; i++ {
			if pa[i] != pb[i] {
				total++
				if len(diffs) < maxDetail {
					diffs = append(diffs, ByteDiff{Addr: base + uint64(i), A: pa[i], B: pb[i]})
				}
			}
		}
	}
	return diffs, total
}

// Restore replaces the memory state with the snapshot's (deep copy).
func (m *Memory) Restore(s Snapshot) {
	m.pages = make(map[uint64][]byte, len(s.Pages))
	for base, p := range s.Pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		m.pages[base] = cp
	}
	m.regions = make([]region, len(s.Regions))
	copy(m.regions, s.Regions)
}
