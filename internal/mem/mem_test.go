package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestUnmappedAccessFaults(t *testing.T) {
	m := New()
	if _, err := m.LoadByte(0x100); err == nil {
		t.Fatal("expected fault on unmapped read")
	}
	var ae *AccessError
	_, err := m.Read64(0x100)
	if !errors.As(err, &ae) {
		t.Fatalf("expected AccessError, got %v", err)
	}
	if ae.Addr != 0x100 || ae.Write {
		t.Fatalf("bad AccessError: %+v", ae)
	}
	if err := m.Write64(0x100, 1); err == nil {
		t.Fatal("expected fault on unmapped write")
	}
}

func TestMapMerge(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000)
	m.Map(0x2000, 0x1000) // adjacent: merges
	m.Map(0x5000, 0x1000)
	rs := m.Regions()
	if len(rs) != 2 {
		t.Fatalf("want 2 regions after merge, got %v", rs)
	}
	if !m.Mapped(0x1FFC, 8) {
		t.Error("straddling access within merged region should be mapped")
	}
	if m.Mapped(0x2FFC, 8) {
		t.Error("access crossing end of region must not be mapped")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Map(0, 1<<20)
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr) % ((1 << 20) - 8)
		if err := m.Write64(a, v); err != nil {
			return false
		}
		got, err := m.Read64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPageStraddlingAccess(t *testing.T) {
	m := New()
	m.Map(0, 2*PageSize)
	addr := uint64(PageSize - 3) // straddles the page boundary
	want := uint64(0x1122334455667788)
	if err := m.Write64(addr, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read64(addr)
	if err != nil || got != want {
		t.Fatalf("straddle: got %x err %v", got, err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	if err := m.Write64(0, 0x0807060504030201); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b, _ := m.LoadByte(uint64(i))
		if b != byte(i+1) {
			t.Fatalf("byte %d = %#x", i, b)
		}
	}
	w, _ := m.Read32(0)
	if w != 0x04030201 {
		t.Fatalf("Read32 = %#x", w)
	}
}

func TestSnapshotRestoreIsolation(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	m.Write64(8, 42)
	snap := m.Snapshot()
	m.Write64(8, 99)
	m.Restore(snap)
	if v, _ := m.Read64(8); v != 42 {
		t.Fatalf("restore lost value: %d", v)
	}
	// Mutating the restored memory must not corrupt the snapshot.
	m.Write64(8, 7)
	m2 := New()
	m2.Restore(snap)
	if v, _ := m2.Read64(8); v != 42 {
		t.Fatalf("snapshot aliased: %d", v)
	}
}

func TestCacheHitMiss(t *testing.T) {
	dram := &FixedLatency{Latency: 100}
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64, HitLatency: 1}, dram)
	// First access misses.
	if lat := c.Access(0, false); lat != 101 {
		t.Fatalf("miss latency = %d, want 101", lat)
	}
	// Same line hits.
	if lat := c.Access(8, false); lat != 1 {
		t.Fatalf("hit latency = %d, want 1", lat)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	dram := &FixedLatency{Latency: 100}
	// 2 sets x 2 ways x 64B = 256B. Lines 0, 2, 4 map to set 0.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, Assoc: 2, LineBytes: 64, HitLatency: 1}, dram)
	c.Access(0*128, false)
	c.Access(1*128, false)
	c.Access(0*128, false) // touch line 0 so line 128 is LRU
	c.Access(2*128, false) // evicts line 128
	if lat := c.Access(0, false); lat != 1 {
		t.Fatal("line 0 should still be resident")
	}
	if lat := c.Access(128, false); lat == 1 {
		t.Fatal("line 128 should have been evicted")
	}
}

func TestCacheWritebackDirty(t *testing.T) {
	dram := &FixedLatency{Latency: 100}
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 128, Assoc: 1, LineBytes: 64, HitLatency: 1}, dram)
	c.Access(0, true)   // dirty line in set 0
	c.Access(128, true) // conflicting line: must write back
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Fatalf("writebacks = %d, want 1", wb)
	}
}

func TestHierarchyL2Shared(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// An instruction fetch warms L2; a data access to the same line should
	// miss L1D but hit L2 (latency < DRAM latency path).
	cold := h.FetchLatency(0x4000)
	warm := h.DataLatency(0x4000, false)
	if warm >= cold {
		t.Fatalf("expected L2 hit to be cheaper: cold=%d warm=%d", cold, warm)
	}
	if h.L2.Stats().Hits != 1 {
		t.Fatalf("L2 stats: %+v", h.L2.Stats())
	}
}

func TestInvalidateAll(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.DataLatency(0, false)
	if lat := h.DataLatency(0, false); lat != 1 {
		t.Fatal("expected warm hit")
	}
	h.InvalidateAll()
	if lat := h.DataLatency(0, false); lat == 1 {
		t.Fatal("expected cold miss after InvalidateAll")
	}
}

func BenchmarkMemoryRead64(b *testing.B) {
	m := New()
	m.Map(0, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Read64(uint64(i*8) % (1 << 19))
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.DataLatency(uint64(i*64)%(1<<18), i&1 == 0)
	}
}
