// Package httpserv is the live observability surface: an opt-in HTTP
// server that exposes a running simulation or campaign without
// touching its hot loop. Endpoints:
//
//	/metrics  — the obs.Registry in Prometheus text exposition format
//	/status   — live campaign / NoW-master status JSON (queue depth,
//	            in-flight, per-worker liveness, classification counts)
//	/profile  — the current guest profile (text top-N by default,
//	            ?format=json or ?format=folded)
//	/taint    — the most recent fault-propagation report (JSON by
//	            default, ?format=dot for Graphviz, ?format=text)
//	/traces   — recent span traces (newest first; filterable with
//	            ?verdict=, ?tenant=, ?worker= against root attributes,
//	            ?since= unix-nanos, ?postmortems=1 for dump-carrying
//	            experiments; ?limit=/?n= bounds)
//	/trace/{id} — one trace's full span tree (JSON by default,
//	            ?format=text for an indented timeline)
//	/postmortem/{id} — one experiment's flight-recorder dump (JSON by
//	            default, ?format=text for the disassembled timeline)
//	/debug/pprof/... — Go's net/http/pprof for the simulator itself
//
// Servers hosting several campaigns at once (the campaign service) wire
// the keyed ProfileFor/TaintFor/StatusFor sources; /profile, /taint and
// /status then select by ?campaign=<id> instead of returning whichever
// campaign finished an experiment most recently.
//
// Every endpoint pulls state on request (registry snapshots, profiler
// atomic loads, status callbacks), so an idle server costs nothing and
// a scraped one costs only the scrape. ZOFI's observability rule —
// measurement must not distort the measured run — is preserved: with
// no -http flag none of this package is even linked into the hot path.
package httpserv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/prof"
	"repro/internal/taint"
)

// Config wires the server's data sources; any nil/absent field just
// disables its endpoint (it answers 404 with an explanatory body).
type Config struct {
	// Metrics backs /metrics.
	Metrics *obs.Registry
	// Status, when set, is invoked per /status request and its result
	// rendered as JSON. Implementations must be safe to call while the
	// campaign runs (campaign.Pool.Status, now.Master.Status).
	Status func() any
	// Profile, when set, is invoked per /profile request; it should
	// return a live snapshot (prof.Profiler.Snapshot, or a merge across
	// campaign runners).
	Profile func() *prof.Profile
	// Taint, when set, is invoked per /taint request; it should return
	// the most recent propagation report (sim.TaintReport, or
	// campaign.Pool.TaintReport for the freshest across workers). A nil
	// return means no experiment has produced one yet.
	Taint func() *taint.PropReport
	// StatusFor / ProfileFor / TaintFor, when set, serve requests that
	// carry a ?campaign=<id> query — a multi-campaign host answers with
	// that campaign's data instead of the freshest global. The boolean
	// reports whether the campaign exists (false: 404).
	StatusFor  func(campaign string) (any, bool)
	ProfileFor func(campaign string) (*prof.Profile, bool)
	TaintFor   func(campaign string) (*taint.PropReport, bool)
	// Spans backs /traces and /trace/{id} — the live distributed-trace
	// surface over the recorder's recent-trace ring.
	Spans *obs.SpanRecorder
	// Postmortem backs /postmortem/{id} and the ?postmortems=1 filter on
	// /traces: it resolves an experiment's trace ID (or a host-specific
	// key) to its flight-recorder dump. The boolean reports whether a
	// dump exists for the ID.
	Postmortem func(id string) (*flight.Postmortem, bool)
	// TopN bounds the /profile text table (0 = default 30).
	TopN int
}

// traceSummary is one /traces row: enough to pick a trace to drill
// into without shipping every span of every recent trace.
type traceSummary struct {
	TraceID    string `json:"traceId"`
	Name       string `json:"name"`
	StartNS    int64  `json:"startUnixNano"`
	DurationNS int64  `json:"durationNs"`
	Spans      int    `json:"spans"`
	Outcome    string `json:"outcome,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Campaign   string `json:"campaign,omitempty"`
	ExpID      any    `json:"expId,omitempty"`
}

func rootAttr(root *obs.SpanRecord, key string) string {
	if v, ok := root.Attrs[key]; ok {
		return fmt.Sprint(v)
	}
	return ""
}

// rootMatches applies the /traces filters: every non-empty wanted value
// must equal the root span's attribute of the same name.
func rootMatches(root *obs.SpanRecord, want map[string]string) bool {
	for key, v := range want {
		if v != "" && rootAttr(root, key) != v {
			return false
		}
	}
	return true
}

func summarize(tr *obs.Trace, root *obs.SpanRecord) traceSummary {
	return traceSummary{
		TraceID:    tr.ID,
		Name:       root.Name,
		StartNS:    root.StartNS,
		DurationNS: root.DurationNS(),
		Spans:      len(tr.Spans),
		Outcome:    rootAttr(root, "outcome"),
		Tenant:     rootAttr(root, "tenant"),
		Worker:     rootAttr(root, "worker"),
		Campaign:   rootAttr(root, "campaign"),
		ExpID:      root.Attrs["exp_id"],
	}
}

// Server is a running observability HTTP server.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Handler builds the observability mux for the given sources. Exported
// so hosts with their own HTTP surface (the campaign service) can mount
// these endpoints alongside their API instead of running a second
// server.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	// endpoints collects every registered path with a one-line help
	// string; the landing page enumerates it so "/" always reflects what
	// this server actually serves instead of a hardcoded subset.
	type endpoint struct{ path, help string }
	var endpoints []endpoint
	handle := func(path, help string, h http.HandlerFunc) {
		endpoints = append(endpoints, endpoint{path, help})
		mux.HandleFunc(path, h)
	}
	handle("/metrics", "obs.Registry in Prometheus text exposition format", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Metrics == nil {
			http.Error(w, "no metrics registry attached (run with -metrics or attach SimConfig.Metrics)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Metrics.WriteProm(w)
	})
	handle("/status", "live campaign / NoW-master status JSON (?campaign=<id> on multi-campaign hosts)", func(w http.ResponseWriter, req *http.Request) {
		var st any
		if key := req.URL.Query().Get("campaign"); key != "" {
			if cfg.StatusFor == nil {
				http.Error(w, "this server hosts no per-campaign status", http.StatusNotFound)
				return
			}
			var ok bool
			if st, ok = cfg.StatusFor(key); !ok {
				http.Error(w, "unknown campaign "+key, http.StatusNotFound)
				return
			}
		} else {
			if cfg.Status == nil {
				http.Error(w, "no status source attached", http.StatusNotFound)
				return
			}
			st = cfg.Status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	handle("/profile", "guest profile (text top-N; ?format=json|folded; ?campaign=<id>)", func(w http.ResponseWriter, req *http.Request) {
		var p *prof.Profile
		if key := req.URL.Query().Get("campaign"); key != "" {
			if cfg.ProfileFor == nil {
				http.Error(w, "this server hosts no per-campaign profiles", http.StatusNotFound)
				return
			}
			var ok bool
			if p, ok = cfg.ProfileFor(key); !ok {
				http.Error(w, "unknown campaign "+key, http.StatusNotFound)
				return
			}
		} else {
			if cfg.Profile == nil {
				http.Error(w, "no profiler attached (run with -profile)", http.StatusNotFound)
				return
			}
			p = cfg.Profile()
		}
		if p == nil {
			http.Error(w, "profile not available yet", http.StatusServiceUnavailable)
			return
		}
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = p.WriteJSON(w)
		case "folded":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = p.WriteFolded(w)
		default:
			n := cfg.TopN
			if s := req.URL.Query().Get("n"); s != "" {
				if v, err := strconv.Atoi(s); err == nil {
					n = v
				}
			}
			if n <= 0 {
				n = 30
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = p.WriteTop(w, n)
		}
	})
	handle("/taint", "fault-propagation report (JSON; ?format=dot|text; ?campaign=<id>)", func(w http.ResponseWriter, req *http.Request) {
		var rep *taint.PropReport
		if key := req.URL.Query().Get("campaign"); key != "" {
			if cfg.TaintFor == nil {
				http.Error(w, "this server hosts no per-campaign taint reports", http.StatusNotFound)
				return
			}
			var ok bool
			if rep, ok = cfg.TaintFor(key); !ok {
				http.Error(w, "unknown campaign "+key, http.StatusNotFound)
				return
			}
		} else {
			if cfg.Taint == nil {
				http.Error(w, "no taint tracker attached (run with -taint)", http.StatusNotFound)
				return
			}
			rep = cfg.Taint()
		}
		if rep == nil {
			http.Error(w, "no propagation report yet (no experiment has finished)", http.StatusServiceUnavailable)
			return
		}
		switch req.URL.Query().Get("format") {
		case "dot":
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			_ = rep.WriteDOT(w)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = rep.WriteText(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = rep.WriteJSON(w)
		}
	})
	handle("/traces", "recent span traces (?verdict=|?tenant=|?worker= filter on root attrs; ?since= unix-nanos; ?postmortems=1; ?limit=/?n= bounds)", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Spans == nil {
			http.Error(w, "no span recorder attached (run with -spans)", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		limit := 50
		for _, key := range []string{"n", "limit"} { // limit is the alias
			if s := q.Get(key); s != "" {
				if v, err := strconv.Atoi(s); err == nil && v > 0 {
					limit = v
				}
			}
		}
		var since int64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since (want unix nanoseconds): "+err.Error(), http.StatusBadRequest)
				return
			}
			since = v
		}
		wantPM := q.Get("postmortems") == "1" || q.Get("postmortems") == "true"
		if wantPM && cfg.Postmortem == nil {
			http.Error(w, "this server hosts no post-mortems (run with -flight)", http.StatusNotFound)
			return
		}
		want := map[string]string{
			"outcome": q.Get("verdict"),
			"tenant":  q.Get("tenant"),
			"worker":  q.Get("worker"),
		}
		out := make([]traceSummary, 0, limit)
		for _, tr := range cfg.Spans.Traces() {
			root := tr.Root()
			if root == nil || !rootMatches(root, want) {
				continue
			}
			if since != 0 && root.StartNS < since {
				continue
			}
			if wantPM {
				if _, ok := cfg.Postmortem(tr.ID); !ok {
					continue
				}
			}
			out = append(out, summarize(tr, root))
			if len(out) >= limit {
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	handle("/trace/", "one trace's span tree by ID (JSON; ?format=text for a timeline)", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Spans == nil {
			http.Error(w, "no span recorder attached (run with -spans)", http.StatusNotFound)
			return
		}
		id := strings.TrimPrefix(req.URL.Path, "/trace/")
		if id == "" {
			http.Error(w, "usage: /trace/{trace-id}", http.StatusBadRequest)
			return
		}
		tr := cfg.Spans.TraceByID(id)
		if tr == nil {
			http.Error(w, "unknown trace "+id+" (evicted, sampled out, or still in flight)", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = tr.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr)
	})
	handle("/postmortem/", "one experiment's flight-recorder dump by trace ID (JSON; ?format=text for the disassembled timeline)", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Postmortem == nil {
			http.Error(w, "no post-mortem source attached (run with -flight)", http.StatusNotFound)
			return
		}
		id := strings.TrimPrefix(req.URL.Path, "/postmortem/")
		if id == "" {
			http.Error(w, "usage: /postmortem/{trace-id}", http.StatusBadRequest)
			return
		}
		pm, ok := cfg.Postmortem(id)
		if !ok {
			http.Error(w, "no post-mortem for "+id+" (masked outcome, flight recording off, or evicted)", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = pm.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = pm.WriteJSON(w)
	})
	handle("/debug/pprof/", "Go net/http/pprof for the simulator process", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "gemfi observability server\n\nendpoints:\n")
		for _, ep := range endpoints {
			fmt.Fprintf(w, "  %-14s %s\n", ep.path, ep.help)
		}
	})
	return mux
}

// New builds and starts the server on addr (e.g. ":8080" or
// "127.0.0.1:0"). It returns once the listener is bound, so Addr is
// immediately valid; serving continues in a background goroutine.
func New(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserv: %w", err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" requests).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns a dialable http:// base URL for the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
