package httpserv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/taint"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func testProfile() *prof.Profile {
	p := prof.New(0x1000, 4)
	p.OnCommit(0x1000, 1)
	p.OnCommit(0x1004, 2)
	p.OnCommit(0x1004, 3)
	return p.Snapshot()
}

func testReport() *taint.PropReport {
	return &taint.PropReport{
		Verdict:      taint.VerdictReachedOutput,
		Injections:   1,
		TaintedInsts: 5, CommittedInsts: 20,
		MaxLiveTaint: 2, FirstLoad: -1, FirstStore: -1, FirstBranch: -1,
		FirstOutput: 7, OutputBytes: 1,
		Nodes: []taint.Node{
			{ID: 0, Kind: taint.NodeInject, PC: 0x1000, Label: "int:r5", Hits: 1},
			{ID: 1, Kind: taint.NodeOutput, PC: 0x1010, Hits: 1},
		},
		Edges: []taint.Edge{{From: 0, To: 1, N: 1}},
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim.insts").Add(42)
	reg.Histogram("campaign.exp.duration_ms").Observe(3)

	type status struct {
		Queue int `json:"queue"`
	}
	srv, err := New("127.0.0.1:0", Config{
		Metrics: reg,
		Status:  func() any { return status{Queue: 7} },
		Profile: testProfile,
		Taint:   testReport,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// /metrics serves valid Prometheus exposition.
	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d:\n%s", code, body)
	}
	if n, err := obs.ValidateProm(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("/metrics does not validate (n=%d): %v\n%s", n, err, body)
	}
	if !strings.Contains(body, "gemfi_sim_insts 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	// /status serves the provider's JSON.
	code, body = get(t, srv.URL()+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d:\n%s", code, body)
	}
	var st status
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Queue != 7 {
		t.Errorf("/status decode: %v (queue=%d)\n%s", err, st.Queue, body)
	}

	// /profile in all three formats.
	code, body = get(t, srv.URL()+"/profile")
	if code != http.StatusOK || !strings.Contains(body, "0x1004") {
		t.Errorf("/profile top: status %d:\n%s", code, body)
	}
	code, body = get(t, srv.URL()+"/profile?format=json")
	if code != http.StatusOK {
		t.Fatalf("/profile json status %d", code)
	}
	var pp prof.Profile
	if err := json.Unmarshal([]byte(body), &pp); err != nil {
		t.Errorf("/profile json decode: %v\n%s", err, body)
	}
	if pp.TotalInsts != 3 {
		t.Errorf("profile total insts = %d, want 3", pp.TotalInsts)
	}
	code, _ = get(t, srv.URL()+"/profile?format=folded")
	if code != http.StatusOK {
		t.Errorf("/profile folded status %d", code)
	}

	// /taint serves the report in all three formats.
	code, body = get(t, srv.URL()+"/taint")
	if code != http.StatusOK {
		t.Fatalf("/taint status %d:\n%s", code, body)
	}
	if rep, err := taint.ValidateReportJSON(strings.NewReader(body)); err != nil {
		t.Errorf("/taint json does not validate: %v\n%s", err, body)
	} else if rep.Verdict != taint.VerdictReachedOutput {
		t.Errorf("/taint verdict = %q", rep.Verdict)
	}
	code, body = get(t, srv.URL()+"/taint?format=dot")
	if code != http.StatusOK || !strings.Contains(body, "digraph") {
		t.Errorf("/taint dot: status %d:\n%s", code, body)
	}
	code, body = get(t, srv.URL()+"/taint?format=text")
	if code != http.StatusOK || !strings.Contains(body, "verdict") {
		t.Errorf("/taint text: status %d:\n%s", code, body)
	}

	// pprof index is wired.
	code, body = get(t, srv.URL()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d:\n%s", code, body)
	}

	// Index page enumerates every registered endpoint.
	code, body = get(t, srv.URL()+"/")
	if code != http.StatusOK {
		t.Fatalf("index status %d:\n%s", code, body)
	}
	for _, ep := range []string{"/metrics", "/status", "/profile", "/taint", "/debug/pprof/"} {
		if !strings.Contains(body, ep) {
			t.Errorf("index page missing %s:\n%s", ep, body)
		}
	}
}

func TestServerMissingProviders(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/status", "/profile", "/taint"} {
		if code, _ := get(t, srv.URL()+path); code != http.StatusNotFound {
			t.Errorf("%s with no provider: status %d, want 404", path, code)
		}
	}
	if code, _ := get(t, srv.URL()+"/nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

// TestPerCampaignSelection: on a multi-campaign host, /taint, /profile
// and /status must answer with the keyed campaign's data — not the
// freshest global — and 404 unknown campaigns.
func TestPerCampaignSelection(t *testing.T) {
	repA := testReport()
	repB := testReport()
	repB.Injections = 2
	profiles := map[string]*prof.Profile{"a": testProfile(), "b": nil}
	srv, err := New("127.0.0.1:0", Config{
		Taint: func() *taint.PropReport { return repB }, // global freshest
		TaintFor: func(c string) (*taint.PropReport, bool) {
			switch c {
			case "a":
				return repA, true
			case "b":
				return repB, true
			}
			return nil, false
		},
		ProfileFor: func(c string) (*prof.Profile, bool) {
			p, ok := profiles[c]
			return p, ok
		},
		StatusFor: func(c string) (any, bool) {
			if c != "a" {
				return nil, false
			}
			return map[string]int{"done": 5}, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/taint?campaign=a")
	if code != http.StatusOK {
		t.Fatalf("/taint?campaign=a status %d:\n%s", code, body)
	}
	var got taint.PropReport
	if err := json.Unmarshal([]byte(body), &got); err != nil || got.Injections != 1 {
		t.Errorf("campaign a got the wrong report (injections=%d): %v", got.Injections, err)
	}
	if code, _ := get(t, srv.URL()+"/taint?campaign=zzz"); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", code)
	}
	// Bare /taint still serves the global freshest.
	_, body = get(t, srv.URL()+"/taint")
	if err := json.Unmarshal([]byte(body), &got); err != nil || got.Injections != 2 {
		t.Errorf("global taint report wrong (injections=%d)", got.Injections)
	}

	if code, _ = get(t, srv.URL()+"/profile?campaign=a&format=json"); code != http.StatusOK {
		t.Errorf("/profile?campaign=a status %d", code)
	}
	// Known campaign with no profiler attached: 503, not 404.
	if code, _ = get(t, srv.URL()+"/profile?campaign=b"); code != http.StatusServiceUnavailable {
		t.Errorf("/profile?campaign=b status %d, want 503", code)
	}

	code, body = get(t, srv.URL()+"/status?campaign=a")
	if code != http.StatusOK || !strings.Contains(body, "done") {
		t.Errorf("/status?campaign=a status %d:\n%s", code, body)
	}

	// A single-campaign server (no keyed providers) rejects the key
	// explicitly instead of serving misleading global data.
	single, err := New("127.0.0.1:0", Config{Taint: func() *taint.PropReport { return repA }})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if code, _ = get(t, single.URL()+"/taint?campaign=a"); code != http.StatusNotFound {
		t.Errorf("keyed request on single-campaign host: status %d, want 404", code)
	}
}
