package httpserv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/prof"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func testProfile() *prof.Profile {
	p := prof.New(0x1000, 4)
	p.OnCommit(0x1000, 1)
	p.OnCommit(0x1004, 2)
	p.OnCommit(0x1004, 3)
	return p.Snapshot()
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim.insts").Add(42)
	reg.Histogram("campaign.exp.duration_ms").Observe(3)

	type status struct {
		Queue int `json:"queue"`
	}
	srv, err := New("127.0.0.1:0", Config{
		Metrics: reg,
		Status:  func() any { return status{Queue: 7} },
		Profile: testProfile,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// /metrics serves valid Prometheus exposition.
	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d:\n%s", code, body)
	}
	if n, err := obs.ValidateProm(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("/metrics does not validate (n=%d): %v\n%s", n, err, body)
	}
	if !strings.Contains(body, "gemfi_sim_insts 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	// /status serves the provider's JSON.
	code, body = get(t, srv.URL()+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d:\n%s", code, body)
	}
	var st status
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Queue != 7 {
		t.Errorf("/status decode: %v (queue=%d)\n%s", err, st.Queue, body)
	}

	// /profile in all three formats.
	code, body = get(t, srv.URL()+"/profile")
	if code != http.StatusOK || !strings.Contains(body, "0x1004") {
		t.Errorf("/profile top: status %d:\n%s", code, body)
	}
	code, body = get(t, srv.URL()+"/profile?format=json")
	if code != http.StatusOK {
		t.Fatalf("/profile json status %d", code)
	}
	var pp prof.Profile
	if err := json.Unmarshal([]byte(body), &pp); err != nil {
		t.Errorf("/profile json decode: %v\n%s", err, body)
	}
	if pp.TotalInsts != 3 {
		t.Errorf("profile total insts = %d, want 3", pp.TotalInsts)
	}
	code, _ = get(t, srv.URL()+"/profile?format=folded")
	if code != http.StatusOK {
		t.Errorf("/profile folded status %d", code)
	}

	// pprof index is wired.
	code, body = get(t, srv.URL()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d:\n%s", code, body)
	}

	// Index page lists the endpoints.
	code, body = get(t, srv.URL()+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d:\n%s", code, body)
	}
}

func TestServerMissingProviders(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/status", "/profile"} {
		if code, _ := get(t, srv.URL()+path); code != http.StatusNotFound {
			t.Errorf("%s with no provider: status %d, want 404", path, code)
		}
	}
	if code, _ := get(t, srv.URL()+"/nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}
