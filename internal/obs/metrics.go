// Package obs is the observability layer of the simulator: a
// low-overhead metrics registry (counters, gauges, histograms and
// pull-collectors) and a structured event tracer for the fault-injection
// lifecycle, with JSONL output and Chrome trace_event export.
//
// It plays the role gem5's pervasive Stats framework plays for gem5: every
// subsystem (CPU models, caches, FI engine, campaign drivers, NoW
// master/workers) registers its counters here instead of keeping ad-hoc
// fields, and a run can dump the whole registry at exit.
//
// Design rules:
//
//   - Disabled means free. Every instrument is nil-receiver safe: a nil
//     *Registry hands out nil *Counter / *Gauge / *Histogram, and all of
//     their methods are no-ops on nil. Hot paths keep a single pointer and
//     pay one predictable branch when observability is off.
//   - Hot simulator counters (committed instructions, cache hits) are NOT
//     incremented through the registry; the owning component keeps its
//     plain field and registers a pull-collector (RegisterFunc) that reads
//     it at dump time. The commit loop therefore costs exactly the same
//     with and without a registry attached.
//   - Instruments that are written from multiple goroutines (campaign
//     pool, NoW master) use atomics and are safe for concurrent use.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter ignores all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. A nil Gauge ignores all updates.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates a distribution of non-negative values in
// power-of-two buckets (bucket i counts values v with bits.Len64(v) == i,
// i.e. [2^(i-1), 2^i)). It tracks count, sum, min and max exactly; the
// buckets give the shape. A nil Histogram ignores all updates.
type Histogram struct {
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
	buckets  [65]uint64
	// exemplars holds, per bucket, the most recent exemplar label
	// (a span trace ID) observed into that bucket — a fat bucket then
	// links to a concrete experiment's span tree.
	exemplars [65]string
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v float64) {
	h.ObserveEx(v, "")
}

// ObserveEx records one value with an exemplar label — by convention a
// span trace ID — kept per bucket (last write wins) so a histogram
// bucket links back to a concrete sample trace.
func (h *Histogram) ObserveEx(v float64, exemplar string) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := bits.Len64(uint64(v))
	h.buckets[b]++
	if exemplar != "" {
		h.exemplars[b] = exemplar
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state. The
// bucket slices are parallel and ordered by ascending bound, so every
// rendering of the same snapshot is identical.
type HistogramSnapshot struct {
	Count    uint64    `json:"count"`
	Sum      float64   `json:"sum"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Mean     float64   `json:"mean"`
	Buckets  []uint64  `json:"buckets,omitempty"`
	BucketLo []float64 `json:"bucket_lo,omitempty"`
	BucketHi []float64 `json:"bucket_hi,omitempty"` // exclusive upper bound
	// Exemplars is parallel to Buckets: the most recent exemplar label
	// (sample trace ID) per bucket, "" where none was observed.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram state (zero snapshot on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s.Count, s.Sum, s.Min, s.Max = h.count, h.sum, h.min, h.max
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	anyExemplar := false
	for i, b := range h.buckets {
		if b == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(uint64(1) << (i - 1))
		}
		s.Buckets = append(s.Buckets, b)
		s.BucketLo = append(s.BucketLo, lo)
		s.BucketHi = append(s.BucketHi, float64(uint64(1)<<i))
		s.Exemplars = append(s.Exemplars, h.exemplars[i])
		if h.exemplars[i] != "" {
			anyExemplar = true
		}
	}
	if !anyExemplar {
		s.Exemplars = nil
	}
	return s
}

// Metric is one row of a registry dump.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // counter | gauge | histogram | func
	Value float64 `json:"value"`

	// Histogram detail (Kind == "histogram" only).
	Count uint64  `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	// Hist carries the full bucket breakdown (Kind == "histogram").
	Hist *HistogramSnapshot `json:"hist,omitempty"`
}

// Registry names and owns instruments. A nil *Registry is the disabled
// registry: it hands out nil instruments and dumps nothing. Instrument
// lookup is idempotent — asking for the same name twice returns the same
// instrument — so components can re-register across checkpoint restores.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a pull-collector: fn is called at Snapshot time
// to read a value that lives in the owning component (e.g. the core's
// committed-instruction count). Re-registering a name replaces the
// collector, which is what components do after a checkpoint restore.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot dumps every instrument, sorted by name. Pull-collectors are
// invoked; a nil registry returns nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		ms = append(ms, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		ms = append(ms, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.Unlock()

	// Histograms and collectors run outside the registry lock: collectors
	// may themselves take locks, and histograms have their own mutex.
	for name, h := range hists {
		s := h.Snapshot()
		ms = append(ms, Metric{
			Name: name, Kind: "histogram", Value: s.Sum,
			Count: s.Count, Min: s.Min, Max: s.Max, Mean: s.Mean,
			Hist: &s,
		})
	}
	for name, fn := range funcs {
		ms = append(ms, Metric{Name: name, Kind: "func", Value: fn()})
	}
	// Name, then kind: a dump is byte-identical across runs even if two
	// kinds share a name.
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return ms[i].Kind < ms[j].Kind
	})
	return ms
}

// WriteText renders a gem5-stats-style plain text dump: rows sorted by
// (name, kind), histogram buckets in ascending-bound order — the output
// for a given registry state is byte-identical across runs.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		if m.Kind == "histogram" {
			_, err = fmt.Fprintf(w, "%-44s count=%d mean=%.3f min=%.3f max=%.3f sum=%.3f\n",
				m.Name, m.Count, m.Mean, m.Min, m.Max, m.Value)
			if err == nil && m.Hist != nil {
				for i, b := range m.Hist.Buckets {
					_, err = fmt.Fprintf(w, "%-44s %d\n",
						fmt.Sprintf("  %s::[%g,%g)", m.Name, m.Hist.BucketLo[i], m.Hist.BucketHi[i]), b)
					if err != nil {
						break
					}
				}
			}
		} else if m.Value == math.Trunc(m.Value) && math.Abs(m.Value) < 1e15 {
			_, err = fmt.Fprintf(w, "%-44s %d\n", m.Name, int64(m.Value))
		} else {
			_, err = fmt.Fprintf(w, "%-44s %g\n", m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the dump as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.Snapshot()
	if ms == nil {
		ms = []Metric{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}
