package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanTreeBasics(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartRoot("experiment")
	root.SetAttr("exp_id", 7)
	root.SetTrack("w1")
	child := r.StartSpan("restore", root.Context())
	child.SetTicks(0, 100)
	child.End()
	root.End()

	tr := r.TraceByID(root.Context().TraceID)
	if tr == nil {
		t.Fatal("trace not in ring after root end")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	rt := tr.Root()
	if rt == nil || rt.Name != "experiment" {
		t.Fatalf("root = %+v", rt)
	}
	if rt.Track != "w1" || rt.Attrs["exp_id"] != 7 {
		t.Fatalf("root attrs/track lost: %+v", rt)
	}
	var kid *SpanRecord
	for i := range tr.Spans {
		if tr.Spans[i].Name == "restore" {
			kid = &tr.Spans[i]
		}
	}
	if kid == nil || kid.ParentID != rt.SpanID {
		t.Fatalf("child not parented under root: %+v", kid)
	}
	if kid.EndTick != 100 {
		t.Fatalf("child ticks lost: %+v", kid)
	}
	if r.ActiveTraces() != 0 {
		t.Fatalf("active = %d after completion", r.ActiveTraces())
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *SpanRecorder
	sp := r.StartRoot("x")
	sp.SetAttr("k", 1)
	sp.SetTrack("t")
	sp.SetStatus("bad")
	sp.SetTicks(1, 2)
	sp.Event("e", 0, nil)
	sp.ForceKeep()
	sp.End()
	r.AddSpan(SpanRecord{})
	r.ImportSpans([]SpanRecord{{}})
	r.Abandon("none")
	r.SetSampling(4)
	r.SetRingCap(2)
	if r.TakeTrace("none") != nil || r.TraceByID("none") != nil ||
		r.Traces() != nil || r.ActiveTraces() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if err := r.WriteSpansJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteSpansChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil chrome trace = %q", buf.String())
	}
}

func TestSpanHeadSampling(t *testing.T) {
	r := NewSpanRecorder()
	r.SetSampling(3)
	var ids []string
	for i := 0; i < 9; i++ {
		sp := r.StartRoot("experiment")
		ids = append(ids, sp.Context().TraceID)
		sp.End()
	}
	kept := 0
	for _, id := range ids {
		if r.TraceByID(id) != nil {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of 9 with sample 3, want 3", kept)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestSpanForceKeepOverridesSampling(t *testing.T) {
	r := NewSpanRecorder()
	r.SetSampling(1000)
	r.StartRoot("warm").End() // takes the 1-in-1000 keep slot
	sp := r.StartRoot("experiment")
	sp.ForceKeep()
	sp.SetStatus("crashed")
	sp.End()
	if r.TraceByID(sp.Context().TraceID) == nil {
		t.Fatal("ForceKeep trace was sampled out")
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRecorder()
	r.SetRingCap(2)
	var ids []string
	for i := 0; i < 4; i++ {
		sp := r.StartRoot("experiment")
		ids = append(ids, sp.Context().TraceID)
		sp.End()
	}
	if r.TraceByID(ids[0]) != nil || r.TraceByID(ids[1]) != nil {
		t.Fatal("oldest traces not evicted")
	}
	if r.TraceByID(ids[2]) == nil || r.TraceByID(ids[3]) == nil {
		t.Fatal("newest traces missing")
	}
	traces := r.Traces()
	if len(traces) != 2 || traces[0].ID != ids[3] {
		t.Fatalf("Traces() not newest-first: %v", traces)
	}
}

func TestSpanRemoteTakeAndImport(t *testing.T) {
	master := NewSpanRecorder()
	worker := NewSpanRecorder()

	root := master.StartRoot("experiment")
	ctx := root.Context()

	// Worker side: spans under a wire context buffer without completing.
	wsp := worker.StartSpan("worker", ctx)
	ph := worker.StartSpan("fi-window", wsp.Context())
	ph.End()
	wsp.End()
	if worker.TraceByID(ctx.TraceID) != nil {
		t.Fatal("remote trace completed locally on the worker")
	}
	shipped := worker.TakeTrace(ctx.TraceID)
	if len(shipped) != 2 {
		t.Fatalf("shipped %d spans, want 2", len(shipped))
	}
	if worker.ActiveTraces() != 0 {
		t.Fatal("TakeTrace left the trace active")
	}

	master.ImportSpans(shipped)
	root.End()
	tr := master.TraceByID(ctx.TraceID)
	if tr == nil || len(tr.Spans) != 3 {
		t.Fatalf("stitched trace = %+v", tr)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, *tr); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateSpansJSONL(&buf); err != nil || n != 3 {
		t.Fatalf("validate stitched: n=%d err=%v", n, err)
	}
}

func TestSpanAbandonCountsDropped(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartRoot("experiment")
	r.StartSpan("run", root.Context()).End()
	r.Abandon(root.Context().TraceID)
	if r.ActiveTraces() != 0 {
		t.Fatal("abandoned trace still active")
	}
	if r.Dropped() < 2 {
		t.Fatalf("dropped = %d, want >= 2 (one finished + one open span)", r.Dropped())
	}
	// The orphaned root End after abandon must not resurrect the trace.
	root.End()
	if r.TraceByID(root.Context().TraceID) != nil {
		t.Fatal("abandoned trace resurrected by late End")
	}
}

func TestSpanStreamJSONLSink(t *testing.T) {
	r := NewSpanRecorder()
	var got []Trace
	r.StreamJSONL(func(tr Trace) { got = append(got, tr) })
	sp := r.StartRoot("experiment")
	sp.End()
	if len(got) != 1 || got[0].ID != sp.Context().TraceID {
		t.Fatalf("sink got %+v", got)
	}
}

func TestSpanMetricsCounters(t *testing.T) {
	r := NewSpanRecorder()
	reg := NewRegistry()
	r.AttachMetrics(reg)
	r.SetSampling(2)
	r.StartRoot("a").End() // kept
	r.StartRoot("b").End() // sampled out
	if v := reg.Counter("obs.spans.recorded").Value(); v != 1 {
		t.Fatalf("recorded = %d, want 1", v)
	}
	if v := reg.Counter("obs.spans.dropped").Value(); v != 1 {
		t.Fatalf("dropped counter = %d, want 1", v)
	}
}

func TestValidateSpansJSONLRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"missing trace id": `{"spanId":"s1","name":"x","startUnixNano":1,"endUnixNano":2}`,
		"end before start": `{"traceId":"t","spanId":"s1","name":"x","startUnixNano":5,"endUnixNano":2}`,
		"tick rewind":      `{"traceId":"t","spanId":"s1","name":"x","startUnixNano":1,"endUnixNano":2,"startTick":9,"endTick":3}`,
		"dangling parent":  `{"traceId":"t","spanId":"s1","parentSpanId":"ghost","name":"x","startUnixNano":1,"endUnixNano":2}`,
		"two roots": `{"traceId":"t","spanId":"s1","name":"x","startUnixNano":1,"endUnixNano":2}
{"traceId":"t","spanId":"s2","name":"y","startUnixNano":1,"endUnixNano":2}`,
		"duplicate span id": `{"traceId":"t","spanId":"s1","name":"x","startUnixNano":1,"endUnixNano":2}
{"traceId":"t","spanId":"s1","parentSpanId":"s1","name":"y","startUnixNano":1,"endUnixNano":2}`,
	}
	for name, in := range cases {
		if _, err := ValidateSpansJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted bad stream", name)
		}
	}
}

func TestWriteSpansChromeTraceParses(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartRoot("experiment")
	root.SetTrack("w1")
	root.Event("fault.injected", 42, map[string]any{"reg": 3})
	ph := r.StartSpan("fi-window", root.Context())
	ph.SetTrack("w1")
	ph.End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteSpansChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("catapult JSON does not parse: %v", err)
	}
	var slices, instants, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			slices++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if slices != 2 || instants != 1 || meta == 0 {
		t.Fatalf("slices=%d instants=%d meta=%d", slices, instants, meta)
	}
}

func TestTraceWriteText(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartRoot("experiment")
	root.SetAttr("outcome", "masked")
	kid := r.StartSpan("fi-window", root.Context())
	kid.SetTicks(10, 20)
	kid.End()
	root.End()
	tr := r.TraceByID(root.Context().TraceID)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace ", "experiment", "fi-window", "ticks 10..20", "outcome=masked"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text timeline missing %q:\n%s", want, out)
		}
	}
}
