package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event phases, a subset of the Chrome trace_event format phases that
// Perfetto understands.
const (
	PhaseInstant  = "i" // a point event
	PhaseBegin    = "B" // start of a span (paired with PhaseEnd)
	PhaseEnd      = "E"
	PhaseComplete = "X" // a span with an inline duration
	PhaseCounter  = "C" // a sampled counter series
	PhaseMeta     = "M" // process/thread naming metadata
)

// Event categories used across the simulator.
const (
	CatFI         = "fi"         // fault-injection lifecycle
	CatSim        = "sim"        // run phases, model switches, watchdog
	CatCheckpoint = "checkpoint" // capture/restore
	CatFork       = "fork"       // COW snapshot trees: freeze/fork/prune
	CatCache      = "cache"      // memory-hierarchy events
	CatCampaign   = "campaign"   // experiment execution
	CatNoW        = "now"        // master/worker telemetry
	CatTaint      = "taint"      // fault-propagation taint tracking
)

// Event is one structured trace record. The field names follow the Chrome
// trace_event JSON keys (ts/ph/cat/name/dur/pid/tid/args) so a JSONL
// stream is line-per-line convertible into a trace Perfetto loads; Tick
// is our addition carrying simulation time alongside the wall clock.
type Event struct {
	TS   int64          `json:"ts"`             // µs since trace start (wall clock)
	Tick uint64         `json:"tick,omitempty"` // simulation tick, when meaningful
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	Name string         `json:"name"`
	Dur  int64          `json:"dur,omitempty"` // µs, PhaseComplete only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// maxBufferedEvents bounds the in-memory event buffer; beyond it events
// still stream to the JSONL sink but are dropped from the Chrome export
// (the drop count is reported by a final meta event).
const maxBufferedEvents = 1 << 20

// Tracer collects events. A nil *Tracer is the disabled tracer: Emit and
// every helper are no-ops, so instrumentation sites pay one nil check.
// Tracers are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event
	dropped uint64
	jsonl   *bufio.Writer
	jsonlEr error
}

// NewTracer returns an enabled tracer with an in-memory buffer.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// StreamJSONL additionally streams every event to w as one JSON object
// per line, as it is emitted. Call Flush before reading the sink.
func (t *Tracer) StreamJSONL(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.jsonl = bufio.NewWriterSize(w, 64<<10)
	t.mu.Unlock()
}

// Emit records one event. Zero TS is stamped with the current offset from
// trace start.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e.TS == 0 {
		e.TS = time.Since(t.start).Microseconds()
	}
	if len(t.events) < maxBufferedEvents {
		t.events = append(t.events, e)
	} else {
		t.dropped++
	}
	if t.jsonl != nil && t.jsonlEr == nil {
		b, err := json.Marshal(e)
		if err == nil {
			_, err = t.jsonl.Write(append(b, '\n'))
		}
		t.jsonlEr = err
	}
	t.mu.Unlock()
}

// Instant emits a point event.
func (t *Tracer) Instant(cat, name string, tick uint64, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Ph: PhaseInstant, Cat: cat, Name: name, Tick: tick, Args: args})
}

// CounterSample emits a counter-series sample (rendered as a track in
// Perfetto).
func (t *Tracer) CounterSample(cat, name string, tick uint64, value float64) {
	if t == nil {
		return
	}
	t.Emit(Event{Ph: PhaseCounter, Cat: cat, Name: name, Tick: tick, Args: map[string]any{"value": value}})
}

// Span starts a complete-event span on thread tid and returns the closure
// that ends it; args passed to the closure are attached to the event.
// Usage: end := tr.Span(obs.CatSim, "run", 0); defer end(nil).
func (t *Tracer) Span(cat, name string, tid int) func(args map[string]any) {
	if t == nil {
		return func(map[string]any) {}
	}
	begin := time.Since(t.start)
	return func(args map[string]any) {
		end := time.Since(t.start)
		t.Emit(Event{
			TS: begin.Microseconds(), Ph: PhaseComplete, Cat: cat, Name: name,
			Dur: (end - begin).Microseconds(), TID: tid, Args: args,
		})
	}
}

// Dropped reports how many events overflowed the in-memory buffer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Flush flushes the JSONL sink and reports any deferred write error.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jsonl != nil {
		if err := t.jsonl.Flush(); err != nil && t.jsonlEr == nil {
			t.jsonlEr = err
		}
	}
	return t.jsonlEr
}

// WriteChromeTrace writes the buffered events in the Chrome trace_event
// "JSON object format" ({"traceEvents": [...]}), which chrome://tracing
// and Perfetto load directly. Complete events keep their duration; a
// trailing metadata event reports the overflow drop count if any.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer has no trace")
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()

	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	writeEvent := func(e Event) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	// Process metadata so Perfetto shows a sensible track name.
	if err := writeEvent(Event{Ph: PhaseMeta, Cat: "__metadata", Name: "process_name",
		Args: map[string]any{"name": "gemfi"}}); err != nil {
		return err
	}
	for _, e := range events {
		// Fold the simulation tick into args so it survives the viewer.
		if e.Tick != 0 {
			args := make(map[string]any, len(e.Args)+1)
			for k, v := range e.Args {
				args[k] = v
			}
			args["tick"] = e.Tick
			e.Args = args
		}
		if err := writeEvent(e); err != nil {
			return err
		}
	}
	if dropped > 0 {
		if err := writeEvent(Event{Ph: PhaseMeta, Cat: "__metadata", Name: "dropped_events",
			Args: map[string]any{"count": dropped}}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`],"displayTimeUnit":"ms"}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// validPhases is the event schema's phase whitelist.
var validPhases = map[string]bool{
	PhaseInstant: true, PhaseBegin: true, PhaseEnd: true,
	PhaseComplete: true, PhaseCounter: true, PhaseMeta: true,
}

// ValidateEvent checks one event against the schema: a known phase, a
// non-empty category and name, non-negative timestamps, and a duration
// only on complete events.
func ValidateEvent(e Event) error {
	if !validPhases[e.Ph] {
		return fmt.Errorf("obs: invalid phase %q", e.Ph)
	}
	if e.Name == "" {
		return fmt.Errorf("obs: event with empty name")
	}
	if e.Cat == "" {
		return fmt.Errorf("obs: event %q with empty category", e.Name)
	}
	if e.TS < 0 {
		return fmt.Errorf("obs: event %q with negative ts %d", e.Name, e.TS)
	}
	if e.Dur < 0 {
		return fmt.Errorf("obs: event %q with negative dur %d", e.Name, e.Dur)
	}
	if e.Dur != 0 && e.Ph != PhaseComplete {
		return fmt.Errorf("obs: event %q carries dur but phase is %q", e.Name, e.Ph)
	}
	return nil
}

// ValidateJSONL reads a JSONL event stream and validates every line
// against the event schema. It returns the number of valid events; the
// error identifies the first offending physical line.
func ValidateJSONL(r io.Reader) (int, error) {
	n, err := ScanLines(r, 16<<20, func(lineNo int, raw []byte) error {
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("obs: line %d: not a JSON event: %w", lineNo, err)
		}
		if err := ValidateEvent(e); err != nil {
			return fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("obs: empty trace")
	}
	return n, nil
}
