// Span tracing: the distributed half of the observability layer.
//
// The Tracer in trace.go records flat Chrome trace_event streams inside
// one process. Spans add what a campaign spread across gemfi-serve, the
// fork server, and NoW workers needs on top of that: a durable identity
// (trace ID) that follows one experiment from HTTP submit to verdict, a
// parent/child hierarchy so worker-side phases stitch under the
// master's experiment span, and dual timestamps (wall-clock nanoseconds
// plus guest ticks) so host latency and simulated time stay correlated.
//
// Design points, mirroring the rest of the package:
//
//   - Disabled means free. A nil *SpanRecorder hands out nil *Span, and
//     every Span method is nil-receiver safe, so instrumented code never
//     branches on "is tracing on".
//   - Bounded memory. Spans accumulate per trace only while the trace is
//     live (one experiment in flight); finished traces land in a fixed
//     ring. Head sampling keeps 1-in-N traces on million-experiment
//     campaigns, but a trace marked ForceKeep (crashed / SDC
//     experiments) is always retained. Everything dropped is counted.
//   - Wire friendly. SpanRecord is plain JSON; a worker exports the
//     finished spans of a trace with TakeTrace and the master stitches
//     them back with ImportSpans.
package obs

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the portable identity of a span: enough to parent a
// child anywhere, including across the NoW wire protocol.
type SpanContext struct {
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// SpanEvent is a point-in-time annotation inside a span — fault
// lifecycle transitions (fault.injected, fault.squashed, ...) use it.
type SpanEvent struct {
	Name  string         `json:"name"`
	TS    int64          `json:"tsUnixNano"`
	Tick  uint64         `json:"tick,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SpanRecord is the export form of one finished span: what lands in the
// JSONL stream, the ring, and the NoW result message.
type SpanRecord struct {
	TraceID   string         `json:"traceId"`
	SpanID    string         `json:"spanId"`
	ParentID  string         `json:"parentSpanId,omitempty"`
	Name      string         `json:"name"`
	Track     string         `json:"track,omitempty"` // render lane: worker/slot name
	StartNS   int64          `json:"startUnixNano"`
	EndNS     int64          `json:"endUnixNano"`
	StartTick uint64         `json:"startTick,omitempty"`
	EndTick   uint64         `json:"endTick,omitempty"`
	Status    string         `json:"status,omitempty"` // "" or "ok" is success
	Attrs     map[string]any `json:"attrs,omitempty"`
	Events    []SpanEvent    `json:"events,omitempty"`
}

// DurationNS returns the span's wall-clock length.
func (r *SpanRecord) DurationNS() int64 { return r.EndNS - r.StartNS }

// PhaseSlice is one contiguous segment of an experiment's timeline.
// The simulator cuts its run into adjacent slices (fast-forward,
// pre-window, fi-window, post-window) so their durations tile the run
// exactly; the campaign runner adds restore/classify/taint around them.
type PhaseSlice struct {
	Name      string
	StartNS   int64
	EndNS     int64
	StartTick uint64
	EndTick   uint64
}

// Trace is a finished span tree, as held in the recorder's ring.
type Trace struct {
	ID    string       `json:"traceId"`
	Spans []SpanRecord `json:"spans"`
}

// Root returns the parentless span of the trace, or nil. Imported
// worker spans always have parents, so the root is the local one.
func (t *Trace) Root() *SpanRecord {
	if t == nil {
		return nil
	}
	for i := range t.Spans {
		if t.Spans[i].ParentID == "" {
			return &t.Spans[i]
		}
	}
	if len(t.Spans) > 0 {
		return &t.Spans[0]
	}
	return nil
}

// Span is a live, in-progress span. All methods are safe on a nil
// receiver (the disabled path) and safe for concurrent use.
type Span struct {
	rec *SpanRecorder

	mu    sync.Mutex
	data  SpanRecord
	ended bool
}

// Context returns the span's portable identity (zero if s is nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]any, 8)
	}
	s.data.Attrs[key] = v
	s.mu.Unlock()
}

// SetTrack names the render lane (worker or slot) the span belongs to.
func (s *Span) SetTrack(track string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Track = track
	s.mu.Unlock()
}

// TrackName returns the span's render lane ("" if unset or s is nil).
func (s *Span) TrackName() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	tr := s.data.Track
	s.mu.Unlock()
	return tr
}

// SetStatus records a terminal status; "" or "ok" means success.
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Status = status
	s.mu.Unlock()
}

// SetTicks stamps the guest-tick interval the span covers.
func (s *Span) SetTicks(start, end uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.StartTick, s.data.EndTick = start, end
	s.mu.Unlock()
}

// Event appends a point event (tick 0 omits the guest timestamp).
func (s *Span) Event(name string, tick uint64, attrs map[string]any) {
	if s == nil {
		return
	}
	ev := SpanEvent{Name: name, TS: time.Now().UnixNano(), Tick: tick, Attrs: attrs}
	s.mu.Lock()
	s.data.Events = append(s.data.Events, ev)
	s.mu.Unlock()
}

// ForceKeep marks the whole trace as exempt from head sampling: it is
// retained even when 1-in-N sampling would drop it. Crashed and SDC
// experiments call this so the interesting runs always keep their tree.
func (s *Span) ForceKeep() {
	if s == nil {
		return
	}
	s.rec.forceKeep(s.data.TraceID)
}

// End finishes the span and hands it to the recorder. The trace
// completes (and is kept or dropped per sampling) when its root ends.
// End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.EndNS = time.Now().UnixNano()
	rec := s.data
	s.mu.Unlock()
	s.rec.finish(rec)
}

// activeTrace buffers the spans of one in-flight trace.
type activeTrace struct {
	sampled   bool // head-sampling verdict, decided at root start
	forceKeep bool
	remote    bool // created by StartSpan under a wire context (worker side)
	open      int  // locally started, not yet ended spans
	spans     []SpanRecord
}

// SpanRecorder owns span recording for one process: sampling decisions,
// in-flight buffers, the finished-trace ring, and the JSONL stream.
// A nil *SpanRecorder is a valid, free, disabled recorder.
type SpanRecorder struct {
	mu      sync.Mutex
	sampleN int
	ringCap int
	headN   uint64
	active  map[string]*activeTrace
	recent  []*Trace // finished traces, oldest first
	byID    map[string]*Trace
	sink    func(Trace) // optional stream, invoked outside mu on trace completion

	dropped   atomic.Uint64
	droppedC  *Counter
	recordedC *Counter
}

// NewSpanRecorder returns a recorder that keeps every trace (sample 1)
// and retains the most recent 256 finished traces.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{
		sampleN: 1,
		ringCap: 256,
		active:  make(map[string]*activeTrace),
		byID:    make(map[string]*Trace),
	}
}

// SetSampling keeps 1-in-n traces (head sampling, decided when the root
// span starts). ForceKeep overrides it per trace. n <= 1 keeps all.
func (r *SpanRecorder) SetSampling(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if n < 1 {
		n = 1
	}
	r.sampleN = n
	r.mu.Unlock()
}

// SetRingCap bounds the finished-trace ring (minimum 1).
func (r *SpanRecorder) SetRingCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if n < 1 {
		n = 1
	}
	r.ringCap = n
	for len(r.recent) > r.ringCap {
		r.evictLocked()
	}
	r.mu.Unlock()
}

// AttachMetrics exposes the recorder's accounting on a registry:
// obs.spans.dropped (sampled-out or abandoned spans) and
// obs.spans.recorded (spans kept in the ring / streamed).
func (r *SpanRecorder) AttachMetrics(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	r.droppedC = reg.Counter("obs.spans.dropped")
	r.recordedC = reg.Counter("obs.spans.recorded")
	r.mu.Unlock()
}

// StreamJSONL invokes fn with every kept trace as it completes; the
// CLI uses it to append span JSONL to a file as the campaign runs.
// fn runs on the goroutine that ends the trace's root span.
func (r *SpanRecorder) StreamJSONL(fn func(Trace)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// StartRoot opens a new trace with a root span of the given name.
func (r *SpanRecorder) StartRoot(name string) *Span {
	if r == nil {
		return nil
	}
	traceID := newSpanID()
	r.mu.Lock()
	r.headN++
	sampled := r.sampleN <= 1 || (r.headN-1)%uint64(r.sampleN) == 0
	r.active[traceID] = &activeTrace{sampled: sampled, open: 1}
	r.mu.Unlock()
	return &Span{rec: r, data: SpanRecord{
		TraceID: traceID,
		SpanID:  newSpanID(),
		Name:    name,
		StartNS: time.Now().UnixNano(),
	}}
}

// StartSpan opens a child span under parent. An invalid parent starts a
// new root trace instead. A parent from another process (the NoW wire)
// opens a remote trace buffer: its spans are exported with TakeTrace
// rather than completed locally.
func (r *SpanRecorder) StartSpan(name string, parent SpanContext) *Span {
	if r == nil {
		return nil
	}
	if !parent.Valid() {
		sp := r.StartRoot(name)
		return sp
	}
	r.mu.Lock()
	at := r.active[parent.TraceID]
	if at == nil {
		// Remote parent: buffer spans for TakeTrace, never sample out
		// locally — the keep/drop decision belongs to the root's owner.
		at = &activeTrace{sampled: true, remote: true}
		r.active[parent.TraceID] = at
	}
	at.open++
	r.mu.Unlock()
	return &Span{rec: r, data: SpanRecord{
		TraceID:  parent.TraceID,
		SpanID:   newSpanID(),
		ParentID: parent.SpanID,
		Name:     name,
		StartNS:  time.Now().UnixNano(),
	}}
}

// AddSpan records a fully-formed span (already ended) into its trace.
// The simulator uses it to emit retrospective phase slices; ImportSpans
// uses it for worker records. It does not affect trace completion.
func (r *SpanRecorder) AddSpan(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if at := r.active[rec.TraceID]; at != nil {
		at.spans = append(at.spans, rec)
		r.mu.Unlock()
		return
	}
	if t := r.byID[rec.TraceID]; t != nil {
		// Late arrival after the trace completed (e.g. a straggler
		// worker result): append in place.
		t.Spans = append(t.Spans, rec)
		r.mu.Unlock()
		return
	}
	r.dropped.Add(1)
	c := r.droppedC
	r.mu.Unlock()
	c.Add(1)
}

// AddChild is AddSpan plus identity: it assigns a fresh span ID under
// parent and fills the trace ID from it.
func (r *SpanRecorder) AddChild(parent SpanContext, rec SpanRecord) {
	if r == nil || !parent.Valid() {
		return
	}
	rec.TraceID = parent.TraceID
	rec.ParentID = parent.SpanID
	rec.SpanID = newSpanID()
	r.AddSpan(rec)
}

// ImportSpans merges span records shipped from another process (a NoW
// worker) into their trace.
func (r *SpanRecorder) ImportSpans(spans []SpanRecord) {
	for _, sp := range spans {
		r.AddSpan(sp)
	}
}

// TakeTrace removes and returns the buffered spans of a trace without
// completing it — the worker-side export before shipping results to the
// master. Open spans (should not happen) are discarded.
func (r *SpanRecorder) TakeTrace(traceID string) []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	at := r.active[traceID]
	if at == nil {
		r.mu.Unlock()
		return nil
	}
	delete(r.active, traceID)
	spans := at.spans
	r.mu.Unlock()
	return spans
}

// Abandon discards an in-flight trace — the master calls it when a
// worker dies mid-experiment so the half-recorded tree is dropped (and
// counted) rather than leaking in the active set forever.
func (r *SpanRecorder) Abandon(traceID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	at := r.active[traceID]
	if at == nil {
		r.mu.Unlock()
		return
	}
	delete(r.active, traceID)
	n := uint64(len(at.spans) + at.open)
	r.dropped.Add(n)
	c := r.droppedC
	r.mu.Unlock()
	c.Add(n)
}

// forceKeep exempts an in-flight trace from sampling.
func (r *SpanRecorder) forceKeep(traceID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if at := r.active[traceID]; at != nil {
		at.forceKeep = true
	}
	r.mu.Unlock()
}

// finish records an ended span. When the last locally-open span of a
// non-remote trace ends (the root, in practice), the trace completes:
// kept traces enter the ring and the JSONL stream, sampled-out traces
// are dropped and counted.
func (r *SpanRecorder) finish(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	at := r.active[rec.TraceID]
	if at == nil {
		// Trace already completed or abandoned; try the ring, else drop.
		if t := r.byID[rec.TraceID]; t != nil {
			t.Spans = append(t.Spans, rec)
			r.mu.Unlock()
			return
		}
		r.dropped.Add(1)
		c := r.droppedC
		r.mu.Unlock()
		c.Add(1)
		return
	}
	at.spans = append(at.spans, rec)
	at.open--
	if at.open > 0 || at.remote {
		// Remote traces never complete locally; they wait for TakeTrace.
		r.mu.Unlock()
		return
	}
	delete(r.active, rec.TraceID)
	if !at.sampled && !at.forceKeep {
		n := uint64(len(at.spans))
		r.dropped.Add(n)
		c := r.droppedC
		r.mu.Unlock()
		c.Add(n)
		return
	}
	t := &Trace{ID: rec.TraceID, Spans: at.spans}
	r.recent = append(r.recent, t)
	r.byID[t.ID] = t
	for len(r.recent) > r.ringCap {
		r.evictLocked()
	}
	rc, sink := r.recordedC, r.sink
	r.mu.Unlock()
	rc.Add(uint64(len(t.Spans)))
	if sink != nil {
		sink(*t)
	}
}

// evictLocked drops the oldest finished trace. Caller holds r.mu.
func (r *SpanRecorder) evictLocked() {
	old := r.recent[0]
	r.recent = r.recent[1:]
	delete(r.byID, old.ID)
}

// TraceByID returns a finished trace from the ring, or nil.
func (r *SpanRecorder) TraceByID(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	t := r.byID[id]
	r.mu.Unlock()
	return t
}

// Traces returns the finished traces, newest first.
func (r *SpanRecorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*Trace, len(r.recent))
	for i, t := range r.recent {
		out[len(out)-1-i] = t
	}
	r.mu.Unlock()
	return out
}

// ActiveTraces reports how many traces are currently in flight.
func (r *SpanRecorder) ActiveTraces() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	n := len(r.active)
	r.mu.Unlock()
	return n
}

// Dropped reports spans discarded by sampling, abandonment, or
// late/orphan arrival.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// newSpanID returns a 16-hex-digit random identifier. A process-wide
// splitmix64 sequence seeded from the clock and PID keeps IDs unique
// across the master and its workers without coordination.
func newSpanID() string {
	return fmt.Sprintf("%016x", splitmix64(idSeq.Add(0x9e3779b97f4a7c15)))
}

var idSeq = func() *atomic.Uint64 {
	var v atomic.Uint64
	v.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
	return &v
}()

func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
