package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format for the
// registry (served at /metrics by obs/httpserv) and a small validator
// for it (used by the CLI's -validate-prom flag and by CI to assert
// the served payload parses).

// promName sanitizes a registry metric name into the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, mapping '.' (the registry's
// namespace separator) and every other invalid rune to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("gemfi_"))
	b.WriteString("gemfi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue renders a sample value (Prometheus accepts Go float syntax
// plus +Inf/-Inf/NaN).
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): every counter as a counter family, gauges
// and pull-collectors as gauges, and histograms as cumulative
// le-bucket families with _sum and _count. Output is deterministic
// (same ordering guarantees as Snapshot). A nil registry writes
// nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, m := range r.Snapshot() {
		name := promName(m.Name)
		switch m.Kind {
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum uint64
			if m.Hist != nil {
				for i, b := range m.Hist.Buckets {
					cum += b
					// OpenMetrics-style exemplar suffix: a bucket with a
					// recorded sample trace ID links to that span tree.
					ex := ""
					if i < len(m.Hist.Exemplars) && m.Hist.Exemplars[i] != "" {
						ex = fmt.Sprintf(" # {trace_id=%q} %s",
							m.Hist.Exemplars[i], promValue(m.Hist.BucketHi[i]))
					}
					if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n",
						name, promValue(m.Hist.BucketHi[i]), cum, ex); err != nil {
						return err
					}
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promValue(m.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, m.Count); err != nil {
				return err
			}
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n",
				name, name, promValue(m.Value)); err != nil {
				return err
			}
		default: // gauge, func
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
				name, name, promValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

var (
	// The optional trailing group accepts an OpenMetrics exemplar
	// (" # {label=\"v\"} value"), which WriteProm emits on histogram
	// bucket lines carrying a sample trace ID.
	promSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*,?\})?\s+(\S+)(\s+-?\d+)?( # \{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\} \S+( \d+(\.\d+)?)?)?\s*$`)
	promTypeRe = regexp.MustCompile(
		`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// ValidateProm checks a Prometheus text exposition stream: sample
// lines must match the exposition grammar with parseable values, and
// any family declared with "# TYPE" may be declared only once. It
// returns the number of sample lines; the error identifies the first
// offending physical line. This is the checker CI runs against a live
// /metrics scrape.
func ValidateProm(r io.Reader) (int, error) {
	types := make(map[string]string)
	samples := 0
	_, err := ScanLines(r, 4<<20, func(lineNo int, raw []byte) error {
		line := string(raw)
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				mt := promTypeRe.FindStringSubmatch(line)
				if mt == nil {
					return fmt.Errorf("prom: line %d: malformed TYPE line %q", lineNo, line)
				}
				if _, dup := types[mt[1]]; dup {
					return fmt.Errorf("prom: line %d: duplicate TYPE for family %q", lineNo, mt[1])
				}
				types[mt[1]] = mt[2]
			}
			// # HELP and plain comments pass through.
			return nil
		}
		ms := promSampleRe.FindStringSubmatch(line)
		if ms == nil {
			return fmt.Errorf("prom: line %d: malformed sample line %q", lineNo, line)
		}
		val := ms[3]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("prom: line %d: bad value %q: %v", lineNo, val, err)
			}
		}
		samples++
		return nil
	})
	if err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("prom: no samples found")
	}
	return samples, nil
}
