package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Ph: PhaseInstant, Cat: CatSim, Name: "x"})
	tr.Instant(CatFI, "y", 0, nil)
	end := tr.Span(CatSim, "z", 0)
	end(nil)
	if tr.Events() != nil {
		t.Error("nil tracer buffered events")
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil flush: %v", err)
	}
}

func TestTracerJSONLStreamValidates(t *testing.T) {
	tr := NewTracer()
	var sink bytes.Buffer
	tr.StreamJSONL(&sink)

	tr.Instant(CatFI, "fault.injected", 1234, map[string]any{"loc": "exec"})
	end := tr.Span(CatSim, "run", 0)
	end(map[string]any{"exit": 0})
	tr.CounterSample(CatNoW, "queue.depth", 0, 17)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	n, err := ValidateJSONL(&sink)
	if err != nil {
		t.Fatalf("stream does not validate: %v", err)
	}
	if n != 3 {
		t.Errorf("validated %d events, want 3", n)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	tr.Instant(CatFI, "fault.armed", 0, map[string]any{"loc": "IntRegisterFile"})
	tr.Instant(CatFI, "fault.injected", 99, nil)
	end := tr.Span(CatCampaign, "experiment", 2)
	end(map[string]any{"outcome": "SDC"})

	var out bytes.Buffer
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, out.String())
	}
	// metadata + 3 events
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d, want 4", len(doc.TraceEvents))
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e["name"].(string)] = true
	}
	for _, want := range []string{"process_name", "fault.armed", "fault.injected", "experiment"} {
		if !names[want] {
			t.Errorf("missing event %q in chrome trace", want)
		}
	}
	// The sim tick must survive into args.
	if !strings.Contains(out.String(), `"tick":99`) {
		t.Error("tick not folded into chrome trace args")
	}
}

func TestValidateJSONLRejectsBadEvents(t *testing.T) {
	cases := []struct{ name, line string }{
		{"garbage", "not json"},
		{"bad phase", `{"ph":"Q","cat":"sim","name":"x"}`},
		{"empty name", `{"ph":"i","cat":"sim","name":""}`},
		{"empty cat", `{"ph":"i","cat":"","name":"x"}`},
		{"negative ts", `{"ph":"i","cat":"sim","name":"x","ts":-1}`},
		{"dur on instant", `{"ph":"i","cat":"sim","name":"x","dur":5}`},
	}
	for _, tc := range cases {
		if _, err := ValidateJSONL(strings.NewReader(tc.line)); err == nil {
			t.Errorf("%s: validated but should not", tc.name)
		}
	}
	if _, err := ValidateJSONL(strings.NewReader("")); err == nil {
		t.Error("empty trace validated")
	}
	if n, err := ValidateJSONL(strings.NewReader(`{"ph":"X","cat":"sim","name":"run","dur":5}` + "\n")); err != nil || n != 1 {
		t.Errorf("valid complete event rejected: n=%d err=%v", n, err)
	}
}

func TestSpanDuration(t *testing.T) {
	tr := NewTracer()
	end := tr.Span(CatSim, "run", 1)
	end(nil)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	e := evs[0]
	if e.Ph != PhaseComplete || e.TID != 1 || e.Dur < 0 {
		t.Errorf("span event = %+v", e)
	}
}
