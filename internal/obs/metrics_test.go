package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %g", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram count = %d", s.Count)
	}
	r.RegisterFunc("f", func() float64 { return 1 })
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v", snap)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu.insts")
	c.Add(41)
	c.Inc()
	if r.Counter("cpu.insts") != c {
		t.Error("counter lookup is not idempotent")
	}
	r.Gauge("queue.depth").Set(7)
	h := r.Histogram("exp.duration_us")
	h.Observe(100)
	h.Observe(300)
	r.RegisterFunc("cache.hits", func() float64 { return 12 })

	byName := map[string]Metric{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m
	}
	if m := byName["cpu.insts"]; m.Value != 42 || m.Kind != "counter" {
		t.Errorf("cpu.insts = %+v", m)
	}
	if m := byName["queue.depth"]; m.Value != 7 || m.Kind != "gauge" {
		t.Errorf("queue.depth = %+v", m)
	}
	if m := byName["exp.duration_us"]; m.Count != 2 || m.Mean != 200 || m.Min != 100 || m.Max != 300 {
		t.Errorf("exp.duration_us = %+v", m)
	}
	if m := byName["cache.hits"]; m.Value != 12 || m.Kind != "func" {
		t.Errorf("cache.hits = %+v", m)
	}

	// Snapshot is sorted by name.
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(float64(j))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if s := r.Histogram("h").Snapshot(); s.Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Count)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Histogram("b.hist").Observe(2)
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "a.count") || !strings.Contains(text.String(), "b.hist") {
		t.Errorf("text dump missing rows:\n%s", text.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var rows []Metric
	if err := json.Unmarshal(js.Bytes(), &rows); err != nil {
		t.Fatalf("JSON dump not parseable: %v\n%s", err, js.String())
	}
	if len(rows) != 2 {
		t.Errorf("JSON rows = %d", len(rows))
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	h.Observe(-3) // clamps to 0
	s := h.Snapshot()
	if s.Count != 4 || s.Min != 0 || s.Max != 5 {
		t.Errorf("snapshot = %+v", s)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != 4 {
		t.Errorf("bucket total = %d", total)
	}
}
