// Span exports: JSONL (with schema validator), Perfetto/Chrome
// catapult JSON with a track per worker, and a human text timeline.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTraceJSONL writes one trace's spans as JSONL, one SpanRecord per
// line — the OTLP-ish interchange format ValidateSpansJSONL checks.
func WriteTraceJSONL(w io.Writer, t Trace) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpansJSONL writes every finished trace in the recorder's ring as
// span JSONL, oldest trace first.
func (r *SpanRecorder) WriteSpansJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	traces := r.Traces()
	for i := len(traces) - 1; i >= 0; i-- { // Traces() is newest-first
		if err := WriteTraceJSONL(w, *traces[i]); err != nil {
			return err
		}
	}
	return nil
}

// ValidateSpanRecord checks one span record against the schema:
// identity present, a name, and a non-negative wall-clock interval.
func ValidateSpanRecord(sp SpanRecord) error {
	if sp.TraceID == "" {
		return fmt.Errorf("span %q: missing traceId", sp.Name)
	}
	if sp.SpanID == "" {
		return fmt.Errorf("span %q: missing spanId", sp.Name)
	}
	if sp.Name == "" {
		return fmt.Errorf("span %s/%s: missing name", sp.TraceID, sp.SpanID)
	}
	if sp.StartNS == 0 {
		return fmt.Errorf("span %q: missing startUnixNano", sp.Name)
	}
	if sp.EndNS < sp.StartNS {
		return fmt.Errorf("span %q: endUnixNano %d before startUnixNano %d", sp.Name, sp.EndNS, sp.StartNS)
	}
	if sp.EndTick < sp.StartTick {
		return fmt.Errorf("span %q: endTick %d before startTick %d", sp.Name, sp.EndTick, sp.StartTick)
	}
	for _, ev := range sp.Events {
		if ev.Name == "" {
			return fmt.Errorf("span %q: event with missing name", sp.Name)
		}
	}
	return nil
}

// ValidateSpansJSONL reads a span JSONL stream, validates every line,
// and additionally checks referential integrity: every parentSpanId
// must resolve to a span of the same trace, span IDs must be unique,
// and every trace must have exactly one root. Returns the number of
// spans validated; the error identifies the first offending physical
// line.
func ValidateSpansJSONL(r io.Reader) (int, error) {
	type spanKey struct{ trace, span string }
	seen := make(map[spanKey]bool)
	roots := make(map[string]int)
	parents := make(map[spanKey]spanKey) // child -> parent, checked after the scan
	n, err := ScanLines(r, maxLineBytes, func(lineNo int, raw []byte) error {
		var sp SpanRecord
		if err := json.Unmarshal(raw, &sp); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := ValidateSpanRecord(sp); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		k := spanKey{sp.TraceID, sp.SpanID}
		if seen[k] {
			return fmt.Errorf("line %d: duplicate span id %s in trace %s", lineNo, sp.SpanID, sp.TraceID)
		}
		seen[k] = true
		if sp.ParentID == "" {
			roots[sp.TraceID]++
			if roots[sp.TraceID] > 1 {
				return fmt.Errorf("line %d: trace %s has more than one root span", lineNo, sp.TraceID)
			}
		} else {
			parents[k] = spanKey{sp.TraceID, sp.ParentID}
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	for child, parent := range parents {
		if !seen[parent] {
			return n, fmt.Errorf("span %s in trace %s: parentSpanId %s not found in trace",
				child.span, child.trace, parent.span)
		}
	}
	return n, nil
}

const maxLineBytes = 4 << 20

// WriteSpansChromeTrace writes the recorder's finished traces in the
// Chrome trace_event (catapult) JSON array format that Perfetto and
// chrome://tracing load. Layout: one pid per track (worker/slot), with
// spans as complete ("X") events and span events as instants; args
// carry the trace/span IDs, ticks, status, and attributes so a slice
// click shows the full record.
func (r *SpanRecorder) WriteSpansChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	traces := r.Traces()
	// Assign stable pids to tracks, in first-seen order with "" last.
	trackPID := map[string]int{}
	var tracks []string
	track := func(sp *SpanRecord) string {
		if sp.Track != "" {
			return sp.Track
		}
		return "main"
	}
	for i := len(traces) - 1; i >= 0; i-- {
		for j := range traces[i].Spans {
			tr := track(&traces[i].Spans[j])
			if _, ok := trackPID[tr]; !ok {
				trackPID[tr] = len(tracks) + 1
				tracks = append(tracks, tr)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(v map[string]any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		enc.SetEscapeHTML(false)
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for _, tr := range tracks {
		if err := emit(map[string]any{
			"ph": "M", "pid": trackPID[tr], "tid": 0, "name": "process_name",
			"args": map[string]any{"name": tr},
		}); err != nil {
			return err
		}
	}
	// tids separate traces inside a track so overlapping experiments on
	// the same worker do not render as nested slices.
	tidByTrace := map[string]int{}
	for i := len(traces) - 1; i >= 0; i-- {
		t := traces[i]
		if _, ok := tidByTrace[t.ID]; !ok {
			tidByTrace[t.ID] = len(tidByTrace)%32 + 1
		}
		for j := range t.Spans {
			sp := &t.Spans[j]
			pid := trackPID[track(sp)]
			tid := tidByTrace[t.ID]
			args := map[string]any{
				"traceId": sp.TraceID,
				"spanId":  sp.SpanID,
			}
			if sp.ParentID != "" {
				args["parentSpanId"] = sp.ParentID
			}
			if sp.Status != "" {
				args["status"] = sp.Status
			}
			if sp.EndTick > sp.StartTick {
				args["startTick"] = sp.StartTick
				args["endTick"] = sp.EndTick
			}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			if err := emit(map[string]any{
				"ph": "X", "pid": pid, "tid": tid, "name": sp.Name, "cat": "span",
				"ts":   float64(sp.StartNS) / 1e3,
				"dur":  float64(sp.EndNS-sp.StartNS) / 1e3,
				"args": args,
			}); err != nil {
				return err
			}
			for _, ev := range sp.Events {
				evArgs := map[string]any{"spanId": sp.SpanID}
				if ev.Tick != 0 {
					evArgs["tick"] = ev.Tick
				}
				for k, v := range ev.Attrs {
					evArgs[k] = v
				}
				if err := emit(map[string]any{
					"ph": "i", "pid": pid, "tid": tid, "name": ev.Name, "cat": "span",
					"ts": float64(ev.TS) / 1e3, "s": "t", "args": evArgs,
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteText renders the trace as an indented human-readable timeline:
// each span with its offset from the trace start, duration, track,
// status, ticks, and events, children nested under parents.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil || len(t.Spans) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	root := t.Root()
	t0 := root.StartNS
	children := map[string][]*SpanRecord{}
	for i := range t.Spans {
		sp := &t.Spans[i]
		if sp == root {
			continue
		}
		children[sp.ParentID] = append(children[sp.ParentID], sp)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartNS < kids[j].StartNS })
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s\n", t.ID)
	var walk func(sp *SpanRecord, depth int)
	walk = func(sp *SpanRecord, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(bw, "%s%-24s %10s  +%s", indent, sp.Name,
			fmtDur(sp.EndNS-sp.StartNS), fmtDur(sp.StartNS-t0))
		if sp.Track != "" {
			fmt.Fprintf(bw, "  [%s]", sp.Track)
		}
		if sp.EndTick > sp.StartTick {
			fmt.Fprintf(bw, "  ticks %d..%d", sp.StartTick, sp.EndTick)
		}
		if sp.Status != "" && sp.Status != "ok" {
			fmt.Fprintf(bw, "  !%s", sp.Status)
		}
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprint(bw, "  {")
			for i, k := range keys {
				if i > 0 {
					fmt.Fprint(bw, " ")
				}
				fmt.Fprintf(bw, "%s=%v", k, sp.Attrs[k])
			}
			fmt.Fprint(bw, "}")
		}
		fmt.Fprintln(bw)
		for _, ev := range sp.Events {
			fmt.Fprintf(bw, "%s  · %-22s %10s  +%s", indent, ev.Name, "", fmtDur(ev.TS-t0))
			if ev.Tick != 0 {
				fmt.Fprintf(bw, "  tick %d", ev.Tick)
			}
			if len(ev.Attrs) > 0 {
				fmt.Fprintf(bw, "  %v", ev.Attrs)
			}
			fmt.Fprintln(bw)
		}
		for _, kid := range children[sp.SpanID] {
			walk(kid, depth+1)
		}
	}
	walk(root, 0)
	// Orphans (parent missing, e.g. a partial import) print flat at the end.
	printed := map[string]bool{}
	var mark func(sp *SpanRecord)
	mark = func(sp *SpanRecord) {
		printed[sp.SpanID] = true
		for _, kid := range children[sp.SpanID] {
			mark(kid)
		}
	}
	mark(root)
	for i := range t.Spans {
		sp := &t.Spans[i]
		if !printed[sp.SpanID] {
			fmt.Fprintf(bw, "?  %-24s %10s  +%s (orphan)\n", sp.Name,
				fmtDur(sp.EndNS-sp.StartNS), fmtDur(sp.StartNS-t0))
		}
	}
	return bw.Flush()
}

func fmtDur(ns int64) string {
	switch {
	case ns < 0:
		return fmt.Sprintf("%dns", ns)
	case ns < 10_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 10_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 10_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
