// Shared line reader for the JSONL/text validators. Every validator in
// this package (events, spans, Prometheus text) and the CLI's
// -validate-* flags used to carry its own scanner loop with subtly
// different line accounting — record counts vs physical lines, torn
// tails reported without a position. ScanLines is the single
// implementation: physical 1-based line numbers, blank lines skipped,
// oversized or torn-tail lines reported at the line they occur on.
package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// ScanLines drives fn over every non-blank line of r, reporting
// physical 1-based line numbers. maxLine bounds the scanner buffer; a
// line past it (the classic torn tail of a crashed writer) fails with
// the line number instead of a bare bufio error. fn's error aborts the
// scan. Returns the number of lines fn accepted.
func ScanLines(r io.Reader, maxLine int, fn func(lineNo int, line []byte) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	lineNo, n := 0, 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if err := fn(lineNo, raw); err != nil {
			return n, err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	return n, nil
}
