package flight

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// commit pushes one synthetic committed instruction into the recorder.
func commit(r *Recorder, seq uint64, pc uint64, in isa.Inst, ports isa.RegPorts, out *cpu.ExecOut, loadVal uint64, a *cpu.Arch) {
	if out == nil {
		out = &cpu.ExecOut{}
	}
	if a == nil {
		a = &cpu.Arch{}
	}
	r.OnCommitInst(seq, pc, in, ports, out, loadVal, seq*2, a)
}

func TestRingWrap(t *testing.T) {
	r := NewRecorder(8)
	for i := uint64(0); i < 20; i++ {
		commit(r, i, 0x1000+4*i, isa.Inst{Raw: isa.Word(i)}, isa.RegPorts{}, nil, 0, nil)
	}
	if got := r.Committed(); got != 20 {
		t.Fatalf("Committed() = %d, want 20", got)
	}
	recs := r.Records()
	if len(recs) != 8 {
		t.Fatalf("Records() kept %d, want ring depth 8", len(recs))
	}
	for i, rec := range recs {
		wantSeq := uint64(12 + i) // oldest surviving commit is #12
		if rec.Seq != wantSeq {
			t.Errorf("record %d: seq %d, want %d (oldest-first unwrap)", i, rec.Seq, wantSeq)
		}
		if rec.PC != 0x1000+4*wantSeq {
			t.Errorf("record %d: pc %#x, want %#x", i, rec.PC, 0x1000+4*wantSeq)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRecorder(16)
	for i := uint64(0); i < 5; i++ {
		commit(r, i, 0x2000+4*i, isa.Inst{}, isa.RegPorts{}, nil, 0, nil)
	}
	recs := r.Records()
	if len(recs) != 5 {
		t.Fatalf("Records() = %d before wrap, want 5", len(recs))
	}
	if recs[0].Seq != 0 || recs[4].Seq != 4 {
		t.Errorf("partial ring out of order: first seq %d last %d", recs[0].Seq, recs[4].Seq)
	}
}

func TestRecordEffects(t *testing.T) {
	r := NewRecorder(8)
	var a cpu.Arch
	a.R[5] = 0xdeadbeef

	// Register write.
	commit(r, 0, 0x100, isa.Inst{}, isa.RegPorts{Dst: 5, DstUsed: true}, nil, 0, &a)
	// Load.
	commit(r, 1, 0x104, isa.Inst{Kind: isa.KindLDQ}, isa.RegPorts{},
		&cpu.ExecOut{EA: 0x8000}, 0x42, &a)
	// Store.
	commit(r, 2, 0x108, isa.Inst{Kind: isa.KindSTQ}, isa.RegPorts{},
		&cpu.ExecOut{EA: 0x8008, StoreVal: 0x77}, 0, &a)
	// Taken branch.
	commit(r, 3, 0x10c, isa.Inst{Kind: isa.KindBEQ}, isa.RegPorts{},
		&cpu.ExecOut{Taken: true, Target: 0x200}, 0, &a)

	recs := r.Records()
	if !recs[0].DstUsed || recs[0].Dst != 5 || recs[0].DstVal != 0xdeadbeef {
		t.Errorf("dst write not captured: %+v", recs[0])
	}
	if !recs[1].Mem || recs[1].Store || recs[1].EA != 0x8000 || recs[1].MemVal != 0x42 {
		t.Errorf("load not captured: %+v", recs[1])
	}
	if !recs[2].Mem || !recs[2].Store || recs[2].EA != 0x8008 || recs[2].MemVal != 0x77 {
		t.Errorf("store not captured: %+v", recs[2])
	}
	if !recs[3].Branch || !recs[3].Taken || recs[3].Target != 0x200 {
		t.Errorf("branch not captured: %+v", recs[3])
	}
}

func TestKeyframes(t *testing.T) {
	r := NewRecorder(256)
	var a cpu.Arch
	for i := uint64(0); i < 1000; i++ {
		a.PC = 0x1000 + 4*i
		commit(r, i, a.PC, isa.Inst{}, isa.RegPorts{}, nil, 0, &a)
	}
	kfs := r.Keyframes()
	if len(kfs) == 0 {
		t.Fatal("no keyframes after 1000 commits")
	}
	if len(kfs) > maxKeyframes {
		t.Fatalf("%d keyframes exceed cap %d", len(kfs), maxKeyframes)
	}
	recs := r.Records()
	oldest, last := recs[0].Seq, recs[len(recs)-1].Seq
	for i, kf := range kfs {
		if kf.Seq > last {
			t.Errorf("keyframe %d seq %d past final record %d", i, kf.Seq, last)
		}
		if i > 0 {
			if kf.Seq <= kfs[i-1].Seq {
				t.Errorf("keyframe %d out of order", i)
			}
			// Only the anchor keyframe may predate the ring window.
			if kf.Seq < oldest {
				t.Errorf("keyframe %d seq %d predates ring window start %d", i, kf.Seq, oldest)
			}
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(8)
	for i := uint64(0); i < 100; i++ {
		commit(r, i, 0x100, isa.Inst{}, isa.RegPorts{}, nil, 0, nil)
	}
	r.OnSquash(100)
	r.Reset()
	if r.Committed() != 0 || r.Squashed() != 0 {
		t.Errorf("Reset left counters: committed %d squashed %d", r.Committed(), r.Squashed())
	}
	if recs := r.Records(); recs != nil {
		t.Errorf("Reset left %d records", len(recs))
	}
	if kfs := r.Keyframes(); kfs != nil {
		t.Errorf("Reset left %d keyframes", len(kfs))
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	// Every method must be a no-op on the nil receiver — this is the
	// disabled path's contract.
	r.OnCommitInst(0, 0, isa.Inst{}, isa.RegPorts{}, &cpu.ExecOut{}, 0, 0, &cpu.Arch{})
	r.OnSquash(0)
	r.Reset()
	if r.Depth() != 0 || r.Committed() != 0 || r.Squashed() != 0 {
		t.Error("nil recorder reports nonzero state")
	}
	if r.Records() != nil || r.Keyframes() != nil {
		t.Error("nil recorder returns contents")
	}
}

// buildDump runs a small synthetic experiment and dumps it as a crashed
// post-mortem with a trap appended.
func buildDump(t *testing.T) *Postmortem {
	t.Helper()
	r := NewRecorder(16)
	for i := uint64(0); i < 100; i++ {
		commit(r, i, 0x1000+4*i, isa.Inst{}, isa.RegPorts{}, nil, 0, nil)
	}
	pm := &Postmortem{
		ExpID: 7, Outcome: "crashed", CrashCause: "unaligned access",
		Fault: "r5@42", InjPC: 0x1000 + 4*90, InjPCValid: true,
		Depth: r.Depth(), Committed: r.Committed(), Squashed: r.Squashed(),
		Records: r.Records(), Keyframes: r.Keyframes(),
	}
	pm.AppendTrap(0xbad0, 0)
	return pm
}

func TestPostmortemRoundTrip(t *testing.T) {
	pm := buildDump(t)
	if pm.FinalPC() != 0xbad0 {
		t.Fatalf("FinalPC() = %#x, want the trap pc %#x", pm.FinalPC(), 0xbad0)
	}
	var buf bytes.Buffer
	if err := pm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ValidatePostmortemJSON(&buf)
	if err != nil {
		t.Fatalf("WriteJSON output rejected by validator: %v", err)
	}
	if got.FinalPC() != pm.FinalPC() || got.Committed != pm.Committed || len(got.Records) != len(pm.Records) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestPostmortemText(t *testing.T) {
	pm := buildDump(t)
	var buf bytes.Buffer
	if err := pm.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"post-mortem: experiment 7", "<== TRAP (unaligned access)", "<== injection pc", "outcome: crashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestValidatePostmortemRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown outcome", `{"expId":1,"outcome":"exploded","depth":8,"committed":1,"records":[{"seq":1,"tick":1,"pc":16,"raw":0}]}`},
		{"zero depth", `{"expId":1,"outcome":"crashed","depth":0,"committed":1,"records":[{"seq":1,"tick":1,"pc":16,"raw":0}]}`},
		{"no records", `{"expId":1,"outcome":"crashed","depth":8,"committed":0,"records":[]}`},
		{"too many records", `{"expId":1,"outcome":"crashed","depth":1,"committed":3,"records":[{"seq":1,"tick":1,"pc":16,"raw":0},{"seq":2,"tick":1,"pc":20,"raw":0},{"seq":3,"tick":1,"pc":24,"raw":0}]}`},
		{"seq not increasing", `{"expId":1,"outcome":"crashed","depth":8,"committed":2,"records":[{"seq":2,"tick":1,"pc":16,"raw":0},{"seq":2,"tick":2,"pc":20,"raw":0}]}`},
		{"tick decreasing", `{"expId":1,"outcome":"crashed","depth":8,"committed":2,"records":[{"seq":1,"tick":5,"pc":16,"raw":0},{"seq":2,"tick":4,"pc":20,"raw":0}]}`},
		{"trap not last", `{"expId":1,"outcome":"crashed","depth":8,"committed":1,"crashPc":16,"records":[{"seq":1,"tick":1,"pc":16,"raw":0,"trap":true},{"seq":2,"tick":2,"pc":20,"raw":0}]}`},
		{"trap pc mismatch", `{"expId":1,"outcome":"crashed","depth":8,"committed":1,"crashPc":99,"records":[{"seq":1,"tick":1,"pc":16,"raw":0},{"seq":2,"tick":2,"pc":20,"raw":0,"trap":true}]}`},
		{"committed undercount", `{"expId":1,"outcome":"crashed","depth":8,"committed":1,"records":[{"seq":1,"tick":1,"pc":16,"raw":0},{"seq":2,"tick":2,"pc":20,"raw":0}]}`},
		{"keyframe past records", `{"expId":1,"outcome":"crashed","depth":8,"committed":1,"records":[{"seq":1,"tick":1,"pc":16,"raw":0}],"keyframes":[{"seq":9,"tick":9,"pc":16,"r":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"f":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}]}`},
		{"unknown field", `{"expId":1,"outcome":"crashed","depth":8,"committed":1,"bogus":true,"records":[{"seq":1,"tick":1,"pc":16,"raw":0}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ValidatePostmortemJSON(strings.NewReader(tc.json)); err == nil {
				t.Errorf("validator accepted %s", tc.name)
			}
		})
	}
}
