// Package flight is the black-box flight recorder: a fixed-size ring of
// the last K committed instructions per experiment, cheap enough to
// leave on for whole campaigns and dumped retroactively only for the
// interesting verdicts (crash, reached-output SDC, reached-state). It
// is the in-process stand-in for gem5's --debug-flags=Exec tracing that
// GemFI §IV leans on to explain crash outcomes — but bounded, so a
// million-experiment campaign records everything and keeps almost
// nothing.
//
// The Recorder implements cpu.FlightSink and hooks the shared commit
// epilogue of all three CPU models; a nil recorder costs one untaken
// branch per commit (the Core.Flight nil guard), and the atomic model's
// fast path is re-selected whenever the sink is absent. Each record is
// compact — sequence number, tick, PC, raw word, the destination
// register write, load/store address+value, branch outcome — with
// periodic architectural keyframes so a post-mortem can re-anchor full
// register state inside the ring window.
package flight

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// DefaultDepth is the ring size when none is configured: enough to see
// the whole propagation tail of a typical crash, small enough that a
// dump rides inside a campaign result message.
const DefaultDepth = 256

const (
	// keyframeEvery is the commit interval between architectural
	// keyframes.
	keyframeEvery = 64
	// maxKeyframes bounds the keyframe FIFO; with the default depth the
	// kept keyframes always span the ring window.
	maxKeyframes = 8
)

// Record is one committed instruction as kept in the ring: the identity
// (seq, tick, pc, raw word) plus the architecturally observable effects
// — destination register write, memory access, branch outcome.
type Record struct {
	Seq  uint64 `json:"seq"`
	Tick uint64 `json:"tick"`
	PC   uint64 `json:"pc"`
	Raw  uint32 `json:"raw"`

	// Destination register write (post-writeback value; FP values are
	// stored as IEEE-754 bits so NaNs survive JSON).
	DstUsed bool   `json:"dstUsed,omitempty"`
	DstFP   bool   `json:"dstFp,omitempty"`
	Dst     uint8  `json:"dst,omitempty"`
	DstVal  uint64 `json:"dstVal,omitempty"`

	// Memory access (loads carry the loaded value, stores the stored).
	Mem    bool   `json:"mem,omitempty"`
	Store  bool   `json:"store,omitempty"`
	EA     uint64 `json:"ea,omitempty"`
	MemVal uint64 `json:"memVal,omitempty"`

	// Branch outcome.
	Branch bool   `json:"branch,omitempty"`
	Taken  bool   `json:"taken,omitempty"`
	Target uint64 `json:"target,omitempty"`

	// Trap marks the terminal faulting instruction of a crashed run. It
	// never committed — the dump appends it so the timeline ends at the
	// crash PC instead of one instruction short of it.
	Trap bool `json:"trap,omitempty"`
}

// Disassemble renders the record's instruction in assembler syntax.
func (r *Record) Disassemble() string {
	return isa.Decode(isa.Word(r.Raw)).Disassemble(r.PC)
}

// Keyframe is a periodic full architectural snapshot, letting a
// post-mortem reconstruct every register value inside the ring window
// by replaying forward from the nearest keyframe. FP registers are
// IEEE-754 bits (JSON-safe for NaN).
type Keyframe struct {
	Seq  uint64     `json:"seq"` // seq of the commit the keyframe follows
	Tick uint64     `json:"tick"`
	PC   uint64     `json:"pc"`
	PCBB uint64     `json:"pcbb,omitempty"`
	R    [32]uint64 `json:"r"`
	F    [32]uint64 `json:"f"`
}

// Recorder is the per-runner flight recorder. It is not safe for
// concurrent use — like the taint tracker, one recorder serves one
// simulator — but every method is nil-receiver safe, so disabled-path
// callers never branch on "is flight recording on".
type Recorder struct {
	ring     []Record
	n        uint64 // commits observed since Reset
	squashed uint64
	keys     []Keyframe
}

// NewRecorder builds a recorder keeping the last depth committed
// instructions (depth <= 0 selects DefaultDepth).
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Recorder{ring: make([]Record, depth)}
}

// Depth returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Committed returns the number of commits observed since the last
// Reset.
func (r *Recorder) Committed() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Squashed returns the number of squashed speculative instructions
// observed since the last Reset.
func (r *Recorder) Squashed() uint64 {
	if r == nil {
		return 0
	}
	return r.squashed
}

// OnCommitInst implements cpu.FlightSink: append one record to the
// ring, overwriting the oldest, and cut a keyframe on the interval.
func (r *Recorder) OnCommitInst(seq, pc uint64, in isa.Inst, ports isa.RegPorts, out *cpu.ExecOut, loadVal uint64, tick uint64, a *cpu.Arch) {
	if r == nil {
		return
	}
	rec := &r.ring[r.n%uint64(len(r.ring))]
	*rec = Record{Seq: seq, Tick: tick, PC: pc, Raw: uint32(in.Raw)}
	if ports.DstUsed {
		rec.DstUsed, rec.DstFP, rec.Dst = true, ports.DstFP, uint8(ports.Dst)
		if ports.DstFP {
			rec.DstVal = math.Float64bits(a.ReadFReg(ports.Dst))
		} else {
			rec.DstVal = a.ReadReg(ports.Dst)
		}
	}
	if in.Kind.IsMem() {
		rec.Mem, rec.EA = true, out.EA
		if in.Kind.IsStore() {
			rec.Store, rec.MemVal = true, out.StoreVal
		} else {
			rec.MemVal = loadVal
		}
	}
	if in.Kind.IsBranch() {
		rec.Branch, rec.Taken, rec.Target = true, out.Taken, out.Target
	}
	r.n++
	if r.n%keyframeEvery == 0 {
		kf := Keyframe{Seq: seq, Tick: tick, PC: a.PC, PCBB: a.PCBB, R: a.R}
		for i, f := range a.F {
			kf.F[i] = math.Float64bits(f)
		}
		r.keys = append(r.keys, kf)
		if len(r.keys) > maxKeyframes {
			copy(r.keys, r.keys[1:])
			r.keys = r.keys[:maxKeyframes]
		}
	}
}

// OnSquash implements cpu.FlightSink. Squashed instructions never
// committed and never entered the ring; only the count is kept (a
// post-mortem of a pipelined run reports it).
func (r *Recorder) OnSquash(seq uint64) {
	if r == nil {
		return
	}
	r.squashed++
}

// Reset clears the ring for the next experiment — the campaign runner
// calls it from the restore/fork path, alongside the taint tracker and
// profiler resets.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.n = 0
	r.squashed = 0
	r.keys = r.keys[:0]
}

// Records returns the ring contents in commit order, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil || r.n == 0 {
		return nil
	}
	d := uint64(len(r.ring))
	if r.n <= d {
		out := make([]Record, r.n)
		copy(out, r.ring[:r.n])
		return out
	}
	out := make([]Record, d)
	start := r.n % d
	copy(out, r.ring[start:])
	copy(out[d-start:], r.ring[:start])
	return out
}

// Keyframes returns the kept keyframes, oldest first. Keyframes older
// than the oldest ring record are pruned — they anchor nothing.
func (r *Recorder) Keyframes() []Keyframe {
	if r == nil || len(r.keys) == 0 {
		return nil
	}
	out := append([]Keyframe(nil), r.keys...)
	if recs := r.Records(); len(recs) > 0 {
		oldest := recs[0].Seq
		for len(out) > 1 && out[0].Seq < oldest {
			out = out[1:]
		}
	}
	return out
}

// static interface check
var _ cpu.FlightSink = (*Recorder)(nil)
