// Post-mortem artifact: the retroactive dump of one interesting
// experiment — the flight-recorder ring spliced with the injection
// point, the taint first-event indexes, and the span phase boundaries,
// symbolized into a disassembled timeline. JSON is the interchange form
// (ValidatePostmortemJSON is its schema checker); WriteText renders the
// human timeline served by /postmortem/{id}?format=text.
package flight

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Phase is one span phase boundary of the experiment's timeline
// (restore/fork, fast-forward, fi-window, classify, ...), carried into
// the dump so ring records can be placed inside the experiment's
// phases.
type Phase struct {
	Name      string `json:"name"`
	StartNS   int64  `json:"startUnixNano,omitempty"`
	EndNS     int64  `json:"endUnixNano,omitempty"`
	StartTick uint64 `json:"startTick,omitempty"`
	EndTick   uint64 `json:"endTick,omitempty"`
}

// TaintFirsts carries the taint tracker's first-event indexes
// (committed-instruction indexes since experiment start; -1 = never)
// so the dump explains where corruption first touched memory, control
// flow and output.
type TaintFirsts struct {
	FirstLoad   int64 `json:"firstLoad"`
	FirstStore  int64 `json:"firstStore"`
	FirstBranch int64 `json:"firstBranch"`
	FirstOutput int64 `json:"firstOutput"`
}

// Postmortem is the black-box dump of one experiment: identity and
// verdict, the injection point, the terminal crash/divergence point,
// spliced observability context, and the final-K instruction records
// with their keyframes.
type Postmortem struct {
	ExpID   int    `json:"expId"`
	TraceID string `json:"traceId,omitempty"`
	Outcome string `json:"outcome"`
	Verdict string `json:"verdict,omitempty"` // taint verdict, when tracked

	// Injection point (mirrors Result.InjPC / the experiment's fault).
	Fault      string `json:"fault,omitempty"`
	InjPC      uint64 `json:"injPc,omitempty"`
	InjPCValid bool   `json:"injPcValid,omitempty"`

	// Terminal point of a crashed run: the trap PC and cause. For SDC
	// and reached-state runs CrashPC is absent and the final record is
	// the last committed instruction (the program's halt).
	CrashPC    uint64 `json:"crashPc,omitempty"`
	CrashCause string `json:"crashCause,omitempty"`

	Taint  *TaintFirsts `json:"taint,omitempty"`
	Phases []Phase      `json:"phases,omitempty"`

	Depth     int        `json:"depth"`
	Committed uint64     `json:"committed"` // commits observed over the whole run
	Squashed  uint64     `json:"squashed,omitempty"`
	Records   []Record   `json:"records"`
	Keyframes []Keyframe `json:"keyframes,omitempty"`
}

// FinalPC returns the PC of the dump's final record — the crash PC for
// crashed runs (the appended trap record), the last committed
// instruction otherwise. Zero for an empty dump.
func (p *Postmortem) FinalPC() uint64 {
	if p == nil || len(p.Records) == 0 {
		return 0
	}
	return p.Records[len(p.Records)-1].PC
}

// AppendTrap appends the terminal faulting instruction of a crashed run
// as a trap-marked record, so the timeline's final record carries the
// crash PC. seq/tick continue from the last committed record.
func (p *Postmortem) AppendTrap(pc uint64, raw uint32) {
	var seq, tick uint64
	if n := len(p.Records); n > 0 {
		seq, tick = p.Records[n-1].Seq+1, p.Records[n-1].Tick+1
	}
	p.Records = append(p.Records, Record{Seq: seq, Tick: tick, PC: pc, Raw: raw, Trap: true})
	p.CrashPC = pc
}

// WriteJSON writes the dump as indented JSON (the /postmortem/{id}
// wire form; ValidatePostmortemJSON accepts it).
func (p *Postmortem) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteText renders the symbolized post-mortem timeline: header,
// phase boundaries, then the final-K instructions disassembled with
// their register writes, memory traffic and branch outcomes, keyframes
// interleaved, and the injection / trap points marked.
func (p *Postmortem) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("post-mortem: experiment %d", p.ExpID)
	if p.TraceID != "" {
		bw.printf(" trace %s", p.TraceID)
	}
	bw.printf("\noutcome: %s", p.Outcome)
	if p.Verdict != "" {
		bw.printf(" (taint verdict %s)", p.Verdict)
	}
	bw.printf("\n")
	if p.Fault != "" {
		bw.printf("fault: %s\n", p.Fault)
	}
	if p.InjPCValid {
		bw.printf("injected at pc=%#x\n", p.InjPC)
	}
	if p.CrashCause != "" {
		bw.printf("crash: %s at pc=%#x\n", p.CrashCause, p.CrashPC)
	}
	if p.Taint != nil {
		bw.printf("taint firsts (inst index): load %d  store %d  branch %d  output %d\n",
			p.Taint.FirstLoad, p.Taint.FirstStore, p.Taint.FirstBranch, p.Taint.FirstOutput)
	}
	if len(p.Phases) > 0 {
		bw.printf("phases:\n")
		for _, ph := range p.Phases {
			bw.printf("  %-14s %10.3fms", ph.Name, float64(ph.EndNS-ph.StartNS)/1e6)
			if ph.EndTick > ph.StartTick {
				bw.printf("  ticks %d..%d", ph.StartTick, ph.EndTick)
			}
			bw.printf("\n")
		}
	}
	bw.printf("final %d of %d committed instructions (%d squashed):\n",
		len(p.Records), p.Committed, p.Squashed)

	kf := p.Keyframes
	for i := range p.Records {
		rec := &p.Records[i]
		for len(kf) > 0 && kf[0].Seq < rec.Seq {
			bw.printf("  -- keyframe @%d: pc=%#x\n", kf[0].Seq, kf[0].PC)
			kf = kf[1:]
		}
		bw.printf("  %8d %10d  %#010x  %-32s", rec.Seq, rec.Tick, rec.PC, rec.Disassemble())
		if rec.DstUsed {
			if rec.DstFP {
				bw.printf("  f%d=%#x", rec.Dst, rec.DstVal)
			} else {
				bw.printf("  %s=%#x", isa.Reg(rec.Dst).String(), rec.DstVal)
			}
		}
		if rec.Mem {
			verb := "load"
			if rec.Store {
				verb = "store"
			}
			bw.printf("  %s [%#x]=%#x", verb, rec.EA, rec.MemVal)
		}
		if rec.Branch {
			if rec.Taken {
				bw.printf("  taken ->%#x", rec.Target)
			} else {
				bw.printf("  not-taken")
			}
		}
		if p.InjPCValid && rec.PC == p.InjPC {
			bw.printf("  <== injection pc")
		}
		if rec.Trap {
			bw.printf("  <== TRAP (%s)", p.CrashCause)
		}
		bw.printf("\n")
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// validOutcomes is the schema enumeration for ValidatePostmortemJSON:
// the campaign outcome names a dump may carry. Dumps are only produced
// for the interesting verdicts, but the schema accepts every outcome so
// a future policy change does not invalidate old journals.
var validOutcomes = map[string]bool{
	"crashed": true, "non-propagated": true, "strictly-correct": true,
	"correct": true, "SDC": true,
}

// ValidatePostmortemJSON checks a post-mortem JSON document against the
// schema: a known outcome, a bounded non-empty record list in strictly
// increasing seq order with non-decreasing ticks, at most one trap
// record (which must be last and carry the crash PC), and keyframes
// anchored inside the record window. Returns the parsed dump on
// success.
func ValidatePostmortemJSON(rd io.Reader) (*Postmortem, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var p Postmortem
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("postmortem: %w", err)
	}
	if !validOutcomes[p.Outcome] {
		return nil, fmt.Errorf("postmortem: unknown outcome %q", p.Outcome)
	}
	if p.Depth <= 0 {
		return nil, fmt.Errorf("postmortem: depth %d must be positive", p.Depth)
	}
	if len(p.Records) == 0 {
		return nil, fmt.Errorf("postmortem: no records")
	}
	// The ring holds at most Depth committed records, plus the appended
	// trap record.
	if len(p.Records) > p.Depth+1 {
		return nil, fmt.Errorf("postmortem: %d records exceed depth %d", len(p.Records), p.Depth)
	}
	committed := 0
	for i := range p.Records {
		rec := &p.Records[i]
		if i > 0 {
			prev := &p.Records[i-1]
			if rec.Seq <= prev.Seq {
				return nil, fmt.Errorf("postmortem: record %d: seq %d not after %d", i, rec.Seq, prev.Seq)
			}
			if rec.Tick < prev.Tick {
				return nil, fmt.Errorf("postmortem: record %d: tick %d before %d", i, rec.Tick, prev.Tick)
			}
		}
		if rec.Trap {
			if i != len(p.Records)-1 {
				return nil, fmt.Errorf("postmortem: trap record %d is not last", i)
			}
			if p.CrashPC != rec.PC {
				return nil, fmt.Errorf("postmortem: trap record pc %#x != crashPc %#x", rec.PC, p.CrashPC)
			}
		} else {
			committed++
		}
	}
	if uint64(committed) > p.Committed {
		return nil, fmt.Errorf("postmortem: %d committed records > committed total %d", committed, p.Committed)
	}
	last := p.Records[len(p.Records)-1].Seq
	for i, kf := range p.Keyframes {
		if kf.Seq > last {
			return nil, fmt.Errorf("postmortem: keyframe %d seq %d past final record %d", i, kf.Seq, last)
		}
		if i > 0 && kf.Seq <= p.Keyframes[i-1].Seq {
			return nil, fmt.Errorf("postmortem: keyframe %d out of order", i)
		}
	}
	return &p, nil
}
