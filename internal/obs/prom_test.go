package obs

import (
	"bytes"
	"strings"
	"testing"
)

// promRegistry builds a registry with every instrument kind.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sim.insts").Add(1000)
	r.Gauge("now.master.queue_depth").Set(7)
	r.RegisterFunc("cpu.ticks", func() float64 { return 123.5 })
	h := r.Histogram("campaign.exp.duration_ms")
	for _, v := range []float64{0, 1, 1.5, 3, 9} {
		h.Observe(v)
	}
	return r
}

func TestWritePromValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output does not validate: %v\n%s", err, buf.String())
	}
	// counter + gauge + func + (4 finite buckets + Inf bucket + sum + count)
	if n != 10 {
		t.Errorf("sample count = %d, want 10\n%s", n, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gemfi_sim_insts counter\ngemfi_sim_insts 1000\n",
		"# TYPE gemfi_cpu_ticks gauge\ngemfi_cpu_ticks 123.5\n",
		"gemfi_campaign_exp_duration_ms_bucket{le=\"+Inf\"} 5\n",
		"gemfi_campaign_exp_duration_ms_sum 14.5\n",
		"gemfi_campaign_exp_duration_ms_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	if !strings.Contains(out, "gemfi_campaign_exp_duration_ms_bucket{le=\"1\"} 1\n") ||
		!strings.Contains(out, "gemfi_campaign_exp_duration_ms_bucket{le=\"2\"} 3\n") ||
		!strings.Contains(out, "gemfi_campaign_exp_duration_ms_bucket{le=\"4\"} 4\n") {
		t.Errorf("cumulative buckets wrong:\n%s", out)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	r := promRegistry()
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestValidatePromRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":       "9bad_name 1\n",
		"bad value":      "ok_name notanumber\n",
		"malformed type": "# TYPE bad\nok 1\n",
		"duplicate type": "# TYPE a counter\n# TYPE a counter\na 1\n",
		"empty":          "",
		"no samples":     "# TYPE a counter\n",
	}
	for name, in := range cases {
		if _, err := ValidateProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not:\n%s", name, in)
		}
	}
	good := "# plain comment\n# HELP x helps\n# TYPE x gauge\nx{a=\"b\",c=\"d\"} 1.5 1234\ny +Inf\n"
	if n, err := ValidateProm(strings.NewReader(good)); err != nil || n != 2 {
		t.Errorf("good input: n=%d err=%v", n, err)
	}
}

// TestWriteTextGolden pins the exact text dump — ordering and
// histogram bucket rendering must be deterministic across runs.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(1.25)
	r.RegisterFunc("c.fn", func() float64 { return 9 })
	h := r.Histogram("a.hist")
	for _, v := range []float64{0, 1, 1, 3, 9} {
		h.Observe(v)
	}
	const golden = `a.gauge                                      1.25
a.hist                                       count=5 mean=2.800 min=0.000 max=9.000 sum=14.000
  a.hist::[0,1)                              1
  a.hist::[1,2)                              2
  a.hist::[2,4)                              1
  a.hist::[8,16)                             1
b.count                                      2
c.fn                                         9
`
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != golden {
			t.Fatalf("render %d diverged from golden.\ngot:\n%s\nwant:\n%s", i, buf.String(), golden)
		}
	}
}
