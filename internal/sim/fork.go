package sim

// Fork-server support (GemFI §III.D checkpointing taken in-process, ZOFI's
// fork model): a campaign trunk run freezes copy-on-write ForkPoints as it
// goes, and each experiment forks a worker simulator from the closest
// preceding one in O(dirty pages) instead of replaying the warm-up.

import (
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
)

// CaptureForkPoint freezes the whole machine into a copy-on-write fork
// point: CPU and kernel snapshots by value, memory by freezing the
// private overlay into a shared base (no page copies), and — unlike
// Checkpoint — the fault engine's window bookkeeping, so forks taken
// mid-window time their faults exactly as a full replay would. The trunk
// keeps running afterwards; its next stores copy pages out of the frozen
// base.
func (s *Simulator) CaptureForkPoint() *checkpoint.ForkPoint {
	fp := &checkpoint.ForkPoint{
		Core:   s.Core.Snapshot(),
		Mem:    s.Mem.CowSnapshot(),
		Kernel: s.Kernel.Snapshot(),
	}
	if s.Engine != nil {
		fp.Window = s.Engine.CaptureWindow()
	}
	s.Cfg.Metrics.Counter("sim.fork.snapshots").Inc()
	s.Cfg.Tracer.Instant(obs.CatFork, "fork.snapshot", s.Core.Ticks, map[string]any{
		"insts":        fp.Core.Insts,
		"dirty_pages":  fp.Mem.DirtyPages(),
		"approx_bytes": fp.ApproxBytes(),
	})
	return fp
}

// ForkFrom repoints the simulator at a fork point and arms it with a
// fresh fault list — the fork-server replacement for Restore. Memory
// adopts the frozen pages with an empty private overlay; caches, micro-
// TLBs and predecoded instructions are invalidated rather than cloned
// (cheap and exactly equivalent: they hold no architectural state). When
// the fork point lies inside a fault-injection window the detailed model
// starts immediately — the fast-forward prefix already happened on the
// trunk — otherwise fast-forward is re-armed exactly as after Restore.
func (s *Simulator) ForkFrom(fp *checkpoint.ForkPoint, faults []core.Fault) {
	s.Mem.ForkFrom(fp.Mem)
	s.Core.RestoreSnapshot(fp.Core)
	s.Kernel.Restore(fp.Kernel)
	if s.Hier != nil {
		s.Hier.InvalidateAll()
	}
	if s.Engine != nil {
		s.Engine.ResetWithWindow(faults, fp.Window) // also resets the taint tracker
	} else {
		s.Cfg.Taint.Reset()
	}
	if pr := s.Cfg.Profiler; pr != nil {
		pr.ResetStack() // the forked guest is mid-call-chain
	}
	s.Cfg.Flight.Reset() // nil-safe; the ring belongs to one experiment
	s.Model = s.newModel(s.Cfg.Model)
	s.switched = false
	s.stopRequested = false
	s.interrupted.Store(false)
	if fp.Window.Open() {
		// Mid-window fork: the window-open edge that would end a
		// fast-forward prefix is already behind us, so run the configured
		// model from the first post-fork instruction.
		s.ffActive, s.ffPending = false, false
		s.WindowOpenInsts = fp.Core.Insts - fp.WindowCommits()
	} else {
		s.WindowOpenInsts = 0
		s.armFastForward()
	}
	s.Cfg.Metrics.Counter("sim.fork.children").Inc()
	s.Cfg.Tracer.Instant(obs.CatFork, "fork.child", s.Core.Ticks, map[string]any{
		"insts": fp.Core.Insts, "faults": len(faults), "mid_window": fp.Window.Open(),
	})
}

// RunUntil is Run with an instruction bound: the simulation pauses once
// the core has committed at least insts instructions, returning with
// Paused set and all live state intact so the caller may capture a fork
// point or keep running. On the serial models (atomic, timing) the pause
// lands exactly at insts; the pipelined model may overshoot by the
// commits of its final step. All other stop conditions behave as in Run.
func (s *Simulator) RunUntil(insts uint64) RunResult {
	if s.Model == nil {
		return RunResult{Crashed: true, CrashCause: "no program loaded"}
	}
	if s.Core.Insts >= insts {
		r := s.result(false, false)
		r.Paused = true
		return r
	}
	s.armTranslationLimit(insts)
	endSpan := s.Cfg.Tracer.Span(obs.CatSim, "run.until", 0)
	var steps uint64
	for !s.Core.Stopped && !s.stopRequested {
		if steps&255 == 0 && s.interrupted.Load() {
			s.interrupted.Store(false)
			s.Cfg.Tracer.Instant(obs.CatSim, "run.interrupted", s.Core.Ticks, nil)
			r := s.result(false, false)
			r.Interrupted = true
			endSpan(map[string]any{"outcome": "interrupted"})
			return r
		}
		steps++
		if !s.Model.Step() {
			break
		}
		if s.ffActive && (s.ffPending ||
			(s.Cfg.FastForwardAt > 0 && s.Core.Insts >= s.Cfg.FastForwardAt)) {
			s.endFastForward()
		}
		if s.Core.Insts >= insts {
			r := s.result(false, false)
			r.Paused = true
			endSpan(map[string]any{"outcome": "paused", "insts": r.Insts})
			return r
		}
		if s.Cfg.MaxInsts > 0 && s.Core.Insts >= s.Cfg.MaxInsts {
			s.Cfg.Tracer.Instant(obs.CatSim, "watchdog.hang", s.Core.Ticks,
				map[string]any{"insts": s.Core.Insts})
			endSpan(map[string]any{"outcome": "hang"})
			return s.result(false, true)
		}
		if s.Cfg.SwitchToAtomicOnResolve && !s.switched && s.Engine != nil &&
			s.Cfg.Model == ModelPipelined && s.Engine.AnyFired() && s.Engine.Resolved() {
			s.SwitchModel(ModelAtomic)
		}
	}
	stoppedAtCkpt := s.stopRequested && !s.Core.Stopped
	s.stopRequested = false
	r := s.result(stoppedAtCkpt, false)
	endSpan(map[string]any{
		"outcome": runOutcomeName(r), "insts": r.Insts, "ticks": r.Ticks, "model": r.Model,
	})
	return r
}
