package sim

import (
	"io"
	"strings"

	"testing"

	"repro/internal/core"
	"repro/internal/minic"
)

// compileMC compiles mini-C and loads it into a fresh simulator.
func compileMC(t *testing.T, src string, cfg Config) *Simulator {
	t.Helper()
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTickBasedFaultEndToEnd schedules a fault by simulation ticks
// instead of instructions (the paper's second time base) and checks it
// fires during the run.
func TestTickBasedFaultEndToEnd(t *testing.T) {
	src := `
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 500; i = i + 1) { s = s + i; }
    out[0] = s;
    fi_activate(0);
    return 0;
}`
	for _, model := range []ModelKind{ModelAtomic, ModelPipelined} {
		f := core.Fault{
			Loc: core.LocIntReg, Reg: 9, Behavior: core.BehFlip, Bit: 2,
			Base: core.TimeTick, When: 400, Occ: 1,
		}
		s := compileMC(t, src, Config{Model: model, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 10_000_000})
		r := s.Run()
		if r.Hung {
			t.Fatalf("%s: hung", model)
		}
		if !r.Outcomes[0].Fired {
			t.Errorf("%s: tick-based fault never fired", model)
		}
	}
}

// TestPermanentStuckAtFaultEndToEnd pins a register bit for the whole
// run (occ:all on a register fault re-applies every instruction): a
// stuck-at-1 on the loop accumulator's register forces a wrong sum.
func TestPermanentStuckAtFaultEndToEnd(t *testing.T) {
	src := `
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + 2; }  // s even at every step
    out[0] = s;
    fi_activate(0);
    return 0;
}`
	// Permanent stuck value on s0 (the promoted loop counter): with
	// occ:all the corruption re-applies after every instruction, so the
	// loop exits far from its natural trip count. (A toggling XOR fault
	// can cancel itself on even instruction parity — a SET fault cannot.)
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 9, Behavior: core.BehSet, Value: 1 << 20,
		Base: core.TimeInst, When: 10, Occ: core.PermanentOcc,
	}
	s := compileMC(t, src, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 10_000_000})
	r := s.Run()
	if r.Hung {
		t.Fatal("hung")
	}
	oc := r.Outcomes[0]
	if !oc.Fired || !oc.Propagated {
		t.Fatalf("permanent fault must fire and propagate: %+v", oc)
	}
	if !r.Failed() {
		out, _ := s.ReadMem64(s.Program.MustSymbol("out"))
		if out == 200 {
			t.Error("permanent stuck-value fault left the result clean")
		}
	}
}

// TestThreadTargetedFaultHitsOnlyItsThread runs two FI-enabled threads
// with different ids; a fault targeting thread id 1 must corrupt thread
// 1's output and leave thread 0's alone.
func TestThreadTargetedFaultHitsOnlyItsThread(t *testing.T) {
	src := `
int sums[2];
int done[2];

void worker(int id) {
    fi_activate(1);          // this thread is FI id 1
    int s = 0;
    for (int i = 0; i < 200; i = i + 1) { s = s + 3; }
    sums[1] = s;
    fi_activate(1);
    done[1] = 1;
    thread_exit();
}

int main() {
    fi_checkpoint();
    int tid = spawn(worker, 0);
    fi_activate(0);          // main is FI id 0
    int s = 0;
    for (int i = 0; i < 200; i = i + 1) { s = s + 3; }
    sums[0] = s;
    fi_activate(0);
    join(tid);
    return 0;
}`
	run := func(faults []core.Fault) (uint64, uint64) {
		s := compileMC(t, src, Config{
			Model: ModelAtomic, EnableFI: true, Faults: faults,
			Quantum: 100, MaxInsts: 50_000_000,
		})
		r := s.Run()
		if r.Failed() {
			t.Fatalf("%+v", r)
		}
		base := s.Program.MustSymbol("sums")
		a, _ := s.ReadMem64(base)
		b, _ := s.ReadMem64(base + 8)
		return a, b
	}
	clean0, clean1 := run(nil)
	if clean0 != 600 || clean1 != 600 {
		t.Fatalf("clean sums = %d,%d", clean0, clean1)
	}
	// Permanent corruption of the worker's accumulator register, aimed at
	// FI thread id 1 only. Main uses the same architectural register but
	// must be untouched.
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 9, Behavior: core.BehXor, Value: 1 << 20,
		ThreadID: 1, Base: core.TimeInst, When: 50, Occ: 4,
	}
	f0, f1 := run([]core.Fault{f})
	if f0 != 600 {
		t.Errorf("thread 0 corrupted by a thread-1 fault: %d", f0)
	}
	if f1 == 600 {
		t.Errorf("thread 1 fault did not land: %d", f1)
	}
}

// TestWrongPathFaultIsSquashed injects a fetch fault into a dynamically
// wrong-path instruction in the pipelined model: the engine must report
// the hit as squashed/non-propagated and the program output must be
// bit-exact.
func TestWrongPathFaultIsSquashed(t *testing.T) {
	// A loop whose closing branch is taken 499 times: fall-through
	// fetches after the branch are wrong-path until the predictor warms.
	src := `
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 500; i = i + 1) { s = s + i; }
    out[0] = s;
    fi_activate(0);
    return 0;
}`
	// Sweep fetch faults over the first few dozen fetch indices until one
	// lands on a squashed slot: the first loop-closing branch is a BTB
	// miss, so the fall-through fetches behind it are wrong-path.
	foundSquashed := false
	for when := uint64(2); when < 60 && !foundSquashed; when++ {
		f := core.Fault{
			Loc: core.LocFetch, Behavior: core.BehAllOne,
			Base: core.TimeInst, When: when, Occ: 1,
		}
		s := compileMC(t, src, Config{Model: ModelPipelined, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 10_000_000})
		r := s.Run()
		oc := r.Outcomes[0]
		if oc.Fired && oc.Squashed && !oc.Committed {
			foundSquashed = true
			if r.Failed() {
				t.Fatalf("when=%d: squashed-only fault crashed the run: %+v", when, r)
			}
			out, _ := s.ReadMem64(s.Program.MustSymbol("out"))
			if out != 124750 {
				t.Errorf("when=%d: squashed fault changed output: %d", when, out)
			}
			if oc.Propagated {
				t.Errorf("when=%d: squashed fault marked propagated", when)
			}
		}
	}
	if !foundSquashed {
		t.Error("no fetch fault landed on a squashed wrong-path instruction in the sweep")
	}
}

// TestMultipleFaultsInOneExperiment injects several faults at once (the
// input file supports one fault per line) and checks each is tracked
// independently.
func TestMultipleFaultsInOneExperiment(t *testing.T) {
	src := `
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 300; i = i + 1) { s = s + 1; }
    out[0] = s;
    fi_activate(0);
    return 0;
}`
	faults := []core.Fault{
		{Loc: core.LocIntReg, Reg: 14, Behavior: core.BehFlip, Bit: 1, Base: core.TimeInst, When: 10, Occ: 1},
		{Loc: core.LocIntReg, Reg: 13, Behavior: core.BehFlip, Bit: 1, Base: core.TimeInst, When: 20, Occ: 1},
		{Loc: core.LocMem, Behavior: core.BehFlip, Bit: 0, Base: core.TimeInst, When: 10_000_000, Occ: 1}, // never fires
	}
	s := compileMC(t, src, Config{Model: ModelAtomic, EnableFI: true, Faults: faults, MaxInsts: 10_000_000})
	r := s.Run()
	if len(r.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(r.Outcomes))
	}
	if !r.Outcomes[0].Fired || !r.Outcomes[1].Fired {
		t.Error("register faults did not fire")
	}
	if r.Outcomes[2].Fired {
		t.Error("beyond-end fault fired")
	}
}

// TestFaultFileDrivesSimulator goes through the textual input file end
// to end: parse the paper-format lines, run, observe.
func TestFaultFileDrivesSimulator(t *testing.T) {
	lines := `
# paper Listing 1 format
RegisterInjectedFault Inst:30 Flip:4 Threadid:0 system.cpu0 occ:1 int 9
MemoryInjectedFault Inst:40 Flip:2 Threadid:0 system.cpu0 occ:1
`
	faults, err := core.ParseFaults(stringsReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	src := `
int out[1];
int main() {
    fi_checkpoint();
    fi_activate(0);
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + i; }
    out[0] = s;
    fi_activate(0);
    return 0;
}`
	s := compileMC(t, src, Config{Model: ModelAtomic, EnableFI: true, Faults: faults, MaxInsts: 10_000_000})
	r := s.Run()
	fired := 0
	for _, oc := range r.Outcomes {
		if oc.Fired {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no fault from the input file fired")
	}
}

// stringsReader avoids importing strings just for one call site.
func stringsReader(s string) io.Reader { return strings.NewReader(s) }
