package sim

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/mem"
)

// These tests pin the basic-block translator's invalidation and bailout
// behavior, mirroring fastpath_fi_test.go: self-modifying code over
// translated blocks, transient fetch corruption over a warm block cache,
// and the window-open/observer-attached fallbacks.

// smcOverTranslatedProgram warms and translates two loops — an
// accumulator subroutine and a byte-copy subroutine — then uses the
// *translated* copy loop to overwrite the accumulator's loop body in
// text. The copy loop's first text store must bail its own block
// mid-chain (generation check after the store) and every stale
// translation of the accumulator must be discarded: the second call has
// to execute the patched instruction (step 3 instead of 1) and exit with
// 40 + 120 = 160. A stale block surviving gives 80.
const smcOverTranslatedProgram = `
_start:
    li   a0, 40
    bsr  ra, sum        ; warm + translate sum's loop: v0 = 40
    mov  v0, s0
    la   a1, sum        ; warm the copy loop harmlessly: text -> scratch
    la   a2, buf
    li   a3, 32
    bsr  ra, copy
    la   a1, donor      ; translated copy loop now patches sum's loop body
    la   a2, sumtgt
    li   a3, 4
    bsr  ra, copy
    li   a0, 40
    bsr  ra, sum        ; must execute the patched body: v0 = 120
    addq s0, v0, a0     ; exit status 160
    li   v0, 1          ; SysExit
    callsys
sum:
    li   t2, 0
sumtgt:
    addq t2, #1, t2     ; patched to: addq t2, #3, t2
    subq a0, #1, a0
    bne  a0, sumtgt
    mov  t2, v0
    ret
copy:
    ldbu t3, 0(a1)
    stb  t3, 0(a2)
    addq a1, #1, a1
    addq a2, #1, a2
    subq a3, #1, a3
    bne  a3, copy
    ret
donor:
    addq t2, #3, t2
    .data
buf:
    .space 64
`

// runAsm assembles src into a fresh simulator and runs it.
func runAsm(t *testing.T, src string, cfg Config) (*Simulator, RunResult) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	s := New(cfg)
	if err := s.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	return s, s.Run()
}

// TestBBTSelfModifyingCodeInvalidates runs the SMC program with block
// translation against the DisableFastPath interpreter: identical exit
// status (160 — the patched body executed), architectural state and
// memory, with the translator demonstrably engaged and invalidated.
func TestBBTSelfModifyingCodeInvalidates(t *testing.T) {
	cfg := Config{Model: ModelAtomic, EnableFI: true, MaxInsts: 10_000_000}
	cfg.EnableBlockTranslation = true
	tr, rt := runAsm(t, smcOverTranslatedProgram, cfg)
	ref, rr := runAsm(t, smcOverTranslatedProgram, Config{
		Model: ModelAtomic, EnableFI: true, MaxInsts: 10_000_000, DisableFastPath: true})
	if !rr.Exited || rr.ExitStatus != 160 {
		t.Fatalf("reference run broken: %+v", rr)
	}
	if !rt.Exited || rt.ExitStatus != 160 {
		t.Fatalf("translated run: exit %d/%+v, want 160 (stale translation survived the text store?)",
			rt.ExitStatus, rt)
	}
	if tr.Core.Arch != ref.Core.Arch || tr.Core.Insts != ref.Core.Insts || tr.Core.Ticks != ref.Core.Ticks {
		t.Errorf("SMC run diverged: insts %d vs %d, ticks %d vs %d",
			tr.Core.Insts, ref.Core.Insts, tr.Core.Ticks, ref.Core.Ticks)
	}
	if _, total := mem.DiffSnapshots(tr.Mem.Snapshot(), ref.Mem.Snapshot(), 4); total != 0 {
		t.Errorf("%d bytes of memory diverged", total)
	}
	st := tr.BBT.Stats
	if st.Compiled == 0 || st.Insts == 0 {
		t.Errorf("translator never engaged: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("text store never invalidated a translated block: %+v", st)
	}
}

// TestBBTFetchFaultOverWarmBlocks sweeps transient fetch faults over a
// program whose hot code is already translated when the FI window opens.
// Fetch corruption only exists inside the window, where translation is
// disabled, so the run must match the DisableFastPath reference exactly:
// same outcome flags, same architectural state, same memory — a warm
// translated block must neither serve a corrupted fetch nor hide one.
func TestBBTFetchFaultOverWarmBlocks(t *testing.T) {
	fired := 0
	for _, bit := range []int{0, 5, 26} {
		for when := uint64(2); when <= 8; when += 3 {
			f := core.Fault{
				Loc: core.LocFetch, Behavior: core.BehFlip, Bit: bit,
				Base: core.TimeInst, When: when, Occ: 1,
			}
			run := func(bbt, disable bool) (*Simulator, RunResult) {
				s := compileMC(t, fetchFaultProgram, Config{
					Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f},
					MaxInsts: 10_000_000, EnableBlockTranslation: bbt, DisableFastPath: disable,
				})
				return s, s.Run()
			}
			tr, rt := run(true, false)
			ref, rs := run(false, true)
			if rt.Hung != rs.Hung || rt.Failed() != rs.Failed() {
				t.Errorf("bit=%d when=%d: run disposition diverged: bbt %+v, slow %+v",
					bit, when, rt, rs)
				continue
			}
			ot, os := rt.Outcomes[0], rs.Outcomes[0]
			if ot.Fired != os.Fired || ot.Committed != os.Committed ||
				ot.Squashed != os.Squashed || ot.Propagated != os.Propagated {
				t.Errorf("bit=%d when=%d: outcome diverged: bbt %+v, slow %+v", bit, when, ot, os)
			}
			if ot.Fired {
				fired++
			}
			if tr.Core.Arch != ref.Core.Arch {
				t.Errorf("bit=%d when=%d: architectural state diverged", bit, when)
			}
			if tr.Core.Insts != ref.Core.Insts || tr.Core.Ticks != ref.Core.Ticks {
				t.Errorf("bit=%d when=%d: insts %d vs %d, ticks %d vs %d", bit, when,
					tr.Core.Insts, ref.Core.Insts, tr.Core.Ticks, ref.Core.Ticks)
			}
			if _, total := mem.DiffSnapshots(tr.Mem.Snapshot(), ref.Mem.Snapshot(), 4); total != 0 {
				t.Errorf("bit=%d when=%d: %d bytes of memory diverged", bit, when, total)
			}
			if tr.BBT.Stats.Compiled == 0 {
				t.Errorf("bit=%d when=%d: block cache never warmed — the sweep is vacuous", bit, when)
			}
		}
	}
	if fired == 0 {
		t.Error("no fetch fault in the sweep ever fired — the window never opened?")
	}
}

// TestBBTWindowOpenFallback runs a translation-enabled experiment whose
// FI window opens mid-run (no observers): every in-window step must take
// the interpreter and be counted as a fallback, while the regions
// outside the window still translate.
func TestBBTWindowOpenFallback(t *testing.T) {
	f := core.Fault{
		Loc: core.LocIntReg, Behavior: core.BehFlip, Bit: 3, Reg: 2,
		Base: core.TimeInst, When: 10, Occ: 1,
	}
	s := compileMC(t, fetchFaultProgram, Config{
		Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f},
		MaxInsts: 10_000_000, EnableBlockTranslation: true,
	})
	r := s.Run()
	if r.Hung {
		t.Fatalf("hung: %+v", r)
	}
	st := s.BBT.Stats
	if st.Insts == 0 {
		t.Errorf("nothing ran translated outside the window: %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Errorf("in-window interpreter steps were not counted as fallbacks: %+v", st)
	}
}

// TestBBTObserverCampaignNeverTranslates is the satellite referee: a
// campaign-style experiment with taint and flight attached must never
// execute a translated block — inside the FI window or out — because
// both sinks demand per-instruction hooks. The verdict must match a
// translation-free control bit for bit, the translated-instruction
// counter must stay at zero, and the fallback counter must show the
// interpreter carried the whole run.
func TestBBTObserverCampaignNeverTranslates(t *testing.T) {
	f := core.Fault{
		Loc: core.LocIntReg, Behavior: core.BehFlip, Bit: 7, Reg: 3,
		Base: core.TimeInst, When: 20, Occ: 1,
	}
	run := func(bbt bool) (*Simulator, RunResult) {
		s := compileMC(t, fetchFaultProgram, Config{
			Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f},
			MaxInsts: 10_000_000, EnableBlockTranslation: bbt,
			EnableTaint: true, EnableFlight: true,
		})
		return s, s.Run()
	}
	tr, rt := run(true)
	ref, rr := run(false)
	if rt.Hung != rr.Hung || rt.Failed() != rr.Failed() ||
		rt.Outcomes[0].Fired != rr.Outcomes[0].Fired ||
		rt.Outcomes[0].Propagated != rr.Outcomes[0].Propagated {
		t.Errorf("observed campaign verdict diverged: bbt %+v, control %+v", rt, rr)
	}
	if tr.Core.Arch != ref.Core.Arch || tr.Core.Insts != ref.Core.Insts {
		t.Errorf("observed campaign state diverged")
	}
	st := tr.BBT.Stats
	if st.Insts != 0 || st.Hits != 0 {
		t.Errorf("a translated block executed with taint+flight attached: %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Errorf("fallback counter never moved — the bailout is unobservable: %+v", st)
	}
	if st.Fallbacks < tr.Core.Insts {
		t.Errorf("fallbacks %d < committed insts %d: some steps bypassed the bailout accounting",
			st.Fallbacks, tr.Core.Insts)
	}
}
