package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// fetchFaultProgram warms the predecode cache by running work() once
// before the FI window opens, then calls it again with the window open
// so a fetch fault strikes PCs whose decoded forms are already cached.
const fetchFaultProgram = `
int out[1];
int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
int main() {
    fi_checkpoint();
    int a = work(50);
    fi_activate(0);
    int b = work(50);
    fi_activate(0);
    out[0] = a + b;
    return 0;
}`

// TestFetchFaultBypassesWarmPredecode sweeps transient fetch faults over
// the warmed window and requires the run with the decode caches enabled
// to be bit-identical to the DisableFastPath reference: same outcome
// flags, same architectural state, same memory image. A predecode entry
// filled on the clean first call must never hide the corrupted word on
// the faulted second call.
func TestFetchFaultBypassesWarmPredecode(t *testing.T) {
	fired := 0
	for _, model := range []ModelKind{ModelAtomic, ModelTiming, ModelPipelined} {
		for _, bit := range []int{0, 5, 26} {
			for when := uint64(2); when <= 8; when += 3 {
				f := core.Fault{
					Loc: core.LocFetch, Behavior: core.BehFlip, Bit: bit,
					Base: core.TimeInst, When: when, Occ: 1,
				}
				run := func(disable bool) (*Simulator, RunResult) {
					s := compileMC(t, fetchFaultProgram, Config{
						Model: model, EnableFI: true, Faults: []core.Fault{f},
						MaxInsts: 10_000_000, DisableFastPath: disable,
					})
					return s, s.Run()
				}
				fast, rf := run(false)
				slow, rs := run(true)
				label := string(model)
				if rf.Hung != rs.Hung || rf.Failed() != rs.Failed() {
					t.Errorf("%s bit=%d when=%d: run disposition diverged: fast %+v, slow %+v",
						label, bit, when, rf, rs)
					continue
				}
				of, os := rf.Outcomes[0], rs.Outcomes[0]
				if of.Fired != os.Fired || of.Committed != os.Committed ||
					of.Squashed != os.Squashed || of.Propagated != os.Propagated {
					t.Errorf("%s bit=%d when=%d: outcome diverged: fast %+v, slow %+v",
						label, bit, when, of, os)
				}
				if of.Fired {
					fired++
				}
				if fast.Core.Arch != slow.Core.Arch {
					t.Errorf("%s bit=%d when=%d: architectural state diverged", label, bit, when)
				}
				if fast.Core.Insts != slow.Core.Insts || fast.Core.Ticks != slow.Core.Ticks {
					t.Errorf("%s bit=%d when=%d: insts %d vs %d, ticks %d vs %d", label, bit, when,
						fast.Core.Insts, slow.Core.Insts, fast.Core.Ticks, slow.Core.Ticks)
				}
				if _, total := mem.DiffSnapshots(fast.Mem.Snapshot(), slow.Mem.Snapshot(), 4); total != 0 {
					t.Errorf("%s bit=%d when=%d: %d bytes of memory diverged", label, bit, when, total)
				}
			}
		}
	}
	if fired == 0 {
		t.Error("no fetch fault in the sweep ever fired — the window never opened?")
	}
}

// TestPermanentFetchFaultConformance repeats the comparison with a
// permanent (occ:all) fetch fault, which corrupts every subsequent
// fetch: the stress case for the word-keyed decode cache, whose key
// changes with the corruption and so can never serve a stale decode.
func TestPermanentFetchFaultConformance(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelPipelined} {
		f := core.Fault{
			Loc: core.LocFetch, Behavior: core.BehFlip, Bit: 3,
			Base: core.TimeInst, When: 4, Occ: core.PermanentOcc,
		}
		// A permanently corrupted fetch stream usually spins until the
		// watchdog; keep the budget small — the comparison is exact
		// either way.
		run := func(disable bool) (*Simulator, RunResult) {
			s := compileMC(t, fetchFaultProgram, Config{
				Model: model, EnableFI: true, Faults: []core.Fault{f},
				MaxInsts: 200_000, DisableFastPath: disable,
			})
			return s, s.Run()
		}
		fast, rf := run(false)
		slow, rs := run(true)
		if rf.Hung != rs.Hung || rf.Failed() != rs.Failed() ||
			rf.Outcomes[0].Fired != rs.Outcomes[0].Fired {
			t.Errorf("%s: permanent fetch fault disposition diverged: fast %+v, slow %+v",
				model, rf, rs)
		}
		if fast.Core.Arch != slow.Core.Arch || fast.Core.Insts != slow.Core.Insts {
			t.Errorf("%s: permanent fetch fault diverged architectural state", model)
		}
	}
}
