package sim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// eventNames collects the set of event names a tracer saw.
func eventNames(tr *obs.Tracer) map[string]int {
	names := map[string]int{}
	for _, e := range tr.Events() {
		names[e.Name]++
	}
	return names
}

// TestObsInjectionLifecycle runs a register fault with full observability
// on and checks the whole armed -> injected -> first-read/masked chain
// lands in the trace, and that the registry dump covers CPU, cache and FI
// counters — the acceptance surface of the observability subsystem.
func TestObsInjectionLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	fault := core.Fault{
		Loc: core.LocIntReg, Reg: 6, /* t5, the live accumulator */
		Behavior: core.BehFlip, Bit: 3, ThreadID: 0,
		Base: core.TimeInst, When: 5, Occ: 1,
	}
	s := newSim(t, Config{
		Model: ModelTiming, EnableFI: true,
		Faults:  []core.Fault{fault},
		Metrics: reg, Tracer: tr,
	})
	r := s.Run()
	if r.Hung {
		t.Fatalf("run hung: %+v", r)
	}

	names := eventNames(tr)
	if names["fault.armed"] == 0 {
		t.Error("no fault.armed event")
	}
	if names["fault.injected"] == 0 {
		t.Error("no fault.injected event")
	}
	if names["fi.window.open"] == 0 || names["fi.window.close"] == 0 {
		t.Errorf("missing FI window events: %v", names)
	}
	// The corrupted accumulator is read by the next loop iteration, so
	// the register-read terminal event must fire — not just any terminal.
	if names["fault.first-read"] == 0 {
		t.Errorf("no fault.first-read terminal event for a live register fault: %v", names)
	}
	if names["run"] == 0 {
		t.Errorf("no run span: %v", names)
	}

	byName := map[string]obs.Metric{}
	for _, m := range reg.Snapshot() {
		byName[m.Name] = m
	}
	for _, want := range []string{
		"cpu.insts", "cpu.ticks",
		"mem.l1d.hits", "mem.l1d.misses", "mem.l1i.hits",
		"fi.injections", "fi.activations", "fi.hook_calls",
		"sim.checkpoint.hits",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("registry missing %q", want)
		}
	}
	if byName["cpu.insts"].Value != float64(r.Insts) {
		t.Errorf("cpu.insts = %g, want %d", byName["cpu.insts"].Value, r.Insts)
	}
	if byName["fi.injections"].Value < 1 {
		t.Error("fi.injections not counted")
	}
	if byName["mem.l1d.hits"].Value == 0 && byName["mem.l1d.misses"].Value == 0 {
		t.Error("cache counters never moved on the timing model")
	}

	// The full event stream must satisfy the trace schema and the Chrome
	// export must be loadable JSON.
	for _, e := range tr.Events() {
		if err := obs.ValidateEvent(e); err != nil {
			t.Fatalf("emitted event fails schema: %v (%+v)", err, e)
		}
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if chrome.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}

// TestObsMemFaultFirstLoad: a LocMem fault corrupts a load value in the
// kernel loop; the first consumption is the load itself, so the memory
// analogue of fault.first-read — fault.first-load — must fire (the
// register terminal must not: no architectural register was corrupted
// directly).
func TestObsMemFaultFirstLoad(t *testing.T) {
	tr := obs.NewTracer()
	fault := core.Fault{
		Loc: core.LocMem, Behavior: core.BehFlip, Bit: 2, ThreadID: 0,
		Base: core.TimeInst, When: 3, Occ: 1,
	}
	s := newSim(t, Config{
		Model: ModelTiming, EnableFI: true,
		Faults: []core.Fault{fault}, Tracer: tr,
	})
	r := s.Run()
	if r.Hung {
		t.Fatalf("run hung: %+v", r)
	}
	names := eventNames(tr)
	if names["fault.injected"] == 0 {
		t.Fatalf("memory fault never injected: %v", names)
	}
	if names["fault.first-load"] == 0 {
		t.Errorf("no fault.first-load terminal event for a memory fault: %v", names)
	}
	if names["fault.first-read"] != 0 {
		t.Errorf("memory fault wrongly produced a register first-read: %v", names)
	}
}

// TestObsCheckpointEvents verifies capture/restore instrumentation.
func TestObsCheckpointEvents(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Metrics: reg, Tracer: tr})
	st, _, err := s.RunToCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	s.Restore(st, nil)
	if r := s.Run(); !r.Exited || r.ExitStatus != 0 {
		t.Fatalf("restored run failed: %+v", r)
	}
	names := eventNames(tr)
	if names["checkpoint.capture"] == 0 || names["checkpoint.restore"] == 0 {
		t.Errorf("checkpoint events missing: %v", names)
	}
	byName := map[string]obs.Metric{}
	for _, m := range reg.Snapshot() {
		byName[m.Name] = m
	}
	if byName["sim.checkpoint.captures"].Value != 1 || byName["sim.checkpoint.restores"].Value != 1 {
		t.Errorf("checkpoint counters: captures=%g restores=%g",
			byName["sim.checkpoint.captures"].Value, byName["sim.checkpoint.restores"].Value)
	}
}

// TestInterrupt stops an infinite loop from another goroutine.
func TestInterrupt(t *testing.T) {
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	s.Interrupt() // pre-set: the run must notice at its first poll
	r := s.Run()
	if !r.Interrupted {
		t.Fatalf("run not interrupted: %+v", r)
	}
	// The simulator stays usable: the next Run completes normally.
	r = s.Run()
	if !r.Exited || r.ExitStatus != 0 {
		t.Fatalf("run after interrupt failed: %+v", r)
	}
}

// TestObsDisabledIsFreeOfSideEffects: with both hooks nil the run must
// behave identically (guards against accidental nil dereference on any
// instrumentation site).
func TestObsDisabledIsFreeOfSideEffects(t *testing.T) {
	fault := core.Fault{
		Loc: core.LocIntReg, Reg: 6, Behavior: core.BehFlip, Bit: 3,
		ThreadID: 0, Base: core.TimeInst, When: 5, Occ: 1,
	}
	run := func(cfg Config) RunResult {
		s := newSim(t, cfg)
		return s.Run()
	}
	plain := run(Config{Model: ModelTiming, EnableFI: true, Faults: []core.Fault{fault}})
	instr := run(Config{Model: ModelTiming, EnableFI: true, Faults: []core.Fault{fault},
		Metrics: obs.NewRegistry(), Tracer: obs.NewTracer()})
	if plain.Insts != instr.Insts || plain.Ticks != instr.Ticks || plain.ExitStatus != instr.ExitStatus {
		t.Errorf("observability changed the simulation: %+v vs %+v", plain, instr)
	}
}
