// Package sim wires the simulated machine together: memory, caches, CPU
// model, kernel and the GemFI fault injection engine. It owns the run
// loop, the watchdog, checkpoint capture/restore, and the campaign
// methodology's mid-run model switch (pipelined until the injected fault
// commits or squashes, then atomic — Section IV.B.1 of the paper).
package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/bbt"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/prof"
	"repro/internal/taint"
)

// ModelKind selects the CPU model.
type ModelKind string

// CPU models (the paper's speed/accuracy trade-off points).
const (
	ModelAtomic    ModelKind = "atomic"
	ModelTiming    ModelKind = "timing"
	ModelPipelined ModelKind = "pipelined"
)

// Config parameterizes a simulator.
type Config struct {
	CPUName string
	Model   ModelKind

	// EnableFI attaches a fault engine; false models unmodified gem5.
	EnableFI bool
	Faults   []core.Fault

	// Quantum is the scheduler time slice in instructions (0 = default).
	Quantum uint64

	// MaxInsts stops a runaway simulation (0 = no watchdog). The campaign
	// layer classifies a watchdog stop as a crash (hang).
	MaxInsts uint64

	// SwitchToAtomicOnResolve switches from the pipelined model to the
	// atomic model once every fault has fired and its affected
	// instruction has committed or squashed.
	SwitchToAtomicOnResolve bool

	// FastForward runs the cheap atomic model from the start of the run
	// (or from a checkpoint restore) until the fault-injection window
	// opens — the guest's fi_activate_inst — and only then switches to
	// the configured Model. This is the paper's checkpoint
	// fast-forwarding taken to its limit: everything before the window
	// is architecturally equivalent across models, so campaigns pay the
	// detailed model only where faults can strike. No-op when Model is
	// already ModelAtomic.
	FastForward bool

	// FastForwardAt optionally switches earlier: once the core has
	// committed this many instructions (a warm-up margin of N
	// instructions before the expected window, computed by the campaign
	// layer from the golden run). The window-open switch remains as the
	// correctness backstop. 0 = switch exactly at window open.
	FastForwardAt uint64

	// Hierarchy overrides the cache configuration (nil = default). Only
	// timing and pipelined models consume cache latencies.
	Hierarchy *mem.HierarchyConfig

	// StopAtCheckpoint ends Run when the guest executes
	// fi_read_init_all() (after taking the checkpoint callback).
	StopAtCheckpoint bool

	// Metrics, when non-nil, receives the whole machine's counters (CPU,
	// caches, FI engine, checkpoint traffic) as pull-collectors; dump it
	// with Metrics.WriteText after the run. Nil disables metrics at zero
	// hot-path cost.
	Metrics *obs.Registry

	// Tracer, when non-nil, receives structured events: the fault
	// injection lifecycle, run phases, CPU-model switches and checkpoint
	// captures/restores. Nil disables tracing at zero hot-path cost.
	Tracer *obs.Tracer

	// Profiler, when non-nil, receives per-PC profiling events (retired
	// instructions, cycles, cache misses, mispredicts, stalls) and is
	// symbolized against the loaded program at Load time. Nil disables
	// profiling at zero hot-path cost. Alternatively set
	// EnableProfiler to have Load build one sized to the program.
	Profiler *prof.Profiler

	// EnableProfiler makes Load construct a profiler for the loaded
	// program when Profiler is nil; retrieve it with Simulator.Profiler.
	EnableProfiler bool

	// Taint, when non-nil, is the fault-propagation taint tracker: it
	// shadows the corrupted architectural bits through registers, memory,
	// control flow and I/O, and renders a per-experiment PropReport.
	// Nil disables tracking at one untaken branch per committed
	// instruction. Alternatively set EnableTaint to have New build one.
	Taint *taint.Tracker

	// EnableTaint makes New construct a tracker when Taint is nil;
	// retrieve it with Simulator.Taint.
	EnableTaint bool

	// Flight, when non-nil, is the black-box flight recorder: a fixed
	// ring of the last K committed instructions, dumped retroactively for
	// interesting experiment verdicts. Nil costs one untaken branch per
	// committed instruction. Alternatively set EnableFlight to have New
	// build one of FlightDepth records.
	Flight *flight.Recorder

	// EnableFlight makes New construct a flight recorder when Flight is
	// nil; retrieve it with Simulator.Flight.
	EnableFlight bool

	// FlightDepth sizes the recorder EnableFlight builds (<= 0 selects
	// flight.DefaultDepth).
	FlightDepth int

	// EnableBlockTranslation attaches the basic-block translator
	// (internal/bbt) to the core: hot straight-line guest code is fused
	// into pre-bound closure chains whenever the atomic fast path is
	// active — the fast-forward prefix, pure-atomic runs, and the
	// post-resolve atomic tail. Ignored when DisableFastPath is set (the
	// conformance referee must interpret every instruction).
	EnableBlockTranslation bool

	// DisableFastPath forces the CPU models onto their fully-hooked slow
	// paths and bypasses the decoded-instruction caches. The conformance
	// suite uses it as the reference configuration the fast paths must
	// match bit for bit; there is no reason to set it otherwise.
	DisableFastPath bool
}

// DefaultConfig returns the configuration used throughout the paper's
// validation study: a single pipelined core with split L1s, a unified L2
// and fault injection enabled.
func DefaultConfig() Config {
	return Config{
		CPUName:                 "system.cpu0",
		Model:                   ModelPipelined,
		EnableFI:                true,
		SwitchToAtomicOnResolve: true,
	}
}

// Simulator is a fully wired simulated machine.
type Simulator struct {
	Cfg    Config
	Mem    *mem.Memory
	Hier   *mem.Hierarchy
	Core   *cpu.Core
	Kernel *kernel.Kernel
	Engine *core.Engine    // nil when EnableFI is false
	BBT    *bbt.Translator // nil unless EnableBlockTranslation
	Model  cpu.Model

	Program *asm.Program

	// OnCheckpoint is called when the guest executes fi_read_init_all().
	// The default records that the request happened; campaign drivers
	// replace it to capture a checkpoint.
	OnCheckpoint func(*Simulator)

	// WindowOpenInsts records the committed-instruction count at the
	// first fault-window open of the current run (0 until it happens).
	// The campaign layer reads it off the golden run to compute
	// fast-forward warm-up points.
	WindowOpenInsts uint64

	CheckpointHits int
	stopRequested  bool
	switched       bool
	ffActive       bool   // fast-forward prefix running (atomic stand-in model)
	ffPending      bool   // window opened mid-step: switch before the next step
	bbtUntil       uint64 // RunUntil bound folded into the translation limit
	interrupted    atomic.Bool

	// Span-phase recording (SetSpans): the run stamps its rare phase
	// transitions (fast-forward end, first window open, last window
	// close) and emits contiguous phase child spans under expSpan when
	// it ends. All stamps happen on already-rare event paths, so the
	// per-instruction loop is untouched; nil spans disables everything.
	spans        *obs.SpanRecorder
	expSpan      *obs.Span
	phaseBegin   phaseCut
	phaseFFArmed bool
	ffEndMark    phaseCut
	winOpenMark  phaseCut
	winCloseMark phaseCut
}

// phaseCut is one phase boundary: wall clock plus guest ticks.
type phaseCut struct {
	ns   int64
	tick uint64
}

// New builds a simulator (without a program; call Load).
func New(cfg Config) *Simulator {
	if cfg.CPUName == "" {
		cfg.CPUName = "system.cpu0"
	}
	s := &Simulator{Cfg: cfg}
	s.Mem = mem.New()
	s.Core = &cpu.Core{Name: cfg.CPUName, Mem: s.Mem, DisableFastPath: cfg.DisableFastPath}
	if cfg.EnableBlockTranslation && !cfg.DisableFastPath {
		s.BBT = bbt.New(s.Core)
		s.Core.BBT = s.BBT
	}
	if cfg.Model != ModelAtomic {
		hc := mem.DefaultHierarchyConfig()
		if cfg.Hierarchy != nil {
			hc = *cfg.Hierarchy
		}
		s.Hier = mem.NewHierarchy(hc)
		s.Core.Hier = s.Hier
	}
	s.Kernel = kernel.New(s.Mem)
	if cfg.Quantum > 0 {
		s.Kernel.Quantum = cfg.Quantum
	}
	if cfg.EnableFI {
		s.Engine = core.NewEngine(cfg.CPUName, cfg.Faults)
		s.Core.FI = s.Engine
		s.Kernel.IOFilter = s.Engine.OnIO
		if cfg.Tracer != nil {
			s.Engine.AttachTracer(cfg.Tracer)
		}
		s.Engine.WindowHook = func(open bool) {
			if s.spans != nil {
				s.markWindow(open)
			}
			if !open {
				return
			}
			if s.WindowOpenInsts == 0 {
				s.WindowOpenInsts = s.Core.Insts
			}
			if s.ffActive {
				// The activating instruction just committed; switch to the
				// detailed model between steps, before any fault can strike.
				s.ffPending = true
			}
		}
	}
	s.Core.OnCheckpoint = func() {
		s.CheckpointHits++
		if s.OnCheckpoint != nil {
			s.OnCheckpoint(s)
		}
		if s.Cfg.StopAtCheckpoint {
			s.stopRequested = true
		}
	}
	if cfg.Taint != nil || cfg.EnableTaint {
		s.AttachTaint(cfg.Taint)
	}
	if cfg.Flight != nil || cfg.EnableFlight {
		s.AttachFlight(cfg.Flight)
	}
	s.registerMetrics()
	return s
}

// Taint returns the attached propagation tracker (nil when disabled).
func (s *Simulator) Taint() *taint.Tracker { return s.Cfg.Taint }

// AttachTaint wires a propagation tracker into the core and the fault
// engine, building one when tr is nil — the campaign path, where runners
// exist before the driver decides to trace propagation. The tracker is
// returned.
func (s *Simulator) AttachTaint(tr *taint.Tracker) *taint.Tracker {
	if tr == nil {
		tr = taint.New()
	}
	s.Cfg.Taint = tr
	s.Core.Taint = tr
	if s.Engine != nil {
		s.Engine.Taint = tr
	}
	if tr.Trace == nil {
		tr.Trace = s.Cfg.Tracer
	}
	tr.TickFn = func() uint64 { return s.Core.Ticks }
	tr.RegisterMetrics(s.Cfg.Metrics)
	return tr
}

// Flight returns the attached flight recorder (nil when disabled).
func (s *Simulator) Flight() *flight.Recorder { return s.Cfg.Flight }

// AttachFlight wires a flight recorder into the core, building one of
// Cfg.FlightDepth records when fr is nil — the campaign path, where
// runners exist before the driver decides to record. Core.Flight is
// only assigned for a non-nil recorder, so a disabled recorder never
// defeats the atomic fast path through a typed-nil interface.
func (s *Simulator) AttachFlight(fr *flight.Recorder) *flight.Recorder {
	if fr == nil {
		fr = flight.NewRecorder(s.Cfg.FlightDepth)
	}
	s.Cfg.Flight = fr
	s.Core.Flight = fr
	return fr
}

// TaintReport renders the propagation report for the last run. crashed
// tells the verdict logic whether the run ended in a crash; golden (the
// final state of a fault-free run) may be nil, which skips the
// architectural differ.
func (s *Simulator) TaintReport(crashed bool, golden *taint.GoldenState) *taint.PropReport {
	return s.Cfg.Taint.Report(crashed, &s.Core.Arch, s.Mem, golden)
}

// registerMetrics wires every component's counters into the configured
// registry (the gem5 "stats visitation" analogue). Pull-collectors read
// the components' plain fields at dump time, so the simulation loop is
// untouched.
func (s *Simulator) registerMetrics() {
	r := s.Cfg.Metrics
	if r == nil {
		return
	}
	s.Core.RegisterMetrics(r)
	if s.BBT != nil {
		s.BBT.RegisterMetrics(r)
	}
	if s.Hier != nil {
		s.Hier.RegisterMetrics(r)
	}
	if s.Engine != nil {
		s.Engine.RegisterMetrics(r)
	}
	r.RegisterFunc("sim.checkpoint.hits", func() float64 { return float64(s.CheckpointHits) })
}

// Load boots the program image and attaches the profiler (building and
// symbolizing one when EnableProfiler asked for it).
func (s *Simulator) Load(p *asm.Program) error {
	s.Program = p
	if err := s.Kernel.Boot(s.Core, p); err != nil {
		return fmt.Errorf("sim load: %w", err)
	}
	if s.Cfg.Profiler == nil && s.Cfg.EnableProfiler {
		s.Cfg.Profiler = prof.ForProgram(p)
	}
	if pr := s.Cfg.Profiler; pr != nil {
		if pr.Symbols() == nil {
			pr.SetSymbols(p.Symbols())
		}
		s.Core.Prof = pr
	}
	s.Model = s.newModel(s.Cfg.Model)
	s.armFastForward()
	return nil
}

// armFastForward starts the run on the cheap atomic model when
// fast-forward is configured; the window-open hook (or FastForwardAt)
// switches to the configured model.
func (s *Simulator) armFastForward() {
	s.ffActive = false
	s.ffPending = false
	if !s.Cfg.FastForward || s.Cfg.Model == ModelAtomic || s.Engine == nil {
		return
	}
	s.ffActive = true
	s.Model = cpu.NewAtomic(s.Core)
	s.refreshTranslationLimit()
	s.Cfg.Tracer.Instant(obs.CatSim, "fastforward.begin", s.Core.Ticks,
		map[string]any{"until": s.Cfg.FastForwardAt})
}

// armTranslationLimit (re)computes the translator's committed-instruction
// ceiling for a run entered with bound `until` committed instructions
// (0 = run to completion). Translated blocks must land every stop, pause
// and model switch on exactly the instruction count the interpreter
// would have produced, so the ceiling is the min over every active
// instruction-indexed event: the run bound, the watchdog, and the
// fast-forward switch point while the atomic prefix is live.
func (s *Simulator) armTranslationLimit(until uint64) {
	if s.BBT == nil {
		return
	}
	s.bbtUntil = until
	s.refreshTranslationLimit()
}

func (s *Simulator) refreshTranslationLimit() {
	if s.BBT == nil {
		return
	}
	lim := s.bbtUntil
	if s.Cfg.MaxInsts > 0 && (lim == 0 || s.Cfg.MaxInsts < lim) {
		lim = s.Cfg.MaxInsts
	}
	if s.ffActive && s.Cfg.FastForwardAt > 0 && (lim == 0 || s.Cfg.FastForwardAt < lim) {
		lim = s.Cfg.FastForwardAt
	}
	s.BBT.SetLimit(lim)
}

// endFastForward switches from the atomic prefix to the configured
// detailed model. The atomic model holds no speculative state, so the
// switch is a clean handoff at an instruction boundary. Deliberately not
// SwitchModel: the fast-forward prefix must not consume the one
// SwitchToAtomicOnResolve transition.
func (s *Simulator) endFastForward() {
	s.ffActive = false
	s.ffPending = false
	if s.spans != nil && s.ffEndMark.ns == 0 {
		s.ffEndMark = phaseCut{time.Now().UnixNano(), s.Core.Ticks}
	}
	s.Model = s.newModel(s.Cfg.Model)
	s.refreshTranslationLimit() // the FastForwardAt ceiling no longer applies
	s.Cfg.Metrics.Counter("sim.fastforward.switches").Inc()
	s.Cfg.Tracer.Instant(obs.CatSim, "fastforward.end", s.Core.Ticks,
		map[string]any{"insts": s.Core.Insts, "to": string(s.Cfg.Model)})
}

// Profiler returns the attached guest profiler (nil when disabled).
func (s *Simulator) Profiler() *prof.Profiler { return s.Cfg.Profiler }

// AttachProfiler attaches pr to an already loaded simulator, building a
// program-sized one when pr is nil — the campaign path, where runners
// exist before the driver decides to profile. The profiler is returned.
func (s *Simulator) AttachProfiler(pr *prof.Profiler) *prof.Profiler {
	if pr == nil {
		if s.Program == nil {
			return nil
		}
		pr = prof.ForProgram(s.Program)
	}
	if pr.Symbols() == nil && s.Program != nil {
		pr.SetSymbols(s.Program.Symbols())
	}
	s.Cfg.Profiler = pr
	s.Core.Prof = pr
	return pr
}

func (s *Simulator) newModel(kind ModelKind) cpu.Model {
	switch kind {
	case ModelAtomic:
		return cpu.NewAtomic(s.Core)
	case ModelTiming:
		return cpu.NewTiming(s.Core)
	default:
		m := cpu.NewPipelined(s.Core)
		m.RegisterMetrics(s.Cfg.Metrics)
		return m
	}
}

// RunResult summarizes a completed simulation.
type RunResult struct {
	Exited              bool
	ExitStatus          int
	Crashed             bool
	CrashCause          string
	Hung                bool
	Interrupted         bool // stopped by Interrupt() (external timeout)
	StoppedAtCheckpoint bool
	Paused              bool // RunUntil hit its instruction bound mid-run

	Insts uint64
	Ticks uint64

	Console  string
	Model    string // model active at the end of the run
	Switched bool   // pipelined -> atomic switch happened

	Outcomes []core.FaultOutcome
}

// Failed reports whether the run should be classified as crashed
// (trap, hang or nonzero exit).
func (r RunResult) Failed() bool {
	return r.Crashed || r.Hung || (r.Exited && r.ExitStatus != 0)
}

// Interrupt asks a running simulation to stop at the next step-batch
// boundary. It is the only Simulator method safe to call from another
// goroutine; the NoW worker's per-experiment timeout uses it to reclaim a
// hung simulation. The interrupted Run returns with Interrupted set.
func (s *Simulator) Interrupt() { s.interrupted.Store(true) }

// SetSpans attaches a span recorder and the enclosing experiment span:
// phase recording (BeginPhaseRecording / EndPhaseRecording) emits
// contiguous phase child spans under exp, and the fault engine's
// lifecycle events land on exp's timeline as span events.
// SetSpans(nil, nil) detaches; the disabled path costs nothing.
func (s *Simulator) SetSpans(rec *obs.SpanRecorder, exp *obs.Span) {
	if rec == nil || exp == nil {
		rec, exp = nil, nil
	}
	s.spans = rec
	s.expSpan = exp
	if s.Engine != nil {
		s.Engine.Span = exp
	}
}

// BeginPhaseRecording starts phase-slice accounting for the experiment
// about to run. Call it after Restore/ForkFrom (so the fast-forward and
// window state reflect this experiment) and before the first Run or
// RunUntil; phases accumulate across any number of run calls (the fork
// server's prune loop runs in chunks) until EndPhaseRecording. A no-op
// without SetSpans.
func (s *Simulator) BeginPhaseRecording() {
	if s.spans == nil || s.expSpan == nil {
		return
	}
	s.ffEndMark, s.winOpenMark, s.winCloseMark = phaseCut{}, phaseCut{}, phaseCut{}
	s.phaseBegin = phaseCut{time.Now().UnixNano(), s.Core.Ticks}
	s.phaseFFArmed = s.ffActive
	if s.Engine != nil && s.Engine.WindowOpen() {
		// Mid-window fork: the open edge is behind us on the trunk, so
		// the experiment starts directly inside the FI window.
		s.winOpenMark = s.phaseBegin
	}
}

// EndPhaseRecording closes phase accounting: it cuts the experiment's
// wall time into contiguous phase slices (fast-forward, pre-window,
// fi-window, post-window), emits each as a child span of the attached
// experiment span, and returns them. Returns nil when recording was
// never begun.
func (s *Simulator) EndPhaseRecording() []obs.PhaseSlice {
	if s.spans == nil || s.expSpan == nil || s.phaseBegin.ns == 0 {
		return nil
	}
	phases := s.emitPhases(s.phaseBegin, s.phaseFFArmed)
	s.phaseBegin = phaseCut{}
	return phases
}

// markWindow stamps the fault-window transitions for phase spans: the
// first open and the last close of the run. Called from the engine's
// WindowHook, i.e. twice per experiment, never per instruction.
func (s *Simulator) markWindow(open bool) {
	cut := phaseCut{time.Now().UnixNano(), s.Core.Ticks}
	if open {
		if s.winOpenMark.ns == 0 {
			s.winOpenMark = cut
		}
	} else {
		s.winCloseMark = cut
	}
}

// emitPhases cuts the finished run into contiguous phase slices from
// the stamped transition marks, emits each as a child span of expSpan,
// and returns the slices. Boundaries are clamped monotonic (the window
// opens an instant before the fast-forward switch lands), and missing
// transitions extend the previous phase to the run's end — a window
// that never opens leaves one long pre-window, a window still open at
// exit leaves fi-window as the final phase.
func (s *Simulator) emitPhases(start phaseCut, ffArmed bool) []obs.PhaseSlice {
	end := phaseCut{time.Now().UnixNano(), s.Core.Ticks}
	ffEnd, winOpen, winClose := s.ffEndMark, s.winOpenMark, s.winCloseMark
	type bound struct {
		name string // phase that ENDS at this cut
		cut  phaseCut
	}
	var bounds []bound
	if ffArmed {
		if ffEnd.ns == 0 {
			ffEnd = end // run ended inside the fast-forward prefix
		}
		bounds = append(bounds, bound{"fast-forward", ffEnd})
	}
	if winOpen.ns == 0 {
		winOpen, winClose = end, end // window never opened
	} else if winClose.ns == 0 {
		winClose = end // window still open at exit
	}
	bounds = append(bounds,
		bound{"pre-window", winOpen},
		bound{"fi-window", winClose},
		bound{"post-window", end},
	)
	parent := s.expSpan.Context()
	track := s.expSpan.TrackName()
	cur := start
	var phases []obs.PhaseSlice
	for _, b := range bounds {
		to := b.cut
		if to.ns < cur.ns {
			to = cur
		}
		if to.ns > end.ns {
			to = end
		}
		if to.ns <= cur.ns {
			cur = to
			continue // zero-length phase (e.g. pre-window with ff-to-window)
		}
		ph := obs.PhaseSlice{
			Name: b.name, StartNS: cur.ns, EndNS: to.ns,
			StartTick: cur.tick, EndTick: to.tick,
		}
		phases = append(phases, ph)
		s.spans.AddChild(parent, obs.SpanRecord{
			Name: ph.Name, Track: track,
			StartNS: ph.StartNS, EndNS: ph.EndNS,
			StartTick: ph.StartTick, EndTick: ph.EndTick,
		})
		cur = to
	}
	return phases
}

// Run drives the simulation to completion (program exit, trap, watchdog,
// checkpoint stop, or external interrupt).
func (s *Simulator) Run() RunResult {
	if s.Model == nil {
		return RunResult{Crashed: true, CrashCause: "no program loaded"}
	}
	s.armTranslationLimit(0)
	endSpan := s.Cfg.Tracer.Span(obs.CatSim, "run", 0)
	var steps uint64
	for !s.Core.Stopped && !s.stopRequested {
		// The interrupt flag is polled once per 256 steps so the atomic
		// load stays off the per-instruction critical path.
		if steps&255 == 0 && s.interrupted.Load() {
			s.interrupted.Store(false)
			s.Cfg.Tracer.Instant(obs.CatSim, "run.interrupted", s.Core.Ticks, nil)
			r := s.result(false, false)
			r.Interrupted = true
			endSpan(map[string]any{"outcome": "interrupted"})
			return r
		}
		steps++
		if !s.Model.Step() {
			break
		}
		if s.ffActive && (s.ffPending ||
			(s.Cfg.FastForwardAt > 0 && s.Core.Insts >= s.Cfg.FastForwardAt)) {
			s.endFastForward()
		}
		if s.Cfg.MaxInsts > 0 && s.Core.Insts >= s.Cfg.MaxInsts {
			s.Cfg.Tracer.Instant(obs.CatSim, "watchdog.hang", s.Core.Ticks,
				map[string]any{"insts": s.Core.Insts})
			endSpan(map[string]any{"outcome": "hang"})
			return s.result(false, true)
		}
		if s.Cfg.SwitchToAtomicOnResolve && !s.switched && s.Engine != nil &&
			s.Cfg.Model == ModelPipelined && s.Engine.AnyFired() && s.Engine.Resolved() {
			s.SwitchModel(ModelAtomic)
		}
	}
	stoppedAtCkpt := s.stopRequested && !s.Core.Stopped
	s.stopRequested = false
	r := s.result(stoppedAtCkpt, false)
	endSpan(map[string]any{
		"outcome": runOutcomeName(r), "insts": r.Insts, "ticks": r.Ticks, "model": r.Model,
	})
	return r
}

// runOutcomeName labels a result for trace events.
func runOutcomeName(r RunResult) string {
	switch {
	case r.Crashed:
		return "crashed"
	case r.Hung:
		return "hang"
	case r.StoppedAtCheckpoint:
		return "checkpoint"
	default:
		return "exit"
	}
}

// result assembles the RunResult.
func (s *Simulator) result(atCheckpoint, hung bool) RunResult {
	r := RunResult{
		Insts:               s.Core.Insts,
		Ticks:               s.Core.Ticks,
		Console:             s.Kernel.Console(),
		Model:               s.Model.ModelName(),
		Switched:            s.switched,
		Hung:                hung,
		StoppedAtCheckpoint: atCheckpoint,
	}
	if s.Engine != nil {
		r.Outcomes = s.Engine.Outcomes()
	}
	if hung {
		return r
	}
	if atCheckpoint {
		return r
	}
	if s.Core.Trap != nil {
		r.Crashed = true
		r.CrashCause = s.Core.Trap.Error()
		return r
	}
	if s.Core.Stopped {
		r.Exited = true
		r.ExitStatus = s.Core.ExitStatus
	}
	return r
}

// SwitchModel drains the current model and continues with another —
// gem5's CPU-model switching, used by the campaign methodology to finish
// runs in fast atomic mode after fault manifestation.
func (s *Simulator) SwitchModel(kind ModelKind) {
	from := s.Model.ModelName()
	s.Model.Drain()
	if s.Core.Stopped {
		return
	}
	s.Model = s.newModel(kind)
	s.switched = true
	s.Cfg.Metrics.Counter("sim.model_switches").Inc()
	s.Cfg.Tracer.Instant(obs.CatSim, "model.switch", s.Core.Ticks,
		map[string]any{"from": from, "to": string(kind)})
}

// Checkpoint captures the whole-machine state.
func (s *Simulator) Checkpoint() *checkpoint.State {
	st := &checkpoint.State{
		Core:   s.Core.Snapshot(),
		Mem:    s.Mem.Snapshot(),
		Kernel: s.Kernel.Snapshot(),
	}
	s.Cfg.Metrics.Counter("sim.checkpoint.captures").Inc()
	s.Cfg.Tracer.Instant(obs.CatCheckpoint, "checkpoint.capture", s.Core.Ticks,
		map[string]any{"insts": st.Core.Insts, "approx_bytes": st.ApproxSize()})
	return st
}

// Restore rewinds the machine to a checkpoint and re-arms the fault
// engine with a fresh fault list (the fi_read_init_all contract: "upon
// restoring a checkpoint GemFI parses again the faults configuration
// file"). The CPU model restarts cleanly (drained pipeline, cold
// predictor and caches).
func (s *Simulator) Restore(st *checkpoint.State, faults []core.Fault) {
	s.Mem.Restore(st.Mem)
	s.Core.RestoreSnapshot(st.Core)
	s.Kernel.Restore(st.Kernel)
	if s.Hier != nil {
		s.Hier.InvalidateAll()
	}
	if s.Engine != nil {
		s.Engine.Reset(faults) // also resets the taint tracker (rearm)
	} else {
		s.Cfg.Taint.Reset()
	}
	if pr := s.Cfg.Profiler; pr != nil {
		pr.ResetStack() // the restored guest is mid-call-chain
	}
	s.Cfg.Flight.Reset() // nil-safe; the ring belongs to one experiment
	s.Model = s.newModel(s.Cfg.Model)
	s.switched = false
	s.stopRequested = false
	s.WindowOpenInsts = 0
	s.armFastForward() // re-arm the atomic prefix for the next experiment
	s.interrupted.Store(false)
	s.Cfg.Metrics.Counter("sim.checkpoint.restores").Inc()
	s.Cfg.Tracer.Instant(obs.CatCheckpoint, "checkpoint.restore", s.Core.Ticks,
		map[string]any{"insts": st.Core.Insts, "faults": len(faults)})
}

// RunToCheckpoint runs until fi_read_init_all() executes and returns the
// captured state; an error is returned if the program ends first.
func (s *Simulator) RunToCheckpoint() (*checkpoint.State, RunResult, error) {
	var captured *checkpoint.State
	prevHook := s.OnCheckpoint
	prevStop := s.Cfg.StopAtCheckpoint
	s.OnCheckpoint = func(sim *Simulator) { captured = sim.Checkpoint() }
	s.Cfg.StopAtCheckpoint = true
	res := s.Run()
	s.OnCheckpoint = prevHook
	s.Cfg.StopAtCheckpoint = prevStop
	if captured == nil {
		return nil, res, fmt.Errorf("sim: program ended without reaching fi_read_init_all")
	}
	return captured, res, nil
}

// ReadMem64 reads a quadword of guest memory (harness output extraction).
func (s *Simulator) ReadMem64(addr uint64) (uint64, error) { return s.Mem.Read64(addr) }

// ReadMemBytes reads guest memory (harness output extraction).
func (s *Simulator) ReadMemBytes(addr uint64, n int) ([]byte, error) {
	return s.Mem.LoadBytes(addr, n)
}
