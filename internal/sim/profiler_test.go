package sim

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// profLoopProgram is a handcrafted loop with a known trip count: the
// three body instructions at `loop` must each retire exactly profTrips
// times, on every CPU model.
const profTrips = 37

const profLoopProgram = `
_start:
    li   t0, 37
    li   t1, 0
loop:
    addq t1, #2, t1
    subq t0, #1, t0
    bne  t0, loop
    li   a0, 0
    li   v0, 1
    callsys
`

// TestProfilerExactCounts checks the profiler's per-PC instruction
// counts against an independent tally (the commit-time TraceFn) on all
// three CPU models, pins the known loop trip count, and requires the
// cycle attribution to sum to the run's total ticks.
func TestProfilerExactCounts(t *testing.T) {
	var ref map[uint64]uint64 // atomic-model commit counts; models must agree
	for _, model := range []ModelKind{ModelAtomic, ModelTiming, ModelPipelined} {
		p, err := asm.Assemble(profLoopProgram)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Model: model, EnableFI: false, MaxInsts: 1_000_000, EnableProfiler: true})
		if err := s.Load(p); err != nil {
			t.Fatal(err)
		}
		counts := map[uint64]uint64{}
		s.Core.TraceFn = func(pc uint64, in isa.Inst) { counts[pc]++ }
		r := s.Run()
		if !r.Exited || r.ExitStatus != 0 {
			t.Fatalf("%s: run failed: %+v", model, r)
		}

		snap := s.Profiler().Snapshot()
		got := map[uint64]uint64{}
		var sumInsts, sumCycles uint64
		for _, st := range snap.PCs {
			got[st.PC] = st.Insts
			sumInsts += st.Insts
			sumCycles += st.Cycles
		}

		// Exact agreement with the independent commit tally, PC by PC.
		if len(got) != len(counts) {
			t.Errorf("%s: profiler covers %d PCs, trace saw %d", model, len(got), len(counts))
		}
		for pc, n := range counts {
			if got[pc] != n {
				t.Errorf("%s: pc 0x%x: profiler insts = %d, trace = %d", model, pc, got[pc], n)
			}
		}
		if sumInsts != r.Insts {
			t.Errorf("%s: profiled insts sum = %d, run retired %d", model, sumInsts, r.Insts)
		}
		if sumCycles != r.Ticks {
			t.Errorf("%s: profiled cycles sum = %d, run ticks = %d", model, sumCycles, r.Ticks)
		}

		// The handcrafted loop body retires exactly profTrips times.
		loopAddr, ok := p.SymbolMap["loop"]
		if !ok {
			t.Fatal("no loop symbol")
		}
		for off := uint64(0); off < 12; off += 4 {
			if got[loopAddr+off] != profTrips {
				t.Errorf("%s: loop+0x%x retired %d times, want %d", model, off, got[loopAddr+off], profTrips)
			}
		}

		// Architectural commit counts must agree across models (the
		// lockstep-conformance property, seen through the profiler).
		if ref == nil {
			ref = got
		} else {
			for pc, n := range ref {
				if got[pc] != n {
					t.Errorf("%s: pc 0x%x retired %d times, atomic retired %d", model, pc, got[pc], n)
				}
			}
		}

		// Every retired instruction lands in a named symbol.
		named, total := snap.AttributedInsts()
		if named != total {
			t.Errorf("%s: %d of %d insts attributed to named functions", model, named, total)
		}
	}
}

// TestProfilerSurvivesModelSwitch checks that cycle attribution stays
// consistent through the campaign methodology's pipelined->atomic
// switch path (Drain + new model share one Core and one profiler).
func TestProfilerSwitchModel(t *testing.T) {
	p, err := asm.Assemble(profLoopProgram)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Model: ModelPipelined, EnableFI: false, MaxInsts: 1_000_000, EnableProfiler: true})
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	// Step a few pipeline cycles, switch to atomic mid-run, finish.
	for i := 0; i < 20 && !s.Core.Stopped; i++ {
		s.Model.Step()
	}
	s.SwitchModel(ModelAtomic)
	r := s.Run()
	if !r.Exited || r.ExitStatus != 0 {
		t.Fatalf("run failed: %+v", r)
	}
	snap := s.Profiler().Snapshot()
	var sumInsts, sumCycles uint64
	for _, st := range snap.PCs {
		sumInsts += st.Insts
		sumCycles += st.Cycles
	}
	if sumInsts != r.Insts {
		t.Errorf("profiled insts sum = %d, run retired %d", sumInsts, r.Insts)
	}
	if sumCycles != r.Ticks {
		t.Errorf("profiled cycles sum = %d, run ticks = %d", sumCycles, r.Ticks)
	}
}
