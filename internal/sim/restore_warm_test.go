package sim

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/mem"
)

// restoreWarmProgram mutates every word of a buffer after the checkpoint,
// so any stale micro-TLB translation, predecoded instruction, or MRU
// cache-line pointer surviving a restore would read post-checkpoint
// values out of pre-checkpoint state (or vice versa) and change the sum.
const restoreWarmProgram = `
int buf[64];
int out[1];
int main() {
    int i = 0;
    for (i = 0; i < 64; i = i + 1) { buf[i] = i + 1; }
    fi_checkpoint();
    int s = 0;
    for (i = 0; i < 64; i = i + 1) { buf[i] = buf[i] * 3; s = s + buf[i]; }
    out[0] = s;
    return 0;
}`

// TestRestoreIntoWarmedCore restores a checkpoint into a machine that ran
// to completion first — micro-TLBs, predecode caches and cache MRU
// pointers all warm with post-checkpoint state — and requires the re-run
// to finish bit-identical to a restore into a cold machine. Guards the
// invariant that every restore path invalidates translation and decode
// state unconditionally.
func TestRestoreIntoWarmedCore(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelTiming, ModelPipelined} {
		cfg := Config{Model: model, EnableFI: true, MaxInsts: 10_000_000}

		warm := compileMC(t, restoreWarmProgram, cfg)
		var st *checkpoint.State
		warm.OnCheckpoint = func(sm *Simulator) {
			if st == nil {
				st = sm.Checkpoint()
			}
		}
		if r := warm.Run(); r.Failed() {
			t.Fatalf("%s: first run failed: %+v", model, r)
		}
		if st == nil {
			t.Fatalf("%s: fi_checkpoint never hit", model)
		}
		// The machine is fully warmed with end-of-run state; restoring must
		// not let any of it leak into the re-run.
		warm.Restore(st, nil)
		warmRes := warm.Run()

		cold := compileMC(t, restoreWarmProgram, cfg)
		cold.Restore(st, nil)
		coldRes := cold.Run()

		if warmRes.Failed() || coldRes.Failed() {
			t.Fatalf("%s: restored runs failed: warm %+v, cold %+v", model, warmRes, coldRes)
		}
		if !warm.Core.Arch.BitsEqual(&cold.Core.Arch) {
			t.Errorf("%s: stale state leaked through restore: architectural state diverged", model)
		}
		if warm.Core.Insts != cold.Core.Insts || warm.Core.Ticks != cold.Core.Ticks {
			t.Errorf("%s: counters diverged: insts %d vs %d, ticks %d vs %d",
				model, warm.Core.Insts, cold.Core.Insts, warm.Core.Ticks, cold.Core.Ticks)
		}
		if _, total := mem.DiffSnapshots(warm.Mem.Snapshot(), cold.Mem.Snapshot(), 4); total != 0 {
			t.Errorf("%s: %d bytes of memory diverged after warm restore", model, total)
		}
	}
}

// TestForkIntoWarmedSimulator is the fork-server variant: ForkFrom must
// scrub a simulator that has already run other experiments as thoroughly
// as Restore does.
func TestForkIntoWarmedSimulator(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelPipelined} {
		cfg := Config{Model: model, EnableFI: true, MaxInsts: 10_000_000}

		trunk := compileMC(t, restoreWarmProgram, cfg)
		trunk.Cfg.StopAtCheckpoint = true
		if r := trunk.Run(); !r.StoppedAtCheckpoint {
			t.Fatalf("%s: trunk did not stop at checkpoint: %+v", model, r)
		}
		fp := trunk.CaptureForkPoint()

		// Cold child: fork immediately after load.
		cold := compileMC(t, restoreWarmProgram, cfg)
		cold.ForkFrom(fp, nil)
		coldRes := cold.Run()

		// Warm child: a full prior run, then the fork.
		warm := compileMC(t, restoreWarmProgram, cfg)
		if r := warm.Run(); r.Failed() {
			t.Fatalf("%s: warm-up run failed: %+v", model, r)
		}
		warm.ForkFrom(fp, nil)
		warmRes := warm.Run()

		if warmRes.Failed() || coldRes.Failed() {
			t.Fatalf("%s: forked runs failed: warm %+v, cold %+v", model, warmRes, coldRes)
		}
		if !warm.Core.Arch.BitsEqual(&cold.Core.Arch) {
			t.Errorf("%s: stale state leaked through ForkFrom", model)
		}
		if _, total := mem.DiffSnapshots(warm.Mem.Snapshot(), cold.Mem.Snapshot(), 4); total != 0 {
			t.Errorf("%s: %d bytes of memory diverged after warm fork", model, total)
		}
	}
}
