package sim

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/checkpoint"
	"repro/internal/core"
)

// testProgram computes a checksum over an array between fi_activate_inst
// toggles, writes it to `out`, prints it as bytes and exits 0. It mirrors
// the Listing 2 structure of the paper: initialize, fi_read_init_all,
// fi_activate_inst, kernel, fi_activate_inst, exit.
const testProgram = `
_start:
    ; ---- initialization phase ----
    la   t0, arr
    li   t1, 32
    li   t2, 1
init:
    sll  t2, #1, t3
    addq t3, t2, t2      ; t2 = t2*3
    and  t2, #255, t4
    stq  t4, 0(t0)
    addq t0, #8, t0
    subq t1, #1, t1
    bne  t1, init

    ; ---- checkpoint + activate FI (id 0 in a0) ----
    fi_read_init_all
    li   a0, 0
    fi_activate_inst

    ; ---- kernel under test ----
    la   t0, arr
    li   t1, 32
    li   t5, 0
sum:
    ldq  t6, 0(t0)
    addq t5, t6, t5
    addq t0, #8, t0
    subq t1, #1, t1
    bne  t1, sum

    ; ---- deactivate FI ----
    li   a0, 0
    fi_activate_inst

    la   t7, out
    stq  t5, 0(t7)
    ; print low byte
    and  t5, #255, a0
    li   v0, 2
    callsys
    li   a0, 0
    li   v0, 1
    callsys
.data
arr: .space 256
out: .quad 0
`

func build(t testing.TB) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(testProgram)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSim(t testing.TB, cfg Config) *Simulator {
	t.Helper()
	s := New(cfg)
	if err := s.Load(build(t)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunCleanAtomic(t *testing.T) {
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	r := s.Run()
	if !r.Exited || r.ExitStatus != 0 {
		t.Fatalf("run failed: %+v", r)
	}
	if s.CheckpointHits != 1 {
		t.Errorf("checkpoint hits = %d", s.CheckpointHits)
	}
	if s.Engine.ThreadsActive() != 0 {
		t.Errorf("fi_activate_inst toggle did not deactivate")
	}
	if s.Engine.Activations != 1 {
		t.Errorf("activations = %d", s.Engine.Activations)
	}
}

// TestNoFaultBitExact is the paper's Section IV.A validation: simulating
// with GemFI (fault injection active, no faults injected) must produce
// output identical to the unmodified simulator, on every CPU model.
func TestNoFaultBitExact(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelTiming, ModelPipelined} {
		vanilla := newSim(t, Config{Model: model, EnableFI: false})
		rv := vanilla.Run()
		gemfi := newSim(t, Config{Model: model, EnableFI: true})
		rg := gemfi.Run()
		if rv.Exited != rg.Exited || rv.ExitStatus != rg.ExitStatus {
			t.Errorf("%s: exit mismatch: %+v vs %+v", model, rv, rg)
		}
		if rv.Console != rg.Console {
			t.Errorf("%s: console mismatch: %q vs %q", model, rv.Console, rg.Console)
		}
		if rv.Insts != rg.Insts {
			t.Errorf("%s: instruction count mismatch: %d vs %d", model, rv.Insts, rg.Insts)
		}
		outV, _ := vanilla.ReadMem64(vanilla.Program.MustSymbol("out"))
		outG, _ := gemfi.ReadMem64(gemfi.Program.MustSymbol("out"))
		if outV != outG {
			t.Errorf("%s: output mismatch: %d vs %d", model, outV, outG)
		}
	}
}

// TestModelsAgreeOnResult checks all three models produce the same
// architectural outcome for the test program.
func TestModelsAgreeOnResult(t *testing.T) {
	var ref uint64
	for i, model := range []ModelKind{ModelAtomic, ModelTiming, ModelPipelined} {
		s := newSim(t, Config{Model: model, EnableFI: true})
		r := s.Run()
		if r.Failed() {
			t.Fatalf("%s failed: %+v", model, r)
		}
		out, err := s.ReadMem64(s.Program.MustSymbol("out"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = out
		} else if out != ref {
			t.Errorf("%s: out=%d want %d", model, out, ref)
		}
	}
}

func TestRegisterFaultChangesOutput(t *testing.T) {
	// Flip a high bit of the accumulator register (t5 = R6) early in the
	// summation loop: the checksum must change, and the engine must mark
	// the fault as propagated.
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 6, Behavior: core.BehFlip, Bit: 40,
		ThreadID: 0, Base: core.TimeInst, When: 10, Occ: 1,
	}
	clean := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	rc := clean.Run()
	faulty := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}})
	rf := faulty.Run()
	if rc.Failed() || rf.Failed() {
		t.Fatalf("unexpected failure: clean=%+v faulty=%+v", rc, rf)
	}
	outC, _ := clean.ReadMem64(clean.Program.MustSymbol("out"))
	outF, _ := faulty.ReadMem64(faulty.Program.MustSymbol("out"))
	if outC == outF {
		t.Errorf("bit-40 flip of live accumulator did not change output")
	}
	oc := rf.Outcomes[0]
	if !oc.Fired || !oc.Propagated {
		t.Errorf("fault lifecycle wrong: %+v", oc)
	}
}

func TestDeadRegisterFaultIsNonPropagated(t *testing.T) {
	// s5 (R14) is never used by the test program: the fault must fire
	// but not propagate, and the output must be bit-exact.
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 14, Behavior: core.BehFlip, Bit: 3,
		ThreadID: 0, Base: core.TimeInst, When: 10, Occ: 1,
	}
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}})
	r := s.Run()
	if r.Failed() {
		t.Fatalf("failed: %+v", r)
	}
	oc := r.Outcomes[0]
	if !oc.Fired {
		t.Fatal("fault never fired")
	}
	if oc.Propagated {
		t.Errorf("dead register fault must not propagate: %+v", oc)
	}
}

func TestOverwrittenRegisterFaultIsNonPropagated(t *testing.T) {
	// t6 (R7) is loaded fresh (ldq) at the top of each loop iteration.
	// A fault injected right before the load is overwritten before use.
	// The sum loop body is: ldq/addq/addq/subq/bne. Timing the fault to
	// land on the bne (instruction 5 of an iteration) means the next
	// committed use of t6 is the overwriting ldq.
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 7, Behavior: core.BehFlip, Bit: 2,
		ThreadID: 0, Base: core.TimeInst, When: 10, Occ: 1,
	}
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}})
	r := s.Run()
	if r.Failed() {
		t.Fatalf("failed: %+v", r)
	}
	oc := r.Outcomes[0]
	if !oc.Fired {
		t.Fatal("fault never fired")
	}
	// Whether inst 10 lands on a use or an overwrite depends on the loop
	// phase; assert the engine reached a definite verdict.
	if !oc.Propagated && !oc.Overwritten && oc.Detail == "" {
		t.Errorf("no verdict recorded: %+v", oc)
	}
}

func TestPCFaultUsuallyFatal(t *testing.T) {
	// Corrupt a high PC bit: lands far outside mapped text.
	f := core.Fault{
		Loc: core.LocPC, Behavior: core.BehFlip, Bit: 28,
		ThreadID: 0, Base: core.TimeInst, When: 20, Occ: 1,
	}
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 1_000_000})
	r := s.Run()
	if !r.Failed() {
		t.Errorf("PC bit-28 flip should crash: %+v", r)
	}
}

func TestFetchFaultOnSBZBitIsHarmless(t *testing.T) {
	// The summation loop body starts with ldq (memory format) — but we
	// can reliably target an operate instruction: instruction 2 after
	// activation is "addq t5, t6, t5"? Instead of depending on exact
	// dynamic position, flip bit 13 (SBZ for register-form operates) at
	// a point known to be the addq: dynamic instruction 2 of the loop.
	// We verify by requiring either identical output (SBZ/unused bit) or
	// a recorded detail — and, critically, that the engine logged the
	// affected instruction for postmortem analysis.
	f := core.Fault{
		Loc: core.LocFetch, Behavior: core.BehFlip, Bit: 13,
		ThreadID: 0, Base: core.TimeInst, When: 2, Occ: 1,
	}
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 1_000_000})
	r := s.Run()
	oc := r.Outcomes[0]
	if !oc.Fired {
		t.Fatal("fetch fault never fired")
	}
	if oc.Detail == "" || !strings.Contains(oc.Detail, "fetch") {
		t.Errorf("missing postmortem detail: %+v", oc)
	}
}

func TestExecFaultOnMemInstructionCorruptsAddress(t *testing.T) {
	// The first instruction of the sum loop is a ldq: an execute-stage
	// fault flips a high bit of its effective address -> segfault (the
	// paper's observation about execute-stage faults on memory
	// instructions).
	f := core.Fault{
		Loc: core.LocExec, Behavior: core.BehFlip, Bit: 40,
		ThreadID: 0, Base: core.TimeInst, When: 3, Occ: 1,
	}
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 1_000_000})
	r := s.Run()
	// Instruction 3 after activation is inside the loop preamble; find
	// whether it was a memory op via the recorded detail. Either way the
	// fault must have fired.
	if !r.Outcomes[0].Fired {
		t.Fatal("exec fault never fired")
	}
	_ = r
}

func TestMemFaultCorruptsLoadedValue(t *testing.T) {
	// Corrupt the first load's value: sum changes by exactly the flipped
	// bit's weight (bit 4 = 16).
	f := core.Fault{
		Loc: core.LocMem, Behavior: core.BehFlip, Bit: 4,
		ThreadID: 0, Base: core.TimeInst, When: 1, Occ: 1,
	}
	clean := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	clean.Run()
	faulty := newSim(t, Config{Model: ModelAtomic, EnableFI: true, Faults: []core.Fault{f}})
	rf := faulty.Run()
	if rf.Failed() {
		t.Fatalf("failed: %+v", rf)
	}
	outC, _ := clean.ReadMem64(clean.Program.MustSymbol("out"))
	outF, _ := faulty.ReadMem64(faulty.Program.MustSymbol("out"))
	diff := int64(outF) - int64(outC)
	if diff != 16 && diff != -16 {
		t.Errorf("load-value bit-4 flip changed sum by %d, want +-16", diff)
	}
}

func TestCheckpointRestoreDeterminism(t *testing.T) {
	// Capture at fi_read_init_all, run to completion, restore, run again:
	// both continuations must agree bit-exactly.
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	st, _, err := s.RunToCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	r1 := s.Run()
	out1, _ := s.ReadMem64(s.Program.MustSymbol("out"))
	s.Restore(st, nil)
	r2 := s.Run()
	out2, _ := s.ReadMem64(s.Program.MustSymbol("out"))
	if r1.ExitStatus != r2.ExitStatus || out1 != out2 {
		t.Errorf("restore not deterministic: %d/%d vs %d/%d", r1.ExitStatus, out1, r2.ExitStatus, out2)
	}
	if r1.Console != r2.Console {
		t.Errorf("console diverged: %q vs %q", r1.Console, r2.Console)
	}
}

func TestCheckpointSerializationRoundTrip(t *testing.T) {
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	st, _, err := s.RunToCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := st.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("empty checkpoint")
	}
	// Run original to completion for reference.
	r1 := s.Run()
	out1, _ := s.ReadMem64(s.Program.MustSymbol("out"))

	// Bring up a brand-new simulator from the serialized bytes.
	st2, err := checkpoint.FromBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	s2.Restore(st2, nil)
	r2 := s2.Run()
	out2, _ := s2.ReadMem64(s2.Program.MustSymbol("out"))
	if r1.ExitStatus != r2.ExitStatus || out1 != out2 {
		t.Errorf("serialized restore diverged: %d/%d vs %d/%d", r1.ExitStatus, out1, r2.ExitStatus, out2)
	}
}

// TestCheckpointRestoreWithDifferentFaults is the campaign pattern of
// Fig. 3: one checkpoint, many experiments with different fault configs.
func TestCheckpointRestoreWithDifferentFaults(t *testing.T) {
	s := newSim(t, Config{Model: ModelAtomic, EnableFI: true})
	st, _, err := s.RunToCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	outs := map[int]uint64{}
	for bit := 0; bit < 3; bit++ {
		f := core.Fault{
			Loc: core.LocMem, Behavior: core.BehFlip, Bit: bit,
			ThreadID: 0, Base: core.TimeInst, When: 1, Occ: 1,
		}
		s.Restore(st, []core.Fault{f})
		r := s.Run()
		if r.Failed() {
			t.Fatalf("bit %d: %+v", bit, r)
		}
		out, _ := s.ReadMem64(s.Program.MustSymbol("out"))
		outs[bit] = out
		if !r.Outcomes[0].Fired {
			t.Errorf("bit %d: fault did not fire after restore", bit)
		}
	}
	if outs[0] == outs[1] && outs[1] == outs[2] {
		t.Error("different faults produced identical outputs — restore likely stale")
	}
}

// TestSwitchToAtomicAfterResolve verifies the campaign methodology: start
// pipelined, inject, and once the fault resolves the simulator must be
// running the atomic model.
func TestSwitchToAtomicAfterResolve(t *testing.T) {
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 6, Behavior: core.BehFlip, Bit: 1,
		ThreadID: 0, Base: core.TimeInst, When: 20, Occ: 1,
	}
	s := newSim(t, Config{
		Model: ModelPipelined, EnableFI: true, Faults: []core.Fault{f},
		SwitchToAtomicOnResolve: true, MaxInsts: 10_000_000,
	})
	r := s.Run()
	if !r.Switched {
		t.Errorf("expected pipelined->atomic switch: %+v", r)
	}
	if r.Model != "atomic" {
		t.Errorf("final model = %s", r.Model)
	}
	if !r.Outcomes[0].Fired {
		t.Error("fault did not fire")
	}
}

// TestWatchdogClassifiesHang: a PC fault that lands in mapped memory can
// loop forever; MaxInsts must stop it.
func TestWatchdogClassifiesHang(t *testing.T) {
	p, err := asm.Assemble("_start:\nspin: br spin\n")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Model: ModelAtomic, EnableFI: false, MaxInsts: 10000})
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if !r.Hung || !r.Failed() {
		t.Errorf("expected hang: %+v", r)
	}
}

func TestPipelinedFaultInjectionEndToEnd(t *testing.T) {
	// Same register fault on atomic and pipelined: both must fire and
	// both runs must produce the same corrupted output (the fault applies
	// at commit in both models).
	f := core.Fault{
		Loc: core.LocIntReg, Reg: 6, Behavior: core.BehFlip, Bit: 7,
		ThreadID: 0, Base: core.TimeInst, When: 15, Occ: 1,
	}
	outs := map[ModelKind]uint64{}
	for _, model := range []ModelKind{ModelAtomic, ModelPipelined} {
		s := newSim(t, Config{Model: model, EnableFI: true, Faults: []core.Fault{f}, MaxInsts: 10_000_000})
		r := s.Run()
		if r.Hung {
			t.Fatalf("%s hung", model)
		}
		if !r.Outcomes[0].Fired {
			t.Fatalf("%s: fault did not fire", model)
		}
		out, _ := s.ReadMem64(s.Program.MustSymbol("out"))
		outs[model] = out
	}
	if outs[ModelAtomic] != outs[ModelPipelined] {
		t.Errorf("commit-time register fault diverged across models: %v", outs)
	}
}
