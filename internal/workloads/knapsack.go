package workloads

import "fmt"

// knapsackParams returns (items, population, generations) for a scale.
func knapsackParams(scale Scale) (items, pop, gens int) {
	switch scale {
	case ScalePaper:
		return 24, 32, 200 // "an input of 24 items and a weight limit of 500"
	case ScaleSmall:
		return 24, 16, 40
	default:
		return 16, 8, 15
	}
}

// knapsackLimit is the paper's weight limit.
const knapsackLimit = 500

// Knapsack builds the 0/1-knapsack-via-genetic-algorithm workload.
// The paper does not state a numeric tolerance; we classify a run as
// correct when its best solution is feasible (within the weight limit)
// and achieves at least 95% of the fault-free fitness, which captures
// "the GA still found a good solution".
func Knapsack(scale Scale) *Workload {
	items, pop, gens := knapsackParams(scale)
	rng := newLCG(4242)
	values := make([]int64, items)
	weights := make([]int64, items)
	for i := 0; i < items; i++ {
		values[i] = int64(rng.intn(90) + 10)
		weights[i] = int64(rng.intn(45) + 5)
	}

	src := fmt.Sprintf(`
// 0/1 knapsack via a genetic algorithm (paper benchmark "Knapsack").
int values[%[1]d] = %[2]s;
int weights[%[1]d] = %[3]s;
int popv[%[4]d];
int best_out[2];   // [0] best fitness, [1] best genome

int seed_g = 20070705;

int lcg() {
    seed_g = (seed_g * 1103515245 + 12345) & 0x7FFFFFFF;
    return seed_g;
}

int fitness(int genome) {
    int v = 0;
    int w = 0;
    for (int i = 0; i < %[1]d; i = i + 1) {
        if ((genome >> i) & 1) {
            v = v + values[i];
            w = w + weights[i];
        }
    }
    if (w > %[5]d) { return 0; }
    return v;
}

int main() {
    int items = %[1]d;
    int psize = %[4]d;
    int mask = (1 << items) - 1;
    os_boot();
    fi_checkpoint();
    fi_activate(0);
    for (int i = 0; i < psize; i = i + 1) {
        popv[i] = lcg() & mask;
    }
    int best = 0;
    int bestg = 0;
    for (int g = 0; g < %[6]d; g = g + 1) {
        for (int i = 0; i < psize; i = i + 1) {
            // Tournament selection of two parents.
            int a = popv[lcg() %% psize];
            int b = popv[lcg() %% psize];
            int pa;
            if (fitness(a) >= fitness(b)) { pa = a; } else { pa = b; }
            int c = popv[lcg() %% psize];
            int d = popv[lcg() %% psize];
            int pb;
            if (fitness(c) >= fitness(d)) { pb = c; } else { pb = d; }
            // Single-point crossover.
            int cut = lcg() %% items;
            int lowmask = (1 << cut) - 1;
            int child = (pa & lowmask) | (pb & (mask ^ lowmask));
            // Mutation.
            if (lcg() %% 8 == 0) {
                child = child ^ (1 << (lcg() %% items));
            }
            popv[i] = child;
            int f = fitness(child);
            if (f > best) {
                best = f;
                bestg = child;
            }
        }
    }
    best_out[0] = best;
    best_out[1] = bestg;
    fi_activate(0);
    return 0;
}
`, items, intArray(values), intArray(weights), pop, knapsackLimit, gens)

	src = bootPreamble(scale) + src

	specs := []OutputSpec{{Symbol: "best_out", Count: 2}}
	return &Workload{
		Name:    "knapsack",
		Source:  src,
		Outputs: specs,
		Classify: func(golden, run *Result) Grade {
			if bitsEqual(golden.Data, run.Data, specs) {
				return GradeStrict
			}
			goldenBest := int64(golden.Data["best_out"][0])
			runBest := int64(run.Data["best_out"][0])
			genome := int64(run.Data["best_out"][1])
			// Host-side feasibility + claimed-fitness audit using the
			// known item table.
			var v, w int64
			for i := 0; i < items; i++ {
				if genome>>uint(i)&1 == 1 {
					v += values[i]
					w += weights[i]
				}
			}
			feasible := w <= knapsackLimit && v == runBest
			if feasible && runBest*100 >= goldenBest*95 {
				return GradeCorrect
			}
			return GradeSDC
		},
	}
}
