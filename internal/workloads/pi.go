package workloads

import (
	"fmt"
	"math"
)

// piPoints returns the sample count for a scale.
func piPoints(scale Scale) int {
	switch scale {
	case ScalePaper:
		return 100000 // "randomly selecting 10^5 points within a unit square"
	case ScaleSmall:
		return 5000
	default:
		return 500
	}
}

// MonteCarloPI builds the PI-estimation workload. Outcome criterion from
// the paper: "we accept experiments that have computed the first two
// decimal points correctly".
func MonteCarloPI(scale Scale) *Workload {
	n := piPoints(scale)

	src := fmt.Sprintf(`
// Monte Carlo PI estimation (paper benchmark "PI").
float pi_out[1];
int inside_out[1];

int main() {
    int n = %d;
    os_boot();
    fi_checkpoint();
    fi_activate(0);
    int seed = 88172645;
    int inside = 0;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
        int xi = seed %% 65536;
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
        int yi = seed %% 65536;
        float x = itof(xi) / 65536.0;
        float y = itof(yi) / 65536.0;
        if (x * x + y * y <= 1.0) { inside = inside + 1; }
    }
    float pi = 4.0 * itof(inside) / itof(n);
    pi_out[0] = pi;
    inside_out[0] = inside;
    fi_activate(0);
    return 0;
}
`, n)

	src = bootPreamble(scale) + src

	specs := []OutputSpec{
		{Symbol: "pi_out", Count: 1},
		{Symbol: "inside_out", Count: 1},
	}
	return &Workload{
		Name:    "pi",
		Source:  src,
		Outputs: specs,
		Classify: func(golden, run *Result) Grade {
			if bitsEqual(golden.Data, run.Data, specs) {
				return GradeStrict
			}
			gp := math.Float64frombits(golden.Data["pi_out"][0])
			rp := math.Float64frombits(run.Data["pi_out"][0])
			// First two decimal digits must match the fault-free result.
			if !math.IsNaN(rp) && math.Floor(gp*100) == math.Floor(rp*100) {
				return GradeCorrect
			}
			return GradeSDC
		},
	}
}
