package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestScaleSmallGolden runs every workload at ScaleSmall (the benchmark
// scale) once, fault-free. It proves the larger problem sizes compile,
// terminate and classify; skipped under -short.
func TestScaleSmallGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("ScaleSmall goldens are slow; run without -short")
	}
	for _, w := range All(ScaleSmall) {
		g, r, err := Golden(w)
		if err != nil {
			t.Fatalf("%s: %v (%+v)", w.Name, err, r)
		}
		if got := w.Classify(g, g); got != GradeStrict {
			t.Errorf("%s: golden self-grade = %v", w.Name, got)
		}
		t.Logf("%s @small: %d instructions", w.Name, r.Insts)
	}
}

// TestScaleSmallFaultInjection runs one mid-window register fault per
// workload at ScaleSmall on the paper's pipelined-then-atomic
// methodology; skipped under -short.
func TestScaleSmallFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; run without -short")
	}
	for _, w := range All(ScaleSmall) {
		g, _, err := Golden(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		f := core.Fault{
			Loc: core.LocIntReg, Reg: 9, Behavior: core.BehFlip, Bit: 13,
			Base: core.TimeInst, When: 20_000, Occ: 1,
		}
		cfg := sim.DefaultConfig()
		cfg.MaxInsts = 4_000_000_000
		res, r, err := Execute(w, cfg, []core.Fault{f})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Hung {
			t.Errorf("%s: hung", w.Name)
			continue
		}
		outcome := "crash"
		if res != nil {
			outcome = w.Classify(g, res).String()
		}
		t.Logf("%s @small pipelined: s0 bit-13 flip -> %s", w.Name, outcome)
	}
}

// TestPaperScaleCompiles builds (but does not run) the paper-scale
// programs: 512x512 DCT, 64x64 Jacobi, 1e5-point PI, 720x240 deblocking.
// Compilation exercises the large-initializer paths of the toolchain.
func TestPaperScaleCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sources are large; run without -short")
	}
	for _, w := range All(ScalePaper) {
		p, err := w.Build()
		if err != nil {
			t.Fatalf("%s @paper: %v", w.Name, err)
		}
		if len(p.Text) == 0 || len(p.Data) == 0 {
			t.Errorf("%s @paper: empty image", w.Name)
		}
		t.Logf("%s @paper: %d instructions, %d KiB data", w.Name, len(p.Text), len(p.Data)>>10)
	}
}
