package workloads

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// goldenCache avoids recompiling/re-running fault-free references.
var goldenCache = map[string]*Result{}

func golden(t *testing.T, w *Workload) *Result {
	t.Helper()
	if g, ok := goldenCache[w.Name]; ok {
		return g
	}
	g, r, err := Golden(w)
	if err != nil {
		t.Fatalf("%s golden: %v (%+v)", w.Name, err, r)
	}
	goldenCache[w.Name] = g
	return g
}

// TestAllWorkloadsCompileAndTerminate is the basic liveness check for all
// six paper benchmarks at test scale.
func TestAllWorkloadsCompileAndTerminate(t *testing.T) {
	for _, w := range All(ScaleTest) {
		g := golden(t, w)
		if g.ExitStatus != 0 {
			t.Errorf("%s: exit = %d", w.Name, g.ExitStatus)
		}
		if got := w.Classify(g, g); got != GradeStrict {
			t.Errorf("%s: golden vs golden = %v, want strict", w.Name, got)
		}
	}
}

// TestGoldenDeterminism: two fault-free runs must agree bit-exactly
// (the whole classification scheme depends on it).
func TestGoldenDeterminism(t *testing.T) {
	for _, w := range All(ScaleTest) {
		a := golden(t, w)
		b, _, err := Golden(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !bitsEqual(a.Data, b.Data, w.Outputs) {
			t.Errorf("%s: golden runs differ", w.Name)
		}
	}
}

func TestDCTQualityIsLossyButAcceptable(t *testing.T) {
	w := DCT(ScaleTest)
	g := golden(t, w)
	imgW, imgH := dctDims(ScaleTest)
	in := syntheticImage(imgW, imgH, 12345)
	psnr, err := stats.PSNR64(in, toInt64s(g.Data["out"]), 255)
	if err != nil {
		t.Fatal(err)
	}
	// JPEG-style quantization is lossy (not +Inf) but must stay in the
	// "typical PSNR values in lossy image and video compression range
	// between 30 and 50 dB" band the paper cites.
	if math.IsInf(psnr, 1) || psnr < 30 {
		t.Errorf("golden DCT PSNR vs input = %v, want lossy but >= 30", psnr)
	}
}

func TestDCTClassifierBands(t *testing.T) {
	w := DCT(ScaleTest)
	g := golden(t, w)
	// Small corruption: one pixel off by 1 -> correct (not strict).
	small := cloneResult(g)
	small.Data["out"][0] ^= 1
	if got := w.Classify(g, small); got != GradeCorrect {
		t.Errorf("1-LSB pixel corruption = %v, want correct", got)
	}
	// Heavy corruption -> SDC.
	heavy := cloneResult(g)
	for i := range heavy.Data["out"] {
		heavy.Data["out"][i] = 0
	}
	if got := w.Classify(g, heavy); got != GradeSDC {
		t.Errorf("zeroed image = %v, want SDC", got)
	}
}

func TestJacobiConverges(t *testing.T) {
	w := Jacobi(ScaleTest)
	g := golden(t, w)
	iters := g.Data["iters"][0]
	if iters == 0 || iters >= 6000 {
		t.Fatalf("jacobi iterations = %d", iters)
	}
	// Verify the solution actually solves the system (residual small).
	n := jacobiN(ScaleTest)
	rng := newLCG(777)
	a := make([]float64, n*n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := float64(rng.intn(9)+1) / 10.0
				a[i*n+j] = v
				rowSum += v
			}
		}
		a[i*n+i] = rowSum + float64(rng.intn(10)+5)
		b[i] = float64(rng.intn(200) - 100)
	}
	x := make([]float64, n)
	for i, bits := range g.Data["x"] {
		x[i] = math.Float64frombits(bits)
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		if math.Abs(s-b[i]) > 1e-6 {
			t.Fatalf("row %d residual %v", i, math.Abs(s-b[i]))
		}
	}
}

func TestJacobiIterationCountToleratedByClassifier(t *testing.T) {
	w := Jacobi(ScaleTest)
	g := golden(t, w)
	// Same solution, different iteration count -> correct (paper's
	// Jacobi criterion).
	r := cloneResult(g)
	r.Data["iters"][0]++
	if got := w.Classify(g, r); got != GradeCorrect {
		t.Errorf("different iteration count = %v, want correct", got)
	}
	// Perturbed solution -> SDC.
	bad := cloneResult(g)
	bad.Data["x"][0] ^= 1 << 52
	if got := w.Classify(g, bad); got != GradeSDC {
		t.Errorf("perturbed solution = %v, want SDC", got)
	}
}

func TestPIEstimateIsReasonable(t *testing.T) {
	w := MonteCarloPI(ScaleTest)
	g := golden(t, w)
	pi := math.Float64frombits(g.Data["pi_out"][0])
	if pi < 2.9 || pi > 3.4 {
		t.Errorf("pi estimate = %v", pi)
	}
}

func TestPIClassifierTwoDecimals(t *testing.T) {
	w := MonteCarloPI(ScaleTest)
	g := golden(t, w)
	pi := math.Float64frombits(g.Data["pi_out"][0])
	// Same two decimals -> correct.
	near := cloneResult(g)
	near.Data["pi_out"][0] = math.Float64bits(math.Floor(pi*100)/100 + 0.004)
	if got := w.Classify(g, near); got != GradeCorrect {
		t.Errorf("same-two-decimals = %v, want correct", got)
	}
	// Off by 0.01 in the second decimal -> SDC.
	far := cloneResult(g)
	far.Data["pi_out"][0] = math.Float64bits(pi + 0.02)
	if got := w.Classify(g, far); got != GradeSDC {
		t.Errorf("wrong second decimal = %v, want SDC", got)
	}
	// NaN result -> SDC, not a panic.
	nan := cloneResult(g)
	nan.Data["pi_out"][0] = math.Float64bits(math.NaN())
	if got := w.Classify(g, nan); got != GradeSDC {
		t.Errorf("NaN = %v, want SDC", got)
	}
}

func TestKnapsackSolutionFeasible(t *testing.T) {
	w := Knapsack(ScaleTest)
	g := golden(t, w)
	best := int64(g.Data["best_out"][0])
	if best <= 0 {
		t.Fatalf("GA found no solution: best = %d", best)
	}
	// The classifier audits feasibility; golden must be feasible.
	if got := w.Classify(g, g); got != GradeStrict {
		t.Errorf("golden = %v", got)
	}
}

func TestKnapsackClassifierAuditsCheating(t *testing.T) {
	w := Knapsack(ScaleTest)
	g := golden(t, w)
	// A run claiming a higher fitness than its genome supports is SDC.
	cheat := cloneResult(g)
	cheat.Data["best_out"][0] += 1000
	if got := w.Classify(g, cheat); got != GradeSDC {
		t.Errorf("inflated fitness = %v, want SDC", got)
	}
}

func TestDeblockSmoothsEdges(t *testing.T) {
	w := Deblock(ScaleTest)
	g := golden(t, w)
	// The filter must have modified the frame (edges existed).
	width, height := deblockDims(ScaleTest)
	if width*height != len(g.Data["frame"]) {
		t.Fatal("frame size mismatch")
	}
}

func TestDeblockClassifierPSNR80(t *testing.T) {
	w := Deblock(ScaleTest)
	g := golden(t, w)
	// One LSB in one pixel of a 256-pixel frame: PSNR ~= 72 dB < 80 -> at
	// this tiny scale even 1 LSB is below the paper threshold, so flip
	// a fraction of a bit... instead verify ordering: tiny corruption on
	// larger frames passes. Use 2 frames worth of slack: corrupt one
	// pixel by 1 in a copy and compute expectation explicitly.
	r := cloneResult(g)
	r.Data["frame"][0] ^= 1
	psnr, _ := stats.PSNR64(toInt64s(g.Data["frame"]), toInt64s(r.Data["frame"]), 255)
	want := GradeSDC
	if psnr >= 80 {
		want = GradeCorrect
	}
	if got := w.Classify(g, r); got != want {
		t.Errorf("1-LSB frame corruption = %v, want %v (psnr %v)", got, want, psnr)
	}
}

func TestCannealReducesCost(t *testing.T) {
	w := Canneal(ScaleTest)
	g := golden(t, w)
	final, initial := int64(g.Data["cost_out"][0]), int64(g.Data["cost_out"][1])
	if final >= initial {
		t.Errorf("annealing did not reduce cost: %d -> %d", initial, final)
	}
}

func TestCannealClassifierChecksPermutation(t *testing.T) {
	w := Canneal(ScaleTest)
	g := golden(t, w)
	// Duplicate position -> invalid chip -> SDC.
	bad := cloneResult(g)
	bad.Data["pos"][1] = bad.Data["pos"][0]
	if got := w.Classify(g, bad); got != GradeSDC {
		t.Errorf("invalid permutation = %v, want SDC", got)
	}
}

// TestWorkloadFaultInjectionSmoke injects one register fault into each
// workload and checks the campaign-facing machinery end to end.
func TestWorkloadFaultInjectionSmoke(t *testing.T) {
	for _, w := range All(ScaleTest) {
		g := golden(t, w)
		f := core.Fault{
			Loc: core.LocIntReg, Reg: 1, Behavior: core.BehFlip, Bit: 3,
			ThreadID: 0, Base: core.TimeInst, When: 50, Occ: 1,
		}
		res, r, err := Execute(w, sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 500_000_000}, []core.Fault{f})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Hung {
			t.Errorf("%s: hung", w.Name)
			continue
		}
		if res != nil {
			grade := w.Classify(g, res)
			t.Logf("%s: fault -> %v (crashed=%v)", w.Name, grade, r.Crashed)
		} else {
			t.Logf("%s: fault -> crash (%s)", w.Name, r.CrashCause)
		}
	}
}

func cloneResult(r *Result) *Result {
	out := &Result{ExitStatus: r.ExitStatus, Data: make(map[string][]uint64, len(r.Data))}
	for k, v := range r.Data {
		out.Data[k] = append([]uint64(nil), v...)
	}
	return out
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name, ScaleTest)
		if err != nil || w.Name != name {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nope", ScaleTest); err == nil {
		t.Error("unknown name must error")
	}
}
