package workloads

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// dctDims returns the image dimensions for a scale (multiples of 8).
func dctDims(scale Scale) (w, h int) {
	switch scale {
	case ScalePaper:
		return 512, 512 // "a gray-scale 512X512 image"
	case ScaleSmall:
		return 16, 16
	default:
		return 8, 8
	}
}

// DCT builds the JPEG-compression kernel workload: per-8x8-block forward
// DCT, quantization, dequantization and inverse DCT. The outcome
// criterion follows the paper: "Images with PSNR higher than 30 are
// regarded as correct" (PSNR of the reconstructed image vs the input).
func DCT(scale Scale) *Workload {
	w, h := dctDims(scale)
	img := syntheticImage(w, h, 12345)

	// Cosine table ct[u*8+x] = cos((2x+1) u pi / 16) and DCT-II scale
	// factors, computed host-side and baked into the guest data section.
	ct := make([]float64, 64)
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			ct[u*8+x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	alpha := make([]float64, 8)
	alpha[0] = math.Sqrt(1.0 / 8.0)
	for u := 1; u < 8; u++ {
		alpha[u] = math.Sqrt(2.0 / 8.0)
	}
	// JPEG luminance quantization matrix, scaled to quality ~75
	// (halved, floor 1) so natural-image golden PSNR lands in the
	// paper's 30-50 dB lossy band.
	quant := []int64{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}
	for i := range quant {
		quant[i] = quant[i] / 2
		if quant[i] < 1 {
			quant[i] = 1
		}
	}

	src := fmt.Sprintf(`
// JPEG-style DCT compression kernel (paper benchmark "DCT").
int img[%[1]d] = %[2]s;
int out[%[1]d];
float ct[64] = %[3]s;
float alpha[8] = %[4]s;
int quant[64] = %[5]s;
float blk[64];
float coef[64];

void dct_block(int bx, int by) {
    int w = %[6]d;
    for (int y = 0; y < 8; y = y + 1) {
        for (int x = 0; x < 8; x = x + 1) {
            blk[y * 8 + x] = itof(img[(by * 8 + y) * w + bx * 8 + x]) - 128.0;
        }
    }
    for (int u = 0; u < 8; u = u + 1) {
        for (int v = 0; v < 8; v = v + 1) {
            float s = 0.0;
            for (int y = 0; y < 8; y = y + 1) {
                for (int x = 0; x < 8; x = x + 1) {
                    s = s + blk[y * 8 + x] * ct[u * 8 + y] * ct[v * 8 + x];
                }
            }
            s = s * alpha[u] * alpha[v];
            float q = s / itof(quant[u * 8 + v]);
            int qi;
            if (q >= 0.0) { qi = ftoi(q + 0.5); }
            else { qi = -ftoi(0.5 - q); }
            coef[u * 8 + v] = itof(qi * quant[u * 8 + v]);
        }
    }
    for (int y = 0; y < 8; y = y + 1) {
        for (int x = 0; x < 8; x = x + 1) {
            float s = 0.0;
            for (int u = 0; u < 8; u = u + 1) {
                for (int v = 0; v < 8; v = v + 1) {
                    s = s + alpha[u] * alpha[v] * coef[u * 8 + v] * ct[u * 8 + y] * ct[v * 8 + x];
                }
            }
            s = s + 128.0;
            int p;
            if (s >= 0.0) { p = ftoi(s + 0.5); }
            else { p = 0; }
            if (p > 255) { p = 255; }
            out[(by * 8 + y) * w + bx * 8 + x] = p;
        }
    }
}

int main() {
    os_boot();
    fi_checkpoint();
    fi_activate(0);
    for (int by = 0; by < %[7]d; by = by + 1) {
        for (int bx = 0; bx < %[8]d; bx = bx + 1) {
            dct_block(bx, by);
        }
    }
    fi_activate(0);
    return 0;
}
`, w*h, intArray(img), floatArray(ct), floatArray(alpha), intArray(quant), w, h/8, w/8)

	src = bootPreamble(scale) + src

	specs := []OutputSpec{{Symbol: "out", Count: w * h}}
	return &Workload{
		Name:    "dct",
		Source:  src,
		Outputs: specs,
		Classify: func(golden, run *Result) Grade {
			if bitsEqual(golden.Data, run.Data, specs) {
				return GradeStrict
			}
			// The paper compares the reconstructed image with the INPUT
			// image: PSNR >= 30 dB is correct (typical lossy range).
			psnr, err := stats.PSNR64(img, toInt64s(run.Data["out"]), 255)
			if err == nil && psnr >= 30 {
				return GradeCorrect
			}
			return GradeSDC
		},
	}
}

// syntheticImage builds a deterministic grayscale image: smooth gradients
// with texture, covering the full 0..255 range like a natural photo.
func syntheticImage(w, h int, seed uint64) []int64 {
	rng := newLCG(seed)
	img := make([]int64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := (x*255/max(1, w-1) + y*255/max(1, h-1)) / 2
			tex := rng.intn(16) - 8
			v := base + tex
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = int64(v)
		}
	}
	return img
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
