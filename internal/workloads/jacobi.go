package workloads

import "fmt"

// jacobiN returns the system size for a scale.
func jacobiN(scale Scale) int {
	switch scale {
	case ScalePaper:
		return 64 // "a diagonally dominant 64X64 matrix"
	case ScaleSmall:
		return 16
	default:
		return 8
	}
}

// Jacobi builds the iterative linear solver workload. Outcome criterion
// from the paper: "we characterize as correct solutions that result to
// the same (bit-exact) output as the golden model, converging after a
// potentially different number of iterations".
func Jacobi(scale Scale) *Workload {
	n := jacobiN(scale)
	rng := newLCG(777)
	a := make([]float64, n*n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := float64(rng.intn(9)+1) / 10.0
				a[i*n+j] = v
				rowSum += v
			}
		}
		a[i*n+i] = rowSum + float64(rng.intn(10)+5) // strictly dominant
		b[i] = float64(rng.intn(200) - 100)
	}

	src := fmt.Sprintf(`
// Jacobi iterative solver (paper benchmark "Jacobi").
float A[%[1]d] = %[2]s;
float b[%[3]d] = %[4]s;
float x[%[3]d];
float xn[%[3]d];
int iters[1];

int main() {
    int n = %[3]d;
    os_boot();
    fi_checkpoint();
    fi_activate(0);
    int it = 0;
    float eps = 0.0;   // iterate to the exact float fixed point
    while (it < 6000) {
        float maxdiff = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            float s = b[i];
            for (int j = 0; j < n; j = j + 1) {
                if (j != i) { s = s - A[i * n + j] * x[j]; }
            }
            xn[i] = s / A[i * n + i];
            float d = fabs(xn[i] - x[i]);
            if (d > maxdiff) { maxdiff = d; }
        }
        for (int i = 0; i < n; i = i + 1) { x[i] = xn[i]; }
        it = it + 1;
        if (maxdiff <= eps) { break; }
    }
    iters[0] = it;
    fi_activate(0);
    return 0;
}
`, n*n, floatArray(a), n, floatArray(b))

	src = bootPreamble(scale) + src

	specs := []OutputSpec{
		{Symbol: "x", Count: n},
		{Symbol: "iters", Count: 1},
	}
	solSpec := []OutputSpec{{Symbol: "x", Count: n}}
	return &Workload{
		Name:    "jacobi",
		Source:  src,
		Outputs: specs,
		Classify: func(golden, run *Result) Grade {
			if bitsEqual(golden.Data, run.Data, specs) {
				return GradeStrict
			}
			// Bit-exact solution with a different iteration count is the
			// paper's "correct" class for Jacobi.
			if bitsEqual(golden.Data, run.Data, solSpec) {
				return GradeCorrect
			}
			return GradeSDC
		},
	}
}
