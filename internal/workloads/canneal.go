package workloads

import "fmt"

// cannealParams returns (elements, nets, steps, swapsPerStep).
func cannealParams(scale Scale) (elems, nets, steps, swaps int) {
	switch scale {
	case ScalePaper:
		return 256, 100, 100, 100 // "100 nets, allowing up to 100 swaps in each step"
	case ScaleSmall:
		return 64, 50, 40, 20
	default:
		return 16, 10, 15, 8
	}
}

// Canneal builds the simulated-annealing netlist routing workload
// (modeled on PARSEC's canneal): elements on a grid, nets connecting
// pairs, cost = total Manhattan wire length, random swaps accepted when
// they reduce cost or — early on — probabilistically (the annealing
// schedule). Outcome criterion from the paper: "Correct Canneal
// executions are those that reduce the total cost of routing and produce
// a correct chip" — i.e. the final placement is a valid permutation with
// cost below the initial placement's.
func Canneal(scale Scale) *Workload {
	elems, nets, steps, swaps := cannealParams(scale)
	gw := 1
	for gw*gw < elems {
		gw++
	}
	rng := newLCG(909090)
	netA := make([]int64, nets)
	netB := make([]int64, nets)
	for i := 0; i < nets; i++ {
		a := rng.intn(elems)
		b := rng.intn(elems)
		for b == a {
			b = rng.intn(elems)
		}
		netA[i], netB[i] = int64(a), int64(b)
	}

	src := fmt.Sprintf(`
// Simulated-annealing netlist routing (paper benchmark "Canneal").
int netA[%[1]d] = %[2]s;
int netB[%[1]d] = %[3]s;
int pos[%[4]d];
int cost_out[2];   // [0] final cost, [1] initial cost

int seed_g = 5550123;

int lcg() {
    seed_g = (seed_g * 1103515245 + 12345) & 0x7FFFFFFF;
    return seed_g;
}

int iabs2(int v) {
    if (v < 0) { return -v; }
    return v;
}

int total_cost() {
    int gw = %[5]d;
    int c = 0;
    for (int i = 0; i < %[1]d; i = i + 1) {
        int pa = pos[netA[i]];
        int pb = pos[netB[i]];
        c = c + iabs2(pa %% gw - pb %% gw) + iabs2(pa / gw - pb / gw);
    }
    return c;
}

int main() {
    int n = %[4]d;
    os_boot();
    fi_checkpoint();
    fi_activate(0);
    // Initial placement: identity permutation, then shuffle.
    for (int i = 0; i < n; i = i + 1) { pos[i] = i; }
    for (int i = n - 1; i > 0; i = i - 1) {
        int j = lcg() %% (i + 1);
        int t = pos[i];
        pos[i] = pos[j];
        pos[j] = t;
    }
    int cost = total_cost();
    cost_out[1] = cost;
    int steps = %[6]d;
    for (int s = 0; s < steps; s = s + 1) {
        int temp = (steps - s) * 100 / steps;   // declining acceptance %%
        for (int k = 0; k < %[7]d; k = k + 1) {
            int i = lcg() %% n;
            int j = lcg() %% n;
            if (i == j) { continue; }
            int t = pos[i];
            pos[i] = pos[j];
            pos[j] = t;
            int nc = total_cost();
            if (nc < cost || lcg() %% 400 < temp) {
                cost = nc;
            } else {
                t = pos[i];
                pos[i] = pos[j];
                pos[j] = t;
            }
        }
    }
    cost_out[0] = total_cost();
    fi_activate(0);
    return 0;
}
`, nets, intArray(netA), intArray(netB), elems, gw, steps, swaps)

	src = bootPreamble(scale) + src

	specs := []OutputSpec{
		{Symbol: "cost_out", Count: 2},
		{Symbol: "pos", Count: elems},
	}
	return &Workload{
		Name:    "canneal",
		Source:  src,
		Outputs: specs,
		Classify: func(golden, run *Result) Grade {
			if bitsEqual(golden.Data, run.Data, specs) {
				return GradeStrict
			}
			finalCost := int64(run.Data["cost_out"][0])
			initCost := int64(run.Data["cost_out"][1])
			// "A correct chip": the placement must still be a valid
			// permutation (every slot exactly once).
			seen := make(map[uint64]bool, elems)
			valid := true
			for _, p := range run.Data["pos"] {
				if p >= uint64(elems) || seen[p] {
					valid = false
					break
				}
				seen[p] = true
			}
			// Audit the claimed final cost against the placement.
			if valid {
				var audit int64
				for i := 0; i < nets; i++ {
					pa := int64(run.Data["pos"][netA[i]])
					pb := int64(run.Data["pos"][netB[i]])
					audit += absI64(pa%int64(gw)-pb%int64(gw)) + absI64(pa/int64(gw)-pb/int64(gw))
				}
				valid = audit == finalCost
			}
			if valid && finalCost < initCost {
				return GradeCorrect
			}
			return GradeSDC
		},
	}
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
