package workloads

import (
	"fmt"

	"repro/internal/stats"
)

// deblockDims returns the frame dimensions for a scale.
func deblockDims(scale Scale) (w, h int) {
	switch scale {
	case ScalePaper:
		return 720, 240 // "a 720X240 pixel image"
	case ScaleSmall:
		return 48, 16
	default:
		return 16, 16
	}
}

// Deblock builds the AVS-style deblocking filter workload: integer-only
// edge smoothing across 8x8 block boundaries with strength clipping.
// Outcome criterion from the paper: "outputs with PSNR higher than 80 dB,
// when compared with the error-free execution, are characterized as
// correct". Being integer-only, it is the paper's poster child for 100%
// strict correctness under FP-register faults.
func Deblock(scale Scale) *Workload {
	w, h := deblockDims(scale)
	// A blocky synthetic frame: per-block DC offsets create the edges a
	// deblocking filter exists to smooth.
	rng := newLCG(31337)
	img := make([]int64, w*h)
	for by := 0; by < (h+7)/8; by++ {
		for bx := 0; bx < (w+7)/8; bx++ {
			dc := int64(rng.intn(200) + 20)
			for y := by * 8; y < by*8+8 && y < h; y++ {
				for x := bx * 8; x < bx*8+8 && x < w; x++ {
					v := dc + int64(rng.intn(9)) - 4
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					img[y*w+x] = v
				}
			}
		}
	}

	src := fmt.Sprintf(`
// AVS-style deblocking filter (paper benchmark "Deblocking").
int frame[%[1]d] = %[2]s;

int clip255(int v) {
    if (v < 0) { return 0; }
    if (v > 255) { return 255; }
    return v;
}

int iabs(int v) {
    if (v < 0) { return -v; }
    return v;
}

// Filter one 4-sample edge segment: p1 p0 | q0 q1 laid out at stride s
// around boundary index b.
void filter_edge(int b, int s) {
    int alpha = 22;
    int beta = 6;
    int p1 = frame[b - 2 * s];
    int p0 = frame[b - s];
    int q0 = frame[b];
    int q1 = frame[b + s];
    if (iabs(p0 - q0) < alpha && iabs(p1 - p0) < beta && iabs(q1 - q0) < beta) {
        frame[b - s] = clip255((p1 + 2 * p0 + q0 + 2) >> 2);
        frame[b]     = clip255((p0 + 2 * q0 + q1 + 2) >> 2);
    }
}

int main() {
    int w = %[3]d;
    int h = %[4]d;
    os_boot();
    fi_checkpoint();
    fi_activate(0);
    // Vertical edges (filter across columns at x = 8, 16, ...).
    for (int x = 8; x < w; x = x + 8) {
        for (int y = 0; y < h; y = y + 1) {
            filter_edge(y * w + x, 1);
        }
    }
    // Horizontal edges (filter across rows at y = 8, 16, ...).
    for (int y = 8; y < h; y = y + 8) {
        for (int x = 0; x < w; x = x + 1) {
            filter_edge(y * w + x, w);
        }
    }
    fi_activate(0);
    return 0;
}
`, w*h, intArray(img), w, h)

	src = bootPreamble(scale) + src

	specs := []OutputSpec{{Symbol: "frame", Count: w * h}}
	return &Workload{
		Name:    "deblock",
		Source:  src,
		Outputs: specs,
		Classify: func(golden, run *Result) Grade {
			if bitsEqual(golden.Data, run.Data, specs) {
				return GradeStrict
			}
			psnr, err := stats.PSNR64(toInt64s(golden.Data["frame"]), toInt64s(run.Data["frame"]), 255)
			if err == nil && psnr >= 80 {
				return GradeCorrect
			}
			return GradeSDC
		},
	}
}
