package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Execute compiles (cached), loads and runs the workload to completion on
// a fresh simulator, returning the extracted outputs. A nil Result with a
// nil error means the run failed (crashed/hung); inspect the RunResult.
func Execute(w *Workload, cfg sim.Config, faults []core.Fault) (*Result, sim.RunResult, error) {
	p, err := w.Build()
	if err != nil {
		return nil, sim.RunResult{}, err
	}
	cfg.Faults = faults
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		return nil, sim.RunResult{}, err
	}
	r := s.Run()
	if r.Failed() {
		return nil, r, nil
	}
	res, err := Extract(w, s)
	if err != nil {
		return nil, r, err
	}
	res.ExitStatus = r.ExitStatus
	return res, r, nil
}

// Extract reads the workload's output symbols from a stopped simulator.
func Extract(w *Workload, s *sim.Simulator) (*Result, error) {
	res := &Result{Data: make(map[string][]uint64, len(w.Outputs))}
	for _, spec := range w.Outputs {
		addr, ok := s.Program.Symbol(spec.Symbol)
		if !ok {
			return nil, fmt.Errorf("workload %s: missing output symbol %q", w.Name, spec.Symbol)
		}
		vals := make([]uint64, spec.Count)
		for i := 0; i < spec.Count; i++ {
			v, err := s.ReadMem64(addr + uint64(i)*8)
			if err != nil {
				return nil, fmt.Errorf("workload %s: reading %s[%d]: %w", w.Name, spec.Symbol, i, err)
			}
			vals[i] = v
		}
		res.Data[spec.Symbol] = vals
	}
	return res, nil
}

// Golden runs the workload fault-free on the atomic model and returns
// the reference outputs.
func Golden(w *Workload) (*Result, sim.RunResult, error) {
	res, r, err := Execute(w, sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 2_000_000_000}, nil)
	if err != nil {
		return nil, r, err
	}
	if res == nil {
		return nil, r, fmt.Errorf("workload %s: golden run failed: %+v", w.Name, r)
	}
	return res, r, nil
}
