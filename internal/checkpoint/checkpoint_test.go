package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// sample builds a non-trivial state.
func sample() *State {
	m := mem.New()
	m.Map(0x1000, 0x2000)
	m.Write64(0x1008, 0xDEADBEEF)
	m.StoreByte(0x1FFF, 0x7F)

	var arch cpu.Arch
	arch.PC = 0x1004
	arch.PCBB = 0xF00000
	for i := range arch.R {
		arch.R[i] = uint64(i) * 3
	}
	for i := range arch.F {
		arch.F[i] = float64(i) * 1.5
	}

	k := kernel.New(m)
	ks := k.Snapshot()
	ks.Console = []byte("boot ok")
	ks.Cur = 1

	return &State{
		Core:   cpu.CoreSnapshot{Arch: arch, Ticks: 999, Insts: 500, Seq: 501, ExitStatus: 0},
		Mem:    m.Snapshot(),
		Kernel: ks,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st := sample()
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualState(t, st, got)
}

func TestBytesRoundTrip(t *testing.T) {
	st := sample()
	b, err := st.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualState(t, st, got)
}

func TestFileRoundTrip(t *testing.T) {
	st := sample()
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualState(t, st, got)
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := FromBytes([]byte("not a checkpoint")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadFile("/nonexistent/path"); err == nil {
		t.Fatal("expected open error")
	}
}

func TestRestoredMemoryMatches(t *testing.T) {
	st := sample()
	b, err := st.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.Restore(got.Mem)
	v, err := m.Read64(0x1008)
	if err != nil || v != 0xDEADBEEF {
		t.Errorf("restored mem: %x %v", v, err)
	}
	bb, _ := m.LoadByte(0x1FFF)
	if bb != 0x7F {
		t.Errorf("restored byte: %x", bb)
	}
	if m.Mapped(0x500, 1) {
		t.Error("unmapped region leaked into restore")
	}
}

func assertEqualState(t *testing.T, want, got *State) {
	t.Helper()
	if got.Core.Ticks != want.Core.Ticks || got.Core.Insts != want.Core.Insts ||
		got.Core.Seq != want.Core.Seq {
		t.Errorf("core counters differ: %+v vs %+v", got.Core, want.Core)
	}
	if got.Core.Arch.PC != want.Core.Arch.PC || got.Core.Arch.PCBB != want.Core.Arch.PCBB {
		t.Error("arch PC/PCBB differ")
	}
	for i := range want.Core.Arch.R {
		if got.Core.Arch.R[i] != want.Core.Arch.R[i] {
			t.Fatalf("R[%d] differs", i)
		}
		if math.Float64bits(got.Core.Arch.F[i]) != math.Float64bits(want.Core.Arch.F[i]) {
			t.Fatalf("F[%d] differs", i)
		}
	}
	if string(got.Kernel.Console) != string(want.Kernel.Console) || got.Kernel.Cur != want.Kernel.Cur {
		t.Error("kernel snapshot differs")
	}
	if len(got.Mem.Pages) != len(want.Mem.Pages) {
		t.Errorf("page count %d vs %d", len(got.Mem.Pages), len(want.Mem.Pages))
	}
}
