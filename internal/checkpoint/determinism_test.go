package checkpoint_test

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/checkpoint"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// determinismGuest does real work on both sides of its fi_read_init_all
// checkpoint: an LCG fills a buffer before the checkpoint, and after it
// the buffer is folded into a digest that drives console output and the
// exit status. Any state lost across checkpoint/restore corrupts the
// digest, the console bytes, or the retired-instruction count.
const determinismGuest = `
_start:
	la s0, buf
	la s1, out
	li t0, 0
	li t1, 12345
	li t2, 25214903917
	li t3, 11
	li t5, 16
init:
	mulq t1, t2, t1
	addq t1, t3, t1
	sll t0, #3, t4
	addq s0, t4, t4
	stq t1, 0(t4)
	addq t0, #1, t0
	cmplt t0, t5, t6
	bne t6, init
	fi_read_init_all
	li t0, 0
	li t7, 0
fold:
	sll t0, #3, t4
	addq s0, t4, t4
	ldq t8, 0(t4)
	xor t7, t8, t7
	addq t0, #1, t0
	cmplt t0, t5, t6
	bne t6, fold
	stq t7, 0(s1)
	li t9, 4
print:
	and t7, #63, a0
	addq a0, #48, a0
	li v0, 2
	callsys
	srl t7, #6, t7
	subq t9, #1, t9
	bgt t9, print
	and t7, #255, a0
	li v0, 1
	callsys

.data
buf: .space 128
out: .space 8
`

type finalState struct {
	arch    [isa.NumRegs]uint64
	fbits   [isa.NumRegs]uint64
	pc      uint64
	insts   uint64
	ticks   uint64
	exit    int
	console string
	mem     mem.Snapshot
}

func capture(t *testing.T, s *sim.Simulator, r sim.RunResult) finalState {
	t.Helper()
	if !r.Exited || r.Crashed || r.Hung {
		t.Fatalf("guest did not exit cleanly: %+v", r)
	}
	f := finalState{
		pc:      s.Core.Arch.PC,
		insts:   s.Core.Insts,
		ticks:   s.Core.Ticks,
		exit:    r.ExitStatus,
		console: r.Console,
		mem:     s.Mem.Snapshot(),
	}
	f.arch = s.Core.Arch.R
	for i, v := range s.Core.Arch.F {
		f.fbits[i] = math.Float64bits(v)
	}
	return f
}

// compare asserts byte-identical final state. Ticks are only compared
// when compareTicks is set: a restored pipelined/timing model restarts
// with cold caches and predictor, so its cycle count legitimately
// differs; architectural state may not.
func compare(t *testing.T, want, got finalState, compareTicks bool) {
	t.Helper()
	if got.arch != want.arch {
		t.Errorf("integer register files differ: %#x vs %#x", want.arch, got.arch)
	}
	if got.fbits != want.fbits {
		t.Errorf("FP register files differ")
	}
	if got.pc != want.pc {
		t.Errorf("final PC %#x, want %#x", got.pc, want.pc)
	}
	if got.insts != want.insts {
		t.Errorf("retired %d instructions, want %d", got.insts, want.insts)
	}
	if compareTicks && got.ticks != want.ticks {
		t.Errorf("ticks %d, want %d", got.ticks, want.ticks)
	}
	if got.exit != want.exit {
		t.Errorf("exit status %d, want %d", got.exit, want.exit)
	}
	if got.console != want.console {
		t.Errorf("console %q, want %q", got.console, want.console)
	}
	compareMem(t, want.mem, got.mem)
}

// compareMem treats pages missing on one side as all-zero, matching the
// sparse memory's allocate-on-touch behavior.
func compareMem(t *testing.T, a, b mem.Snapshot) {
	t.Helper()
	bases := map[uint64]bool{}
	for base := range a.Pages {
		bases[base] = true
	}
	for base := range b.Pages {
		bases[base] = true
	}
	for base := range bases {
		pa, pb := a.Pages[base], b.Pages[base]
		for i := 0; i < mem.PageSize; i++ {
			var x, y byte
			if pa != nil {
				x = pa[i]
			}
			if pb != nil {
				y = pb[i]
			}
			if x != y {
				t.Errorf("memory differs at %#x: %#02x vs %#02x", base+uint64(i), x, y)
				return
			}
		}
	}
}

// TestCheckpointRestoreDeterminism checkpoints the guest mid-run at its
// fi_read_init_all, serializes the state, restores it into a completely
// fresh simulator, and requires the resumed run's final architectural
// state, memory image, console output and exit status to be byte-identical
// to an uninterrupted run.
func TestCheckpointRestoreDeterminism(t *testing.T) {
	prog, err := asm.Assemble(determinismGuest)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []sim.ModelKind{sim.ModelAtomic, sim.ModelTiming, sim.ModelPipelined} {
		model := model
		t.Run(string(model), func(t *testing.T) {
			cfg := sim.Config{Model: model, EnableFI: true, MaxInsts: 10_000_000}

			// Uninterrupted reference run.
			ref := sim.New(cfg)
			if err := ref.Load(prog); err != nil {
				t.Fatal(err)
			}
			want := capture(t, ref, ref.Run())

			// Checkpoint at fi_read_init_all, serialize, restore into a
			// fresh simulator, resume.
			first := sim.New(cfg)
			if err := first.Load(prog); err != nil {
				t.Fatal(err)
			}
			st, _, err := first.RunToCheckpoint()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := st.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			st2, err := checkpoint.FromBytes(raw)
			if err != nil {
				t.Fatal(err)
			}
			second := sim.New(cfg)
			if err := second.Load(prog); err != nil {
				t.Fatal(err)
			}
			second.Restore(st2, nil)
			got := capture(t, second, second.Run())

			// Atomic cycle counts must also line up exactly; the timing
			// and pipelined models restart with cold caches/predictor, so
			// only architectural state is required to match there.
			compare(t, want, got, model == sim.ModelAtomic)
		})
	}
}

// TestCheckpointRestartRetirement asserts the restored run re-executes
// nothing before the checkpoint: resuming must retire exactly the
// remaining instructions.
func TestCheckpointRestartRetirement(t *testing.T) {
	prog, err := asm.Assemble(determinismGuest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Model: sim.ModelAtomic, EnableFI: true, MaxInsts: 10_000_000}
	ref := sim.New(cfg)
	if err := ref.Load(prog); err != nil {
		t.Fatal(err)
	}
	total := ref.Run().Insts

	s := sim.New(cfg)
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	st, res, err := s.RunToCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	atCkpt := res.Insts
	if atCkpt == 0 || atCkpt >= total {
		t.Fatalf("checkpoint at %d of %d insts: not mid-run", atCkpt, total)
	}
	fresh := sim.New(cfg)
	if err := fresh.Load(prog); err != nil {
		t.Fatal(err)
	}
	fresh.Restore(st, nil)
	if final := fresh.Run().Insts; final != total {
		t.Errorf("resumed run finished at %d retired instructions, want %d", final, total)
	}
}
