package checkpoint

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// ForkPoint is the in-process, copy-on-write analogue of State for
// fork-server campaigns. Where State deep-copies memory and deliberately
// omits engine state (fi_read_init_all resets it on restore), a ForkPoint
// shares clean pages with the trunk by reference and must carry the
// engine's window bookkeeping: forks are taken mid-window, after the
// trunk has executed part of the fault-injection window, so the child
// inherits the stage counters that time its faults. ForkPoints live only
// in process memory — they hold shared page maps and are not serialized.
type ForkPoint struct {
	Core   cpu.CoreSnapshot
	Mem    *mem.CowSnapshot
	Kernel kernel.Snapshot
	Window core.WindowState
}

// WindowCommits returns the committed-instruction progress of the open
// fault-injection window at the fork point (0 when no window is open):
// an experiment whose fault fires at window instruction W can only fork
// from points where this is still below W.
func (fp *ForkPoint) WindowCommits() uint64 {
	var max uint64
	for _, t := range fp.Window.Threads {
		if t.Commits > max {
			max = t.Commits
		}
	}
	return max
}

// ApproxBytes estimates the heap uniquely attributable to this fork
// point: the incrementally dirtied pages plus the fixed-size CPU and
// kernel snapshots.
func (fp *ForkPoint) ApproxBytes() uint64 {
	n := uint64(len(fp.Kernel.Console)) + 512
	if fp.Mem != nil {
		n += fp.Mem.ApproxBytes()
	}
	return n
}
