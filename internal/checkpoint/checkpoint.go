// Package checkpoint serializes and restores whole-simulator state. It is
// the stand-in for DMTCP in the paper's design (Section III.D): instead of
// checkpointing the Linux process running the simulator, it checkpoints
// the simulator object graph — which supports the same campaign workflow:
// fast-forward once to the fi_read_init_all point, snapshot, then restore
// the snapshot for every experiment with a different fault configuration.
//
// The fault engine's state is deliberately NOT part of the checkpoint:
// "upon restoring a checkpoint GemFI parses again the faults configuration
// file", so restore takes a fresh fault list.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// State is a complete, self-contained simulator snapshot.
type State struct {
	Core   cpu.CoreSnapshot
	Mem    mem.Snapshot
	Kernel kernel.Snapshot
}

// ApproxSize estimates the serialized size in bytes without encoding:
// the guest memory pages dominate, so page bytes plus a small fixed
// overhead per snapshot is within a few percent of the gob size. Used for
// observability (checkpoint-capture trace events, NoW shipping metrics)
// where an exact byte count is not worth a full encode.
func (s *State) ApproxSize() int {
	n := 4096 // core + kernel snapshots and gob framing
	for _, page := range s.Mem.Pages {
		n += len(page) + 16
	}
	return n
}

// Save writes the state to w in gob format.
func (s *State) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("checkpoint save: %w", err)
	}
	return nil
}

// Load reads a state from r.
func Load(r io.Reader) (*State, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint load: %w", err)
	}
	return &s, nil
}

// Bytes serializes the state to a byte slice (the NoW master ships
// checkpoints to workers in this form).
func (s *State) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromBytes deserializes a state produced by Bytes.
func FromBytes(b []byte) (*State, error) {
	return Load(bytes.NewReader(b))
}

// SaveFile writes the state to a file.
func (s *State) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint save: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a state from a file.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
