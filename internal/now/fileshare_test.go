package now

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/workloads"
)

// prepareShare builds a PI campaign share with n experiments.
func prepareShare(t *testing.T, n int) (string, []campaign.Experiment) {
	t.Helper()
	dir := t.TempDir()
	// Probe for the window size first (PrepareShare needs experiments up
	// front, and experiments need the window).
	if err := PrepareShare(dir, ShareConfig{Workload: "pi", Scale: workloads.ScaleTest}); err != nil {
		t.Fatal(err)
	}
	window, err := ShareWindowInsts(dir)
	if err != nil || window == 0 {
		t.Fatalf("window: %d %v", window, err)
	}
	exps := campaign.GenerateUniform(n, campaign.GenConfig{WindowInsts: window, Seed: 31})
	dir2 := t.TempDir()
	if err := PrepareShare(dir2, ShareConfig{Workload: "pi", Scale: workloads.ScaleTest, Experiments: exps}); err != nil {
		t.Fatal(err)
	}
	return dir2, exps
}

func TestShareLayout(t *testing.T) {
	dir, exps := prepareShare(t, 5)
	for _, f := range []string{"meta.json", "checkpoint.gob"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "experiments"))
	if err != nil || len(entries) != len(exps) {
		t.Fatalf("experiment files: %d, %v", len(entries), err)
	}
	// The fault files are in the paper's Listing-1 text format.
	b, err := os.ReadFile(filepath.Join(dir, "experiments", entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "InjectedFault") || !strings.Contains(string(b), "occ:") {
		t.Errorf("fault file not in Listing-1 format: %q", b)
	}
}

func TestFileWorkerProcessesAll(t *testing.T) {
	dir, exps := prepareShare(t, 6)
	n, err := FileWorker(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(exps) {
		t.Fatalf("worker completed %d of %d", n, len(exps))
	}
	results, err := CollectResults(dir, len(exps), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.ID != i {
			t.Errorf("result %d has ID %d", i, r.ID)
		}
	}
}

func TestConcurrentFileWorkersSplitTheQueue(t *testing.T) {
	dir, exps := prepareShare(t, 10)
	var wg sync.WaitGroup
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := FileWorker(dir)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			counts[i] = n
		}(i)
	}
	wg.Wait()
	total := counts[0] + counts[1] + counts[2]
	if total != len(exps) {
		t.Fatalf("workers completed %v = %d, want %d", counts, total, len(exps))
	}
	results, err := CollectResults(dir, len(exps), time.Second)
	if err != nil || len(results) != len(exps) {
		t.Fatalf("results: %d %v", len(results), err)
	}
}

// TestFileShareMatchesTCPResults: the two distribution mechanisms (and a
// local runner) must classify identically.
func TestFileShareMatchesLocal(t *testing.T) {
	dir, exps := prepareShare(t, 6)
	if _, err := FileWorker(dir); err != nil {
		t.Fatal(err)
	}
	shared, err := CollectResults(dir, len(exps), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	local, err := campaign.NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), campaign.RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range exps {
		want := local.Run(exp)
		if shared[i].Outcome != want.Outcome {
			t.Errorf("experiment %d: share %v vs local %v", i, shared[i].Outcome, want.Outcome)
		}
	}
}

func TestRequeueStaleClaims(t *testing.T) {
	dir, exps := prepareShare(t, 4)
	// Simulate a dead workstation: claim two experiments by hand and
	// never produce results.
	for _, name := range []string{"000000.fault", "000001.fault"} {
		if err := os.Rename(filepath.Join(dir, "experiments", name),
			filepath.Join(dir, "claims", name)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := RequeueStaleClaims(dir)
	if err != nil || n != 2 {
		t.Fatalf("requeued %d, %v", n, err)
	}
	if _, err := FileWorker(dir); err != nil {
		t.Fatal(err)
	}
	results, err := CollectResults(dir, len(exps), time.Second)
	if err != nil || len(results) != len(exps) {
		t.Fatalf("campaign incomplete after requeue: %d %v", len(results), err)
	}
}

func TestCollectTimeout(t *testing.T) {
	dir, _ := prepareShare(t, 3)
	if _, err := CollectResults(dir, 3, 50*time.Millisecond); err == nil {
		t.Error("expected timeout with no workers running")
	}
}
