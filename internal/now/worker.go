package now

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/taint"
	"repro/internal/workloads"
)

// WorkerConfig parameterizes a workstation process.
type WorkerConfig struct {
	// Addr is the master's address.
	Addr string
	// Slots is how many experiments run simultaneously (the paper ran 4
	// per quad-core workstation).
	Slots int
	// Name identifies the worker in master logs.
	Name string

	// DialAttempts is how many times a slot tries to reach the master
	// before giving up (default 3) — campaigns on non-dedicated machines
	// routinely race worker start against master start.
	DialAttempts int
	// DialBackoff is the wait before the first retry; it doubles per
	// attempt (default 100ms).
	DialBackoff time.Duration

	// ExpTimeout bounds one experiment's wall time; 0 means unbounded.
	// On expiry the simulation is interrupted at its next poll point and
	// the experiment retried locally.
	ExpTimeout time.Duration
	// ExpRetries is how many local retries a timed-out experiment gets
	// before being reported to the master as crashed ("interrupted").
	ExpRetries int

	// Heartbeat is the interval between liveness messages to the master;
	// 0 disables them.
	Heartbeat time.Duration

	// Metrics, when set, receives worker counters (now.worker.*): dial
	// retries, experiment timeouts and retries, completed experiments.
	Metrics *obs.Registry

	// Taint enables per-experiment fault-propagation tracking; the
	// compact verdict summary rides back to the master on each Result.
	// The golden differ is fed by the worker's own fault-free
	// continuation run (the same one that rebuilds the golden output).
	Taint bool

	// Fork switches each slot's runner into fork-server mode: one local
	// trunk run freezes COW snapshots across the fault window and every
	// experiment forks from the closest one instead of replaying the
	// warm-up from the shipped checkpoint. Pruning is disabled when Taint
	// is also set (instrumented runs must execute in full).
	Fork bool
	// ForkSnapshots overrides the trunk snapshot count in Fork mode;
	// 0 uses the campaign default.
	ForkSnapshots int

	// Flight attaches a flight recorder to each slot's runner even when
	// the master did not ask for one (the master's welcome requests it
	// for -flight campaigns); interesting results ship their post-mortem
	// dump back on Result.Postmortem.
	Flight bool
	// FlightDepth sizes the recorder ring (0 selects the default).
	FlightDepth int
}

// Worker pulls experiments from a master and executes them locally from
// the received checkpoint.
type Worker struct {
	cfg WorkerConfig
}

// NewWorker returns a worker; call Run to process the campaign.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 3
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 100 * time.Millisecond
	}
	return &Worker{cfg: cfg}
}

// Run processes experiments until the master reports the campaign done.
// Each slot opens its own connection (its own "simulation process"), so
// slot failures are independent. It returns the number of experiments
// this worker completed.
func (w *Worker) Run() (int, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		first error
	)
	for i := 0; i < w.cfg.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			n, err := w.runSlot(fmt.Sprintf("%s/slot%d", w.cfg.Name, slot))
			mu.Lock()
			defer mu.Unlock()
			total += n
			if err != nil && first == nil {
				first = err
			}
		}(i)
	}
	wg.Wait()
	return total, first
}

// dial connects to the master with exponential backoff: campaign launch
// scripts start masters and workers concurrently, so the first attempts
// may land before the master listens.
func (w *Worker) dial() (net.Conn, error) {
	backoff := w.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < w.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			w.cfg.Metrics.Counter("now.worker.dial_retries").Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		raw, err := net.Dial("tcp", w.cfg.Addr)
		if err == nil {
			return raw, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("now: dial master %s (%d attempts): %w",
		w.cfg.Addr, w.cfg.DialAttempts, lastErr)
}

// runSlot is one slot's fetch/execute/report loop.
func (w *Worker) runSlot(name string) (int, error) {
	raw, err := w.dial()
	if err != nil {
		return 0, err
	}
	c := newConn(raw)
	defer c.close()

	if err := c.send(Message{Type: MsgHello, WorkerName: name}); err != nil {
		return 0, err
	}
	welcome, err := c.recv()
	if err != nil {
		return 0, err
	}
	if welcome.Type != MsgWelcome {
		return 0, fmt.Errorf("now: expected welcome, got %q", welcome.Type)
	}

	runner, err := buildRunner(welcome, w.cfg)
	if err != nil {
		return 0, err
	}
	// When the master traces spans, this slot records its side of every
	// experiment locally and ships the records back on each result; the
	// traces are rooted at the master, so nothing completes (or is
	// sampled) here — the recorder is just a staging buffer.
	var spans *obs.SpanRecorder
	if welcome.SpanTrace {
		spans = obs.NewSpanRecorder()
		runner.AttachSpans(spans, name)
	}

	var completed atomic.Int64
	if w.cfg.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(w.cfg.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					msg := Message{Type: MsgHeartbeat, WorkerName: name,
						Completed: int(completed.Load())}
					if c.send(msg) != nil {
						return
					}
				}
			}
		}()
	}

	completedCounter := w.cfg.Metrics.Counter("now.worker.completed")
	for {
		if err := c.send(Message{Type: MsgFetch}); err != nil {
			return int(completed.Load()), err
		}
		msg, err := c.recv()
		if err != nil {
			return int(completed.Load()), err
		}
		switch msg.Type {
		case MsgDone:
			return int(completed.Load()), nil
		case MsgExperiment:
			var ctx obs.SpanContext
			var wsp *obs.Span
			if spans != nil && msg.Trace != nil {
				wsp = spans.StartSpan("worker", *msg.Trace)
				wsp.SetTrack(name)
				wsp.SetAttr("worker", name)
				wsp.SetAttr("exp_id", msg.Experiment.ID)
				ctx = wsp.Context()
			}
			res := w.runExperiment(runner, *msg.Experiment, ctx)
			res.Worker = name
			out := Message{Type: MsgResult, Result: &res}
			if wsp != nil {
				wsp.SetAttr("outcome", res.Outcome.String())
				wsp.End()
				out.Spans = spans.TakeTrace(msg.Trace.TraceID)
			}
			if err := c.send(out); err != nil {
				return int(completed.Load()), err
			}
			completed.Add(1)
			completedCounter.Inc()
		case MsgError:
			return int(completed.Load()), fmt.Errorf("now: master error: %s", msg.Error)
		default:
			return int(completed.Load()), fmt.Errorf("now: unexpected message %q", msg.Type)
		}
	}
}

// runExperiment executes one experiment under the configured wall-time
// bound, retrying timed-out runs up to ExpRetries times. The timeout
// interrupts the simulation at its next poll point; because the runner
// restores the checkpoint at the start of every Run, a timer that fires
// in the gap after a run completes cannot poison the next experiment.
func (w *Worker) runExperiment(runner *campaign.Runner, exp campaign.Experiment, ctx obs.SpanContext) campaign.Result {
	for attempt := 0; ; attempt++ {
		var timer *time.Timer
		if w.cfg.ExpTimeout > 0 {
			timer = time.AfterFunc(w.cfg.ExpTimeout, runner.Interrupt)
		}
		res := runner.RunCtx(exp, ctx)
		if timer != nil {
			timer.Stop()
		}
		if res.CrashCause != campaign.CrashInterrupted {
			return res
		}
		w.cfg.Metrics.Counter("now.worker.timeouts").Inc()
		if attempt >= w.cfg.ExpRetries {
			return res
		}
		w.cfg.Metrics.Counter("now.worker.retries").Inc()
	}
}

// buildRunner reconstructs the campaign runner from a welcome message:
// the program is rebuilt deterministically from (workload, scale), and
// the simulator state comes from the shipped checkpoint — the "local
// copy of the checkpoint" of the paper's step 3.
func buildRunner(welcome Message, wcfg WorkerConfig) (*campaign.Runner, error) {
	wl, err := workloads.ByName(welcome.Workload, workloads.Scale(welcome.Scale))
	if err != nil {
		return nil, err
	}
	st, err := checkpoint.FromBytes(welcome.Checkpoint)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Model:    sim.ModelKind(welcome.Model),
		EnableFI: true,
		MaxInsts: welcome.MaxInsts,
	}
	// Build the golden reference locally by finishing a fault-free run
	// from the checkpoint.
	p, err := wl.Build()
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		return nil, err
	}
	s.Restore(st, nil)
	r := s.Run()
	if r.Failed() {
		return nil, fmt.Errorf("now: fault-free continuation failed: %+v", r)
	}
	golden, err := workloads.Extract(wl, s)
	if err != nil {
		return nil, err
	}
	runner, err := campaign.NewRestoredRunner(wl, cfg, golden, welcome.WindowInsts, st)
	if err != nil {
		return nil, err
	}
	if wcfg.Taint {
		// The fault-free continuation above left s at the golden final
		// state — exactly what the taint differ needs.
		runner.AttachTaint()
		runner.ShareTaintGolden(taint.CaptureGolden(&s.Core.Arch, s.Mem))
	}
	if wcfg.Fork {
		fo := campaign.DefaultForkOptions()
		if wcfg.ForkSnapshots > 0 {
			fo.Snapshots = wcfg.ForkSnapshots
		}
		if err := runner.EnableFork(fo); err != nil {
			return nil, err
		}
	}
	if welcome.Flight || wcfg.Flight {
		runner.AttachFlight(wcfg.FlightDepth)
	}
	return runner, nil
}
