package now

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// WorkerConfig parameterizes a workstation process.
type WorkerConfig struct {
	// Addr is the master's address.
	Addr string
	// Slots is how many experiments run simultaneously (the paper ran 4
	// per quad-core workstation).
	Slots int
	// Name identifies the worker in master logs.
	Name string
}

// Worker pulls experiments from a master and executes them locally from
// the received checkpoint.
type Worker struct {
	cfg WorkerConfig
}

// NewWorker returns a worker; call Run to process the campaign.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	return &Worker{cfg: cfg}
}

// Run processes experiments until the master reports the campaign done.
// Each slot opens its own connection (its own "simulation process"), so
// slot failures are independent. It returns the number of experiments
// this worker completed.
func (w *Worker) Run() (int, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		first error
	)
	for i := 0; i < w.cfg.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			n, err := w.runSlot(fmt.Sprintf("%s/slot%d", w.cfg.Name, slot))
			mu.Lock()
			defer mu.Unlock()
			total += n
			if err != nil && first == nil {
				first = err
			}
		}(i)
	}
	wg.Wait()
	return total, first
}

// runSlot is one slot's fetch/execute/report loop.
func (w *Worker) runSlot(name string) (int, error) {
	raw, err := net.Dial("tcp", w.cfg.Addr)
	if err != nil {
		return 0, fmt.Errorf("now: dial master: %w", err)
	}
	c := newConn(raw)
	defer c.close()

	if err := c.send(Message{Type: MsgHello, WorkerName: name}); err != nil {
		return 0, err
	}
	welcome, err := c.recv()
	if err != nil {
		return 0, err
	}
	if welcome.Type != MsgWelcome {
		return 0, fmt.Errorf("now: expected welcome, got %q", welcome.Type)
	}

	runner, err := buildRunner(welcome)
	if err != nil {
		return 0, err
	}

	done := 0
	for {
		if err := c.send(Message{Type: MsgFetch}); err != nil {
			return done, err
		}
		msg, err := c.recv()
		if err != nil {
			return done, err
		}
		switch msg.Type {
		case MsgDone:
			return done, nil
		case MsgExperiment:
			res := runner.Run(*msg.Experiment)
			if err := c.send(Message{Type: MsgResult, Result: &res}); err != nil {
				return done, err
			}
			done++
		case MsgError:
			return done, fmt.Errorf("now: master error: %s", msg.Error)
		default:
			return done, fmt.Errorf("now: unexpected message %q", msg.Type)
		}
	}
}

// buildRunner reconstructs the campaign runner from a welcome message:
// the program is rebuilt deterministically from (workload, scale), and
// the simulator state comes from the shipped checkpoint — the "local
// copy of the checkpoint" of the paper's step 3.
func buildRunner(welcome Message) (*campaign.Runner, error) {
	wl, err := workloads.ByName(welcome.Workload, workloads.Scale(welcome.Scale))
	if err != nil {
		return nil, err
	}
	st, err := checkpoint.FromBytes(welcome.Checkpoint)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Model:    sim.ModelKind(welcome.Model),
		EnableFI: true,
		MaxInsts: welcome.MaxInsts,
	}
	// Build the golden reference locally by finishing a fault-free run
	// from the checkpoint.
	p, err := wl.Build()
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg)
	if err := s.Load(p); err != nil {
		return nil, err
	}
	s.Restore(st, nil)
	r := s.Run()
	if r.Failed() {
		return nil, fmt.Errorf("now: fault-free continuation failed: %+v", r)
	}
	golden, err := workloads.Extract(wl, s)
	if err != nil {
		return nil, err
	}
	return campaign.NewRestoredRunner(wl, cfg, golden, welcome.WindowInsts, st)
}
