package now

import (
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func counterValue(t *testing.T, r *obs.Registry, name string) float64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestMasterDisconnectRequeuedExactlyOnce is the worker-disconnect
// contract: a client that dies holding an assignment gets that
// experiment requeued exactly once, the campaign still yields one result
// per experiment, and nothing is double-counted.
func TestMasterDisconnectRequeuedExactlyOnce(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	exps := campaign.GenerateUniform(8, campaign.GenConfig{WindowInsts: m.WindowInsts(), Seed: 7})
	m.Close()
	m, err = NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Experiments: exps,
		Quiet: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The flaky client: completes the handshake, fetches exactly one
	// experiment, and disconnects without reporting a result.
	c, err := dialRaw(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.send(Message{Type: MsgHello, WorkerName: "flaky"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err != nil { // welcome
		t.Fatal(err)
	}
	if err := c.send(Message{Type: MsgFetch}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err != nil { // experiment assigned
		t.Fatal(err)
	}
	c.close()

	go func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1, Metrics: reg})
		if _, err := w.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	results := m.Wait()

	if len(results) != len(exps) {
		t.Fatalf("campaign incomplete: %d of %d results", len(results), len(exps))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("experiment %d counted twice", r.ID)
		}
		seen[r.ID] = true
	}
	for i := range exps {
		if !seen[i] {
			t.Errorf("experiment %d has no result", i)
		}
	}
	if got := m.Requeued(); got != 1 {
		t.Errorf("Requeued() = %d, want exactly 1", got)
	}
	if got := counterValue(t, reg, "now.master.requeued"); got != 1 {
		t.Errorf("now.master.requeued = %g, want 1", got)
	}
	// Every experiment completed, so the healthy worker must account for
	// all of them (8 fetched, including the requeued one).
	if got := counterValue(t, reg, "now.worker.completed"); got != float64(len(exps)) {
		t.Errorf("now.worker.completed = %g, want %d", got, len(exps))
	}
}

// TestWorkerExperimentTimeoutRetries pins the per-experiment timeout
// path: a timeout far below the experiment's runtime interrupts every
// attempt, the worker retries ExpRetries times, and the final result is
// reported as crashed/interrupted. Runtime at pi/ScaleSmall is ~40ms per
// experiment; the 4ms bound leaves an order of magnitude of margin on
// both sides (checkpoint restore is well under 1ms).
func TestWorkerExperimentTimeoutRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("ScaleSmall golden run in -short mode")
	}
	wl, err := workloads.ByName("pi", workloads.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := campaign.NewRunner(wl, campaign.RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exp := campaign.GenerateUniform(1, campaign.GenConfig{WindowInsts: runner.WindowInsts, Seed: 3})[0]

	// Baseline sanity: untimed, the experiment completes.
	if res := runner.Run(exp); res.CrashCause == campaign.CrashInterrupted {
		t.Fatalf("untimed run reported interrupted: %+v", res)
	}

	reg := obs.NewRegistry()
	w := NewWorker(WorkerConfig{
		Addr: "unused", ExpTimeout: 4 * time.Millisecond, ExpRetries: 2, Metrics: reg,
	})
	res := w.runExperiment(runner, exp, obs.SpanContext{})
	if res.Outcome != campaign.OutcomeCrashed || res.CrashCause != campaign.CrashInterrupted {
		t.Fatalf("result = %+v, want crashed/interrupted", res)
	}
	if got := counterValue(t, reg, "now.worker.timeouts"); got != 3 {
		t.Errorf("now.worker.timeouts = %g, want 3 (initial + 2 retries)", got)
	}
	if got := counterValue(t, reg, "now.worker.retries"); got != 2 {
		t.Errorf("now.worker.retries = %g, want 2", got)
	}

	// The runner survives interruption: a generous timeout completes.
	w2 := NewWorker(WorkerConfig{Addr: "unused", ExpTimeout: time.Minute, Metrics: reg})
	if res := w2.runExperiment(runner, exp, obs.SpanContext{}); res.CrashCause == campaign.CrashInterrupted {
		t.Fatalf("generous timeout still interrupted: %+v", res)
	}
}

// TestWorkerDialRetryBackoff: with nothing listening, the worker makes
// DialAttempts attempts (counting the retries) before reporting failure.
func TestWorkerDialRetryBackoff(t *testing.T) {
	reg := obs.NewRegistry()
	// 127.0.0.1:1 is reserved (tcpmux) and never bound in tests.
	w := NewWorker(WorkerConfig{
		Addr: "127.0.0.1:1", Slots: 1,
		DialAttempts: 3, DialBackoff: time.Millisecond, Metrics: reg,
	})
	if _, err := w.Run(); err == nil {
		t.Fatal("worker connected to a dead address")
	}
	if got := counterValue(t, reg, "now.worker.dial_retries"); got != 2 {
		t.Errorf("now.worker.dial_retries = %g, want 2", got)
	}
}

// TestWorkerHeartbeats: a heartbeating worker is visible in the master's
// telemetry.
func TestWorkerHeartbeats(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	exps := campaign.GenerateUniform(12, campaign.GenConfig{WindowInsts: m.WindowInsts(), Seed: 5})
	m.Close()
	m, err = NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Experiments: exps,
		Quiet: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		w := NewWorker(WorkerConfig{
			Addr: m.Addr(), Slots: 1, Name: "hb",
			Heartbeat: time.Millisecond, Metrics: reg,
		})
		if _, err := w.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	results := m.Wait()
	if len(results) != len(exps) {
		t.Fatalf("campaign incomplete: %d of %d", len(results), len(exps))
	}
	if got := counterValue(t, reg, "now.master.heartbeats"); got < 1 {
		t.Errorf("now.master.heartbeats = %g, want >= 1", got)
	}
}
