package now

import (
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/workloads"
)

// startCampaign boots a master for a PI campaign with n experiments.
func startCampaign(t *testing.T, n int) (*Master, []campaign.Experiment) {
	t.Helper()
	// Window size must come from the master (it runs the golden sim).
	m, err := NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	exps := campaign.GenerateUniform(n, campaign.GenConfig{WindowInsts: m.WindowInsts(), Seed: 21})
	m.Close()
	// Restart with the experiment list (NewMaster needs them up front).
	m2, err := NewMaster("127.0.0.1:0", MasterConfig{
		Workload: "pi", Scale: workloads.ScaleTest, Experiments: exps, Quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m2, exps
}

func TestSingleWorkerCampaign(t *testing.T) {
	m, exps := startCampaign(t, 12)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1, Name: "w0"})
		n, err := w.Run()
		if err != nil {
			t.Errorf("worker: %v", err)
		}
		if n != len(exps) {
			t.Errorf("worker completed %d of %d", n, len(exps))
		}
	}()
	results := m.Wait()
	wg.Wait()
	if len(results) != len(exps) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.ID != i {
			t.Errorf("result %d has ID %d", i, r.ID)
		}
	}
}

func TestMultiWorkerMultiSlotCampaign(t *testing.T) {
	m, exps := startCampaign(t, 20)
	var wg sync.WaitGroup
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 2})
			n, err := w.Run()
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			counts[i] = n
		}(i)
	}
	results := m.Wait()
	wg.Wait()
	if len(results) != len(exps) {
		t.Fatalf("results = %d of %d", len(results), len(exps))
	}
	if counts[0]+counts[1] != len(exps) {
		t.Errorf("worker counts %v don't sum to %d", counts, len(exps))
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Logf("warning: unbalanced workers: %v", counts)
	}
}

// TestNoWMatchesLocalResults: the distributed campaign must classify
// every experiment exactly as a local runner does — determinism across
// the wire (checkpoint shipping, JSON round trip, worker-side golden).
func TestNoWMatchesLocalResults(t *testing.T) {
	m, exps := startCampaign(t, 10)
	go func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 2})
		if _, err := w.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	remote := m.Wait()

	local, err := campaign.NewRunner(workloads.MonteCarloPI(workloads.ScaleTest), campaign.RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range exps {
		want := local.Run(exp)
		if remote[i].Outcome != want.Outcome {
			t.Errorf("experiment %d: remote %v vs local %v", i, remote[i].Outcome, want.Outcome)
		}
	}
}

// TestWorkerDeathRequeues kills one connection mid-campaign and checks
// the campaign still completes.
func TestWorkerDeathRequeues(t *testing.T) {
	m, exps := startCampaign(t, 8)

	// A misbehaving client: fetches one experiment and disconnects
	// without reporting a result.
	rawWorker := func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1})
		_ = w
	}
	_ = rawWorker
	c, err := dialRaw(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.send(Message{Type: MsgHello, WorkerName: "flaky"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err != nil { // welcome
		t.Fatal(err)
	}
	if err := c.send(Message{Type: MsgFetch}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err != nil { // experiment assigned
		t.Fatal(err)
	}
	c.close() // dies holding the assignment

	go func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1})
		if _, err := w.Run(); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	results := m.Wait()
	if len(results) != len(exps) {
		t.Fatalf("campaign incomplete after worker death: %d of %d", len(results), len(exps))
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	m, _ := startCampaign(t, 1)
	defer m.Close()
	c, err := dialRaw(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.send(Message{Type: MsgHello}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err != nil {
		t.Fatal(err)
	}
	if err := c.send(Message{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.recv()
	if err == nil && reply.Type != MsgError {
		t.Errorf("expected error reply, got %+v", reply)
	}
	// Drain the campaign so the listener goroutine can finish.
	go func() {
		w := NewWorker(WorkerConfig{Addr: m.Addr(), Slots: 1})
		_, _ = w.Run()
	}()
	m.Wait()
}
